"""Loss value + gradient tests."""

import numpy as np
import pytest

from repro.nn import l1_loss, mse_loss, offset_loss
from tests.nn.test_layers import numeric_grad


class TestMSE:
    def test_value(self):
        loss, _ = mse_loss(np.array([1.0, 2.0]), np.array([0.0, 0.0]))
        assert loss == pytest.approx(2.5)

    def test_zero_at_match(self):
        x = np.ones((3, 2))
        loss, grad = mse_loss(x, x)
        assert loss == 0.0 and np.allclose(grad, 0.0)

    def test_gradient_numeric(self):
        g = np.random.default_rng(0)
        pred = g.normal(size=(4, 3))
        target = g.normal(size=(4, 3))
        _, grad = mse_loss(pred, target)
        num = numeric_grad(lambda: mse_loss(pred, target)[0], pred)
        assert np.allclose(grad, num, atol=1e-6)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse_loss(np.zeros(2), np.zeros(3))


class TestL1:
    def test_value(self):
        loss, _ = l1_loss(np.array([1.0, -2.0]), np.array([0.0, 0.0]))
        assert loss == pytest.approx(1.5)

    def test_gradient_numeric(self):
        g = np.random.default_rng(1)
        pred = g.normal(size=(3, 3)) + 0.5  # avoid the kink at 0
        target = np.zeros((3, 3))
        _, grad = l1_loss(pred, target)
        num = numeric_grad(lambda: l1_loss(pred, target)[0], pred)
        assert np.allclose(grad, num, atol=1e-5)


class TestOffsetLoss:
    def test_value_is_mean_euclidean(self):
        pred = np.array([[3.0, 4.0, 0.0], [0.0, 0.0, 0.0]])
        target = np.zeros((2, 3))
        loss, _ = offset_loss(pred, target)
        assert loss == pytest.approx(2.5)  # (5 + 0) / 2

    def test_gradient_numeric(self):
        g = np.random.default_rng(2)
        pred = g.normal(size=(5, 3))
        target = g.normal(size=(5, 3))
        _, grad = offset_loss(pred, target)
        num = numeric_grad(lambda: offset_loss(pred, target)[0], pred)
        assert np.allclose(grad, num, atol=1e-5)

    def test_no_nan_at_exact_match(self):
        x = np.ones((2, 3))
        loss, grad = offset_loss(x, x)
        assert loss == 0.0
        assert np.isfinite(grad).all()
