"""Training loop tests: convergence, noise injection, config validation."""

import numpy as np
import pytest

from repro.nn import MLP, TrainConfig, Trainer


def toy_regression(n=400, seed=0):
    """y = Ax + b with a little structure — learnable by a small MLP."""
    g = np.random.default_rng(seed)
    X = g.uniform(-1, 1, (n, 3))
    A = np.array([[1.0, -0.5, 0.2], [0.3, 0.8, -0.1]]).T
    Y = X @ A + 0.1 * np.sin(3 * X[:, :2])
    return X, Y


class TestFit:
    def test_loss_decreases(self):
        X, Y = toy_regression()
        net = MLP((3, 16, 2), output_activation=None, seed=0)
        result = Trainer(net, TrainConfig(epochs=30, lr=5e-3, seed=0)).fit(X, Y)
        assert result.final_loss < result.epoch_losses[0] * 0.5

    def test_fits_linear_map_well(self):
        X, Y = toy_regression()
        net = MLP((3, 32, 2), output_activation=None, seed=0)
        result = Trainer(net, TrainConfig(epochs=80, lr=5e-3, seed=0)).fit(X, Y)
        assert result.final_loss < 0.01

    def test_reproducible(self):
        X, Y = toy_regression()
        r1 = Trainer(MLP((3, 8, 2), seed=1), TrainConfig(epochs=5, seed=7)).fit(X, Y)
        r2 = Trainer(MLP((3, 8, 2), seed=1), TrainConfig(epochs=5, seed=7)).fit(X, Y)
        assert r1.epoch_losses == r2.epoch_losses

    def test_noise_injection_changes_training(self):
        X, Y = toy_regression()
        base = Trainer(MLP((3, 8, 2), seed=1), TrainConfig(epochs=5, seed=7)).fit(X, Y)
        noisy = Trainer(
            MLP((3, 8, 2), seed=1), TrainConfig(epochs=5, seed=7, noise_sigma=0.02)
        ).fit(X, Y)
        assert base.epoch_losses != noisy.epoch_losses

    def test_noise_improves_quantized_input_robustness(self):
        """The paper's rationale: σ=0.02 noise → robustness to quantization."""
        X, Y = toy_regression(n=800)
        clean_net = MLP((3, 24, 2), output_activation=None, seed=2)
        noisy_net = MLP((3, 24, 2), output_activation=None, seed=2)
        Trainer(clean_net, TrainConfig(epochs=60, lr=5e-3, seed=0)).fit(X, Y)
        Trainer(
            noisy_net, TrainConfig(epochs=60, lr=5e-3, seed=0, noise_sigma=0.05)
        ).fit(X, Y)
        # Evaluate both on coarsely quantized inputs.
        Xq = np.round(X * 8) / 8
        err_clean = float(np.mean((clean_net.forward(Xq) - Y) ** 2))
        err_noisy = float(np.mean((noisy_net.forward(Xq) - Y) ** 2))
        assert err_noisy < err_clean * 1.25  # at least comparable, usually better

    def test_empty_dataset_rejected(self):
        net = MLP((3, 4, 2), seed=0)
        with pytest.raises(ValueError, match="empty"):
            Trainer(net).fit(np.zeros((0, 3)), np.zeros((0, 2)))

    def test_mismatched_rows_rejected(self):
        net = MLP((3, 4, 2), seed=0)
        with pytest.raises(ValueError, match="same number"):
            Trainer(net).fit(np.zeros((5, 3)), np.zeros((4, 2)))

    def test_final_loss_requires_epochs(self):
        from repro.nn import TrainResult

        with pytest.raises(ValueError):
            TrainResult().final_loss
