"""Layer forward/backward correctness, including numeric gradient checks."""

import numpy as np
import pytest

from repro.nn import LeakyReLU, Linear, ReLU, Tanh


def numeric_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar f at x."""
    g = np.zeros_like(x)
    flat = x.reshape(-1)
    gf = g.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        hi = f()
        flat[i] = old - eps
        lo = f()
        flat[i] = old
        gf[i] = (hi - lo) / (2 * eps)
    return g


class TestLinear:
    def test_forward_shape_and_value(self):
        lin = Linear(3, 2, rng=np.random.default_rng(0))
        lin.W[:] = np.arange(6).reshape(3, 2)
        lin.b[:] = [1.0, -1.0]
        x = np.array([[1.0, 0.0, 2.0]])
        y = lin.forward(x)
        assert y.shape == (1, 2)
        assert np.allclose(y, x @ lin.W + lin.b)

    def test_input_gradient_matches_numeric(self):
        g = np.random.default_rng(1)
        lin = Linear(4, 3, rng=g)
        x = g.normal(size=(5, 4))
        y = lin.forward(x)
        loss_grad = np.ones_like(y)

        def loss():
            return float(lin.forward(x).sum())

        dx = lin.backward(loss_grad)
        dx_num = numeric_grad(loss, x)
        assert np.allclose(dx, dx_num, atol=1e-5)

    def test_weight_gradient_matches_numeric(self):
        g = np.random.default_rng(2)
        lin = Linear(3, 2, rng=g)
        x = g.normal(size=(4, 3))

        def loss():
            return float(lin.forward(x).sum())

        lin.forward(x)
        lin.zero_grad()
        lin.backward(np.ones((4, 2)))
        dW_num = numeric_grad(loss, lin.W)
        db_num = numeric_grad(loss, lin.b)
        assert np.allclose(lin.dW, dW_num, atol=1e-5)
        assert np.allclose(lin.db, db_num, atol=1e-5)

    def test_grad_accumulates_until_zeroed(self):
        g = np.random.default_rng(3)
        lin = Linear(2, 2, rng=g)
        x = g.normal(size=(3, 2))
        lin.forward(x)
        lin.backward(np.ones((3, 2)))
        first = lin.dW.copy()
        lin.forward(x)
        lin.backward(np.ones((3, 2)))
        assert np.allclose(lin.dW, 2 * first)
        lin.zero_grad()
        assert np.allclose(lin.dW, 0.0)

    def test_backward_before_forward_raises(self):
        lin = Linear(2, 2)
        with pytest.raises(RuntimeError):
            lin.backward(np.ones((1, 2)))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)


@pytest.mark.parametrize(
    "layer_cls,ref_fn",
    [
        (ReLU, lambda x: np.maximum(x, 0)),
        (Tanh, np.tanh),
        (LeakyReLU, lambda x: np.where(x > 0, x, 0.01 * x)),
    ],
)
class TestActivations:
    def test_forward(self, layer_cls, ref_fn):
        x = np.linspace(-2, 2, 11).reshape(1, -1)
        assert np.allclose(layer_cls().forward(x), ref_fn(x))

    def test_gradient_numeric(self, layer_cls, ref_fn):
        g = np.random.default_rng(4)
        # Keep away from the ReLU kink where numeric grads are undefined.
        x = g.normal(size=(3, 5))
        x[np.abs(x) < 1e-3] = 0.1
        layer = layer_cls()

        def loss():
            return float(ref_fn(x).sum())

        layer.forward(x)
        dx = layer.backward(np.ones_like(x))
        dx_num = numeric_grad(loss, x)
        assert np.allclose(dx, dx_num, atol=1e-5)

    def test_backward_before_forward(self, layer_cls, ref_fn):
        with pytest.raises(RuntimeError):
            layer_cls().backward(np.ones((1, 2)))
