"""Optimizer behaviour tests."""

import numpy as np
import pytest

from repro.nn import SGD, Adam


def quadratic_problem():
    """Minimize ||p - target||^2 for a single parameter array."""
    p = np.array([5.0, -3.0, 2.0])
    g = np.zeros_like(p)
    target = np.array([1.0, 1.0, 1.0])

    def compute_grad():
        g[...] = 2 * (p - target)

    return p, g, target, compute_grad


class TestSGD:
    def test_plain_descent_converges(self):
        p, g, target, grad = quadratic_problem()
        opt = SGD([p], [g], lr=0.1)
        for _ in range(200):
            grad()
            opt.step()
        assert np.allclose(p, target, atol=1e-4)

    def test_momentum_faster_than_plain(self):
        p1, g1, target, grad1 = quadratic_problem()
        p2, g2 = p1.copy(), g1.copy()

        def grad2():
            g2[...] = 2 * (p2 - target)

        plain = SGD([p1], [g1], lr=0.02)
        mom = SGD([p2], [g2], lr=0.02, momentum=0.9)
        for _ in range(50):
            grad1(); plain.step()
            grad2(); mom.step()
        assert np.linalg.norm(p2 - target) < np.linalg.norm(p1 - target)

    def test_single_step_value(self):
        p = np.array([1.0])
        g = np.array([2.0])
        SGD([p], [g], lr=0.5).step()
        assert p[0] == pytest.approx(0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([np.zeros(1)], [np.zeros(1)], momentum=1.0)

    def test_zero_grad(self):
        p, g = np.zeros(2), np.ones(2)
        opt = SGD([p], [g])
        opt.zero_grad()
        assert (g == 0).all()


class TestAdam:
    def test_converges(self):
        p, g, target, grad = quadratic_problem()
        opt = Adam([p], [g], lr=0.1)
        for _ in range(500):
            grad()
            opt.step()
        assert np.allclose(p, target, atol=1e-3)

    def test_bias_correction_first_step(self):
        """First Adam step has magnitude ~lr regardless of grad scale."""
        for scale in (1e-3, 1.0, 1e3):
            p = np.array([0.0])
            g = np.array([scale])
            Adam([p], [g], lr=0.01).step()
            assert abs(p[0]) == pytest.approx(0.01, rel=1e-3)

    def test_handles_sparse_like_grads(self):
        p = np.zeros(3)
        g = np.zeros(3)
        opt = Adam([p], [g], lr=0.1)
        g[:] = [1.0, 0.0, 0.0]
        opt.step()
        assert p[0] != 0.0 and p[1] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Adam([np.zeros(1)], [np.zeros(1)], lr=0.0)
        with pytest.raises(ValueError):
            Adam([np.zeros(1)], [np.zeros(1), np.zeros(1)])
