"""MLP composition, gradient flow, and serialization."""

import numpy as np
import pytest

from repro.nn import MLP
from tests.nn.test_layers import numeric_grad


class TestForward:
    def test_shapes(self):
        net = MLP((4, 8, 3), seed=0)
        y = net.forward(np.zeros((5, 4)))
        assert y.shape == (5, 3)

    def test_1d_input_squeezed(self):
        net = MLP((4, 8, 3), seed=0)
        y = net.forward(np.zeros(4))
        assert y.shape == (3,)

    def test_wrong_input_dim(self):
        net = MLP((4, 8, 3), seed=0)
        with pytest.raises(ValueError, match="input dim"):
            net.forward(np.zeros((2, 5)))

    def test_tanh_output_bounded(self):
        net = MLP((4, 16, 3), output_activation="tanh", seed=0)
        y = net.forward(np.random.default_rng(0).normal(0, 100, (20, 4)))
        assert (np.abs(y) <= 1.0).all()

    def test_no_output_activation_unbounded(self):
        net = MLP((1, 1), output_activation=None, seed=0)
        net.layers[0].W[:] = 100.0
        net.layers[0].b[:] = 0.0
        assert net.forward(np.array([[10.0]]))[0, 0] == pytest.approx(1000.0)

    def test_callable_alias(self):
        net = MLP((2, 2), seed=0)
        x = np.ones((1, 2))
        assert np.allclose(net(x), net.forward(x))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            MLP((4,))
        with pytest.raises(ValueError):
            MLP((4, 2), activation="selu")
        with pytest.raises(ValueError):
            MLP((4, 2), output_activation="softmax")


class TestBackward:
    def test_full_network_gradient_check(self):
        net = MLP((3, 6, 2), activation="tanh", output_activation=None, seed=1)
        g = np.random.default_rng(5)
        x = g.normal(size=(4, 3))

        def loss():
            return float((net.forward(x) ** 2).sum())

        y = net.forward(x)
        net.zero_grad()
        net.backward(2 * y)
        for p, grad in zip(net.params(), net.grads()):
            num = numeric_grad(loss, p)
            assert np.allclose(grad, num, atol=1e-4), "parameter gradient mismatch"

    def test_n_parameters(self):
        net = MLP((3, 8, 2), seed=0)
        assert net.n_parameters() == 3 * 8 + 8 + 8 * 2 + 2

    def test_seed_reproducible(self):
        a = MLP((4, 8, 2), seed=42)
        b = MLP((4, 8, 2), seed=42)
        x = np.ones((2, 4))
        assert np.allclose(a.forward(x), b.forward(x))


class TestSerialization:
    def test_state_dict_roundtrip(self):
        a = MLP((4, 8, 3), seed=0)
        b = MLP((4, 8, 3), seed=99)
        b.load_state_dict(a.state_dict())
        x = np.random.default_rng(0).normal(size=(3, 4))
        assert np.allclose(a.forward(x), b.forward(x))

    def test_save_load_file(self, tmp_path):
        net = MLP((4, 8, 3), seed=0)
        p = tmp_path / "net.npz"
        net.save(p)
        back = MLP.load(p)
        x = np.random.default_rng(1).normal(size=(5, 4))
        assert np.allclose(net.forward(x), back.forward(x))

    def test_load_state_shape_mismatch(self):
        a = MLP((4, 8, 3), seed=0)
        state = a.state_dict()
        state["p0"] = np.zeros((2, 2))
        with pytest.raises(ValueError, match="shape mismatch"):
            a.load_state_dict(state)

    def test_load_state_count_mismatch(self):
        a = MLP((4, 8, 3), seed=0)
        with pytest.raises(ValueError, match="arrays"):
            a.load_state_dict({"p0": np.zeros((4, 8))})
