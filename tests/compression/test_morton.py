"""Morton code tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import MAX_DEPTH, morton_decode, morton_encode


class TestMorton:
    def test_roundtrip_small(self):
        ijk = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1], [7, 7, 7]])
        assert (morton_decode(morton_encode(ijk)) == ijk).all()

    def test_known_values(self):
        # x -> bit 0, y -> bit 1, z -> bit 2.
        assert morton_encode(np.array([[1, 0, 0]]))[0] == 1
        assert morton_encode(np.array([[0, 1, 0]]))[0] == 2
        assert morton_encode(np.array([[0, 0, 1]]))[0] == 4
        assert morton_encode(np.array([[2, 0, 0]]))[0] == 8

    def test_locality(self):
        """Adjacent voxels in a 2x2x2 block share all but the low 3 bits."""
        base = np.array([[4, 6, 2]])
        c0 = morton_encode(base * 2)
        c1 = morton_encode(base * 2 + [1, 1, 1])
        assert (c0 >> np.uint64(3)) == (c1 >> np.uint64(3))

    def test_sorted_order_is_octree_dfs(self):
        """Sorting by code groups complete octants contiguously."""
        ax = np.arange(4)
        ijk = np.stack(np.meshgrid(ax, ax, ax, indexing="ij"), -1).reshape(-1, 3)
        codes = np.sort(morton_encode(ijk))
        parents = codes >> np.uint64(3)
        # Each parent appears exactly 8 times, contiguously.
        change = np.flatnonzero(np.r_[True, parents[1:] != parents[:-1], True])
        assert (np.diff(change) == 8).all()

    def test_bounds_checks(self):
        with pytest.raises(ValueError):
            morton_encode(np.array([[-1, 0, 0]]))
        with pytest.raises(ValueError):
            morton_encode(np.array([[1 << MAX_DEPTH, 0, 0]]))
        with pytest.raises(ValueError):
            morton_encode(np.zeros((3, 2), dtype=int))


@given(seed=st.integers(0, 1000), depth=st.integers(1, MAX_DEPTH))
@settings(max_examples=30, deadline=None)
def test_roundtrip_property(seed, depth):
    g = np.random.default_rng(seed)
    ijk = g.integers(0, 1 << depth, (100, 3))
    assert (morton_decode(morton_encode(ijk)) == ijk).all()


@given(seed=st.integers(0, 200))
@settings(max_examples=20, deadline=None)
def test_codes_unique_iff_voxels_unique(seed):
    g = np.random.default_rng(seed)
    ijk = g.integers(0, 64, (200, 3))
    codes = morton_encode(ijk)
    n_unique_voxels = len(np.unique(ijk, axis=0))
    assert len(np.unique(codes)) == n_unique_voxels
