"""Octree codec tests: roundtrip, rate, distortion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    compression_summary,
    octree_decode,
    octree_encode,
)
from repro.compression.octree_codec import _zero_rle_decode, _zero_rle_encode
from repro.metrics import chamfer_distance
from repro.pointcloud import PointCloud


class TestRLE:
    def test_roundtrip(self):
        data = np.array([1, 0, 0, 0, 5, 0, 2, 0, 0], dtype=np.uint8)
        assert (_zero_rle_decode(_zero_rle_encode(data), len(data)) == data).all()

    def test_compresses_zeros(self):
        data = np.zeros(1000, dtype=np.uint8)
        assert len(_zero_rle_encode(data)) < 20

    def test_long_runs_split(self):
        data = np.zeros(600, dtype=np.uint8)
        out = _zero_rle_decode(_zero_rle_encode(data), 600)
        assert (out == 0).all()

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            _zero_rle_decode(b"\x00", 5)

    def test_wrong_length_rejected(self):
        enc = _zero_rle_encode(np.array([1, 2, 3], dtype=np.uint8))
        with pytest.raises(ValueError):
            _zero_rle_decode(enc, 10)


class TestCodec:
    def test_geometry_within_voxel_tolerance(self, small_frame):
        depth = 10
        enc = octree_encode(small_frame, depth)
        dec = octree_decode(enc)
        # Every decoded point within half a voxel diagonal of a source point.
        lo, hi = small_frame.bounds()
        voxel = np.max(hi - lo) / (1 << depth)
        from repro.metrics import p2p_distances

        assert p2p_distances(dec, small_frame).max() <= voxel * np.sqrt(3)

    def test_colors_preserved_for_isolated_voxels(self, small_frame):
        """At fine depths voxels hold single points, so colors round-trip."""
        from repro.spatial import kdtree_knn

        enc = octree_encode(small_frame, 12)
        dec = octree_decode(enc)
        idx, _ = kdtree_knn(small_frame.positions, dec.positions, 1)
        err = np.abs(
            dec.colors.astype(int) - small_frame.colors[idx[:, 0]].astype(int)
        ).mean()
        assert err < 1.0

    def test_distortion_decreases_with_depth(self, small_frame):
        cds = [
            compression_summary(small_frame, depth)["chamfer"]
            for depth in (6, 8, 10)
        ]
        assert cds[0] > cds[1] > cds[2]

    def test_rate_increases_with_depth(self, small_frame):
        rates = [
            compression_summary(small_frame, depth)["bytes_per_point"]
            for depth in (6, 8, 10)
        ]
        assert rates[0] < rates[2]

    def test_compression_beats_raw(self, small_frame):
        s = compression_summary(small_frame, 10)
        assert s["compression_ratio"] > 1.5

    def test_grounds_streaming_constant(self):
        """The 6 B/pt transport assumption holds at the paper's density."""
        from repro.pointcloud import make_video

        frame = make_video("longdress", n_points=20_000, n_frames=1).frame(0)
        s = compression_summary(frame, 10)
        assert 4.0 < s["bytes_per_point"] < 8.0

    def test_colorless_cloud(self):
        pc = PointCloud(np.random.default_rng(0).uniform(0, 1, (500, 3)))
        dec = octree_decode(octree_encode(pc, 8))
        assert not dec.has_colors
        assert len(dec) > 0

    def test_empty_cloud(self):
        enc = octree_encode(PointCloud.empty(), 8)
        dec = octree_decode(enc)
        assert len(dec) == 0

    def test_single_point(self):
        pc = PointCloud(np.array([[1.0, 2.0, 3.0]]), np.array([[9, 9, 9]], dtype=np.uint8))
        dec = octree_decode(octree_encode(pc, 8))
        assert len(dec) == 1
        assert np.allclose(dec.positions[0], [1, 2, 3], atol=1e-6)

    def test_depth_validation(self, small_frame):
        with pytest.raises(ValueError):
            octree_encode(small_frame, 0)
        with pytest.raises(ValueError):
            octree_encode(small_frame, 30)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="octree"):
            octree_decode(b"XXXX" + b"\x00" * 40)

    def test_voxel_count_matches_header(self, small_frame):
        enc = octree_encode(small_frame, 9)
        dec = octree_decode(enc)
        assert len(dec) == enc.n_voxels

    def test_decode_accepts_raw_bytes(self, small_frame):
        enc = octree_encode(small_frame, 8)
        assert len(octree_decode(enc.payload)) == enc.n_voxels


@given(seed=st.integers(0, 100), depth=st.integers(4, 12))
@settings(max_examples=20, deadline=None)
def test_roundtrip_distortion_bounded_property(seed, depth):
    g = np.random.default_rng(seed)
    pc = PointCloud(g.uniform(-3, 3, (150, 3)))
    dec = octree_decode(octree_encode(pc, depth))
    # Chamfer bounded by the voxel diagonal at this depth.
    voxel = 6.0 / (1 << depth)
    assert chamfer_distance(dec, pc) <= 2 * voxel * np.sqrt(3)
