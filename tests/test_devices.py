"""Device profile + op-count cost model tests, including the paper's
headline shapes."""

import pytest

from repro.devices import (
    DESKTOP_CPU,
    DESKTOP_GPU,
    ORANGE_PI,
    PROFILES,
    CostModel,
    DeviceProfile,
)


class TestDeviceProfile:
    def test_seconds(self):
        p = DeviceProfile("t", ops_per_second=1e9, macs_per_second=1e10, candidate_fraction=0.5)
        assert p.seconds(1e9) == pytest.approx(1.0)
        assert p.seconds(0, macs=1e10) == pytest.approx(1.0)
        assert p.seconds(5e8, macs=5e9) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceProfile("t", 0, 1, 0.5)
        with pytest.raises(ValueError):
            DeviceProfile("t", 1, 1, 0.0)
        p = DeviceProfile("t", 1e9, 1e9, 0.5)
        with pytest.raises(ValueError):
            p.seconds(-1)

    def test_registry(self):
        assert set(PROFILES) == {"orange-pi", "desktop-gpu", "desktop-cpu"}


class TestCostModel:
    def test_new_points(self):
        assert CostModel.new_points(1000, 2.0) == 1000
        assert CostModel.new_points(1000, 1.0) == 0
        assert CostModel.new_points(1000, 2.5) == 1500

    def test_volut_stage_keys(self):
        stages = CostModel.volut_frame(10_000, 2.0, ORANGE_PI)
        assert set(stages) == {"knn", "interpolation", "colorization", "refinement"}
        assert all(v >= 0 for v in stages.values())

    def test_knn_dominates_volut(self):
        stages = CostModel.volut_frame(50_000, 2.0, ORANGE_PI)
        others = sum(v for k, v in stages.items() if k != "knn")
        assert stages["knn"] > others

    def test_unknown_system(self):
        with pytest.raises(ValueError):
            CostModel.frame_seconds("pu-net", 1000, 2.0, ORANGE_PI)


class TestPaperShapes:
    """The headline latency relationships the reproduction must preserve."""

    def test_interpolation_speedup_orange_pi(self):
        """Paper: 3.7-3.9x over vanilla on the Orange Pi (Fig 11)."""
        for ratio in (2.0, 4.0, 8.0):
            n_in = int(100_000 / ratio)
            ours = CostModel.volut_frame(n_in, ratio, ORANGE_PI)
            van = CostModel.vanilla_frame(n_in, ratio, ORANGE_PI)
            ours_interp = ours["knn"] + ours["interpolation"]
            van_interp = (
                ORANGE_PI.seconds(CostModel.knn_ops(n_in, n_in, 1.0))
                + van["interpolation"]
            )
            speedup = van_interp / ours_interp
            assert 3.0 < speedup < 4.5

    def test_interpolation_speedup_gpu(self):
        """Paper: 7.5-8.1x on the 3080Ti."""
        n_in = 50_000
        ours = CostModel.volut_frame(n_in, 2.0, DESKTOP_GPU)
        van_knn = DESKTOP_GPU.seconds(CostModel.knn_ops(n_in, n_in, 1.0))
        speedup = van_knn / (ours["knn"] + ours["interpolation"])
        assert 7.0 < speedup < 9.0

    def test_orange_pi_line_rate_at_8x(self):
        """Paper: ~31 FPS at 8x on the Orange Pi."""
        sec = CostModel.frame_seconds("volut", 12_500, 8.0, ORANGE_PI)
        assert 24 < 1.0 / sec < 40

    def test_gpu_fps_at_2x(self):
        """Paper: ~357 FPS at 2x on the 3080Ti."""
        sec = CostModel.frame_seconds("volut", 50_000, 2.0, DESKTOP_GPU)
        assert 250 < 1.0 / sec < 450

    def test_yuzu_slowdown_near_paper(self):
        """Paper: VoLUT 8.4x faster than YuZu's neural SR (Fig 17)."""
        v = CostModel.frame_seconds("volut", 50_000, 2.0, DESKTOP_GPU)
        y = CostModel.frame_seconds("yuzu", 50_000, 2.0, DESKTOP_GPU)
        assert 6.0 < y / v < 14.0

    def test_gradpu_slowdown_order_of_magnitude(self):
        """Paper: 46,400x faster than GradPU (Fig 17)."""
        v = CostModel.frame_seconds("volut", 50_000, 2.0, DESKTOP_GPU)
        g = CostModel.frame_seconds("gradpu", 50_000, 2.0, DESKTOP_GPU)
        assert 1e4 < g / v < 1e5

    def test_volut_latency_flat_in_ratio(self):
        """Paper Fig 18: FPS ~stable across ratios at fixed input size."""
        times = [
            CostModel.frame_seconds("volut", 12_500, r, ORANGE_PI)
            for r in (2.0, 4.0, 8.0)
        ]
        assert max(times) / min(times) < 1.3

    def test_yuzu_workload_grows_at_low_density(self):
        """Paper §7.4: lower fetch density → more SR workload for YuZu."""
        hi_density = CostModel.frame_seconds("yuzu", 50_000, 2.0, DESKTOP_GPU)
        lo_density = CostModel.frame_seconds("yuzu", 12_500, 8.0, DESKTOP_GPU)
        assert lo_density > hi_density

    def test_cpu_between_pi_and_gpu(self):
        t = {
            p.name: CostModel.frame_seconds("volut", 25_000, 4.0, p)
            for p in (ORANGE_PI, DESKTOP_CPU, DESKTOP_GPU)
        }
        assert t["desktop-gpu"] < t["desktop-cpu"] < t["orange-pi"]
