"""Geometric metric tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    chamfer_distance,
    geometry_psnr,
    hausdorff_distance,
    p2p_distances,
)
from repro.pointcloud import PointCloud


def cloud(arr):
    return PointCloud(np.asarray(arr, dtype=float))


class TestP2P:
    def test_identical_clouds_zero(self, random_cloud):
        d = p2p_distances(random_cloud, random_cloud)
        assert np.allclose(d, 0.0)

    def test_known_distance(self):
        a = cloud([[0, 0, 0]])
        b = cloud([[3, 4, 0], [10, 10, 10]])
        assert p2p_distances(a, b)[0] == pytest.approx(5.0)

    def test_empty_source(self):
        assert len(p2p_distances(cloud(np.zeros((0, 3))), cloud([[0, 0, 0]]))) == 0

    def test_empty_target_rejected(self):
        with pytest.raises(ValueError):
            p2p_distances(cloud([[0, 0, 0]]), cloud(np.zeros((0, 3))))

    def test_accepts_raw_arrays(self):
        d = p2p_distances(np.zeros((2, 3)), np.ones((3, 3)))
        assert d.shape == (2,)


class TestChamfer:
    def test_zero_for_identical(self, random_cloud):
        assert chamfer_distance(random_cloud, random_cloud) == pytest.approx(0.0)

    def test_symmetric(self, random_cloud, small_frame):
        a = chamfer_distance(random_cloud, small_frame)
        b = chamfer_distance(small_frame, random_cloud)
        assert a == pytest.approx(b)

    def test_known_value(self):
        a = cloud([[0, 0, 0]])
        b = cloud([[1, 0, 0]])
        assert chamfer_distance(a, b) == pytest.approx(2.0)  # 1 + 1
        assert chamfer_distance(a, b, squared=True) == pytest.approx(2.0)

    def test_grows_with_noise(self, small_frame):
        g = np.random.default_rng(0)
        small = PointCloud(small_frame.positions + g.normal(0, 0.001, (len(small_frame), 3)))
        big = PointCloud(small_frame.positions + g.normal(0, 0.05, (len(small_frame), 3)))
        assert chamfer_distance(small, small_frame) < chamfer_distance(big, small_frame)


class TestHausdorff:
    def test_upper_bounds_chamfer_mean(self, small_frame):
        g = np.random.default_rng(1)
        noisy = PointCloud(small_frame.positions + g.normal(0, 0.01, (len(small_frame), 3)))
        assert hausdorff_distance(noisy, small_frame) >= 0.5 * chamfer_distance(
            noisy, small_frame
        )

    def test_known_value(self):
        a = cloud([[0, 0, 0], [1, 0, 0]])
        b = cloud([[0, 0, 0]])
        assert hausdorff_distance(a, b) == pytest.approx(1.0)


class TestGeometryPSNR:
    def test_inf_for_identical(self, random_cloud):
        assert geometry_psnr(random_cloud, random_cloud) == float("inf")

    def test_monotone_in_noise(self, small_frame):
        g = np.random.default_rng(2)
        a = PointCloud(small_frame.positions + g.normal(0, 0.001, (len(small_frame), 3)))
        b = PointCloud(small_frame.positions + g.normal(0, 0.01, (len(small_frame), 3)))
        assert geometry_psnr(a, small_frame) > geometry_psnr(b, small_frame)

    def test_custom_peak(self):
        a = cloud([[0, 0, 0]])
        b = cloud([[1, 0, 0]])
        # mse = 1; peak 10 → 10*log10(100) = 20 dB
        assert geometry_psnr(a, b, peak=10.0) == pytest.approx(20.0)

    def test_invalid_peak(self, random_cloud):
        with pytest.raises(ValueError):
            geometry_psnr(random_cloud, random_cloud, peak=0.0)


@given(seed=st.integers(0, 100), sigma=st.floats(1e-4, 0.2))
@settings(max_examples=20, deadline=None)
def test_chamfer_nonnegative_and_triangleish(seed, sigma):
    g = np.random.default_rng(seed)
    base = g.uniform(-1, 1, (60, 3))
    noisy = base + g.normal(0, sigma, (60, 3))
    cd = chamfer_distance(PointCloud(base), PointCloud(noisy))
    assert cd >= 0.0
    # CD between a cloud and a shifted copy is at most twice the shift.
    assert cd <= 2 * np.linalg.norm(noisy - base, axis=1).max() + 1e-12
