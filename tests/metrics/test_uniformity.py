"""Uniformity metric tests."""

import numpy as np
import pytest

from repro.metrics import coverage_radius, local_density_cv, nn_distance_cv
from repro.pointcloud import PointCloud


def grid_cloud(n_side=8):
    """A perfectly regular grid — the most uniform possible distribution."""
    ax = np.arange(n_side, dtype=float)
    g = np.stack(np.meshgrid(ax, ax, ax, indexing="ij"), axis=-1).reshape(-1, 3)
    return PointCloud(g)


def clumped_cloud(seed=0):
    """Two tight clusters — maximally clumped."""
    g = np.random.default_rng(seed)
    a = g.normal(0, 0.02, (150, 3))
    b = g.normal(5, 0.02, (150, 3))
    return PointCloud(np.vstack([a, b]))


class TestNNDistanceCV:
    def test_grid_is_near_zero(self):
        assert nn_distance_cv(grid_cloud()) == pytest.approx(0.0, abs=1e-9)

    def test_clumped_higher_than_uniform(self):
        g = np.random.default_rng(1)
        uniform = PointCloud(g.uniform(0, 1, (300, 3)))
        assert nn_distance_cv(clumped_cloud()) > nn_distance_cv(uniform)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            nn_distance_cv(PointCloud(np.zeros((1, 3))))


class TestLocalDensityCV:
    def test_grid_lower_than_clumped(self):
        assert local_density_cv(grid_cloud()) < local_density_cv(clumped_cloud())

    def test_k_validation(self):
        with pytest.raises(ValueError):
            local_density_cv(PointCloud(np.zeros((3, 3))), k=8)

    def test_accepts_raw_arrays(self):
        g = np.random.default_rng(2)
        assert local_density_cv(g.uniform(0, 1, (100, 3))) > 0


class TestCoverageRadius:
    def test_zero_when_cloud_contains_surface(self, random_cloud):
        assert coverage_radius(random_cloud, random_cloud) == pytest.approx(0.0)

    def test_detects_hole(self):
        surface = grid_cloud(6)
        # Remove a corner region -> points there are far from the cloud.
        mask = ~((surface.positions < 1.5).all(axis=1))
        holed = surface.select(mask)
        assert coverage_radius(holed, surface) > 1.0
