"""Temporal-stability metric tests."""

import numpy as np
import pytest

from repro.metrics import flicker_index, temporal_chamfer
from repro.pointcloud import PointCloud, make_video


class TestTemporalChamfer:
    def test_zero_for_identical_sequences(self):
        v = make_video("loot", n_points=800, n_frames=3)
        frames = [v.frame(i) for i in range(3)]
        assert temporal_chamfer(frames, frames) == pytest.approx(0.0)

    def test_detects_reconstruction_jitter(self):
        """Independently re-randomized reconstructions churn more than GT."""
        from repro.pointcloud import random_downsample_count
        from repro.sr import interpolate

        v = make_video("loot", n_points=1200, n_frames=3)
        gt = [v.frame(i) for i in range(3)]
        # Different interpolation seeds per frame = temporal jitter.
        rec = []
        for i, f in enumerate(gt):
            low = random_downsample_count(f, 600, seed=0)
            rec.append(interpolate(low, 2.0, seed=100 + i).upsampled)
        assert temporal_chamfer(rec, gt) > 0.0

    def test_stable_seeds_reduce_jitter(self):
        """Using a fixed interpolation seed across frames lowers churn —
        the practical knob a deployment would turn."""
        from repro.pointcloud import random_downsample_count
        from repro.sr import interpolate

        v = make_video("loot", n_points=1200, n_frames=3)
        gt = [v.frame(i) for i in range(3)]

        def reconstruct(seeds):
            out = []
            for f, s in zip(gt, seeds):
                low = random_downsample_count(f, 600, seed=0)
                out.append(interpolate(low, 2.0, seed=s).upsampled)
            return out

        jittery = temporal_chamfer(reconstruct([1, 2, 3]), gt)
        stable = temporal_chamfer(reconstruct([1, 1, 1]), gt)
        assert stable <= jittery

    def test_validation(self):
        f = PointCloud(np.zeros((4, 3)))
        with pytest.raises(ValueError):
            temporal_chamfer([f], [f])
        with pytest.raises(ValueError):
            temporal_chamfer([f, f], [f])


class TestFlickerIndex:
    def test_zero_for_identical(self):
        g = np.random.default_rng(0)
        frames = [g.integers(0, 255, (16, 16, 3)).astype(np.uint8) for _ in range(3)]
        assert flicker_index(frames, frames) == pytest.approx(0.0)

    def test_positive_for_noisy_reconstruction(self):
        g = np.random.default_rng(1)
        base = g.integers(0, 255, (16, 16, 3)).astype(np.uint8)
        gt = [base, base, base]  # static content
        noisy = [
            np.clip(base.astype(int) + g.integers(-30, 30, base.shape), 0, 255).astype(np.uint8)
            for _ in range(3)
        ]
        assert flicker_index(noisy, gt) > 0.0

    def test_validation(self):
        img = np.zeros((4, 4, 3), dtype=np.uint8)
        with pytest.raises(ValueError):
            flicker_index([img], [img])
