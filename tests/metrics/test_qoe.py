"""QoE model tests (Eq. 10 semantics)."""

import pytest

from repro.metrics import (
    ChunkRecord,
    QoEModel,
    QoEWeights,
    aggregate_qoe,
    bootstrap_ci,
    session_qoe,
)


class TestTerms:
    def test_quality_term_scales_with_alpha(self):
        m = QoEModel(QoEWeights(alpha=2.0))
        assert m.quality_term(0.5) == pytest.approx(1.0)

    def test_variation_first_chunk_free(self):
        m = QoEModel()
        assert m.variation_term(0.5, None) == 0.0

    def test_drops_penalized_more_than_rises(self):
        m = QoEModel(QoEWeights(beta=1.0, drop_multiplier=2.0))
        rise = m.variation_term(0.8, 0.5)
        drop = m.variation_term(0.5, 0.8)
        assert drop == pytest.approx(2.0 * rise)

    def test_stall_term(self):
        m = QoEModel(QoEWeights(gamma=3.0))
        assert m.stall_term(2.0) == pytest.approx(6.0)

    def test_negative_stall_rejected(self):
        with pytest.raises(ValueError):
            QoEModel().stall_term(-1.0)


class TestSession:
    def test_steady_session_sums_quality(self):
        m = QoEModel(QoEWeights(alpha=1.0, beta=0.5, gamma=2.0))
        records = [ChunkRecord(quality=0.8) for _ in range(10)]
        assert m.session(records) == pytest.approx(8.0)

    def test_stall_reduces_qoe(self):
        m = QoEModel()
        smooth = [ChunkRecord(quality=0.8) for _ in range(5)]
        stalled = [ChunkRecord(quality=0.8, stall=0.5 if i == 2 else 0.0) for i in range(5)]
        assert m.session(stalled) < m.session(smooth)

    def test_oscillation_worse_than_steady_mean(self):
        m = QoEModel()
        steady = [ChunkRecord(quality=0.6) for _ in range(10)]
        osc = [ChunkRecord(quality=0.8 if i % 2 else 0.4) for i in range(10)]
        assert m.session(osc) < m.session(steady)

    def test_plan_value_matches_session(self):
        m = QoEModel()
        qualities = [0.5, 0.7, 0.6]
        stalls = [0.0, 0.1, 0.0]
        records = [ChunkRecord(quality=q, stall=s) for q, s in zip(qualities, stalls)]
        assert m.plan_value(qualities, stalls, None) == pytest.approx(m.session(records))

    def test_plan_value_validation(self):
        with pytest.raises(ValueError):
            QoEModel().plan_value([0.5], [], None)


class TestSessionQoE:
    def test_aggregates(self):
        records = [
            ChunkRecord(quality=0.5, stall=0.2, bytes_downloaded=100),
            ChunkRecord(quality=0.7, stall=0.0, bytes_downloaded=300),
        ]
        out = session_qoe(records)
        assert out["bytes"] == 400
        assert out["stall_seconds"] == pytest.approx(0.2)
        assert out["mean_quality"] == pytest.approx(0.6)
        assert out["n_chunks"] == 2

    def test_empty_session(self):
        out = session_qoe([])
        assert out["qoe"] == 0.0 and out["mean_quality"] == 0.0


class TestAggregateQoE:
    def test_population_statistics(self):
        qoes = list(range(101))  # 0..100: percentiles land on integers
        out = aggregate_qoe(qoes, [0.0] * 101, [10.0] * 101)
        assert out["mean_qoe"] == pytest.approx(50.0)
        assert out["p5_qoe"] == pytest.approx(5.0)
        assert out["p95_qoe"] == pytest.approx(95.0)
        assert out["stall_ratio"] == 0.0
        assert out["n_sessions"] == 101

    def test_stall_ratio_is_frozen_fraction_of_wall_clock(self):
        # 2 sessions, 10 s content each, 5 s total stall → 5 / 25.
        out = aggregate_qoe([1.0, 2.0], [2.0, 3.0], [10.0, 10.0])
        assert out["stall_ratio"] == pytest.approx(5.0 / 25.0)
        assert out["total_stall_seconds"] == pytest.approx(5.0)

    def test_single_session_degenerate_percentiles(self):
        out = aggregate_qoe([7.0], [0.0], [10.0])
        assert out["p5_qoe"] == out["mean_qoe"] == out["p95_qoe"] == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            aggregate_qoe([], [], [])
        with pytest.raises(ValueError):
            aggregate_qoe([1.0], [0.0, 0.0], [10.0])
        with pytest.raises(ValueError):
            aggregate_qoe([1.0], [-0.1], [10.0])
        with pytest.raises(ValueError):
            aggregate_qoe([1.0], [0.0], [0.0])


class TestBootstrapCI:
    def test_deterministic_given_seed(self):
        values = [float(v) for v in range(40)]
        assert bootstrap_ci(values, seed=7) == bootstrap_ci(values, seed=7)
        assert bootstrap_ci(values, seed=7) != bootstrap_ci(values, seed=8)

    def test_interval_brackets_the_mean(self):
        values = [float(v) for v in range(200)]
        lo, hi = bootstrap_ci(values, n_boot=500)
        mean = sum(values) / len(values)
        assert lo < mean < hi

    def test_wider_confidence_is_wider(self):
        values = [float(v % 17) for v in range(60)]
        lo99, hi99 = bootstrap_ci(values, confidence=0.99)
        lo90, hi90 = bootstrap_ci(values, confidence=0.90)
        assert hi99 - lo99 >= hi90 - lo90

    def test_constant_sample_collapses(self):
        lo, hi = bootstrap_ci([3.0] * 25)
        assert lo == hi == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.0)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], n_boot=0)
