"""Image PSNR tests."""

import numpy as np
import pytest

from repro.metrics import image_mse, image_psnr, mean_image_psnr


class TestImageMSE:
    def test_zero_for_identical(self):
        img = np.random.default_rng(0).integers(0, 256, (8, 8, 3))
        assert image_mse(img, img) == 0.0

    def test_known_value(self):
        a = np.zeros((2, 2))
        b = np.full((2, 2), 2.0)
        assert image_mse(a, b) == pytest.approx(4.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            image_mse(np.zeros((2, 2)), np.zeros((3, 3)))


class TestImagePSNR:
    def test_inf_for_identical(self):
        img = np.ones((4, 4, 3)) * 100
        assert image_psnr(img, img) == float("inf")

    def test_known_value(self):
        a = np.zeros((10, 10))
        b = np.full((10, 10), 255.0)
        assert image_psnr(a, b) == pytest.approx(0.0)  # mse = peak^2

    def test_monotone_in_noise(self):
        g = np.random.default_rng(0)
        base = g.integers(0, 256, (16, 16, 3)).astype(float)
        small = np.clip(base + g.normal(0, 2, base.shape), 0, 255)
        big = np.clip(base + g.normal(0, 20, base.shape), 0, 255)
        assert image_psnr(small, base) > image_psnr(big, base)

    def test_invalid_peak(self):
        with pytest.raises(ValueError):
            image_psnr(np.zeros((2, 2)), np.zeros((2, 2)), peak=0)


class TestMeanPSNR:
    def test_average_of_pairs(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 255.0)
        c = np.full((4, 4), 128.0)
        mean = mean_image_psnr([(a, b), (a, c)])
        expect = (image_psnr(a, b) + image_psnr(a, c)) / 2
        assert mean == pytest.approx(expect)

    def test_infinite_pairs_clipped(self):
        img = np.ones((4, 4))
        assert mean_image_psnr([(img, img)]) == pytest.approx(99.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_image_psnr([])
