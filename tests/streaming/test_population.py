"""Trace-driven population properties: conservation, skew, determinism."""

import numpy as np
import pytest

from repro.metrics import QoEModel
from repro.net import stable_trace
from repro.streaming import (
    AbandonPolicy,
    ContentCatalog,
    ContinuousMPC,
    PoissonArrivals,
    SRQualityModel,
    SRResultCache,
    TraceArrivals,
    build_population,
    simulate_fleet,
)
from repro.streaming.population import synthetic_catalog

from .helpers import FixedDensity, sr_lat, spec


class TestArrivalProcesses:
    def test_poisson_deterministic_and_in_window(self):
        arr = PoissonArrivals(rate_hz=2.0, seed=5)
        a, b = arr.times(30.0), arr.times(30.0)
        assert np.array_equal(a, b)
        assert len(a) > 0
        assert np.all((a > 0) & (a <= 30.0))
        assert np.all(np.diff(a) > 0)

    def test_poisson_rate_scales_arrival_count(self):
        slow = PoissonArrivals(rate_hz=0.5, seed=1).times(100.0)
        fast = PoissonArrivals(rate_hz=5.0, seed=1).times(100.0)
        assert len(fast) > len(slow)

    def test_poisson_validation(self):
        with pytest.raises(ValueError, match="rate_hz"):
            PoissonArrivals(rate_hz=0.0)
        with pytest.raises(ValueError, match="window"):
            PoissonArrivals(rate_hz=1.0).times(0.0)

    def test_trace_arrivals_window_filter(self):
        arr = TraceArrivals((0.0, 1.5, 4.0, 9.0))
        assert arr.times(5.0).tolist() == [0.0, 1.5, 4.0]

    def test_trace_arrivals_validation(self):
        with pytest.raises(ValueError):
            TraceArrivals(())
        with pytest.raises(ValueError, match="sorted"):
            TraceArrivals((3.0, 1.0))
        with pytest.raises(ValueError, match="non-negative"):
            TraceArrivals((-1.0, 2.0))

    def test_trace_arrivals_csv_roundtrip(self, tmp_path):
        path = tmp_path / "joins.csv"
        path.write_text("# t_s,user\n0.5,alice\n2.25,bob\n\n7.0,carol\n")
        arr = TraceArrivals.from_csv(path)
        assert arr.arrival_times == (0.5, 2.25, 7.0)
        with pytest.raises(ValueError, match="timestamp"):
            bad = tmp_path / "bad.csv"
            bad.write_text("not-a-number\n")
            TraceArrivals.from_csv(bad)


class TestContentCatalog:
    def test_popularity_normalized_and_rank_ordered(self):
        cat = synthetic_catalog(6, skew=1.3)
        p = cat.popularity
        assert p.sum() == pytest.approx(1.0)
        assert np.all(np.diff(p) < 0)  # strictly less popular down the rank

    def test_zero_skew_is_uniform(self):
        p = synthetic_catalog(5, skew=0.0).popularity
        assert np.allclose(p, 0.2)

    def test_video_for_inverse_cdf(self):
        cat = synthetic_catalog(4, skew=0.0)
        assert cat.video_for(0.0) is cat.videos[0]
        assert cat.video_for(0.30) is cat.videos[1]
        assert cat.video_for(0.99) is cat.videos[3]

    def test_video_for_near_one_never_overflows(self):
        """The float CDF can sum to a few ulps under 1.0; draws above it
        must clamp to the tail rank, not raise IndexError."""
        u = float(np.nextafter(1.0, 0.0))
        for n, skew in ((8, 1.2), (3, 0.0), (40, 2.7)):
            cat = synthetic_catalog(n, skew=skew)
            assert cat.video_for(u) is cat.videos[-1]

    def test_higher_skew_never_demotes_a_draw(self):
        """Inverse-CDF sampling: the same uniform maps to an equal or more
        popular rank as skew grows (what makes the cache test monotone)."""
        flat, peaked = synthetic_catalog(8, skew=0.2), synthetic_catalog(8, skew=2.0)
        for u in np.linspace(0.0, 0.999, 97):
            r_flat = flat.videos.index(flat.video_for(float(u)))
            r_peak = peaked.videos.index(peaked.video_for(float(u)))
            assert r_peak <= r_flat

    def test_validation(self):
        with pytest.raises(ValueError):
            ContentCatalog(videos=())
        with pytest.raises(ValueError, match="skew"):
            synthetic_catalog(3, skew=-0.5)
        with pytest.raises(ValueError, match="u must be"):
            synthetic_catalog(3).video_for(1.0)


class TestAbandonPolicy:
    def test_thresholds(self):
        pol = AbandonPolicy(max_total_stall=5.0, max_single_stall=2.0)
        assert not pol.should_abandon(4.0, 1.0)
        assert pol.should_abandon(5.5, 1.0)  # cumulative patience gone
        assert pol.should_abandon(3.0, 2.5)  # one long freeze

    def test_validation_names_field_and_value(self):
        with pytest.raises(ValueError, match=r"max_total_stall.*got 0\.0"):
            AbandonPolicy(max_total_stall=0.0)
        with pytest.raises(ValueError, match=r"max_single_stall.*got -1"):
            AbandonPolicy(max_single_stall=-1)


def churn_population(patience, n=8, seconds=8, mbps_per_session=2.0):
    """An overloaded fixed-density population that churns at ``patience``."""
    catalog = ContentCatalog(
        videos=(spec(seconds, name="a"), spec(seconds, name="b"))
    )
    sessions = build_population(
        catalog,
        TraceArrivals(tuple(0.5 * i for i in range(n))),
        window=100.0,
        controller=FixedDensity(1.0, 1.0),
        churn=AbandonPolicy(max_total_stall=patience) if patience else None,
        seed=3,
    )
    trace = stable_trace(mbps_per_session * n, rtt=0.0)
    return simulate_fleet(sessions, trace)


class TestChurn:
    def test_overload_makes_viewers_abandon(self):
        result = churn_population(patience=1.0)
        assert result.report.n_abandoned > 0
        assert result.report.abandon_rate == pytest.approx(
            result.report.n_abandoned / result.report.n_sessions
        )
        for r in result.sessions:
            if r.abandoned:
                assert r.stall_seconds > 1.0
                assert r.n_chunks < 8  # left before the video ended
                assert r.watched_seconds < spec(8).duration

    def test_bandwidth_conservation_under_churn(self):
        """Churn frees capacity but never creates it: delivered bits stay
        bounded by the link, and every byte is accounted to a record."""
        mbps = 2.0 * 8
        result = churn_population(patience=1.0, n=8, mbps_per_session=2.0)
        total_bits = 8.0 * sum(
            rec.bytes_downloaded for r in result.sessions for rec in r.records
        )
        assert total_bits <= mbps * 1e6 * result.report.makespan * (1 + 1e-9)
        for r in result.sessions:
            assert r.total_bytes == sum(rec.bytes_downloaded for rec in r.records)

    def test_churn_frees_bandwidth_for_survivors(self):
        """With churn, remaining viewers finish sooner than a no-churn run."""
        churned = churn_population(patience=1.0)
        patient = churn_population(patience=None)
        assert churned.report.n_abandoned > 0
        assert patient.report.n_abandoned == 0
        assert churned.report.makespan < patient.report.makespan
        assert churned.report.total_bytes < patient.report.total_bytes

    def test_patient_population_matches_no_churn(self):
        """A patience no stall can exhaust is the same as no churn at all."""
        relaxed = churn_population(patience=1e9)
        none = churn_population(patience=None)
        assert relaxed.report == none.report


class TestCacheVsSkew:
    @staticmethod
    def run(skew):
        catalog = synthetic_catalog(6, seconds=6, skew=skew)
        sessions = build_population(
            catalog,
            TraceArrivals(tuple(2.0 * i for i in range(24))),
            window=100.0,
            controller=FixedDensity(0.5),
            sr_latency=sr_lat(),
            seed=17,
        )
        cache = SRResultCache()
        simulate_fleet(sessions, stable_trace(500.0), sr_cache=cache)
        return cache.hit_rate

    def test_cache_hit_rate_monotone_in_skew(self):
        """More head-heavy catalogs mean more co-watching, so the shared
        SR cache can only do better as skew grows (same uniforms)."""
        rates = [self.run(s) for s in (0.0, 0.75, 1.5, 3.0)]
        assert all(b >= a for a, b in zip(rates, rates[1:]))
        assert rates[-1] > rates[0]


class TestDeterministicReplay:
    @staticmethod
    def run():
        qm = SRQualityModel()
        lat = sr_lat()
        controller = ContinuousMPC(qm, QoEModel(), lat, n_grid=12, horizon=3)
        sessions = build_population(
            synthetic_catalog(5, seconds=8, skew=1.0),
            PoissonArrivals(rate_hz=1.5, seed=9),
            window=12.0,
            controller=controller,
            sr_latency=lat,
            quality_model=qm,
            churn=AbandonPolicy(max_total_stall=6.0),
            seed=21,
        )
        return simulate_fleet(
            sessions, stable_trace(40.0), sr_cache=SRResultCache()
        )

    def test_fixed_seed_replays_bit_exactly(self):
        a, b = self.run(), self.run()
        assert a.report == b.report
        assert len(a.sessions) == len(b.sessions)
        for ra, rb in zip(a.sessions, b.sessions):
            assert ra.qoe == rb.qoe
            assert ra.decisions == rb.decisions
            assert ra.total_bytes == rb.total_bytes
            assert ra.abandoned == rb.abandoned
            assert ra.watched_seconds == rb.watched_seconds

    def test_different_seed_differs(self):
        base = build_population(
            synthetic_catalog(5, seconds=8, skew=1.0),
            PoissonArrivals(rate_hz=1.5, seed=9),
            window=12.0,
            controller=FixedDensity(0.5),
            seed=21,
        )
        other = build_population(
            synthetic_catalog(5, seconds=8, skew=1.0),
            PoissonArrivals(rate_hz=1.5, seed=10),
            window=12.0,
            controller=FixedDensity(0.5),
            seed=21,
        )
        assert [s.join_time for s in base] != [s.join_time for s in other]


class TestBuildPopulation:
    def test_sessions_share_the_controller(self):
        ctrl = FixedDensity(0.5)
        sessions = build_population(
            synthetic_catalog(3), TraceArrivals((0.0, 1.0, 2.0)), 10.0, ctrl
        )
        assert all(s.controller is ctrl for s in sessions)

    def test_max_sessions_caps_population(self):
        sessions = build_population(
            synthetic_catalog(3),
            TraceArrivals(tuple(float(i) for i in range(10))),
            100.0,
            FixedDensity(0.5),
            max_sessions=4,
        )
        assert len(sessions) == 4

    def test_max_sessions_below_one_rejected_up_front(self):
        # Regression: max_sessions=0 used to sample the whole arrival
        # process and then quietly return an empty population.
        for bad in (0, -3):
            with pytest.raises(ValueError, match="max_sessions"):
                build_population(
                    synthetic_catalog(3),
                    TraceArrivals((0.0, 1.0)),
                    10.0,
                    FixedDensity(0.5),
                    max_sessions=bad,
                )

    def test_max_sessions_of_one_is_allowed(self):
        sessions = build_population(
            synthetic_catalog(3),
            TraceArrivals((0.0, 1.0, 2.0)),
            10.0,
            FixedDensity(0.5),
            max_sessions=1,
        )
        assert len(sessions) == 1

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError, match="no arrivals"):
            build_population(
                synthetic_catalog(3),
                TraceArrivals((50.0,)),
                10.0,
                FixedDensity(0.5),
            )
