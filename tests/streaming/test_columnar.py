"""Columnar session engine: sixth instance of the oracle-parity convention.

``simulate_fleet(session_engine="columnar")`` replaces the per-session
``SessionMachine`` generators with struct-of-arrays state
(:class:`~repro.streaming.columnar.ColumnarFleet`).  The machine engine
stays the bit-exact oracle: the hypothesis grid below pins the columnar
path against it across single-link/CDN serving, SR-cache modes, churn,
startup payloads, and the fault-free control-plane configurations —
joining kNN backends, vectorized MPC, PathScheduler engines, the sharded
executor, and the disabled-mode fault machinery.  The decision-dedup
quanta lever (``dedup_quanta=``) is pinned here too, with its bounded
QoE error.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import QoEModel
from repro.net import stable_trace
from repro.streaming import (
    COARSE_DEDUP_QUANTA,
    AbandonPolicy,
    BackhaulDegradation,
    ContinuousMPC,
    ControlPlane,
    ControlPolicy,
    EdgeOutage,
    FaultSchedule,
    FleetSession,
    SessionConfig,
    SRQualityModel,
    SRResultCache,
    get_policy,
    shard_fleet,
    simulate_fleet,
    uniform_cdn,
)

from .helpers import FixedDensity, spec, sr_lat


def make_sessions(n, n_videos=3, churn=True, startup_bytes=0):
    qm = SRQualityModel()
    lat = sr_lat()
    ctrl = ContinuousMPC(qm, QoEModel(), lat, n_grid=8, horizon=2)
    config = (
        SessionConfig(startup_bytes=startup_bytes) if startup_bytes else None
    )
    return [
        FleetSession(
            spec=spec(6, name=f"v{i % n_videos}"),
            controller=ctrl,
            sr_latency=lat,
            quality_model=qm,
            config=config,
            join_time=1.5 * i,
            churn=AbandonPolicy(max_total_stall=20.0) if churn else None,
        )
        for i in range(n)
    ]


def make_topology(n_edges, encode_seconds=0.0, cache_bytes=1 << 32):
    return uniform_cdn(
        n_edges,
        access_mbps=80.0,
        backhaul_mbps=30.0,
        cache_bytes=cache_bytes,
        assignment="static",
        n_encode_workers=3,
        encode_seconds=encode_seconds,
    )


def assert_identical(a, b):
    assert a.report == b.report
    assert len(a.sessions) == len(b.sessions)
    for ra, rb in zip(a.sessions, b.sessions):
        assert ra == rb
    assert a.assignment == b.assignment
    assert a.end_times == b.end_times


class TestColumnarParity:
    """session_engine='columnar' == session_engine='machine', bit for bit."""

    @given(
        n_sessions=st.integers(3, 8),
        mode=st.sampled_from(["link", "cdn-1", "cdn-3"]),
        encode_seconds=st.sampled_from([0.0, 0.05]),
        sr_mode=st.sampled_from(["none", "per-edge", "shared"]),
        churn=st.booleans(),
        startup_bytes=st.sampled_from([0, 200_000]),
    )
    @settings(max_examples=25, deadline=None)
    def test_parity_grid(
        self, n_sessions, mode, encode_seconds, sr_mode, churn, startup_bytes
    ):
        if mode == "link" and sr_mode == "per-edge":
            sr_mode = "shared"  # per-edge SR caches need a topology

        def run(session_engine):
            kw = {}
            if mode == "link":
                kw["trace"] = stable_trace(60.0, duration=600.0)
            else:
                kw["topology"] = make_topology(
                    int(mode.split("-")[1]), encode_seconds=encode_seconds
                )
            sr = {
                "none": None,
                "per-edge": "per-edge",
                "shared": SRResultCache(),
            }[sr_mode]
            return simulate_fleet(
                make_sessions(
                    n_sessions, churn=churn, startup_bytes=startup_bytes
                ),
                sr_cache=sr,
                session_engine=session_engine,
                **kw,
            )

        assert_identical(run("machine"), run("columnar"))

    def test_degradation_parity(self):
        """Backhaul degradations act through the trace wrapper, so the
        columnar engine supports them; outcomes must match the oracle."""
        faults = FaultSchedule((
            BackhaulDegradation(edge=0, start=2.0, duration=5.0, factor=0.2),
        ))

        def run(session_engine):
            return simulate_fleet(
                make_sessions(6),
                topology=make_topology(2),
                faults=faults,
                session_engine=session_engine,
            )

        a, b = run("machine"), run("columnar")
        assert_identical(a, b)
        assert a.report.faults_injected == 1

    def test_active_controller_parity(self):
        """A control plane that actually re-steers (skewed explicit
        assignment) and resizes the encode pool must see identical live
        health/load state from both engines."""
        def run(session_engine):
            return simulate_fleet(
                make_sessions(8, churn=False),
                topology=make_topology(3, encode_seconds=0.2),
                assignment=[0] * 6 + [1, 2],
                sr_cache="per-edge",
                controller=ControlPlane(
                    ControlPolicy(interval=1.0, saturation_factor=1.5)
                ),
                session_engine=session_engine,
            )

        a, b = run("machine"), run("columnar")
        assert a.report.control_ticks > 0
        assert a.report == b.report
        assert a.sessions == b.sessions
        assert a.assignment == b.assignment

    def test_sharded_columnar_parity(self):
        """session_engine plumbs through the sharded executor: workers=1
        columnar matches both its own simulate_fleet and the oracle."""
        ref = simulate_fleet(
            make_sessions(8),
            topology=make_topology(2),
            sr_cache="per-edge",
        )
        sharded = shard_fleet(
            make_sessions(8),
            make_topology(2),
            workers=1,
            sr_cache="per-edge",
            session_engine="columnar",
        )
        assert_identical(ref, sharded)

    def test_scheduler_engines_compose(self):
        """The session layer and the network scheduler select
        independently: columnar over the scalar scheduler still matches."""
        a = simulate_fleet(
            make_sessions(5), topology=make_topology(2), scheduler_engine="scalar"
        )
        b = simulate_fleet(
            make_sessions(5),
            topology=make_topology(2),
            scheduler_engine="scalar",
            session_engine="columnar",
        )
        assert_identical(a, b)


class TestZooColumnarParity:
    """Policy-zoo entry in the oracle-parity convention: every registry
    controller must produce identical fleets on both session engines
    (the zoo's vectorized ``decide_columns`` against the machine
    engine's per-session path)."""

    @pytest.mark.parametrize(
        "name",
        ["bola", "throughput", "hybrid", "discrete-mpc", "buffer-linear"],
    )
    def test_policy_engine_parity(self, name):
        qm = SRQualityModel()
        lat = sr_lat()

        def run(session_engine):
            ctrl = get_policy(
                name, quality_model=qm, sr_latency=lat, n_grid=8, horizon=2
            )
            sessions = [
                FleetSession(
                    spec=spec(6, name=f"v{i % 3}"),
                    controller=ctrl,
                    sr_latency=lat,
                    quality_model=qm,
                    join_time=1.0 * i,
                    churn=AbandonPolicy(max_total_stall=20.0),
                )
                for i in range(6)
            ]
            return simulate_fleet(
                sessions,
                topology=make_topology(2),
                sr_cache="per-edge",
                session_engine=session_engine,
            )

        assert_identical(run("machine"), run("columnar"))


class TestColumnarValidation:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="session_engine"):
            simulate_fleet(
                make_sessions(2),
                trace=stable_trace(60.0, duration=600.0),
                session_engine="vectorized",
            )

    def test_outages_run_on_columnar(self):
        """Edge outages used to be rejected on the columnar engine; the
        evacuation path is now engine-agnostic and must match the
        machine oracle, failover included."""
        faults = FaultSchedule((EdgeOutage(edge=0, start=2.0, duration=9.0),))

        def run(session_engine):
            return simulate_fleet(
                make_sessions(6),
                topology=make_topology(2),
                faults=faults,
                session_engine=session_engine,
            )

        a, b = run("machine"), run("columnar")
        assert_identical(a, b)
        assert a.report.sessions_resteered > 0

    def test_empty_schedule_allowed(self):
        a = simulate_fleet(
            make_sessions(3),
            topology=make_topology(2),
            faults=FaultSchedule(),
            session_engine="columnar",
        )
        b = simulate_fleet(make_sessions(3), topology=make_topology(2))
        assert a.report == b.report


class TestDedupQuanta:
    """The coarser decision-dedup quanta lever and its error bound."""

    def run_fleet(self, dedup_quanta=None, n=48):
        qm = SRQualityModel()
        lat = sr_lat()
        ctrl = ContinuousMPC(
            qm, QoEModel(), lat, n_grid=8, horizon=2,
            dedup_quanta=dedup_quanta,
        )
        sessions = [
            FleetSession(
                spec=spec(6, name=f"v{i % 3}"),
                controller=ctrl,
                sr_latency=lat,
                quality_model=qm,
                join_time=0.25 * i,
            )
            for i in range(n)
        ]
        result = simulate_fleet(
            sessions, topology=make_topology(2), sr_cache="per-edge"
        )
        return result, ctrl

    def test_coarse_quanta_bounded_qoe_error(self):
        """COARSE_DEDUP_QUANTA merges strictly more rows per tensor pass
        while perturbing mean QoE by less than 5% relative — the bound
        the preset's docstring commits to."""
        exact, ctrl_exact = self.run_fleet()
        coarse, ctrl_coarse = self.run_fleet(COARSE_DEDUP_QUANTA)
        assert ctrl_coarse.decide_unique < ctrl_exact.decide_unique
        rel = abs(coarse.report.mean_qoe - exact.report.mean_qoe) / max(
            abs(exact.report.mean_qoe), 1e-9
        )
        assert rel < 0.05
        # Stall totals stay in the same regime (no catastrophic drift).
        assert coarse.report.stall_ratio == pytest.approx(
            exact.report.stall_ratio, abs=0.05
        )

    def test_default_quanta_unchanged(self):
        """Passing the default quanta explicitly is the identity."""
        a, _ = self.run_fleet()
        b, _ = self.run_fleet((3, 6, 9))
        assert a.report == b.report

    def test_coarse_quanta_columnar_parity(self):
        """The quanta knob and the columnar engine compose: both engines
        build identical coarse keys, so results stay bit-exact."""
        qm = SRQualityModel()
        lat = sr_lat()

        def run(session_engine):
            ctrl = ContinuousMPC(
                qm, QoEModel(), lat, n_grid=8, horizon=2,
                dedup_quanta=COARSE_DEDUP_QUANTA,
            )
            sessions = [
                FleetSession(
                    spec=spec(6, name=f"v{i % 3}"),
                    controller=ctrl,
                    sr_latency=lat,
                    quality_model=qm,
                    join_time=0.5 * i,
                )
                for i in range(8)
            ]
            return simulate_fleet(
                sessions, topology=make_topology(2), session_engine=session_engine
            )

        assert_identical(run("machine"), run("columnar"))

    def test_validation(self):
        qm = SRQualityModel()
        with pytest.raises(ValueError, match="dedup_quanta"):
            ContinuousMPC(
                qm, QoEModel(), sr_lat(), dedup_quanta=(3, 6)
            )


class TestColumnarUnits:
    """Direct unit coverage of the array container."""

    def test_decide_columns_default_matches_decide(self):
        """The AbrController.decide_columns default must agree with
        per-row decide for non-MPC controllers (BufferBased et al.)."""
        from repro.streaming.columnar import ColumnarFleet

        sessions = [
            FleetSession(
                spec=spec(4, name="v0"),
                controller=FixedDensity(0.5),
                join_time=0.0,
            )
            for _ in range(3)
        ]
        fleetcols = ColumnarFleet(sessions, [None] * 3)
        _, first = fleetcols.initial_requests()
        out = fleetcols.decide(first)
        assert len(out) == 3
        assert all(req.nbytes > 0 for _, req in out)

    def test_co_watchers_share_chunk_lists(self):
        from repro.streaming.columnar import ColumnarFleet

        v = spec(4, name="shared")
        sessions = [
            FleetSession(spec=v, controller=FixedDensity(0.5))
            for _ in range(2)
        ]
        cols = ColumnarFleet(sessions, [None, None])
        assert cols.chunks[0] is cols.chunks[1]

    def test_never_churning_thresholds_are_inf(self):
        from repro.streaming.columnar import ColumnarFleet

        sessions = [
            FleetSession(spec=spec(4), controller=FixedDensity(0.5)),
            FleetSession(
                spec=spec(4),
                controller=FixedDensity(0.5),
                churn=AbandonPolicy(max_total_stall=3.0, max_single_stall=1.0),
            ),
        ]
        cols = ColumnarFleet(sessions, [None, None])
        assert math.isinf(cols.churn_total[0])
        assert math.isinf(cols.churn_single[0])
        assert cols.churn_total[1] == 3.0
        assert cols.churn_single[1] == 1.0
