"""Property-based streaming-simulator invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import lte_trace, stable_trace
from repro.streaming import VideoSpec, simulate_session
from repro.streaming.abr import AbrController, Decision


class FixedDensity(AbrController):
    def __init__(self, density):
        self.density = density

    def decide(self, ctx):
        return Decision(density=self.density, sr_ratio=min(8.0, 1.0 / self.density))


def spec(seconds=10, points=50_000):
    return VideoSpec(name="p", n_frames=seconds * 30, fps=30, points_per_frame=points)


@given(
    density=st.floats(0.125, 1.0),
    mbps=st.floats(5.0, 200.0),
    seed=st.integers(0, 50),
)
@settings(max_examples=25, deadline=None)
def test_session_invariants(density, mbps, seed):
    """For any density/bandwidth: bytes add up, stalls are non-negative,
    quality is in [0, 1], and every chunk is played exactly once."""
    trace = lte_trace(mbps, mbps / 4, duration=30, seed=seed)
    r = simulate_session(spec(), trace, FixedDensity(density))
    assert r.n_chunks == 10
    assert r.total_bytes == sum(rec.bytes_downloaded for rec in r.records)
    assert r.stall_seconds >= 0.0
    assert all(0.0 <= rec.quality <= 1.0 for rec in r.records)
    assert all(rec.stall >= 0.0 for rec in r.records)


@given(density=st.floats(0.125, 1.0))
@settings(max_examples=15, deadline=None)
def test_bytes_monotone_in_density(density):
    """More density never costs fewer bytes on the same link."""
    trace = stable_trace(500.0)
    lo = simulate_session(spec(), trace, FixedDensity(density))
    hi = simulate_session(spec(), trace, FixedDensity(min(1.0, density * 1.5)))
    assert hi.total_bytes >= lo.total_bytes


@given(mbps_lo=st.floats(2.0, 20.0), factor=st.floats(2.0, 10.0))
@settings(max_examples=15, deadline=None)
def test_more_bandwidth_never_more_stalls(mbps_lo, factor):
    """A uniformly faster link cannot stall more at fixed density."""
    slow = simulate_session(
        spec(), stable_trace(mbps_lo), FixedDensity(1.0)
    )
    fast = simulate_session(
        spec(), stable_trace(mbps_lo * factor), FixedDensity(1.0)
    )
    assert fast.stall_seconds <= slow.stall_seconds + 1e-9


@given(seed=st.integers(0, 100))
@settings(max_examples=10, deadline=None)
def test_trace_loops_seamlessly(seed):
    """Sessions longer than the trace keep running (traces loop)."""
    short_trace = lte_trace(50.0, 10.0, duration=5, seed=seed)
    r = simulate_session(spec(seconds=20), short_trace, FixedDensity(0.5))
    assert r.n_chunks == 20


def test_sr_latency_receives_decided_ratio():
    seen = []

    def lat(n, s):
        seen.append((n, s))
        return 0.0

    simulate_session(spec(seconds=3), stable_trace(100.0), FixedDensity(0.25),
                     sr_latency=lat)
    assert all(s == pytest.approx(4.0) for _, s in seen)
    assert all(n == 12_500 for n, _ in seen)
