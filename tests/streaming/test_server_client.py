"""Full-fidelity server/client tests."""

import numpy as np
import pytest

from repro.metrics import QoEModel
from repro.net import lte_trace, stable_trace
from repro.pointcloud import make_video
from repro.sr import VolutUpsampler
from repro.streaming import (
    ContinuousMPC,
    Manifest,
    SRQualityModel,
    StreamingClient,
    VideoServer,
    ZERO_LATENCY,
)


@pytest.fixture(scope="module")
def video():
    v = make_video("loot", n_points=1500, n_frames=15)
    v.loops = 1  # keep sessions short for tests
    return v


@pytest.fixture(scope="module")
def server(video):
    return VideoServer(video, chunk_seconds=0.25)


class TestManifest:
    def test_describes_video(self, server, video):
        m = server.manifest
        assert m.name == "loot"
        assert m.fps == 30
        assert m.n_chunks == 2  # 15 frames / (0.25s * 30fps)
        assert m.points_per_frame == 1500

    def test_validation(self):
        with pytest.raises(ValueError):
            Manifest(name="x", n_chunks=0, chunk_seconds=1, fps=30,
                     points_per_frame=10, min_density=0.1)
        with pytest.raises(ValueError):
            Manifest(name="x", n_chunks=1, chunk_seconds=1, fps=30,
                     points_per_frame=10, min_density=0.0)


class TestServer:
    def test_chunk_payload_decodes(self, server):
        blob = server.get_chunk(0, 0.5)
        frames = VideoServer.decode_chunk_payload(blob)
        assert len(frames) == server.chunk_spec(0).n_frames
        for f in frames:
            assert 0 < len(f) <= 1500

    def test_density_scales_bytes(self, server):
        lo = server.get_chunk(0, 0.25)
        hi = server.get_chunk(0, 1.0)
        assert len(lo) < len(hi)

    def test_cache_returns_identical_payload(self, server):
        a = server.get_chunk(1, 0.5)
        b = server.get_chunk(1, 0.5)
        assert a is b  # cache hit returns the same object

    def test_deterministic_encoding(self, video):
        s1 = VideoServer(video, chunk_seconds=0.25)
        s2 = VideoServer(video, chunk_seconds=0.25)
        assert s1.get_chunk(0, 0.5) == s2.get_chunk(0, 0.5)

    def test_density_bounds_enforced(self, server):
        with pytest.raises(ValueError):
            server.get_chunk(0, 0.01)  # below manifest min (1/8)
        with pytest.raises(IndexError):
            server.get_chunk(99, 0.5)

    def test_uncompressed_mode(self, video):
        srv = VideoServer(video, chunk_seconds=0.25, compressed=False)
        blob = srv.get_chunk(0, 0.5)
        frames = VideoServer.decode_chunk_payload(blob, compressed=False)
        assert len(frames) == srv.chunk_spec(0).n_frames

    def test_truncated_payload_rejected(self, server):
        blob = server.get_chunk(0, 0.5)
        with pytest.raises(ValueError):
            VideoServer.decode_chunk_payload(blob[:10])

    def test_invalid_construction(self, video):
        with pytest.raises(ValueError):
            VideoServer(video, chunk_seconds=0.0)
        with pytest.raises(ValueError):
            VideoServer(video, min_density=0.0)


class TestClient:
    def _client(self, server, trace, artifacts, **kw):
        qm = SRQualityModel()
        return StreamingClient(
            server,
            trace,
            ContinuousMPC(qm, QoEModel(), ZERO_LATENCY),
            VolutUpsampler(lut=artifacts.lut),
            quality_model=qm,
            **kw,
        )

    def test_plays_all_chunks(self, server, trained_artifacts):
        client = self._client(server, stable_trace(50.0), trained_artifacts)
        session = client.play()
        assert session.n_chunks == server.manifest.n_chunks
        assert session.total_bytes > 0

    def test_max_chunks_limits(self, server, trained_artifacts):
        client = self._client(server, stable_trace(50.0), trained_artifacts)
        assert self_play_len(client, 1) == 1

    def test_frames_restored_to_full_density(self, server, trained_artifacts):
        client = self._client(
            server, stable_trace(50.0), trained_artifacts, keep_frames=True
        )
        session = client.play(max_chunks=1)
        chunk = session.chunks[0]
        for frame in chunk.frames:
            # SR restores to ~the manifest density (codec merges a few pts).
            assert len(frame) >= 0.7 * server.manifest.points_per_frame

    def test_tight_link_lowers_density(self, server, trained_artifacts):
        fast = self._client(server, stable_trace(100.0), trained_artifacts)
        slow = self._client(server, lte_trace(0.5, 0.2, seed=1), trained_artifacts)
        d_fast = np.mean([c.density for c in fast.play().chunks])
        d_slow = np.mean([c.density for c in slow.play().chunks])
        assert d_slow <= d_fast

    def test_bytes_match_payloads(self, server, trained_artifacts):
        client = self._client(server, stable_trace(50.0), trained_artifacts)
        session = client.play()
        assert session.total_bytes == sum(
            c.bytes_downloaded for c in session.chunks
        )


def self_play_len(client, n):
    return client.play(max_chunks=n).n_chunks
