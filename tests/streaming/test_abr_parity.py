"""Vectorized-MPC parity oracle: batched planner vs scalar reference.

``_MPCBase._plan_value`` is the scalar reference implementation;
``plan_values`` / ``decide`` / ``decide_batch`` run the batched NumPy
evaluation.  These tests pin the two paths against each other across a
parametrized grid of contexts and controllers — the MPC analogue of
``tests/spatial/test_knn.py::TestThreeBackendParity``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import QoEModel, QoEWeights
from repro.streaming import (
    AbrContext,
    ContinuousMPC,
    DiscreteMPC,
    SRQualityModel,
    VideoSpec,
    ZERO_LATENCY,
    get_policy,
)
from repro.streaming.columnar import DecisionColumns
from repro.streaming.latency import MeasuredSRLatency, latency_batch

ATOL = 1e-9


def make_ctx(tput_mbps, buffer_level, prev, n_chunks=10, points=100_000):
    spec = VideoSpec(
        name="t", n_frames=n_chunks * 30, fps=30, points_per_frame=points
    )
    return AbrContext(
        throughput_bps=tput_mbps * 1e6,
        buffer_level=buffer_level,
        prev_quality=prev,
        next_chunks=spec.chunks(1.0),
    )


def measured_latency():
    return MeasuredSRLatency(0.001, 1e-8, 2e-8)


def slow_python_latency(n_points_in, sr_ratio):
    """A plain callable with no ``batch`` method (exercises the fallback)."""
    if sr_ratio <= 1.0:
        return 0.0
    return 1e-9 * n_points_in + 1e-4 * sr_ratio


MPC_FACTORIES = {
    "continuous": lambda lat: ContinuousMPC(
        SRQualityModel(), QoEModel(), lat
    ),
    "continuous-short-horizon": lambda lat: ContinuousMPC(
        SRQualityModel(), QoEModel(), lat, n_grid=16, horizon=2
    ),
    "continuous-fetch-fraction": lambda lat: ContinuousMPC(
        SRQualityModel(max_ratio=4.0),
        QoEModel(QoEWeights(alpha=1.2, beta=0.7, gamma=3.0)),
        lat,
        fetch_fraction=0.55,
    ),
    "discrete": lambda lat: DiscreteMPC(SRQualityModel(), QoEModel(), lat),
}

LATENCIES = {
    "zero": lambda: ZERO_LATENCY,
    "measured": measured_latency,
    "plain-callable": lambda: slow_python_latency,
}

#: the AbrContext grid both paths are evaluated over
CTX_GRID = [
    (tput, buf, prev)
    for tput in (3.0, 25.0, 80.0, 600.0)
    for buf in (0.0, 2.5, 9.0)
    for prev in (None, 0.15, 0.85)
]


def scalar_values(mpc, ctx):
    return np.array([mpc._plan_value(d, ctx) for d in mpc.candidates])


class TestScalarVectorParity:
    """The oracle grid: every (controller, latency, context) agrees."""

    @pytest.mark.parametrize("mpc_name", sorted(MPC_FACTORIES))
    @pytest.mark.parametrize("lat_name", sorted(LATENCIES))
    def test_plan_values_match_scalar_oracle(self, mpc_name, lat_name):
        mpc = MPC_FACTORIES[mpc_name](LATENCIES[lat_name]())
        for tput, buf, prev in CTX_GRID:
            ctx = make_ctx(tput, buf, prev)
            ref = scalar_values(mpc, ctx)
            vec = mpc.plan_values(ctx)
            assert vec.shape == ref.shape
            np.testing.assert_allclose(vec, ref, rtol=0.0, atol=ATOL)

    @pytest.mark.parametrize("mpc_name", sorted(MPC_FACTORIES))
    def test_decide_matches_scalar_argmax(self, mpc_name):
        mpc = MPC_FACTORIES[mpc_name](measured_latency())
        for tput, buf, prev in CTX_GRID:
            ctx = make_ctx(tput, buf, prev)
            best = mpc.candidates[int(np.argmax(scalar_values(mpc, ctx)))]
            decision = mpc.decide(ctx)
            assert decision.density == float(best)
            assert decision.sr_ratio == mpc.quality_model.sr_ratio_for(
                float(best)
            )

    @pytest.mark.parametrize("mpc_name", sorted(MPC_FACTORIES))
    def test_decide_batch_matches_decide(self, mpc_name):
        """Batching across contexts — mixed horizons and prev-qualities —
        must be invisible."""
        mpc = MPC_FACTORIES[mpc_name](measured_latency())
        ctxs = [make_ctx(t, b, p) for t, b, p in CTX_GRID]
        # End-of-video contexts: fewer chunks left than the MPC horizon.
        ctxs += [
            make_ctx(40.0, 1.0, 0.5, n_chunks=1),
            make_ctx(40.0, 4.0, None, n_chunks=2),
        ]
        batch = mpc.decide_batch(ctxs)
        singles = [mpc.decide(c) for c in ctxs]
        assert batch == singles

    def test_short_horizon_truncation_matches(self):
        """A 1-chunk tail uses a 1-chunk plan in both paths."""
        mpc = MPC_FACTORIES["continuous"](measured_latency())
        ctx = make_ctx(50.0, 3.0, 0.4, n_chunks=1)
        np.testing.assert_allclose(
            mpc.plan_values(ctx), scalar_values(mpc, ctx), rtol=0.0, atol=ATOL
        )

    @given(
        tput=st.floats(0.5, 1000.0),
        buf=st.floats(0.0, 12.0),
        prev=st.one_of(st.none(), st.floats(0.0, 1.0)),
        points=st.integers(1_000, 300_000),
        n_chunks=st.integers(1, 12),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_parity(self, tput, buf, prev, points, n_chunks):
        mpc = ContinuousMPC(
            SRQualityModel(), QoEModel(), measured_latency(), n_grid=24
        )
        ctx = make_ctx(tput, buf, prev, n_chunks=n_chunks, points=points)
        np.testing.assert_allclose(
            mpc.plan_values(ctx), scalar_values(mpc, ctx), rtol=0.0, atol=ATOL
        )


class TestDecisionDedup:
    """decide_batch's row dedup + memo against the evaluate-every-row path."""

    def ctxs_with_duplicates(self):
        grid = [make_ctx(t, b, p) for t, b, p in CTX_GRID]
        # Steady-state shape: co-watching viewers produce value-identical
        # contexts (fresh objects, equal floats).
        dupes = [make_ctx(25.0, 2.5, 0.15) for _ in range(6)]
        return grid + dupes + [make_ctx(40.0, 1.0, 0.5, n_chunks=1)]

    def test_dedup_parity_within_1e9(self):
        """With dedup on vs off, every decision agrees to 1e-9 (identical
        rows collapse losslessly; the quantization quanta sit far below
        the grid spacing)."""
        ctxs = self.ctxs_with_duplicates()
        mpc = MPC_FACTORIES["continuous"](measured_latency())
        deduped = mpc.decide_batch(ctxs)
        ref_mpc = MPC_FACTORIES["continuous"](measured_latency())
        ref_mpc.dedup = False
        reference = ref_mpc.decide_batch(ctxs)
        assert len(deduped) == len(reference)
        for a, b in zip(deduped, reference):
            assert abs(a.density - b.density) <= ATOL
            assert abs(a.sr_ratio - b.sr_ratio) <= ATOL

    def test_identical_rows_share_one_tensor_row(self):
        mpc = MPC_FACTORIES["continuous"](measured_latency())
        ctxs = [make_ctx(25.0, 2.5, 0.15) for _ in range(8)]
        decisions = mpc.decide_batch(ctxs)
        assert mpc.decide_rows == 8
        assert mpc.decide_unique == 1
        assert len(set(d.density for d in decisions)) == 1

    def test_memo_answers_repeat_calls(self):
        """A later batch that re-poses a decided row never re-enters the
        tensor pass — and gets the identical decision."""
        mpc = MPC_FACTORIES["continuous"](measured_latency())
        first = mpc.decide_batch([make_ctx(t, 2.0, None) for t in (10.0, 20.0)])
        assert mpc.decide_memo_hits == 0
        second = mpc.decide_batch([make_ctx(t, 2.0, None) for t in (10.0, 20.0)])
        assert mpc.decide_memo_hits == 2
        assert first == second

    def test_memo_capacity_bounded(self):
        mpc = MPC_FACTORIES["continuous"](measured_latency())
        mpc._memo_capacity = 4
        for t in (5.0, 10.0, 15.0, 20.0, 25.0, 30.0):
            mpc.decide_batch([make_ctx(t, 1.0, None)])
        assert len(mpc._decision_memo) == 4

    def test_dedup_off_evaluates_every_row(self):
        mpc = MPC_FACTORIES["continuous"](measured_latency())
        mpc.dedup = False
        mpc.decide_batch([make_ctx(25.0, 2.5, 0.15) for _ in range(5)])
        assert mpc.decide_rows == 0          # counters untouched off-path
        assert len(mpc._decision_memo) == 0


ZOO_FACTORIES = {
    "bola": lambda: get_policy("bola", n_grid=12),
    "bola-tuned": lambda: get_policy(
        "bola", n_grid=7, buffer_target=4.0, gamma_p=8.0, fetch_fraction=0.6
    ),
    "throughput": lambda: get_policy("throughput", n_grid=12),
    "throughput-tight": lambda: get_policy("throughput", safety=0.5),
    "hybrid": lambda: get_policy("hybrid", n_grid=12),
    "hybrid-gated": lambda: get_policy("hybrid", gate_buffer=5.0),
    "buffer-linear": lambda: get_policy("buffer-linear"),
}


def columns_from_ctxs(ctxs):
    """A DecisionColumns batch holding the given contexts row for row."""
    batch = DecisionColumns({})
    for ctx in ctxs:
        chunks = list(ctx.next_chunks)
        batch.append(
            ctx.throughput_bps, ctx.buffer_level, ctx.prev_quality,
            chunks, 0, len(chunks),
        )
    return batch


class TestZooScalarVectorParity:
    """Policy-zoo entry of the oracle-parity convention: each registry
    controller's scalar ``decide`` is the reference; the batched and
    columnar paths must agree on every grid context to 1e-9."""

    @pytest.mark.parametrize("name", sorted(ZOO_FACTORIES))
    def test_decide_batch_matches_decide(self, name):
        policy = ZOO_FACTORIES[name]()
        ctxs = [make_ctx(t, b, p) for t, b, p in CTX_GRID]
        # Mixed-video batches: a second chunk shape in the same call.
        ctxs += [
            make_ctx(40.0, 1.0, 0.5, n_chunks=1, points=40_000),
            make_ctx(3.0, 9.0, None, n_chunks=2, points=40_000),
        ]
        batch = policy.decide_batch(ctxs)
        singles = [policy.decide(c) for c in ctxs]
        assert len(batch) == len(singles)
        for a, b in zip(batch, singles):
            assert abs(a.density - b.density) <= ATOL
            assert abs(a.sr_ratio - b.sr_ratio) <= ATOL

    @pytest.mark.parametrize("name", sorted(ZOO_FACTORIES))
    def test_decide_columns_matches_decide(self, name):
        policy = ZOO_FACTORIES[name]()
        ctxs = [make_ctx(t, b, p) for t, b, p in CTX_GRID]
        out = policy.decide_columns(columns_from_ctxs(ctxs))
        singles = [policy.decide(c) for c in ctxs]
        for a, b in zip(out, singles):
            assert abs(a.density - b.density) <= ATOL
            assert abs(a.sr_ratio - b.sr_ratio) <= ATOL

    def test_bola_matches_first_principles(self):
        """An independent re-derivation of the BOLA objective picks the
        same candidate — the implementation is the formula, not a
        coincidence of its own arrays."""
        policy = get_policy("bola", n_grid=12)
        qm = policy.quality_model
        c = policy.candidates
        q = qm.qualities(c, qm.sr_ratios_for(c))
        u = np.log(q) - np.log(q[0])
        v = policy.buffer_target / (u[-1] + policy.gamma_p)
        for tput, buf, prev in CTX_GRID:
            ctx = make_ctx(tput, buf, prev)
            chunk = ctx.next_chunks[0]
            bits = chunk.bytes_at_densities(c) * 8.0
            scores = (v * (u + policy.gamma_p) - buf) / bits
            expected = float(c[int(np.argmax(scores))])
            assert policy.decide(ctx).density == pytest.approx(
                expected, abs=ATOL
            )

    def test_throughput_matches_first_principles(self):
        policy = get_policy("throughput", n_grid=12)
        c = policy.candidates
        for tput, buf, prev in CTX_GRID:
            ctx = make_ctx(tput, buf, prev)
            chunk = ctx.next_chunks[0]
            bits = chunk.bytes_at_densities(c) * 8.0
            feasible = [
                i for i in range(len(c))
                if bits[i] <= ctx.throughput_bps * 0.9 * chunk.duration
            ]
            expected = float(c[feasible[-1]]) if feasible else float(c[0])
            assert policy.decide(ctx).density == pytest.approx(
                expected, abs=ATOL
            )

    def test_hybrid_gates_on_buffer(self):
        """Below the gate the hybrid never exceeds the throughput rule's
        pick; at/above the gate it is exactly BOLA."""
        bola = get_policy("bola", n_grid=12)
        rate = get_policy("throughput", n_grid=12)
        hybrid = get_policy("hybrid", n_grid=12, gate_buffer=2.0)
        for tput, buf, prev in CTX_GRID:
            ctx = make_ctx(tput, buf, prev)
            h = hybrid.decide(ctx).density
            if buf >= 2.0:
                assert h == bola.decide(ctx).density
            else:
                assert h <= min(
                    bola.decide(ctx).density, rate.decide(ctx).density
                ) + ATOL

    @given(
        tput=st.floats(0.5, 1000.0),
        buf=st.floats(0.0, 12.0),
        points=st.integers(1_000, 300_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_parity(self, tput, buf, points):
        for name in ("bola", "throughput", "hybrid"):
            policy = ZOO_FACTORIES[name]()
            ctx = make_ctx(tput, buf, None, points=points)
            batched = policy.decide_batch([ctx, ctx, ctx])
            single = policy.decide(ctx)
            for d in batched:
                assert abs(d.density - single.density) <= ATOL


class TestBatchHelpers:
    """The batched building blocks agree with their scalar forms."""

    def test_quality_model_batch_forms(self):
        qm = SRQualityModel(max_ratio=6.0, efficiency=0.91)
        d = np.geomspace(1.0 / 16.0, 1.0, 40)
        s = qm.sr_ratios_for(d)
        q = qm.qualities(d, s)
        for i, dens in enumerate(d):
            assert s[i] == qm.sr_ratio_for(float(dens))
            assert q[i] == pytest.approx(qm.quality(float(dens)), abs=1e-15)
        with pytest.raises(ValueError):
            qm.sr_ratios_for(np.array([0.0, 0.5]))
        with pytest.raises(ValueError):
            qm.qualities(np.array([0.5]), np.array([0.5]))

    def test_chunk_batch_forms(self):
        spec = VideoSpec(name="t", n_frames=90, fps=30, points_per_frame=77_777)
        chunk = spec.chunks(1.0)[0]
        d = np.geomspace(1.0 / 8.0, 1.0, 64)
        pts = chunk.points_at_densities(d)
        nbytes = chunk.bytes_at_densities(d)
        for i, dens in enumerate(d):
            assert pts[i] == chunk.points_at_density(float(dens))
            assert nbytes[i] == chunk.bytes_at_density(float(dens))
        with pytest.raises(ValueError):
            chunk.points_at_densities(np.array([1.5]))

    def test_measured_latency_batch(self):
        lat = measured_latency()
        pts = np.array([[1000, 50_000], [200_000, 10]])
        ratios = np.array([1.0, 4.0])
        out = latency_batch(lat, pts, ratios)
        for i in range(2):
            for j in range(2):
                assert out[i, j] == lat(int(pts[i, j]), float(ratios[j]))

    def test_plain_callable_fallback_batch(self):
        pts = np.array([1000, 2000, 3000])
        ratios = np.array([1.0, 2.0, 8.0])
        out = latency_batch(slow_python_latency, pts, ratios)
        expected = [
            slow_python_latency(int(p), float(r)) for p, r in zip(pts, ratios)
        ]
        assert out.tolist() == expected

    def test_device_latency_batch_dedups_but_stays_exact(self):
        from repro.devices import DESKTOP_GPU
        from repro.streaming import DeviceSRLatency

        lat = DeviceSRLatency("volut", DESKTOP_GPU)
        pts = np.array([[5000, 5000, 20_000], [5000, 20_000, 20_000]])
        ratios = np.array([1.0, 2.0, 4.0])
        out = latency_batch(lat, pts, ratios)
        for i in range(pts.shape[0]):
            for j in range(pts.shape[1]):
                assert out[i, j] == lat(int(pts[i, j]), float(ratios[j]))

    def test_zero_latency_batch(self):
        out = latency_batch(ZERO_LATENCY, np.arange(6).reshape(2, 3) + 1, 2.0)
        assert out.shape == (2, 3)
        assert not out.any()

    def test_plan_values_matches_plan_value(self):
        model = QoEModel(QoEWeights(alpha=1.1, beta=0.6, gamma=2.5))
        rng = np.random.default_rng(0)
        qualities = rng.uniform(0.0, 1.0, (5, 7))
        stalls = rng.uniform(0.0, 2.0, (5, 7))
        for prev in (None, 0.4):
            vec = model.plan_values(qualities, stalls, prev)
            for j in range(7):
                ref = model.plan_value(
                    list(qualities[:, j]), list(stalls[:, j]), prev
                )
                assert vec[j] == pytest.approx(ref, abs=1e-12)

    def test_plan_values_nan_prev_marks_no_history(self):
        model = QoEModel()
        q = np.full((1, 2), 0.5)
        stalls = np.zeros((1, 2))
        prev = np.array([np.nan, 1.0])
        out = model.plan_values(q, stalls, prev)
        assert out[0] == pytest.approx(model.plan_value([0.5], [0.0], None))
        assert out[1] == pytest.approx(model.plan_value([0.5], [0.0], 1.0))
