"""SR latency model tests."""

import pytest

from repro.devices import DESKTOP_GPU, ORANGE_PI
from repro.streaming import DeviceSRLatency, MeasuredSRLatency, ZERO_LATENCY


class TestDeviceSRLatency:
    def test_volut_faster_than_yuzu(self):
        v = DeviceSRLatency("volut", DESKTOP_GPU)
        y = DeviceSRLatency("yuzu", DESKTOP_GPU)
        assert v(50_000, 2.0) < y(50_000, 2.0)

    def test_no_sr_no_cost(self):
        v = DeviceSRLatency("volut", DESKTOP_GPU)
        assert v(50_000, 1.0) == 0.0

    def test_orange_pi_slower_than_gpu(self):
        a = DeviceSRLatency("volut", ORANGE_PI)(25_000, 4.0)
        b = DeviceSRLatency("volut", DESKTOP_GPU)(25_000, 4.0)
        assert a > b

    def test_unknown_system_rejected_eagerly(self):
        with pytest.raises(ValueError):
            DeviceSRLatency("pugan", DESKTOP_GPU)


class TestMeasuredSRLatency:
    def test_linear_model(self):
        m = MeasuredSRLatency(base=0.001, per_input_point=1e-6, per_output_point=2e-6)
        t = m(1000, 3.0)
        assert t == pytest.approx(0.001 + 1e-3 + 2e-6 * 2000)

    def test_no_sr_free(self):
        m = MeasuredSRLatency(0.01, 1e-6, 1e-6)
        assert m(1000, 1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MeasuredSRLatency(-0.1, 0, 0)


def test_zero_latency():
    assert ZERO_LATENCY(10_000, 8.0) == 0.0
