"""Infrastructure cost model: hand-checkable dollars from run accounting."""

import pytest

from repro.metrics import QoEModel
from repro.net import stable_trace
from repro.streaming import (
    AbandonPolicy,
    ContinuousMPC,
    CostModel,
    CostReport,
    FleetSession,
    SRQualityModel,
    SRResultCache,
    attach_cost,
    shard_fleet,
    simulate_fleet,
    uniform_cdn,
)
from repro.streaming.cdn import EncodeQueue

from .helpers import spec, sr_lat

GB = 1e9
MONTH = 30 * 86400


def make_sessions(n=6):
    qm = SRQualityModel()
    lat = sr_lat()
    ctrl = ContinuousMPC(qm, QoEModel(), lat, n_grid=8, horizon=2)
    return [
        FleetSession(
            spec=spec(6, name=f"v{i % 2}"),
            controller=ctrl,
            sr_latency=lat,
            quality_model=qm,
            join_time=1.0 * i,
            churn=AbandonPolicy(max_total_stall=20.0),
        )
        for i in range(n)
    ]


def make_topology(n_edges=2, encode_seconds=0.05, cache_bytes=1 << 30):
    return uniform_cdn(
        n_edges,
        access_mbps=80.0,
        backhaul_mbps=30.0,
        cache_bytes=cache_bytes,
        assignment="static",
        n_encode_workers=3,
        encode_seconds=encode_seconds,
    )


class TestEncodeBusyAccounting:
    def test_queue_accumulates_job_costs(self):
        q = EncodeQueue(n_workers=2)
        q.submit(0.0, 0.5)
        q.submit(0.1, 0.25)
        assert q.busy_seconds == pytest.approx(0.75)

    def test_zero_cost_jobs_bypass(self):
        q = EncodeQueue(n_workers=2)
        q.submit(0.0, 0.0)
        assert q.busy_seconds == 0.0

    def test_reset_zeroes(self):
        q = EncodeQueue(n_workers=2)
        q.submit(0.0, 1.0)
        q.reset()
        assert q.busy_seconds == 0.0

    def test_report_reads_origin_busy_time(self):
        topo = make_topology()
        result = simulate_fleet(make_sessions(), topology=topo)
        assert result.report.encode_core_seconds == (
            topo.origin.queue.busy_seconds
        )
        assert result.report.encode_core_seconds > 0.0

    def test_single_link_has_no_encode_time(self):
        result = simulate_fleet(
            make_sessions(), trace=stable_trace(60.0, duration=600.0)
        )
        assert result.report.encode_core_seconds == 0.0

    def test_sharded_busy_time_matches_single_process(self):
        ref = simulate_fleet(make_sessions(8), topology=make_topology())
        sharded = shard_fleet(
            make_sessions(8), make_topology(), workers=1
        )
        assert sharded.report.encode_core_seconds == (
            ref.report.encode_core_seconds
        )

    def test_multi_shard_busy_time_sums(self):
        """Each worker's partitioned pool reports its own busy time; the
        merge sums them (variants re-encoded per shard may exceed the
        single-process total, never undercount a shard)."""
        sharded = shard_fleet(
            make_sessions(8), make_topology(), workers=2,
            sr_cache="per-edge",
        )
        assert sharded.report.encode_core_seconds > 0.0


class TestCostModel:
    def test_negative_price_rejected(self):
        with pytest.raises(ValueError, match="egress_usd_per_gb"):
            CostModel(egress_usd_per_gb=-0.01)

    def test_price_components_hand_computed(self):
        model = CostModel(
            egress_usd_per_gb=0.10,
            encode_usd_per_core_hour=0.50,
            storage_usd_per_gb_month=0.04,
            sr_usd_per_device_hour=0.02,
        )
        topo = make_topology(cache_bytes=1 << 30)
        result = simulate_fleet(make_sessions(), topology=topo)
        cost = model.price(result)
        rep = result.report

        assert cost.egress_gb == rep.origin_egress_bytes / GB
        assert cost.encode_core_hours == rep.encode_core_seconds / 3600.0
        expected_storage = (2 * (1 << 30) / GB) * (rep.makespan / MONTH)
        assert cost.storage_gb_months == pytest.approx(expected_storage)
        expected_sr_hours = (
            sum(s.watched_seconds for s in result.sessions) / 3600.0
        )
        assert cost.sr_device_hours == pytest.approx(expected_sr_hours)

        assert cost.egress_usd == pytest.approx(cost.egress_gb * 0.10)
        assert cost.encode_usd == pytest.approx(
            cost.encode_core_hours * 0.50
        )
        assert cost.storage_usd == pytest.approx(
            cost.storage_gb_months * 0.04
        )
        assert cost.sr_usd == pytest.approx(cost.sr_device_hours * 0.02)
        assert cost.total_usd == pytest.approx(
            cost.egress_usd + cost.encode_usd + cost.storage_usd
            + cost.sr_usd
        )

    def test_single_link_prices_delivered_bytes(self):
        """No edge tier means every delivered byte is origin egress and
        there is no cache to store or encode pool to bill."""
        result = simulate_fleet(
            make_sessions(), trace=stable_trace(60.0, duration=600.0)
        )
        cost = CostModel().price(result)
        assert cost.egress_gb == result.report.total_bytes / GB
        assert cost.encode_usd == 0.0
        assert cost.storage_usd == 0.0
        assert cost.sr_usd > 0.0

    def test_qoe_per_dollar(self):
        report = CostReport(
            egress_gb=1.0, encode_core_hours=0.0, storage_gb_months=0.0,
            sr_device_hours=0.0, egress_usd=2.0, encode_usd=0.0,
            storage_usd=0.0, sr_usd=0.0, total_usd=2.0,
        )
        assert report.qoe_per_dollar(3.0, 10) == pytest.approx(15.0)

    def test_free_run_is_infinite_qoe_per_dollar(self):
        free = CostReport(
            egress_gb=1.0, encode_core_hours=0.0, storage_gb_months=0.0,
            sr_device_hours=0.0, egress_usd=0.0, encode_usd=0.0,
            storage_usd=0.0, sr_usd=0.0, total_usd=0.0,
        )
        assert free.qoe_per_dollar(3.0, 10) == float("inf")


class TestCostAttachment:
    def test_no_cost_model_no_cost(self):
        result = simulate_fleet(make_sessions(), topology=make_topology())
        assert result.report.cost is None

    def test_cost_model_kwarg_attaches(self):
        result = simulate_fleet(
            make_sessions(), topology=make_topology(),
            cost_model=CostModel(),
        )
        assert isinstance(result.report.cost, CostReport)
        assert result.report.cost.total_usd > 0.0

    def test_attach_only_touches_cost_field(self):
        plain = simulate_fleet(make_sessions(), topology=make_topology())
        priced = simulate_fleet(
            make_sessions(), topology=make_topology(),
            cost_model=CostModel(),
        )
        from dataclasses import replace

        assert replace(priced.report, cost=None) == plain.report

    def test_attach_cost_helper(self):
        result = simulate_fleet(make_sessions(), topology=make_topology())
        model = CostModel()
        out = attach_cost(result, model)
        assert out is result
        assert out.report.cost == model.price(result)

    def test_shard_fleet_cost_model(self):
        ref = simulate_fleet(
            make_sessions(8), topology=make_topology(),
            sr_cache="per-edge", cost_model=CostModel(),
        )
        sharded = shard_fleet(
            make_sessions(8), make_topology(), workers=1,
            sr_cache="per-edge", cost_model=CostModel(),
        )
        assert sharded.report.cost == ref.report.cost

    def test_sr_cache_lowers_sr_hours_not_watched(self):
        """The SR device-hour line bills watched seconds; a shared SR
        cache changes compute reuse, not watch time, so the bill is a
        function of viewer behaviour only."""
        no_cache = simulate_fleet(
            make_sessions(), topology=make_topology(),
            cost_model=CostModel(),
        )
        cached = simulate_fleet(
            make_sessions(), topology=make_topology(),
            sr_cache=SRResultCache(), cost_model=CostModel(),
        )
        assert no_cache.report.cost.sr_device_hours == pytest.approx(
            cached.report.cost.sr_device_hours, rel=0.2
        )
