"""Control plane: policies, tick actions, autoscaler, recovery metrics, parity."""

import dataclasses
import math

import pytest

from repro.streaming import (
    BackhaulDegradation,
    ControlPlane,
    ControlPolicy,
    FaultSchedule,
    FleetView,
    QoEArrivalAutoscaler,
    RecoveryTracker,
    simulate_fleet,
    uniform_cdn,
)

from .helpers import FixedDensity, spec, sr_lat


def fleet(n=8, seconds=20, stagger=0.4):
    from repro.streaming import FleetSession

    return [
        FleetSession(
            spec=spec(seconds=seconds, name="vid"),
            controller=FixedDensity(0.4),
            sr_latency=sr_lat(),
            join_time=stagger * i,
        )
        for i in range(n)
    ]


def cdn(n_edges=3, **kw):
    kw.setdefault("access_mbps", 50.0)
    kw.setdefault("backhaul_mbps", 40.0)
    kw.setdefault("n_encode_workers", 4)
    kw.setdefault("encode_seconds", 0.02)
    return uniform_cdn(n_edges, **kw)


def view(**kw):
    kw.setdefault("now", 5.0)
    kw.setdefault("edge_load", (1, 1, 1))
    kw.setdefault("edge_down", (False, False, False))
    kw.setdefault("sessions_by_edge", {0: (0,), 1: (1,), 2: (2,)})
    kw.setdefault("encode_waits", ())
    kw.setdefault("encode_workers", 4)
    kw.setdefault("health", None)
    return FleetView(**kw)


class TestControlPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="interval"):
            ControlPolicy(interval=0.0)
        with pytest.raises(ValueError, match="encode_wait_low"):
            ControlPolicy(encode_wait_low=1.0, encode_wait_high=0.5)
        with pytest.raises(ValueError, match="min_encode_workers"):
            ControlPolicy(min_encode_workers=0)
        with pytest.raises(ValueError, match="max_encode_workers"):
            ControlPolicy(min_encode_workers=4, max_encode_workers=2)
        with pytest.raises(ValueError, match="saturation_factor"):
            ControlPolicy(saturation_factor=1.0)
        with pytest.raises(ValueError, match="max_resteers"):
            ControlPolicy(max_resteers_per_tick=-1)


class TestControlPlaneTick:
    def test_grows_encode_pool_on_high_wait(self):
        plane = ControlPlane(ControlPolicy(encode_wait_high=0.5))
        actions = plane.tick(
            view(encode_waits=(1.0, 2.0, 3.0), encode_workers=4)
        )
        assert actions.encode_workers == 8
        assert plane.encode_resizes == 1
        assert plane.ticks == 1

    def test_shrinks_idle_encode_pool(self):
        plane = ControlPlane(ControlPolicy(encode_wait_low=0.01))
        actions = plane.tick(
            view(encode_waits=(0.0, 0.0, 0.0), encode_workers=8)
        )
        assert actions.encode_workers == 4

    def test_respects_pool_bounds(self):
        plane = ControlPlane(
            ControlPolicy(min_encode_workers=2, max_encode_workers=8)
        )
        assert plane.tick(
            view(encode_waits=(9.0,), encode_workers=8)
        ).encode_workers is None
        assert plane.tick(
            view(encode_waits=(0.0,), encode_workers=2)
        ).encode_workers is None

    def test_resteers_off_saturated_edge(self):
        plane = ControlPlane(ControlPolicy(saturation_factor=2.0))
        actions = plane.tick(view(
            edge_load=(9, 1, 2),
            sessions_by_edge={0: (0, 1, 2, 3, 4, 5, 6, 7, 8), 1: (9,), 2: (10, 11)},
        ))
        assert actions.resteer
        # Lowest session ids move first, to the least-loaded live edge.
        assert actions.resteer[0] == (0, 1)
        assert plane.resteered == len(actions.resteer)

    def test_never_steers_to_a_dark_edge(self):
        # With one edge dark only two are live, so the threshold (factor x
        # live-mean) needs a factor < 2 to be reachable at all.
        plane = ControlPlane(ControlPolicy(saturation_factor=1.5))
        actions = plane.tick(view(
            edge_load=(9, 0, 2),
            edge_down=(False, True, False),
            sessions_by_edge={0: tuple(range(9)), 2: (10, 11)},
        ))
        assert actions.resteer
        assert all(target == 2 for _, target in actions.resteer)

    def test_resteer_budget(self):
        plane = ControlPlane(
            ControlPolicy(saturation_factor=2.0, max_resteers_per_tick=2)
        )
        actions = plane.tick(view(
            edge_load=(20, 1, 1),
            sessions_by_edge={0: tuple(range(20)), 1: (20,), 2: (21,)},
        ))
        assert len(actions.resteer) == 2

    def test_inf_thresholds_never_act(self):
        plane = ControlPlane(ControlPolicy(
            encode_wait_high=math.inf, encode_wait_low=0.0,
            saturation_factor=math.inf,
        ))
        actions = plane.tick(view(
            edge_load=(50, 0, 0),
            sessions_by_edge={0: tuple(range(50))},
            encode_waits=(100.0,) * 20,
            encode_workers=4,
        ))
        assert not actions

    def test_small_fleet_saturation_matches_docstring(self):
        """The docstring promises "load exceeds factor x mean (and >= 2)".
        An absolute ``max(..., 2.0)`` floor used to creep in instead,
        silently disabling re-steering for small fleets: load 2 vs mean 1
        exceeds 1.5 x mean and meets the >= 2 guard, so it must act."""
        plane = ControlPlane(ControlPolicy(saturation_factor=1.5))
        actions = plane.tick(view(
            edge_load=(2, 0, 0),
            sessions_by_edge={0: (0, 1)},
        ))
        assert actions.resteer == [(0, 1)]

    def test_single_session_edge_is_never_saturated(self):
        """The >= 2 guard: one viewer on an otherwise idle fleet is not a
        hotspot, no matter how aggressive the factor."""
        plane = ControlPlane(ControlPolicy(saturation_factor=1.1))
        actions = plane.tick(view(
            edge_load=(1, 0, 0),
            sessions_by_edge={0: (0,)},
        ))
        assert not actions.resteer


class TestQoEArrivalAutoscaler:
    def test_unhealthy_day_scales_next_day_down(self):
        auto = QoEArrivalAutoscaler(day_seconds=100.0, target_health=0.5)
        for t in range(0, 100, 10):
            auto.observe(float(t), -2.0)
        auto.finish()
        assert auto(0) == 1.0
        assert auto(1) == pytest.approx(0.75)
        assert auto.day_health(0) is None  # consumed by finish()

    def test_healthy_day_relaxes_back_capped_at_max(self):
        auto = QoEArrivalAutoscaler(day_seconds=100.0, target_health=0.5)
        auto.observe(50.0, 3.0)
        auto.finish()
        assert auto(1) == 1.0  # capped at max_scale

    def test_rolling_days_plan_while_running(self):
        auto = QoEArrivalAutoscaler(day_seconds=10.0, target_health=0.5)
        auto.observe(5.0, -1.0)
        assert auto(1) == 1.0  # day 0 still open
        auto.observe(15.0, 2.0)  # first day-1 sample closes day 0
        assert auto(1) == pytest.approx(0.75)
        assert auto.day_health(1) == pytest.approx(2.0)

    def test_floor(self):
        auto = QoEArrivalAutoscaler(
            day_seconds=10.0, target_health=0.5, min_scale=0.7
        )
        auto.observe(5.0, -9.0)
        auto.finish()
        assert auto(1) == pytest.approx(0.75)
        # A second terrible day keeps shrinking but never below the floor.
        auto._scales[5] = 0.8
        auto.observe(55.0, -9.0)
        auto.finish()
        assert auto(6) == pytest.approx(0.7)

    def test_validation(self):
        with pytest.raises(ValueError, match="day_seconds"):
            QoEArrivalAutoscaler(day_seconds=0.0)
        with pytest.raises(ValueError, match="step"):
            QoEArrivalAutoscaler(day_seconds=1.0, step=1.0)
        with pytest.raises(ValueError, match="min_scale"):
            QoEArrivalAutoscaler(day_seconds=1.0, min_scale=0.0)


class TestRecoveryTracker:
    def test_dip_and_recovery(self):
        tr = RecoveryTracker(fault_start=10.0, tolerance=0.1)
        for t, h in [(2.0, 4.0), (6.0, 4.2), (12.0, 1.0), (16.0, 2.0),
                     (20.0, 4.1), (24.0, 4.2)]:
            tr.sample(t, h)
        assert tr.baseline == pytest.approx(4.1)
        dip, recover = tr.metrics()
        assert dip == pytest.approx(3.1)
        assert recover == pytest.approx(10.0)  # healthy again at t=20

    def test_never_recovers_is_inf(self):
        tr = RecoveryTracker(fault_start=10.0)
        for t, h in [(5.0, 4.0), (12.0, 1.0), (20.0, 1.5)]:
            tr.sample(t, h)
        dip, recover = tr.metrics()
        assert dip == pytest.approx(3.0)
        assert math.isinf(recover)

    def test_no_dip_is_zero(self):
        tr = RecoveryTracker(fault_start=10.0, tolerance=0.5)
        for t, h in [(5.0, 4.0), (12.0, 3.8), (20.0, 4.0)]:
            tr.sample(t, h)
        assert tr.metrics() == (pytest.approx(0.2), 0.0)

    def test_no_post_fault_samples(self):
        tr = RecoveryTracker(fault_start=10.0)
        tr.sample(5.0, 4.0)
        assert tr.metrics() == (0.0, 0.0)

    def test_fault_at_time_zero_uses_first_sample_as_baseline(self):
        """A fault starting at t=0 leaves no pre-fault samples.  The
        baseline used to collapse to 0.0, so any recovery (health >=
        -tolerance) registered instantly and the dip was clamped to 0.
        The first post-onset sample now anchors the baseline instead."""
        tr = RecoveryTracker(fault_start=0.0)
        for t, h in [(0.5, 1.0), (1.5, 0.2), (2.5, 1.0)]:
            tr.sample(t, h)
        assert tr.baseline == pytest.approx(1.0)
        dip, recover = tr.metrics()
        assert dip == pytest.approx(0.8)
        assert recover == pytest.approx(2.5)

    def test_fault_at_time_zero_no_samples(self):
        tr = RecoveryTracker(fault_start=0.0)
        assert tr.baseline == 0.0
        assert tr.metrics() == (0.0, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="fault_start"):
            RecoveryTracker(fault_start=-1.0)
        with pytest.raises(ValueError, match="tolerance"):
            RecoveryTracker(fault_start=0.0, tolerance=-0.1)

    def test_disjoint_fault_windows_track_the_deepest_dip(self):
        """Two separated faults, the second one worse: the dip is the
        global post-onset floor and recovery is dated from *that* floor,
        not from the first window's shallower dip."""
        tr = RecoveryTracker(fault_start=10.0, tolerance=0.1)
        for t, h in [
            (2.0, 4.0), (6.0, 4.0),        # baseline 4.0
            (12.0, 3.0), (16.0, 4.0),      # window 1: shallow dip, recovers
            (30.0, 1.0), (34.0, 2.0),      # window 2: deeper dip...
            (38.0, 4.0),                   # ...recovered at t=38
        ]:
            tr.sample(t, h)
        dip, recover = tr.metrics()
        assert dip == pytest.approx(3.0)
        # dated from the second window's floor (t=30), not the interim
        # recovery at t=16
        assert recover == pytest.approx(28.0)

    def test_interim_recovery_does_not_mask_a_terminal_dip(self):
        """Health recovers between windows but the run ends inside the
        second window still degraded — time_to_recover must be inf even
        though a within-tolerance sample exists after the onset."""
        tr = RecoveryTracker(fault_start=10.0, tolerance=0.1)
        for t, h in [
            (5.0, 4.0),
            (12.0, 2.5), (16.0, 4.0),      # first dip, full recovery
            (30.0, 0.5), (34.0, 1.0),      # second dip, run ends degraded
        ]:
            tr.sample(t, h)
        dip, recover = tr.metrics()
        assert dip == pytest.approx(3.5)
        assert math.isinf(recover)

    def test_fleet_run_never_recovering_reports_inf(self):
        """End-to-end: a crushing brownout covering the whole tail of
        the run (no live edge to fail over to) leaves no recovered
        sample, so the report carries inf."""
        sessions = fleet(6, seconds=20)
        ends = simulate_fleet(sessions, topology=cdn()).end_times
        horizon = max(ends)
        degr = FaultSchedule(tuple(
            BackhaulDegradation(
                edge=e, start=0.3 * horizon, duration=100 * horizon,
                factor=0.01,
            )
            for e in range(3)
        ))
        rep = simulate_fleet(
            sessions, topology=cdn(), faults=degr
        ).report
        assert rep.qoe_dip_depth > 0
        assert math.isinf(rep.time_to_recover_s)


class TestFleetViewMetricsSource:
    """The controller's FleetView and the metrics registry sample the
    same instants from the same live state."""

    def test_view_and_registry_agree(self):
        from repro.obs import Telemetry

        tel = Telemetry(trace=False, profile=False)
        controller = ControlPlane(ControlPolicy(interval=1.0))
        result = simulate_fleet(
            fleet(8), topology=cdn(), controller=controller, telemetry=tel,
        )
        rep = result.report
        series = tel.metrics.series
        assert rep.control_ticks > 0
        # one sample per control tick, on the tick instants
        assert len(series["fleet.active_sessions"]) == rep.control_ticks
        assert len(series["fleet.buffer_level"]) == rep.control_ticks
        for e in range(3):
            assert len(series[f"edge.load.{e}"]) == rep.control_ticks
        # the registry's per-edge loads partition the active sessions —
        # exactly the FleetView invariant (edge_load sums to live count)
        loads = [series[f"edge.load.{e}"].items() for e in range(3)]
        for i, (t, active) in enumerate(
            series["fleet.active_sessions"].items()
        ):
            assert sum(loads[e][i][1] for e in range(3)) == active
        # the health series feeds the same sampler the recovery tracker
        # and the controller's view read
        assert len(series["fleet.health"]) >= rep.control_ticks - 1


class TestNoOpControllerParity:
    def test_noop_controller_is_bit_exact_modulo_ticks(self):
        sessions = fleet(6)
        topo = cdn()
        base = simulate_fleet(sessions, topology=topo)
        noop = ControlPlane(ControlPolicy(
            interval=2.0, encode_wait_high=math.inf, encode_wait_low=0.0,
            saturation_factor=math.inf,
        ))
        ctrl = simulate_fleet(sessions, topology=topo, controller=noop)
        assert ctrl.report.control_ticks > 0
        assert dataclasses.replace(ctrl.report, control_ticks=0) == base.report
        assert ctrl.sessions == base.sessions
        assert ctrl.end_times == base.end_times

    def test_controller_requires_topology(self):
        from repro.net import stable_trace

        with pytest.raises(ValueError, match="require a topology"):
            simulate_fleet(
                fleet(2), stable_trace(80.0, duration=600.0),
                controller=ControlPlane(),
            )


class TestClosedLoopEndToEnd:
    def test_starved_encode_pool_is_grown(self):
        from repro.streaming import FleetSession

        # Distinct content per viewer: nothing coalesces, so one slow
        # encode worker backs up and the controller must grow the pool.
        sessions = [
            FleetSession(
                spec=spec(seconds=20, name=f"vid{i}"),
                controller=FixedDensity(0.4),
                sr_latency=sr_lat(),
                join_time=0.2 * i,
            )
            for i in range(10)
        ]
        topo = cdn(n_encode_workers=1, encode_seconds=0.5)
        plane = ControlPlane(ControlPolicy(interval=1.0))
        rep = simulate_fleet(
            sessions, topology=topo, controller=plane
        ).report
        assert rep.encode_pool_resizes > 0
        assert any("encode pool 1 -> 2" in line for line in plane.log)
        assert rep.control_ticks == plane.ticks

    def test_counters_are_per_run_deltas(self):
        sessions = fleet(4)
        plane = ControlPlane(ControlPolicy(interval=2.0))
        a = simulate_fleet(sessions, topology=cdn(), controller=plane).report
        b = simulate_fleet(sessions, topology=cdn(), controller=plane).report
        assert a.control_ticks == b.control_ticks > 0


class _RecordingTracer:
    def __init__(self):
        self.events = []

    def emit(self, t, kind, **data):
        self.events.append((t, kind, data))


class TestGracefulDegradation:
    """The dark-region levers: quality cap and SR disable, pulled when a
    whole fault domain is dark and released when it returns."""

    def test_cap_validation(self):
        with pytest.raises(ValueError, match="quality_cap_when_dark"):
            ControlPolicy(quality_cap_when_dark=0.0)
        with pytest.raises(ValueError, match="quality_cap_when_dark"):
            ControlPolicy(quality_cap_when_dark=1.5)
        ControlPolicy(quality_cap_when_dark=1.0)

    def test_levers_pull_once_and_release(self):
        plane = ControlPlane(ControlPolicy(
            quality_cap_when_dark=0.5, disable_sr_when_dark=True,
        ))
        on = plane.tick(view(regions_dark=("region-0",)))
        assert on.quality_cap == 0.5
        assert on.sr_enabled is False
        assert bool(on)
        assert plane.degrades == 1
        # Still dark: the state machine holds, no repeated pull.
        again = plane.tick(view(regions_dark=("region-0",)))
        assert again.quality_cap is None and again.sr_enabled is None
        assert plane.degrades == 1
        # Region back: both levers release.
        off = plane.tick(view())
        assert off.quality_cap == math.inf
        assert off.sr_enabled is True
        assert plane.degrades == 2
        assert any("degraded mode ON" in line for line in plane.log)
        assert any("degraded mode OFF" in line for line in plane.log)

    def test_single_lever_configurations(self):
        cap_only = ControlPlane(ControlPolicy(quality_cap_when_dark=0.4))
        on = cap_only.tick(view(regions_dark=("region-1",)))
        assert on.quality_cap == 0.4
        assert on.sr_enabled is None
        sr_only = ControlPlane(ControlPolicy(disable_sr_when_dark=True))
        on = sr_only.tick(view(regions_dark=("region-1",)))
        assert on.quality_cap is None
        assert on.sr_enabled is False

    def test_no_levers_never_acts(self):
        plane = ControlPlane(ControlPolicy())
        actions = plane.tick(view(regions_dark=("region-0",)))
        assert actions.quality_cap is None and actions.sr_enabled is None
        assert plane.degrades == 0

    def test_degrade_flips_are_traced(self):
        from repro.obs.events import EV_CONTROL_DEGRADE

        plane = ControlPlane(ControlPolicy(quality_cap_when_dark=0.5))
        plane.tracer = _RecordingTracer()
        plane.tick(view(regions_dark=("region-0", "region-1")))
        plane.tick(view())
        flips = [
            (kind, data) for _, kind, data in plane.tracer.events
            if kind == EV_CONTROL_DEGRADE
        ]
        assert len(flips) == 2
        assert flips[0][1]["state"] == "on"
        assert flips[0][1]["regions"] == "region-0,region-1"
        assert flips[1][1]["state"] == "off"

    def test_degraded_fleet_caps_quality_and_recovers(self):
        """End to end: a dark region makes the degrade controller cap
        density, so the brownout fleet ships fewer bytes than the same
        outage without the lever — and the cap lifts once the region
        returns (late chunks are full-density again)."""
        from repro.streaming import FaultSchedule, RegionOutage

        sessions = fleet(9)
        topo = lambda: cdn(n_regions=2)  # region-0=(0,1), region-1=(2,)
        # The window must be long enough that sessions make ABR
        # decisions *while* dark (a chunk takes ~10 virtual seconds
        # here), or the cap never touches a decision.
        faults = FaultSchedule((
            RegionOutage(region="region-0", start=3.0, duration=40.0),
        ))
        plain = simulate_fleet(
            fleet(9), topology=topo(), faults=faults,
            assignment=[i % 3 for i in range(9)],
        )
        degraded = simulate_fleet(
            fleet(9), topology=topo(), faults=faults,
            assignment=[i % 3 for i in range(9)],
            controller=ControlPlane(ControlPolicy(
                interval=1.0, encode_wait_high=math.inf,
                encode_wait_low=0.0, saturation_factor=math.inf,
                quality_cap_when_dark=0.2, disable_sr_when_dark=True,
            )),
        )
        # FixedDensity(0.4) decisions clamp to 0.2 while the region is
        # dark, so the degraded run ships strictly fewer bytes.
        assert degraded.report.total_bytes < plain.report.total_bytes
        assert all(r is not None for r in degraded.sessions)
