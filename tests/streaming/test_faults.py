"""Fault injection: schedules, degraded traces, outage failover, sharding."""

import dataclasses
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import stable_trace
from repro.net.traces import lte_trace
from repro.streaming import (
    BackhaulDegradation,
    CorrelatedFaultGenerator,
    EdgeOutage,
    FaultSchedule,
    FlashCrowd,
    DegradedTrace,
    GrayFailure,
    RegionOutage,
    RetryPolicy,
    flash_crowd_sessions,
    simulate_fleet,
    uniform_cdn,
)

from .helpers import FixedDensity, spec, sr_lat


def fleet(n=8, seconds=20, stagger=0.4):
    return [
        dataclasses.replace(
            base_session(seconds=seconds), join_time=stagger * i
        )
        for i in range(n)
    ]


def base_session(seconds=20):
    from repro.streaming import FleetSession

    return FleetSession(
        spec=spec(seconds=seconds, name="vid"),
        controller=FixedDensity(0.4),
        sr_latency=sr_lat(),
    )


def cdn(n_edges=3, **kw):
    kw.setdefault("access_mbps", 50.0)
    kw.setdefault("backhaul_mbps", 40.0)
    kw.setdefault("n_encode_workers", 2)
    kw.setdefault("encode_seconds", 0.02)
    return uniform_cdn(n_edges, **kw)


class TestEventValidation:
    def test_outage_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="edge"):
            EdgeOutage(edge=-1, start=0.0, duration=1.0)
        with pytest.raises(ValueError, match="start"):
            EdgeOutage(edge=0, start=-1.0, duration=1.0)
        with pytest.raises(ValueError, match="duration"):
            EdgeOutage(edge=0, start=0.0, duration=0.0)

    def test_degradation_rejects_zero_factor(self):
        with pytest.raises(ValueError, match="EdgeOutage"):
            BackhaulDegradation(edge=0, start=0.0, duration=1.0, factor=0.0)

    def test_flash_crowd_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="n_viewers"):
            FlashCrowd(spec=spec(), start=0.0, n_viewers=0)
        with pytest.raises(ValueError, match="ramp"):
            FlashCrowd(spec=spec(), start=0.0, n_viewers=1, ramp_seconds=-1.0)

    def test_region_outage_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="region"):
            RegionOutage(region="", start=0.0, duration=1.0)
        with pytest.raises(ValueError, match="start"):
            RegionOutage(region="r", start=-1.0, duration=1.0)
        with pytest.raises(ValueError, match="duration"):
            RegionOutage(region="r", start=0.0, duration=0.0)
        with pytest.raises(ValueError, match="duration"):
            RegionOutage(region="r", start=0.0, duration=-2.0)

    def test_gray_failure_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="capacity_factor"):
            GrayFailure(edge=0, start=0.0, duration=1.0, capacity_factor=0.0)
        with pytest.raises(ValueError, match="capacity_factor"):
            GrayFailure(edge=0, start=0.0, duration=1.0, capacity_factor=1.5)
        with pytest.raises(ValueError, match="drop_fraction"):
            GrayFailure(edge=0, start=0.0, duration=1.0, drop_fraction=1.1)
        with pytest.raises(ValueError, match="drop_delay_s"):
            GrayFailure(edge=0, start=0.0, duration=1.0, drop_delay_s=0.0)
        with pytest.raises(ValueError, match="duration"):
            GrayFailure(edge=0, start=0.0, duration=0.0)

    def test_retry_policy_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="timeout_s"):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ValueError, match="backoff_base_s"):
            RetryPolicy(backoff_base_s=-1.0)
        with pytest.raises(ValueError, match="backoff_cap_s"):
            RetryPolicy(backoff_base_s=2.0, backoff_cap_s=1.0)
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)

    def test_retry_backoff_doubles_then_caps(self):
        pol = RetryPolicy(backoff_base_s=0.25, backoff_cap_s=1.0)
        assert [pol.backoff(k) for k in (1, 2, 3, 4)] == [0.25, 0.5, 1.0, 1.0]
        with pytest.raises(ValueError, match="1-based"):
            pol.backoff(0)

    def test_schedule_rejects_unknown_events(self):
        with pytest.raises(TypeError, match="unknown fault event"):
            FaultSchedule(("not a fault",))

    def test_schedule_rejects_out_of_range_edge(self):
        sched = FaultSchedule((EdgeOutage(edge=5, start=1.0, duration=1.0),))
        with pytest.raises(ValueError, match="edge 5"):
            sched.validate_topology(3)

    def test_schedule_rejects_total_darkness(self):
        sched = FaultSchedule((
            EdgeOutage(edge=0, start=1.0, duration=5.0),
            EdgeOutage(edge=1, start=2.0, duration=5.0),
        ))
        with pytest.raises(ValueError, match="no live edge"):
            sched.validate_topology(2)
        sched.validate_topology(3)  # a third edge survives

    def test_schedule_properties_and_shardable(self):
        o = EdgeOutage(edge=0, start=1.0, duration=2.0)
        d = BackhaulDegradation(edge=1, start=1.0, duration=2.0, factor=0.5)
        c = FlashCrowd(spec=spec(), start=3.0, n_viewers=2)
        sched = FaultSchedule((o, d, c))
        assert sched.outages == (o,)
        assert sched.degradations == (d,)
        assert sched.crowds == (c,)
        assert len(sched) == 3 and bool(sched)
        assert not sched.shardable()
        assert FaultSchedule((d,)).shardable()
        assert not FaultSchedule()

    def test_boundary_times_only_outages(self):
        sched = FaultSchedule((
            EdgeOutage(edge=0, start=4.0, duration=2.0),
            BackhaulDegradation(edge=1, start=1.0, duration=9.0, factor=0.5),
            EdgeOutage(edge=1, start=4.0, duration=3.0),
        ))
        assert sched.boundary_times() == [4.0, 6.0, 7.0]

    def test_boundary_times_include_region_outages(self):
        sched = FaultSchedule((
            RegionOutage(region="r0", start=3.0, duration=2.0),
            GrayFailure(edge=0, start=1.0, duration=9.0),
        ))
        assert sched.boundary_times() == [3.0, 5.0]


def _forged(cls, **fields):
    """Build a fault event bypassing ``__post_init__`` — the schedules
    :meth:`FaultSchedule.validate` defends against in depth."""
    ev = object.__new__(cls)
    for name, value in fields.items():
        object.__setattr__(ev, name, value)
    return ev


class TestScheduleValidate:
    """Satellite: ``FaultSchedule.validate`` — one test per rejection."""

    def test_rejects_zero_duration(self):
        bad = _forged(EdgeOutage, edge=0, start=1.0, duration=0.0)
        with pytest.raises(ValueError, match="duration must be positive"):
            FaultSchedule((bad,)).validate()

    def test_rejects_negative_duration(self):
        bad = _forged(RegionOutage, region="r", start=1.0, duration=-3.0)
        with pytest.raises(ValueError, match="duration must be positive"):
            FaultSchedule((bad,)).validate()

    def test_rejects_overlapping_same_edge_outages(self):
        sched = FaultSchedule((
            EdgeOutage(edge=0, start=1.0, duration=4.0),
            EdgeOutage(edge=0, start=3.0, duration=4.0),
        ))
        with pytest.raises(ValueError, match="overlapping outages on edge 0"):
            sched.validate()

    def test_rejects_overlapping_same_region_outages(self):
        sched = FaultSchedule((
            RegionOutage(region="r0", start=1.0, duration=4.0),
            RegionOutage(region="r0", start=3.0, duration=4.0),
        ))
        with pytest.raises(ValueError, match="overlapping outages on region"):
            sched.validate()

    def test_touching_windows_are_fine(self):
        FaultSchedule((
            EdgeOutage(edge=0, start=1.0, duration=2.0),
            EdgeOutage(edge=0, start=3.0, duration=2.0),
            RegionOutage(region="r0", start=1.0, duration=2.0),
            RegionOutage(region="r0", start=3.0, duration=2.0),
        )).validate()

    def test_different_edges_may_overlap(self):
        FaultSchedule((
            EdgeOutage(edge=0, start=1.0, duration=4.0),
            EdgeOutage(edge=1, start=3.0, duration=4.0),
        )).validate()

    def test_topology_validation_rejects_unknown_region(self):
        sched = FaultSchedule((
            RegionOutage(region="nowhere", start=1.0, duration=2.0),
        ))
        with pytest.raises(ValueError, match="nowhere"):
            sched.validate_topology(3, {"region-0": (0, 1)})
        with pytest.raises(ValueError, match="no regions"):
            sched.validate_topology(3, None)

    def test_topology_validation_rejects_region_edge_overlap(self):
        """An edge inside a dark region cannot also carry its own
        overlapping EdgeOutage — one edge, one dark window at a time."""
        sched = FaultSchedule((
            RegionOutage(region="region-0", start=1.0, duration=4.0),
            EdgeOutage(edge=0, start=3.0, duration=4.0),
        ))
        with pytest.raises(ValueError, match="resolved outage windows"):
            sched.validate_topology(3, {"region-0": (0, 1)})

    def test_topology_validation_rejects_region_darkness(self):
        sched = FaultSchedule((
            RegionOutage(region="region-0", start=1.0, duration=2.0),
        ))
        with pytest.raises(ValueError, match="no live edge"):
            sched.validate_topology(2, {"region-0": (0, 1)})
        sched.validate_topology(3, {"region-0": (0, 1)})

    def test_edge_outage_spans_resolve_regions(self):
        sched = FaultSchedule((
            EdgeOutage(edge=2, start=1.0, duration=1.0),
            RegionOutage(region="region-0", start=4.0, duration=2.0),
        ))
        spans = sched.edge_outage_spans({"region-0": (0, 1)})
        assert spans == [(0, 4.0, 6.0), (1, 4.0, 6.0), (2, 1.0, 2.0)]


class TestCorrelatedFaultGenerator:
    REGIONS = ["region-0", "region-1", "region-2", "region-3"]

    def test_validation(self):
        with pytest.raises(ValueError, match="cascade_probability"):
            CorrelatedFaultGenerator(cascade_probability=1.5)
        with pytest.raises(ValueError, match="cascade_delay_s"):
            CorrelatedFaultGenerator(cascade_delay_s=-1.0)
        gen = CorrelatedFaultGenerator()
        with pytest.raises(ValueError, match="origin"):
            gen.generate(self.REGIONS, "region-9", start=0.0, duration=5.0)
        with pytest.raises(ValueError, match="duration"):
            gen.generate(self.REGIONS, "region-0", start=0.0, duration=0.0)

    def test_same_seed_replays_exactly(self):
        gen = CorrelatedFaultGenerator(seed=11, cascade_probability=0.6)
        a = gen.generate(self.REGIONS, "region-1", start=2.0, duration=5.0)
        b = gen.generate(self.REGIONS, "region-1", start=2.0, duration=5.0)
        assert a == b

    def test_origin_always_fails_with_the_requested_window(self):
        gen = CorrelatedFaultGenerator(seed=3, cascade_probability=0.0)
        sched = gen.generate(self.REGIONS, "region-2", start=4.0, duration=3.0)
        assert sched.events == (
            RegionOutage(region="region-2", start=4.0, duration=3.0),
        )

    def test_certain_cascade_staggers_by_hop_distance(self):
        gen = CorrelatedFaultGenerator(
            seed=0, cascade_probability=1.0, cascade_delay_s=2.0
        )
        sched = gen.generate(self.REGIONS, "region-0", start=1.0, duration=5.0)
        onsets = {ev.region: ev.start for ev in sched.events}
        assert onsets == {
            "region-0": 1.0, "region-1": 3.0, "region-2": 5.0,
            "region-3": 7.0,
        }

    def test_appending_a_region_never_reshuffles_earlier_draws(self):
        """One draw per non-origin region in declaration order, whether
        or not it fails: growing the region list only appends outcomes."""
        gen = CorrelatedFaultGenerator(seed=5, cascade_probability=0.5)
        small = gen.generate(self.REGIONS[:3], "region-0", 0.0, 4.0)
        large = gen.generate(self.REGIONS, "region-0", 0.0, 4.0)
        small_names = {ev.region for ev in small.events}
        large_names = {ev.region for ev in large.events}
        assert small_names == large_names & set(self.REGIONS[:3])


class TestDegradedTrace:
    def test_scales_inside_window_only(self):
        base = stable_trace(10.0, duration=100.0)
        t = DegradedTrace(base, [(5.0, 10.0, 0.25)])
        assert t.bandwidth_at(2.0) == base.bandwidth_at(2.0)
        assert t.bandwidth_at(7.0) == pytest.approx(0.25 * base.bandwidth_at(7.0))
        assert t.bandwidth_at(10.0) == base.bandwidth_at(10.0)  # end exclusive
        assert t.rtt == base.rtt
        assert t.duration == base.duration

    def test_overlapping_windows_compose(self):
        base = stable_trace(10.0, duration=100.0)
        t = DegradedTrace(base, [(0.0, 10.0, 0.5), (5.0, 15.0, 0.5)])
        assert t.bandwidth_at(7.0) == pytest.approx(0.25 * base.bandwidth_at(7.0))

    def test_time_to_next_change_caps_at_window_boundaries(self):
        base = stable_trace(10.0, duration=100.0)
        t = DegradedTrace(base, [(5.0, 10.0, 0.25)])
        assert t.time_to_next_change(2.0) == pytest.approx(3.0)
        assert t.time_to_next_change(6.0) == pytest.approx(4.0)
        # A varying base keeps its own (nearer) boundaries.
        lte = lte_trace()
        tv = DegradedTrace(lte, [(1e6, 2e6, 0.5)])
        assert tv.time_to_next_change(0.0) == lte.time_to_next_change(0.0)

    def test_rejects_bad_windows(self):
        base = stable_trace(10.0, duration=100.0)
        with pytest.raises(ValueError, match="start < end"):
            DegradedTrace(base, [(5.0, 5.0, 0.5)])
        with pytest.raises(ValueError, match="factor"):
            DegradedTrace(base, [(0.0, 5.0, 0.0)])

    def test_exact_shared_boundary_hands_off_cleanly(self):
        """Satellite: two windows meeting at one instant compose with no
        gap and no double-count — the shared boundary belongs to the
        *second* window (half-open ``[start, end)`` throughout)."""
        base = stable_trace(10.0, duration=100.0)
        t = DegradedTrace(base, [(2.0, 5.0, 0.5), (5.0, 8.0, 0.25)])
        bw = base.bandwidth_at(0.0)
        assert t.bandwidth_at(5.0 - 1e-9) == pytest.approx(0.5 * bw)
        assert t.bandwidth_at(5.0) == pytest.approx(0.25 * bw)
        assert t.bandwidth_at(8.0) == base.bandwidth_at(8.0)
        # The integration must stop exactly at the hand-off instant.
        assert t.time_to_next_change(2.0) == pytest.approx(3.0)
        assert t.time_to_next_change(5.0) == pytest.approx(3.0)

    def test_nested_windows_compose_at_both_boundaries(self):
        base = stable_trace(10.0, duration=100.0)
        t = DegradedTrace(base, [(0.0, 10.0, 0.5), (4.0, 6.0, 0.5)])
        bw = base.bandwidth_at(0.0)
        assert t.bandwidth_at(4.0 - 1e-9) == pytest.approx(0.5 * bw)
        assert t.bandwidth_at(4.0) == pytest.approx(0.25 * bw)
        assert t.bandwidth_at(6.0 - 1e-9) == pytest.approx(0.25 * bw)
        assert t.bandwidth_at(6.0) == pytest.approx(0.5 * bw)

    def test_windowed_byte_conservation(self):
        """Integrating the degraded trace over windows that exactly tile
        ``[0, 10)`` conserves bytes against the closed-form sum — the
        segment-exact contract the scheduler relies on at boundaries."""
        base = stable_trace(8.0, duration=100.0)  # constant 8 Mbit/s
        t = DegradedTrace(base, [(2.0, 5.0, 0.5), (5.0, 8.0, 0.25)])
        # Piecewise-exact integration by stepping time_to_next_change.
        now, total_bits = 0.0, 0.0
        while now < 10.0:
            dt = min(t.time_to_next_change(now), 10.0 - now)
            total_bits += t.bandwidth_at(now) * dt
            now += dt
        bw = base.bandwidth_at(0.0)
        expected = bw * (2.0 + 0.5 * 3.0 + 0.25 * 3.0 + 2.0)
        assert total_bits == pytest.approx(expected)


class TestFlashCrowds:
    def test_sessions_clone_template_onto_crowd_content(self):
        template = base_session()
        crowd = FlashCrowd(
            spec=spec(seconds=30, name="hot"), start=10.0, n_viewers=4,
            ramp_seconds=2.0,
        )
        out = flash_crowd_sessions(crowd, template)
        assert len(out) == 4
        assert [s.join_time for s in out] == [10.0, 10.5, 11.0, 11.5]
        assert all(s.spec.name == "hot" for s in out)
        assert all(s.controller is template.controller for s in out)

    def test_expand_population(self):
        sessions = fleet(3)
        crowd = FlashCrowd(spec=spec(name="hot"), start=5.0, n_viewers=2)
        out = FaultSchedule((crowd,)).expand_population(sessions)
        assert len(out) == 5
        assert out[:3] == sessions
        # No crowds: a plain copy.
        assert FaultSchedule().expand_population(sessions) == sessions
        with pytest.raises(ValueError, match="template"):
            FaultSchedule((crowd,)).expand_population([])


class TestOutageEndToEnd:
    def test_outage_resteers_and_recovers(self):
        sessions = fleet(9)
        sched = FaultSchedule((EdgeOutage(edge=0, start=4.0, duration=6.0),))
        result = simulate_fleet(
            sessions, topology=cdn(), assignment=[i % 3 for i in range(9)],
            faults=sched,
        )
        rep = result.report
        assert rep.faults_injected == 1
        assert rep.sessions_resteered > 0
        # Every viewer moved off the dead edge and every session finished.
        assert all(e != 0 for e in result.assignment)
        assert all(r is not None for r in result.sessions)
        assert rep.qoe_dip_depth >= 0.0

    def test_outage_run_is_deterministic(self):
        sessions = fleet(9)
        sched = FaultSchedule((EdgeOutage(edge=0, start=4.0, duration=6.0),))
        a = simulate_fleet(sessions, topology=cdn(), faults=sched)
        b = simulate_fleet(sessions, topology=cdn(), faults=sched)
        assert a.report == b.report
        assert a.sessions == b.sessions

    def test_outage_slows_the_fleet(self):
        sessions = fleet(9)
        base = simulate_fleet(
            sessions, topology=cdn(), assignment=[i % 3 for i in range(9)]
        ).report
        hit = simulate_fleet(
            sessions, topology=cdn(), assignment=[i % 3 for i in range(9)],
            faults=FaultSchedule((EdgeOutage(edge=0, start=4.0, duration=6.0),)),
        ).report
        assert hit.mean_qoe <= base.mean_qoe

    def test_outage_requires_topology(self):
        trace = stable_trace(80.0, duration=600.0)
        with pytest.raises(ValueError, match="require a topology"):
            simulate_fleet(
                fleet(2), trace,
                faults=FaultSchedule(
                    (EdgeOutage(edge=0, start=1.0, duration=1.0),)
                ),
            )


class TestDegradationEndToEnd:
    def test_degradation_perturbs_and_restores(self):
        sessions = fleet(6)
        topo = cdn()
        base = simulate_fleet(sessions, topology=topo).report
        sched = FaultSchedule((
            BackhaulDegradation(edge=0, start=2.0, duration=6.0, factor=0.1),
        ))
        hit = simulate_fleet(sessions, topology=topo, faults=sched).report
        assert hit != base
        assert hit.faults_injected == 1
        # The wrapper came off: a re-run without faults matches the baseline.
        for edge in topo.edges:
            assert not isinstance(edge.backhaul.trace, DegradedTrace)
        again = simulate_fleet(sessions, topology=topo).report
        assert again == base


class TestDisabledModeParity:
    def test_empty_schedule_is_bit_exact(self):
        sessions = fleet(6)
        topo = cdn()
        a = simulate_fleet(sessions, topology=topo)
        b = simulate_fleet(sessions, topology=topo, faults=FaultSchedule())
        assert a.report == b.report
        assert a.sessions == b.sessions
        assert a.end_times == b.end_times

    def test_topology_reuse_is_bit_exact(self):
        # Regression: simulate_fleet used to warm-start from the previous
        # run's caches/encode state when handed the same topology object.
        sessions = fleet(6)
        topo = cdn()
        a = simulate_fleet(sessions, topology=topo, sr_cache="per-edge")
        b = simulate_fleet(sessions, topology=topo, sr_cache="per-edge")
        assert a.report == b.report
        assert a.sessions == b.sessions

    def test_fault_metrics_default_to_zero(self):
        rep = simulate_fleet(fleet(3), topology=cdn()).report
        assert rep.sessions_resteered == 0
        assert rep.faults_injected == 0
        assert rep.control_ticks == 0
        assert rep.encode_pool_resizes == 0
        assert rep.qoe_dip_depth == 0.0
        assert rep.time_to_recover_s == 0.0
        assert not math.isinf(rep.time_to_recover_s)
        assert rep.chunk_retries == 0
        assert rep.requests_timed_out == 0
        assert rep.requests_hedged == 0
        assert rep.gray_degraded_bytes == 0
        assert rep.retry_attempts == ()
        assert rep.region_recovery == ()

    @pytest.mark.parametrize("engine", ["machine", "columnar"])
    def test_default_retry_policy_is_bit_exact(self, engine):
        """``RetryPolicy()`` (infinite timeout, no hedge) on a fault-free
        run arms nothing: bit-exact with the bare run on both engines."""
        sessions = fleet(6)
        topo = cdn()
        a = simulate_fleet(sessions, topology=topo, session_engine=engine)
        b = simulate_fleet(
            sessions, topology=topo, session_engine=engine,
            retry_policy=RetryPolicy(),
        )
        assert a.report == b.report
        assert a.sessions == b.sessions
        assert a.end_times == b.end_times


class TestOutageAccounting:
    """Regression tests for chaos-path accounting (PR 7 satellites)."""

    def test_byte_conservation_under_outage(self):
        """Flows cancelled mid-transfer by an outage used to leave their
        full origin-egress charge on the books even though the retry was
        billed again on another edge.  With the credit-back, conservation
        holds on fault runs exactly as it does fault-free."""
        sessions = fleet(9)
        topo = cdn()
        sched = FaultSchedule((EdgeOutage(edge=0, start=4.0, duration=6.0),))
        result = simulate_fleet(
            sessions,
            topology=topo,
            assignment=[i % 3 for i in range(9)],
            faults=sched,
        )
        rep = result.report
        assert rep.sessions_resteered > 0
        hit_bytes = sum(e.cache.hit_bytes for e in topo.edges)
        coalesced = sum(e.cache.coalesced_bytes for e in topo.edges)
        assert rep.coalesced_bytes == coalesced
        assert (
            rep.origin_egress_bytes + hit_bytes + coalesced == rep.total_bytes
        )

    def test_late_joiner_keeps_assignment_after_outage_ends(self):
        """_evacuate used to fail over *every* viewer assigned to the dark
        edge, including ones whose join_time is after the outage ends.
        Those viewers never see the outage and must keep their edge."""
        sessions = [
            dataclasses.replace(base_session(seconds=8), join_time=t)
            for t in (0.0, 1.0, 5.0, 12.0)
        ]
        sched = FaultSchedule((EdgeOutage(edge=0, start=4.0, duration=6.0),))
        result = simulate_fleet(
            sessions,
            topology=cdn(),
            assignment=[0, 1, 0, 0],
            faults=sched,
        )
        # Joined before/during the outage window: moved off edge 0.
        assert result.assignment[0] != 0
        assert result.assignment[2] != 0
        # Joined at t=12, after the outage ended at t=10: stays put.
        assert result.assignment[3] == 0
        assert result.report.sessions_resteered == 2
        assert all(r is not None for r in result.sessions)

    def test_chained_outages_extend_the_failover_window(self):
        """Back-to-back outage spans on one edge behave as a single dark
        window: a viewer joining during the *second* span is re-steered
        by the first span's evacuation pass."""
        sessions = [
            dataclasses.replace(base_session(seconds=8), join_time=t)
            for t in (0.0, 8.0, 12.0)
        ]
        sched = FaultSchedule((
            EdgeOutage(edge=0, start=4.0, duration=3.0),
            EdgeOutage(edge=0, start=7.0, duration=3.0),
        ))
        result = simulate_fleet(
            sessions,
            topology=cdn(),
            assignment=[0, 0, 0],
            faults=sched,
        )
        # t=0 and t=8 joiners fall inside the chained [4, 10) window.
        assert result.assignment[0] != 0
        assert result.assignment[1] != 0
        # t=12 joiner arrives after the chain ends.
        assert result.assignment[2] == 0
        assert all(r is not None for r in result.sessions)


def check_retry_accounting(rep):
    """The accounting contract every failure path shares: each counted
    failed attempt belongs to a request that eventually completed, so
    the retry counter equals the attempt histogram's weighted sum (no
    `_RetryState` entry outlives the run)."""
    assert rep.chunk_retries == sum(
        (k + 1) * c for k, c in enumerate(rep.retry_attempts)
    )


class TestGrayFailureEndToEnd:
    def test_drop_draw_is_deterministic_per_request(self):
        g = GrayFailure(edge=0, start=0.0, duration=10.0, drop_fraction=0.5)
        draws = [g.drops(sid, 1.25) for sid in range(200)]
        assert draws == [g.drops(sid, 1.25) for sid in range(200)]
        assert any(draws) and not all(draws)
        never = GrayFailure(edge=0, start=0.0, duration=10.0)
        assert not any(never.drops(sid, 1.25) for sid in range(50))
        always = GrayFailure(
            edge=0, start=0.0, duration=10.0, drop_fraction=1.0
        )
        assert all(always.drops(sid, 1.25) for sid in range(50))

    def test_covers_is_half_open(self):
        g = GrayFailure(edge=0, start=2.0, duration=3.0)
        assert not g.covers(2.0 - 1e-9)
        assert g.covers(2.0)
        assert g.covers(5.0 - 1e-9)
        assert not g.covers(5.0)

    def test_brownout_degrades_without_resteering(self):
        sessions = fleet(9)
        assignment = [i % 3 for i in range(9)]
        topo = cdn()
        base = simulate_fleet(
            sessions, topology=topo, assignment=assignment
        ).report
        sched = FaultSchedule((
            GrayFailure(edge=0, start=2.0, duration=10.0,
                        capacity_factor=0.3),
        ))
        hit = simulate_fleet(
            sessions, topology=cdn(), assignment=assignment, faults=sched
        ).report
        assert hit.faults_injected == 1
        assert hit.sessions_resteered == 0  # browned out, not dark
        assert hit.gray_degraded_bytes > 0
        assert hit != base

    def test_drops_count_as_retries_and_bytes_conserve(self):
        topo = cdn()
        sched = FaultSchedule((
            GrayFailure(edge=0, start=1.0, duration=14.0,
                        capacity_factor=0.8, drop_fraction=0.5,
                        drop_delay_s=0.5),
        ))
        result = simulate_fleet(
            fleet(9), topology=topo,
            assignment=[i % 3 for i in range(9)], faults=sched,
        )
        rep = result.report
        assert rep.chunk_retries > 0
        assert rep.requests_timed_out == 0
        assert sum(rep.retry_attempts) > 0
        check_retry_accounting(rep)
        hit_bytes = sum(e.cache.hit_bytes for e in topo.edges)
        coalesced = sum(e.cache.coalesced_bytes for e in topo.edges)
        assert (
            rep.origin_egress_bytes + hit_bytes + coalesced
            == rep.total_bytes
        )
        assert all(r is not None for r in result.sessions)

    def test_gray_composes_with_backhaul_degradation(self):
        """A gray capacity window (access link) and a backhaul
        degradation on the same edge stack without breaking byte
        conservation — distinct links, one DegradedTrace mechanism."""
        topo = cdn()
        sched = FaultSchedule((
            GrayFailure(edge=0, start=2.0, duration=8.0,
                        capacity_factor=0.5),
            BackhaulDegradation(edge=0, start=4.0, duration=8.0,
                                factor=0.5),
        ))
        result = simulate_fleet(
            fleet(6), topology=topo,
            assignment=[i % 3 for i in range(6)], faults=sched,
        )
        rep = result.report
        assert rep.faults_injected == 2
        hit_bytes = sum(e.cache.hit_bytes for e in topo.edges)
        coalesced = sum(e.cache.coalesced_bytes for e in topo.edges)
        assert (
            rep.origin_egress_bytes + hit_bytes + coalesced
            == rep.total_bytes
        )
        # Both wrappers came off the reused topology.
        for edge in topo.edges:
            assert not isinstance(edge.access.trace, DegradedTrace)
            assert not isinstance(edge.backhaul.trace, DegradedTrace)


class TestRegionOutageEndToEnd:
    def test_region_members_evacuate_together(self):
        # 3 edges, 2 regions: region-0 = (0, 1), region-1 = (2,).
        topo = cdn(n_regions=2)
        sched = FaultSchedule((
            RegionOutage(region="region-0", start=4.0, duration=6.0),
        ))
        result = simulate_fleet(
            fleet(9), topology=topo,
            assignment=[i % 3 for i in range(9)], faults=sched,
        )
        rep = result.report
        assert rep.faults_injected == 1  # one incident, two edges dark
        assert rep.sessions_resteered == 6  # everyone on edges 0 and 1
        assert all(e == 2 for e in result.assignment)
        assert all(r is not None for r in result.sessions)

    def test_per_region_recovery_metrics_reported(self):
        topo = cdn(n_regions=2)
        sched = FaultSchedule((
            RegionOutage(region="region-0", start=4.0, duration=6.0),
        ))
        rep = simulate_fleet(
            fleet(9), topology=topo,
            assignment=[i % 3 for i in range(9)], faults=sched,
        ).report
        names = [name for name, _, _ in rep.region_recovery]
        assert names == ["region-0", "region-1"]
        for _, dip, recover in rep.region_recovery:
            assert dip >= 0.0
            assert recover >= 0.0
        # The dark region's audience hurts at least as much as the
        # bystander region absorbing its refugees.
        dips = {name: dip for name, dip, _ in rep.region_recovery}
        assert dips["region-0"] > 0.0

    def test_region_outage_requires_declared_region(self):
        sched = FaultSchedule((
            RegionOutage(region="region-0", start=4.0, duration=6.0),
        ))
        with pytest.raises(ValueError, match="region-0"):
            simulate_fleet(fleet(3), topology=cdn(), faults=sched)


class TestRetryTimeouts:
    def sessions(self, n=6):
        return fleet(n)

    def slow_cdn(self):
        # A starved backhaul makes cold fetches slow enough that a short
        # client timeout fires while the cache is still warming.
        return cdn(backhaul_mbps=4.0)

    def test_timeouts_fire_and_requests_still_complete(self):
        pol = RetryPolicy(
            timeout_s=1.0, backoff_base_s=0.1, backoff_cap_s=0.4,
            max_attempts=3,
        )
        result = simulate_fleet(
            self.sessions(), topology=self.slow_cdn(),
            assignment=[i % 3 for i in range(6)], retry_policy=pol,
        )
        rep = result.report
        assert rep.requests_timed_out > 0
        assert rep.chunk_retries >= rep.requests_timed_out
        assert sum(rep.retry_attempts) > 0
        check_retry_accounting(rep)
        assert all(r is not None for r in result.sessions)

    def test_max_attempts_bounds_the_fight(self):
        pol = RetryPolicy(timeout_s=1.0, backoff_base_s=0.1, max_attempts=2)
        rep = simulate_fleet(
            self.sessions(), topology=self.slow_cdn(),
            assignment=[i % 3 for i in range(6)], retry_policy=pol,
        ).report
        assert rep.requests_timed_out > 0
        # At most max_attempts - 1 failed attempts per request: the
        # final attempt runs untimed.
        assert len(rep.retry_attempts) <= pol.max_attempts - 1

    def test_hedge_moves_sessions_and_counts(self):
        pol = RetryPolicy(timeout_s=1.0, backoff_base_s=0.1, hedge=True)
        result = simulate_fleet(
            self.sessions(), topology=self.slow_cdn(),
            assignment=[i % 3 for i in range(6)], retry_policy=pol,
        )
        rep = result.report
        assert rep.requests_hedged > 0
        assert rep.sessions_resteered >= rep.requests_hedged
        check_retry_accounting(rep)
        assert all(r is not None for r in result.sessions)

    def test_timeouts_are_deterministic(self):
        pol = RetryPolicy(timeout_s=1.0, backoff_base_s=0.1)
        a = simulate_fleet(
            self.sessions(), topology=self.slow_cdn(), retry_policy=pol
        )
        b = simulate_fleet(
            self.sessions(), topology=self.slow_cdn(), retry_policy=pol
        )
        assert a.report == b.report
        assert a.sessions == b.sessions
        assert a.end_times == b.end_times


class TestRetryOffsetAccounting:
    """Satellite: the old ``retry_offset`` dict's audit, pinned against
    the folded `_RetryState` accounting (see its docstring)."""

    def outage(self):
        return FaultSchedule((EdgeOutage(edge=0, start=4.0, duration=6.0),))

    def test_evacuation_retries_are_counted_and_settled(self):
        result = simulate_fleet(
            fleet(9), topology=cdn(),
            assignment=[i % 3 for i in range(9)], faults=self.outage(),
        )
        rep = result.report
        assert rep.sessions_resteered > 0
        assert rep.chunk_retries > 0
        check_retry_accounting(rep)
        assert all(r is not None for r in result.sessions)

    def test_chained_outages_telescope_into_one_window(self):
        """A viewer whose retry is re-killed by the chained second span
        accumulates both gaps into one offset entry; the fleet lands
        where a single merged window would put it (the extra scheduler
        sync at the inner boundary reassociates float sums, so the
        comparison is approx, not bit-exact)."""
        sessions = fleet(9)
        assignment = [i % 3 for i in range(9)]
        chained = simulate_fleet(
            sessions, topology=cdn(), assignment=assignment,
            faults=FaultSchedule((
                EdgeOutage(edge=0, start=4.0, duration=3.0),
                EdgeOutage(edge=0, start=7.0, duration=3.0),
            )),
        )
        merged = simulate_fleet(
            sessions, topology=cdn(), assignment=assignment,
            faults=FaultSchedule((
                EdgeOutage(edge=0, start=4.0, duration=6.0),
            )),
        )
        assert chained.assignment == merged.assignment
        assert chained.end_times == pytest.approx(merged.end_times)
        assert chained.report.sessions_resteered == (
            merged.report.sessions_resteered
        )
        assert chained.report.chunk_retries == merged.report.chunk_retries
        assert chained.report.mean_qoe == pytest.approx(
            merged.report.mean_qoe
        )
        for ca, me in zip(chained.sessions, merged.sessions):
            assert ca.total_bytes == me.total_bytes
            assert ca.stall_seconds == pytest.approx(me.stall_seconds)
            assert ca.qoe == pytest.approx(me.qoe)
        check_retry_accounting(chained.report)

    def test_abandoning_session_settles_its_account(self):
        """A session that abandons at its completing attempt has already
        consumed its sunk-time entry — the histogram equality cannot see
        a leak, and the run must not crash on the dangling state."""
        from repro.streaming import AbandonPolicy, FleetSession

        sessions = [
            FleetSession(
                spec=spec(seconds=20, name="vid"),
                controller=FixedDensity(0.4),
                sr_latency=sr_lat(),
                join_time=0.4 * i,
                churn=AbandonPolicy(max_total_stall=0.5),
            )
            for i in range(9)
        ]
        result = simulate_fleet(
            sessions, topology=cdn(backhaul_mbps=6.0),
            assignment=[i % 3 for i in range(9)], faults=self.outage(),
        )
        rep = result.report
        assert any(r.abandoned for r in result.sessions)
        check_retry_accounting(rep)
        assert all(r is not None for r in result.sessions)


class TestFaultEngineParity:
    """Ninth oracle-parity instance: fault kinds x retry policies, the
    per-session machine engine as the bit-exact oracle for columnar."""

    FAULTS = {
        "none": None,
        "edge": FaultSchedule((
            EdgeOutage(edge=0, start=3.0, duration=5.0),
        )),
        "region": FaultSchedule((
            RegionOutage(region="region-0", start=3.0, duration=5.0),
        )),
        "gray": FaultSchedule((
            GrayFailure(edge=0, start=2.0, duration=8.0,
                        capacity_factor=0.5),
        )),
        "gray-drop": FaultSchedule((
            GrayFailure(edge=0, start=2.0, duration=8.0,
                        capacity_factor=0.8, drop_fraction=0.4,
                        drop_delay_s=0.5),
        )),
    }
    RETRIES = {
        "none": None,
        "timeout": RetryPolicy(
            timeout_s=1.5, backoff_base_s=0.25, backoff_cap_s=1.0,
            max_attempts=3,
        ),
        "hedge": RetryPolicy(
            timeout_s=1.5, backoff_base_s=0.25, backoff_cap_s=1.0,
            max_attempts=3, hedge=True,
        ),
    }

    @given(
        fault=st.sampled_from(sorted(FAULTS)),
        retry=st.sampled_from(sorted(RETRIES)),
        n=st.integers(5, 8),
    )
    @settings(max_examples=15, deadline=None)
    def test_machine_is_the_columnar_oracle(self, fault, retry, n):
        def run(engine):
            return simulate_fleet(
                fleet(n), topology=cdn(n_regions=2),
                assignment=[i % 3 for i in range(n)],
                faults=self.FAULTS[fault],
                retry_policy=self.RETRIES[retry],
                session_engine=engine,
            )

        a = run("machine")
        b = run("columnar")
        assert a.report == b.report
        assert a.sessions == b.sessions
        assert a.assignment == b.assignment
        assert a.end_times == b.end_times
