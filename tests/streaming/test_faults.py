"""Fault injection: schedules, degraded traces, outage failover, sharding."""

import dataclasses
import math

import pytest

from repro.net import stable_trace
from repro.net.traces import lte_trace
from repro.streaming import (
    BackhaulDegradation,
    EdgeOutage,
    FaultSchedule,
    FlashCrowd,
    DegradedTrace,
    flash_crowd_sessions,
    simulate_fleet,
    uniform_cdn,
)

from .helpers import FixedDensity, spec, sr_lat


def fleet(n=8, seconds=20, stagger=0.4):
    return [
        dataclasses.replace(
            base_session(seconds=seconds), join_time=stagger * i
        )
        for i in range(n)
    ]


def base_session(seconds=20):
    from repro.streaming import FleetSession

    return FleetSession(
        spec=spec(seconds=seconds, name="vid"),
        controller=FixedDensity(0.4),
        sr_latency=sr_lat(),
    )


def cdn(n_edges=3, **kw):
    kw.setdefault("access_mbps", 50.0)
    kw.setdefault("backhaul_mbps", 40.0)
    kw.setdefault("n_encode_workers", 2)
    kw.setdefault("encode_seconds", 0.02)
    return uniform_cdn(n_edges, **kw)


class TestEventValidation:
    def test_outage_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="edge"):
            EdgeOutage(edge=-1, start=0.0, duration=1.0)
        with pytest.raises(ValueError, match="start"):
            EdgeOutage(edge=0, start=-1.0, duration=1.0)
        with pytest.raises(ValueError, match="duration"):
            EdgeOutage(edge=0, start=0.0, duration=0.0)

    def test_degradation_rejects_zero_factor(self):
        with pytest.raises(ValueError, match="EdgeOutage"):
            BackhaulDegradation(edge=0, start=0.0, duration=1.0, factor=0.0)

    def test_flash_crowd_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="n_viewers"):
            FlashCrowd(spec=spec(), start=0.0, n_viewers=0)
        with pytest.raises(ValueError, match="ramp"):
            FlashCrowd(spec=spec(), start=0.0, n_viewers=1, ramp_seconds=-1.0)

    def test_schedule_rejects_unknown_events(self):
        with pytest.raises(TypeError, match="unknown fault event"):
            FaultSchedule(("not a fault",))

    def test_schedule_rejects_out_of_range_edge(self):
        sched = FaultSchedule((EdgeOutage(edge=5, start=1.0, duration=1.0),))
        with pytest.raises(ValueError, match="edge 5"):
            sched.validate_topology(3)

    def test_schedule_rejects_total_darkness(self):
        sched = FaultSchedule((
            EdgeOutage(edge=0, start=1.0, duration=5.0),
            EdgeOutage(edge=1, start=2.0, duration=5.0),
        ))
        with pytest.raises(ValueError, match="no live edge"):
            sched.validate_topology(2)
        sched.validate_topology(3)  # a third edge survives

    def test_schedule_properties_and_shardable(self):
        o = EdgeOutage(edge=0, start=1.0, duration=2.0)
        d = BackhaulDegradation(edge=1, start=1.0, duration=2.0, factor=0.5)
        c = FlashCrowd(spec=spec(), start=3.0, n_viewers=2)
        sched = FaultSchedule((o, d, c))
        assert sched.outages == (o,)
        assert sched.degradations == (d,)
        assert sched.crowds == (c,)
        assert len(sched) == 3 and bool(sched)
        assert not sched.shardable()
        assert FaultSchedule((d,)).shardable()
        assert not FaultSchedule()

    def test_boundary_times_only_outages(self):
        sched = FaultSchedule((
            EdgeOutage(edge=0, start=4.0, duration=2.0),
            BackhaulDegradation(edge=1, start=1.0, duration=9.0, factor=0.5),
            EdgeOutage(edge=1, start=4.0, duration=3.0),
        ))
        assert sched.boundary_times() == [4.0, 6.0, 7.0]


class TestDegradedTrace:
    def test_scales_inside_window_only(self):
        base = stable_trace(10.0, duration=100.0)
        t = DegradedTrace(base, [(5.0, 10.0, 0.25)])
        assert t.bandwidth_at(2.0) == base.bandwidth_at(2.0)
        assert t.bandwidth_at(7.0) == pytest.approx(0.25 * base.bandwidth_at(7.0))
        assert t.bandwidth_at(10.0) == base.bandwidth_at(10.0)  # end exclusive
        assert t.rtt == base.rtt
        assert t.duration == base.duration

    def test_overlapping_windows_compose(self):
        base = stable_trace(10.0, duration=100.0)
        t = DegradedTrace(base, [(0.0, 10.0, 0.5), (5.0, 15.0, 0.5)])
        assert t.bandwidth_at(7.0) == pytest.approx(0.25 * base.bandwidth_at(7.0))

    def test_time_to_next_change_caps_at_window_boundaries(self):
        base = stable_trace(10.0, duration=100.0)
        t = DegradedTrace(base, [(5.0, 10.0, 0.25)])
        assert t.time_to_next_change(2.0) == pytest.approx(3.0)
        assert t.time_to_next_change(6.0) == pytest.approx(4.0)
        # A varying base keeps its own (nearer) boundaries.
        lte = lte_trace()
        tv = DegradedTrace(lte, [(1e6, 2e6, 0.5)])
        assert tv.time_to_next_change(0.0) == lte.time_to_next_change(0.0)

    def test_rejects_bad_windows(self):
        base = stable_trace(10.0, duration=100.0)
        with pytest.raises(ValueError, match="start < end"):
            DegradedTrace(base, [(5.0, 5.0, 0.5)])
        with pytest.raises(ValueError, match="factor"):
            DegradedTrace(base, [(0.0, 5.0, 0.0)])


class TestFlashCrowds:
    def test_sessions_clone_template_onto_crowd_content(self):
        template = base_session()
        crowd = FlashCrowd(
            spec=spec(seconds=30, name="hot"), start=10.0, n_viewers=4,
            ramp_seconds=2.0,
        )
        out = flash_crowd_sessions(crowd, template)
        assert len(out) == 4
        assert [s.join_time for s in out] == [10.0, 10.5, 11.0, 11.5]
        assert all(s.spec.name == "hot" for s in out)
        assert all(s.controller is template.controller for s in out)

    def test_expand_population(self):
        sessions = fleet(3)
        crowd = FlashCrowd(spec=spec(name="hot"), start=5.0, n_viewers=2)
        out = FaultSchedule((crowd,)).expand_population(sessions)
        assert len(out) == 5
        assert out[:3] == sessions
        # No crowds: a plain copy.
        assert FaultSchedule().expand_population(sessions) == sessions
        with pytest.raises(ValueError, match="template"):
            FaultSchedule((crowd,)).expand_population([])


class TestOutageEndToEnd:
    def test_outage_resteers_and_recovers(self):
        sessions = fleet(9)
        sched = FaultSchedule((EdgeOutage(edge=0, start=4.0, duration=6.0),))
        result = simulate_fleet(
            sessions, topology=cdn(), assignment=[i % 3 for i in range(9)],
            faults=sched,
        )
        rep = result.report
        assert rep.faults_injected == 1
        assert rep.sessions_resteered > 0
        # Every viewer moved off the dead edge and every session finished.
        assert all(e != 0 for e in result.assignment)
        assert all(r is not None for r in result.sessions)
        assert rep.qoe_dip_depth >= 0.0

    def test_outage_run_is_deterministic(self):
        sessions = fleet(9)
        sched = FaultSchedule((EdgeOutage(edge=0, start=4.0, duration=6.0),))
        a = simulate_fleet(sessions, topology=cdn(), faults=sched)
        b = simulate_fleet(sessions, topology=cdn(), faults=sched)
        assert a.report == b.report
        assert a.sessions == b.sessions

    def test_outage_slows_the_fleet(self):
        sessions = fleet(9)
        base = simulate_fleet(
            sessions, topology=cdn(), assignment=[i % 3 for i in range(9)]
        ).report
        hit = simulate_fleet(
            sessions, topology=cdn(), assignment=[i % 3 for i in range(9)],
            faults=FaultSchedule((EdgeOutage(edge=0, start=4.0, duration=6.0),)),
        ).report
        assert hit.mean_qoe <= base.mean_qoe

    def test_outage_requires_topology(self):
        trace = stable_trace(80.0, duration=600.0)
        with pytest.raises(ValueError, match="require a topology"):
            simulate_fleet(
                fleet(2), trace,
                faults=FaultSchedule(
                    (EdgeOutage(edge=0, start=1.0, duration=1.0),)
                ),
            )


class TestDegradationEndToEnd:
    def test_degradation_perturbs_and_restores(self):
        sessions = fleet(6)
        topo = cdn()
        base = simulate_fleet(sessions, topology=topo).report
        sched = FaultSchedule((
            BackhaulDegradation(edge=0, start=2.0, duration=6.0, factor=0.1),
        ))
        hit = simulate_fleet(sessions, topology=topo, faults=sched).report
        assert hit != base
        assert hit.faults_injected == 1
        # The wrapper came off: a re-run without faults matches the baseline.
        for edge in topo.edges:
            assert not isinstance(edge.backhaul.trace, DegradedTrace)
        again = simulate_fleet(sessions, topology=topo).report
        assert again == base


class TestDisabledModeParity:
    def test_empty_schedule_is_bit_exact(self):
        sessions = fleet(6)
        topo = cdn()
        a = simulate_fleet(sessions, topology=topo)
        b = simulate_fleet(sessions, topology=topo, faults=FaultSchedule())
        assert a.report == b.report
        assert a.sessions == b.sessions
        assert a.end_times == b.end_times

    def test_topology_reuse_is_bit_exact(self):
        # Regression: simulate_fleet used to warm-start from the previous
        # run's caches/encode state when handed the same topology object.
        sessions = fleet(6)
        topo = cdn()
        a = simulate_fleet(sessions, topology=topo, sr_cache="per-edge")
        b = simulate_fleet(sessions, topology=topo, sr_cache="per-edge")
        assert a.report == b.report
        assert a.sessions == b.sessions

    def test_fault_metrics_default_to_zero(self):
        rep = simulate_fleet(fleet(3), topology=cdn()).report
        assert rep.sessions_resteered == 0
        assert rep.faults_injected == 0
        assert rep.control_ticks == 0
        assert rep.encode_pool_resizes == 0
        assert rep.qoe_dip_depth == 0.0
        assert rep.time_to_recover_s == 0.0
        assert not math.isinf(rep.time_to_recover_s)


class TestOutageAccounting:
    """Regression tests for chaos-path accounting (PR 7 satellites)."""

    def test_byte_conservation_under_outage(self):
        """Flows cancelled mid-transfer by an outage used to leave their
        full origin-egress charge on the books even though the retry was
        billed again on another edge.  With the credit-back, conservation
        holds on fault runs exactly as it does fault-free."""
        sessions = fleet(9)
        topo = cdn()
        sched = FaultSchedule((EdgeOutage(edge=0, start=4.0, duration=6.0),))
        result = simulate_fleet(
            sessions,
            topology=topo,
            assignment=[i % 3 for i in range(9)],
            faults=sched,
        )
        rep = result.report
        assert rep.sessions_resteered > 0
        hit_bytes = sum(e.cache.hit_bytes for e in topo.edges)
        coalesced = sum(e.cache.coalesced_bytes for e in topo.edges)
        assert rep.coalesced_bytes == coalesced
        assert (
            rep.origin_egress_bytes + hit_bytes + coalesced == rep.total_bytes
        )

    def test_late_joiner_keeps_assignment_after_outage_ends(self):
        """_evacuate used to fail over *every* viewer assigned to the dark
        edge, including ones whose join_time is after the outage ends.
        Those viewers never see the outage and must keep their edge."""
        sessions = [
            dataclasses.replace(base_session(seconds=8), join_time=t)
            for t in (0.0, 1.0, 5.0, 12.0)
        ]
        sched = FaultSchedule((EdgeOutage(edge=0, start=4.0, duration=6.0),))
        result = simulate_fleet(
            sessions,
            topology=cdn(),
            assignment=[0, 1, 0, 0],
            faults=sched,
        )
        # Joined before/during the outage window: moved off edge 0.
        assert result.assignment[0] != 0
        assert result.assignment[2] != 0
        # Joined at t=12, after the outage ended at t=10: stays put.
        assert result.assignment[3] == 0
        assert result.report.sessions_resteered == 2
        assert all(r is not None for r in result.sessions)

    def test_chained_outages_extend_the_failover_window(self):
        """Back-to-back outage spans on one edge behave as a single dark
        window: a viewer joining during the *second* span is re-steered
        by the first span's evacuation pass."""
        sessions = [
            dataclasses.replace(base_session(seconds=8), join_time=t)
            for t in (0.0, 8.0, 12.0)
        ]
        sched = FaultSchedule((
            EdgeOutage(edge=0, start=4.0, duration=3.0),
            EdgeOutage(edge=0, start=7.0, duration=3.0),
        ))
        result = simulate_fleet(
            sessions,
            topology=cdn(),
            assignment=[0, 0, 0],
            faults=sched,
        )
        # t=0 and t=8 joiners fall inside the chained [4, 10) window.
        assert result.assignment[0] != 0
        assert result.assignment[1] != 0
        # t=12 joiner arrives after the chain ends.
        assert result.assignment[2] == 0
        assert all(r is not None for r in result.sessions)
