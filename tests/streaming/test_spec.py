"""FleetSpec: the one validated fleet configuration object.

The shim contract: legacy loose kwargs on ``simulate_fleet`` /
``shard_fleet`` build the same :class:`~repro.streaming.spec.FleetSpec`
the ``spec=`` path consumes, so the two calls are bit-exact by
construction — pinned here anyway, end to end.  The deprecated
``engine=`` / ``fleet_engine=`` aliases keep working but warn.
"""

import warnings

import pytest

from repro.metrics import QoEModel
from repro.net import stable_trace
from repro.streaming import (
    AbandonPolicy,
    ContinuousMPC,
    CostModel,
    EdgeOutage,
    FaultSchedule,
    FleetSession,
    FleetSpec,
    SRQualityModel,
    SRResultCache,
    shard_fleet,
    simulate_fleet,
    uniform_cdn,
)

from .helpers import spec, sr_lat


def make_sessions(n=5):
    qm = SRQualityModel()
    lat = sr_lat()
    ctrl = ContinuousMPC(qm, QoEModel(), lat, n_grid=8, horizon=2)
    return [
        FleetSession(
            spec=spec(6, name=f"v{i % 2}"),
            controller=ctrl,
            sr_latency=lat,
            quality_model=qm,
            join_time=1.0 * i,
            churn=AbandonPolicy(max_total_stall=20.0),
        )
        for i in range(n)
    ]


def make_topology(n_edges=2):
    return uniform_cdn(
        n_edges,
        access_mbps=80.0,
        backhaul_mbps=30.0,
        cache_bytes=1 << 32,
        assignment="static",
        n_encode_workers=3,
        encode_seconds=0.05,
    )


def assert_identical(a, b):
    assert a.report == b.report
    assert a.sessions == b.sessions
    assert a.assignment == b.assignment
    assert a.end_times == b.end_times


class TestSpecShimBitExact:
    def test_single_link_kwargs_equal_spec(self):
        trace = stable_trace(60.0, duration=600.0)
        loose = simulate_fleet(
            make_sessions(), trace=trace, sr_cache=SRResultCache()
        )
        via_spec = simulate_fleet(
            make_sessions(),
            spec=FleetSpec(trace=trace, sr_cache=SRResultCache()),
        )
        assert_identical(loose, via_spec)

    def test_cdn_kwargs_equal_spec(self):
        loose = simulate_fleet(
            make_sessions(),
            topology=make_topology(),
            sr_cache="per-edge",
            session_engine="columnar",
        )
        via_spec = simulate_fleet(
            make_sessions(),
            spec=FleetSpec(
                topology=make_topology(),
                sr_cache="per-edge",
                session_engine="columnar",
            ),
        )
        assert_identical(loose, via_spec)

    def test_shard_fleet_takes_spec_verbatim(self):
        loose = shard_fleet(
            make_sessions(8),
            make_topology(),
            workers=1,
            sr_cache="per-edge",
        )
        via_spec = shard_fleet(
            make_sessions(8),
            workers=1,
            spec=FleetSpec(topology=make_topology(), sr_cache="per-edge"),
        )
        assert_identical(loose, via_spec)

    def test_deprecated_aliases_still_work_and_warn(self):
        with pytest.warns(DeprecationWarning, match="scheduler_engine"):
            a = simulate_fleet(
                make_sessions(), topology=make_topology(), engine="scalar"
            )
        b = simulate_fleet(
            make_sessions(), topology=make_topology(),
            scheduler_engine="scalar",
        )
        assert_identical(a, b)
        with pytest.warns(DeprecationWarning, match="session_engine"):
            c = simulate_fleet(
                make_sessions(), topology=make_topology(),
                fleet_engine="columnar",
            )
        d = simulate_fleet(
            make_sessions(), topology=make_topology(),
            session_engine="columnar",
        )
        assert_identical(c, d)

    def test_shard_fleet_aliases_warn(self):
        with pytest.warns(DeprecationWarning, match="session_engine"):
            a = shard_fleet(
                make_sessions(8), make_topology(), workers=1,
                fleet_engine="columnar",
            )
        b = shard_fleet(
            make_sessions(8), make_topology(), workers=1,
            session_engine="columnar",
        )
        assert_identical(a, b)

    def test_new_names_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            simulate_fleet(
                make_sessions(),
                topology=make_topology(),
                scheduler_engine="vector",
                session_engine="machine",
            )


class TestSpecMixingRules:
    def test_spec_plus_loose_kwarg_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            simulate_fleet(
                make_sessions(),
                topology=make_topology(),
                spec=FleetSpec(topology=make_topology()),
            )

    def test_shard_spec_plus_loose_kwarg_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            shard_fleet(
                make_sessions(),
                make_topology(),
                spec=FleetSpec(topology=make_topology()),
            )

    def test_alias_plus_new_name_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            simulate_fleet(
                make_sessions(),
                topology=make_topology(),
                engine="scalar",
                scheduler_engine="vector",
            )
        with pytest.raises(ValueError, match="not both"):
            simulate_fleet(
                make_sessions(),
                topology=make_topology(),
                fleet_engine="machine",
                session_engine="columnar",
            )


class TestSpecValidation:
    def test_trace_xor_topology(self):
        with pytest.raises(ValueError, match="exactly one"):
            FleetSpec().validate()
        with pytest.raises(ValueError, match="exactly one"):
            FleetSpec(
                trace=stable_trace(60.0, duration=600.0),
                topology=make_topology(),
            ).validate()

    def test_unknown_session_engine(self):
        with pytest.raises(ValueError, match="session_engine"):
            FleetSpec(
                topology=make_topology(), session_engine="vectorized"
            ).validate()

    def test_policy_needs_single_link(self):
        with pytest.raises(ValueError, match="policy"):
            FleetSpec(topology=make_topology(), policy="weighted").validate()

    def test_assignment_requires_topology(self):
        with pytest.raises(ValueError, match="assignment"):
            FleetSpec(
                trace=stable_trace(60.0, duration=600.0), assignment=[0]
            ).validate()

    def test_sr_cache_mode_strings(self):
        with pytest.raises(ValueError, match="per-edge"):
            FleetSpec(
                topology=make_topology(), sr_cache="global"
            ).validate()
        with pytest.raises(ValueError, match="topology"):
            FleetSpec(
                trace=stable_trace(60.0, duration=600.0), sr_cache="per-edge"
            ).validate()

    def test_columnar_accepts_outages(self):
        """Outage evacuation is engine-agnostic now — the historical
        columnar-vs-outages rejection is gone."""
        faults = FaultSchedule((EdgeOutage(edge=0, start=1.0, duration=2.0),))
        FleetSpec(
            topology=make_topology(),
            faults=faults,
            session_engine="columnar",
        ).validate()

    def test_retry_policy_needs_topology(self):
        from repro.streaming.faults import RetryPolicy

        with pytest.raises(ValueError, match="retry_policy"):
            FleetSpec(
                trace=stable_trace(60.0, duration=600.0),
                retry_policy=RetryPolicy(timeout_s=5.0),
            ).validate()

    def test_empty_faults_normalized(self):
        s = FleetSpec(topology=make_topology(), faults=FaultSchedule())
        s.validate()
        assert s.faults is None

    def test_shard_fleet_requires_topology_spec(self):
        with pytest.raises(ValueError, match="CDNTopology"):
            shard_fleet(
                make_sessions(),
                spec=FleetSpec(trace=stable_trace(60.0, duration=600.0)),
            )

    def test_shard_fleet_rejects_controller(self):
        from repro.streaming import ControlPlane, ControlPolicy

        with pytest.raises(ValueError, match="control plane"):
            shard_fleet(
                make_sessions(),
                spec=FleetSpec(
                    topology=make_topology(),
                    controller=ControlPlane(ControlPolicy(interval=1.0)),
                ),
            )

    def test_spec_defaults_reproduce_bare_call(self):
        trace = stable_trace(60.0, duration=600.0)
        bare = simulate_fleet(make_sessions(), trace)
        via = simulate_fleet(make_sessions(), spec=FleetSpec(trace=trace))
        assert_identical(bare, via)

    def test_cost_model_rides_the_spec(self):
        result = simulate_fleet(
            make_sessions(),
            spec=FleetSpec(topology=make_topology(), cost_model=CostModel()),
        )
        assert result.report.cost is not None
        assert result.report.cost.total_usd > 0.0
