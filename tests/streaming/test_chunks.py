"""Chunk/video spec tests."""

import pytest

from repro.pointcloud import make_video
from repro.streaming import ChunkSpec, VideoSpec
from repro.streaming.chunks import CHUNK_HEADER_BYTES


class TestChunkSpec:
    def chunk(self, **kw):
        args = dict(index=0, n_frames=30, points_per_frame=1000, duration=1.0)
        args.update(kw)
        return ChunkSpec(**args)

    def test_bytes_scale_with_density(self):
        c = self.chunk(bytes_per_point=6.0)
        full = c.bytes_at_density(1.0)
        half = c.bytes_at_density(0.5)
        assert full == 30 * 1000 * 6 + CHUNK_HEADER_BYTES
        assert half < full
        assert half == 30 * 500 * 6 + CHUNK_HEADER_BYTES

    def test_points_at_density(self):
        c = self.chunk()
        assert c.points_at_density(1.0) == 1000
        assert c.points_at_density(0.33) == 330

    def test_density_validation(self):
        c = self.chunk()
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                c.bytes_at_density(bad)
            with pytest.raises(ValueError):
                c.points_at_density(bad)

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            self.chunk(n_frames=0)
        with pytest.raises(ValueError):
            self.chunk(duration=0.0)
        with pytest.raises(ValueError):
            self.chunk(bytes_per_point=0.0)


class TestVideoSpec:
    def test_chunking_covers_all_frames(self):
        spec = VideoSpec(name="t", n_frames=95, fps=30, points_per_frame=1000)
        chunks = spec.chunks(1.0)
        assert sum(c.n_frames for c in chunks) == 95
        assert chunks[0].n_frames == 30
        assert chunks[-1].n_frames == 5  # remainder chunk

    def test_chunk_durations(self):
        spec = VideoSpec(name="t", n_frames=60, fps=30, points_per_frame=1000)
        for c in spec.chunks(0.5):
            assert c.duration == pytest.approx(0.5)

    def test_duration(self):
        spec = VideoSpec(name="t", n_frames=300, fps=30, points_per_frame=1000)
        assert spec.duration == pytest.approx(10.0)

    def test_bytes_per_point_propagates(self):
        spec = VideoSpec(
            name="t", n_frames=30, fps=30, points_per_frame=100, bytes_per_point=15
        )
        c = spec.chunks(1.0)[0]
        assert c.bytes_at_density(1.0) == 30 * 100 * 15 + CHUNK_HEADER_BYTES

    def test_from_video(self):
        v = make_video("longdress", n_points=500, n_frames=10)
        spec = VideoSpec.from_video(v)
        assert spec.n_frames == v.n_playback_frames
        assert spec.fps == 30
        assert spec.points_per_frame == len(v.frame(0))

    def test_validation(self):
        with pytest.raises(ValueError):
            VideoSpec(name="t", n_frames=0, fps=30, points_per_frame=1)
        spec = VideoSpec(name="t", n_frames=10, fps=30, points_per_frame=1)
        with pytest.raises(ValueError):
            spec.chunks(0.0)
