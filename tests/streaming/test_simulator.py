"""Streaming-session simulator tests."""

import pytest

from repro.metrics import QoEModel
from repro.net import lte_trace, stable_trace
from repro.streaming import (
    ContinuousMPC,
    SessionConfig,
    SRQualityModel,
    VideoSpec,
    ZERO_LATENCY,
    simulate_session,
)
from repro.streaming.abr import AbrController, Decision


class FixedDensity(AbrController):
    def __init__(self, density, sr_ratio=None):
        self.density = density
        self.sr_ratio = sr_ratio or min(8.0, 1.0 / density)

    def decide(self, ctx):
        return Decision(density=self.density, sr_ratio=self.sr_ratio)


def spec(seconds=30, points=100_000):
    return VideoSpec(
        name="t", n_frames=seconds * 30, fps=30, points_per_frame=points
    )


class TestBasics:
    def test_all_chunks_played(self):
        r = simulate_session(spec(20), stable_trace(100.0), FixedDensity(0.5))
        assert r.n_chunks == 20
        assert len(r.decisions) == 20

    def test_no_stall_with_ample_bandwidth(self):
        r = simulate_session(spec(20), stable_trace(500.0), FixedDensity(0.5))
        assert r.stall_seconds == 0.0

    def test_stalls_when_bandwidth_insufficient(self):
        # full density at 100K pts, 6 B/pt, 30 fps = 144 Mbps > 20 Mbps.
        r = simulate_session(spec(20), stable_trace(20.0), FixedDensity(1.0))
        assert r.stall_seconds > 5.0

    def test_bytes_accounted(self):
        r = simulate_session(spec(10), stable_trace(500.0), FixedDensity(0.5))
        per_chunk = r.records[0].bytes_downloaded
        assert r.total_bytes == sum(rec.bytes_downloaded for rec in r.records)
        assert per_chunk == pytest.approx(30 * 50_000 * 6, rel=0.01)

    def test_quality_uses_model(self):
        qm = SRQualityModel(efficiency=0.9)
        r = simulate_session(
            spec(5), stable_trace(500.0), FixedDensity(0.5), quality_model=qm
        )
        assert r.mean_quality == pytest.approx(qm.quality(0.5), rel=1e-6)

    def test_deterministic(self):
        a = simulate_session(spec(10), lte_trace(50, 15, seed=3), FixedDensity(0.5))
        b = simulate_session(spec(10), lte_trace(50, 15, seed=3), FixedDensity(0.5))
        assert a.qoe == b.qoe and a.total_bytes == b.total_bytes


class TestSRLatencyEffects:
    def test_slow_sr_causes_stalls(self):
        slow = lambda n, s: 0.002 if s > 1 else 0.0  # 60ms/chunk... per frame 2ms
        very_slow = lambda n, s: 0.05 if s > 1 else 0.0  # 1.5s per 1s chunk
        r_ok = simulate_session(
            spec(20), stable_trace(500.0), FixedDensity(0.5), sr_latency=slow
        )
        r_bad = simulate_session(
            spec(20), stable_trace(500.0), FixedDensity(0.5), sr_latency=very_slow
        )
        assert r_ok.stall_seconds == 0.0
        assert r_bad.stall_seconds > 5.0

    def test_sr_overlaps_download(self):
        """Pipelined client: SR at line rate adds no steady-state stall."""
        line_rate = lambda n, s: 1.0 / 30.0 if s > 1 else 0.0
        r = simulate_session(
            spec(20), stable_trace(500.0), FixedDensity(0.5), sr_latency=line_rate
        )
        # At exactly line rate the pipeline keeps up after warm-up.
        assert r.stall_seconds < 3.0

    def test_no_sr_at_full_density(self):
        called = []

        def lat(n, s):
            called.append(s)
            return 0.0

        simulate_session(spec(5), stable_trace(500.0), FixedDensity(1.0, 1.0), sr_latency=lat)
        assert all(s == 1.0 for s in called)


class TestConfig:
    def test_startup_bytes_charged(self):
        cfg = SessionConfig(startup_bytes=50_000_000)
        r = simulate_session(
            spec(10), stable_trace(100.0), FixedDensity(0.5), config=cfg
        )
        r0 = simulate_session(spec(10), stable_trace(100.0), FixedDensity(0.5))
        assert r.total_bytes == r0.total_bytes + 50_000_000

    def test_fetch_fraction_scales_bytes(self):
        cfg = SessionConfig(fetch_fraction=0.5)
        r = simulate_session(
            spec(10), stable_trace(500.0), FixedDensity(1.0, 1.0), config=cfg
        )
        r_full = simulate_session(spec(10), stable_trace(500.0), FixedDensity(1.0, 1.0))
        assert r.total_bytes == pytest.approx(0.5 * r_full.total_bytes, rel=0.01)

    def test_quality_factor_scales_quality(self):
        cfg = SessionConfig(quality_factor=0.7)
        r = simulate_session(
            spec(10), stable_trace(500.0), FixedDensity(1.0, 1.0), config=cfg
        )
        assert r.mean_quality == pytest.approx(0.7, rel=1e-6)

    def test_max_buffer_limits_prefetch(self):
        """With a tiny buffer cap the session can't run ahead of playback."""
        cfg = SessionConfig(max_buffer=2.0)
        r = simulate_session(
            spec(10), stable_trace(1000.0), FixedDensity(0.5), config=cfg
        )
        assert r.stall_seconds == 0.0  # capped, but never starved

    def test_validation(self):
        with pytest.raises(ValueError):
            SessionConfig(chunk_seconds=0.0)
        with pytest.raises(ValueError):
            SessionConfig(fetch_fraction=0.0)
        with pytest.raises(ValueError):
            SessionConfig(quality_factor=1.5)


class TestWithMPC:
    def test_mpc_avoids_stalls_on_stable_link(self):
        qm = SRQualityModel()
        mpc = ContinuousMPC(qm, QoEModel(), ZERO_LATENCY)
        r = simulate_session(spec(30), stable_trace(50.0), mpc, quality_model=qm)
        assert r.stall_seconds < 1.0
        assert 0.2 < r.mean_quality <= 1.0

    def test_mpc_adapts_density_to_bandwidth(self):
        qm = SRQualityModel()
        mpc = ContinuousMPC(qm, QoEModel(), ZERO_LATENCY)
        lo = simulate_session(spec(20), stable_trace(20.0), mpc, quality_model=qm)
        mpc2 = ContinuousMPC(qm, QoEModel(), ZERO_LATENCY)
        hi = simulate_session(spec(20), stable_trace(150.0), mpc2, quality_model=qm)
        assert sum(hi.decisions) > sum(lo.decisions)
