"""Sharded fleet executor: parity oracle, determinism, partition units.

``shard_fleet(workers=1)`` joins the oracle-parity convention (kNN
backends, vectorized MPC, PathScheduler engines): the hypothesis grid
pins it **bit-exact** against ``simulate_fleet`` across assignment
policies, encode contention, cache configurations, and SR-cache modes.
Multi-worker runs are pinned for seed-determinism and for the
conservation laws that must survive the merge.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import QoEModel
from repro.streaming import (
    AbandonPolicy,
    ContinuousMPC,
    FleetSession,
    SRQualityModel,
    SRResultCache,
    partition_topology,
    shard_fleet,
    simulate_fleet,
    uniform_cdn,
)

from .helpers import FixedDensity, spec, sr_lat


def make_sessions(n, n_videos=3, churn=True):
    """A co-watching MPC fleet; fresh controller per call (fleet idiom:
    one shared controller instance across the sessions of one run)."""
    qm = SRQualityModel()
    lat = sr_lat()
    ctrl = ContinuousMPC(qm, QoEModel(), lat, n_grid=8, horizon=2)
    return [
        FleetSession(
            spec=spec(6, name=f"v{i % n_videos}"),
            controller=ctrl,
            sr_latency=lat,
            quality_model=qm,
            join_time=1.5 * i,
            churn=AbandonPolicy(max_total_stall=20.0) if churn else None,
        )
        for i in range(n)
    ]


def make_topology(
    n_edges, assignment="static", encode_seconds=0.0, cache_bytes=1 << 32
):
    return uniform_cdn(
        n_edges,
        access_mbps=80.0,
        backhaul_mbps=30.0,
        cache_bytes=cache_bytes,
        assignment=assignment,
        n_encode_workers=3,
        encode_seconds=encode_seconds,
    )


def sr_cache_for(mode):
    return {"none": None, "per-edge": "per-edge", "shared": SRResultCache()}[mode]


def assert_sessions_identical(a, b):
    assert len(a.sessions) == len(b.sessions)
    for ra, rb in zip(a.sessions, b.sessions):
        assert ra.qoe == rb.qoe
        assert ra.total_bytes == rb.total_bytes
        assert ra.stall_seconds == rb.stall_seconds
        assert ra.startup_delay == rb.startup_delay
        assert ra.decisions == rb.decisions
        assert ra.abandoned == rb.abandoned


class TestWorkersOneParity:
    """shard_fleet(workers=1) == simulate_fleet, bit for bit."""

    @given(
        n_sessions=st.integers(3, 8),
        n_edges=st.integers(1, 3),
        assignment=st.sampled_from(["static", "least-loaded", "popularity"]),
        encode_seconds=st.sampled_from([0.0, 0.05]),
        cache_bytes=st.sampled_from([0, 1 << 32]),
        sr_mode=st.sampled_from(["none", "per-edge", "shared"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_parity_grid(
        self, n_sessions, n_edges, assignment, encode_seconds, cache_bytes, sr_mode
    ):
        def run(fn):
            return fn(
                make_sessions(n_sessions),
                topology=make_topology(
                    n_edges,
                    assignment=assignment,
                    encode_seconds=encode_seconds,
                    cache_bytes=cache_bytes,
                ),
                sr_cache=sr_cache_for(sr_mode),
            )

        ref = run(simulate_fleet)
        sharded = run(lambda s, **kw: shard_fleet(s, kw.pop("topology"), **kw))
        assert sharded.report == ref.report
        assert_sessions_identical(ref, sharded)
        assert sharded.assignment == ref.assignment
        assert sharded.end_times == ref.end_times

    def test_report_fields_survive_merge(self):
        """The merged report reproduces every CDN aggregate, including
        percentiles that cannot be merged from per-shard summaries."""
        sessions = make_sessions(8)
        topo = make_topology(2, assignment="popularity", encode_seconds=0.2)
        ref = simulate_fleet(
            make_sessions(8), topology=make_topology(
                2, assignment="popularity", encode_seconds=0.2
            ), sr_cache="per-edge",
        ).report
        rep = shard_fleet(sessions, topo, workers=1, sr_cache="per-edge").report
        assert rep == ref
        assert rep.encode_wait_p95 >= rep.encode_wait_p50
        assert len(rep.edge_hit_rates) == 2
        assert len(rep.sr_edge_hit_rates) == 2

    def test_single_shard_runs_inline_against_callers_sr_cache(self):
        cache = SRResultCache()
        result = shard_fleet(
            make_sessions(4), make_topology(2), workers=1, sr_cache=cache
        )
        assert result.sr_cache is cache
        assert cache.hits + cache.misses > 0

    def test_callers_topology_never_mutated(self):
        topo = make_topology(2)
        shard_fleet(make_sessions(5), topo, workers=2)
        assert all(
            e.cache.hits == 0 and e.cache.misses == 0 for e in topo.edges
        )
        assert topo.origin.queue.n_jobs == 0


class TestMultiWorker:
    """Process-parallel runs: determinism, conservation, SR semantics."""

    def run(self, workers, seed=0, n=12):
        return shard_fleet(
            make_sessions(n),
            make_topology(4, assignment="popularity", encode_seconds=0.05),
            workers=workers,
            sr_cache="per-edge",
            seed=seed,
        )

    def test_seed_determinism_workers_4(self):
        a, b = self.run(4), self.run(4)
        assert a.report == b.report
        assert_sessions_identical(a, b)
        assert a.assignment == b.assignment

    def test_conservation_survives_merge(self):
        """origin egress + edge hits + coalesced == delivered, summed
        across shards exactly as within one process."""
        sessions = [
            FleetSession(
                spec=spec(6, name=f"v{i % 4}"),
                controller=FixedDensity(0.4),
                join_time=1.0 * i,
            )
            for i in range(16)
        ]
        topo = make_topology(3, assignment="popularity")
        result = shard_fleet(sessions, topo, workers=3)
        rep = result.report
        # hit bytes are not in the report; recover them from conservation
        # on the single-process reference, then compare the sharded run's
        # invariant directly: delivered == egress + (hits + coalesced).
        assert rep.total_bytes > 0
        assert rep.origin_egress_bytes + rep.coalesced_bytes <= rep.total_bytes
        assert rep.n_sessions == 16
        assert all(r is not None for r in result.sessions)

    def test_workers_beyond_edges_capped(self):
        result = shard_fleet(make_sessions(6), make_topology(2), workers=8)
        assert result.report.n_sessions == 6

    def test_empty_shard_tolerated(self):
        """An explicit assignment can starve an edge; its shard must
        contribute zeroed statistics, not crash."""
        sessions = make_sessions(4)
        topo = make_topology(2)
        result = shard_fleet(
            sessions, topo, workers=2, assignment=[0, 0, 0, 0]
        )
        assert result.report.n_sessions == 4
        assert result.report.edge_hit_rates[1] == 0.0

    def test_shared_sr_cache_copied_per_shard(self):
        """A plain SRResultCache cannot span processes: multi-worker runs
        copy it, so the caller's instance stays untouched and the result
        carries None."""
        cache = SRResultCache()
        result = shard_fleet(
            make_sessions(6), make_topology(2), workers=2, sr_cache=cache
        )
        assert result.sr_cache is None
        assert cache.hits == 0 and cache.misses == 0
        assert 0.0 <= result.report.cache_hit_rate <= 1.0


class TestShardedTelemetry:
    """Shard-tagged event streams must merge in virtual-time order with
    nothing lost or invented across the shard boundary."""

    def sessions(self, n=12):
        return [
            FleetSession(
                spec=spec(6, name=f"v{i % 4}"),
                controller=FixedDensity(0.4),
                join_time=1.0 * i,
            )
            for i in range(n)
        ]

    def run(self, workers, telemetry=None, n=12):
        from repro.streaming import BackhaulDegradation, FaultSchedule

        return shard_fleet(
            self.sessions(n),
            make_topology(3, assignment="popularity", encode_seconds=0.05),
            workers=workers,
            faults=FaultSchedule((
                BackhaulDegradation(
                    edge=0, start=2.0, duration=4.0, factor=0.2,
                ),
            )),
            telemetry=telemetry,
        )

    def test_merged_stream_is_virtual_time_ordered(self):
        from repro.obs import Telemetry
        from repro.obs.events import _sort_key

        tel = Telemetry(metrics=False)
        self.run(3, telemetry=tel)
        events = tel.tracer.events
        assert events
        assert {ev.shard for ev in events} == {0, 1, 2}
        keys = [_sort_key(ev) for ev in events]
        assert keys == sorted(keys)

    def test_event_counts_conserved_across_shard_boundary(self):
        """Sharding must neither drop nor duplicate events: every kind's
        count equals the sum of the per-shard streams, session ids cover
        the whole fleet exactly once, and the lifecycle balance (starts
        == finishes + abandons, fetches == completes) holds on the
        merged stream just as it does in one process."""
        from repro.obs import Telemetry
        from repro.obs.events import ops_from_events

        tel = Telemetry(metrics=False)
        result = self.run(3, telemetry=tel, n=12)
        c = tel.tracer.counts()
        by_shard: dict[int, dict[str, int]] = {}
        for ev in tel.tracer:
            by_shard.setdefault(ev.shard, {}).setdefault(ev.kind, 0)
            by_shard[ev.shard][ev.kind] += 1
        for kind, total in c.items():
            assert total == sum(s.get(kind, 0) for s in by_shard.values())
        starts = [ev.session for ev in tel.tracer if ev.kind == "session.start"]
        assert sorted(starts) == list(range(12))
        assert c["session.start"] == 12
        assert c.get("session.finish", 0) + c.get("session.abandon", 0) == 12
        assert c["chunk.fetch"] == c["chunk.complete"]
        assert c["chunk.decision"] == c["chunk.complete"]
        # the degradation is partitioned to exactly one shard's stream
        fold = ops_from_events(tel.tracer)
        assert fold["faults_injected"] == result.report.faults_injected == 1

    def test_edge_ids_globalized(self):
        """Shard-local edge indices must come back as the caller's
        global indices: every edge named in the merged stream exists in
        the topology, and edge 2 (a different shard than edge 0) still
        appears."""
        from repro.obs import Telemetry

        tel = Telemetry(metrics=False)
        self.run(3, telemetry=tel)
        edges = {
            ev.data["edge"]
            for ev in tel.tracer
            if ev.data and "edge" in ev.data
        }
        assert edges <= {0, 1, 2}
        assert len(edges) == 3

    def test_profiler_sums_worker_phase_totals(self):
        from repro.obs import Telemetry

        tel = Telemetry(trace=False, metrics=False)
        self.run(2, telemetry=tel)
        assert tel.profiler.totals.keys() >= {"scheduler", "advance", "planner"}
        assert tel.profiler.total_seconds > 0

    def test_workers_one_report_unchanged_by_telemetry(self):
        from repro.obs import Telemetry

        base = self.run(1)
        traced = self.run(1, telemetry=Telemetry())
        assert traced.report == base.report


class TestShardedFaults:
    """Fault schedules under the sharded executor: degradations shard,
    anything that re-steers viewers across shard boundaries is rejected."""

    def degradation(self, edge=0):
        from repro.streaming import BackhaulDegradation, FaultSchedule

        return FaultSchedule((
            BackhaulDegradation(edge=edge, start=2.0, duration=4.0, factor=0.2),
        ))

    def test_workers_one_degradation_parity(self):
        sessions = make_sessions(6)
        faults = self.degradation()
        ref = simulate_fleet(
            sessions, topology=make_topology(2), faults=faults
        )
        sharded = shard_fleet(
            make_sessions(6), make_topology(2), workers=1, faults=faults
        )
        assert sharded.report == ref.report
        assert_sessions_identical(ref, sharded)
        assert sharded.report.faults_injected == 1

    def test_multiworker_degradations_partitioned_once(self):
        from repro.streaming import BackhaulDegradation, FaultSchedule

        faults = FaultSchedule((
            BackhaulDegradation(edge=0, start=2.0, duration=4.0, factor=0.2),
            BackhaulDegradation(edge=2, start=3.0, duration=4.0, factor=0.5),
        ))
        result = shard_fleet(
            make_sessions(9), make_topology(3), workers=3, faults=faults
        )
        assert result.report.faults_injected == 2
        assert result.report.n_sessions == 9

    def test_outage_rejected_with_guidance(self):
        from repro.streaming import EdgeOutage, FaultSchedule

        faults = FaultSchedule((EdgeOutage(edge=0, start=2.0, duration=2.0),))
        with pytest.raises(ValueError, match="simulate_fleet"):
            shard_fleet(make_sessions(4), make_topology(2), workers=2,
                        faults=faults)

    def test_flash_crowd_rejected(self):
        from repro.streaming import FlashCrowd, FaultSchedule

        faults = FaultSchedule((
            FlashCrowd(spec=spec(6), start=2.0, n_viewers=3),
        ))
        with pytest.raises(ValueError, match="simulate_fleet"):
            shard_fleet(make_sessions(4), make_topology(2), workers=2,
                        faults=faults)

    def test_empty_schedule_is_plain_sharding(self):
        from repro.streaming import FaultSchedule

        a = shard_fleet(make_sessions(5), make_topology(2), workers=2)
        b = shard_fleet(make_sessions(5), make_topology(2), workers=2,
                        faults=FaultSchedule())
        assert a.report == b.report


class TestPartition:
    def sessions(self, n):
        return [
            FleetSession(spec=spec(4, name=f"v{i % 3}"), controller=FixedDensity(0.5))
            for i in range(n)
        ]

    def test_edges_disjoint_and_complete(self):
        topo = make_topology(5)
        plan = partition_topology(topo, self.sessions(20), 3)
        owned = [e for s in plan.shards for e in s.edge_indices]
        assert sorted(owned) == list(range(5))
        assert plan.n_shards == 3

    def test_sessions_follow_their_edges(self):
        topo = make_topology(4)
        sessions = self.sessions(17)
        plan = partition_topology(topo, sessions, 2)
        for shard in plan.shards:
            for sid in shard.session_indices:
                assert plan.assignment[sid] in shard.edge_indices

    def test_encode_pool_divided_min_one_each(self):
        topo = make_topology(4)  # pool of 3 workers
        plan = partition_topology(topo, self.sessions(8), 4)
        shares = [s.n_encode_workers for s in plan.shards]
        assert all(share >= 1 for share in shares)
        # an evenly divisible pool is conserved exactly
        topo8 = uniform_cdn(
            4, access_mbps=10.0, backhaul_mbps=5.0, n_encode_workers=8
        )
        plan8 = partition_topology(topo8, self.sessions(8), 4)
        assert sum(s.n_encode_workers for s in plan8.shards) == 8

    def test_balance_by_viewer_count(self):
        """Greedy balance: no shard holds every viewer when the load is
        splittable."""
        topo = make_topology(4, assignment="least-loaded")
        plan = partition_topology(topo, self.sessions(16), 2)
        loads = [len(s.session_indices) for s in plan.shards]
        assert loads == [8, 8]

    def test_per_shard_seeds_deterministic_and_distinct(self):
        topo = make_topology(4)
        a = partition_topology(topo, self.sessions(8), 4, seed=7)
        b = partition_topology(topo, self.sessions(8), 4, seed=7)
        c = partition_topology(topo, self.sessions(8), 4, seed=8)
        assert [s.seed for s in a.shards] == [s.seed for s in b.shards]
        assert [s.seed for s in a.shards] != [s.seed for s in c.shards]
        assert len({s.seed for s in a.shards}) == 4

    def test_validation(self):
        topo = make_topology(2)
        with pytest.raises(ValueError, match="workers"):
            partition_topology(topo, self.sessions(2), 0)
        with pytest.raises(ValueError, match="at least one session"):
            partition_topology(topo, [], 2)
        with pytest.raises(ValueError, match="assignment"):
            partition_topology(topo, self.sessions(3), 2, assignment=[0])
        with pytest.raises(ValueError, match="edge indices"):
            partition_topology(topo, self.sessions(2), 2, assignment=[0, 9])
        with pytest.raises(ValueError, match="CDNTopology"):
            shard_fleet(self.sessions(2), None, workers=2)
        with pytest.raises(ValueError, match="at least one session"):
            shard_fleet([], topo, workers=2)


class TestShardedRegions:
    """Region-scoped outages under the sharded executor: accepted when
    the whole fault domain (plus a fallback edge) lands in one shard,
    rejected with guidance otherwise."""

    def topo(self, n_edges=4, n_regions=2):
        return uniform_cdn(
            n_edges,
            access_mbps=80.0,
            backhaul_mbps=30.0,
            cache_bytes=1 << 32,
            assignment="static",
            n_encode_workers=4,
            encode_seconds=0.0,
            n_regions=n_regions,
        )

    def region_outage(self, region="region-0"):
        from repro.streaming import FaultSchedule, RegionOutage

        return FaultSchedule((
            RegionOutage(region=region, start=3.0, duration=4.0),
        ))

    def test_workers_one_region_outage_parity(self):
        """workers=1 joins the oracle-parity convention for region
        faults too: bit-exact against simulate_fleet."""
        faults = self.region_outage()
        ref = simulate_fleet(
            make_sessions(8), topology=self.topo(), faults=faults,
            assignment=[i % 4 for i in range(8)],
        )
        sharded = shard_fleet(
            make_sessions(8), self.topo(), workers=1, faults=faults,
            assignment=[i % 4 for i in range(8)],
        )
        assert sharded.report == ref.report
        assert_sessions_identical(ref, sharded)
        assert sharded.report.faults_injected == 1
        assert sharded.report.sessions_resteered > 0
        assert sharded.report.region_recovery == ref.report.region_recovery

    def test_contained_region_accepted_and_merged(self):
        """A region outage is legal when one shard owns the whole fault
        domain plus a live fallback edge.  The greedy balance (viewer
        loads 6,1,5,5,0,0 over 6 edges, 2 workers) lands shard 0 on
        edges {0, 1, 4, 5}: region-0 = (0, 1) is wholly contained and
        edges 4-5 survive as in-shard failover targets."""
        topo = uniform_cdn(
            6,
            access_mbps=80.0,
            backhaul_mbps=30.0,
            assignment="static",
            n_encode_workers=4,
            n_regions=3,
        )
        assignment = [0] * 6 + [1] + [2] * 5 + [3] * 5
        faults = self.region_outage()
        result = shard_fleet(
            make_sessions(17), topo, workers=2, faults=faults,
            assignment=assignment,
        )
        rep = result.report
        assert rep.faults_injected == 1
        assert rep.sessions_resteered > 0
        assert rep.n_sessions == 17
        assert all(r is not None for r in result.sessions)
        # Everyone who joined the dark region before the outage ended
        # (join_time = 1.5 * i < 7.0) moved off it; later joiners never
        # saw it and keep their edge.
        assert all(e not in (0, 1) for e in result.assignment[:5])
        # The merged report carries the per-region recovery rows.
        assert [name for name, _, _ in rep.region_recovery]

    def test_spanning_region_rejected(self):
        # 2 workers x 4 edges: each shard owns 2 edges, so a 2-edge
        # region... still fits.  Force a span: 3 workers over 4 edges
        # puts region-0's two edges in different shards.
        faults = self.region_outage()
        with pytest.raises(ValueError, match="spans shards"):
            shard_fleet(
                make_sessions(8), self.topo(), workers=3, faults=faults
            )

    def test_all_dark_shard_rejected(self):
        # Viewer loads 3,2,3,2 over 4 edges / 2 workers make the greedy
        # balance deal shard 0 exactly {0, 1} == region-0: the whole
        # shard would go dark with no in-shard fallback edge.
        faults = self.region_outage()
        assignment = [0] * 3 + [1] * 2 + [2] * 3 + [3] * 2
        with pytest.raises(ValueError, match="fallback"):
            shard_fleet(
                make_sessions(10), self.topo(), workers=2, faults=faults,
                assignment=assignment,
            )

    def test_gray_failure_shards_like_a_degradation(self):
        from repro.streaming import FaultSchedule, GrayFailure

        faults = FaultSchedule((
            GrayFailure(edge=0, start=2.0, duration=4.0,
                        capacity_factor=0.5, drop_fraction=0.3,
                        drop_delay_s=0.5),
        ))
        ref = simulate_fleet(
            make_sessions(8), topology=self.topo(), faults=faults,
            assignment=[i % 4 for i in range(8)],
        )
        sharded = shard_fleet(
            make_sessions(8), self.topo(), workers=2, faults=faults,
            assignment=[i % 4 for i in range(8)],
        )
        assert sharded.report.gray_degraded_bytes == (
            ref.report.gray_degraded_bytes
        )
        assert sharded.report.chunk_retries == ref.report.chunk_retries
        assert sharded.report.n_sessions == 8


class TestShardedRetryPolicy:
    def slow_topo(self):
        return uniform_cdn(
            2,
            access_mbps=80.0,
            backhaul_mbps=4.0,
            assignment="static",
            n_encode_workers=4,
        )

    def policy(self):
        from repro.streaming import RetryPolicy

        return RetryPolicy(
            timeout_s=1.0, backoff_base_s=0.1, backoff_cap_s=0.4,
            max_attempts=3,
        )

    def test_workers_one_retry_parity(self):
        ref = simulate_fleet(
            make_sessions(6), topology=self.slow_topo(),
            retry_policy=self.policy(),
        )
        sharded = shard_fleet(
            make_sessions(6), self.slow_topo(), workers=1,
            retry_policy=self.policy(),
        )
        assert sharded.report == ref.report
        assert_sessions_identical(ref, sharded)
        assert sharded.report.requests_timed_out > 0

    def test_multiworker_retry_counters_merge(self):
        ref = simulate_fleet(
            make_sessions(8), topology=self.slow_topo(),
            retry_policy=self.policy(), assignment=[i % 2 for i in range(8)],
        )
        sharded = shard_fleet(
            make_sessions(8), self.slow_topo(), workers=2,
            retry_policy=self.policy(), assignment=[i % 2 for i in range(8)],
        )
        rep = sharded.report
        assert rep.requests_timed_out == ref.report.requests_timed_out
        assert rep.chunk_retries == ref.report.chunk_retries
        assert rep.retry_attempts == ref.report.retry_attempts
