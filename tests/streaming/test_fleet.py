"""Fleet simulator: parity, determinism, conservation, cache, policies."""

import pytest

from repro.metrics import QoEModel
from repro.net import lte_trace, stable_trace
from repro.streaming import (
    ContinuousMPC,
    FleetSession,
    SessionConfig,
    SRQualityModel,
    SRResultCache,
    simulate_fleet,
    simulate_session,
)
from repro.streaming.latency import MeasuredSRLatency

from .helpers import FixedDensity, sr_lat, spec


class TestSingleSessionParity:
    """A fleet of one must reproduce simulate_session bit-exactly."""

    def assert_identical(self, solo, fleet_result):
        f = fleet_result.sessions[0]
        assert f.qoe == solo.qoe
        assert f.total_bytes == solo.total_bytes
        assert f.stall_seconds == solo.stall_seconds
        assert f.startup_delay == solo.startup_delay
        assert f.mean_quality == solo.mean_quality
        assert f.decisions == solo.decisions
        assert len(f.records) == len(solo.records)
        for a, b in zip(f.records, solo.records):
            assert a.quality == b.quality
            assert a.stall == b.stall
            assert a.bytes_downloaded == b.bytes_downloaded

    def test_mpc_on_lte(self):
        qm = SRQualityModel()
        lat = sr_lat()
        trace = lte_trace(50, 15, seed=3)
        solo = simulate_session(
            spec(20), trace, ContinuousMPC(qm, QoEModel(), lat),
            sr_latency=lat, quality_model=qm,
        )
        fleet = simulate_fleet(
            [FleetSession(spec=spec(20), controller=ContinuousMPC(qm, QoEModel(), lat),
                          sr_latency=lat, quality_model=qm)],
            trace,
        )
        self.assert_identical(solo, fleet)

    def test_fixed_density_with_startup_bytes(self):
        cfg = SessionConfig(startup_bytes=5_000_000)
        trace = lte_trace(30, 10, seed=7)
        solo = simulate_session(
            spec(15), trace, FixedDensity(0.5), config=cfg
        )
        fleet = simulate_fleet(
            [FleetSession(spec=spec(15), controller=FixedDensity(0.5), config=cfg)],
            trace,
        )
        self.assert_identical(solo, fleet)

    def test_parity_holds_under_weighted_policy(self):
        trace = stable_trace(60.0)
        solo = simulate_session(spec(10), trace, FixedDensity(0.5))
        fleet = simulate_fleet(
            [FleetSession(spec=spec(10), controller=FixedDensity(0.5), weight=3.0)],
            trace,
            policy="weighted",
        )
        self.assert_identical(solo, fleet)

    def test_single_arrival_population_degenerates_to_simulate_session(self):
        """A population of one (arrival process, catalog, no churn) is
        bit-exact with the plain single-session simulator."""
        from repro.streaming import ContentCatalog, TraceArrivals, build_population

        qm = SRQualityModel()
        lat = sr_lat()
        trace = lte_trace(60, 18, seed=5)
        controller = ContinuousMPC(qm, QoEModel(), lat, n_grid=12)
        sessions = build_population(
            ContentCatalog(videos=(spec(12),)),
            TraceArrivals((0.0,)),
            window=1.0,
            controller=controller,
            sr_latency=lat,
            quality_model=qm,
        )
        assert len(sessions) == 1
        solo = simulate_session(
            spec(12), trace, controller, sr_latency=lat, quality_model=qm
        )
        self.assert_identical(solo, simulate_fleet(sessions, trace))

    def test_poisson_single_arrival_is_a_time_shift_on_stable_link(self):
        """One Poisson arrival on a constant link sees the same conditions
        as a t=0 session (extends TestJoinTimes to arrival processes)."""
        from repro.streaming import ContentCatalog, PoissonArrivals, build_population

        arrivals = PoissonArrivals(rate_hz=0.05, seed=0)
        sessions = build_population(
            ContentCatalog(videos=(spec(10),)),
            arrivals,
            window=20.0,
            controller=FixedDensity(0.5),
        )
        assert len(sessions) == 1
        assert sessions[0].join_time > 0.0
        solo = simulate_session(spec(10), stable_trace(80.0), FixedDensity(0.5))
        shifted = simulate_fleet(sessions, stable_trace(80.0)).sessions[0]
        assert shifted.qoe == pytest.approx(solo.qoe, rel=1e-9)
        assert shifted.total_bytes == solo.total_bytes
        assert shifted.decisions == solo.decisions


class TestEngineParityEndToEnd:
    """scalar vs vector PathScheduler through the whole fleet stack."""

    def make_sessions(self):
        qm = SRQualityModel()
        lat = sr_lat()
        ctrl = ContinuousMPC(qm, QoEModel(), lat, n_grid=8, horizon=2)
        return [
            FleetSession(
                spec=spec(8, name=f"v{i % 3}"),
                controller=ctrl,
                sr_latency=lat,
                quality_model=qm,
                join_time=0.7 * i,
                weight=1.0 + 0.5 * (i % 2),
            )
            for i in range(8)
        ]

    def test_mpc_fleet_engines_agree(self):
        trace = lte_trace(55, 16, seed=11)
        runs = [
            simulate_fleet(
                self.make_sessions(), trace, policy="weighted",
                sr_cache=SRResultCache(), scheduler_engine=engine,
            )
            for engine in ("scalar", "vector")
        ]
        a, b = runs
        for ra, rb in zip(a.sessions, b.sessions):
            assert ra.qoe == rb.qoe
            assert ra.total_bytes == rb.total_bytes
            assert ra.stall_seconds == rb.stall_seconds
            assert ra.decisions == rb.decisions
        assert a.report.makespan == b.report.makespan


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        def run():
            qm = SRQualityModel()
            lat = sr_lat()
            sessions = [
                FleetSession(
                    spec=spec(10),
                    controller=ContinuousMPC(qm, QoEModel(), lat, n_grid=8),
                    sr_latency=lat,
                    quality_model=qm,
                    join_time=0.5 * i,
                )
                for i in range(6)
            ]
            return simulate_fleet(
                sessions, lte_trace(80, 20, seed=11), sr_cache=SRResultCache()
            )

        a, b = run(), run()
        assert a.report == b.report
        for ra, rb in zip(a.sessions, b.sessions):
            assert ra.qoe == rb.qoe
            assert ra.decisions == rb.decisions
            assert ra.total_bytes == rb.total_bytes


class TestBandwidthConservation:
    def test_fair_share_throughputs_sum_to_capacity(self):
        """Saturated fair-share fleet: delivered bits ≈ capacity × makespan."""
        mbps = 20.0
        n = 4
        trace = stable_trace(mbps, rtt=0.0)
        sessions = [
            FleetSession(spec=spec(8), controller=FixedDensity(1.0, 1.0))
            for _ in range(n)
        ]
        result = simulate_fleet(sessions, trace)
        # demand (4 × 144 Mbps) >> capacity, rtt = 0: the link never idles
        # between first request and last completion.
        total_bits = 8.0 * sum(
            rec.bytes_downloaded for r in result.sessions for rec in r.records
        )
        assert total_bits == pytest.approx(mbps * 1e6 * result.report.makespan, rel=1e-9)

    def test_equal_sessions_get_equal_shares(self):
        sessions = [
            FleetSession(spec=spec(8), controller=FixedDensity(1.0, 1.0))
            for _ in range(3)
        ]
        result = simulate_fleet(sessions, stable_trace(30.0, rtt=0.0))
        ref = result.sessions[0]
        for r in result.sessions[1:]:
            assert r.total_bytes == ref.total_bytes
            assert r.stall_seconds == pytest.approx(ref.stall_seconds, rel=1e-9)

    def test_contention_slows_everyone(self):
        solo = simulate_fleet(
            [FleetSession(spec=spec(10), controller=FixedDensity(1.0, 1.0))],
            stable_trace(50.0),
        )
        crowd = simulate_fleet(
            [FleetSession(spec=spec(10), controller=FixedDensity(1.0, 1.0))
             for _ in range(5)],
            stable_trace(50.0),
        )
        assert crowd.report.stall_ratio > solo.report.stall_ratio
        assert crowd.report.mean_qoe < solo.report.mean_qoe


class TestChunkKey:
    """Edge-cache keys quantize density the same way SR-cache keys do."""

    def req(self, density, chunk_index=0):
        from repro.streaming.simulator import DownloadRequest

        return DownloadRequest(
            start_time=0.0, nbytes=100, video="v",
            chunk_index=chunk_index, density=density,
        )

    def test_planner_jitter_collapses_to_one_variant(self):
        from repro.streaming.fleet import _chunk_key

        a = _chunk_key(self.req(0.5))
        b = _chunk_key(self.req(0.5 + 1e-9))
        assert a == b == ("v", 0, 0.5)
        assert _chunk_key(self.req(0.5004)) == a      # rounds down
        assert _chunk_key(self.req(0.5006)) != a      # a real new variant

    def test_matches_sr_cache_key_rounding(self):
        # The SR-result cache key rounds density with round(d, 3)
        # (simulator.py); the edge-cache key must agree or one SR result
        # maps onto several encoded variants.
        from repro.streaming.fleet import _chunk_key

        for density in (1 / 3, 0.1 + 0.2, 0.0005, 0.9995):
            assert _chunk_key(self.req(density))[2] == round(density, 3)

    def test_startup_payload_is_not_cacheable(self):
        from repro.streaming.fleet import _chunk_key
        from repro.streaming.simulator import DownloadRequest

        assert _chunk_key(DownloadRequest(start_time=0.0, nbytes=10)) is None


class TestSRCache:
    def test_co_watching_hits(self):
        """A later viewer of the same chunks pays zero SR time."""
        cache = SRResultCache()
        lat = sr_lat()
        sessions = [
            FleetSession(spec=spec(10), controller=FixedDensity(0.5),
                         sr_latency=lat, join_time=0.0),
            FleetSession(spec=spec(10), controller=FixedDensity(0.5),
                         sr_latency=lat, join_time=40.0),
        ]
        result = simulate_fleet(sessions, stable_trace(200.0), sr_cache=cache)
        # Session 2 joins after session 1 finished: every chunk hits.
        assert cache.misses == 10
        assert cache.hits == 10
        assert result.report.cache_hit_rate == pytest.approx(0.5)

    def test_accounting_covers_all_sr_work(self):
        cache = SRResultCache()
        lat = sr_lat()
        n, secs = 5, 8
        sessions = [
            FleetSession(spec=spec(secs), controller=FixedDensity(0.5),
                         sr_latency=lat, join_time=2.0 * i)
            for i in range(n)
        ]
        simulate_fleet(sessions, stable_trace(300.0), sr_cache=cache)
        assert cache.hits + cache.misses == n * secs

    def test_no_sr_means_no_cache_traffic(self):
        cache = SRResultCache()
        sessions = [
            FleetSession(spec=spec(5), controller=FixedDensity(0.5))
            for _ in range(3)
        ]
        result = simulate_fleet(sessions, stable_trace(200.0), sr_cache=cache)
        assert cache.hits == cache.misses == 0
        assert result.report.cache_hit_rate == 0.0

    def test_different_videos_do_not_collide(self):
        cache = SRResultCache()
        lat = sr_lat()
        sessions = [
            FleetSession(spec=spec(5, name="a"), controller=FixedDensity(0.5),
                         sr_latency=lat),
            FleetSession(spec=spec(5, name="b"), controller=FixedDensity(0.5),
                         sr_latency=lat, join_time=30.0),
        ]
        simulate_fleet(sessions, stable_trace(200.0), sr_cache=cache)
        assert cache.hits == 0

    def test_cache_improves_qoe_under_slow_sr(self):
        slow = MeasuredSRLatency(0.05, 1e-7, 1e-7)  # 1.5 s of SR per 1 s chunk

        def run(cache):
            sessions = [
                FleetSession(spec=spec(10), controller=FixedDensity(0.5),
                             sr_latency=slow, join_time=20.0 * i)
                for i in range(3)
            ]
            return simulate_fleet(sessions, stable_trace(500.0), sr_cache=cache)

        with_cache = run(SRResultCache())
        without = run(None)
        assert with_cache.report.mean_qoe > without.report.mean_qoe

    def test_lru_eviction_and_validation(self):
        cache = SRResultCache(capacity=2)
        assert cache.acquire(("v", 0, 0.5, 2.0), 0.0, 1.0) == 1.0
        assert cache.acquire(("v", 1, 0.5, 2.0), 0.0, 1.0) == 1.0
        assert cache.acquire(("v", 2, 0.5, 2.0), 0.0, 1.0) == 1.0  # evicts chunk 0
        assert cache.acquire(("v", 0, 0.5, 2.0), 5.0, 1.0) == 1.0  # miss again
        assert cache.acquire(("v", 0, 0.5, 2.0), 9.0, 1.0) == 0.0  # now a hit
        assert len(cache) == 2
        with pytest.raises(ValueError):
            SRResultCache(capacity=0)

    def test_result_not_ready_yet_is_a_miss(self):
        cache = SRResultCache()
        cache.acquire(("v", 0, 0.5, 2.0), 0.0, 10.0)  # ready at t=10
        assert cache.acquire(("v", 0, 0.5, 2.0), 5.0, 3.0) == 3.0  # still computing
        assert cache.acquire(("v", 0, 0.5, 2.0), 9.0, 3.0) == 0.0  # second writer won

    def test_slower_recompute_cannot_delay_an_in_flight_result(self):
        cache = SRResultCache()
        cache.acquire(("v", 0, 0.5, 2.0), 10.0, 2.0)  # A: ready at t=12
        # B misses at t=11 (A not done); B's own copy lands at t=13, which
        # must NOT push the entry's readiness past A's t=12.
        assert cache.acquire(("v", 0, 0.5, 2.0), 11.0, 2.0) == 2.0
        assert cache.acquire(("v", 0, 0.5, 2.0), 12.5, 2.0) == 0.0  # A's result


class TestWeightedPolicy:
    def test_heavier_session_stalls_less(self):
        def session(w):
            return FleetSession(spec=spec(10), controller=FixedDensity(1.0, 1.0),
                                weight=w)

        result = simulate_fleet(
            [session(3.0), session(1.0)], stable_trace(60.0, rtt=0.0),
            policy="weighted",
        )
        heavy, light = result.sessions
        assert heavy.stall_seconds < light.stall_seconds

    def test_fair_policy_ignores_weights(self):
        def run(policy):
            return simulate_fleet(
                [FleetSession(spec=spec(8), controller=FixedDensity(1.0, 1.0),
                              weight=5.0),
                 FleetSession(spec=spec(8), controller=FixedDensity(1.0, 1.0))],
                stable_trace(40.0, rtt=0.0), policy=policy,
            )

        fair = run("fair")
        a, b = fair.sessions
        assert a.stall_seconds == pytest.approx(b.stall_seconds, rel=1e-9)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            simulate_fleet(
                [FleetSession(spec=spec(5), controller=FixedDensity(0.5))],
                stable_trace(50.0), policy="priority",
            )


class TestJoinTimes:
    def test_stagger_on_constant_link_is_a_time_shift(self):
        """On a constant-rate link a late join sees identical conditions."""
        base = simulate_fleet(
            [FleetSession(spec=spec(10), controller=FixedDensity(0.5))],
            stable_trace(80.0),
        ).sessions[0]
        late = simulate_fleet(
            [FleetSession(spec=spec(10), controller=FixedDensity(0.5),
                          join_time=12.5)],
            stable_trace(80.0),
        ).sessions[0]
        assert late.qoe == pytest.approx(base.qoe, rel=1e-9)
        assert late.total_bytes == base.total_bytes
        assert late.stall_seconds == pytest.approx(base.stall_seconds, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetSession(spec=spec(5), controller=FixedDensity(0.5), join_time=-1.0)
        with pytest.raises(ValueError):
            FleetSession(spec=spec(5), controller=FixedDensity(0.5), weight=0.0)
        with pytest.raises(ValueError):
            simulate_fleet([], stable_trace(50.0))


class TestScale:
    def test_hundred_concurrent_sessions(self):
        """Acceptance: ≥100 sessions, one process, aggregate report emitted."""
        from repro.experiments import make_fleet

        sessions = make_fleet(
            100, spec(8), join_spacing=0.1, n_grid=8, horizon=2
        )
        result = simulate_fleet(
            sessions, stable_trace(400.0), sr_cache=SRResultCache()
        )
        rep = result.report
        assert rep.n_sessions == 100
        assert len(result.sessions) == 100
        assert all(r.n_chunks == 8 for r in result.sessions)
        assert rep.p5_qoe <= rep.mean_qoe <= rep.p95_qoe
        assert 0.0 <= rep.stall_ratio < 1.0
        assert rep.cache_hit_rate > 0.5  # co-watching amortizes SR
        assert rep.total_bytes == sum(r.total_bytes for r in result.sessions)
