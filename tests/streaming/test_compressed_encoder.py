"""Compressed wire-format tests (codec-backed transport)."""

import pytest

from repro.streaming import (
    decode_frame_compressed,
    encode_frame,
    encode_frame_compressed,
)


class TestCompressedFrames:
    def test_roundtrip(self, small_frame):
        payload = encode_frame_compressed(small_frame, 0.5, seed=0)
        back = decode_frame_compressed(payload)
        assert 0 < len(back) <= len(small_frame) // 2 + 1
        assert back.has_colors

    def test_smaller_than_uncompressed(self, small_frame):
        comp = encode_frame_compressed(small_frame, 1.0, seed=0)
        raw = encode_frame(small_frame, 1.0, seed=0)
        assert len(comp) < len(raw)

    def test_density_scales_size(self, small_frame):
        lo = encode_frame_compressed(small_frame, 0.25, seed=0)
        hi = encode_frame_compressed(small_frame, 1.0, seed=0)
        assert len(lo) < len(hi)

    def test_depth_controls_fidelity(self, small_frame):
        from repro.metrics import chamfer_distance

        coarse = decode_frame_compressed(
            encode_frame_compressed(small_frame, 1.0, depth=6, seed=0)
        )
        fine = decode_frame_compressed(
            encode_frame_compressed(small_frame, 1.0, depth=11, seed=0)
        )
        assert chamfer_distance(fine, small_frame) < chamfer_distance(
            coarse, small_frame
        )

    def test_invalid_density(self, small_frame):
        with pytest.raises(ValueError):
            encode_frame_compressed(small_frame, 0.0)

    def test_decoded_frame_feeds_sr(self, small_frame, trained_artifacts):
        """The decoded cloud flows straight into the SR pipeline."""
        from repro.sr import VolutUpsampler

        received = decode_frame_compressed(
            encode_frame_compressed(small_frame, 0.5, seed=0)
        )
        out = VolutUpsampler(lut=trained_artifacts.lut).upsample(received, 2.0)
        assert len(out.cloud) == 2 * len(received)
