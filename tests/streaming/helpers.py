"""Shared fixtures-as-functions for the fleet/population test modules."""

from repro.streaming import VideoSpec
from repro.streaming.abr import AbrController, Decision
from repro.streaming.latency import MeasuredSRLatency


class FixedDensity(AbrController):
    """Always fetches the same density — the simplest deterministic ABR."""

    def __init__(self, density, sr_ratio=None):
        self.density = density
        self.sr_ratio = sr_ratio or min(8.0, 1.0 / density)

    def decide(self, ctx):
        return Decision(density=self.density, sr_ratio=self.sr_ratio)


def spec(seconds=10, points=100_000, name="t"):
    return VideoSpec(
        name=name, n_frames=seconds * 30, fps=30, points_per_frame=points
    )


def sr_lat():
    return MeasuredSRLatency(0.001, 1e-8, 2e-8)
