"""ABR controller tests (continuous vs discrete MPC, quality model)."""

import numpy as np
import pytest

from repro.metrics import QoEModel
from repro.streaming import (
    YUZU_DENSITY_LEVELS,
    AbrContext,
    BufferBased,
    ContinuousMPC,
    Decision,
    DiscreteMPC,
    SRQualityModel,
    VideoSpec,
    ZERO_LATENCY,
)


def ctx(tput_mbps=50.0, buffer_level=3.0, prev=None, points=100_000, bpp=6.0):
    spec = VideoSpec(
        name="t", n_frames=300, fps=30, points_per_frame=points, bytes_per_point=bpp
    )
    return AbrContext(
        throughput_bps=tput_mbps * 1e6,
        buffer_level=buffer_level,
        prev_quality=prev,
        next_chunks=spec.chunks(1.0),
    )


class TestSRQualityModel:
    def test_full_density_full_quality(self):
        qm = SRQualityModel()
        assert qm.quality(1.0) == pytest.approx(1.0)

    def test_sr_ratio_capped(self):
        qm = SRQualityModel(max_ratio=4.0)
        assert qm.sr_ratio_for(0.1) == 4.0
        assert qm.sr_ratio_for(0.5) == 2.0

    def test_quality_monotone_in_density(self):
        qm = SRQualityModel()
        qs = [qm.quality(d) for d in (0.125, 0.25, 0.5, 1.0)]
        assert all(a < b for a, b in zip(qs, qs[1:]))

    def test_discount_grows_with_ratio(self):
        qm = SRQualityModel(efficiency=0.9)
        assert qm.quality(0.5) == pytest.approx(0.9)
        assert qm.quality(0.25) == pytest.approx(0.81)

    def test_under_restored_density(self):
        qm = SRQualityModel(max_ratio=2.0)
        # density 0.25 with SR capped at 2x -> restored 0.5, discounted.
        assert qm.quality(0.25) == pytest.approx(0.5 * 0.93)

    def test_validation(self):
        with pytest.raises(ValueError):
            SRQualityModel(max_ratio=0.5)
        with pytest.raises(ValueError):
            SRQualityModel(efficiency=0.0)
        qm = SRQualityModel()
        with pytest.raises(ValueError):
            qm.quality(0.0)
        with pytest.raises(ValueError):
            qm.quality(0.5, sr_ratio=0.5)


class TestDecision:
    def test_validation(self):
        with pytest.raises(ValueError):
            Decision(density=0.0, sr_ratio=2.0)
        with pytest.raises(ValueError):
            Decision(density=0.5, sr_ratio=0.9)


def make_mpc(cls=ContinuousMPC, **kw):
    qm = SRQualityModel()
    return cls(qm, QoEModel(), ZERO_LATENCY, **kw)


class TestContinuousMPC:
    def test_high_bandwidth_picks_high_density(self):
        mpc = make_mpc()
        d = mpc.decide(ctx(tput_mbps=500.0))
        assert d.density > 0.9

    def test_low_bandwidth_picks_low_density(self):
        mpc = make_mpc()
        d = mpc.decide(ctx(tput_mbps=5.0))
        assert d.density < 0.2

    def test_decision_monotone_in_bandwidth(self):
        mpc = make_mpc()
        densities = [
            mpc.decide(ctx(tput_mbps=m)).density for m in (10, 30, 60, 120, 400)
        ]
        assert all(a <= b + 1e-9 for a, b in zip(densities, densities[1:]))

    def test_sr_ratio_consistent_with_density(self):
        mpc = make_mpc()
        d = mpc.decide(ctx(tput_mbps=40.0))
        assert d.sr_ratio == pytest.approx(min(8.0, 1.0 / d.density))

    def test_fine_grid_beats_discrete_on_intermediate_bandwidth(self):
        """The continuous grid can sit between discrete rungs."""
        cont = make_mpc(ContinuousMPC)
        disc = make_mpc(DiscreteMPC)
        c = ctx(tput_mbps=55.0, buffer_level=1.0)
        d_cont = cont.decide(c).density
        d_disc = disc.decide(c).density
        assert d_disc in YUZU_DENSITY_LEVELS
        assert d_cont not in YUZU_DENSITY_LEVELS

    def test_empty_buffer_conservative(self):
        mpc = make_mpc()
        hungry = mpc.decide(ctx(tput_mbps=60.0, buffer_level=0.0)).density
        comfy = mpc.decide(ctx(tput_mbps=60.0, buffer_level=8.0)).density
        assert hungry <= comfy

    def test_validation(self):
        with pytest.raises(ValueError):
            make_mpc(min_density=0.0)
        with pytest.raises(ValueError):
            make_mpc(horizon=0)
        with pytest.raises(ValueError):
            make_mpc(safety=0.0)


class TestDiscreteMPC:
    def test_always_on_a_level(self):
        mpc = make_mpc(DiscreteMPC)
        for m in (5, 20, 50, 100, 300):
            d = mpc.decide(ctx(tput_mbps=m)).density
            assert any(np.isclose(d, lvl) for lvl in YUZU_DENSITY_LEVELS)

    def test_floor_is_quarter_density(self):
        mpc = make_mpc(DiscreteMPC)
        d = mpc.decide(ctx(tput_mbps=1.0)).density
        assert d == pytest.approx(0.25)


class TestBufferBased:
    def test_thresholds(self):
        bb = BufferBased(SRQualityModel(), min_density=0.125, low_buffer=1, high_buffer=6)
        assert bb.decide(ctx(buffer_level=0.5)).density == pytest.approx(0.125)
        assert bb.decide(ctx(buffer_level=8.0)).density == pytest.approx(1.0)
        mid = bb.decide(ctx(buffer_level=3.5)).density
        assert 0.125 < mid < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BufferBased(SRQualityModel(), low_buffer=5, high_buffer=5)
        with pytest.raises(ValueError):
            BufferBased(SRQualityModel(), min_density=0.0)


class TestAbrContext:
    def test_validation(self):
        spec = VideoSpec(name="t", n_frames=30, fps=30, points_per_frame=100)
        with pytest.raises(ValueError):
            AbrContext(0.0, 1.0, None, spec.chunks())
        with pytest.raises(ValueError):
            AbrContext(1e6, -1.0, None, spec.chunks())
        with pytest.raises(ValueError):
            AbrContext(1e6, 1.0, None, [])


class TestValidationMessages:
    """Errors name the offending field and echo the rejected value."""

    def test_decision_density_message(self):
        with pytest.raises(ValueError, match=r"Decision\.density.*got 0\.0"):
            Decision(density=0.0, sr_ratio=2.0)
        with pytest.raises(ValueError, match=r"Decision\.density.*got 1\.7"):
            Decision(density=1.7, sr_ratio=2.0)

    def test_decision_sr_ratio_message(self):
        with pytest.raises(ValueError, match=r"Decision\.sr_ratio.*got 0\.9"):
            Decision(density=0.5, sr_ratio=0.9)

    def test_abr_context_throughput_message(self):
        spec = VideoSpec(name="t", n_frames=30, fps=30, points_per_frame=100)
        with pytest.raises(
            ValueError, match=r"AbrContext\.throughput_bps.*got -5\.0"
        ):
            AbrContext(-5.0, 1.0, None, spec.chunks())

    def test_abr_context_buffer_message(self):
        spec = VideoSpec(name="t", n_frames=30, fps=30, points_per_frame=100)
        with pytest.raises(
            ValueError, match=r"AbrContext\.buffer_level.*got -0\.25"
        ):
            AbrContext(1e6, -0.25, None, spec.chunks())

    def test_abr_context_chunks_message(self):
        with pytest.raises(
            ValueError, match=r"AbrContext\.next_chunks.*got \[\]"
        ):
            AbrContext(1e6, 1.0, None, [])
