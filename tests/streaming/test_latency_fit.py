"""MeasuredSRLatency.fit tests."""

import pytest

from repro.streaming import MeasuredSRLatency


class TestFit:
    def test_recovers_exact_linear_model(self):
        true = MeasuredSRLatency(base=0.002, per_input_point=3e-7, per_output_point=5e-7)
        samples = [
            (n, s, true(n, s))
            for n in (1_000, 5_000, 20_000)
            for s in (2.0, 4.0, 8.0)
        ]
        fit = MeasuredSRLatency.fit(samples)
        for n, s, t in samples:
            assert fit(n, s) == pytest.approx(t, rel=1e-6)

    def test_clamps_negative_coefficients(self):
        # Decreasing latency with size is noise; coefficients clamp to 0.
        samples = [(1_000, 2.0, 0.1), (10_000, 2.0, 0.05), (100_000, 2.0, 0.01)]
        fit = MeasuredSRLatency.fit(samples)
        assert fit.per_input >= 0.0
        assert fit.per_output >= 0.0

    def test_needs_three_samples(self):
        with pytest.raises(ValueError):
            MeasuredSRLatency.fit([(1000, 2.0, 0.1), (2000, 2.0, 0.2)])

    def test_fit_from_real_pipeline(self, trained_artifacts):
        """Fit against real measurements of the Python pipeline and check
        the model interpolates sensibly."""
        import time

        from repro.pointcloud import make_video, random_downsample_count
        from repro.sr import VolutUpsampler

        gt = make_video("longdress", n_points=1500, n_frames=1).frame(0)
        up = VolutUpsampler(lut=trained_artifacts.lut)
        samples = []
        for n in (400, 800, 1200):
            low = random_downsample_count(gt, n, seed=0)
            for ratio in (2.0, 3.0):
                t0 = time.perf_counter()
                up.upsample(low, ratio)
                samples.append((n, ratio, time.perf_counter() - t0))
        model = MeasuredSRLatency.fit(samples)
        assert model(1000, 2.5) > 0.0
