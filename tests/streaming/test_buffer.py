"""Playback buffer tests."""

import pytest

from repro.streaming import PlaybackBuffer


class TestBuffer:
    def test_starts_paused(self):
        buf = PlaybackBuffer(startup_threshold=2.0)
        assert not buf.playing
        buf.add(1.0)
        assert not buf.playing
        buf.add(1.0)
        assert buf.playing

    def test_prestart_time_is_startup_delay_not_stall(self):
        buf = PlaybackBuffer(startup_threshold=5.0)
        stall = buf.drain(3.0)
        assert stall == 0.0
        assert buf.startup_delay == pytest.approx(3.0)
        assert buf.total_stall == 0.0

    def test_drain_consumes_level(self):
        buf = PlaybackBuffer(startup_threshold=1.0)
        buf.add(3.0)
        assert buf.drain(2.0) == 0.0
        assert buf.level == pytest.approx(1.0)

    def test_stall_when_empty(self):
        buf = PlaybackBuffer(startup_threshold=1.0)
        buf.add(1.0)
        stall = buf.drain(2.5)
        assert stall == pytest.approx(1.5)
        assert buf.total_stall == pytest.approx(1.5)
        assert buf.level == 0.0

    def test_max_level_clamps(self):
        buf = PlaybackBuffer(startup_threshold=1.0, max_level=4.0)
        buf.add(10.0)
        assert buf.level == 4.0
        assert buf.headroom == 0.0

    def test_headroom(self):
        buf = PlaybackBuffer(startup_threshold=1.0, max_level=5.0)
        buf.add(2.0)
        assert buf.headroom == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PlaybackBuffer(startup_threshold=-1.0)
        with pytest.raises(ValueError):
            PlaybackBuffer(max_level=0.0)
        buf = PlaybackBuffer()
        with pytest.raises(ValueError):
            buf.add(-1.0)
        with pytest.raises(ValueError):
            buf.drain(-1.0)

    def test_stalls_accumulate(self):
        buf = PlaybackBuffer(startup_threshold=0.5)
        buf.add(0.5)
        buf.drain(1.0)   # 0.5 stall
        buf.add(0.5)
        buf.drain(1.0)   # 0.5 more
        assert buf.total_stall == pytest.approx(1.0)
