"""Policy registry: round-trips, defaults, signature-filtered kwargs."""

import pytest

from repro.metrics import QoEModel
from repro.streaming import (
    AbrPolicy,
    BolaController,
    BufferBased,
    ContinuousMPC,
    DiscreteMPC,
    HybridController,
    SRQualityModel,
    ThroughputRuleController,
    ZERO_LATENCY,
    available_policies,
    get_policy,
    register_policy,
    supports_dedup,
)
from repro.streaming.policies import _REGISTRY

from .helpers import sr_lat


class TestRegistry:
    def test_builtins_registered(self):
        names = available_policies()
        for expected in (
            "continuous-mpc",
            "discrete-mpc",
            "bola",
            "throughput",
            "hybrid",
            "buffer-linear",
        ):
            assert expected in names

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("continuous-mpc", ContinuousMPC),
            ("discrete-mpc", DiscreteMPC),
            ("bola", BolaController),
            ("throughput", ThroughputRuleController),
            ("hybrid", HybridController),
            ("buffer-linear", BufferBased),
        ],
    )
    def test_round_trip(self, name, cls):
        policy = get_policy(name)
        assert isinstance(policy, cls)
        assert isinstance(policy, AbrPolicy)

    def test_unknown_name_lists_registry(self):
        with pytest.raises(ValueError, match="bola"):
            get_policy("nope")

    def test_duplicate_requires_replace(self):
        with pytest.raises(ValueError, match="replace=True"):
            register_policy("bola", BolaController)

    def test_register_and_replace(self):
        sentinel = object()
        try:
            register_policy("test-sentinel", lambda: sentinel)
            assert get_policy("test-sentinel") is sentinel
            other = object()
            register_policy(
                "test-sentinel", lambda: other, replace=True
            )
            assert get_policy("test-sentinel") is other
        finally:
            _REGISTRY.pop("test-sentinel", None)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            register_policy("", BolaController)

    def test_base_models_threaded_through(self):
        qm = SRQualityModel(max_ratio=4.0)
        qoe = QoEModel()
        lat = sr_lat()
        mpc = get_policy(
            "continuous-mpc", quality_model=qm, qoe_model=qoe, sr_latency=lat
        )
        assert mpc.quality_model is qm
        assert mpc.qoe_model is qoe
        assert mpc.sr_latency is lat

    def test_base_models_default(self):
        mpc = get_policy("continuous-mpc")
        assert isinstance(mpc.quality_model, SRQualityModel)
        assert mpc.sr_latency is ZERO_LATENCY

    def test_kwargs_filtered_by_signature(self):
        """``n_grid``/``horizon`` reach the factories that take them and
        are dropped for the ones that don't (the CLI forwards one kwarg
        set to every policy)."""
        bola = get_policy("bola", n_grid=9, horizon=4)
        assert len(bola.candidates) == 9
        discrete = get_policy("discrete-mpc", n_grid=9, horizon=4)
        assert discrete.horizon == 4
        buffer_based = get_policy("buffer-linear", n_grid=9, horizon=4)
        assert isinstance(buffer_based, BufferBased)

    def test_get_policy_matches_direct_construction(self):
        qm = SRQualityModel()
        direct = BolaController(qm, n_grid=12)
        via_registry = get_policy("bola", quality_model=qm, n_grid=12)
        assert (via_registry.candidates == direct.candidates).all()
        assert via_registry.lyapunov_v == direct.lyapunov_v

    def test_supports_dedup(self):
        assert supports_dedup(get_policy("continuous-mpc"))
        assert supports_dedup(get_policy("discrete-mpc"))
        assert not supports_dedup(get_policy("bola"))
        assert not supports_dedup(get_policy("throughput"))
        assert not supports_dedup(get_policy("hybrid"))


class TestZooValidation:
    def test_grid_validation(self):
        qm = SRQualityModel()
        with pytest.raises(ValueError, match="min_density"):
            BolaController(qm, min_density=0.0)
        with pytest.raises(ValueError, match="n_grid"):
            BolaController(qm, n_grid=1)
        with pytest.raises(ValueError, match="fetch_fraction"):
            ThroughputRuleController(qm, fetch_fraction=0.0)

    def test_bola_validation(self):
        qm = SRQualityModel()
        with pytest.raises(ValueError, match="buffer_target"):
            BolaController(qm, buffer_target=0.0)
        with pytest.raises(ValueError, match="gamma_p"):
            BolaController(qm, gamma_p=0.0)

    def test_throughput_validation(self):
        qm = SRQualityModel()
        with pytest.raises(ValueError, match="safety"):
            ThroughputRuleController(qm, safety=0.0)

    def test_hybrid_validation(self):
        qm = SRQualityModel()
        with pytest.raises(ValueError, match="gate_buffer"):
            HybridController(qm, gate_buffer=-1.0)

    def test_bola_v_reaches_target(self):
        """At buffer == buffer_target the densest candidate's score hits
        zero exactly — the calibration BOLA's V derivation promises."""
        bola = BolaController(SRQualityModel(), buffer_target=6.0)
        assert bola._vu[-1] == pytest.approx(6.0, abs=1e-12)
