"""CDN subsystem: degenerate parity, byte conservation, caches, encode, assignment."""

import pytest

from repro.metrics import QoEModel
from repro.net import SharedLink, lte_trace, stable_trace
from repro.streaming import (
    AbandonPolicy,
    CDNTopology,
    ContinuousMPC,
    DiurnalArrivals,
    EdgeChunkCache,
    EdgeNode,
    EncodeQueue,
    OriginServer,
    SessionConfig,
    SRQualityModel,
    SRResultCache,
    assign_sessions,
    simulate_fleet,
    uniform_cdn,
)
from repro.streaming.cdn import wait_percentile

from .helpers import FixedDensity, spec, sr_lat


def degenerate_topology(trace, *, policy="fair"):
    """One edge, unconstrained backhaul, caching and encode disabled.

    The backhaul trace shares the access trace's loop period (so every
    boundary it contributes already exists on the access grid) at a rate
    so high the access share is always the path minimum, with zero RTT —
    the configuration under which a two-hop CDN must be *bit-exact* with
    the bare single-link fleet.
    """
    backhaul = stable_trace(1e6, duration=trace.duration, rtt=0.0)
    edge = EdgeNode(
        name="edge-0",
        backhaul=SharedLink(backhaul, policy=policy),
        access=SharedLink(trace, policy=policy),
        cache=EdgeChunkCache(capacity_bytes=0),
    )
    origin = OriginServer(n_encode_workers=1, encode_seconds=0.0)
    return CDNTopology(edges=(edge,), origin=origin, assignment="static")


class TestDegenerateParity:
    """A one-edge CDN on an unconstrained backhaul == the single-link fleet."""

    def assert_identical(self, a, b):
        assert len(a.sessions) == len(b.sessions)
        for ra, rb in zip(a.sessions, b.sessions):
            assert ra.qoe == rb.qoe
            assert ra.total_bytes == rb.total_bytes
            assert ra.stall_seconds == rb.stall_seconds
            assert ra.startup_delay == rb.startup_delay
            assert ra.decisions == rb.decisions
            assert ra.abandoned == rb.abandoned
            for ca, cb in zip(ra.records, rb.records):
                assert ca.quality == cb.quality
                assert ca.stall == cb.stall
                assert ca.bytes_downloaded == cb.bytes_downloaded

    def make_sessions(self):
        from repro.streaming import FleetSession

        qm = SRQualityModel()
        lat = sr_lat()
        ctrl = ContinuousMPC(qm, QoEModel(), lat, n_grid=8, horizon=2)
        return [
            FleetSession(
                spec=spec(8, name=f"v{i % 2}"),
                controller=ctrl,
                sr_latency=lat,
                quality_model=qm,
                join_time=1.5 * i,
                churn=AbandonPolicy(max_total_stall=20.0),
            )
            for i in range(5)
        ]

    def test_mpc_fleet_on_lte(self):
        trace = lte_trace(60, 18, seed=9)
        flat = simulate_fleet(
            self.make_sessions(), trace, sr_cache=SRResultCache()
        )
        cdn = simulate_fleet(
            self.make_sessions(),
            topology=degenerate_topology(trace),
            sr_cache=SRResultCache(),
        )
        self.assert_identical(flat, cdn)
        assert cdn.report.edge_hit_rate == 0.0
        assert cdn.report.origin_egress_bytes == cdn.report.total_bytes

    def test_unsorted_joins_with_shared_chunk_keys(self):
        """Parity must survive dispatch order != virtual-time order: the
        late joiner is listed *first*, and both sessions collide on every
        (video, chunk, density) key.  A disabled encoder used to record
        the late joiner's future request times as variant ready times,
        gating the t=0 session behind a phantom 60 s encode wait."""
        from repro.streaming import FleetSession

        trace = stable_trace(45.0)

        def sessions():
            return [
                FleetSession(spec=spec(6), controller=FixedDensity(0.5),
                             join_time=60.0),
                FleetSession(spec=spec(6), controller=FixedDensity(0.5)),
            ]

        flat = simulate_fleet(sessions(), trace)
        cdn = simulate_fleet(sessions(), topology=degenerate_topology(trace))
        self.assert_identical(flat, cdn)

    def test_startup_bytes_and_weighted_policy(self):
        from repro.streaming import FleetSession

        trace = stable_trace(45.0)
        cfg = SessionConfig(startup_bytes=2_000_000)

        def sessions():
            return [
                FleetSession(spec=spec(6), controller=FixedDensity(0.5),
                             config=cfg, weight=3.0),
                FleetSession(spec=spec(6), controller=FixedDensity(0.5),
                             config=cfg, join_time=2.0),
            ]

        flat = simulate_fleet(sessions(), trace, policy="weighted")
        cdn = simulate_fleet(
            sessions(),
            topology=degenerate_topology(trace, policy="weighted"),
        )
        self.assert_identical(flat, cdn)


class TestByteConservation:
    """origin egress + edge-cache hit bytes == bytes delivered to viewers."""

    def run_fleet(self, assignment, cache_bytes=1 << 32, n=24):
        from repro.streaming import FleetSession

        topo = uniform_cdn(
            3,
            access_mbps=120.0,
            backhaul_mbps=40.0,
            cache_bytes=cache_bytes,
            assignment=assignment,
            encode_seconds=0.02,
            n_encode_workers=2,
        )
        sessions = [
            FleetSession(
                spec=spec(6, name=f"v{i % 4}"),
                controller=FixedDensity(0.4),
                join_time=1.0 * i,
            )
            for i in range(n)
        ]
        return simulate_fleet(sessions, topology=topo), topo

    @pytest.mark.parametrize("assignment", ["static", "least-loaded", "popularity"])
    def test_conservation(self, assignment):
        """Every byte a viewer gets came over the backhaul once, from the
        edge cache, or by coalescing onto another viewer's fill."""
        result, topo = self.run_fleet(assignment)
        rep = result.report
        hit_bytes = sum(e.cache.hit_bytes for e in topo.edges)
        coalesced = sum(e.cache.coalesced_bytes for e in topo.edges)
        assert rep.coalesced_bytes == coalesced
        assert (
            rep.origin_egress_bytes + hit_bytes + coalesced == rep.total_bytes
        )
        # The backhaul carried exactly one transfer per fill, none for
        # coalesced requests.
        assert sum(e.cache.fills for e in topo.edges) + sum(
            e.cache.coalesced for e in topo.edges
        ) + sum(e.cache.hits for e in topo.edges) == sum(
            e.cache.hits + e.cache.misses for e in topo.edges
        )
        # Per-link fluid accounting agrees at bit granularity.
        backhaul_bits = sum(e.backhaul.delivered_bits for e in topo.edges)
        assert backhaul_bits == pytest.approx(8.0 * rep.origin_egress_bytes)
        access_bits = sum(e.access.delivered_bits for e in topo.edges)
        assert access_bits == pytest.approx(8.0 * rep.total_bytes)

    def test_caching_reduces_origin_egress(self):
        """Co-watching viewers turn origin egress into edge hits."""
        cold, _ = self.run_fleet("popularity", cache_bytes=0)
        warm, _ = self.run_fleet("popularity")
        assert warm.report.edge_hit_rate > 0.2
        assert cold.report.edge_hit_rate == 0.0
        assert (
            warm.report.origin_egress_bytes < cold.report.origin_egress_bytes
        )
        assert warm.report.total_bytes >= cold.report.total_bytes

    def test_late_joiner_hits_chunks_cached_before_its_join(self):
        """Cache lookups happen at request time, not at scheduler start:
        a viewer joining after a co-watcher finished must hit every
        chunk, including its first."""
        from repro.streaming import FleetSession

        topo = uniform_cdn(
            1, access_mbps=200.0, backhaul_mbps=100.0, cache_bytes=1 << 32
        )
        sessions = [
            FleetSession(spec=spec(8), controller=FixedDensity(0.5)),
            FleetSession(spec=spec(8), controller=FixedDensity(0.5),
                         join_time=60.0),
        ]
        simulate_fleet(sessions, topology=topo)
        cache = topo.edges[0].cache
        assert cache.misses == 8   # only the first viewer's pulls
        assert cache.hits == 8     # the late joiner hits everything

    def test_late_joiner_cannot_reserve_encode_workers_early(self):
        """Encode jobs are submitted in virtual-time order: a t=50 joiner
        must not occupy the single worker before a t~0 session's jobs."""
        from repro.streaming import FleetSession

        topo = uniform_cdn(
            1, access_mbps=200.0, backhaul_mbps=100.0, cache_bytes=0,
            n_encode_workers=1, encode_seconds=0.5,
        )
        sessions = [
            FleetSession(spec=spec(8, name="a"), controller=FixedDensity(0.5)),
            FleetSession(spec=spec(8, name="b"), controller=FixedDensity(0.5),
                         join_time=50.0),
        ]
        simulate_fleet(sessions, topology=topo)
        waits = topo.origin.queue.waits
        assert len(waits) == 16
        # Pre-fix, the late joiner's first job reserved the worker at
        # scheduler start and an early job waited ~49.25 virtual seconds.
        assert max(waits) < 1.0

    def test_deferred_release_does_not_reset_solo_flow_progress(self):
        """Enabling the cache only changes *bookkeeping* when no hit is
        possible: two viewers of distinct videos must see identical
        physics with caching on (deferred requests) and off (immediate).
        A deferred release used to land mid-flight and silently restart
        the in-flight solo transfer from its full byte count."""
        from repro.streaming import FleetSession

        def run(cache_bytes):
            topo = uniform_cdn(
                1, access_mbps=40.0, backhaul_mbps=20.0,
                cache_bytes=cache_bytes,
            )
            sessions = [
                FleetSession(spec=spec(8, name="a"),
                             controller=FixedDensity(0.8)),
                FleetSession(spec=spec(8, name="b"),
                             controller=FixedDensity(0.8), join_time=3.0),
            ]
            return simulate_fleet(sessions, topology=topo)

        off, on = run(0), run(1 << 32)
        assert on.report.edge_hit_rate == off.report.edge_hit_rate == 0.0
        for a, b in zip(off.sessions, on.sessions):
            assert a.total_bytes == b.total_bytes
            assert a.stall_seconds == pytest.approx(b.stall_seconds, rel=1e-9)
            assert a.qoe == pytest.approx(b.qoe, rel=1e-9)
        assert on.report.makespan == pytest.approx(
            off.report.makespan, rel=1e-9
        )

    def test_report_percentiles_and_assignment_surface(self):
        result, topo = self.run_fleet("least-loaded")
        rep = result.report
        assert len(rep.edge_hit_rates) == 3
        assert 0.0 <= rep.edge_hit_rate <= 1.0
        assert rep.encode_wait_p50 <= rep.encode_wait_p95
        assert sorted(set(result.assignment)) == [0, 1, 2]
        assert result.topology is topo


class TestRequestCoalescing:
    """Concurrent same-chunk misses collapse onto one backhaul fill."""

    def co_watch_fleet(self, n=6, cache_bytes=1 << 32, join_spacing=0.0):
        from repro.streaming import FleetSession

        topo = uniform_cdn(
            1, access_mbps=120.0, backhaul_mbps=30.0, cache_bytes=cache_bytes
        )
        sessions = [
            FleetSession(
                spec=spec(8),
                controller=FixedDensity(0.5),
                join_time=join_spacing * i,
            )
            for i in range(n)
        ]
        return simulate_fleet(sessions, topology=topo), topo

    def test_concurrent_misses_one_origin_fill(self):
        """Six viewers requesting the same cold chunks at the same instant
        open exactly one backhaul transfer per chunk variant."""
        result, topo = self.co_watch_fleet(n=6)
        cache = topo.edges[0].cache
        rep = result.report
        assert cache.fills == 8          # one per chunk, ever
        assert cache.misses == cache.fills + cache.coalesced
        assert cache.coalesced >= 5      # the five t=0 co-requesters
        assert rep.coalesced_fills == cache.coalesced
        # Origin egress is one copy of each chunk; everyone else's bytes
        # came from coalescing or later cache hits.
        assert rep.origin_egress_bytes * 6 == rep.total_bytes
        backhaul_bits = topo.edges[0].backhaul.delivered_bits
        assert backhaul_bits == pytest.approx(8.0 * rep.origin_egress_bytes)

    def test_coalescing_never_changes_delivered_bytes(self):
        """Collapsing fills changes *who pulls*, not what viewers get."""
        with_coalescing, _ = self.co_watch_fleet(n=5, join_spacing=0.3)
        without, _ = self.co_watch_fleet(n=5, cache_bytes=0, join_spacing=0.3)
        assert [s.total_bytes for s in with_coalescing.sessions] == [
            s.total_bytes for s in without.sessions
        ]
        rep = with_coalescing.report
        assert rep.total_bytes == without.report.total_bytes
        # Coalescing + hits is exactly the origin traffic it saved.
        assert rep.origin_egress_bytes + rep.coalesced_bytes <= rep.total_bytes
        assert rep.origin_egress_bytes < without.report.origin_egress_bytes

    def test_coalesced_waiter_gated_on_fill_completion(self):
        """A viewer that coalesces mid-fill cannot finish the chunk
        before the fill itself lands."""
        from repro.streaming import FleetSession

        topo = uniform_cdn(
            1, access_mbps=200.0, backhaul_mbps=10.0, cache_bytes=1 << 32
        )
        sessions = [
            FleetSession(spec=spec(4), controller=FixedDensity(0.8)),
            FleetSession(
                spec=spec(4), controller=FixedDensity(0.8), join_time=0.05
            ),
        ]
        simulate_fleet(sessions, topology=topo)
        cache = topo.edges[0].cache
        assert cache.coalesced >= 1
        assert cache.fills + cache.coalesced + cache.hits == (
            cache.hits + cache.misses
        )

    def test_zero_capacity_cache_disables_coalescing(self):
        _, topo = self.co_watch_fleet(n=4, cache_bytes=0)
        cache = topo.edges[0].cache
        assert cache.fills == 0 and cache.coalesced == 0
        assert cache.misses == 32        # every request pulls its own copy

    def test_fill_tracking_api(self):
        cache = EdgeChunkCache(capacity_bytes=1000)
        key = ("v", 0, 0.5)
        assert not cache.fill_in_flight(key)
        cache.begin_fill(key)
        assert cache.fill_in_flight(key)
        cache.attach(key, 100)
        assert cache.coalesced == 1 and cache.coalesced_bytes == 100
        cache.insert(key, 100, ready=4.0)
        assert not cache.fill_in_flight(key)
        assert cache.fills == 1
        with pytest.raises(ValueError, match="no fill in flight"):
            cache.attach(("v", 1, 0.5), 50)


class TestEdgeChunkCache:
    def test_hit_requires_resident_fill(self):
        cache = EdgeChunkCache(capacity_bytes=1000)
        key = ("v", 0, 0.5)
        assert not cache.lookup(key, 100, at_time=0.0)   # cold
        cache.insert(key, 100, ready=5.0)
        assert not cache.lookup(key, 100, at_time=4.0)   # still filling
        assert cache.lookup(key, 100, at_time=5.0)       # resident
        assert cache.hits == 1 and cache.misses == 2
        assert cache.hit_bytes == 100 and cache.miss_bytes == 200

    def test_lru_eviction_by_bytes(self):
        cache = EdgeChunkCache(capacity_bytes=250)
        cache.insert(("v", 0, 0.5), 100, ready=0.0)
        cache.insert(("v", 1, 0.5), 100, ready=0.0)
        assert cache.lookup(("v", 0, 0.5), 100, at_time=1.0)  # 0 now MRU
        cache.insert(("v", 2, 0.5), 100, ready=1.0)           # evicts 1
        assert cache.evictions == 1
        assert cache.lookup(("v", 0, 0.5), 100, at_time=2.0)
        assert not cache.lookup(("v", 1, 0.5), 100, at_time=2.0)
        assert cache.used_bytes == 200

    def test_oversized_variant_not_admitted(self):
        cache = EdgeChunkCache(capacity_bytes=50)
        cache.insert(("v", 0, 1.0), 100, ready=0.0)
        assert len(cache) == 0
        assert not cache.lookup(("v", 0, 1.0), 100, at_time=1.0)

    def test_concurrent_fills_keep_earliest(self):
        cache = EdgeChunkCache(capacity_bytes=1000)
        cache.insert(("v", 0, 0.5), 100, ready=8.0)
        cache.insert(("v", 0, 0.5), 100, ready=6.0)   # faster copy wins
        cache.insert(("v", 0, 0.5), 100, ready=9.0)   # slower copy ignored
        assert cache.lookup(("v", 0, 0.5), 100, at_time=6.5)
        assert cache.used_bytes == 100

    def test_zero_capacity_disables(self):
        cache = EdgeChunkCache(capacity_bytes=0)
        cache.insert(("v", 0, 0.5), 10, ready=0.0)
        assert not cache.lookup(("v", 0, 0.5), 10, at_time=99.0)
        with pytest.raises(ValueError):
            EdgeChunkCache(capacity_bytes=-1)

    def test_abort_fill_clears_the_inflight_marker(self):
        cache = EdgeChunkCache(capacity_bytes=1000)
        cache.begin_fill(("v", 0, 0.5))
        cache.abort_fill(("v", 0, 0.5))
        assert cache.aborted_fills == 1
        with pytest.raises(ValueError, match="no fill in flight"):
            cache.attach(("v", 0, 0.5), 100)
        cache.abort_fill(("v", 9, 0.5))  # nothing in flight: no-op
        assert cache.aborted_fills == 1

    def test_drop_all_cold_restarts_but_keeps_history(self):
        cache = EdgeChunkCache(capacity_bytes=1000)
        cache.insert(("v", 0, 0.5), 100, ready=0.0)
        assert cache.lookup(("v", 0, 0.5), 100, at_time=1.0)
        cache.begin_fill(("v", 1, 0.5))
        cache.drop_all()
        assert len(cache) == 0 and cache.used_bytes == 0
        assert cache.aborted_fills == 1  # the pending fill never lands
        assert cache.hits == 1 and cache.fills == 1  # history survives
        assert not cache.lookup(("v", 0, 0.5), 100, at_time=2.0)

    def test_reset_restores_constructed_state(self):
        cache = EdgeChunkCache(capacity_bytes=1000)
        cache.insert(("v", 0, 0.5), 100, ready=0.0)
        cache.lookup(("v", 0, 0.5), 100, at_time=1.0)
        cache.lookup(("v", 1, 0.5), 100, at_time=1.0)
        cache.begin_fill(("v", 1, 0.5))
        cache.reset()
        assert len(cache) == 0 and cache.used_bytes == 0
        assert cache.hits == 0 and cache.misses == 0
        assert cache.fills == 0 and cache.aborted_fills == 0
        assert cache.hit_rate == 0.0


class TestEncodeQueue:
    def test_workers_bound_concurrency(self):
        q = EncodeQueue(n_workers=2)
        assert q.submit(0.0, 1.0) == 1.0
        assert q.submit(0.0, 1.0) == 1.0   # second worker
        assert q.submit(0.0, 1.0) == 2.0   # queues behind the first
        assert q.waits == [0.0, 0.0, 1.0]
        assert q.wait_percentile(0.0) == 0.0
        assert q.wait_percentile(100.0) == 1.0

    def test_zero_cost_bypasses_pool(self):
        q = EncodeQueue(n_workers=1)
        q.submit(0.0, 2.0)
        assert q.submit(1.0, 0.0) == 1.0   # no wait, no job recorded
        assert q.n_jobs == 1

    def test_origin_encodes_each_variant_once(self):
        origin = OriginServer(n_encode_workers=1, encode_seconds=1.0)
        assert origin.variant_ready(("v", 0, 0.5), 0.0) == 1.0
        # Second requester waits for the in-flight encode, no new job.
        assert origin.variant_ready(("v", 0, 0.5), 0.5) == 1.0
        # Long after: variant exists, served immediately.
        assert origin.variant_ready(("v", 0, 0.5), 10.0) == 10.0
        assert origin.n_encoded == 1
        assert origin.queue.n_jobs == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            EncodeQueue(n_workers=0)
        with pytest.raises(ValueError):
            EncodeQueue(1).submit(0.0, -1.0)
        with pytest.raises(ValueError):
            EncodeQueue(1).wait_percentile(101.0)
        with pytest.raises(ValueError):
            OriginServer(encode_seconds=-0.1)
        with pytest.raises(ValueError):
            EncodeQueue(2).resize(0)

    def test_wait_percentile_half_ranks_round_up(self):
        # Regression: round() is half-to-even, so the p50 of an even
        # sample flipped between the lower and upper neighbor depending
        # on the sample size's parity.  Nearest-rank now rounds half up.
        assert wait_percentile([0.0, 10.0], 50.0) == 10.0
        assert wait_percentile([0.0, 10.0, 20.0, 30.0], 50.0) == 20.0
        assert wait_percentile(
            [0.0, 10.0, 20.0, 30.0, 40.0, 50.0], 50.0
        ) == 30.0
        assert wait_percentile([0.0, 10.0, 20.0], 50.0) == 10.0  # exact rank
        assert wait_percentile([], 95.0) == 0.0

    def test_queue_percentile_shares_the_module_formula(self):
        q = EncodeQueue(n_workers=1)
        for _ in range(4):
            q.submit(0.0, 1.0)
        for pct in (0.0, 50.0, 95.0, 100.0):
            assert q.wait_percentile(pct) == wait_percentile(q.waits, pct)

    def test_resize_grows_and_shrinks_the_pool(self):
        q = EncodeQueue(n_workers=1)
        assert q.submit(0.0, 1.0) == 1.0
        assert q.submit(0.0, 1.0) == 2.0   # queued behind worker 0
        q.resize(2, at_time=0.5)
        assert q.submit(0.5, 1.0) == 1.5   # the new worker starts at 0.5
        q.resize(1, at_time=0.5)
        # Shrinking retires the idlest worker: the survivor is busy
        # until t=2, so the next job queues behind it.
        assert q.submit(0.5, 1.0) == 3.0

    def test_reset_restores_original_pool(self):
        q = EncodeQueue(n_workers=2)
        q.submit(0.0, 5.0)
        q.resize(8)
        q.reset()
        assert q.n_workers == 2
        assert q.waits == []
        assert q.submit(0.0, 1.0) == 1.0   # all workers idle again


class TestTopologyReset:
    def test_reset_restores_serving_state(self):
        topo = uniform_cdn(
            2, access_mbps=50.0, backhaul_mbps=40.0,
            n_encode_workers=2, encode_seconds=0.1,
        )
        edge = topo.edges[0]
        edge.sr_cache = SRResultCache(capacity=8)
        edge.cache.insert(("v", 0, 0.5), 100, ready=0.0)
        edge.cache.lookup(("v", 0, 0.5), 100, at_time=1.0)
        edge.sr_cache.acquire(("v", 0, 0.5, 2), at_time=0.0, cost=0.1)
        edge.backhaul.delivered_bits = 1e6
        edge.access.delivered_bits = 1e6
        topo.origin.variant_ready(("v", 0, 0.5), 0.0)
        topo.reset()
        assert len(edge.cache) == 0 and edge.cache.hits == 0
        assert edge.sr_cache is not None  # stays installed, but cold
        assert edge.sr_cache.misses == 0
        assert edge.backhaul.delivered_bits == 0.0
        assert edge.access.delivered_bits == 0.0
        assert topo.origin.n_encoded == 0
        assert topo.origin.queue.waits == []


class TestAssignment:
    def sessions(self, n=12, videos=3):
        from repro.streaming import FleetSession

        return [
            FleetSession(
                spec=spec(4, name=f"v{i % videos}"),
                controller=FixedDensity(0.5),
                join_time=float(i),
            )
            for i in range(n)
        ]

    def test_static_is_deterministic_and_content_blind(self):
        sessions = self.sessions()
        a = assign_sessions(sessions, 4, "static")
        assert a == assign_sessions(sessions, 4, "static")
        assert all(0 <= e < 4 for e in a)

    def test_least_loaded_balances(self):
        counts = [0, 0, 0]
        for e in assign_sessions(self.sessions(12), 3, "least-loaded"):
            counts[e] += 1
        assert counts == [4, 4, 4]

    def test_popularity_groups_by_video(self):
        sessions = self.sessions(12, videos=3)
        a = assign_sessions(sessions, 4, "popularity")
        by_video = {}
        for s, e in zip(sessions, a):
            by_video.setdefault(s.spec.name, set()).add(e)
        assert all(len(edges) == 1 for edges in by_video.values())

    def test_validation(self):
        with pytest.raises(ValueError, match="assignment"):
            assign_sessions(self.sessions(2), 2, "random")
        with pytest.raises(ValueError, match="n_edges"):
            assign_sessions(self.sessions(2), 0, "static")
        with pytest.raises(ValueError, match="assignment"):
            uniform_cdn(2, access_mbps=10.0, backhaul_mbps=5.0,
                        assignment="nope")
        with pytest.raises(ValueError, match="at least one edge"):
            CDNTopology(edges=())

    def test_trace_and_topology_are_exclusive(self):
        sessions = self.sessions(1)
        topo = uniform_cdn(1, access_mbps=10.0, backhaul_mbps=5.0)
        with pytest.raises(ValueError, match="exactly one"):
            simulate_fleet(sessions)
        with pytest.raises(ValueError, match="exactly one"):
            simulate_fleet(sessions, stable_trace(10.0), topology=topo)

    def test_policy_arg_rejected_with_topology(self):
        """Link policies live on the topology; a stray policy= must not
        be silently ignored."""
        topo = uniform_cdn(1, access_mbps=10.0, backhaul_mbps=5.0)
        with pytest.raises(ValueError, match="topology's links"):
            simulate_fleet(self.sessions(1), policy="weighted", topology=topo)


class TestDiurnalArrivals:
    def test_deterministic_and_in_window(self):
        arr = DiurnalArrivals(mean_rate_hz=2.0, day_seconds=100.0, seed=4)
        a, b = arr.times(100.0), arr.times(100.0)
        assert (a == b).all()
        assert len(a) > 0
        assert (a > 0).all() and (a <= 100.0).all()

    def test_prime_time_concentration(self):
        """With the default curve, the evening half out-draws the night half."""
        arr = DiurnalArrivals(mean_rate_hz=5.0, day_seconds=200.0, seed=0)
        t = arr.times(200.0)
        night = ((t / 200.0 * 24.0) < 6.0).sum()       # 00–06
        evening = ((t / 200.0 * 24.0) >= 18.0).sum()   # 18–24
        assert evening > 2 * night

    def test_rate_follows_curve(self):
        curve = (0.5,) * 12 + (1.5,) * 12
        arr = DiurnalArrivals(
            mean_rate_hz=1.0, curve=curve, day_seconds=24.0
        )
        assert arr.rate_at(0.0) == 0.5
        assert arr.rate_at(12.0) == 1.5
        assert arr.rate_at(24.0) == 0.5    # wraps
        assert arr.rate_at(36.0) == 1.5

    def test_phase_shifts_the_curve(self):
        arr = DiurnalArrivals(
            mean_rate_hz=1.0, day_seconds=24.0, phase_hours=20.0
        )
        mean = sum(arr.curve) / 24.0
        assert arr.rate_at(0.0) == arr.curve[20] / mean

    def test_negative_phase_float_modulo_edge(self):
        """(-1e-18) % 24.0 == 24.0 exactly; the hour index must wrap."""
        arr = DiurnalArrivals(
            mean_rate_hz=1.0, day_seconds=24.0, phase_hours=-1e-18
        )
        mean = sum(arr.curve) / 24.0
        assert arr.rate_at(0.0) == arr.curve[0] / mean
        assert len(arr.times(24.0)) > 0

    def test_curve_normalized_to_mean_rate(self):
        """mean_rate_hz is the daily mean whatever the factors' scale:
        scaling the whole curve leaves the rate function unchanged."""
        curve = DiurnalArrivals(mean_rate_hz=2.0, day_seconds=24.0)
        scaled = DiurnalArrivals(
            mean_rate_hz=2.0,
            curve=tuple(10.0 * c for c in curve.curve),
            day_seconds=24.0,
        )
        for t in (0.0, 6.0, 12.0, 20.5):
            assert scaled.rate_at(t) == pytest.approx(curve.rate_at(t))
        # The time-average of rate_at over the day is mean_rate_hz.
        hours = [curve.rate_at(h + 0.5) for h in range(24)]
        assert sum(hours) / 24.0 == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="mean_rate_hz"):
            DiurnalArrivals(mean_rate_hz=0.0)
        with pytest.raises(ValueError, match="24 hourly"):
            DiurnalArrivals(mean_rate_hz=1.0, curve=(1.0, 2.0))
        with pytest.raises(ValueError, match="non-negative"):
            DiurnalArrivals(mean_rate_hz=1.0, curve=(-1.0,) + (1.0,) * 23)
        with pytest.raises(ValueError, match="day_seconds"):
            DiurnalArrivals(mean_rate_hz=1.0, day_seconds=0.0)
        with pytest.raises(ValueError, match="window"):
            DiurnalArrivals(mean_rate_hz=1.0).times(0.0)
        with pytest.raises(ValueError, match="days"):
            DiurnalArrivals(mean_rate_hz=1.0, days=0.0)
        bad = DiurnalArrivals(
            mean_rate_hz=1.0, day_seconds=10.0, autoscale=lambda day: -1.0
        )
        with pytest.raises(ValueError, match="non-negative multiplier"):
            bad.rate_at(0.0)


class TestMultiDayDiurnal:
    """days= spans several virtual days; autoscale shapes them."""

    def test_days_sets_the_default_window(self):
        arr = DiurnalArrivals(mean_rate_hz=2.0, day_seconds=60.0, days=3.0, seed=1)
        assert arr.span_seconds == 180.0
        t = arr.times()
        assert t.max() > 60.0          # arrivals continue past day one
        assert t.max() <= 180.0
        assert (arr.times() == t).all()  # still deterministic

    def test_multiday_wraps_the_daily_curve(self):
        """Day 2 repeats day 1's shape: same curve hour, same rate."""
        arr = DiurnalArrivals(mean_rate_hz=1.0, day_seconds=24.0, days=2.0)
        for hour in (0.5, 6.5, 20.5):
            assert arr.rate_at(24.0 + hour) == pytest.approx(arr.rate_at(hour))

    def test_autoscale_scales_each_day(self):
        arr = DiurnalArrivals(
            mean_rate_hz=1.0,
            day_seconds=24.0,
            days=3.0,
            autoscale=lambda day: (1.0, 2.0, 0.0)[day],
        )
        base = DiurnalArrivals(mean_rate_hz=1.0, day_seconds=24.0)
        assert arr.rate_at(3.0) == pytest.approx(base.rate_at(3.0))
        assert arr.rate_at(27.0) == pytest.approx(2.0 * base.rate_at(3.0))
        assert arr.rate_at(51.0) == 0.0

    def test_autoscale_growth_shifts_arrival_mass(self):
        """Day-over-day growth concentrates arrivals in later days."""
        grown = DiurnalArrivals(
            mean_rate_hz=4.0, day_seconds=50.0, days=2.0, seed=3,
            autoscale=lambda day: float(1 + 9 * day),
        )
        t = grown.times()
        assert len(t) > 0
        day2 = (t > 50.0).sum()
        assert day2 > 3 * (t <= 50.0).sum()

    def test_all_zero_autoscale_yields_no_arrivals(self):
        arr = DiurnalArrivals(
            mean_rate_hz=1.0, day_seconds=10.0, days=2.0,
            autoscale=lambda day: 0.0,
        )
        assert len(arr.times()) == 0

    def test_day_boundary_candidate_thinned_against_its_own_day(
        self, monkeypatch
    ):
        """Regression: a candidate landing exactly on its day's end was
        thinned against the NEXT day's autoscale — ``int(t // day_seconds)``
        rolls over right at the boundary — so a dark following day
        silently swallowed the boundary arrival.
        """

        class ScriptedRng:
            def __init__(self, seed):
                # First candidate lands exactly on day 0's end; the next
                # draw overshoots every window.
                self._gaps = iter([10.0, 1e12])

            def exponential(self, scale):
                return next(self._gaps)

            def random(self):
                return 0.0  # accept whenever the thinned rate is positive

        monkeypatch.setattr(
            "repro.streaming.population.np.random.default_rng", ScriptedRng
        )
        arr = DiurnalArrivals(
            mean_rate_hz=1.0, curve=(1.0,) * 24, day_seconds=10.0, days=2.0,
            autoscale=lambda day: (1.0, 0.0)[day],
        )
        assert arr.times().tolist() == [10.0]

    def test_autoscale_none_is_unchanged_sampling(self):
        """Adding the hook without using it replays the original stream."""
        plain = DiurnalArrivals(mean_rate_hz=2.0, day_seconds=100.0, seed=4)
        spanned = DiurnalArrivals(
            mean_rate_hz=2.0, day_seconds=100.0, seed=4, days=1.0
        )
        assert (plain.times(100.0) == spanned.times()).all()
