"""Wire-format encoder tests."""

import numpy as np
import pytest

from repro.pointcloud import PointCloud
from repro.streaming import decode_chunk, decode_frame, encode_chunk, encode_frame


class TestFrameCodec:
    def test_roundtrip_full_density(self, random_cloud):
        payload = encode_frame(random_cloud, 1.0, seed=0)
        back = decode_frame(payload)
        assert len(back) == len(random_cloud)
        assert back.has_colors

    def test_downsampling_applied(self, random_cloud):
        payload = encode_frame(random_cloud, 0.25, seed=0)
        back = decode_frame(payload)
        assert len(back) == round(0.25 * len(random_cloud))

    def test_wire_size(self, random_cloud):
        payload = encode_frame(random_cloud, 0.5, seed=0)
        n = round(0.5 * len(random_cloud))
        assert len(payload) == 4 + n * 12 + n * 3

    def test_colorless_flag(self):
        pc = PointCloud(np.random.default_rng(0).uniform(0, 1, (20, 3)))
        back = decode_frame(encode_frame(pc, 1.0))
        assert not back.has_colors

    def test_positions_float32_precision(self, random_cloud):
        back = decode_frame(encode_frame(random_cloud, 1.0, seed=0))
        # Decoded points must all exist in the source (float32-rounded).
        src32 = random_cloud.positions.astype(np.float32)
        back32 = back.positions.astype(np.float32)
        src_set = {tuple(p) for p in src32}
        assert all(tuple(p) in src_set for p in back32)

    def test_invalid_density(self, random_cloud):
        with pytest.raises(ValueError):
            encode_frame(random_cloud, 0.0)

    def test_truncated_payload(self, random_cloud):
        payload = encode_frame(random_cloud, 1.0)
        with pytest.raises(ValueError, match="truncated"):
            decode_frame(payload[:20])
        with pytest.raises(ValueError, match="header"):
            decode_frame(b"\x01")


class TestChunkCodec:
    def test_roundtrip(self, random_cloud):
        frames = [random_cloud, random_cloud.translate([1, 0, 0])]
        payload = encode_chunk(frames, 0.5, seed=1)
        back = decode_chunk(payload)
        assert len(back) == 2
        for f in back:
            assert len(f) == round(0.5 * len(random_cloud))

    def test_empty_chunk(self):
        assert decode_chunk(encode_chunk([], 1.0)) == []

    def test_deterministic(self, random_cloud):
        a = encode_chunk([random_cloud], 0.5, seed=7)
        b = encode_chunk([random_cloud], 0.5, seed=7)
        assert a == b

    def test_truncated(self, random_cloud):
        payload = encode_chunk([random_cloud], 1.0)
        with pytest.raises(ValueError):
            decode_chunk(payload[:10])
