"""Telemetry: tracer/metrics/profiler units, exporters, the disabled-
tracer parity grid, and the chaos-trace conservation law."""

import json

import pytest

from repro.obs import Telemetry
from repro.obs.events import (
    EV_CHUNK_COMPLETE,
    EV_CONTROL_TICK,
    EV_SESSION_RESTEER,
    EV_SESSION_START,
    TraceEvent,
    Tracer,
    merge_events,
    ops_from_events,
)
from repro.obs.export import (
    chrome_trace,
    prometheus_text,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import MetricsRegistry, TimeSeries
from repro.obs.profiler import NULL_PROFILER, PhaseProfiler
from repro.streaming import (
    BackhaulDegradation,
    ControlPlane,
    ControlPolicy,
    EdgeOutage,
    FaultSchedule,
    FleetSession,
    simulate_fleet,
    uniform_cdn,
)

from .helpers import FixedDensity, spec, sr_lat


def fleet(n=8, seconds=20, stagger=0.4):
    return [
        FleetSession(
            spec=spec(seconds=seconds, name="vid"),
            controller=FixedDensity(0.4),
            sr_latency=sr_lat(),
            join_time=stagger * i,
        )
        for i in range(n)
    ]


def cdn(n_edges=3, **kw):
    kw.setdefault("access_mbps", 50.0)
    kw.setdefault("backhaul_mbps", 40.0)
    kw.setdefault("n_encode_workers", 4)
    kw.setdefault("encode_seconds", 0.02)
    return uniform_cdn(n_edges, **kw)


def chaos_kwargs(telemetry=None):
    """One edge outage plus the control plane — every event family fires."""
    return dict(
        topology=cdn(3),
        faults=FaultSchedule(
            (EdgeOutage(edge=0, start=2.0, duration=4.0),)
        ),
        controller=ControlPlane(ControlPolicy(interval=1.0)),
        telemetry=telemetry,
    )


class TestTracer:
    def test_emit_orders_and_counts(self):
        tr = Tracer()
        tr.emit(1.0, "a.x", session=0)
        tr.emit(0.5, "a.y", session=1, nbytes=10)
        tr.emit(1.0, "a.x")
        assert len(tr) == 3
        assert tr.count("a.x") == 2
        assert tr.counts() == {"a.x": 2, "a.y": 1}
        # seq increases in emission order regardless of timestamps
        assert [ev.seq for ev in tr] == [1, 2, 3]

    def test_to_dict_flattens_data(self):
        tr = Tracer(shard=2)
        tr.emit(3.5, "chunk.fetch", session=7, edge=1, nbytes=100)
        d = tr.events[0].to_dict()
        assert d == {
            "t": 3.5, "kind": "chunk.fetch", "session": 7, "shard": 2,
            "edge": 1, "nbytes": 100,
        }

    def test_merge_is_total_and_deterministic(self):
        a = Tracer(shard=0)
        b = Tracer(shard=1)
        for t in (1.0, 2.0, 2.0):
            a.emit(t, "a")
        for t in (0.5, 2.0):
            b.emit(t, "b")
        merged = merge_events([b.events, a.events])
        key = [(ev.t, ev.shard, ev.seq) for ev in merged]
        assert key == sorted(key)
        # ties at t=2.0 break by shard index, then seq
        assert [ev.kind for ev in merged] == ["b", "a", "a", "a", "b"]
        # absorbing the same streams yields the same order
        sink = Tracer()
        sink.absorb([a.events, b.events])
        assert [(e.t, e.shard, e.seq) for e in sink] == key

    def test_ops_fold_empty_stream(self):
        assert ops_from_events([]) == {
            "sessions_resteered": 0,
            "faults_injected": 0,
            "control_ticks": 0,
            "encode_pool_resizes": 0,
            "requests_timed_out": 0,
        }


class TestMetrics:
    def test_counter_only_goes_up(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError, match="Gauge"):
            c.inc(-1.0)

    def test_gauge_and_get_or_create_identity(self):
        reg = MetricsRegistry()
        g = reg.gauge("y")
        g.set(4)
        assert reg.gauge("y") is g
        assert reg.gauge("y").value == 4.0

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("w", bounds=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(55.55)
        # cumulative le semantics: every bucket counts all values <= bound
        assert h.cumulative() == [1, 2, 3]
        with pytest.raises(ValueError, match="ascending"):
            reg.histogram("bad", bounds=(1.0, 0.1))

    def test_timeseries_ring_wraps(self):
        ts = TimeSeries("s", capacity=4)
        assert ts.last is None
        for i in range(6):
            ts.record(float(i), float(i * 10))
        assert len(ts) == 4
        assert ts.items() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0), (5.0, 50.0)]
        assert ts.last == (5.0, 50.0)


class TestProfiler:
    def test_nested_self_time(self):
        p = PhaseProfiler()
        with p.phase("outer"):
            with p.phase("inner"):
                sum(range(1000))
        assert p.counts == {"outer": 1, "inner": 1}
        assert p.totals["outer"] >= 0.0
        assert p.totals["inner"] >= 0.0
        # self-time accounting: the phases partition the total
        assert p.total_seconds == pytest.approx(
            p.totals["outer"] + p.totals["inner"]
        )

    def test_breakdown_and_report(self):
        p = PhaseProfiler()
        p.add("a", 3.0, calls=10)
        p.add("b", 1.0, calls=5)
        p.add("a", 1.0, calls=2)
        bd = p.breakdown()
        assert list(bd) == ["a", "b"]  # descending self-time
        assert bd["a"] == {"seconds": 4.0, "calls": 12, "pct": 80.0}
        rep = p.report()
        assert "a" in rep and "80.0%" in rep and "total" in rep

    def test_null_profiler_is_inert(self):
        span = NULL_PROFILER.phase("anything")
        with span:
            pass
        # every phase shares one stateless no-op span
        assert NULL_PROFILER.phase("other") is span

    def test_reentrant_phase_rejected_state_stays_sane(self):
        p = PhaseProfiler()
        ph = p.phase("x")
        with ph:
            pass
        with ph:
            pass
        assert p.counts["x"] == 2


class TestExporters:
    def make_tracer(self):
        tr = Tracer()
        tr.emit(0.0, EV_SESSION_START, session=0, edge=1)
        tr.emit(2.0, EV_CHUNK_COMPLETE, session=0, quality=1.5, elapsed=0.5)
        tr.emit(3.0, EV_CONTROL_TICK, health=0.9, workers=4)
        return tr

    def test_jsonl_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        n = write_jsonl(self.make_tracer(), str(path))
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert n == len(rows) == 3
        assert rows[0]["kind"] == EV_SESSION_START
        assert rows[1]["elapsed"] == 0.5

    def test_chrome_trace_shapes(self):
        doc = chrome_trace(self.make_tracer())
        events = doc["traceEvents"]
        by_name = {}
        for ev in events:
            by_name.setdefault(ev["name"], []).append(ev)
        # a chunk completion with elapsed becomes a duration slice
        (slice_,) = by_name[EV_CHUNK_COMPLETE]
        assert slice_["ph"] == "X"
        assert slice_["dur"] == pytest.approx(0.5e6)
        assert slice_["ts"] == pytest.approx(1.5e6)
        # session events ride the session's own track, fleet events tid 0
        (start,) = by_name[EV_SESSION_START]
        assert start["ph"] == "i" and start["tid"] == 1
        (tick,) = by_name[EV_CONTROL_TICK]
        assert tick["tid"] == 0
        assert any(ev["ph"] == "M" for ev in events)

    def test_chrome_trace_file(self, tmp_path):
        path = tmp_path / "trace.json"
        n = write_chrome_trace(self.make_tracer(), str(path))
        doc = json.loads(path.read_text())
        # metadata records don't count toward the reported event total
        assert n == 3
        assert len(doc["traceEvents"]) > n

    def test_prometheus_text(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("fleet.chunks").inc(7)
        reg.gauge("origin.encode_workers").set(4)
        h = reg.histogram("encode.wait", bounds=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        reg.timeseries("fleet.health").record(12.5, 0.75)
        text = prometheus_text(reg)
        assert "fleet_chunks 7" in text
        assert "origin_encode_workers 4" in text
        assert 'encode_wait_bucket{le="0.1"} 1' in text
        assert 'encode_wait_bucket{le="+Inf"} 2' in text
        assert "encode_wait_sum 5.05" in text
        assert "encode_wait_count 2" in text
        assert "fleet_health 0.75 12500" in text
        path = tmp_path / "metrics.txt"
        write_prometheus(reg, str(path))
        assert path.read_text() == text


class TestTelemetry:
    def test_layers_toggle_independently(self):
        full = Telemetry()
        assert full.tracer is not None
        assert full.metrics is not None
        assert full.profiler is not None
        off = Telemetry(trace=False, metrics=False, profile=False)
        assert off.tracer is None
        assert off.metrics is None
        assert off.profiler is None
        sharded = Telemetry(trace=True, metrics=False, shard=3)
        assert sharded.tracer.shard == 3


class TestTelemetryDisabledParity:
    """Oracle-parity instance 7: telemetry never perturbs a run.

    ``telemetry=None``, a fully-disabled ``Telemetry``, and every layer
    enabled must produce bit-identical reports — all emission sites are
    pure observation.
    """

    @pytest.mark.parametrize("session_engine", ["machine", "columnar"])
    def test_plain_cdn_run(self, session_engine):
        def run(telemetry):
            return simulate_fleet(
                fleet(n=6), topology=cdn(3), session_engine=session_engine,
                telemetry=telemetry,
            ).report

        base = run(None)
        assert run(Telemetry(trace=False, metrics=False, profile=False)) == base
        assert run(Telemetry()) == base

    @pytest.mark.parametrize("session_engine", ["machine", "columnar"])
    def test_faulted_controlled_run(self, session_engine):
        # The columnar engine rejects outages, so it gets the brownout.
        if session_engine == "machine":
            faults = FaultSchedule(
                (EdgeOutage(edge=0, start=2.0, duration=4.0),)
            )
        else:
            faults = FaultSchedule(
                (BackhaulDegradation(
                    edge=0, start=2.0, duration=4.0, factor=0.25,
                ),)
            )

        def run(telemetry):
            return simulate_fleet(
                fleet(n=8), topology=cdn(3), faults=faults,
                controller=ControlPlane(ControlPolicy(interval=1.0)),
                session_engine=session_engine, telemetry=telemetry,
            ).report

        base = run(None)
        assert run(Telemetry()) == base


class TestConservation:
    """The chaos acceptance law: report counters == the event-stream fold."""

    def fold_matches(self, rep, events):
        fold = ops_from_events(events)
        assert fold["sessions_resteered"] == rep.sessions_resteered
        assert fold["faults_injected"] == rep.faults_injected
        assert fold["control_ticks"] == rep.control_ticks
        assert fold["encode_pool_resizes"] == rep.encode_pool_resizes
        assert fold["requests_timed_out"] == rep.requests_timed_out

    def test_chaos_counters_reconstruct(self):
        tel = Telemetry()
        rep = simulate_fleet(fleet(n=10), **chaos_kwargs(tel)).report
        assert rep.sessions_resteered > 0  # the outage must hit someone
        assert rep.control_ticks > 0
        self.fold_matches(rep, tel.tracer)

    def test_chrome_trace_reconstructs(self, tmp_path):
        tel = Telemetry()
        rep = simulate_fleet(fleet(n=10), **chaos_kwargs(tel)).report
        path = tmp_path / "chaos.json"
        write_chrome_trace(tel.tracer, str(path))
        doc = json.loads(path.read_text())
        names = [
            ev["name"] for ev in doc["traceEvents"] if ev["ph"] != "M"
        ]
        assert names.count("session.resteer") == rep.sessions_resteered
        assert names.count("fault.outage") == rep.faults_injected
        assert names.count("control.tick") == rep.control_ticks
        assert names.count("control.resize") == rep.encode_pool_resizes
        assert names.count("outage.evacuate") == 1

    def test_fetches_balance_completes_and_retries(self):
        tel = Telemetry()
        simulate_fleet(fleet(n=10), **chaos_kwargs(tel))
        c = tel.tracer.counts()
        # every fetch either completes or was cancelled and re-issued
        assert c["chunk.fetch"] == c["chunk.complete"] + c.get("chunk.retry", 0)
        assert c["chunk.decision"] == c["chunk.complete"]
        assert c["session.start"] == 10
        assert (
            c.get("session.finish", 0) + c.get("session.abandon", 0) == 10
        )


class TestMetricsWiring:
    def test_series_sampled_on_control_cadence(self):
        tel = Telemetry()
        result = simulate_fleet(fleet(n=8), **chaos_kwargs(tel))
        rep = result.report
        series = tel.metrics.series
        assert len(series["fleet.active_sessions"]) == rep.control_ticks
        for e in range(3):
            assert len(series[f"edge.load.{e}"]) == rep.control_ticks
        # per-edge loads partition the active sessions at every sample
        loads = [series[f"edge.load.{e}"].items() for e in range(3)]
        for i, (t, active) in enumerate(
            series["fleet.active_sessions"].items()
        ):
            assert sum(loads[e][i][1] for e in range(3)) == active
            assert all(loads[e][i][0] == t for e in range(3))
        assert tel.metrics.gauge("origin.encode_workers").value == (
            result.topology.origin.queue.n_workers
        )

    def test_metrics_alone_sample_without_controller(self):
        tel = Telemetry(trace=False, profile=False)
        simulate_fleet(fleet(n=6), topology=cdn(3), telemetry=tel)
        assert len(tel.metrics.series["fleet.active_sessions"]) > 0
        assert len(tel.metrics.series["fleet.health"]) > 0
