"""Benchmark-trajectory post-processor: schema, floors, regression gate."""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

spec = importlib.util.spec_from_file_location(
    "bench_report", REPO_ROOT / "scripts" / "bench_report.py"
)
bench_report = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_report)

RAW_NAMES = (
    "test_bench_single_link_fleet",
    "test_bench_cdn_fleet",
    "test_bench_decide_batch",
    "test_bench_decide_batch_memoized",
    "test_bench_decide_single",
    "test_bench_scalar_reference",
)

#: the sharded pair scales with min_s but keeps a healthy 4x ratio, so
#: the parallel gate stays green unless a test tampers with it; the
#: columnar lane rides at half the baseline's wall time.
SHARDED_NAMES = {
    "test_bench_sharded_baseline": 1.0,
    "test_bench_sharded_fleet": 0.25,
    "test_bench_fleet_columnar": 0.5,
}


def raw_json(min_s=0.1, machine="x86_64", telemetry=True, bola=True, chaos=True):
    stats = {name: min_s for name in RAW_NAMES}
    stats.update(
        {name: min_s * f for name, f in SHARDED_NAMES.items()}
    )
    if telemetry:
        # Traced run at 5% over the untraced baseline — inside the 10%
        # budget.
        stats["test_bench_fleet_telemetry"] = min_s * 1.05
    if bola:
        # BOLA skips horizon planning, so its columnar run is faster
        # than the MPC columnar lane (0.5x min_s above).
        stats["test_bench_fleet_bola_columnar"] = min_s * 0.4
    if chaos:
        # Armed-but-idle retry layer at 2% over the plain run — inside
        # its 10% budget.
        stats["test_bench_fleet_chaos_armed"] = min_s * 1.02
    return {
        "machine_info": {
            "machine": machine,
            "processor": machine,
            "python_version": "3.11.7",
        },
        "benchmarks": [
            {"name": name, "stats": {"min": s, "mean": s * 1.1, "rounds": 3}}
            for name, s in stats.items()
        ],
    }


class TestBuildReports:
    def test_schema_and_throughput(self):
        reports = bench_report.build_reports(raw_json(min_s=0.1))
        assert set(reports) == {"BENCH_fleet.json", "BENCH_mpc.json"}
        fleet = reports["BENCH_fleet.json"]
        assert fleet["schema"] == bench_report.SCHEMA_VERSION
        assert fleet["suite"] == "fleet"
        single = fleet["benchmarks"]["test_bench_single_link_fleet"]
        # content-s per wall-s is derived from the module's workload size.
        assert single["content_s_per_wall_s"] == pytest.approx(
            fleet["content_seconds"] / 0.1
        )
        mpc = reports["BENCH_mpc.json"]
        assert set(mpc["benchmarks"]) == {
            "test_bench_decide_batch",
            "test_bench_decide_batch_memoized",
            "test_bench_decide_single",
            "test_bench_scalar_reference",
        }
        assert mpc["floors"]["decide_batch_speedup_x"] > 1.0

    def test_floors_mirror_benchmark_modules(self):
        """The committed floors are imported from, not duplicated against,
        the benchmark modules."""
        reports = bench_report.build_reports(raw_json())
        fleet_mod = bench_report._load_module(
            REPO_ROOT / "benchmarks" / "bench_fleet.py"
        )
        floors = reports["BENCH_fleet.json"]["floors"]
        assert floors["test_bench_single_link_fleet"] == fleet_mod.SINGLE_LINK_FLOOR
        assert floors["test_bench_cdn_fleet"] == fleet_mod.CDN_FLOOR
        assert floors["test_bench_sharded_fleet"] == fleet_mod.SHARD_FLOOR
        assert (
            floors["test_bench_sharded_baseline"]
            == fleet_mod.SHARD_BASELINE_FLOOR
        )
        assert floors["test_bench_fleet_columnar"] == fleet_mod.COLUMNAR_FLOOR
        assert fleet_mod.COLUMNAR_FLOOR == (
            fleet_mod.COLUMNAR_SPEEDUP_FLOOR * fleet_mod.SHARD_BASELINE_FLOOR
        )

    def test_fleet_sharded_row(self):
        """The parallel path has its own trajectory row: throughput for
        both worker counts plus the end-to-end scaling ratio."""
        reports = bench_report.build_reports(raw_json(min_s=0.1))
        fleet = reports["BENCH_fleet.json"]
        sharded = fleet["fleet_sharded"]
        assert sharded["speedup_x"] == pytest.approx(4.0)
        assert sharded["workers"] >= 2
        assert sharded["speedup_floor_x"] >= 2.0
        assert sharded["cpu_count"] >= 1
        par = fleet["benchmarks"]["test_bench_sharded_fleet"]
        assert par["content_s_per_wall_s"] == pytest.approx(
            fleet["content_seconds_sharded"] / 0.025
        )

    def test_fleet_columnar_row(self):
        """The columnar engine's trajectory row carries the throughput
        ratio against the committed machine baseline floor."""
        reports = bench_report.build_reports(raw_json(min_s=0.1))
        fleet = reports["BENCH_fleet.json"]
        columnar = fleet["fleet_columnar"]
        rate = fleet["content_seconds_sharded"] / 0.05
        assert columnar["workers"] == 1
        assert columnar["ratio_floor_x"] >= 2.0
        assert columnar["ratio_vs_baseline_floor_x"] == pytest.approx(
            rate / columnar["baseline_floor"]
        )
        bench = fleet["benchmarks"]["test_bench_fleet_columnar"]
        assert bench["content_s_per_wall_s"] == pytest.approx(rate)

    def test_fleet_telemetry_row(self):
        """The traced lane's trajectory row carries the overhead ratio
        against the untraced single-process run from the same raw JSON."""
        reports = bench_report.build_reports(raw_json(min_s=0.1))
        fleet = reports["BENCH_fleet.json"]
        telemetry = fleet["fleet_telemetry"]
        assert telemetry["workers"] == 1
        assert telemetry["overhead_x"] == pytest.approx(1.05)
        assert telemetry["overhead_budget_x"] > 1.0
        bench = fleet["benchmarks"]["test_bench_fleet_telemetry"]
        assert bench["content_s_per_wall_s"] == pytest.approx(
            fleet["content_seconds_sharded"] / 0.105
        )

    def test_raw_without_telemetry_lane_still_builds(self):
        """Raw JSONs from before the telemetry lane (schema v3 era)
        post-process cleanly — the v4 fields are optional on read."""
        reports = bench_report.build_reports(raw_json(telemetry=False))
        fleet = reports["BENCH_fleet.json"]
        assert "fleet_telemetry" not in fleet
        assert "test_bench_fleet_telemetry" not in fleet["benchmarks"]
        assert "phases" not in fleet

    def test_bola_columnar_row(self):
        """The policy-zoo lane (schema v5) rides with its own committed
        floor when present in the raw JSON."""
        reports = bench_report.build_reports(raw_json(min_s=0.1))
        fleet = reports["BENCH_fleet.json"]
        bench = fleet["benchmarks"]["test_bench_fleet_bola_columnar"]
        assert bench["content_s_per_wall_s"] == pytest.approx(
            fleet["content_seconds_sharded"] / 0.04
        )
        fleet_mod = bench_report._load_module(
            REPO_ROOT / "benchmarks" / "bench_fleet.py"
        )
        assert (
            fleet["floors"]["test_bench_fleet_bola_columnar"]
            == fleet_mod.BOLA_COLUMNAR_FLOOR
        )

    def test_raw_without_bola_lane_still_builds(self):
        """Raw JSONs from before the policy-zoo lane (schema v4 era)
        post-process cleanly — the v5 fields are optional on read."""
        reports = bench_report.build_reports(raw_json(bola=False))
        fleet = reports["BENCH_fleet.json"]
        assert "test_bench_fleet_bola_columnar" not in fleet["benchmarks"]
        assert "test_bench_fleet_bola_columnar" not in fleet["floors"]

    def test_fleet_chaos_row(self):
        """The chaos lane (schema v6) carries the armed-but-idle retry
        overhead against the plain run; without a pair dump the ratio is
        derived from the raw rows and tagged as such."""
        reports = bench_report.build_reports(raw_json(min_s=0.1))
        fleet = reports["BENCH_fleet.json"]
        chaos = fleet["fleet_chaos"]
        assert chaos["workers"] == 1
        assert chaos["overhead_x"] == pytest.approx(1.02)
        assert chaos["overhead_budget_x"] > 1.0
        assert chaos["measurement"] == "raw-rows"
        bench = fleet["benchmarks"]["test_bench_fleet_chaos_armed"]
        assert bench["content_s_per_wall_s"] == pytest.approx(
            fleet["content_seconds_sharded"] / 0.102
        )

    def test_raw_without_chaos_lane_still_builds(self):
        """Raw JSONs from before the chaos lane (schema v5 era)
        post-process cleanly — the v6 fields are optional on read."""
        reports = bench_report.build_reports(raw_json(chaos=False))
        fleet = reports["BENCH_fleet.json"]
        assert "fleet_chaos" not in fleet
        assert "test_bench_fleet_chaos_armed" not in fleet["benchmarks"]

    def test_same_window_pairs_preferred_over_raw_rows(self):
        """The budget tests' interleaved pair dump supplies the overhead
        ratios when present — the raw rows are measured minutes apart,
        so a drifting box records a ratio no same-window run reproduces."""
        overheads = {
            "fleet_telemetry": {
                "base_wall_s": 20.0, "wall_s": 21.4, "overhead_x": 1.07,
            },
            "fleet_chaos": {
                "base_wall_s": 20.0, "wall_s": 19.0, "overhead_x": 0.95,
            },
        }
        reports = bench_report.build_reports(
            raw_json(min_s=0.1), overheads=overheads
        )
        fleet = reports["BENCH_fleet.json"]
        assert fleet["fleet_telemetry"]["overhead_x"] == pytest.approx(1.07)
        assert fleet["fleet_telemetry"]["measurement"] == "same-window-pair"
        assert fleet["fleet_chaos"]["overhead_x"] == pytest.approx(0.95)
        assert fleet["fleet_chaos"]["measurement"] == "same-window-pair"
        # A dump carrying only one gate leaves the other on raw rows.
        partial = bench_report.build_reports(
            raw_json(min_s=0.1),
            overheads={"fleet_chaos": overheads["fleet_chaos"]},
        )
        fleet = partial["BENCH_fleet.json"]
        assert fleet["fleet_telemetry"]["measurement"] == "raw-rows"
        assert fleet["fleet_chaos"]["measurement"] == "same-window-pair"

    def test_phases_folded_into_fleet_report(self):
        phases = {
            "workload": "sharded w1 2000x8s",
            "wall_s": 20.0,
            "phases": {"scheduler": {"seconds": 10.0, "calls": 5, "pct": 50.0}},
        }
        reports = bench_report.build_reports(raw_json(), phases=phases)
        assert reports["BENCH_fleet.json"]["phases"] == phases
        assert "phases" not in reports["BENCH_mpc.json"]

    def test_missing_benchmark_fails_loudly(self):
        with pytest.raises(SystemExit, match="missing"):
            bench_report.build_reports({"benchmarks": []})


class TestRegressionGate:
    def test_floor_violation_detected(self, tmp_path):
        # 10 s/run is far under any throughput floor.
        reports = bench_report.build_reports(raw_json(min_s=10.0))
        failures, _ = bench_report.check_regressions(reports, tmp_path, 0.3)
        assert any("under its floor" in f for f in failures)

    def test_floor_scale_env_grants_slack(self, tmp_path, monkeypatch):
        """BENCH_FLOOR_SCALE relaxes the floors the same way the
        benchmark asserts do (slow shared CI runners)."""
        slow = bench_report.build_reports(raw_json(min_s=0.3))
        failures, _ = bench_report.check_regressions(slow, tmp_path, 0.3)
        assert any("under its floor" in f for f in failures)
        monkeypatch.setenv("BENCH_FLOOR_SCALE", "0.5")
        failures, _ = bench_report.check_regressions(slow, tmp_path, 0.3)
        assert failures == []

    def test_regression_vs_committed_baseline(self, tmp_path):
        fast = bench_report.build_reports(raw_json(min_s=0.05))
        for name, report in fast.items():
            (tmp_path / name).write_text(json.dumps(report))
        slow = bench_report.build_reports(raw_json(min_s=0.08))  # +60%
        failures, notes = bench_report.check_regressions(slow, tmp_path, 0.3)
        assert any("over the committed baseline" in f for f in failures)
        assert notes == []
        # Within tolerance passes.
        ok = bench_report.build_reports(raw_json(min_s=0.06))  # +20%
        assert bench_report.check_regressions(ok, tmp_path, 0.3) == ([], [])

    def test_baseline_from_other_machine_skipped_with_note(self, tmp_path):
        """Wall-clock baselines do not transfer across hardware: a
        committed baseline from another box skips the trajectory gate
        (floors still apply) instead of failing spuriously."""
        fast = bench_report.build_reports(raw_json(min_s=0.05, machine="ref-box"))
        for name, report in fast.items():
            (tmp_path / name).write_text(json.dumps(report))
        slow = bench_report.build_reports(raw_json(min_s=0.08, machine="ci-runner"))
        failures, notes = bench_report.check_regressions(slow, tmp_path, 0.3)
        assert failures == []
        assert any("different hardware" in n for n in notes)

    def test_no_baseline_means_no_trajectory_failures(self, tmp_path):
        reports = bench_report.build_reports(raw_json(min_s=0.05))
        assert bench_report.check_regressions(reports, tmp_path, 0.3) == ([], [])

    def test_lost_sharded_speedup_fails_on_parallel_hardware(self, tmp_path):
        """A speedup under the floor fails the gate wherever the workers
        could actually run in parallel (cpu_count recorded at build)."""
        reports = bench_report.build_reports(raw_json(min_s=0.01))
        sharded = reports["BENCH_fleet.json"]["fleet_sharded"]
        sharded["speedup_x"] = 1.3
        sharded["cpu_count"] = 8
        failures, _ = bench_report.check_regressions(reports, tmp_path, 0.3)
        assert any("1.30x" in f and "under its floor" in f for f in failures)

    def test_lost_sharded_speedup_noted_not_failed_on_few_cpus(self, tmp_path):
        """The same regression on a 1-CPU box cannot be distinguished
        from missing parallelism: visible note, no failure."""
        reports = bench_report.build_reports(raw_json(min_s=0.01))
        sharded = reports["BENCH_fleet.json"]["fleet_sharded"]
        sharded["speedup_x"] = 1.3
        sharded["cpu_count"] = 1
        failures, notes = bench_report.check_regressions(reports, tmp_path, 0.3)
        assert failures == []
        assert any("parallel gate skipped" in n for n in notes)

    def test_lost_columnar_ratio_fails(self, tmp_path):
        """Columnar throughput under 2x the committed machine baseline
        floor fails the gate on any hardware — no CPU-count condition,
        since both engines run single-process."""
        reports = bench_report.build_reports(raw_json(min_s=0.01))
        columnar = reports["BENCH_fleet.json"]["fleet_columnar"]
        columnar["ratio_vs_baseline_floor_x"] = 1.4
        failures, _ = bench_report.check_regressions(reports, tmp_path, 0.3)
        assert any(
            "columnar engine at 1.40x" in f and "ratio gate" in f
            for f in failures
        )

    def test_columnar_ratio_respects_floor_scale(self, tmp_path, monkeypatch):
        """The columnar ratio's numerator is a wall-clock measurement, so
        slow-runner slack applies (unlike the sharded same-box ratio)."""
        reports = bench_report.build_reports(raw_json(min_s=0.01))
        columnar = reports["BENCH_fleet.json"]["fleet_columnar"]
        columnar["ratio_vs_baseline_floor_x"] = 1.4
        monkeypatch.setenv("BENCH_FLOOR_SCALE", "0.5")
        failures, _ = bench_report.check_regressions(reports, tmp_path, 0.3)
        assert not any("ratio gate" in f for f in failures)

    def test_telemetry_over_budget_fails(self, tmp_path):
        """Enabled-telemetry overhead past its budget fails the gate on
        any hardware — a same-box ratio, like the sharded speedup."""
        reports = bench_report.build_reports(raw_json(min_s=0.01))
        telemetry = reports["BENCH_fleet.json"]["fleet_telemetry"]
        telemetry["overhead_x"] = 1.4
        failures, _ = bench_report.check_regressions(reports, tmp_path, 0.3)
        assert any(
            "telemetry costs 1.40x" in f and "budget" in f for f in failures
        )

    def test_telemetry_budget_ignores_floor_scale(self, tmp_path, monkeypatch):
        monkeypatch.setenv("BENCH_FLOOR_SCALE", "0.1")
        reports = bench_report.build_reports(raw_json(min_s=0.01))
        reports["BENCH_fleet.json"]["fleet_telemetry"]["overhead_x"] = 1.4
        failures, _ = bench_report.check_regressions(reports, tmp_path, 0.3)
        assert any("telemetry costs 1.40x" in f for f in failures)

    def test_chaos_over_budget_fails(self, tmp_path, monkeypatch):
        """Armed-retry overhead past its budget fails the gate on any
        hardware — a same-box ratio, not relaxed by BENCH_FLOOR_SCALE."""
        monkeypatch.setenv("BENCH_FLOOR_SCALE", "0.1")
        reports = bench_report.build_reports(raw_json(min_s=0.01))
        reports["BENCH_fleet.json"]["fleet_chaos"]["overhead_x"] = 1.4
        failures, _ = bench_report.check_regressions(reports, tmp_path, 0.3)
        assert any(
            "retry layer costs 1.40x" in f and "budget" in f
            for f in failures
        )

    def test_schema3_baseline_still_compares(self, tmp_path):
        """A committed v3 baseline (no telemetry row, no phases) gates
        the shared rows and silently skips the v4-only ones."""
        old = bench_report.build_reports(raw_json(min_s=0.05, telemetry=False))
        for name, report in old.items():
            report["schema"] = 3
            (tmp_path / name).write_text(json.dumps(report))
        new = bench_report.build_reports(raw_json(min_s=0.05))
        assert bench_report.check_regressions(new, tmp_path, 0.3) == ([], [])
        slow = bench_report.build_reports(raw_json(min_s=0.08))
        failures, _ = bench_report.check_regressions(slow, tmp_path, 0.3)
        assert any("over the committed baseline" in f for f in failures)

    def test_floor_scale_does_not_relax_the_speedup_ratio(self, tmp_path, monkeypatch):
        """BENCH_FLOOR_SCALE compensates slow hardware; a scaling ratio
        is hardware-normalized, so the env knob must not weaken it."""
        monkeypatch.setenv("BENCH_FLOOR_SCALE", "0.1")
        reports = bench_report.build_reports(raw_json(min_s=0.01))
        sharded = reports["BENCH_fleet.json"]["fleet_sharded"]
        sharded["speedup_x"] = 1.3
        sharded["cpu_count"] = 8
        failures, _ = bench_report.check_regressions(reports, tmp_path, 0.3)
        assert any("under its floor 2x" in f for f in failures)


class TestMain:
    def test_writes_files_and_exit_codes(self, tmp_path):
        raw_path = tmp_path / "raw.json"
        raw_path.write_text(json.dumps(raw_json(min_s=0.05)))
        rc = bench_report.main([str(raw_path), "--out-dir", str(tmp_path)])
        assert rc == 0
        for name in ("BENCH_fleet.json", "BENCH_mpc.json"):
            doc = json.loads((tmp_path / name).read_text())
            assert doc["schema"] == bench_report.SCHEMA_VERSION
        # A >30% slower rerun against the just-written baseline fails…
        raw_path.write_text(json.dumps(raw_json(min_s=0.08)))
        assert bench_report.main([str(raw_path), "--out-dir", str(tmp_path)]) == 1
        # …unless the gate is disabled.
        assert (
            bench_report.main(
                [str(raw_path), "--out-dir", str(tmp_path), "--no-check"]
            )
            == 0
        )

    def test_phases_flag_folds_file_and_tolerates_absence(self, tmp_path):
        raw_path = tmp_path / "raw.json"
        raw_path.write_text(json.dumps(raw_json(min_s=0.05)))
        phases_path = tmp_path / "bench-phases.json"
        phases_path.write_text(json.dumps({"wall_s": 1.0, "phases": {}}))
        rc = bench_report.main(
            [str(raw_path), "--out-dir", str(tmp_path),
             "--phases", str(phases_path)]
        )
        assert rc == 0
        doc = json.loads((tmp_path / "BENCH_fleet.json").read_text())
        assert doc["phases"] == {"wall_s": 1.0, "phases": {}}
        # A named-but-missing phases file is a note, not a crash (the
        # benchmark lane may not have run).
        rc = bench_report.main(
            [str(raw_path), "--out-dir", str(tmp_path), "--no-check",
             "--phases", str(tmp_path / "nope.json")]
        )
        assert rc == 0

    def test_committed_bench_files_match_schema(self):
        """The files at the repo root stay loadable and current-schema."""
        for name in ("BENCH_fleet.json", "BENCH_mpc.json"):
            doc = json.loads((REPO_ROOT / name).read_text())
            assert doc["schema"] == bench_report.SCHEMA_VERSION
            assert doc["benchmarks"], name
            for bench in doc["benchmarks"].values():
                assert bench["min_s"] > 0.0
