"""Neighbor-relationship reuse (Eq. 2) tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial import kdtree_knn, merge_and_prune, midpoint_neighbors


def _setup(frame, k_src=8):
    pts = frame.positions
    nb, _ = kdtree_knn(pts, pts, k_src + 1)
    return pts, nb[:, 1:]  # drop self


class TestMergeAndPrune:
    def test_midpoint_exactness(self, small_frame):
        """For midpoints of nearest-neighbor pairs the reuse is exact."""
        pts, nb = _setup(small_frame)
        pa = np.arange(200)
        pb = nb[pa, 0]
        mid = 0.5 * (pts[pa] + pts[pb])
        idx, dist = merge_and_prune(mid, pts, pa, pb, nb, 4)
        _, ref = kdtree_knn(pts, mid, 4)
        exact = np.isclose(dist, ref, atol=1e-9).all(axis=1).mean()
        assert exact > 0.95

    def test_no_duplicate_indices_per_row(self, small_frame):
        pts, nb = _setup(small_frame)
        pa = np.arange(150)
        pb = nb[pa, 3]
        mid = 0.5 * (pts[pa] + pts[pb])
        idx, _ = merge_and_prune(mid, pts, pa, pb, nb, 5)
        for row in idx:
            assert len(set(row.tolist())) == len(row)

    def test_sorted_distances(self, small_frame):
        pts, nb = _setup(small_frame)
        pa = np.arange(100)
        pb = nb[pa, 1]
        mid = 0.5 * (pts[pa] + pts[pb])
        _, dist = merge_and_prune(mid, pts, pa, pb, nb, 6)
        assert (np.diff(dist, axis=1) >= -1e-12).all()

    def test_candidates_include_parents(self, small_frame):
        """Nearest neighbor of a midpoint of close parents is a parent."""
        pts, nb = _setup(small_frame)
        pa = np.arange(100)
        pb = nb[pa, 0]
        mid = 0.5 * (pts[pa] + pts[pb])
        idx, _ = merge_and_prune(mid, pts, pa, pb, nb, 2)
        has_parent = ((idx == pa[:, None]) | (idx == pb[:, None])).any(axis=1)
        assert has_parent.all()

    def test_empty_input(self, small_frame):
        pts, nb = _setup(small_frame)
        idx, dist = merge_and_prune(
            np.zeros((0, 3)), pts, np.zeros(0, int), np.zeros(0, int), nb, 3
        )
        assert idx.shape == (0, 3) and dist.shape == (0, 3)

    def test_k_too_large(self, small_frame):
        pts, nb = _setup(small_frame, k_src=3)
        pa = np.array([0]); pb = np.array([1])
        with pytest.raises(ValueError, match="candidate"):
            merge_and_prune(pts[:1], pts, pa, pb, nb, 100)


class TestMidpointNeighbors:
    def test_wrapper_matches_manual(self, small_frame):
        pts, nb = _setup(small_frame)
        pa = np.arange(50)
        pb = nb[pa, 0]
        i1, d1 = midpoint_neighbors(pts, pa, pb, nb, 4)
        mid = 0.5 * (pts[pa] + pts[pb])
        i2, d2 = merge_and_prune(mid, pts, pa, pb, nb, 4)
        assert np.array_equal(i1, i2)
        assert np.allclose(d1, d2)


@given(seed=st.integers(0, 300), k=st.integers(1, 5))
@settings(max_examples=25, deadline=None)
def test_reuse_distances_lower_bounded_by_truth(seed, k):
    """Reuse is an approximation: its distances can never beat true kNN."""
    g = np.random.default_rng(seed)
    pts = g.uniform(-1, 1, (60, 3))
    nb, _ = kdtree_knn(pts, pts, 7)
    nb = nb[:, 1:]
    pa = g.integers(0, 60, 20)
    pb = nb[pa, g.integers(0, 6, 20)]
    mid = 0.5 * (pts[pa] + pts[pb])
    _, d_reuse = merge_and_prune(mid, pts, pa, pb, nb, k)
    _, d_true = kdtree_knn(pts, mid, k)
    assert (d_reuse >= d_true - 1e-9).all()
