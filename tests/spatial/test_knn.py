"""kNN backend correctness: brute, kdtree, octree all agree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial import (
    BruteBackend,
    KDTreeBackend,
    TwoLayerOctree,
    brute_force_knn,
    get_backend,
    kdtree_knn,
)


class TestBruteForce:
    def test_matches_kdtree(self, small_frame):
        pts = small_frame.positions
        q = pts[::7]
        i1, d1 = brute_force_knn(pts, q, 6)
        i2, d2 = kdtree_knn(pts, q, 6)
        assert np.allclose(d1, d2, atol=1e-6)

    def test_self_query_first_neighbor_is_self(self, small_frame):
        pts = small_frame.positions[:100]
        idx, dist = brute_force_knn(pts, pts, 1)
        assert np.array_equal(idx[:, 0], np.arange(100))
        assert np.allclose(dist, 0.0, atol=1e-6)

    def test_sorted_by_distance(self, small_frame):
        _, dist = brute_force_knn(small_frame.positions, small_frame.positions[:20], 8)
        assert (np.diff(dist, axis=1) >= -1e-12).all()

    def test_k_equals_n(self):
        pts = np.random.default_rng(0).uniform(0, 1, (5, 3))
        idx, _ = brute_force_knn(pts, pts[:2], 5)
        assert sorted(idx[0].tolist()) == [0, 1, 2, 3, 4]

    def test_blocking_consistent(self, small_frame):
        pts = small_frame.positions
        q = pts[:300]
        i_small, d_small = brute_force_knn(pts, q, 4, block=32)
        i_big, d_big = brute_force_knn(pts, q, 4, block=100000)
        assert np.allclose(d_small, d_big)

    def test_validation(self, small_frame):
        pts = small_frame.positions
        with pytest.raises(ValueError):
            brute_force_knn(pts, pts[:5], 0)
        with pytest.raises(ValueError):
            brute_force_knn(pts, pts[:5], len(pts) + 1)
        with pytest.raises(ValueError):
            brute_force_knn(pts[:, :2], pts[:5], 1)


class TestBackends:
    @pytest.mark.parametrize("name", ["brute", "kdtree", "octree"])
    def test_factory(self, name, tiny_frame):
        backend = get_backend(name, tiny_frame.positions)
        idx, dist = backend.query(tiny_frame.positions[:10], 3)
        assert idx.shape == (10, 3)
        ref_idx, ref_dist = kdtree_knn(tiny_frame.positions, tiny_frame.positions[:10], 3)
        assert np.allclose(dist, ref_dist, atol=1e-6)

    def test_factory_unknown(self, tiny_frame):
        with pytest.raises(ValueError, match="backend"):
            get_backend("ann", tiny_frame.positions)

    def test_k1_shapes(self, tiny_frame):
        for backend in (
            BruteBackend(tiny_frame.positions),
            KDTreeBackend(tiny_frame.positions),
            TwoLayerOctree(tiny_frame.positions),
        ):
            idx, dist = backend.query(tiny_frame.positions[:5], 1)
            assert idx.shape == (5, 1) and dist.shape == (5, 1)

    def test_kdtree_k_too_large(self, tiny_frame):
        backend = KDTreeBackend(tiny_frame.positions)
        with pytest.raises(ValueError):
            backend.query(tiny_frame.positions[:2], len(tiny_frame) + 1)


@given(
    seed=st.integers(0, 1000),
    n=st.integers(10, 200),
    k=st.integers(1, 8),
)
@settings(max_examples=25, deadline=None)
def test_brute_equals_kdtree_property(seed, n, k):
    g = np.random.default_rng(seed)
    pts = g.uniform(-5, 5, (n, 3))
    q = g.uniform(-5, 5, (17, 3))
    k = min(k, n)
    _, d1 = brute_force_knn(pts, q, k)
    _, d2 = kdtree_knn(pts, q, k)
    assert np.allclose(d1, d2, atol=1e-9)


def assert_same_neighbors(idx_ref, dist_ref, idx, dist, atol=1e-6):
    """Backends must return the same distances, and the same indices
    wherever the ranking is unambiguous (no distance tie at the slot)."""
    assert idx.shape == idx_ref.shape and dist.shape == dist_ref.shape
    assert np.allclose(dist, dist_ref, atol=atol)
    gaps = np.diff(dist_ref, axis=1)
    untied = np.ones_like(idx_ref, dtype=bool)
    untied[:, 1:] &= gaps > atol  # tied with the previous slot
    untied[:, :-1] &= gaps > atol  # tied with the next slot
    assert np.array_equal(idx[untied], idx_ref[untied])


class TestThreeBackendParity:
    """brute, kdtree, and octree agree on indices and distances (the
    docstring's oracle claim, enforced on random clouds)."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("k", [1, 4, 9])
    def test_random_clouds(self, seed, k):
        g = np.random.default_rng(seed)
        pts = g.uniform(-5, 5, (400, 3))
        queries = g.uniform(-6, 6, (50, 3))  # some queries off the cloud
        idx_ref, dist_ref = brute_force_knn(pts, queries, k)
        for name in ("kdtree", "octree"):
            idx, dist = get_backend(name, pts).query(queries, k)
            assert_same_neighbors(idx_ref, dist_ref, idx, dist)

    def test_clustered_cloud(self):
        """Octree pruning must stay exact when density is very uneven."""
        g = np.random.default_rng(42)
        clusters = [
            g.normal(loc, 0.05, (150, 3))
            for loc in ([0, 0, 0], [3, 3, 3], [-3, 1, 2])
        ]
        pts = np.vstack(clusters + [g.uniform(-4, 4, (50, 3))])
        queries = pts[::5]
        idx_ref, dist_ref = brute_force_knn(pts, queries, 6)
        for name in ("kdtree", "octree"):
            idx, dist = get_backend(name, pts).query(queries, 6)
            assert_same_neighbors(idx_ref, dist_ref, idx, dist)

    @given(seed=st.integers(0, 500), n=st.integers(10, 300), k=st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_property_all_backends(self, seed, n, k):
        g = np.random.default_rng(seed)
        pts = g.uniform(-5, 5, (n, 3))
        queries = g.uniform(-5, 5, (13, 3))
        k = min(k, n)
        idx_ref, dist_ref = brute_force_knn(pts, queries, k)
        for name in ("kdtree", "octree"):
            idx, dist = get_backend(name, pts).query(queries, k)
            assert_same_neighbors(idx_ref, dist_ref, idx, dist)
