"""Two-layer octree: exactness against the kd-tree oracle, structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial import TwoLayerOctree, kdtree_knn


class TestExactness:
    def test_matches_kdtree_on_frame(self, small_frame):
        pts = small_frame.positions
        oc = TwoLayerOctree(pts)
        q = pts[::3]
        _, d_oc = oc.query(q, 5)
        _, d_kd = kdtree_knn(pts, q, 5)
        assert np.allclose(d_oc, d_kd, atol=1e-6)

    def test_external_queries(self, small_frame):
        """Queries far outside the indexed cloud still return exact kNN."""
        pts = small_frame.positions
        oc = TwoLayerOctree(pts)
        g = np.random.default_rng(0)
        q = g.uniform(-10, 10, (50, 3))
        _, d_oc = oc.query(q, 3)
        _, d_kd = kdtree_knn(pts, q, 3)
        assert np.allclose(d_oc, d_kd, atol=1e-6)

    def test_clustered_distribution(self):
        """Highly clustered points stress the ring-expansion logic."""
        g = np.random.default_rng(1)
        clusters = [g.normal(c, 0.01, (80, 3)) for c in ((0, 0, 0), (5, 5, 5), (-3, 4, 0))]
        pts = np.vstack(clusters)
        oc = TwoLayerOctree(pts)
        _, d_oc = oc.query(pts[::5], 7)
        _, d_kd = kdtree_knn(pts, pts[::5], 7)
        assert np.allclose(d_oc, d_kd, atol=1e-6)

    def test_collinear_degenerate_cloud(self):
        pts = np.zeros((50, 3))
        pts[:, 0] = np.linspace(0, 1, 50)
        oc = TwoLayerOctree(pts)
        _, d_oc = oc.query(pts[:10], 4)
        _, d_kd = kdtree_knn(pts, pts[:10], 4)
        assert np.allclose(d_oc, d_kd, atol=1e-9)

    def test_k_equals_n(self):
        g = np.random.default_rng(2)
        pts = g.uniform(0, 1, (9, 3))
        oc = TwoLayerOctree(pts)
        idx, _ = oc.query(pts[:3], 9)
        for row in idx:
            assert sorted(row.tolist()) == list(range(9))


class TestStructure:
    def test_two_layers_give_64_cells(self, small_frame):
        oc = TwoLayerOctree(small_frame.positions)
        assert oc.cells_per_axis == 4
        assert oc.stats()["cells"] == 64

    def test_deeper_levels(self, small_frame):
        oc = TwoLayerOctree(small_frame.positions, levels=3)
        assert oc.cells_per_axis == 8
        assert oc.stats()["cells"] == 512
        _, d_oc = oc.query(small_frame.positions[:40], 5)
        _, d_kd = kdtree_knn(small_frame.positions, small_frame.positions[:40], 5)
        assert np.allclose(d_oc, d_kd, atol=1e-6)

    def test_bucket_counts_sum_to_n(self, small_frame):
        oc = TwoLayerOctree(small_frame.positions)
        s = oc.stats()
        assert s["mean_bucket"] * s["cells"] == pytest.approx(len(small_frame))

    def test_invalid_levels(self, small_frame):
        with pytest.raises(ValueError):
            TwoLayerOctree(small_frame.positions, levels=0)

    def test_invalid_k(self, small_frame):
        oc = TwoLayerOctree(small_frame.positions)
        with pytest.raises(ValueError):
            oc.query(small_frame.positions[:2], 0)
        with pytest.raises(ValueError):
            oc.query(small_frame.positions[:2], len(small_frame) + 1)

    def test_invalid_query_shape(self, small_frame):
        oc = TwoLayerOctree(small_frame.positions)
        with pytest.raises(ValueError):
            oc.query(small_frame.positions[:, :2], 2)


@given(
    seed=st.integers(0, 500),
    n=st.integers(20, 300),
    k=st.integers(1, 10),
    levels=st.integers(1, 3),
)
@settings(max_examples=25, deadline=None)
def test_octree_exactness_property(seed, n, k, levels):
    """The octree is exact for any cloud, k, and depth."""
    g = np.random.default_rng(seed)
    pts = g.normal(0, 1, (n, 3)) * g.uniform(0.1, 3.0, 3)
    q = g.normal(0, 1.5, (11, 3))
    k = min(k, n)
    oc = TwoLayerOctree(pts, levels=levels)
    _, d_oc = oc.query(q, k)
    _, d_kd = kdtree_knn(pts, q, k)
    assert np.allclose(d_oc, d_kd, atol=1e-9)
