"""Multi-video streaming sweep tests."""

import pytest

from repro.experiments.multivideo import measured_bytes_per_point, run_multivideo_eval
from tests.experiments.test_experiments import TINY


class TestMeasuredBpp:
    def test_in_codec_range(self):
        bpp = measured_bytes_per_point("longdress", TINY)
        assert 3.0 < bpp < 12.0

    def test_content_differentiates(self):
        """The static lab scan compresses better than the dual-person capture."""
        lab = measured_bytes_per_point("lab", TINY)
        haggle = measured_bytes_per_point("haggle", TINY)
        assert lab < haggle


class TestMultiVideo:
    @pytest.fixture(scope="class")
    def table(self):
        return run_multivideo_eval(TINY, videos=("longdress", "lab"))

    def test_grid_complete(self, table):
        assert len(table.rows) == 2 * 2 * 3  # videos x conditions x systems

    def test_volut_wins_on_every_content(self, table):
        for row in table.rows:
            if row["system"] == "volut":
                assert row["norm_qoe"] == 100.0
            else:
                assert row["norm_qoe"] < 100.0

    def test_bpp_column_measured(self, table):
        for row in table.rows:
            assert 3.0 < row["bpp"] < 12.0
