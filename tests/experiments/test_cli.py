"""CLI runner tests."""

from repro.experiments.__main__ import REGISTRY, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "fig11-device", "ablate-dilation"):
            assert name in out

    def test_run_single(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "[table1:" in out

    def test_run_multiple(self, capsys):
        assert main(["table1", "fig15"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Fig 15" in out

    def test_unknown_experiment_lists_and_exits_2(self, capsys):
        assert main(["fig99"]) == 2
        err = capsys.readouterr().err
        assert "fig99" in err
        assert "available experiments" in err
        assert "table1" in err and "fleet-cdn" in err

    def test_no_names_lists_and_exits_2(self, capsys):
        assert main([]) == 2
        captured = capsys.readouterr()
        assert "usage:" in captured.err
        assert "available experiments" in captured.err
        assert "fleet" in captured.err
        # Nothing ran: stdout carries no rendered tables.
        assert "[table1:" not in captured.out

    def test_all_conflicts_with_names(self, capsys):
        assert main(["table1", "--all"]) == 2
        err = capsys.readouterr().err
        assert "--all" in err and "table1" in err

    def test_diurnal_flag_reaches_population_experiment(self, monkeypatch, capsys):
        """--diurnal is forwarded to experiments whose runner accepts it."""
        seen = {}

        class FakeTable:
            def render(self):
                return "fake table"

        def fake_run(scale, diurnal=False):
            seen["diurnal"] = diurnal
            return FakeTable()

        monkeypatch.setitem(REGISTRY, "fleet-population", fake_run)
        assert main(["fleet-population", "--diurnal"]) == 0
        assert seen["diurnal"] is True
        seen.clear()
        assert main(["fleet-population"]) == 0
        assert seen["diurnal"] is False

    def test_sessions_flag_reaches_population_experiment(self, monkeypatch, capsys):
        """--sessions is forwarded to experiments accepting n_sessions."""
        seen = {}

        class FakeTable:
            def render(self):
                return "fake table"

        def fake_run(scale, n_sessions=200):
            seen["n_sessions"] = n_sessions
            return FakeTable()

        monkeypatch.setitem(REGISTRY, "fleet-cdn", fake_run)
        assert main(["fleet-cdn", "--sessions", "1000"]) == 0
        assert seen["n_sessions"] == 1000
        seen.clear()
        assert main(["fleet-cdn"]) == 0
        assert seen["n_sessions"] == 200

    def test_workers_and_days_flags_reach_fleet_cdn(self, monkeypatch, capsys):
        """--workers / --days are forwarded to experiments accepting them."""
        seen = {}

        class FakeTable:
            def render(self):
                return "fake table"

        def fake_run(scale, n_sessions=200, workers=0, days=1):
            seen.update(n_sessions=n_sessions, workers=workers, days=days)
            return FakeTable()

        monkeypatch.setitem(REGISTRY, "fleet-cdn", fake_run)
        assert main(
            ["fleet-cdn", "--sessions", "50", "--workers", "4", "--days", "3"]
        ) == 0
        assert seen == {"n_sessions": 50, "workers": 4, "days": 3}

    def test_control_interval_flag_reaches_fleet_chaos(
        self, monkeypatch, capsys
    ):
        """--control-interval is forwarded to experiments accepting it."""
        seen = {}

        class FakeTable:
            def render(self):
                return "fake table"

        def fake_run(scale, control_interval=5.0):
            seen["control_interval"] = control_interval
            return FakeTable()

        monkeypatch.setitem(REGISTRY, "fleet-chaos", fake_run)
        assert main(["fleet-chaos", "--control-interval", "2.5"]) == 0
        assert seen["control_interval"] == 2.5
        assert "(control_interval=2.5)" in capsys.readouterr().out
        seen.clear()
        assert main(["fleet-chaos"]) == 0
        assert seen["control_interval"] == 5.0

    def test_abr_flag_reaches_fleet_experiments(self, monkeypatch, capsys):
        """--abr is forwarded to experiments whose runner accepts it."""
        seen = {}

        class FakeTable:
            def render(self):
                return "fake table"

        def fake_run(scale, abr="continuous-mpc"):
            seen["abr"] = abr
            return FakeTable()

        monkeypatch.setitem(REGISTRY, "fleet-cdn", fake_run)
        assert main(["fleet-cdn", "--abr", "bola"]) == 0
        assert seen["abr"] == "bola"
        seen.clear()
        assert main(["fleet-cdn"]) == 0
        assert seen["abr"] == "continuous-mpc"

    def test_unknown_abr_lists_policies_and_exits_2(self, capsys):
        assert main(["fleet-cdn", "--abr", "pensieve"]) == 2
        err = capsys.readouterr().err
        assert "pensieve" in err
        assert "bola" in err and "throughput" in err

    def test_config_echoed_in_pass_fail_lines(self, monkeypatch, capsys):
        """Nightly logs must identify the failing configuration: the
        --sessions/--workers values appear on the per-experiment line
        and the summary header."""

        def boom(scale, n_sessions=200, workers=0):
            raise RuntimeError("synthetic failure")

        monkeypatch.setitem(REGISTRY, "fleet-cdn", boom)
        assert main(
            ["fleet-cdn", "table1", "--sessions", "1000", "--workers", "4"]
        ) == 1
        captured = capsys.readouterr()
        assert "[fleet-cdn: FAILED" in captured.err
        assert "(sessions=1000, workers=4)" in captured.err
        assert "experiment summary (sessions=1000, workers=4):" in captured.out

    def test_failing_experiment_exits_nonzero_with_summary(
        self, monkeypatch, capsys
    ):
        """A raising experiment doesn't abort the list: remaining
        experiments still run, the summary names the failure, exit is 1."""

        def boom(scale):
            raise RuntimeError("synthetic failure")

        monkeypatch.setitem(REGISTRY, "fig4", boom)
        assert main(["fig4", "table1"]) == 1
        captured = capsys.readouterr()
        assert "synthetic failure" in captured.err       # the traceback
        assert "[fig4: FAILED" in captured.err
        assert "Table 1" in captured.out                 # table1 still ran
        assert "experiment summary:" in captured.out
        assert "1/2 experiments passed" in captured.out

    def test_multi_run_prints_summary_even_when_green(self, capsys):
        assert main(["table1", "fig15"]) == 0
        out = capsys.readouterr().out
        assert "experiment summary:" in out
        assert "2/2 experiments passed" in out

    def test_single_green_run_skips_summary(self, capsys):
        assert main(["table1"]) == 0
        assert "experiment summary:" not in capsys.readouterr().out

    def test_registry_covers_every_paper_artifact(self):
        """One CLI entry per table/figure in DESIGN.md's experiment index."""
        needed = {
            "table1", "fig4", "fig7-10", "fig11-measured", "fig11-device",
            "fig12-13", "fig14", "fig15", "fig16-device", "fig16-measured",
            "fig17-device", "fig17-measured", "fig18",
            "fleet", "fleet-population", "fleet-cdn",
        }
        assert needed <= set(REGISTRY)


class TestReport:
    def test_report_written(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        from repro.experiments.__main__ import main

        assert main(["table1", "fig15", "--report", str(out)]) == 0
        text = out.read_text()
        assert "# VoLUT reproduction" in text
        assert "## table1" in text and "## fig15" in text
        assert "1.61 GB" in text
