"""Design-choice ablation tests (the DESIGN.md checklist)."""

import pytest

from repro.experiments import (
    run_bins_sweep,
    run_dilation_sweep,
    run_downsampling_ablation,
    run_octree_depth_sweep,
)
from tests.experiments.test_experiments import TINY


class TestDilationSweep:
    @pytest.fixture(scope="class")
    def table(self):
        from repro.experiments.common import SMOKE

        return run_dilation_sweep(SMOKE)

    def test_dilation_improves_uniformity(self, table):
        cvs = table.column("density_cv")
        assert cvs[1] < cvs[0]  # d=2 more uniform than d=1

    def test_geometry_stays_sane(self, table):
        cds = table.column("chamfer")
        assert max(cds) < min(cds) * 1.5  # no dilation blows up geometry


class TestBinsSweep:
    def test_finer_bins_smaller_error(self):
        t = run_bins_sweep(TINY, bin_counts=(8, 64))
        errs = t.column("lut_vs_net_err")
        assert errs[-1] < errs[0]

    def test_dense_memory_grows(self):
        t = run_bins_sweep(TINY, bin_counts=(8, 64))
        mem = t.column("dense_table_mb")
        assert mem[-1] > mem[0]


class TestDownsamplingAblation:
    @pytest.fixture(scope="class")
    def table(self):
        return run_downsampling_ablation(TINY)

    def test_fps_much_slower_to_encode(self, table):
        """The paper's reason to choose random sampling."""
        rnd = table.lookup(strategy="random")["encode_ms"]
        fps = table.lookup(strategy="fps")["encode_ms"]
        assert fps > 10 * rnd

    def test_random_quality_competitive(self, table):
        """...and random sampling's post-SR quality is in the same league."""
        rnd = table.lookup(strategy="random")["post_sr_chamfer"]
        fps = table.lookup(strategy="fps")["post_sr_chamfer"]
        assert rnd < fps * 1.6


class TestOctreeDepthSweep:
    def test_two_layers_beats_one(self):
        from repro.experiments.common import SMOKE

        t = run_octree_depth_sweep(SMOKE, levels=(1, 2))
        one = t.lookup(levels=1)["query_ms"]
        two = t.lookup(levels=2)["query_ms"]
        assert two < one  # the paper's choice of depth pays off

    def test_cells_grow_with_depth(self):
        t = run_octree_depth_sweep(TINY, levels=(1, 2, 3))
        assert t.column("cells") == [8, 64, 512]
