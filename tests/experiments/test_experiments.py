"""Experiment harness tests: every table/figure runs and shows the paper's
qualitative shape at smoke scale."""

import pytest

from repro.experiments import (
    SMOKE,
    Scale,
    run_ablation,
    run_breakdown_device,
    run_breakdown_measured,
    run_fig4,
    run_fig11_device,
    run_fig11_measured,
    run_fig17_device,
    run_fig17_measured,
    run_fig18_device,
    run_fleet_cdn,
    run_fleet_chaos,
    run_fleet_policies,
    run_fleet_scaling,
    run_memory_usage,
    run_sr_quality,
    run_streaming_eval,
    run_table1,
)

TINY = Scale(
    name="tiny",
    points_per_frame=1200,
    quality_frames=1,
    image_size=64,
    train_epochs=4,
    stream_seconds=30,
)


class TestTable1:
    def test_paper_rows(self):
        t = run_table1()
        assert len(t.rows) == 6
        row = t.lookup(rf_size=4, bins=128)
        assert row["entries"] == 805306368
        assert row["size"] == "1.61 GB"

    def test_render_is_text(self):
        out = run_table1().render()
        assert "Table 1" in out and "128" in out


class TestFig4:
    def test_dilated_more_uniform_than_naive(self):
        # The uniformity gap needs enough points to be stable; the smallest
        # TINY scale is too sparse for the density statistic.
        t = run_fig4(SMOKE)
        dil = t.lookup(cloud="dilated-k4d2")
        nai = t.lookup(cloud="naive-k4d1")
        assert dil["density_cv"] < nai["density_cv"]

    def test_ground_truth_row_present(self):
        t = run_fig4(TINY)
        gt = t.lookup(cloud="ground-truth")
        assert gt["coverage_radius"] == 0.0


class TestSRQuality:
    @pytest.fixture(scope="class")
    def table(self):
        return run_sr_quality(TINY, ratios=(2.0,), videos=("longdress", "lab"), n_views=2)

    def test_all_cells_present(self, table):
        assert len(table.rows) == 2 * 1 * 4  # videos x ratios x methods

    def test_psnr_positive(self, table):
        assert all(r["psnr_db"] > 5 for r in table.rows)

    def test_lut_improves_chamfer_over_plain_interp(self, table):
        for video in ("longdress", "lab"):
            lut = table.lookup(video=video, ratio=2.0, method="K4d2-lut")
            plain = table.lookup(video=video, ratio=2.0, method="K4d2")
            assert lut["chamfer"] <= plain["chamfer"] * 1.05

    def test_generalizes_across_videos(self, table):
        """LUT trained on longdress still helps on the lab scene."""
        lut = table.lookup(video="lab", ratio=2.0, method="K4d2-lut")
        assert lut["chamfer"] < float("inf")


class TestFig11:
    def test_measured_octree_wins_at_scale(self):
        t = run_fig11_measured(SMOKE, ratios=(2.0,), repeats=1)
        assert t.rows[0]["speedup"] > 1.5

    def test_device_model_speedups_in_paper_band(self):
        t = run_fig11_device()
        for row in t.rows:
            if row["device"] == "orange-pi":
                assert 3.0 < row["speedup"] < 4.5
            else:
                assert 7.0 < row["speedup"] < 9.0

    def test_orange_pi_8x_near_paper(self):
        t = run_fig11_device()
        row = t.lookup(device="orange-pi", ratio=8.0)
        assert 24 < row["ours_fps"] < 40  # paper: 31.2
        assert 6 < row["vanilla_fps"] < 10  # paper: 8.0


class TestStreamingEval:
    @pytest.fixture(scope="class")
    def table(self):
        return run_streaming_eval(TINY, lte_profiles=((32.5, 13.5),))

    def test_all_conditions_and_systems(self, table):
        conditions = set(table.column("condition"))
        assert {"stable-50", "lte-all", "lte-low"} <= conditions
        assert set(table.column("system")) == {"volut", "yuzu-sr", "vivo", "raw"}

    def test_volut_normalized_to_100(self, table):
        for cond in ("stable-50", "lte-low"):
            assert table.lookup(condition=cond, system="volut")["norm_qoe"] == 100.0

    def test_fig12_ordering_stable(self, table):
        v = table.lookup(condition="stable-50", system="volut")["norm_qoe"]
        y = table.lookup(condition="stable-50", system="yuzu-sr")["norm_qoe"]
        vi = table.lookup(condition="stable-50", system="vivo")["norm_qoe"]
        assert v > y > vi

    def test_fig13_data_usage(self, table):
        raw = table.lookup(condition="stable-50", system="raw")["data_pct"]
        volut = table.lookup(condition="stable-50", system="volut")["data_pct"]
        assert raw == 100.0
        assert volut < 45.0  # the ~70%-reduction headline


class TestFleetScaling:
    @pytest.fixture(scope="class")
    def table(self):
        return run_fleet_scaling(
            TINY, fleet_sizes=(1, 4, 16), link_mbps=400.0,
            population_sessions=40,
        )

    def test_all_fleet_sizes_reported(self, table):
        assert table.column("n_sessions")[:3] == [1, 4, 16]

    def test_contention_degrades_qoe(self, table):
        qoes = table.column("mean_qoe")
        assert qoes[0] > qoes[2]  # 16 clients on the pipe beats 1 never

    def test_cache_hit_rate_grows_with_fleet(self, table):
        hits = table.column("cache_hit")
        assert hits[0] == 0.0  # nobody to share with
        assert hits[1] > 0.0
        assert hits[2] >= hits[1]

    def test_tail_below_mean_below_p95(self, table):
        for row in table.rows:
            assert row["p5_qoe"] <= row["mean_qoe"] <= row["p95_qoe"]

    def test_population_row_runs_end_to_end(self, table):
        row = table.rows[-1]
        assert row["policy"].endswith("+poisson+churn")
        assert 1 <= row["n_sessions"] <= 40
        assert 0.0 <= row["abandon_rate"] <= 1.0
        assert row["cache_hit"] > 0.0  # Zipf catalog forces co-watching


class TestFleetCDN:
    @pytest.fixture(scope="class")
    def table(self):
        return run_fleet_cdn(TINY, n_sessions=48, n_edges=3)

    def test_all_variants_reported(self, table):
        assert table.column("topology") == [
            "single-link", "no-cache", "cdn", "cdn", "cdn", "cdn+slow-encode",
        ]
        assert table.column("assign")[2:5] == [
            "static", "least-loaded", "popularity",
        ]

    def test_edge_caching_reduces_origin_egress(self, table):
        """The acceptance demonstration: warm edge caches cut origin
        egress below the cache-disabled run on a Zipf population."""
        no_cache = table.rows[1]
        warm = table.rows[4]  # popularity assignment
        assert no_cache["edge_hit"] == 0.0
        assert warm["edge_hit"] > 0.0
        assert warm["origin_gb"] < no_cache["origin_gb"]
        assert warm["data_gb"] >= no_cache["data_gb"]

    def test_origin_egress_never_exceeds_delivered(self, table):
        for row in table.rows:
            assert row["origin_gb"] <= row["data_gb"] + 1e-9

    def test_starved_encoder_shows_queue_waits(self, table):
        assert table.rows[-1]["enc_p95_s"] > table.rows[4]["enc_p95_s"]


class TestFleetChaos:
    @pytest.fixture(scope="class")
    def table(self):
        return run_fleet_chaos(TINY, n_sessions=48, n_edges=3)

    def test_all_scenarios_reported(self, table):
        scenarios = table.column("scenario")
        assert scenarios[:10] == [
            "baseline", "baseline", "edge-outage", "edge-outage",
            "region-outage", "region-outage", "gray-edge",
            "backhaul-degr", "retry-timeout", "flash-crowd",
        ]
        assert scenarios[10] == "slow-encode"
        assert scenarios[11].startswith("qoe-autoscale")

    def test_outage_resteers_and_recovers(self, table):
        """The acceptance demonstration: an edge outage re-steers a
        nonzero viewer share and the fleet recovers in finite time."""
        import math

        for row in table.rows:
            if row["scenario"] != "edge-outage":
                continue
            assert row["resteer"] > 0
            assert math.isfinite(row["recover_s"])

    def test_fault_free_baseline_reports_no_faults(self, table):
        off = table.rows[0]
        assert off["resteer"] == 0 and off["ticks"] == 0
        assert off["dip"] == 0.0 and off["recover_s"] == 0.0

    def test_controller_ticks_only_when_enabled(self, table):
        for row in table.rows:
            assert (row["ticks"] > 0) == (row["ctrl"] == "on")

    def test_slow_encode_forces_pool_resizes(self, table):
        assert table.lookup(scenario="slow-encode")["resizes"] > 0

    def test_region_outage_fails_over_with_retries(self, table):
        """The regional scenario must fail viewers over and the retry
        layer must have re-issued attempts (timeouts or evacuations)."""
        for row in table.rows:
            if row["scenario"] != "region-outage":
                continue
            assert row["resteer"] > 0
            assert row["retries"] > 0

    def test_gray_edge_never_resteers_on_outage(self, table):
        """A gray edge is never dark, so nothing evacuates; drops and
        timeouts are absorbed by the retry layer."""
        row = table.lookup(scenario="gray-edge")
        assert row["retries"] > 0

    def test_retry_timeout_row_cancels_requests(self, table):
        """The impatient-client row must exercise the timeout path: the
        experiment itself raises when no request times out, and every
        timed-out attempt is also a counted retry."""
        row = table.lookup(scenario="retry-timeout")
        assert row["timeouts"] > 0
        assert row["retries"] >= row["timeouts"]

    def test_regional_mode_runs_only_the_regional_battery(self):
        """--regional (the nightly smoke) restricts the table to the
        fault-free baseline plus the correlated region-outage pair."""
        table = run_fleet_chaos(
            TINY, n_sessions=48, n_edges=3, regional=True
        )
        assert table.column("scenario") == [
            "baseline", "region-outage", "region-outage",
        ]
        for row in table.rows[1:]:
            assert row["resteer"] > 0

    def test_autoscale_row_learned_a_day2_scale(self, table):
        row = table.rows[11]
        # The label carries the learned multiplier: "qoe-autoscale d2x0.75 nNN"
        scale = float(row["scenario"].split("d2x")[1].split()[0])
        assert 0.0 < scale <= 1.0


class TestFleetPolicies:
    @pytest.fixture(scope="class")
    def table(self):
        return run_fleet_policies(TINY, n_sessions=48, n_edges=2, n_boot=50)

    def test_every_zoo_policy_gets_a_row(self, table):
        from repro.experiments.fleet_policies import ZOO_POLICIES

        assert table.column("policy") == list(ZOO_POLICIES)

    def test_pareto_front_nonempty(self, table):
        assert "*" in table.column("pareto")

    def test_costs_are_positive_dollars(self, table):
        for row in table.rows:
            assert row["total_usd"] > 0.0
            assert row["egress_usd"] > 0.0

    def test_ci_brackets_mean(self, table):
        for row in table.rows:
            lo, hi = (float(v) for v in row["qoe_ci95"].strip("[]").split(","))
            assert lo <= row["mean_qoe"] <= hi


class TestAblation:
    @pytest.fixture(scope="class")
    def table(self):
        return run_ablation(TINY, lte_profiles=((32.5, 13.5), (75.0, 20.0)))

    def test_h1_best_qoe(self, table):
        h1 = table.lookup(variant="H1")["norm_qoe"]
        h2 = table.lookup(variant="H2")["norm_qoe"]
        h3 = table.lookup(variant="H3")["norm_qoe"]
        assert h1 == 100.0
        assert h1 > h2 > h3

    def test_h2_uses_more_data(self, table):
        assert table.lookup(variant="H2")["data_vs_h1"] > 100.0


class TestMemoryAndRuntime:
    def test_fig15_memory_relationships(self):
        t = run_memory_usage()
        volut = t.lookup(system="volut (1 LUT)")
        gradpu = t.lookup(system="gradpu (pytorch)")
        yuzu = t.lookup(system="yuzu (frozen c++)")
        # Paper: ~86% less than GradPU; comparable to YuZu (same order).
        assert volut["vs_gradpu_pct"] < 20.0
        assert gradpu["vs_gradpu_pct"] == 100.0
        assert yuzu["total_mb"] < 10 * volut["total_mb"]

    def test_fig16_knn_dominates_on_both_devices(self):
        t = run_breakdown_device()
        for device in ("desktop-gpu", "orange-pi"):
            shares = {
                r["stage"]: r["share_pct"] for r in t.rows if r["device"] == device
            }
            assert shares["knn"] == max(shares.values())
            assert shares["refinement"] < shares["knn"]

    def test_fig16_measured_knn_dominates(self):
        t = run_breakdown_measured(TINY)
        shares = {r["stage"]: r["share_pct"] for r in t.rows}
        assert shares["knn"] == max(shares.values())

    def test_fig17_device_orderings(self):
        t = run_fig17_device()
        v = t.lookup(system="volut")
        y = t.lookup(system="yuzu")
        g = t.lookup(system="gradpu")
        assert v["fps"] > y["fps"] > g["fps"]
        assert 6 < y["slowdown_vs_volut"] < 14      # paper: 8.4
        assert 1e4 < g["slowdown_vs_volut"] < 1e5   # paper: 46,400

    def test_fig17_measured_ordering(self):
        t = run_fig17_measured(TINY)
        v = t.lookup(system="volut")["ms"]
        y = t.lookup(system="yuzu")["ms"]
        g = t.lookup(system="gradpu")["ms"]
        assert v < y < g

    def test_fig18_flat_latency(self):
        t = run_fig18_device()
        fps = t.column("fps")
        assert max(fps) / min(fps) < 1.3
        assert all(r["knn_share_pct"] > 60 for r in t.rows)


class TestResultTable:
    def test_lookup_missing(self):
        t = run_table1()
        with pytest.raises(KeyError):
            t.lookup(rf_size=99)
        with pytest.raises(KeyError):
            t.column("nope")

    def test_add_validates_columns(self):
        from repro.experiments import ResultTable

        t = ResultTable(title="t", columns=["a", "b"])
        with pytest.raises(ValueError):
            t.add(a=1)
