"""Trained-artifacts cache and configuration tests."""

import pytest

from repro.experiments.artifacts import get_artifacts
from repro.experiments.common import Scale

TINY = Scale(
    name="artifacts-tiny",
    points_per_frame=1200,
    quality_frames=2,
    image_size=64,
    train_epochs=3,
    stream_seconds=10,
)


class TestArtifactsCache:
    def test_same_key_returns_cached_object(self):
        a = get_artifacts(TINY, seed=0)
        b = get_artifacts(TINY, seed=0)
        assert a is b

    def test_seed_changes_artifacts(self):
        a = get_artifacts(TINY, seed=0)
        b = get_artifacts(TINY, seed=1)
        assert a is not b

    def test_lut_kind_changes_artifacts(self):
        coarse = get_artifacts(TINY, seed=0, lut_kind="coarse")
        fine = get_artifacts(TINY, seed=0, lut_kind="hashed")
        assert coarse is not fine
        from repro.sr import CoarseHashedLUT, HashedLUT

        assert isinstance(coarse.lut, CoarseHashedLUT)
        assert isinstance(fine.lut, HashedLUT)

    def test_training_happened(self):
        art = get_artifacts(TINY, seed=0)
        assert len(art.train_losses) == TINY.train_epochs
        assert art.train_losses[-1] <= art.train_losses[0]
        assert art.lut.n_entries > 0

    def test_encoder_configuration(self):
        art = get_artifacts(TINY, rf_size=4, bins=32, seed=0)
        assert art.encoder.rf_size == 4
        assert art.encoder.bins == 32
        assert art.net.in_dim == 12

    def test_unknown_lut_kind(self):
        with pytest.raises(ValueError):
            get_artifacts(TINY, seed=3, lut_kind="btree")
