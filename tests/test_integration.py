"""Cross-module integration tests: the full offline→online VoLUT flow."""

import numpy as np
import pytest

from repro.metrics import chamfer_distance, image_psnr
from repro.pointcloud import make_video, random_downsample_count
from repro.render import render, viewport_trace
from repro.sr import (
    HashedLUT,
    PositionEncoder,
    VolutUpsampler,
    build_lut,
    build_refinement_dataset,
    train_refinement_net,
)


class TestOfflineOnlineFlow:
    """Train on longdress → distill LUT → stream-upsample another video."""

    @pytest.fixture(scope="class")
    def lut_and_encoder(self):
        encoder = PositionEncoder(rf_size=4, bins=32)
        video = make_video("longdress", n_points=1500, n_frames=2)
        frames = [video.frame(i) for i in range(2)]
        ds = build_refinement_dataset(frames, encoder, ratios=(2.0,), seed=0)
        net, losses = train_refinement_net(ds, encoder, hidden=(24, 24), epochs=8)
        assert losses[-1] < losses[0]
        lut = build_lut(net, encoder, ds.bins, kind="hashed")
        return lut, encoder

    def test_lut_persists_and_reloads(self, lut_and_encoder, tmp_path):
        lut, _ = lut_and_encoder
        p = tmp_path / "volut.npz"
        lut.save(p)
        again = HashedLUT.load(p)
        assert again.n_entries == lut.n_entries

    def test_cross_video_generalization(self, lut_and_encoder):
        """The paper applies the longdress LUT to every test video."""
        lut, _ = lut_and_encoder
        up = VolutUpsampler(lut=lut, seed=0)
        for name in ("loot", "lab"):
            gt = make_video(name, n_points=1500, n_frames=1).frame(0)
            low = random_downsample_count(gt, 750, seed=0)
            result = up.upsample(low, 2.0)
            assert len(result.cloud) == 1500
            assert chamfer_distance(result.cloud, gt) < chamfer_distance(
                low, gt
            ) * 2.0  # sane geometry, no blow-up

    def test_render_quality_improves_with_sr(self, lut_and_encoder):
        """Image-space check of the whole pipeline: SR'd render is closer
        to the ground-truth render than the sparse render is."""
        lut, _ = lut_and_encoder
        gt = make_video("longdress", n_points=1500, n_frames=1).frame(0)
        low = random_downsample_count(gt, 375, seed=0)
        up = VolutUpsampler(lut=lut, seed=0).upsample(low, 4.0).cloud
        cam = viewport_trace(
            "static", 1, center=tuple(gt.centroid()), radius=2.2, width=96, height=96
        )[0]
        img_gt = render(gt, cam)
        img_low = render(low, cam)
        img_up = render(up, cam)
        assert image_psnr(img_up, img_gt) > image_psnr(img_low, img_gt)


class TestStreamingIntegration:
    """Encoder wire format ↔ streaming byte accounting agreement."""

    def test_encoded_size_matches_chunkspec_raw_format(self):
        from repro.streaming import VideoSpec, encode_chunk
        from repro.streaming.chunks import CHUNK_HEADER_BYTES

        video = make_video("longdress", n_points=1000, n_frames=3)
        frames = [video.frame(i) for i in range(3)]
        payload = encode_chunk(frames, 0.5, seed=0)
        spec = VideoSpec(
            name="x", n_frames=3, fps=30, points_per_frame=1000, bytes_per_point=15
        )
        chunk = spec.chunks(1.0)[0]
        analytic = chunk.bytes_at_density(0.5)
        # Wire overhead: 4-byte chunk header + 2x4-byte frame prefixes vs the
        # analytic CHUNK_HEADER_BYTES allowance.
        assert abs(len(payload) - analytic) < CHUNK_HEADER_BYTES + 16

    def test_full_loop_decode_and_upsample(self, trained_artifacts):
        from repro.streaming import decode_chunk, encode_chunk

        video = make_video("longdress", n_points=1500, n_frames=2)
        frames = [video.frame(i) for i in range(2)]
        payload = encode_chunk(frames, 0.5, seed=0)
        received = decode_chunk(payload)
        up = VolutUpsampler(lut=trained_artifacts.lut, seed=0)
        for low, gt in zip(received, frames):
            out = up.upsample(low, 2.0)
            assert len(out.cloud) == pytest.approx(len(gt), rel=0.01)


class TestEndToEndDeterminism:
    def test_identical_runs(self, trained_artifacts):
        gt = make_video("loot", n_points=1000, n_frames=1).frame(0)
        low = random_downsample_count(gt, 500, seed=3)
        a = VolutUpsampler(lut=trained_artifacts.lut, seed=5).upsample(low, 2.0)
        b = VolutUpsampler(lut=trained_artifacts.lut, seed=5).upsample(low, 2.0)
        assert np.array_equal(a.cloud.positions, b.cloud.positions)
