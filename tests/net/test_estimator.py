"""Harmonic-mean throughput estimator tests."""

import pytest

from repro.net import HarmonicMeanEstimator


class TestEstimator:
    def test_initial_estimate(self):
        est = HarmonicMeanEstimator(initial_bps=5e6)
        assert est.estimate() == 5e6
        assert est.n_samples == 0

    def test_single_sample(self):
        est = HarmonicMeanEstimator()
        est.observe(10e6)
        assert est.estimate() == pytest.approx(10e6)

    def test_harmonic_mean_value(self):
        est = HarmonicMeanEstimator(window=3)
        for s in (10e6, 20e6, 40e6):
            est.observe(s)
        expected = 3 / (1 / 10e6 + 1 / 20e6 + 1 / 40e6)
        assert est.estimate() == pytest.approx(expected)

    def test_sliding_window_evicts_old(self):
        est = HarmonicMeanEstimator(window=2)
        est.observe(1e6)
        est.observe(50e6)
        est.observe(50e6)
        assert est.estimate() == pytest.approx(50e6)

    def test_robust_to_spikes(self):
        """The harmonic mean is pulled toward the low samples."""
        est = HarmonicMeanEstimator(window=5)
        for s in (10e6, 10e6, 10e6, 10e6, 1000e6):
            est.observe(s)
        arith = (4 * 10e6 + 1000e6) / 5
        assert est.estimate() < arith / 2

    def test_reset(self):
        est = HarmonicMeanEstimator(initial_bps=7e6)
        est.observe(1e6)
        est.reset()
        assert est.estimate() == 7e6

    def test_validation(self):
        with pytest.raises(ValueError):
            HarmonicMeanEstimator(window=0)
        with pytest.raises(ValueError):
            HarmonicMeanEstimator(initial_bps=0)
        est = HarmonicMeanEstimator()
        with pytest.raises(ValueError):
            est.observe(0.0)
