"""SharedLink: processor sharing, weights, conservation, solo exactness."""

import numpy as np
import pytest

from repro.net import Link, NetworkTrace, SharedLink, stable_trace


def const_trace(bps: float, rtt: float = 0.0) -> NetworkTrace:
    return NetworkTrace(
        name="const",
        timestamps=np.array([0.0, 500.0]),
        bandwidths_bps=np.array([bps, bps]),
        rtt=rtt,
    )


def drive(link: SharedLink, now: float = 0.0):
    """Run the link dry; returns completions in order."""
    out = []
    while link.busy():
        t = link.next_event(now)
        out.extend(link.advance(now, t))
        now = t
    return out


class TestSoloExactness:
    def test_single_flow_matches_link_download_time(self):
        trace = stable_trace(7.3, rtt=0.013)
        expected = Link(trace).download_time(1_234_567, 2.5)
        shared = SharedLink(trace)
        shared.add_flow(0, 1_234_567, 2.5)
        (done,) = drive(shared)
        assert done.elapsed == expected  # bit-exact, not approx
        assert done.finish_time == 2.5 + expected

    def test_sequential_solo_flows_each_exact(self):
        trace = stable_trace(10.0, rtt=0.02)
        ref = Link(trace)
        shared = SharedLink(trace)
        shared.add_flow(0, 500_000, 0.0)
        (first,) = drive(shared)
        assert first.elapsed == ref.download_time(500_000, 0.0)
        shared.add_flow(1, 800_000, first.finish_time)
        (second,) = drive(shared, first.finish_time)
        assert second.elapsed == ref.download_time(800_000, first.finish_time)

    def test_zero_bytes_costs_one_rtt(self):
        shared = SharedLink(const_trace(1e6, rtt=0.05))
        shared.add_flow(0, 0, 1.0)
        (done,) = drive(shared)
        assert done.elapsed == pytest.approx(0.05)
        assert done.finish_time == pytest.approx(1.05)


class TestFairSharing:
    def test_two_equal_flows_halve_throughput(self):
        # 1000 bps, two flows of 1000 bits each from t=0: both finish at 2 s.
        shared = SharedLink(const_trace(1000.0))
        shared.add_flow(0, 125, 0.0)
        shared.add_flow(1, 125, 0.0)
        done = drive(shared)
        assert [c.flow_id for c in done] == [0, 1]
        for c in done:
            assert c.finish_time == pytest.approx(2.0)

    def test_late_joiner_shares_remainder(self):
        # A: 2000 bits at t=0; B: 500 bits at t=1.  A runs solo-speed for
        # 1 s (1000 bits), then shares: A needs 2 more s, B needs 1 s at
        # 500 bps.  B done at t=2; A's last 500 bits at full rate: t=2.5.
        shared = SharedLink(const_trace(1000.0))
        shared.add_flow(0, 250, 0.0)  # 2000 bits
        shared.add_flow(1, 63, 1.0)  # 504 bits
        done = {c.flow_id: c for c in drive(shared)}
        assert done[1].finish_time == pytest.approx(1.0 + 504 / 500.0, rel=1e-9)
        a_finish = 1.0 + 504 / 500.0 + (2000 - 1000 - 504) / 1000.0
        assert done[0].finish_time == pytest.approx(a_finish, rel=1e-9)

    def test_conservation_across_random_fleet(self):
        rng = np.random.default_rng(0)
        shared = SharedLink(const_trace(5e5))
        sizes = rng.integers(10_000, 200_000, 6)
        for i, nbytes in enumerate(sizes):
            shared.add_flow(i, int(nbytes), 0.0)
        done = drive(shared)
        last = max(c.finish_time for c in done)
        total_bits = 8.0 * float(sizes.sum())
        # Link saturated from 0 to last completion.
        assert total_bits == pytest.approx(5e5 * last, rel=1e-9)
        assert shared.delivered_bits == pytest.approx(total_bits, rel=1e-9)

    def test_variable_rate_trace_honoured(self):
        # 1000 bps for 10 s then 2000 bps.  Two flows of 7500 bits each:
        # 10 s at 500 bps each (5000 bits), then 2500 bits at 1000 bps.
        trace = NetworkTrace(
            name="step",
            timestamps=np.array([0.0, 10.0]),
            bandwidths_bps=np.array([1000.0, 2000.0]),
            rtt=0.0,
        )
        shared = SharedLink(trace)
        shared.add_flow(0, 937, 0.0)  # 7496 bits
        shared.add_flow(1, 937, 0.0)
        done = drive(shared)
        expected = 10.0 + (7496 - 5000) / 1000.0
        for c in done:
            assert c.finish_time == pytest.approx(expected, rel=1e-9)


class TestWeightedSharing:
    def test_weights_split_capacity_proportionally(self):
        # 3:1 weights on 1000 bps → 750/250 bps while both active.
        shared = SharedLink(const_trace(1000.0), policy="weighted")
        shared.add_flow(0, 375, 0.0, weight=3.0)  # 3000 bits
        shared.add_flow(1, 125, 0.0, weight=1.0)  # 1000 bits
        done = {c.flow_id: c for c in drive(shared)}
        # Both drain exactly at t=4 under proportional shares.
        assert done[0].finish_time == pytest.approx(4.0)
        assert done[1].finish_time == pytest.approx(4.0)

    def test_fair_policy_ignores_weights(self):
        shared = SharedLink(const_trace(1000.0), policy="fair")
        shared.add_flow(0, 125, 0.0, weight=100.0)
        shared.add_flow(1, 125, 0.0, weight=1.0)
        done = drive(shared)
        assert done[0].finish_time == pytest.approx(done[1].finish_time)

    def test_lone_weighted_flow_gets_full_capacity(self):
        trace = const_trace(1000.0)
        shared = SharedLink(trace, policy="weighted")
        shared.add_flow(0, 125, 0.0, weight=0.25)
        (done,) = drive(shared)
        assert done.finish_time == pytest.approx(1.0)


class TestValidation:
    def test_bad_policy(self):
        with pytest.raises(ValueError, match="policy"):
            SharedLink(const_trace(1e6), policy="strict")

    def test_duplicate_flow_id(self):
        shared = SharedLink(const_trace(1e6))
        shared.add_flow(0, 100, 0.0)
        with pytest.raises(ValueError, match="already"):
            shared.add_flow(0, 100, 0.0)

    def test_bad_args(self):
        shared = SharedLink(const_trace(1e6))
        with pytest.raises(ValueError):
            shared.add_flow(0, -1, 0.0)
        with pytest.raises(ValueError):
            shared.add_flow(0, 100, -1.0)
        with pytest.raises(ValueError):
            shared.add_flow(0, 100, 0.0, weight=0.0)
        with pytest.raises(RuntimeError):
            shared.next_event(0.0)
        with pytest.raises(ValueError):
            shared.add_flow(0, 100, 5.0)
            shared.advance(5.0, 4.0)
