"""CSV trace I/O tests."""

import numpy as np
import pytest

from repro.net import lte_trace, read_trace_csv, stable_trace, write_trace_csv


class TestCSVRoundtrip:
    def test_roundtrip_lte(self, tmp_path):
        tr = lte_trace(50.0, 15.0, duration=30, seed=0)
        p = tmp_path / "lte.csv"
        write_trace_csv(tr, p)
        back = read_trace_csv(p)
        assert np.allclose(back.timestamps, tr.timestamps, atol=1e-3)
        assert np.allclose(back.bandwidths_bps, tr.bandwidths_bps, rtol=1e-5)

    def test_name_from_filename(self, tmp_path):
        tr = stable_trace(10.0)
        p = tmp_path / "my-link.csv"
        write_trace_csv(tr, p)
        assert read_trace_csv(p).name == "my-link"

    def test_explicit_name_and_rtt(self, tmp_path):
        p = tmp_path / "x.csv"
        write_trace_csv(stable_trace(10.0), p)
        back = read_trace_csv(p, name="custom", rtt=0.1)
        assert back.name == "custom"
        assert back.rtt == 0.1

    def test_comments_and_blanks_skipped(self, tmp_path):
        p = tmp_path / "c.csv"
        p.write_text("# header\n\n0.0,10.0\n1.0,20.0\n")
        tr = read_trace_csv(p)
        assert len(tr.timestamps) == 2

    def test_malformed_row(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("0.0,10.0,extra\n")
        with pytest.raises(ValueError, match="expected"):
            read_trace_csv(p)

    def test_empty_file(self, tmp_path):
        p = tmp_path / "empty.csv"
        p.write_text("# nothing\n")
        with pytest.raises(ValueError, match="no trace rows"):
            read_trace_csv(p)

    def test_usable_by_link(self, tmp_path):
        from repro.net import Link

        p = tmp_path / "l.csv"
        write_trace_csv(stable_trace(80.0, rtt=0.0), p)
        link = Link(read_trace_csv(p, rtt=0.0))
        assert link.download_time(10_000_000, 0.0) == pytest.approx(1.0, rel=1e-3)
