"""Link-model tests."""

import numpy as np
import pytest

from repro.net import Link, NetworkTrace, stable_trace


class TestDownloadTime:
    def test_stable_link_exact(self):
        link = Link(stable_trace(80.0, rtt=0.0))  # 80 Mbps = 10 MB/s
        # 10 MB should take ~1 s.
        assert link.download_time(10_000_000, 0.0) == pytest.approx(1.0, rel=1e-3)

    def test_rtt_added(self):
        link = Link(stable_trace(80.0, rtt=0.05))
        t = link.download_time(10_000_000, 0.0)
        assert t == pytest.approx(1.05, rel=1e-3)

    def test_zero_bytes_costs_one_rtt(self):
        link = Link(stable_trace(80.0, rtt=0.02))
        assert link.download_time(0, 0.0) == pytest.approx(0.02)

    def test_faster_link_faster_download(self):
        t_slow = Link(stable_trace(10.0)).download_time(5_000_000, 0.0)
        t_fast = Link(stable_trace(100.0)).download_time(5_000_000, 0.0)
        assert t_fast < t_slow

    def test_fluctuation_honoured_mid_transfer(self):
        """A transfer spanning a rate change takes the harmonic blend."""
        tr = NetworkTrace(
            "step", np.array([0.0, 1.0]), np.array([8e6, 80e6]), rtt=0.0
        )
        link = Link(tr)
        # 2 MB: first 1 s moves 1 MB at 8 Mbps, the next 0.1 s finishes.
        t = link.download_time(2_000_000, 0.0)
        assert t == pytest.approx(1.1, rel=1e-2)

    def test_start_time_matters_on_varying_trace(self):
        tr = NetworkTrace(
            "step", np.array([0.0, 5.0]), np.array([8e6, 80e6]), rtt=0.0
        )
        link = Link(tr)
        slow_start = link.download_time(1_000_000, 0.0)
        fast_start = link.download_time(1_000_000, 5.0)
        assert fast_start < slow_start

    def test_validation(self):
        link = Link(stable_trace(10.0))
        with pytest.raises(ValueError):
            link.download_time(-1, 0.0)
        with pytest.raises(ValueError):
            link.download_time(10, -1.0)


class TestThroughputSample:
    def test_matches_link_rate_for_large_transfer(self):
        link = Link(stable_trace(40.0, rtt=0.0))
        thr = link.throughput_sample(50_000_000, 0.0)
        assert thr == pytest.approx(40e6, rel=1e-2)

    def test_rtt_reduces_observed_throughput(self):
        fast = Link(stable_trace(40.0, rtt=0.0)).throughput_sample(1_000_000, 0.0)
        slow = Link(stable_trace(40.0, rtt=0.2)).throughput_sample(1_000_000, 0.0)
        assert slow < fast
