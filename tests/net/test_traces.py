"""Bandwidth trace tests."""

import numpy as np
import pytest

from repro.net import MBPS, PAPER_LTE_PROFILES, NetworkTrace, lte_trace, stable_trace


class TestNetworkTrace:
    def test_lookup_in_segments(self):
        tr = NetworkTrace("t", np.array([0.0, 10.0]), np.array([1e6, 2e6]))
        assert tr.bandwidth_at(5.0) == 1e6
        assert tr.bandwidth_at(15.0) == 2e6

    def test_loops_past_end(self):
        tr = NetworkTrace("t", np.array([0.0, 10.0]), np.array([1e6, 2e6]))
        assert tr.bandwidth_at(25.0) == 1e6  # 25 % 20 = 5

    def test_mean_and_std_weighted(self):
        tr = NetworkTrace("t", np.array([0.0, 10.0]), np.array([1e6, 3e6]))
        assert tr.mean_bandwidth() == pytest.approx(2e6)
        assert tr.std_bandwidth() == pytest.approx(1e6)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkTrace("t", np.array([1.0]), np.array([1e6]))  # not at 0
        with pytest.raises(ValueError):
            NetworkTrace("t", np.array([0.0, 0.0]), np.array([1e6, 1e6]))
        with pytest.raises(ValueError):
            NetworkTrace("t", np.array([0.0]), np.array([-1e6]))
        with pytest.raises(ValueError):
            NetworkTrace("t", np.array([0.0]), np.array([1e6]), rtt=-1)
        tr = NetworkTrace("t", np.array([0.0]), np.array([1e6]))
        with pytest.raises(ValueError):
            tr.bandwidth_at(-1.0)


class TestStable:
    def test_constant_rate(self):
        tr = stable_trace(50.0)
        for t in (0.0, 100.0, 599.0):
            assert tr.bandwidth_at(t) == 50 * MBPS

    def test_default_rtt(self):
        assert stable_trace(50.0).rtt == pytest.approx(0.010)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            stable_trace(0.0)


class TestLTE:
    def test_matches_requested_moments(self):
        """Realized mean/std land near the paper-profile parameters."""
        tr = lte_trace(mean_mbps=75.0, std_mbps=20.0, duration=3000, seed=0)
        assert tr.mean_bandwidth() / MBPS == pytest.approx(75.0, rel=0.15)
        assert tr.std_bandwidth() / MBPS == pytest.approx(20.0, rel=0.5)

    @pytest.mark.parametrize("mean,std", PAPER_LTE_PROFILES)
    def test_paper_profiles_generate(self, mean, std):
        tr = lte_trace(mean, std, duration=300, seed=1)
        assert tr.mean_bandwidth() > 0

    def test_floor_at_1mbps(self):
        tr = lte_trace(mean_mbps=2.0, std_mbps=5.0, duration=600, seed=2)
        assert tr.bandwidths_bps.min() >= 1.0 * MBPS

    def test_deterministic_per_seed(self):
        a = lte_trace(32.5, 13.5, seed=7)
        b = lte_trace(32.5, 13.5, seed=7)
        assert np.array_equal(a.bandwidths_bps, b.bandwidths_bps)

    def test_seeds_differ(self):
        a = lte_trace(32.5, 13.5, seed=1)
        b = lte_trace(32.5, 13.5, seed=2)
        assert not np.array_equal(a.bandwidths_bps, b.bandwidths_bps)

    def test_autocorrelated(self):
        """AR(1) structure: adjacent samples correlate strongly."""
        tr = lte_trace(75.0, 20.0, duration=2000, seed=3)
        bw = tr.bandwidths_bps
        r = np.corrcoef(bw[:-1], bw[1:])[0, 1]
        assert r > 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            lte_trace(mean_mbps=0.0)
        with pytest.raises(ValueError):
            lte_trace(mean_mbps=10.0, std_mbps=-1.0)
