"""Multi-link path properties: one-hop parity, engine parity, accounting.

The scheduler ships two engines behind one contract: ``scalar`` (per-flow
Python loops, the reference oracle) and ``vector`` (one array pass per
event step, the default).  Following the repo's oracle-parity convention
(kNN backends, the MPC planner), every property here runs against both
engines, and :class:`TestEngineParity` drives the two engines over the
same hypothesis-generated multi-hop workloads asserting bit-identical
completion streams.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    SCHEDULER_ENGINES,
    Link,
    NetworkPath,
    PathScheduler,
    SharedLink,
    lte_trace,
    path_download_time,
    stable_trace,
)


def drive(engine):
    """Run an engine's event loop to completion; return all completions."""
    now, out = 0.0, []
    guard = 0
    while engine.busy():
        t = engine.next_event(now)
        out += engine.advance(now, t)
        now = t
        guard += 1
        assert guard < 100_000, "event loop did not converge"
    return out


#: (nbytes, start_time, weight) triples with staggered starts.
flow_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=50_000_000),
        st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
        st.floats(min_value=0.25, max_value=4.0, allow_nan=False),
    ),
    min_size=1,
    max_size=6,
)


@pytest.fixture(params=SCHEDULER_ENGINES)
def engine(request):
    return request.param


class TestOneHopParity:
    """A one-hop PathScheduler must be bit-exact with bare SharedLink."""

    @pytest.mark.parametrize("engine", SCHEDULER_ENGINES)
    @settings(max_examples=60, deadline=None)
    @given(
        flows=flow_lists,
        policy=st.sampled_from(["fair", "weighted"]),
        mean=st.floats(min_value=5.0, max_value=150.0),
        seed=st.integers(min_value=0, max_value=10),
    )
    def test_bit_exact_completions(self, engine, flows, policy, mean, seed):
        trace = lte_trace(mean, mean / 3, duration=120.0, seed=seed)
        shared = SharedLink(trace, policy=policy)
        sched = PathScheduler(engine=engine)
        path = NetworkPath((SharedLink(trace, policy=policy),))
        for fid, (nbytes, start, weight) in enumerate(flows):
            shared.add_flow(fid, nbytes, start, weight=weight)
            sched.add_flow(fid, nbytes, start, path, weight=weight)
        a, b = drive(shared), drive(sched)
        assert a == b  # Completion is frozen: == is field-exact

    def test_solo_flow_matches_link_integrator(self, engine):
        """A lone flow resolves through the same segment-exact arithmetic."""
        trace = lte_trace(40, 12, seed=3)
        path = NetworkPath((SharedLink(trace),))
        sched = PathScheduler(engine=engine)
        sched.add_flow(0, 7_654_321, 1.25, path)
        (done,) = drive(sched)
        assert done.elapsed == Link(trace).download_time(7_654_321, 1.25)

    def test_zero_byte_flow_costs_path_rtt(self, engine):
        trace = stable_trace(50.0, rtt=0.025)
        sched = PathScheduler(engine=engine)
        sched.add_flow(0, 0, 2.0, NetworkPath((SharedLink(trace),)))
        (done,) = drive(sched)
        assert done.elapsed == pytest.approx(0.025)
        assert done.finish_time == pytest.approx(2.025)


class TestHopMonotonicity:
    """Adding a hop can never speed a transfer up."""

    @settings(max_examples=40, deadline=None)
    @given(
        flows=flow_lists,
        mean=st.floats(min_value=5.0, max_value=100.0),
        extra_mbps=st.floats(min_value=2.0, max_value=400.0),
        seed=st.integers(min_value=0, max_value=10),
    )
    def test_extra_hop_never_faster(self, flows, mean, extra_mbps, seed):
        one = PathScheduler()
        two = PathScheduler()
        first = lte_trace(mean, mean / 3, duration=120.0, seed=seed)
        extra = stable_trace(extra_mbps, duration=120.0, rtt=0.0)
        path_one = NetworkPath((SharedLink(first),))
        path_two = NetworkPath((SharedLink(first), SharedLink(extra)))
        for fid, (nbytes, start, weight) in enumerate(flows):
            one.add_flow(fid, nbytes, start, path_one, weight=weight)
            two.add_flow(fid, nbytes, start, path_two, weight=weight)
        by_id_one = {c.flow_id: c for c in drive(one)}
        for c in drive(two):
            assert c.elapsed >= by_id_one[c.flow_id].elapsed - 1e-9

    def test_slow_middle_hop_is_the_bottleneck(self):
        """Path throughput is the min over hops, not the access link."""
        fast = stable_trace(100.0, rtt=0.0)
        slow = stable_trace(10.0, rtt=0.0)
        sched = PathScheduler()
        sched.add_flow(
            0, 10_000_000, 0.0, NetworkPath((SharedLink(slow), SharedLink(fast)))
        )
        (done,) = drive(sched)
        assert done.elapsed == pytest.approx(80e6 / 10e6)

    def test_path_download_time_one_hop_matches_link(self):
        trace = lte_trace(35, 10, seed=7)
        path = NetworkPath((SharedLink(trace),))
        for nbytes, start in [(0, 0.0), (123, 3.5), (9_999_999, 0.75)]:
            assert path_download_time(path, nbytes, start) == Link(
                trace
            ).download_time(nbytes, start)


class TestSharedHopContention:
    def test_shared_backhaul_splits_between_paths(self):
        """Two flows on disjoint access links sharing one backhaul each
        get half the backhaul when it is the bottleneck."""
        backhaul = SharedLink(stable_trace(20.0, rtt=0.0))
        access_a = SharedLink(stable_trace(100.0, rtt=0.0))
        access_b = SharedLink(stable_trace(100.0, rtt=0.0))
        sched = PathScheduler()
        sched.add_flow(0, 10_000_000, 0.0, NetworkPath((backhaul, access_a)))
        sched.add_flow(1, 10_000_000, 0.0, NetworkPath((backhaul, access_b)))
        done = drive(sched)
        # 80 Mbit each over a shared 20 Mbps hop: both finish at t=8.
        assert [c.finish_time for c in done] == pytest.approx([8.0, 8.0])

    def test_per_link_delivered_accounting(self):
        """Every hop a flow traverses carries its full byte count."""
        backhaul = SharedLink(stable_trace(50.0, rtt=0.0))
        access = SharedLink(stable_trace(50.0, rtt=0.0))
        sched = PathScheduler()
        sched.add_flow(0, 1_000_000, 0.0, NetworkPath((backhaul, access)))
        sched.add_flow(1, 2_000_000, 0.0, NetworkPath((access,)))
        drive(sched)
        assert backhaul.delivered_bits == pytest.approx(8e6)
        assert access.delivered_bits == pytest.approx(24e6)
        assert sched.delivered_bits == pytest.approx(24e6)

    def test_extra_delay_gates_data_start(self):
        """An encode-gated flow starts late but elapsed counts from request."""
        trace = stable_trace(80.0, rtt=0.0)
        plain = PathScheduler()
        plain.add_flow(0, 1_000_000, 0.0, NetworkPath((SharedLink(trace),)))
        (base,) = drive(plain)
        gated = PathScheduler()
        gated.add_flow(
            0, 1_000_000, 0.0, NetworkPath((SharedLink(trace),)), extra_delay=2.5
        )
        (late,) = drive(gated)
        assert late.elapsed == pytest.approx(base.elapsed + 2.5)


#: per-flow (nbytes, start, weight, path index, extra_delay) draws.
engine_flow_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30_000_000),
        st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
        st.floats(min_value=0.25, max_value=4.0, allow_nan=False),
        st.integers(min_value=0, max_value=3),
        st.sampled_from([0.0, 0.0, 0.5, 2.0]),
    ),
    min_size=1,
    max_size=12,
)


class TestEngineParity:
    """vector == scalar, bit for bit, on multi-hop shared-link pools.

    The grid mixes weights, staggered starts, gated (``extra_delay``)
    flows, and one/two/three-hop paths sharing links — the full surface
    the CDN fleet exercises.  Completions must compare equal field for
    field; per-link byte accounting agrees to float tolerance (the
    engines sum drained bits in different orders).
    """

    def build(self, engine, flows, policy, mean, seed):
        links = [
            SharedLink(lte_trace(mean, mean / 3, duration=90.0, seed=seed),
                       policy=policy),
            SharedLink(stable_trace(mean * 1.5, duration=90.0, rtt=0.005),
                       policy=policy),
            SharedLink(lte_trace(mean / 2, mean / 6, duration=90.0,
                                 seed=seed + 50), policy=policy),
        ]
        paths = [
            NetworkPath((links[0],)),
            NetworkPath((links[0], links[1])),
            NetworkPath((links[1], links[2])),
            NetworkPath((links[0], links[1], links[2])),
        ]
        sched = PathScheduler(engine=engine)
        for fid, (nbytes, start, weight, path_i, delay) in enumerate(flows):
            sched.add_flow(
                fid, nbytes, start, paths[path_i],
                weight=weight, extra_delay=delay,
            )
        return sched, links

    @settings(max_examples=50, deadline=None)
    @given(
        flows=engine_flow_lists,
        policy=st.sampled_from(["fair", "weighted"]),
        mean=st.floats(min_value=5.0, max_value=120.0),
        seed=st.integers(min_value=0, max_value=8),
    )
    def test_bit_exact_multihop_completions(self, flows, policy, mean, seed):
        scalar, s_links = self.build("scalar", flows, policy, mean, seed)
        vector, v_links = self.build("vector", flows, policy, mean, seed)
        assert drive(scalar) == drive(vector)
        assert vector.delivered_bits == pytest.approx(scalar.delivered_bits)
        for sl, vl in zip(s_links, v_links):
            assert vl.delivered_bits == pytest.approx(sl.delivered_bits)

    def test_weighted_denominator_beyond_pairwise_block(self):
        """20 weighted flows on one hop: NumPy's pairwise summation
        diverges from Python's sequential ``sum`` at 8+ terms, so the
        vector engine must fall back to an insertion-order sum for the
        weighted share denominator.  20 concurrent flows pin that."""
        flows = [
            (1_000_000 + 37 * i, 0.25 * (i % 3), 0.3 + 0.17 * i, i % 4, 0.0)
            for i in range(20)
        ]
        scalar, _ = self.build("scalar", flows, "weighted", 60.0, 2)
        vector, _ = self.build("vector", flows, "weighted", 60.0, 2)
        assert drive(scalar) == drive(vector)

    def test_weighted_single_link_pool_beyond_pairwise(self):
        """The vector engine's one-link fast path must also sum weighted
        denominators in insertion order — pinned against bare SharedLink
        with 12 concurrent flows."""
        trace = lte_trace(50, 15, duration=90.0, seed=3)
        shared = SharedLink(trace, policy="weighted")
        sched = PathScheduler(engine="vector")
        path = NetworkPath((SharedLink(trace, policy="weighted"),))
        for fid in range(12):
            nbytes = 800_000 + 12_345 * fid
            start = 0.2 * (fid % 4)
            weight = 0.3 + 0.21 * fid
            shared.add_flow(fid, nbytes, start, weight=weight)
            sched.add_flow(fid, nbytes, start, path, weight=weight)
        assert drive(shared) == drive(sched)

    def test_fair_many_flows_bit_exact(self):
        flows = [
            (500_000 + 991 * i, 0.1 * i, 1.0, i % 4, 0.0) for i in range(24)
        ]
        scalar, _ = self.build("scalar", flows, "fair", 45.0, 5)
        vector, _ = self.build("vector", flows, "fair", 45.0, 5)
        assert drive(scalar) == drive(vector)

    def test_sync_mid_flight_injection_parity(self):
        """The fleet's deferred-release pattern: sync() at an arbitrary
        instant, then inject a flow — both engines must bank the solo
        flow's progress identically."""
        results = []
        for engine in SCHEDULER_ENGINES:
            trace = stable_trace(40.0, duration=120.0)
            link = SharedLink(trace)
            path = NetworkPath((link,))
            sched = PathScheduler(engine=engine)
            sched.add_flow(0, 10_000_000, 0.0, path)
            sched.next_event(0.0)  # resolves the solo fast path
            sched.sync(1.0)
            sched.add_flow(1, 5_000_000, 1.0, path)
            results.append(drive(sched))
        assert results[0] == results[1]

    def test_sync_draining_solo_to_zero_still_completes(self):
        """A deferred request landing at (or past) the solo flow's finish
        makes sync() empty it outright; the emptied flow must still be
        reported — the vector engine used to lose it and spin forever."""
        results = []
        for engine in SCHEDULER_ENGINES:
            path = NetworkPath((SharedLink(stable_trace(80.0)),))
            sched = PathScheduler(engine=engine)
            sched.add_flow(0, 1_000_000, 0.0, path)  # finishes at ~0.11 s
            sched.next_event(0.0)                    # resolve solo fast path
            sched.sync(1.0)                          # fully drained
            sched.add_flow(1, 1_000, 1.0, path)
            done = drive(sched)
            assert {c.flow_id for c in done} == {0, 1}
            results.append(done)
        assert results[0] == results[1]

    def test_engine_validation(self):
        with pytest.raises(ValueError, match="engine"):
            PathScheduler(engine="quantum")


class TestValidation:
    def test_path_needs_links(self):
        with pytest.raises(ValueError, match="at least one link"):
            NetworkPath(())

    def test_path_rejects_duplicate_hop(self):
        link = SharedLink(stable_trace(10.0))
        with pytest.raises(ValueError, match="distinct"):
            NetworkPath((link, link))

    def test_add_flow_validation(self):
        sched = PathScheduler()
        path = NetworkPath((SharedLink(stable_trace(10.0)),))
        sched.add_flow(0, 100, 0.0, path)
        with pytest.raises(ValueError, match="already in flight"):
            sched.add_flow(0, 100, 0.0, path)
        with pytest.raises(ValueError, match="non-negative"):
            sched.add_flow(1, -1, 0.0, path)
        with pytest.raises(ValueError, match="non-negative"):
            sched.add_flow(1, 100, -1.0, path)
        with pytest.raises(ValueError, match="positive"):
            sched.add_flow(1, 100, 0.0, path, weight=0.0)
        with pytest.raises(ValueError, match="extra_delay"):
            sched.add_flow(1, 100, 0.0, path, extra_delay=-0.1)
        with pytest.raises(RuntimeError):
            PathScheduler().next_event(0.0)
