"""Multi-link path properties: one-hop parity, hop monotonicity, accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    Link,
    NetworkPath,
    PathScheduler,
    SharedLink,
    lte_trace,
    path_download_time,
    stable_trace,
)


def drive(engine):
    """Run an engine's event loop to completion; return all completions."""
    now, out = 0.0, []
    guard = 0
    while engine.busy():
        t = engine.next_event(now)
        out += engine.advance(now, t)
        now = t
        guard += 1
        assert guard < 100_000, "event loop did not converge"
    return out


#: (nbytes, start_time, weight) triples with staggered starts.
flow_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=50_000_000),
        st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
        st.floats(min_value=0.25, max_value=4.0, allow_nan=False),
    ),
    min_size=1,
    max_size=6,
)


class TestOneHopParity:
    """A one-hop PathScheduler must be bit-exact with bare SharedLink."""

    @settings(max_examples=60, deadline=None)
    @given(
        flows=flow_lists,
        policy=st.sampled_from(["fair", "weighted"]),
        mean=st.floats(min_value=5.0, max_value=150.0),
        seed=st.integers(min_value=0, max_value=10),
    )
    def test_bit_exact_completions(self, flows, policy, mean, seed):
        trace = lte_trace(mean, mean / 3, duration=120.0, seed=seed)
        shared = SharedLink(trace, policy=policy)
        sched = PathScheduler()
        path = NetworkPath((SharedLink(trace, policy=policy),))
        for fid, (nbytes, start, weight) in enumerate(flows):
            shared.add_flow(fid, nbytes, start, weight=weight)
            sched.add_flow(fid, nbytes, start, path, weight=weight)
        a, b = drive(shared), drive(sched)
        assert a == b  # Completion is frozen: == is field-exact

    def test_solo_flow_matches_link_integrator(self):
        """A lone flow resolves through the same segment-exact arithmetic."""
        trace = lte_trace(40, 12, seed=3)
        path = NetworkPath((SharedLink(trace),))
        sched = PathScheduler()
        sched.add_flow(0, 7_654_321, 1.25, path)
        (done,) = drive(sched)
        assert done.elapsed == Link(trace).download_time(7_654_321, 1.25)

    def test_zero_byte_flow_costs_path_rtt(self):
        trace = stable_trace(50.0, rtt=0.025)
        sched = PathScheduler()
        sched.add_flow(0, 0, 2.0, NetworkPath((SharedLink(trace),)))
        (done,) = drive(sched)
        assert done.elapsed == pytest.approx(0.025)
        assert done.finish_time == pytest.approx(2.025)


class TestHopMonotonicity:
    """Adding a hop can never speed a transfer up."""

    @settings(max_examples=40, deadline=None)
    @given(
        flows=flow_lists,
        mean=st.floats(min_value=5.0, max_value=100.0),
        extra_mbps=st.floats(min_value=2.0, max_value=400.0),
        seed=st.integers(min_value=0, max_value=10),
    )
    def test_extra_hop_never_faster(self, flows, mean, extra_mbps, seed):
        one = PathScheduler()
        two = PathScheduler()
        first = lte_trace(mean, mean / 3, duration=120.0, seed=seed)
        extra = stable_trace(extra_mbps, duration=120.0, rtt=0.0)
        path_one = NetworkPath((SharedLink(first),))
        path_two = NetworkPath((SharedLink(first), SharedLink(extra)))
        for fid, (nbytes, start, weight) in enumerate(flows):
            one.add_flow(fid, nbytes, start, path_one, weight=weight)
            two.add_flow(fid, nbytes, start, path_two, weight=weight)
        by_id_one = {c.flow_id: c for c in drive(one)}
        for c in drive(two):
            assert c.elapsed >= by_id_one[c.flow_id].elapsed - 1e-9

    def test_slow_middle_hop_is_the_bottleneck(self):
        """Path throughput is the min over hops, not the access link."""
        fast = stable_trace(100.0, rtt=0.0)
        slow = stable_trace(10.0, rtt=0.0)
        sched = PathScheduler()
        sched.add_flow(
            0, 10_000_000, 0.0, NetworkPath((SharedLink(slow), SharedLink(fast)))
        )
        (done,) = drive(sched)
        assert done.elapsed == pytest.approx(80e6 / 10e6)

    def test_path_download_time_one_hop_matches_link(self):
        trace = lte_trace(35, 10, seed=7)
        path = NetworkPath((SharedLink(trace),))
        for nbytes, start in [(0, 0.0), (123, 3.5), (9_999_999, 0.75)]:
            assert path_download_time(path, nbytes, start) == Link(
                trace
            ).download_time(nbytes, start)


class TestSharedHopContention:
    def test_shared_backhaul_splits_between_paths(self):
        """Two flows on disjoint access links sharing one backhaul each
        get half the backhaul when it is the bottleneck."""
        backhaul = SharedLink(stable_trace(20.0, rtt=0.0))
        access_a = SharedLink(stable_trace(100.0, rtt=0.0))
        access_b = SharedLink(stable_trace(100.0, rtt=0.0))
        sched = PathScheduler()
        sched.add_flow(0, 10_000_000, 0.0, NetworkPath((backhaul, access_a)))
        sched.add_flow(1, 10_000_000, 0.0, NetworkPath((backhaul, access_b)))
        done = drive(sched)
        # 80 Mbit each over a shared 20 Mbps hop: both finish at t=8.
        assert [c.finish_time for c in done] == pytest.approx([8.0, 8.0])

    def test_per_link_delivered_accounting(self):
        """Every hop a flow traverses carries its full byte count."""
        backhaul = SharedLink(stable_trace(50.0, rtt=0.0))
        access = SharedLink(stable_trace(50.0, rtt=0.0))
        sched = PathScheduler()
        sched.add_flow(0, 1_000_000, 0.0, NetworkPath((backhaul, access)))
        sched.add_flow(1, 2_000_000, 0.0, NetworkPath((access,)))
        drive(sched)
        assert backhaul.delivered_bits == pytest.approx(8e6)
        assert access.delivered_bits == pytest.approx(24e6)
        assert sched.delivered_bits == pytest.approx(24e6)

    def test_extra_delay_gates_data_start(self):
        """An encode-gated flow starts late but elapsed counts from request."""
        trace = stable_trace(80.0, rtt=0.0)
        plain = PathScheduler()
        plain.add_flow(0, 1_000_000, 0.0, NetworkPath((SharedLink(trace),)))
        (base,) = drive(plain)
        gated = PathScheduler()
        gated.add_flow(
            0, 1_000_000, 0.0, NetworkPath((SharedLink(trace),)), extra_delay=2.5
        )
        (late,) = drive(gated)
        assert late.elapsed == pytest.approx(base.elapsed + 2.5)


class TestValidation:
    def test_path_needs_links(self):
        with pytest.raises(ValueError, match="at least one link"):
            NetworkPath(())

    def test_path_rejects_duplicate_hop(self):
        link = SharedLink(stable_trace(10.0))
        with pytest.raises(ValueError, match="distinct"):
            NetworkPath((link, link))

    def test_add_flow_validation(self):
        sched = PathScheduler()
        path = NetworkPath((SharedLink(stable_trace(10.0)),))
        sched.add_flow(0, 100, 0.0, path)
        with pytest.raises(ValueError, match="already in flight"):
            sched.add_flow(0, 100, 0.0, path)
        with pytest.raises(ValueError, match="non-negative"):
            sched.add_flow(1, -1, 0.0, path)
        with pytest.raises(ValueError, match="non-negative"):
            sched.add_flow(1, 100, -1.0, path)
        with pytest.raises(ValueError, match="positive"):
            sched.add_flow(1, 100, 0.0, path, weight=0.0)
        with pytest.raises(ValueError, match="extra_delay"):
            sched.add_flow(1, 100, 0.0, path, extra_delay=-0.1)
        with pytest.raises(RuntimeError):
            PathScheduler().next_event(0.0)
