"""Viewport-hybrid system (future-work extension) tests."""

from repro.net import lte_trace, stable_trace
from repro.streaming import VideoSpec
from repro.systems import run_system, vivo_system, volut_system, volut_viewport_system


def spec(seconds=60):
    return VideoSpec(
        name="longdress", n_frames=seconds * 30, fps=30, points_per_frame=100_000
    )


class TestViewportHybrid:
    def test_config(self):
        s = volut_viewport_system(visible_fraction=0.5)
        assert s.name == "volut-viewport"
        assert s.config.fetch_fraction == 0.5

    def test_uses_less_data_than_plain_volut(self):
        tr = stable_trace(200.0)  # ample bandwidth: both reach top density
        plain = run_system(volut_system(), spec(), tr)
        hybrid = run_system(volut_viewport_system(), spec(), tr)
        assert hybrid.total_bytes < plain.total_bytes

    def test_beats_vivo_under_constrained_link(self):
        """Culling + SR should dominate culling alone."""
        tr = lte_trace(32.5, 13.5, seed=3)
        hybrid = run_system(volut_viewport_system(), spec(), tr)
        vivo = run_system(vivo_system(), spec(), tr)
        assert hybrid.qoe > vivo.qoe

    def test_can_beat_plain_volut_when_bandwidth_tight(self):
        """With culling, the same link affords higher density; despite the
        misprediction discount, the hybrid stays in the same QoE league."""
        tr = lte_trace(32.5, 13.5, seed=3)
        plain = run_system(volut_system(), spec(), tr)
        hybrid = run_system(volut_viewport_system(), spec(), tr)
        assert hybrid.qoe > 0.6 * plain.qoe
