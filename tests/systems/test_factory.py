"""System configuration tests + end-to-end QoE orderings from the paper."""

import pytest

from repro.net import lte_trace, stable_trace
from repro.streaming import VideoSpec
from repro.systems import (
    raw_system,
    run_system,
    vivo_system,
    volut_discrete_system,
    volut_system,
    yuzu_sr_system,
)


def spec(seconds=60):
    return VideoSpec(
        name="longdress", n_frames=seconds * 30, fps=30, points_per_frame=100_000
    )


@pytest.fixture(scope="module")
def stable_results():
    tr = stable_trace(50.0)
    return {
        s.name: run_system(s, spec(), tr)
        for s in (volut_system(), volut_discrete_system(), yuzu_sr_system(),
                  vivo_system(), raw_system())
    }


@pytest.fixture(scope="module")
def lte_results():
    tr = lte_trace(32.5, 13.5, seed=11)
    return {
        s.name: run_system(s, spec(), tr)
        for s in (volut_system(), volut_discrete_system(), yuzu_sr_system(),
                  vivo_system(), raw_system())
    }


class TestConfigs:
    def test_names(self):
        assert volut_system().name == "volut"
        assert volut_discrete_system().name == "volut-discrete"
        assert yuzu_sr_system().name == "yuzu-sr"
        assert vivo_system().name == "vivo"
        assert raw_system().name == "raw"

    def test_yuzu_charges_model_downloads(self):
        assert yuzu_sr_system().config.startup_bytes > 0
        assert volut_system().config.startup_bytes == 0

    def test_vivo_fetches_viewport_fraction(self):
        s = vivo_system(visible_fraction=0.5)
        assert s.config.fetch_fraction == 0.5
        assert s.config.quality_factor < 1.0


class TestStableOrdering:
    """Paper Fig 12 (stable 50 Mbps): VoLUT > Yuzu-SR > ViVo."""

    def test_volut_beats_yuzu(self, stable_results):
        assert stable_results["volut"].qoe > stable_results["yuzu-sr"].qoe

    def test_yuzu_beats_vivo(self, stable_results):
        assert stable_results["yuzu-sr"].qoe > stable_results["vivo"].qoe

    def test_everyone_beats_raw(self, stable_results):
        for name in ("volut", "yuzu-sr", "vivo"):
            assert stable_results[name].qoe > stable_results["raw"].qoe

    def test_bandwidth_reduction_headline(self, stable_results):
        """Paper: up to 70% bandwidth reduction vs raw streaming."""
        frac = stable_results["volut"].total_bytes / stable_results["raw"].total_bytes
        assert frac < 0.45  # >55% reduction on this link

    def test_volut_no_stalls_on_stable_link(self, stable_results):
        assert stable_results["volut"].stall_seconds == pytest.approx(0.0)


class TestLTEOrdering:
    """Paper §7.4 fluctuating-bandwidth findings on the low-rate trace."""

    def test_volut_beats_yuzu(self, lte_results):
        assert lte_results["volut"].qoe > lte_results["yuzu-sr"].qoe

    def test_volut_beats_discrete(self, lte_results):
        """Continuous ABR wins under tight fluctuating bandwidth (H1 vs H2)."""
        assert lte_results["volut"].qoe > lte_results["volut-discrete"].qoe

    def test_discrete_beats_yuzu_sr(self, lte_results):
        """H2 vs H3: with the same ABR, faster SR still wins."""
        assert lte_results["volut-discrete"].qoe >= lte_results["yuzu-sr"].qoe

    def test_volut_data_fraction(self, lte_results):
        """Paper: VoLUT consumes ~17% of the data (vs raw) under LTE."""
        frac = lte_results["volut"].total_bytes / lte_results["raw"].total_bytes
        assert frac < 0.30

    def test_yuzu_uses_more_data_than_volut(self, lte_results):
        assert lte_results["yuzu-sr"].total_bytes > lte_results["volut"].total_bytes
