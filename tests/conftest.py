"""Shared fixtures: small deterministic clouds, trained artifacts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pointcloud import PointCloud, make_video
from repro.sr import PositionEncoder


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_frame() -> PointCloud:
    """A 2K-point synthetic humanoid frame with colors."""
    return make_video("longdress", n_points=2000, n_frames=1).frame(0)


@pytest.fixture(scope="session")
def tiny_frame() -> PointCloud:
    """A 400-point frame for brute-force-comparable tests."""
    return make_video("loot", n_points=400, n_frames=1).frame(0)


@pytest.fixture(scope="session")
def random_cloud() -> PointCloud:
    g = np.random.default_rng(7)
    pos = g.uniform(-1, 1, (500, 3))
    col = g.integers(0, 256, (500, 3)).astype(np.uint8)
    return PointCloud(pos, col)


@pytest.fixture(scope="session")
def encoder() -> PositionEncoder:
    return PositionEncoder(rf_size=4, bins=32)


@pytest.fixture(scope="session")
def trained_artifacts():
    """Session-cached small trained net + LUT (shared by SR tests)."""
    from repro.experiments.artifacts import get_artifacts
    from repro.experiments.common import Scale

    scale = Scale(
        name="test",
        points_per_frame=1500,
        quality_frames=2,
        image_size=64,
        train_epochs=6,
        stream_seconds=20,
    )
    return get_artifacts(scale, rf_size=4, bins=32, seed=0)
