"""6DoF viewport trace tests."""

import numpy as np
import pytest

from repro.render import TRACE_KINDS, viewport_trace


class TestTraces:
    @pytest.mark.parametrize("kind", TRACE_KINDS)
    def test_all_kinds_produce_frames(self, kind):
        cams = viewport_trace(kind, 10)
        assert len(cams) == 10
        for c in cams:
            assert np.isfinite(c.position).all()

    def test_static_does_not_move(self):
        cams = viewport_trace("static", 5)
        first = cams[0].position
        assert all(c.position == first for c in cams)

    def test_orbit_keeps_distance(self):
        cams = viewport_trace("orbit", 60, center=(0, 1, 0), radius=3.0)
        for c in cams:
            d = np.linalg.norm(np.array(c.position) - [0, 1, 0])
            assert d == pytest.approx(3.0, abs=1e-9)

    def test_orbit_moves_continuously(self):
        cams = viewport_trace("orbit", 30)
        steps = [
            np.linalg.norm(np.array(a.position) - np.array(b.position))
            for a, b in zip(cams, cams[1:])
        ]
        assert max(steps) < 0.2
        assert min(steps) > 0.0

    def test_dolly_varies_distance(self):
        cams = viewport_trace("dolly", 200, radius=3.0)
        dists = [np.linalg.norm(np.array(c.position) - [0, 1, 0]) for c in cams]
        assert max(dists) - min(dists) > 0.5

    def test_jitter_adds_noise(self):
        smooth = viewport_trace("orbit", 10, jitter=0.0, seed=0)
        shaky = viewport_trace("orbit", 10, jitter=0.05, seed=0)
        diffs = [
            np.linalg.norm(np.array(a.position) - np.array(b.position))
            for a, b in zip(smooth, shaky)
        ]
        assert max(diffs) > 0.0

    def test_deterministic(self):
        a = viewport_trace("inspect", 10, jitter=0.02, seed=3)
        b = viewport_trace("inspect", 10, jitter=0.02, seed=3)
        assert all(x.position == y.position for x, y in zip(a, b))

    def test_cameras_look_at_center(self):
        cams = viewport_trace("orbit", 5, center=(1, 2, 3))
        assert all(c.target == (1, 2, 3) for c in cams)

    def test_validation(self):
        with pytest.raises(ValueError):
            viewport_trace("flythrough", 10)
        with pytest.raises(ValueError):
            viewport_trace("orbit", 0)

    def test_resolution_passthrough(self):
        cams = viewport_trace("orbit", 2, width=320, height=240)
        assert cams[0].width == 320 and cams[0].height == 240
