"""Camera projection tests."""

import numpy as np
import pytest

from repro.render import Camera


def default_cam(**kw):
    args = dict(position=(0, 0, -5), target=(0, 0, 0), width=100, height=100)
    args.update(kw)
    return Camera(**args)


class TestBasis:
    def test_orthonormal(self):
        cam = default_cam()
        r, u, f = cam.basis()
        for v in (r, u, f):
            assert np.linalg.norm(v) == pytest.approx(1.0)
        assert abs(r @ u) < 1e-12
        assert abs(r @ f) < 1e-12
        assert abs(u @ f) < 1e-12

    def test_forward_points_at_target(self):
        cam = default_cam()
        _, _, f = cam.basis()
        assert np.allclose(f, [0, 0, 1])

    def test_degenerate_up_recovered(self):
        cam = Camera(position=(0, -5, 0), target=(0, 0, 0), up=(0, 1, 0))
        r, u, f = cam.basis()
        assert np.isfinite(r).all() and np.linalg.norm(r) == pytest.approx(1.0)

    def test_position_equals_target_rejected(self):
        cam = Camera(position=(1, 1, 1), target=(1, 1, 1))
        with pytest.raises(ValueError):
            cam.basis()


class TestProjection:
    def test_center_point_at_image_center(self):
        cam = default_cam()
        xy, depth, valid = cam.project(np.array([[0.0, 0.0, 0.0]]))
        assert valid[0]
        assert xy[0, 0] == pytest.approx(50.0)
        assert xy[0, 1] == pytest.approx(50.0)
        assert depth[0] == pytest.approx(5.0)

    def test_point_behind_camera_invalid(self):
        cam = default_cam()
        _, _, valid = cam.project(np.array([[0.0, 0.0, -10.0]]))
        assert not valid[0]

    def test_point_outside_fov_invalid(self):
        cam = default_cam(fov_deg=30)
        _, _, valid = cam.project(np.array([[100.0, 0.0, 0.0]]))
        assert not valid[0]

    def test_handedness(self):
        """Looking down +z (camera at -z), world +x appears to the LEFT;
        looking down -z (camera at +z), world +x appears to the RIGHT."""
        from_neg_z = default_cam()
        xy, _, valid = from_neg_z.project(np.array([[1.0, 0, 0]]))
        assert valid.all() and xy[0, 0] < 50
        from_pos_z = default_cam(position=(0, 0, 5))
        xy, _, valid = from_pos_z.project(np.array([[1.0, 0, 0]]))
        assert valid.all() and xy[0, 0] > 50

    def test_up_offset_decreases_pixel_y(self):
        cam = default_cam()
        xy, _, _ = cam.project(np.array([[0, 1.0, 0]]))
        assert xy[0, 1] < 50

    def test_wider_fov_shrinks_projection(self):
        narrow = default_cam(fov_deg=30)
        wide = default_cam(fov_deg=90)
        p = np.array([[1.0, 0, 0]])
        x_n = narrow.project(p)[0][0, 0]
        x_w = wide.project(p)[0][0, 0]
        assert abs(x_n - 50) > abs(x_w - 50)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            default_cam().project(np.zeros((2, 2)))


class TestVisibility:
    def test_visible_mask_matches_project(self, small_frame):
        cam = Camera(
            position=(0, 1, 3), target=(0, 0.9, 0), width=64, height=64
        )
        mask = cam.visible_mask(small_frame.positions)
        _, _, valid = cam.project(small_frame.positions)
        assert np.array_equal(mask, valid)

    def test_fraction_reasonable_for_orbit_distance(self, small_frame):
        """At typical viewing distance a figure is mostly in frame."""
        c = small_frame.centroid()
        cam = Camera(position=tuple(c + [0, 0, 3]), target=tuple(c))
        frac = cam.visible_mask(small_frame.positions).mean()
        assert frac > 0.5

    def test_config_validation(self):
        with pytest.raises(ValueError):
            Camera(position=(0, 0, -1), target=(0, 0, 0), width=0)
        with pytest.raises(ValueError):
            Camera(position=(0, 0, -1), target=(0, 0, 0), fov_deg=200)
        with pytest.raises(ValueError):
            Camera(position=(0, 0, -1), target=(0, 0, 0), near=0)
