"""Point-splat rasterizer tests."""

import numpy as np
import pytest

from repro.pointcloud import PointCloud
from repro.render import Camera, render, render_depth


def cam(**kw):
    args = dict(position=(0, 0, -5), target=(0, 0, 0), width=64, height=64)
    args.update(kw)
    return Camera(**args)


class TestRender:
    def test_output_shape_dtype(self, small_frame):
        img = render(small_frame, cam())
        assert img.shape == (64, 64, 3)
        assert img.dtype == np.uint8

    def test_empty_scene_is_background(self):
        img = render(PointCloud.empty(), cam())
        assert (img == 0).all()

    def test_custom_background(self):
        img = render(PointCloud.empty(), cam(), background=np.array([10, 20, 30]))
        assert (img == [10, 20, 30]).all()

    def test_single_point_lands_at_center(self):
        pc = PointCloud(np.array([[0.0, 0.0, 0.0]]), np.array([[255, 0, 0]], dtype=np.uint8))
        img = render(pc, cam(), splat=1)
        assert img[32, 32].tolist() == [255, 0, 0]
        assert (img.reshape(-1, 3).sum(axis=1) > 0).sum() == 1

    def test_splat_size_covers_more_pixels(self):
        pc = PointCloud(np.array([[0.0, 0.0, 0.0]]), np.array([[255, 255, 255]], dtype=np.uint8))
        small = render(pc, cam(), splat=1)
        big = render(pc, cam(), splat=3)
        assert (big > 0).sum() > (small > 0).sum()

    def test_depth_test_front_wins(self):
        pc = PointCloud(
            np.array([[0.0, 0, 0], [0.0, 0, -2.0]]),  # second is nearer the camera
            np.array([[255, 0, 0], [0, 255, 0]], dtype=np.uint8),
        )
        img = render(pc, cam(), splat=1)
        # Both project to the image center; the nearer (green) point wins.
        assert img[32, 32].tolist() == [0, 255, 0]

    def test_colorless_cloud_depth_shaded(self):
        pc = PointCloud(np.array([[0.0, 0, 0], [0.5, 0, 2.0]]))
        img = render(pc, cam(), splat=1)
        lit = img[(img.sum(axis=2) > 0)]
        assert len(lit) == 2
        # Grey shading: channels equal per pixel.
        assert (lit[:, 0] == lit[:, 1]).all() and (lit[:, 1] == lit[:, 2]).all()

    def test_invalid_splat(self, small_frame):
        with pytest.raises(ValueError):
            render(small_frame, cam(), splat=0)

    def test_denser_cloud_changes_fewer_pixels_vs_gt(self, small_frame):
        """Sanity for the PSNR protocol: rendering a downsampled cloud
        differs from the ground-truth render more than rendering a less
        downsampled one."""
        from repro.metrics import image_psnr
        from repro.pointcloud import random_downsample_count

        c = cam(position=(0, 1, 3), target=(0, 0.9, 0))
        gt_img = render(small_frame, c)
        half = render(random_downsample_count(small_frame, len(small_frame) // 2, seed=0), c)
        tenth = render(random_downsample_count(small_frame, len(small_frame) // 10, seed=0), c)
        assert image_psnr(half, gt_img) > image_psnr(tenth, gt_img)


class TestRenderDepth:
    def test_depth_values(self):
        pc = PointCloud(np.array([[0.0, 0.0, 0.0]]))
        z = render_depth(pc, cam(), splat=1)
        assert z[32, 32] == pytest.approx(5.0)
        assert np.isinf(z[0, 0])

    def test_depth_monotone_with_distance(self):
        near = PointCloud(np.array([[0.0, 0.0, -1.0]]))
        far = PointCloud(np.array([[0.0, 0.0, 3.0]]))
        zn = render_depth(near, cam(), splat=1)[32, 32]
        zf = render_depth(far, cam(), splat=1)[32, 32]
        assert zn < zf
