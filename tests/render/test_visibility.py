"""Visibility measurement tests."""

import numpy as np
import pytest

from repro.pointcloud import PointCloud
from repro.render import (
    Camera,
    prediction_accuracy,
    trace_visibility,
    viewport_trace,
    visible_fraction,
)


def cam(pos=(0, 0, -5), target=(0, 0, 0)):
    return Camera(position=pos, target=target, width=64, height=64)


class TestVisibleFraction:
    def test_all_visible_sparse_plane(self):
        g = np.random.default_rng(0)
        pts = np.zeros((50, 3))
        pts[:, :2] = g.uniform(-1, 1, (50, 2))
        frac = visible_fraction(PointCloud(pts), cam())
        assert frac > 0.9

    def test_occluded_wall_hides_back_points(self):
        """A dense wall in front of another wall: back points invisible."""
        g = np.random.default_rng(1)
        front = np.zeros((1500, 3))
        front[:, :2] = g.uniform(-1, 1, (1500, 2))
        back = front.copy()
        back[:, 2] = 2.0  # behind the front wall from the camera at -z
        both = PointCloud(np.vstack([front, back]))
        frac = visible_fraction(both, cam())
        assert frac < 0.75  # back wall largely culled

    def test_out_of_frustum_invisible(self):
        pts = PointCloud(np.array([[100.0, 0, 0], [0.0, 0, 0]]))
        assert visible_fraction(pts, cam()) == pytest.approx(0.5)

    def test_humanoid_backside_culled(self, small_frame):
        """Roughly half a solid figure faces away from any one camera."""
        c = small_frame.centroid()
        frac = visible_fraction(
            small_frame, cam(pos=tuple(c + [0, 0, 2.5]), target=tuple(c))
        )
        assert 0.2 < frac < 0.8


class TestTraceVisibility:
    def test_stats_ordered(self, small_frame):
        cams = viewport_trace(
            "orbit", 6, center=tuple(small_frame.centroid()), radius=2.2,
            width=64, height=64,
        )
        stats = trace_visibility(small_frame, cams)
        assert stats["min"] <= stats["mean"] <= stats["max"]

    def test_empty_trace_rejected(self, small_frame):
        with pytest.raises(ValueError):
            trace_visibility(small_frame, [])


class TestPredictionAccuracy:
    def test_static_trace_perfect_prediction(self, small_frame):
        cams = viewport_trace(
            "static", 20, center=tuple(small_frame.centroid()), radius=2.2,
            width=64, height=64,
        )
        acc = prediction_accuracy(small_frame, cams, lookahead=10)
        assert acc == pytest.approx(1.0)

    def test_motion_degrades_prediction(self, small_frame):
        cams = viewport_trace(
            "orbit", 70, center=tuple(small_frame.centroid()), radius=2.2,
            width=64, height=64,
        )
        short = prediction_accuracy(small_frame, cams, lookahead=5)
        long = prediction_accuracy(small_frame, cams, lookahead=60)
        assert long < short <= 1.0

    def test_validation(self, small_frame):
        cams = viewport_trace(
            "orbit", 5, center=tuple(small_frame.centroid()), radius=2.2
        )
        with pytest.raises(ValueError):
            prediction_accuracy(small_frame, cams, lookahead=0)
        with pytest.raises(ValueError):
            prediction_accuracy(small_frame, cams, lookahead=10)


class TestVivoCalibration:
    def test_measured_parameters_plausible(self):
        from repro.systems import measure_vivo_parameters, vivo_system

        frac, acc = measure_vivo_parameters(
            n_points=1500, n_frames=40, lookahead=20
        )
        assert 0.15 < frac < 0.8
        assert 0.4 < acc <= 1.0
        # And the measured values drop into the ViVo factory.
        setup = vivo_system(visible_fraction=frac, prediction_accuracy=acc)
        assert setup.config.fetch_fraction == pytest.approx(frac)
