"""PLY / NPZ round-trip and format-robustness tests."""

import numpy as np
import pytest

from repro.pointcloud import (
    PointCloud,
    load,
    read_npz,
    read_ply,
    save,
    write_npz,
    write_ply,
)


@pytest.fixture
def colored(rng):
    pos = rng.uniform(-2, 2, (100, 3))
    col = rng.integers(0, 256, (100, 3)).astype(np.uint8)
    return PointCloud(pos, col)


@pytest.fixture
def plain(rng):
    return PointCloud(rng.uniform(-2, 2, (50, 3)))


class TestPLY:
    @pytest.mark.parametrize("binary", [True, False])
    def test_roundtrip_colored(self, colored, tmp_path, binary):
        p = tmp_path / "c.ply"
        write_ply(colored, p, binary=binary)
        back = read_ply(p)
        assert np.allclose(back.positions, colored.positions, atol=1e-4)
        assert (back.colors == colored.colors).all()

    @pytest.mark.parametrize("binary", [True, False])
    def test_roundtrip_plain(self, plain, tmp_path, binary):
        p = tmp_path / "p.ply"
        write_ply(plain, p, binary=binary)
        back = read_ply(p)
        assert not back.has_colors
        assert np.allclose(back.positions, plain.positions, atol=1e-4)

    def test_header_contents(self, colored, tmp_path):
        p = tmp_path / "h.ply"
        write_ply(colored, p, binary=False)
        head = p.read_bytes().split(b"end_header")[0].decode()
        assert "element vertex 100" in head
        assert "property uchar red" in head

    def test_rejects_non_ply(self, tmp_path):
        p = tmp_path / "bad.ply"
        p.write_bytes(b"obj\nnot a ply\n")
        with pytest.raises(ValueError, match="magic"):
            read_ply(p)

    def test_rejects_truncated_binary(self, colored, tmp_path):
        p = tmp_path / "t.ply"
        write_ply(colored, p, binary=True)
        data = p.read_bytes()
        p.write_bytes(data[: len(data) - 20])
        with pytest.raises(ValueError, match="truncated"):
            read_ply(p)

    def test_rejects_unknown_property(self, tmp_path):
        p = tmp_path / "u.ply"
        p.write_bytes(
            b"ply\nformat ascii 1.0\nelement vertex 1\n"
            b"property float x\nproperty float y\nproperty float z\n"
            b"property float confidence\nend_header\n0 0 0 1\n"
        )
        with pytest.raises(ValueError, match="unsupported"):
            read_ply(p)

    def test_empty_cloud(self, tmp_path):
        p = tmp_path / "e.ply"
        write_ply(PointCloud.empty(), p)
        assert len(read_ply(p)) == 0


class TestNPZ:
    def test_roundtrip_colored(self, colored, tmp_path):
        p = tmp_path / "c.npz"
        write_npz(colored, p)
        back = read_npz(p)
        assert np.allclose(back.positions, colored.positions, atol=1e-4)
        assert (back.colors == colored.colors).all()

    def test_roundtrip_plain(self, plain, tmp_path):
        p = tmp_path / "p.npz"
        write_npz(plain, p)
        assert not read_npz(p).has_colors


class TestDispatch:
    @pytest.mark.parametrize("name", ["x.ply", "x.npz"])
    def test_save_load_by_extension(self, colored, tmp_path, name):
        p = tmp_path / name
        save(colored, p)
        back = load(p)
        assert len(back) == len(colored)

    def test_save_unknown_extension(self, colored, tmp_path):
        with pytest.raises(ValueError, match="extension"):
            save(colored, tmp_path / "x.obj")

    def test_load_unknown_extension(self, tmp_path):
        with pytest.raises(ValueError, match="extension"):
            load(tmp_path / "x.obj")
