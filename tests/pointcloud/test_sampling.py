"""Downsampling strategy tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pointcloud import (
    PointCloud,
    farthest_point_sample,
    random_downsample,
    random_downsample_count,
    voxel_downsample,
)


class TestRandomDownsample:
    def test_ratio_zero_keeps_nothing(self, random_cloud):
        assert len(random_downsample(random_cloud, 0.0, seed=0)) == 0

    def test_ratio_one_keeps_everything(self, random_cloud):
        assert len(random_downsample(random_cloud, 1.0, seed=0)) == len(random_cloud)

    def test_expected_count(self, random_cloud):
        # Binomial mean with generous tolerance.
        out = random_downsample(random_cloud, 0.5, seed=1)
        assert 0.35 * len(random_cloud) <= len(out) <= 0.65 * len(random_cloud)

    def test_invalid_ratio(self, random_cloud):
        with pytest.raises(ValueError):
            random_downsample(random_cloud, 1.5)
        with pytest.raises(ValueError):
            random_downsample(random_cloud, -0.1)

    def test_deterministic_with_seed(self, random_cloud):
        a = random_downsample(random_cloud, 0.5, seed=42)
        b = random_downsample(random_cloud, 0.5, seed=42)
        assert np.array_equal(a.positions, b.positions)

    def test_colors_follow(self, random_cloud):
        out = random_downsample(random_cloud, 0.5, seed=3)
        assert out.has_colors


class TestRandomDownsampleCount:
    def test_exact_count(self, random_cloud):
        assert len(random_downsample_count(random_cloud, 123, seed=0)) == 123

    def test_count_above_n_returns_copy(self, random_cloud):
        out = random_downsample_count(random_cloud, 10_000, seed=0)
        assert len(out) == len(random_cloud)

    def test_negative_count_rejected(self, random_cloud):
        with pytest.raises(ValueError):
            random_downsample_count(random_cloud, -1)

    def test_subset_of_original(self, random_cloud):
        out = random_downsample_count(random_cloud, 50, seed=5)
        orig = {tuple(p) for p in random_cloud.positions}
        assert all(tuple(p) in orig for p in out.positions)


class TestVoxelDownsample:
    def test_reduces_points(self, random_cloud):
        out = voxel_downsample(random_cloud, 0.5)
        assert 0 < len(out) < len(random_cloud)

    def test_large_voxel_gives_single_centroid(self, random_cloud):
        out = voxel_downsample(random_cloud, 100.0)
        assert len(out) == 1
        assert np.allclose(out.positions[0], random_cloud.centroid(), atol=1e-9)

    def test_tiny_voxel_keeps_all(self, random_cloud):
        out = voxel_downsample(random_cloud, 1e-6)
        assert len(out) == len(random_cloud)

    def test_colors_averaged(self):
        pc = PointCloud(
            np.array([[0.0, 0, 0], [0.01, 0, 0]]),
            np.array([[0, 0, 0], [200, 100, 50]], dtype=np.uint8),
        )
        out = voxel_downsample(pc, 1.0)
        assert len(out) == 1
        assert out.colors[0].tolist() == [100, 50, 25]

    def test_invalid_size(self, random_cloud):
        with pytest.raises(ValueError):
            voxel_downsample(random_cloud, 0.0)

    def test_empty_cloud(self):
        assert len(voxel_downsample(PointCloud.empty(), 1.0)) == 0


class TestFPS:
    def test_exact_count(self, random_cloud):
        assert len(farthest_point_sample(random_cloud, 20, seed=0)) == 20

    def test_zero_target(self, random_cloud):
        assert len(farthest_point_sample(random_cloud, 0)) == 0

    def test_target_above_n(self, random_cloud):
        out = farthest_point_sample(random_cloud, 10_000)
        assert len(out) == len(random_cloud)

    def test_negative_rejected(self, random_cloud):
        with pytest.raises(ValueError):
            farthest_point_sample(random_cloud, -2)

    def test_spreads_better_than_random(self, small_frame):
        """FPS's defining property: larger minimum pairwise spacing."""
        from repro.spatial import kdtree_knn

        def min_spacing(cloud):
            _, d = kdtree_knn(cloud.positions, cloud.positions, 2)
            return d[:, 1].min()

        fps = farthest_point_sample(small_frame, 100, seed=0)
        rnd = random_downsample_count(small_frame, 100, seed=0)
        assert min_spacing(fps) > min_spacing(rnd)

    def test_deterministic(self, random_cloud):
        a = farthest_point_sample(random_cloud, 30, seed=9)
        b = farthest_point_sample(random_cloud, 30, seed=9)
        assert np.array_equal(a.positions, b.positions)


@given(n_target=st.integers(1, 60), seed=st.integers(0, 100))
@settings(max_examples=30, deadline=None)
def test_fps_returns_subset_without_duplicates(n_target, seed):
    g = np.random.default_rng(0)
    cloud = PointCloud(g.uniform(-1, 1, (80, 3)))
    out = farthest_point_sample(cloud, n_target, seed=seed)
    assert len(out) == min(n_target, 80)
    rows = {tuple(p) for p in out.positions}
    assert len(rows) == len(out)
