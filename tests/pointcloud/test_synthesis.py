"""Procedural content generator tests."""

import numpy as np
from repro.pointcloud.synthesis import (
    humanoid_frame,
    room_frame,
    sample_box,
    sample_cylinder,
    sample_plane,
    sample_sphere,
    sample_torus,
)


class TestPrimitives:
    def test_sphere_on_surface(self):
        pts = sample_sphere(500, radius=2.0, rng=0)
        r = np.linalg.norm(pts, axis=1)
        assert np.allclose(r, 2.0, atol=1e-9)

    def test_sphere_center_offset(self):
        pts = sample_sphere(500, radius=1.0, center=(5, 0, 0), rng=0)
        assert np.allclose(np.linalg.norm(pts - [5, 0, 0], axis=1), 1.0)

    def test_squashed_sphere(self):
        pts = sample_sphere(500, radius=1.0, rng=0, squash=(1.0, 0.5, 1.0))
        assert np.abs(pts[:, 1]).max() <= 0.5 + 1e-9

    def test_cylinder_radius_and_height(self):
        pts = sample_cylinder(500, radius=0.5, height=2.0, rng=0)
        r = np.linalg.norm(pts[:, [0, 2]], axis=1)
        assert np.allclose(r, 0.5, atol=1e-9)
        assert pts[:, 1].min() >= -1.0 - 1e-9 and pts[:, 1].max() <= 1.0 + 1e-9

    def test_cylinder_taper(self):
        pts = sample_cylinder(2000, radius=1.0, height=2.0, rng=0, taper=0.5)
        r = np.linalg.norm(pts[:, [0, 2]], axis=1)
        top = r[pts[:, 1] > 0.8]
        bottom = r[pts[:, 1] < -0.8]
        assert top.mean() < bottom.mean()

    def test_torus_on_surface(self):
        pts = sample_torus(400, major=1.0, minor=0.25, rng=0)
        # Distance from the ring centerline equals the minor radius.
        ring = np.linalg.norm(pts[:, [0, 2]], axis=1) - 1.0
        d = np.sqrt(ring ** 2 + pts[:, 1] ** 2)
        assert np.allclose(d, 0.25, atol=1e-9)

    def test_plane_extent_and_flatness(self):
        pts = sample_plane(300, size=(2.0, 4.0), normal_axis=1, rng=0)
        assert np.allclose(pts[:, 1], 0.0)
        assert np.abs(pts[:, 0]).max() <= 1.0 + 1e-9
        assert np.abs(pts[:, 2]).max() <= 2.0 + 1e-9

    def test_box_on_faces(self):
        pts = sample_box(600, size=(2.0, 2.0, 2.0), rng=0)
        on_face = np.isclose(np.abs(pts), 1.0, atol=1e-9).any(axis=1)
        assert on_face.all()

    def test_primitive_counts(self):
        assert len(sample_sphere(123, rng=0)) == 123
        assert len(sample_torus(77, 1.0, 0.2, rng=0)) == 77
        assert len(sample_box(50, (1, 1, 1), rng=0)) == 50


class TestFrames:
    def test_humanoid_point_budget(self):
        f = humanoid_frame(3000, t=0.0, seed=0)
        assert len(f) == 3000
        assert f.has_colors

    def test_humanoid_two_people(self):
        f = humanoid_frame(1000, t=0.0, seed=0, second_person_offset=1.0)
        assert len(f) == 2000
        # Two clusters along x.
        assert f.positions[:, 0].max() - f.positions[:, 0].min() > 0.8

    def test_humanoid_plausible_height(self):
        f = humanoid_frame(3000, t=0.0, seed=0)
        lo, hi = f.bounds()
        assert 1.3 < hi[1] - lo[1] < 2.2

    def test_temporal_coherence(self):
        """Adjacent frames move a little; quarter-cycle frames move more."""
        a = humanoid_frame(2000, t=0.0, seed=0)
        b = humanoid_frame(2000, t=1.0 / 30.0, seed=0)
        c = humanoid_frame(2000, t=0.5, seed=0)  # quarter of the 2 s sway
        d_ab = np.abs(a.positions - b.positions).mean()
        d_ac = np.abs(a.positions - c.positions).mean()
        assert d_ab < 0.05
        assert d_ac > d_ab

    def test_determinism(self):
        a = humanoid_frame(1000, t=0.5, seed=3)
        b = humanoid_frame(1000, t=0.5, seed=3)
        assert np.array_equal(a.positions, b.positions)
        assert np.array_equal(a.colors, b.colors)

    def test_room_budget_and_colors(self):
        f = room_frame(2500, t=0.0, seed=0)
        assert len(f) == 2500
        assert f.has_colors

    def test_room_mostly_static(self):
        a = room_frame(2000, t=0.0, seed=0)
        b = room_frame(2000, t=0.1, seed=0)
        # The static majority of points should be identical.
        same = np.isclose(a.positions, b.positions).all(axis=1).mean()
        assert same > 0.7

    def test_density_nonuniform(self):
        """Captured-like clouds have uneven density (head vs torso)."""
        from repro.metrics import local_density_cv

        f = humanoid_frame(3000, t=0.0, seed=0)
        assert local_density_cv(f) > 0.5


class TestTexture:
    def test_color_smoothness(self):
        """Nearby points get similar colors (needed for NN colorization)."""
        from repro.spatial import kdtree_knn

        f = humanoid_frame(2000, t=0.0, seed=0)
        idx, dist = kdtree_knn(f.positions, f.positions, 2)
        nn = idx[:, 1]
        close = dist[:, 1] < 0.02
        dc = np.abs(
            f.colors[close].astype(int) - f.colors[nn[close]].astype(int)
        ).mean()
        assert dc < 30  # out of 255

    def test_palette_changes_colors(self):
        a = humanoid_frame(500, t=0.0, seed=0, palette_seed=1)
        b = humanoid_frame(500, t=0.0, seed=0, palette_seed=2)
        assert not np.array_equal(a.colors, b.colors)
