"""Unit tests for the PointCloud container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.pointcloud import PointCloud


def make(pos, col=None):
    return PointCloud(np.asarray(pos, dtype=float), col)


class TestConstruction:
    def test_basic(self):
        pc = make([[0, 0, 0], [1, 2, 3]])
        assert len(pc) == 2
        assert pc.n_points == 2
        assert not pc.has_colors

    def test_positions_coerced_to_float64(self):
        pc = PointCloud(np.array([[1, 2, 3]], dtype=np.float32))
        assert pc.positions.dtype == np.float64

    def test_colors_uint8_passthrough(self):
        col = np.array([[1, 2, 3]], dtype=np.uint8)
        pc = PointCloud(np.zeros((1, 3)), col)
        assert pc.colors.dtype == np.uint8
        assert (pc.colors == col).all()

    def test_float_colors_interpreted_as_unit_range(self):
        pc = PointCloud(np.zeros((2, 3)), np.array([[0.0, 0.5, 1.0], [1.0, 0.0, 0.25]]))
        assert pc.colors.dtype == np.uint8
        assert pc.colors[0].tolist() == [0, 128, 255]

    def test_int_colors_clipped(self):
        pc = PointCloud(np.zeros((1, 3)), np.array([[300, -5, 128]]))
        assert pc.colors[0].tolist() == [255, 0, 128]

    def test_rejects_wrong_position_shape(self):
        with pytest.raises(ValueError, match="positions"):
            PointCloud(np.zeros((3, 2)))

    def test_rejects_nonfinite_positions(self):
        with pytest.raises(ValueError, match="finite"):
            PointCloud(np.array([[np.nan, 0, 0]]))

    def test_rejects_mismatched_color_count(self):
        with pytest.raises(ValueError, match="does not match"):
            PointCloud(np.zeros((2, 3)), np.zeros((3, 3), dtype=np.uint8))

    def test_rejects_wrong_color_shape(self):
        with pytest.raises(ValueError, match="colors"):
            PointCloud(np.zeros((2, 3)), np.zeros((2, 4), dtype=np.uint8))

    def test_empty(self):
        pc = PointCloud.empty()
        assert len(pc) == 0 and not pc.has_colors
        pc2 = PointCloud.empty(with_colors=True)
        assert pc2.has_colors and len(pc2) == 0


class TestGeometry:
    def test_bounds(self):
        pc = make([[0, 0, 0], [1, 2, 3], [-1, 0, 1]])
        lo, hi = pc.bounds()
        assert lo.tolist() == [-1, 0, 0]
        assert hi.tolist() == [1, 2, 3]

    def test_bounds_empty(self):
        lo, hi = PointCloud.empty().bounds()
        assert lo.tolist() == [0, 0, 0] and hi.tolist() == [0, 0, 0]

    def test_centroid(self):
        pc = make([[0, 0, 0], [2, 2, 2]])
        assert pc.centroid().tolist() == [1, 1, 1]

    def test_centroid_empty(self):
        assert PointCloud.empty().centroid().tolist() == [0, 0, 0]

    def test_extent(self):
        pc = make([[0, 0, 0], [3, 4, 0]])
        assert pc.extent() == pytest.approx(5.0)


class TestTransforms:
    def test_select_by_indices(self, random_cloud):
        sub = random_cloud.select(np.array([0, 2, 4]))
        assert len(sub) == 3
        assert np.allclose(sub.positions[1], random_cloud.positions[2])
        assert (sub.colors[2] == random_cloud.colors[4]).all()

    def test_select_by_mask(self, random_cloud):
        mask = random_cloud.positions[:, 0] > 0
        sub = random_cloud.select(mask)
        assert len(sub) == mask.sum()

    def test_translate(self):
        pc = make([[1, 1, 1]]).translate([1, -1, 0.5])
        assert pc.positions[0].tolist() == [2, 0, 1.5]

    def test_scale_about_centroid(self):
        pc = make([[0, 0, 0], [2, 0, 0]]).scale(2.0)
        assert pc.positions[0].tolist() == [-1, 0, 0]
        assert pc.positions[1].tolist() == [3, 0, 0]

    def test_scale_about_custom_center(self):
        pc = make([[1, 0, 0]]).scale(3.0, center=[0, 0, 0])
        assert pc.positions[0].tolist() == [3, 0, 0]

    def test_concat_keeps_colors_when_both_have(self, random_cloud):
        both = random_cloud.concat(random_cloud)
        assert len(both) == 2 * len(random_cloud)
        assert both.has_colors

    def test_concat_drops_colors_on_mismatch(self, random_cloud):
        plain = PointCloud(np.zeros((2, 3)))
        assert not random_cloud.concat(plain).has_colors

    def test_copy_is_deep(self, random_cloud):
        cp = random_cloud.copy()
        cp.positions[0] = 99.0
        assert random_cloud.positions[0, 0] != 99.0

    def test_with_positions(self, random_cloud):
        new = random_cloud.positions + 1.0
        moved = random_cloud.with_positions(new)
        assert np.allclose(moved.positions, new)
        assert (moved.colors == random_cloud.colors).all()

    def test_with_positions_rejects_count_change(self, random_cloud):
        with pytest.raises(ValueError, match="points"):
            random_cloud.with_positions(np.zeros((3, 3)))


class TestNbytes:
    def test_wire_size_with_colors(self, random_cloud):
        assert random_cloud.nbytes() == len(random_cloud) * 15

    def test_wire_size_without_colors(self):
        pc = PointCloud(np.zeros((10, 3)))
        assert pc.nbytes() == 10 * 12

    def test_custom_precision(self, random_cloud):
        assert random_cloud.nbytes(position_bytes=2) == len(random_cloud) * 9


@given(
    pos=arrays(
        np.float64,
        st.tuples(st.integers(1, 40), st.just(3)),
        elements=st.floats(-100, 100, allow_nan=False),
    )
)
@settings(max_examples=40, deadline=None)
def test_roundtrip_select_all_is_identity(pos):
    pc = PointCloud(pos)
    sub = pc.select(np.arange(len(pc)))
    assert np.array_equal(sub.positions, pc.positions)


@given(
    pos=arrays(
        np.float64,
        st.tuples(st.integers(2, 40), st.just(3)),
        elements=st.floats(-100, 100, allow_nan=False),
    ),
    factor=st.floats(0.1, 10.0),
)
@settings(max_examples=40, deadline=None)
def test_scale_preserves_centroid(pos, factor):
    pc = PointCloud(pos)
    scaled = pc.scale(factor)
    assert np.allclose(scaled.centroid(), pc.centroid(), atol=1e-9)
