"""Transform tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pointcloud import (
    PointCloud,
    jitter,
    normalize_unit_sphere,
    random_rigid_transform,
    rotate,
    rotation_matrix,
)


class TestRotationMatrix:
    def test_orthonormal(self):
        r = rotation_matrix([1, 2, 3], 0.7)
        assert np.allclose(r @ r.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(r) == pytest.approx(1.0)

    def test_identity_at_zero_angle(self):
        assert np.allclose(rotation_matrix([0, 1, 0], 0.0), np.eye(3))

    def test_quarter_turn_about_z(self):
        r = rotation_matrix([0, 0, 1], np.pi / 2)
        assert np.allclose(r @ [1, 0, 0], [0, 1, 0], atol=1e-12)

    def test_zero_axis_rejected(self):
        with pytest.raises(ValueError):
            rotation_matrix([0, 0, 0], 1.0)


class TestRotate:
    def test_preserves_pairwise_distances(self, random_cloud):
        rot = rotate(random_cloud, [1, 1, 0], 1.2)
        d_before = np.linalg.norm(
            random_cloud.positions[0] - random_cloud.positions[1]
        )
        d_after = np.linalg.norm(rot.positions[0] - rot.positions[1])
        assert d_after == pytest.approx(d_before)

    def test_centroid_fixed_by_default(self, random_cloud):
        rot = rotate(random_cloud, [0, 1, 0], 2.0)
        assert np.allclose(rot.centroid(), random_cloud.centroid(), atol=1e-9)

    def test_custom_center(self):
        pc = PointCloud(np.array([[1.0, 0, 0]]))
        rot = rotate(pc, [0, 0, 1], np.pi, center=[0, 0, 0])
        assert np.allclose(rot.positions[0], [-1, 0, 0], atol=1e-12)

    def test_colors_carried(self, random_cloud):
        assert rotate(random_cloud, [1, 0, 0], 0.5).has_colors


class TestJitter:
    def test_zero_sigma_identity(self, random_cloud):
        out = jitter(random_cloud, 0.0, seed=0)
        assert np.array_equal(out.positions, random_cloud.positions)

    def test_noise_magnitude(self, random_cloud):
        out = jitter(random_cloud, 0.01, seed=0)
        d = np.abs(out.positions - random_cloud.positions)
        assert 0 < d.mean() < 0.05

    def test_clip_bounds_displacement(self, random_cloud):
        out = jitter(random_cloud, 1.0, seed=0, clip=0.05)
        d = np.abs(out.positions - random_cloud.positions)
        assert d.max() <= 0.05 + 1e-12

    def test_validation(self, random_cloud):
        with pytest.raises(ValueError):
            jitter(random_cloud, -1.0)
        with pytest.raises(ValueError):
            jitter(random_cloud, 0.1, clip=0.0)


class TestNormalizeUnitSphere:
    def test_fits_unit_sphere(self, random_cloud):
        norm, c, s = normalize_unit_sphere(random_cloud)
        assert np.linalg.norm(norm.positions, axis=1).max() == pytest.approx(1.0)
        assert np.allclose(norm.centroid(), 0.0, atol=1e-9)

    def test_invertible(self, random_cloud):
        norm, c, s = normalize_unit_sphere(random_cloud)
        restored = norm.positions * s + c
        assert np.allclose(restored, random_cloud.positions)

    def test_empty_cloud(self):
        norm, c, s = normalize_unit_sphere(PointCloud.empty())
        assert len(norm) == 0 and s == 1.0

    def test_single_point(self):
        pc = PointCloud(np.array([[3.0, 4.0, 5.0]]))
        norm, c, s = normalize_unit_sphere(pc)
        assert np.allclose(norm.positions, 0.0)


class TestRandomRigid:
    def test_preserves_shape(self, random_cloud):
        out = random_rigid_transform(random_cloud, seed=4)
        d_before = np.linalg.norm(
            random_cloud.positions[2] - random_cloud.positions[7]
        )
        d_after = np.linalg.norm(out.positions[2] - out.positions[7])
        assert d_after == pytest.approx(d_before)

    def test_deterministic(self, random_cloud):
        a = random_rigid_transform(random_cloud, seed=5)
        b = random_rigid_transform(random_cloud, seed=5)
        assert np.allclose(a.positions, b.positions)


@given(angle=st.floats(-np.pi, np.pi), seed=st.integers(0, 50))
@settings(max_examples=25, deadline=None)
def test_encoding_invariant_under_rotation(angle, seed):
    """The position encoding is *not* rotation invariant (only translation
    and scale), but the neighborhood radius is — a property the refinement
    math depends on."""
    from repro.sr import PositionEncoder

    g = np.random.default_rng(seed)
    pc = PointCloud(g.uniform(-1, 1, (12, 3)))
    rot = rotate(pc, [0, 1, 0], angle, center=[0, 0, 0])
    enc = PositionEncoder(rf_size=4, bins=16)
    e1 = enc.encode(pc.positions[:3], pc.positions[3:12].reshape(3, 3, 3))
    e2 = enc.encode(rot.positions[:3], rot.positions[3:12].reshape(3, 3, 3))
    assert np.allclose(e1.radius, e2.radius, atol=1e-9)
