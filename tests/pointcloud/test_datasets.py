"""VolumetricVideo dataset tests."""

import numpy as np
import pytest

from repro.pointcloud import PAPER_VIDEOS, VIDEO_NAMES, VolumetricVideo, make_video


class TestMakeVideo:
    @pytest.mark.parametrize("name", VIDEO_NAMES)
    def test_all_videos_construct(self, name):
        v = make_video(name, n_points=500, n_frames=3)
        f = v.frame(0)
        assert len(f) > 0
        assert f.has_colors

    def test_unknown_video(self):
        with pytest.raises(ValueError, match="unknown video"):
            make_video("nonexistent")

    def test_paper_defaults(self):
        v = make_video("haggle", n_points=400, n_frames=None)
        assert v.n_frames == PAPER_VIDEOS["haggle"]["frames"]
        assert v.fps == 30

    def test_loops_config(self):
        v = make_video("longdress", n_points=300, n_frames=10)
        assert v.loops == 10
        assert v.n_playback_frames == 100

    def test_haggle_has_two_figures(self):
        f = make_video("haggle", n_points=1000, n_frames=1).frame(0)
        span = f.positions[:, 0].max() - f.positions[:, 0].min()
        assert span > 0.8


class TestVolumetricVideo:
    def _video(self, n_frames=5, loops=2):
        return VolumetricVideo(
            name="t",
            n_frames=n_frames,
            fps=30,
            frame_fn=lambda i: make_video("loot", n_points=200, n_frames=1)
            .frame(0)
            .translate([i, 0, 0]),
            loops=loops,
            cache_size=3,
        )

    def test_len_counts_loops(self):
        assert len(self._video()) == 10

    def test_duration(self):
        assert self._video().duration == pytest.approx(10 / 30)

    def test_loop_wraps_to_base_frame(self):
        v = self._video()
        a = v.frame(1)
        b = v.frame(6)  # 6 % 5 == 1
        assert np.array_equal(a.positions, b.positions)

    def test_out_of_range(self):
        v = self._video()
        with pytest.raises(IndexError):
            v.frame(10)
        with pytest.raises(IndexError):
            v.frame(-1)

    def test_cache_eviction(self):
        calls = []

        def fn(i):
            calls.append(i)
            return make_video("loot", n_points=100, n_frames=1).frame(0)

        v = VolumetricVideo(name="t", n_frames=10, fps=30, frame_fn=fn, cache_size=2)
        v.frame(0); v.frame(1); v.frame(0)   # hit
        assert calls == [0, 1]
        v.frame(2)                            # evicts 1 (LRU)
        v.frame(1)                            # regenerated
        assert calls == [0, 1, 2, 1]

    def test_iteration(self):
        v = self._video(n_frames=3, loops=1)
        assert sum(1 for _ in v) == 3

    def test_frame_time(self):
        assert self._video().frame_time(30) == pytest.approx(1.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            VolumetricVideo(name="x", n_frames=0, fps=30, frame_fn=lambda i: None)
        with pytest.raises(ValueError):
            VolumetricVideo(name="x", n_frames=1, fps=0, frame_fn=lambda i: None)
        with pytest.raises(ValueError):
            VolumetricVideo(name="x", n_frames=1, fps=30, frame_fn=lambda i: None, loops=0)
