"""Colorization tests: parent reuse vs fresh nearest search."""

import numpy as np
from repro.pointcloud import PointCloud
from repro.sr import colorize_by_nearest, colorize_by_parent, interpolate


class TestColorizeByParent:
    def test_full_color_output(self, small_frame):
        interp = interpolate(small_frame, 2.0, seed=0)
        out = colorize_by_parent(small_frame, interp)
        assert out.has_colors
        assert len(out) == len(interp.upsampled)

    def test_source_colors_preserved(self, small_frame):
        interp = interpolate(small_frame, 2.0, seed=0)
        out = colorize_by_parent(small_frame, interp)
        assert (out.colors[: interp.n_source] == small_frame.colors).all()

    def test_new_color_is_a_parent_color(self, small_frame):
        interp = interpolate(small_frame, 2.0, seed=0)
        out = colorize_by_parent(small_frame, interp)
        new = out.colors[interp.n_source :]
        ca = small_frame.colors[interp.parent_a]
        cb = small_frame.colors[interp.parent_b]
        matches = ((new == ca).all(axis=1)) | ((new == cb).all(axis=1))
        assert matches.all()

    def test_picks_nearer_parent(self):
        src = PointCloud(
            np.array([[0.0, 0, 0], [10.0, 0, 0], [0.1, 0, 0]]),
            np.array([[255, 0, 0], [0, 255, 0], [0, 0, 255]], dtype=np.uint8),
        )
        interp = interpolate(src, 2.0, k=1, dilation=1, seed=0)
        out = colorize_by_parent(src, interp)
        new_pos = interp.new_positions
        new_col = out.colors[interp.n_source :]
        for pos, col, pa, pb in zip(new_pos, new_col, interp.parent_a, interp.parent_b):
            da = np.linalg.norm(pos - src.positions[pa])
            db = np.linalg.norm(pos - src.positions[pb])
            expect = src.colors[pa] if da <= db else src.colors[pb]
            assert (col == expect).all()

    def test_colorless_source_stays_colorless(self, small_frame):
        plain = PointCloud(small_frame.positions)
        interp = interpolate(plain, 2.0, seed=0)
        out = colorize_by_parent(plain, interp)
        assert not out.has_colors


class TestColorizeByNearest:
    def test_close_to_exact_search_in_color_space(self, small_frame):
        """With dilation, a midpoint's nearest original point is often a
        non-parent sitting between the (far-apart) parents, so reuse picks a
        different *point* — but on smooth textures the picked parent's color
        is close to the exact nearest point's color, which is what matters
        perceptually."""
        interp = interpolate(small_frame, 2.0, seed=0)
        fast = colorize_by_parent(small_frame, interp)
        exact = colorize_by_nearest(small_frame, interp, backend="kdtree")
        diff = np.abs(
            fast.colors[interp.n_source :].astype(int)
            - exact.colors[interp.n_source :].astype(int)
        ).mean()
        assert diff < 25  # out of 255

    def test_identical_without_dilation_mostly(self, small_frame):
        """Without dilation, parents are the nearest points — reuse and the
        exact search pick the same color for the large majority."""
        interp = interpolate(small_frame, 2.0, k=2, dilation=1, seed=0)
        fast = colorize_by_parent(small_frame, interp)
        exact = colorize_by_nearest(small_frame, interp, backend="kdtree")
        agree = (
            (fast.colors[interp.n_source :] == exact.colors[interp.n_source :])
            .all(axis=1)
            .mean()
        )
        assert agree > 0.6

    def test_exact_nearest_color(self, small_frame):
        from repro.spatial import kdtree_knn

        interp = interpolate(small_frame, 1.5, seed=1)
        out = colorize_by_nearest(small_frame, interp, backend="kdtree")
        idx, _ = kdtree_knn(small_frame.positions, interp.new_positions, 1)
        assert (out.colors[interp.n_source :] == small_frame.colors[idx[:, 0]]).all()

    def test_colorless_source(self, small_frame):
        plain = PointCloud(small_frame.positions)
        interp = interpolate(plain, 2.0, seed=0)
        assert not colorize_by_nearest(plain, interp).has_colors
