"""Dilated interpolation tests (Eq. 1 semantics, ratios, backends)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pointcloud import PointCloud
from repro.sr import interpolate, naive_knn_interpolate


class TestRatios:
    def test_integer_ratio_point_count(self, small_frame):
        r = interpolate(small_frame, 2.0, seed=0)
        assert len(r.upsampled) == 2 * len(small_frame)
        assert r.n_new == len(small_frame)

    def test_fractional_ratio(self, small_frame):
        r = interpolate(small_frame, 1.37, seed=0)
        expected = len(small_frame) + round(0.37 * len(small_frame))
        assert len(r.upsampled) == expected

    def test_ratio_one_is_identity_count(self, small_frame):
        r = interpolate(small_frame, 1.0, seed=0)
        assert len(r.upsampled) == len(small_frame)
        assert r.n_new == 0

    def test_large_ratio(self, tiny_frame):
        r = interpolate(tiny_frame, 8.0, seed=0)
        assert len(r.upsampled) == 8 * len(tiny_frame)

    def test_ratio_below_one_rejected(self, small_frame):
        with pytest.raises(ValueError):
            interpolate(small_frame, 0.5)

    def test_continuous_ratios_all_work(self, tiny_frame):
        """The property the continuous ABR depends on: any ratio ≥ 1."""
        for ratio in (1.01, 1.5, 2.25, 3.7, 5.55):
            r = interpolate(tiny_frame, ratio, seed=0)
            assert len(r.upsampled) == len(tiny_frame) + round(
                (ratio - 1) * len(tiny_frame)
            )


class TestGeometry:
    def test_new_points_are_parent_midpoints(self, small_frame):
        r = interpolate(small_frame, 2.0, seed=0)
        mid = 0.5 * (
            small_frame.positions[r.parent_a] + small_frame.positions[r.parent_b]
        )
        assert np.allclose(r.new_positions, mid)

    def test_source_points_preserved(self, small_frame):
        r = interpolate(small_frame, 2.0, seed=0)
        assert np.array_equal(
            r.upsampled.positions[: r.n_source], small_frame.positions
        )

    def test_parents_within_dilated_neighborhood(self, small_frame):
        k, d = 4, 2
        r = interpolate(small_frame, 2.0, k=k, dilation=d, seed=0)
        # Every partner must appear in the source's k*d neighbor list.
        in_rf = (
            r.neighbor_idx[r.parent_a] == r.parent_b[:, None]
        ).any(axis=1)
        assert in_rf.all()

    def test_neighbor_lists_exclude_self(self, small_frame):
        r = interpolate(small_frame, 2.0, k=4, dilation=2, seed=0)
        n = r.n_source
        self_hits = (r.neighbor_idx == np.arange(n)[:, None]).any()
        assert not self_hits

    def test_sources_cycle_through_all_points(self, small_frame):
        """Integer ratios touch every source point equally often."""
        r = interpolate(small_frame, 3.0, seed=0)
        counts = np.bincount(r.parent_a, minlength=len(small_frame))
        assert (counts == 2).all()


class TestBackends:
    @pytest.mark.parametrize("backend", ["brute", "kdtree", "octree"])
    def test_backends_equivalent(self, tiny_frame, backend):
        """Same seed + exact backends → identical interpolation."""
        ref = interpolate(tiny_frame, 2.0, backend="kdtree", seed=9)
        out = interpolate(tiny_frame, 2.0, backend=backend, seed=9)
        assert np.allclose(
            np.sort(out.new_positions, axis=0),
            np.sort(ref.new_positions, axis=0),
            atol=1e-9,
        )

    def test_timings_recorded(self, tiny_frame):
        r = interpolate(tiny_frame, 2.0, seed=0)
        assert r.knn_seconds > 0
        assert r.assembly_seconds > 0


class TestDilation:
    def test_dilation_spreads_points(self, small_frame):
        """Dilation's purpose: more uniform output (lower density CV)."""
        from repro.metrics import local_density_cv

        base = interpolate(small_frame, 2.0, k=4, dilation=1, seed=0)
        dil = interpolate(small_frame, 2.0, k=4, dilation=3, seed=0)
        assert local_density_cv(dil.upsampled) < local_density_cv(base.upsampled)

    def test_invalid_params(self, small_frame):
        with pytest.raises(ValueError):
            interpolate(small_frame, 2.0, k=0)
        with pytest.raises(ValueError):
            interpolate(small_frame, 2.0, dilation=0)

    def test_cloud_too_small(self):
        pc = PointCloud(np.random.default_rng(0).uniform(0, 1, (5, 3)))
        with pytest.raises(ValueError, match="needs"):
            interpolate(pc, 2.0, k=4, dilation=2)

    def test_naive_helper_uses_d1(self, tiny_frame):
        r = naive_knn_interpolate(tiny_frame, 2.0, k=4, seed=0)
        assert r.neighbor_idx.shape[1] == 4  # k * 1


@given(ratio=st.floats(1.0, 4.0), seed=st.integers(0, 50))
@settings(max_examples=20, deadline=None)
def test_point_count_always_matches_ratio(ratio, seed):
    g = np.random.default_rng(3)
    cloud = PointCloud(g.uniform(-1, 1, (100, 3)))
    r = interpolate(cloud, ratio, seed=seed)
    assert len(r.upsampled) == 100 + round((ratio - 1) * 100)
    # Parents always index the source cloud.
    if r.n_new:
        assert r.parent_a.max() < 100 and r.parent_b.max() < 100
