"""YuZu direct-SR model training tests."""

import pytest

from repro.metrics import p2p_distances
from repro.pointcloud import make_video, random_downsample_count
from repro.sr import PositionEncoder, YuzuSRModel, train_yuzu_model


@pytest.fixture(scope="module")
def frames():
    v = make_video("longdress", n_points=1200, n_frames=2)
    return [v.frame(i) for i in range(2)]


class TestTrainYuzu:
    def test_trained_model_beats_untrained(self, frames):
        enc = PositionEncoder(rf_size=4, bins=32)
        trained = train_yuzu_model(
            frames, ratio=2, encoder=enc, hidden=(32, 32), epochs=12, seed=0
        )
        untrained = YuzuSRModel(ratio=2, encoder=enc, hidden=(32, 32), seed=123)

        gt = frames[0]
        low = random_downsample_count(gt, 600, seed=1)
        out_t = trained.upsample(low).cloud
        out_u = untrained.upsample(low).cloud
        # The trained model's children land nearer the true surface.
        assert p2p_distances(out_t, gt).mean() < p2p_distances(out_u, gt).mean()

    def test_output_ratio(self, frames):
        model = train_yuzu_model(
            frames, ratio=3, hidden=(16, 16), epochs=3, seed=0
        )
        low = random_downsample_count(frames[0], 300, seed=2)
        assert len(model.upsample(low).cloud) == 3 * len(low)

    def test_colors_replicated(self, frames):
        model = train_yuzu_model(frames, ratio=2, hidden=(16, 16), epochs=2, seed=0)
        low = random_downsample_count(frames[0], 300, seed=3)
        out = model.upsample(low).cloud
        assert out.has_colors
        assert (out.colors[:2] == low.colors[0]).all()  # children share parent color

    def test_stage_times(self, frames):
        model = train_yuzu_model(frames, ratio=2, hidden=(16, 16), epochs=2, seed=0)
        low = random_downsample_count(frames[0], 300, seed=4)
        r = model.upsample(low)
        assert r.times.knn > 0
        assert r.times.refinement > 0  # the network inference stage
