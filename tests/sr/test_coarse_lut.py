"""Coarse (per-point-code) LUT tests — the paper's Table-1 indexing."""

import numpy as np
import pytest

from repro.nn import MLP
from repro.sr import (
    CoarseHashedLUT,
    LUTRefiner,
    PositionEncoder,
    build_coarse_lut,
)


@pytest.fixture
def enc128():
    return PositionEncoder(rf_size=4, bins=128)


def random_normalized(m, rf=4, seed=0):
    g = np.random.default_rng(seed)
    nb = g.uniform(-1, 1, (m, rf - 1, 3))
    # Scale so the farthest neighbor has unit norm, like real encodings.
    r = np.linalg.norm(nb, axis=2).max(axis=1, keepdims=True)
    nb = nb / r[..., None]
    return np.concatenate([np.zeros((m, 1, 3)), nb], axis=1)


class TestPointCodes:
    def test_grid_size(self, enc128):
        assert enc128.point_grid == 5  # floor(128^(1/3))

    def test_codes_in_range(self, enc128):
        norm = random_normalized(200, seed=1)
        codes = enc128.point_codes(norm)
        assert codes.min() >= 0
        assert codes.max() < 5 ** 3

    def test_target_code_constant(self, enc128):
        norm = random_normalized(50, seed=2)
        codes = enc128.point_codes(norm)
        assert len(np.unique(codes[:, 0])) == 1

    def test_key_space_matches_table1_scale(self, enc128):
        lut = CoarseHashedLUT(enc128)
        # (5^3)^3 ≈ 1.95M — coverable by real content, unlike 128^9.
        assert lut.key_space() == (5 ** 3) ** 3

    def test_cell_centers_requantize_to_same_key(self, enc128):
        norm = random_normalized(100, seed=3)
        keys = enc128.pack_keys_coarse(norm)
        centers = enc128.coarse_cell_centers(keys).reshape(len(keys), 3, 3)
        with_target = np.concatenate(
            [np.zeros((len(keys), 1, 3)), centers], axis=1
        )
        keys2 = enc128.pack_keys_coarse(with_target)
        assert np.array_equal(keys, keys2)


class TestCoarseLUT:
    def _net(self, enc, seed=0):
        return MLP((enc.rf_size * 3, 12, 3), output_activation="tanh", seed=seed)

    def test_populate_and_hit(self, enc128):
        net = self._net(enc128)
        norm = random_normalized(300, seed=4)
        lut = build_coarse_lut(net, enc128, norm)
        out = lut.lookup_normalized(norm)
        assert lut.stats.hits == 300
        assert out.shape == (300, 3)

    def test_generalizes_better_than_fine_keys(self, enc128):
        """The design reason for coarse codes: on *surface content* (whose
        local configurations repeat), unseen-video lookups actually hit;
        fine (n·3)-dim keys at b=128 essentially never do."""
        from repro.pointcloud import make_video, random_downsample_count
        from repro.sr import (
            HashedLUT,
            gather_refinement_neighborhoods,
            interpolate,
        )

        net = self._net(enc128)

        def neighborhoods(video_name, seed):
            gt = make_video(video_name, n_points=3000, n_frames=1).frame(0)
            low = random_downsample_count(gt, 1500, seed=seed)
            interp = interpolate(low, 2.0, seed=seed)
            nb = gather_refinement_neighborhoods(low.positions, interp, 4)
            return enc128.encode(interp.new_positions, nb)

        # Several training passes approximate the paper's multi-density,
        # multi-frame training set (coverage grows with training data).
        train = np.vstack(
            [neighborhoods("longdress", s).normalized for s in range(4)]
        )
        test = neighborhoods("loot", 99)  # different content entirely

        coarse = build_coarse_lut(net, enc128, train)
        coarse.lookup_normalized(test.normalized)

        fine = HashedLUT(enc128, fallback="zero")
        q = np.floor((train + 1.0) * 0.5 * 127).astype(np.int16)
        fine.populate_from_network(enc128.pack_keys(q), net)
        fine.lookup(test.bins)

        assert coarse.stats.hit_rate > 0.15
        assert coarse.stats.hit_rate > fine.stats.hit_rate + 0.1

    def test_refiner_dispatches_to_normalized(self, enc128, small_frame):
        from repro.sr import gather_refinement_neighborhoods, interpolate

        net = self._net(enc128)
        interp = interpolate(small_frame, 2.0, seed=0)
        nb = gather_refinement_neighborhoods(small_frame.positions, interp, 4)
        e = enc128.encode(interp.new_positions, nb)
        lut = build_coarse_lut(net, enc128, e.normalized)
        out = LUTRefiner(lut).refine(interp.new_positions, nb)
        assert out.shape == interp.new_positions.shape
        assert lut.stats.total > 0

    def test_values_track_network(self, enc128):
        net = self._net(enc128, seed=7)
        norm = random_normalized(400, seed=8)
        lut = build_coarse_lut(net, enc128, norm)
        lut_out = lut.lookup_normalized(norm)
        net_out = net.forward(norm.reshape(len(norm), -1))
        # Coarse cells are wide (g=5), so tolerance is loose but bounded.
        err = np.linalg.norm(lut_out - net_out, axis=1).mean()
        spread = np.abs(net_out).mean() + 1e-9
        assert err < 4 * spread

    def test_save_load(self, enc128, tmp_path):
        net = self._net(enc128)
        norm = random_normalized(100, seed=9)
        lut = build_coarse_lut(net, enc128, norm)
        p = tmp_path / "coarse.npz"
        lut.save(p)
        back = CoarseHashedLUT.load(p)
        assert back.n_entries == lut.n_entries
        assert np.allclose(
            back.lookup_normalized(norm), lut.lookup_normalized(norm)
        )

    def test_bin_lookup_not_supported(self, enc128):
        lut = CoarseHashedLUT(enc128)
        with pytest.raises(NotImplementedError):
            lut.lookup(np.zeros((1, 4, 3), dtype=np.int16))

    def test_memory_far_below_dense_table1(self, enc128):
        from repro.sr import lut_memory_bytes

        net = self._net(enc128)
        norm = random_normalized(1000, seed=10)
        lut = build_coarse_lut(net, enc128, norm)
        assert lut.memory_bytes() < lut_memory_bytes(4, 128) / 100

    def test_fallback_validation(self, enc128):
        with pytest.raises(ValueError):
            CoarseHashedLUT(enc128, fallback="net")
        with pytest.raises(ValueError):
            CoarseHashedLUT(enc128, fallback="magic")
