"""Refinement-network training pipeline tests."""

import numpy as np
import pytest

from repro.pointcloud import make_video
from repro.sr import (
    PositionEncoder,
    build_refinement_dataset,
    train_refinement_net,
)


@pytest.fixture(scope="module")
def frames():
    v = make_video("longdress", n_points=1200, n_frames=2)
    return [v.frame(i) for i in range(2)]


class TestDataset:
    def test_shapes_consistent(self, frames):
        enc = PositionEncoder(rf_size=4, bins=32)
        ds = build_refinement_dataset(frames, enc, ratios=(2.0,), seed=0)
        assert ds.X.shape[1] == 12
        assert ds.Y.shape == (len(ds), 3)
        assert ds.bins.shape == (len(ds), 4, 3)

    def test_multiple_ratios_give_more_pairs(self, frames):
        enc = PositionEncoder(rf_size=4, bins=32)
        one = build_refinement_dataset(frames, enc, ratios=(2.0,), seed=0)
        two = build_refinement_dataset(frames, enc, ratios=(2.0, 4.0), seed=0)
        assert len(two) > len(one)

    def test_targets_bounded(self, frames):
        enc = PositionEncoder(rf_size=4, bins=32)
        ds = build_refinement_dataset(frames, enc, ratios=(2.0,), seed=0)
        assert (np.abs(ds.Y) <= 1.0).all()

    def test_inputs_normalized(self, frames):
        enc = PositionEncoder(rf_size=4, bins=32)
        ds = build_refinement_dataset(frames, enc, ratios=(2.0,), seed=0)
        assert (np.abs(ds.X) <= 1.0 + 1e-12).all()
        # First 3 dims are the (centered) target point: all zeros.
        assert np.allclose(ds.X[:, :3], 0.0)

    def test_empty_frames_rejected(self):
        enc = PositionEncoder(rf_size=4, bins=32)
        with pytest.raises(ValueError):
            build_refinement_dataset([], enc)


class TestTraining:
    def test_loss_decreases(self, frames):
        enc = PositionEncoder(rf_size=4, bins=32)
        ds = build_refinement_dataset(frames, enc, ratios=(2.0,), seed=0)
        net, losses = train_refinement_net(ds, enc, hidden=(24, 24), epochs=10, seed=0)
        assert losses[-1] < losses[0]
        assert net.in_dim == 12 and net.out_dim == 3

    def test_trained_net_beats_zero_refinement(self, frames):
        """The net's predicted offsets reduce the displacement error vs
        predicting no offset at all — the minimum bar for Eq. 9 training."""
        enc = PositionEncoder(rf_size=4, bins=32)
        ds = build_refinement_dataset(frames, enc, ratios=(2.0,), seed=0)
        net, _ = train_refinement_net(ds, enc, hidden=(24, 24), epochs=15, seed=0)
        pred = net.forward(ds.X)
        err_net = np.mean(np.sum((pred - ds.Y) ** 2, axis=1))
        err_zero = np.mean(np.sum(ds.Y ** 2, axis=1))
        assert err_net < err_zero
