"""Refinement stage tests: NN vs LUT agreement, reuse gathering."""

import numpy as np
import pytest

from repro.nn import MLP
from repro.sr import (
    HashedLUT,
    LUTRefiner,
    NNRefiner,
    PositionEncoder,
    gather_refinement_neighborhoods,
    interpolate,
)
from repro.spatial import kdtree_knn


@pytest.fixture
def setup(small_frame):
    encoder = PositionEncoder(rf_size=4, bins=64)
    net = MLP((12, 16, 3), output_activation="tanh", seed=0)
    interp = interpolate(small_frame, 2.0, k=4, dilation=2, seed=0)
    return small_frame, encoder, net, interp


class TestGatherNeighborhoods:
    def test_shape(self, setup):
        frame, encoder, net, interp = setup
        nb = gather_refinement_neighborhoods(frame.positions, interp, 4)
        assert nb.shape == (interp.n_new, 3, 3)

    def test_close_to_true_knn(self, setup):
        """Reuse-gathered neighborhoods ≈ true kNN of the new points."""
        frame, encoder, net, interp = setup
        nb = gather_refinement_neighborhoods(frame.positions, interp, 4)
        d_reuse = np.linalg.norm(
            nb - interp.new_positions[:, None, :], axis=2
        )
        _, d_true = kdtree_knn(frame.positions, interp.new_positions, 3)
        # Mean inflation from the approximation stays small.
        assert d_reuse.mean() <= d_true.mean() * 1.2


class TestNNRefiner:
    def test_moves_points_bounded_by_radius(self, setup):
        frame, encoder, net, interp = setup
        ref = NNRefiner(net, encoder)
        nb = gather_refinement_neighborhoods(frame.positions, interp, 4)
        out = ref.refine(interp.new_positions, nb)
        assert out.shape == interp.new_positions.shape
        moved = np.linalg.norm(out - interp.new_positions, axis=1)
        enc = encoder.encode(interp.new_positions, nb)
        # tanh output in [-1,1]^3 scaled by radius: |offset| <= sqrt(3) R.
        assert (moved <= np.sqrt(3) * enc.radius + 1e-9).all()

    def test_dim_validation(self, setup):
        frame, encoder, net, interp = setup
        bad = MLP((9, 8, 3), seed=0)
        with pytest.raises(ValueError, match="input dim"):
            NNRefiner(bad, encoder)
        bad_out = MLP((12, 8, 2), seed=0)
        with pytest.raises(ValueError, match="output"):
            NNRefiner(bad_out, encoder)


class TestLUTRefiner:
    def test_lut_approximates_nn_refinement(self, setup):
        """The distilled LUT's refinements track the network's."""
        frame, encoder, net, interp = setup
        nb = gather_refinement_neighborhoods(frame.positions, interp, 4)
        enc = encoder.encode(interp.new_positions, nb)
        lut = HashedLUT(encoder, fallback="zero")
        lut.populate_from_network(encoder.pack_keys(enc.bins), net)

        nn_out = NNRefiner(net, encoder).refine(interp.new_positions, nb)
        lut_out = LUTRefiner(lut).refine(interp.new_positions, nb)
        # Differences come only from bin-center quantization of inputs.
        err = np.linalg.norm(nn_out - lut_out, axis=1)
        scale = np.linalg.norm(nn_out - interp.new_positions, axis=1).mean() + 1e-9
        assert err.mean() < scale  # quantization error below signal

    def test_finer_bins_closer_to_net(self, setup):
        frame, _, net, interp = setup
        nb = gather_refinement_neighborhoods(frame.positions, interp, 4)
        errs = []
        for bins in (4, 16, 64):
            enc_b = PositionEncoder(rf_size=4, bins=bins)
            net_b = MLP((12, 16, 3), output_activation="tanh", seed=0)
            e = enc_b.encode(interp.new_positions, nb)
            lut = HashedLUT(enc_b, fallback="zero")
            lut.populate_from_network(enc_b.pack_keys(e.bins), net_b)
            nn_out = NNRefiner(net_b, enc_b).refine(interp.new_positions, nb)
            lut_out = LUTRefiner(lut).refine(interp.new_positions, nb)
            errs.append(np.linalg.norm(nn_out - lut_out, axis=1).mean())
        assert errs[0] > errs[2]
