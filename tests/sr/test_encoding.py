"""Position encoding tests (Eqs. 3–4): normalization, quantization, packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sr import PositionEncoder


def random_neighborhoods(m, rf, seed=0, scale=1.0):
    g = np.random.default_rng(seed)
    targets = g.uniform(-scale, scale, (m, 3))
    neighbors = targets[:, None, :] + g.normal(0, 0.1 * scale, (m, rf - 1, 3))
    return targets, neighbors


class TestNormalization:
    def test_all_normalized_in_unit_cube(self):
        enc = PositionEncoder(rf_size=4, bins=16)
        t, nb = random_neighborhoods(50, 4, scale=10.0)
        e = enc.encode(t, nb)
        assert (np.abs(e.normalized) <= 1.0 + 1e-12).all()

    def test_target_row_is_origin(self):
        enc = PositionEncoder(rf_size=4, bins=16)
        t, nb = random_neighborhoods(20, 4)
        e = enc.encode(t, nb)
        assert np.allclose(e.normalized[:, 0, :], 0.0)

    def test_radius_is_max_neighbor_distance(self):
        enc = PositionEncoder(rf_size=3, bins=16)
        t = np.zeros((1, 3))
        nb = np.array([[[1.0, 0, 0], [0, 2.0, 0]]])
        e = enc.encode(t, nb)
        assert e.radius[0] == pytest.approx(2.0)
        # The farthest neighbor normalizes to unit length.
        assert np.linalg.norm(e.normalized[0], axis=1).max() == pytest.approx(1.0)

    def test_scale_invariance(self):
        """Scaling the whole neighborhood leaves the encoding unchanged."""
        enc = PositionEncoder(rf_size=4, bins=32)
        t, nb = random_neighborhoods(30, 4)
        e1 = enc.encode(t, nb)
        e2 = enc.encode(t * 50.0, (nb - t[:, None, :]) * 50.0 + t[:, None, :] * 50.0)
        assert np.array_equal(e1.bins, e2.bins)

    def test_translation_invariance(self):
        enc = PositionEncoder(rf_size=4, bins=32)
        t, nb = random_neighborhoods(30, 4)
        off = np.array([100.0, -50.0, 3.0])
        e1 = enc.encode(t, nb)
        e2 = enc.encode(t + off, nb + off)
        assert np.array_equal(e1.bins, e2.bins)

    def test_degenerate_neighborhood_no_nan(self):
        enc = PositionEncoder(rf_size=3, bins=16)
        t = np.ones((1, 3))
        nb = np.ones((1, 2, 3))  # all coincide with the target
        e = enc.encode(t, nb)
        assert np.isfinite(e.normalized).all()
        assert e.radius[0] == 0.0


class TestQuantization:
    def test_bins_in_range(self):
        enc = PositionEncoder(rf_size=4, bins=8)
        t, nb = random_neighborhoods(100, 4)
        e = enc.encode(t, nb)
        assert e.bins.min() >= 0 and e.bins.max() <= 7

    def test_eq4_formula(self):
        enc = PositionEncoder(rf_size=2, bins=11)
        t = np.zeros((1, 3))
        nb = np.array([[[0.5, -1.0, 1.0]]])  # radius sqrt(2.25)=1.5
        e = enc.encode(t, nb)
        n = nb[0, 0] / 1.5
        expected = np.floor((n + 1) / 2 * 10).astype(int)
        assert np.array_equal(e.bins[0, 1], np.clip(expected, 0, 10))

    def test_bin_centers_inverse(self):
        enc = PositionEncoder(rf_size=4, bins=64)
        bins = np.arange(64)
        centers = enc.bin_centers(bins)
        # Re-quantizing a bin center returns the same bin.
        requant = np.floor((centers + 1) / 2 * 63).astype(int)
        assert np.array_equal(np.clip(requant, 0, 63), bins)

    def test_quantization_error_bound_holds(self):
        enc = PositionEncoder(rf_size=4, bins=32)
        t, nb = random_neighborhoods(200, 4, seed=5)
        e = enc.encode(t, nb)
        centers = enc.bin_centers(e.bins)
        err = np.abs(centers - e.normalized).max()
        assert err <= enc.quantization_error_bound() + 1e-12

    def test_more_bins_lower_error(self):
        t, nb = random_neighborhoods(200, 4, seed=6)
        errs = []
        for b in (8, 32, 128):
            enc = PositionEncoder(rf_size=4, bins=b)
            e = enc.encode(t, nb)
            errs.append(np.abs(enc.bin_centers(e.bins) - e.normalized).mean())
        assert errs[0] > errs[1] > errs[2]


class TestKeyPacking:
    def test_pack_unique_for_distinct_bins(self):
        enc = PositionEncoder(rf_size=3, bins=16)
        t, nb = random_neighborhoods(500, 3, seed=7)
        e = enc.encode(t, nb)
        keys = enc.pack_keys(e.bins)
        flat = e.bins[:, 1:, :].reshape(len(e.bins), -1)
        _, unique_rows = np.unique(flat, axis=0, return_index=True)
        assert len(np.unique(keys)) == len(unique_rows)

    def test_pack_roundtrip_by_digits(self):
        enc = PositionEncoder(rf_size=3, bins=8)
        t, nb = random_neighborhoods(50, 3, seed=8)
        e = enc.encode(t, nb)
        keys = enc.pack_keys(e.bins)
        # Decode digits and compare.
        digits = np.empty((50, 6), dtype=np.int64)
        rem = keys.copy()
        for d in range(5, -1, -1):
            digits[:, d] = (rem % 8).astype(np.int64)
            rem //= 8
        assert np.array_equal(digits, e.bins[:, 1:, :].reshape(50, -1))

    def test_packable_boundary(self):
        assert PositionEncoder(rf_size=4, bins=128).packable  # 9*7 = 63 bits
        assert not PositionEncoder(rf_size=5, bins=128).packable  # 84 bits

    def test_pack_rejects_oversized(self):
        enc = PositionEncoder(rf_size=5, bins=128)
        with pytest.raises(ValueError, match="uint64"):
            enc.pack_keys(np.zeros((1, 5, 3), dtype=np.int16))

    def test_bytes_keys_for_oversized(self):
        enc = PositionEncoder(rf_size=5, bins=128)
        t, nb = random_neighborhoods(10, 5, seed=9)
        e = enc.encode(t, nb)
        keys = enc.pack_keys_bytes(e.bins)
        assert len(keys) == 10
        assert all(isinstance(k, bytes) for k in keys)

    def test_validation(self):
        with pytest.raises(ValueError):
            PositionEncoder(rf_size=1, bins=8)
        with pytest.raises(ValueError):
            PositionEncoder(rf_size=4, bins=1)
        enc = PositionEncoder(rf_size=4, bins=8)
        with pytest.raises(ValueError, match="neighbors"):
            enc.encode(np.zeros((3, 3)), np.zeros((3, 2, 3)))
        with pytest.raises(ValueError, match="targets"):
            enc.encode(np.zeros((3, 2)), np.zeros((3, 3, 3)))


@given(seed=st.integers(0, 200), bins=st.integers(2, 64))
@settings(max_examples=30, deadline=None)
def test_encoding_deterministic_and_bounded(seed, bins):
    enc = PositionEncoder(rf_size=4, bins=bins)
    t, nb = random_neighborhoods(20, 4, seed=seed)
    e1 = enc.encode(t, nb)
    e2 = enc.encode(t, nb)
    assert np.array_equal(e1.bins, e2.bins)
    assert e1.bins.min() >= 0 and e1.bins.max() < bins
