"""LUT tests: memory model, dense/hashed storage, fallbacks, fusion."""

import numpy as np
import pytest

from repro.nn import MLP
from repro.sr import (
    DenseLUT,
    EnsembleLUT,
    HashedLUT,
    PositionEncoder,
    build_lut,
    lut_entries,
    lut_entries_full,
    lut_memory_bytes,
    lut_memory_table,
)


def tiny_net(rf=3, seed=0):
    return MLP((rf * 3, 8, 3), output_activation="tanh", seed=seed)


def encode_random(encoder, m=50, seed=0):
    g = np.random.default_rng(seed)
    t = g.uniform(-1, 1, (m, 3))
    nb = t[:, None, :] + g.normal(0, 0.1, (m, encoder.rf_size - 1, 3))
    return encoder.encode(t, nb)


class TestMemoryModel:
    def test_paper_table1_values(self):
        """Exact reproduction of Table 1's reported sizes."""
        assert lut_memory_bytes(3, 128) == 6291456 * 2        # 12 MB
        assert lut_memory_bytes(3, 64) == 786432 * 2          # 1.5 MB
        assert lut_memory_bytes(4, 128) == 805306368 * 2      # 1.61 GB
        assert lut_memory_bytes(4, 64) == 50331648 * 2        # ~100 MB
        assert lut_memory_bytes(5, 128) == 103079215104 * 2   # ~201 GB
        assert lut_memory_bytes(5, 64) == 3221225472 * 2      # ~6.25 GB

    def test_entries_formula(self):
        assert lut_entries(4, 128) == 128 ** 4 * 3
        assert lut_entries_full(4, 128) == 128 ** 12

    def test_table_rows(self):
        rows = lut_memory_table()
        assert len(rows) == 6
        assert {r["rf_size"] for r in rows} == {3, 4, 5}

    def test_validation(self):
        with pytest.raises(ValueError):
            lut_entries(0, 128)
        with pytest.raises(ValueError):
            lut_entries_full(4, 0)


class TestDenseLUT:
    def test_fill_and_lookup_matches_net(self):
        enc = PositionEncoder(rf_size=3, bins=4)  # 4^6 = 4096 rows
        net = tiny_net(rf=3)
        lut = DenseLUT(enc)
        lut.fill(net)
        e = encode_random(enc, m=40, seed=1)
        got = lut.lookup(e.bins)
        centers = enc.bin_centers(e.bins[:, 1:, :].reshape(40, -1))
        x = np.concatenate([np.zeros((40, 3)), centers], axis=1)
        want = net.forward(x)
        assert np.allclose(got, want, atol=1e-2)  # float16 storage

    def test_refuses_oversized(self):
        enc = PositionEncoder(rf_size=4, bins=128)
        with pytest.raises(MemoryError):
            DenseLUT(enc)

    def test_set_entries(self):
        enc = PositionEncoder(rf_size=3, bins=4)
        lut = DenseLUT(enc)
        bins = np.zeros((1, 3, 3), dtype=np.int16)
        lut.set_entries(bins, np.array([[0.5, -0.25, 0.125]]))
        got = lut.lookup(bins)
        assert np.allclose(got, [[0.5, -0.25, 0.125]], atol=1e-3)

    def test_memory_bytes(self):
        enc = PositionEncoder(rf_size=3, bins=4)
        lut = DenseLUT(enc)
        assert lut.memory_bytes() == 4 ** 6 * 3 * 2


class TestHashedLUT:
    def test_populate_then_hit(self, encoder):
        net = MLP((encoder.rf_size * 3, 8, 3), output_activation="tanh", seed=0)
        lut = HashedLUT(encoder, fallback="zero")
        e = encode_random(encoder, m=100, seed=2)
        keys = encoder.pack_keys(e.bins)
        lut.populate_from_network(keys, net)
        assert lut.n_entries == len(np.unique(keys))
        out = lut.lookup(e.bins)
        assert lut.stats.hits == 100
        assert np.abs(out).max() <= 1.0  # tanh range

    def test_zero_fallback(self, encoder):
        lut = HashedLUT(encoder, fallback="zero")
        e = encode_random(encoder, m=10, seed=3)
        out = lut.lookup(e.bins)
        assert np.allclose(out, 0.0)
        assert lut.stats.misses == 10

    def test_nearest_fallback_returns_populated_value(self, encoder):
        net = MLP((encoder.rf_size * 3, 8, 3), output_activation="tanh", seed=1)
        lut = HashedLUT(encoder, fallback="nearest")
        e_train = encode_random(encoder, m=200, seed=4)
        lut.populate_from_network(encoder.pack_keys(e_train.bins), net)
        e_test = encode_random(encoder, m=50, seed=99)
        out = lut.lookup(e_test.bins)
        assert np.isfinite(out).all()
        # Every returned value exists in the table (or is an exact hit).
        vals = lut._values.astype(np.float64)
        for row in out:
            assert np.isclose(vals, row, atol=1e-6).all(axis=1).any()

    def test_net_fallback_memoizes(self, encoder):
        net = MLP((encoder.rf_size * 3, 8, 3), output_activation="tanh", seed=2)
        lut = HashedLUT(encoder, fallback="net", net=net)
        e = encode_random(encoder, m=30, seed=5)
        before = lut.n_entries
        lut.lookup(e.bins)
        assert lut.n_entries > before
        # Second lookup of the same bins: all hits.
        h0 = lut.stats.hits
        lut.lookup(e.bins)
        assert lut.stats.hits == h0 + 30

    def test_net_fallback_requires_net(self, encoder):
        with pytest.raises(ValueError, match="requires"):
            HashedLUT(encoder, fallback="net")

    def test_unknown_fallback(self, encoder):
        with pytest.raises(ValueError, match="fallback"):
            HashedLUT(encoder, fallback="interpolate")

    def test_insert_last_wins(self, encoder):
        lut = HashedLUT(encoder, fallback="zero")
        keys = np.array([5, 5], dtype=np.uint64)
        vals = np.array([[0.1, 0.1, 0.1], [0.9, 0.9, 0.9]], dtype=np.float16)
        lut.insert(keys, vals)
        assert lut.n_entries == 1
        assert np.allclose(lut._values[0], 0.9, atol=1e-3)

    def test_save_load_roundtrip(self, encoder, tmp_path):
        net = MLP((encoder.rf_size * 3, 8, 3), output_activation="tanh", seed=3)
        lut = HashedLUT(encoder, fallback="zero")
        e = encode_random(encoder, m=60, seed=6)
        lut.populate_from_network(encoder.pack_keys(e.bins), net)
        p = tmp_path / "table.npz"
        lut.save(p)
        back = HashedLUT.load(p, fallback="zero")
        assert back.n_entries == lut.n_entries
        assert np.allclose(back.lookup(e.bins), lut.lookup(e.bins))

    def test_rejects_unpackable_encoder(self):
        enc = PositionEncoder(rf_size=5, bins=128)
        with pytest.raises(ValueError, match="packable"):
            HashedLUT(enc)

    def test_memory_much_smaller_than_dense(self, encoder):
        net = MLP((encoder.rf_size * 3, 8, 3), output_activation="tanh", seed=4)
        lut = HashedLUT(encoder, fallback="zero")
        e = encode_random(encoder, m=500, seed=7)
        lut.populate_from_network(encoder.pack_keys(e.bins), net)
        assert lut.memory_bytes() < lut_memory_bytes(
            encoder.rf_size, encoder.bins
        )


class TestEnsembleLUT:
    def test_single_member_matches_plain_lut(self, encoder):
        net = MLP((encoder.rf_size * 3, 8, 3), output_activation="tanh", seed=5)
        e = encode_random(encoder, m=40, seed=8)
        ens = EnsembleLUT.build(net, encoder, e.normalized, n_members=1)
        plain = HashedLUT(encoder, fallback="nearest")
        plain.populate_from_network(encoder.pack_keys(e.bins), net)
        assert np.allclose(
            ens.lookup_normalized(e.normalized), plain.lookup(e.bins)
        )

    def test_fusion_reduces_quantization_error(self, encoder):
        """The point of multi-LUT fusion: the averaged offsets track the
        network more closely than any single phase's table."""
        net = MLP((encoder.rf_size * 3, 8, 3), output_activation="tanh", seed=6)
        e = encode_random(encoder, m=300, seed=9)
        target = net.forward(e.normalized.reshape(len(e.normalized), -1))

        single = EnsembleLUT.build(net, encoder, e.normalized, n_members=1)
        fused = EnsembleLUT.build(net, encoder, e.normalized, n_members=3)
        err_single = np.linalg.norm(
            single.lookup_normalized(e.normalized) - target, axis=1
        ).mean()
        err_fused = np.linalg.norm(
            fused.lookup_normalized(e.normalized) - target, axis=1
        ).mean()
        assert err_fused < err_single

    def test_memory_scales_with_members(self, encoder):
        net = MLP((encoder.rf_size * 3, 8, 3), output_activation="tanh", seed=7)
        e = encode_random(encoder, m=40, seed=10)
        one = EnsembleLUT.build(net, encoder, e.normalized, n_members=1)
        three = EnsembleLUT.build(net, encoder, e.normalized, n_members=3)
        assert three.memory_bytes() > one.memory_bytes()

    def test_validation(self, encoder):
        with pytest.raises(ValueError):
            EnsembleLUT([])
        other = HashedLUT(PositionEncoder(rf_size=3, bins=8), fallback="zero")
        mine = HashedLUT(encoder, fallback="zero")
        with pytest.raises(ValueError, match="share"):
            EnsembleLUT([mine, other])
        net = MLP((encoder.rf_size * 3, 8, 3), seed=0)
        with pytest.raises(ValueError):
            EnsembleLUT.build(net, encoder, np.zeros((1, 4, 3)), n_members=0)


class TestBuildLUT:
    def test_hashed_build(self, encoder):
        net = MLP((encoder.rf_size * 3, 8, 3), output_activation="tanh", seed=7)
        e = encode_random(encoder, m=80, seed=10)
        lut = build_lut(net, encoder, e.bins, kind="hashed")
        assert isinstance(lut, HashedLUT)
        assert lut.n_entries > 0

    def test_dense_build(self):
        enc = PositionEncoder(rf_size=3, bins=4)
        net = tiny_net(rf=3, seed=8)
        e = encode_random(enc, m=10, seed=11)
        lut = build_lut(net, enc, e.bins, kind="dense")
        assert isinstance(lut, DenseLUT)

    def test_unknown_kind(self, encoder):
        net = MLP((encoder.rf_size * 3, 8, 3), seed=0)
        with pytest.raises(ValueError, match="kind"):
            build_lut(net, encoder, np.zeros((1, 4, 3), dtype=np.int16), kind="trie")
