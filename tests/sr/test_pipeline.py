"""End-to-end SR pipeline tests (VoLUT + naive + baselines)."""

import numpy as np
import pytest

from repro.metrics import chamfer_distance
from repro.pointcloud import random_downsample_count
from repro.sr import GradPUUpsampler, NaiveUpsampler, NNRefiner, VolutUpsampler, YuzuSRModel


class TestVolutUpsampler:
    def test_output_counts_and_colors(self, small_frame, trained_artifacts):
        up = VolutUpsampler(lut=trained_artifacts.lut)
        r = up.upsample(small_frame, 2.0)
        assert len(r.cloud) == 2 * len(small_frame)
        assert r.cloud.has_colors

    def test_stage_times_populated(self, small_frame, trained_artifacts):
        r = VolutUpsampler(lut=trained_artifacts.lut).upsample(small_frame, 2.0)
        t = r.times
        assert t.knn > 0 and t.interpolation > 0
        assert t.refinement > 0 and t.colorization > 0
        assert t.total == pytest.approx(
            t.knn + t.interpolation + t.colorization + t.refinement
        )

    def test_no_lut_skips_refinement(self, small_frame):
        r = VolutUpsampler(lut=None).upsample(small_frame, 2.0)
        assert len(r.cloud) == 2 * len(small_frame)

    def test_continuous_ratio(self, small_frame, trained_artifacts):
        up = VolutUpsampler(lut=trained_artifacts.lut)
        for ratio in (1.2, 2.7, 3.33):
            r = up.upsample(small_frame, ratio)
            assert len(r.cloud) == len(small_frame) + round(
                (ratio - 1) * len(small_frame)
            )

    def test_ratio_one_identity(self, small_frame, trained_artifacts):
        r = VolutUpsampler(lut=trained_artifacts.lut).upsample(small_frame, 1.0)
        assert np.array_equal(r.cloud.positions, small_frame.positions)


class TestQualityOrdering:
    def test_lut_refinement_improves_geometry(self, trained_artifacts):
        """VoLUT's central quality claim at module level: refined > raw interp."""
        from repro.pointcloud import make_video

        gt = make_video("longdress", n_points=1500, n_frames=1).frame(0)
        low = random_downsample_count(gt, 750, seed=1)
        plain = VolutUpsampler(lut=None, seed=2).upsample(low, 2.0).cloud
        refined = VolutUpsampler(lut=trained_artifacts.lut, seed=2).upsample(low, 2.0).cloud
        assert chamfer_distance(refined, gt) < chamfer_distance(plain, gt)

    def test_upsampled_covers_surface_better_than_sparse(self, trained_artifacts):
        """SR's purpose: the ground-truth surface is closer to the upsampled
        cloud than to the sparse one (coverage direction of Chamfer)."""
        from repro.metrics import p2p_distances
        from repro.pointcloud import make_video

        gt = make_video("longdress", n_points=1500, n_frames=1).frame(0)
        low = random_downsample_count(gt, 500, seed=1)
        up = VolutUpsampler(lut=trained_artifacts.lut, seed=0).upsample(low, 3.0).cloud
        assert p2p_distances(gt, up).mean() < p2p_distances(gt, low).mean()


class TestNaiveUpsampler:
    def test_basic(self, tiny_frame):
        r = NaiveUpsampler().upsample(tiny_frame, 2.0)
        assert len(r.cloud) == 2 * len(tiny_frame)
        assert r.cloud.has_colors

    def test_with_nn_refiner(self, tiny_frame, trained_artifacts):
        ref = NNRefiner(trained_artifacts.net, trained_artifacts.encoder)
        r = NaiveUpsampler(refiner=ref).upsample(tiny_frame, 2.0)
        assert r.times.refinement > 0


class TestGradPU:
    def test_output_shape(self, tiny_frame, trained_artifacts):
        gp = GradPUUpsampler(
            net=trained_artifacts.net,
            encoder=trained_artifacts.encoder,
            n_steps=3,
        )
        r = gp.upsample(tiny_frame, 2.0)
        assert len(r.cloud) == 2 * len(tiny_frame)
        assert r.cloud.has_colors

    def test_more_steps_cost_more(self, tiny_frame, trained_artifacts):
        fast = GradPUUpsampler(
            net=trained_artifacts.net, encoder=trained_artifacts.encoder, n_steps=1
        ).upsample(tiny_frame, 2.0)
        slow = GradPUUpsampler(
            net=trained_artifacts.net, encoder=trained_artifacts.encoder, n_steps=8
        ).upsample(tiny_frame, 2.0)
        assert slow.times.refinement > fast.times.refinement


class TestYuzu:
    def test_fixed_ratio_output(self, tiny_frame):
        model = YuzuSRModel(ratio=3, seed=0)
        r = model.upsample(tiny_frame)
        assert len(r.cloud) == 3 * len(tiny_frame)
        assert r.cloud.has_colors

    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            YuzuSRModel(ratio=1)

    def test_model_bytes_positive(self):
        m = YuzuSRModel(ratio=2, seed=0)
        assert m.model_bytes() == m.net.n_parameters() * 4
