"""Examples are runnable end to end (subprocess smoke tests)."""

import os
import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
SRC = Path(__file__).resolve().parent.parent / "src"


def run(script: str, *args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "chamfer (VoLUT output)" in proc.stdout
        assert "per-stage latency" in proc.stdout

    def test_streaming_session(self):
        proc = run("streaming_session.py", "--seconds", "20")
        assert proc.returncode == 0, proc.stderr
        assert "volut" in proc.stdout
        assert "stable 50 Mbps" in proc.stdout

    def test_reproduce_paper_single(self):
        proc = run("reproduce_paper.py", "--only", "table1")
        assert proc.returncode == 0, proc.stderr
        assert "1.61 GB" in proc.stdout

    def test_fleet_demo(self, tmp_path):
        trace = tmp_path / "fleet-trace.json"
        proc = run(
            "fleet_demo.py", "--sessions", "40", "--seconds", "10",
            "--trace-out", str(trace),
        )
        assert proc.returncode == 0, proc.stderr
        assert "congested" in proc.stdout
        assert "weighted (10% premium @4x)" in proc.stdout
        assert "cache hit" in proc.stdout
        assert "phase breakdown" in proc.stdout
        assert "scheduler" in proc.stdout
        assert trace.exists()
        assert '"traceEvents"' in trace.read_text()[:100]

    def test_chaos_demo(self, tmp_path):
        trace = tmp_path / "chaos-trace.jsonl"
        proc = run(
            "chaos_demo.py", "--sessions", "30", "--trace-out", str(trace),
        )
        assert proc.returncode == 0, proc.stderr
        assert "edge-outage ctrl=on" in proc.stdout
        assert "phase breakdown" in proc.stdout
        assert trace.exists()
        first = trace.read_text().splitlines()[0]
        assert '"kind"' in first and '"t"' in first

    def test_population_demo(self):
        proc = run("population_demo.py", "--sessions", "30", "--seconds", "8")
        assert proc.returncode == 0, proc.stderr
        assert "popularity skew sweep" in proc.stdout
        assert "abandoned" in proc.stdout
        assert "provisioning sweep" in proc.stdout

    def test_cdn_demo(self):
        proc = run("cdn_demo.py", "--sessions", "30", "--seconds", "8")
        assert proc.returncode == 0, proc.stderr
        assert "assignment policy sweep" in proc.stdout
        assert "popularity" in proc.stdout
        assert "encode contention" in proc.stdout
        assert "GB delivered" in proc.stdout

    def test_end_to_end_client(self):
        proc = run("end_to_end_client.py", "--frames", "3")
        assert proc.returncode == 0, proc.stderr
        assert "total downloaded" in proc.stdout

    def test_render_viewports_writes_frames(self, tmp_path):
        proc = run("render_viewports.py", "--views", "2", "--save-dir", str(tmp_path))
        assert proc.returncode == 0, proc.stderr
        ppm = list(tmp_path.glob("*.ppm"))
        assert len(ppm) == 8  # 3 methods x 2 views + 2 ground truth
        header = ppm[0].read_bytes()[:2]
        assert header == b"P6"
