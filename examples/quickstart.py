#!/usr/bin/env python
"""Quickstart: train a refinement LUT and super-resolve a frame.

Walks the full VoLUT offline→online flow in under a minute:

1. generate a synthetic volumetric frame (a stand-in for 8iVFB content);
2. build self-supervised training pairs and train the refinement MLP;
3. distill the network into a hashed lookup table;
4. downsample a frame (what the server would transmit) and upsample it
   back with the two-stage pipeline (dilated interpolation + LUT);
5. report geometry metrics and per-stage latency.

Run:  python examples/quickstart.py
"""

from repro.experiments import SMOKE, get_artifacts
from repro.metrics import chamfer_distance, geometry_psnr
from repro.pointcloud import make_video, random_downsample_count
from repro.sr import VolutUpsampler


def main() -> None:
    print("== VoLUT quickstart ==")

    # 1-3. Offline phase: train on the Long Dress video and build the LUT.
    #      (get_artifacts caches, so re-runs are instant.)
    print("training refinement network + building LUT (longdress)...")
    art = get_artifacts(SMOKE)
    print(f"  refinement net: {art.net.dims}, final loss {art.train_losses[-1]:.4f}")
    print(f"  hashed LUT: {art.lut.n_entries} entries, "
          f"{art.lut.memory_bytes() / 1024:.0f} KiB resident")

    # 4. Online phase: the client receives a downsampled frame...
    gt = make_video("loot", n_points=SMOKE.points_per_frame, n_frames=1).frame(0)
    low = random_downsample_count(gt, len(gt) // 4, seed=0)
    print(f"\nreceived frame: {len(low)} points (ground truth {len(gt)})")

    # ...and upsamples it 4x with the two-stage pipeline.
    upsampler = VolutUpsampler(lut=art.lut, k=4, dilation=2)
    result = upsampler.upsample(low, 4.0)
    print(f"upsampled to {len(result.cloud)} points")

    # 5. Quality + latency.
    print("\nquality vs ground truth:")
    print(f"  chamfer (sparse input): {chamfer_distance(low, gt):.5f}")
    print(f"  chamfer (VoLUT output): {chamfer_distance(result.cloud, gt):.5f}")
    print(f"  geometry PSNR:          {geometry_psnr(result.cloud, gt):.2f} dB")
    print("\nper-stage latency (this machine, pure Python):")
    for stage, sec in result.times.as_dict().items():
        print(f"  {stage:14s} {sec * 1e3:8.2f} ms")


if __name__ == "__main__":
    main()
