#!/usr/bin/env python
"""Regenerate every table and figure from the paper's evaluation section.

Runs the full experiment suite (Table 1, Figs 4, 7-18) at the chosen scale
and prints each result table.  ``--scale smoke`` (default) finishes in a
couple of minutes; ``--scale paper`` uses §7.1-sized workloads and takes
much longer in pure Python.

Run:  python examples/reproduce_paper.py [--scale smoke|paper] [--only fig11]
"""

import argparse
import time

from repro.experiments import (
    PAPER,
    SMOKE,
    run_ablation,
    run_breakdown_device,
    run_breakdown_measured,
    run_fig4,
    run_fig11_device,
    run_fig11_measured,
    run_fig17_device,
    run_fig17_measured,
    run_fig18_device,
    run_memory_usage,
    run_sr_quality,
    run_streaming_eval,
    run_table1,
)

EXPERIMENTS = {
    "table1": lambda scale: run_table1(),
    "fig4": run_fig4,
    "fig7-10": run_sr_quality,
    "fig11-measured": lambda scale: run_fig11_measured(scale),
    "fig11-device": lambda scale: run_fig11_device(),
    "fig12-13": run_streaming_eval,
    "fig14": run_ablation,
    "fig15": lambda scale: run_memory_usage(),
    "fig16-device": lambda scale: run_breakdown_device(),
    "fig16-measured": run_breakdown_measured,
    "fig17-device": lambda scale: run_fig17_device(),
    "fig17-measured": run_fig17_measured,
    "fig18": lambda scale: run_fig18_device(),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["smoke", "paper"], default="smoke")
    parser.add_argument(
        "--only",
        choices=sorted(EXPERIMENTS),
        default=None,
        help="run a single experiment",
    )
    args = parser.parse_args()
    scale = PAPER if args.scale == "paper" else SMOKE

    names = [args.only] if args.only else list(EXPERIMENTS)
    for name in names:
        t0 = time.time()
        table = EXPERIMENTS[name](scale)
        print(table.render())
        print(f"[{name}: {time.time() - t0:.1f}s]\n")


if __name__ == "__main__":
    main()
