#!/usr/bin/env python
"""Explore the LUT design space: bins vs memory vs refinement quality.

Reproduces the paper's Table-1 trade-off empirically: finer quantization
(more bins) tracks the refinement network more faithfully but costs more
memory; the receptive-field size grows the key space exponentially.  Also
demonstrates multi-LUT fusion (EnsembleLUT) as the paper's §6 extension.

Run:  python examples/lut_tradeoffs.py
"""

import numpy as np

from repro.pointcloud import make_video, random_downsample_count
from repro.sr import (
    EnsembleLUT,
    HashedLUT,
    NNRefiner,
    PositionEncoder,
    build_refinement_dataset,
    gather_refinement_neighborhoods,
    interpolate,
    lut_memory_bytes,
    train_refinement_net,
)


def main() -> None:
    # Offline: one training pass per bin count (the net is retrained per
    # encoder so its input contract matches).
    video = make_video("longdress", n_points=4000, n_frames=2)
    frames = [video.frame(i) for i in range(2)]

    gt = make_video("loot", n_points=4000, n_frames=1).frame(0)
    low = random_downsample_count(gt, 2000, seed=0)
    interp = interpolate(low, 2.0, k=4, dilation=2, seed=0)

    print(f"{'bins':>5s} {'dense-table':>12s} {'hashed-KiB':>11s} "
          f"{'LUT-vs-NN err':>14s}")
    print("-" * 48)
    for bins in (8, 16, 32, 64, 128):
        encoder = PositionEncoder(rf_size=4, bins=bins)
        ds = build_refinement_dataset(frames, encoder, ratios=(2.0,), seed=0)
        net, _ = train_refinement_net(ds, encoder, hidden=(24, 24), epochs=10)

        lut = HashedLUT(encoder, fallback="nearest")
        neighbors = gather_refinement_neighborhoods(low.positions, interp, 4)
        enc = encoder.encode(interp.new_positions, neighbors)
        lut.populate_from_network(encoder.pack_keys(enc.bins), net)

        nn_out = NNRefiner(net, encoder).refine(interp.new_positions, neighbors)
        from repro.sr import LUTRefiner

        lut_out = LUTRefiner(lut).refine(interp.new_positions, neighbors)
        err = float(np.linalg.norm(nn_out - lut_out, axis=1).mean())
        dense = lut_memory_bytes(4, bins)
        print(f"{bins:5d} {dense / 1e6:10.1f}MB {lut.memory_bytes() / 1024:11.1f} "
              f"{err:14.6f}")

    # Multi-LUT fusion: phase-shifted quantization grids average out the
    # discretization error (the 3-D analogue of SR-LUT's rotation ensemble).
    print("\nmulti-LUT fusion (phase-shifted grids):")
    encoder = PositionEncoder(rf_size=4, bins=32)
    ds = build_refinement_dataset(frames, encoder, ratios=(2.0,), seed=0)
    net, _ = train_refinement_net(ds, encoder, hidden=(24, 24), epochs=10)
    neighbors = gather_refinement_neighborhoods(low.positions, interp, 4)
    enc = encoder.encode(interp.new_positions, neighbors)

    nn_out = NNRefiner(net, encoder).refine(interp.new_positions, neighbors)
    from repro.sr import LUTRefiner

    for n_members in (1, 2, 3):
        ensemble = EnsembleLUT.build(net, encoder, enc.normalized, n_members)
        fused = LUTRefiner(ensemble).refine(interp.new_positions, neighbors)
        err = float(np.linalg.norm(nn_out - fused, axis=1).mean())
        print(f"  {n_members} member(s): error vs NN {err:.6f}, "
              f"memory {ensemble.memory_bytes() / 1024:.1f} KiB")


if __name__ == "__main__":
    main()
