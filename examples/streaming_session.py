#!/usr/bin/env python
"""Compare streaming systems over stable and LTE links (paper §7.4 style).

Simulates full playback sessions of a 100K-point volumetric video for
VoLUT (continuous ABR + LUT SR), YuZu-SR, ViVo, and raw streaming, printing
normalized QoE, data usage, and stalls per condition.

Run:  python examples/streaming_session.py [--seconds 120]
"""

import argparse

from repro.net import lte_trace, stable_trace
from repro.streaming import VideoSpec
from repro.systems import (
    raw_system,
    run_system,
    vivo_system,
    volut_system,
    yuzu_sr_system,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seconds", type=int, default=120,
                        help="streamed video length")
    args = parser.parse_args()

    spec = VideoSpec(
        name="longdress",
        n_frames=args.seconds * 30,
        fps=30,
        points_per_frame=100_000,
    )
    conditions = [
        ("stable 50 Mbps", stable_trace(50.0, duration=args.seconds)),
        ("stable 100 Mbps", stable_trace(100.0, duration=args.seconds)),
        ("LTE ~32.5 Mbps", lte_trace(32.5, 13.5, duration=args.seconds, seed=1)),
        ("LTE ~75 Mbps", lte_trace(75.0, 20.0, duration=args.seconds, seed=2)),
    ]
    systems = [volut_system(), yuzu_sr_system(), vivo_system(), raw_system()]

    for cond_name, trace in conditions:
        print(f"\n== {cond_name} ==")
        results = {s.name: run_system(s, spec, trace) for s in systems}
        base_qoe = results["volut"].qoe
        raw_bytes = results["raw"].total_bytes
        header = (
            f"{'system':14s} {'normQoE':>8s} {'data%':>7s} {'MB':>8s} "
            f"{'stall s':>8s} {'meanQ':>6s}"
        )
        print(header)
        print("-" * len(header))
        for name, r in results.items():
            print(
                f"{name:14s} {100 * r.qoe / base_qoe:8.1f} "
                f"{100 * r.total_bytes / raw_bytes:7.1f} "
                f"{r.total_bytes / 1e6:8.1f} {r.stall_seconds:8.2f} "
                f"{r.mean_quality:6.3f}"
            )


if __name__ == "__main__":
    main()
