#!/usr/bin/env python
"""Run a trace-driven viewer population through the fleet simulator.

Viewers arrive as a Poisson process, pick videos from a Zipf-skewed
catalog, share one bottleneck link and one SR-result cache, and abandon
the session once rebuffering exhausts their patience.  All sessions share
a single vectorized MPC controller, so the fleet scheduler resolves
simultaneous ABR decisions in one array pass.

Prints the operator-facing report (QoE aggregates, stall ratio, cache hit
rate, abandon rate) for a sweep of catalog skews, then a provisioning
comparison at the highest skew.

Run:  python examples/population_demo.py [--sessions 200] [--seconds 20]
"""

import argparse
import time

from repro.metrics import QoEModel
from repro.net import stable_trace
from repro.streaming import (
    AbandonPolicy,
    ContinuousMPC,
    PoissonArrivals,
    SRQualityModel,
    SRResultCache,
    build_population,
    simulate_fleet,
)
from repro.streaming.latency import MeasuredSRLatency
from repro.streaming.population import synthetic_catalog


def show(label: str, report) -> None:
    print(
        f"{label:<26} qoe mean {report.mean_qoe:8.2f}  "
        f"p5 {report.p5_qoe:8.2f}  "
        f"stall {100 * report.stall_ratio:5.1f}%  "
        f"cache hit {100 * report.cache_hit_rate:5.1f}%  "
        f"abandoned {100 * report.abandon_rate:5.1f}%  "
        f"{report.total_bytes / 1e9:.2f} GB"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=200,
                        help="target number of viewer arrivals")
    parser.add_argument("--seconds", type=int, default=20,
                        help="video length per catalog entry")
    parser.add_argument("--videos", type=int, default=8,
                        help="catalog size")
    parser.add_argument("--patience", type=float, default=8.0,
                        help="seconds of total stall before a viewer abandons")
    args = parser.parse_args()

    qm = SRQualityModel()
    lat = MeasuredSRLatency(0.001, 1e-8, 2e-8)
    controller = ContinuousMPC(qm, QoEModel(), lat, n_grid=32, horizon=4)
    churn = AbandonPolicy(max_total_stall=args.patience)
    window = float(4 * args.seconds)
    arrivals = PoissonArrivals(rate_hz=args.sessions / window, seed=7)

    def run(skew: float, mbps_per_session: float):
        catalog = synthetic_catalog(
            args.videos, seconds=args.seconds, skew=skew
        )
        sessions = build_population(
            catalog, arrivals, window, controller,
            sr_latency=lat, quality_model=qm, churn=churn, seed=11,
        )
        trace = stable_trace(
            mbps_per_session * len(sessions), duration=2 * window
        )
        t0 = time.time()
        result = simulate_fleet(sessions, trace, sr_cache=SRResultCache())
        return result, time.time() - t0

    print(f"~{args.sessions} Poisson arrivals over {window:.0f}s, "
          f"{args.videos}-video catalog, {args.patience:g}s stall patience")
    print("\npopularity skew sweep (6 Mbps per viewer):")
    for skew in (0.0, 1.0, 2.0):
        result, wall = run(skew, 6.0)
        show(f"  skew {skew:.1f} "
             f"({result.report.n_sessions} viewers)", result.report)
        print(f"    [{wall:.1f}s wall, makespan "
              f"{result.report.makespan:.0f} virtual s]")

    print("\nprovisioning sweep (skew 2.0):")
    for label, mbps in [("  starved (3 Mbps)", 3.0),
                        ("  provisioned (30 Mbps)", 30.0)]:
        result, _ = run(2.0, mbps)
        show(label, result.report)


if __name__ == "__main__":
    main()
