#!/usr/bin/env python
"""Inject faults into a CDN fleet and watch the control plane recover it.

Runs the same viewer population through four scenarios: a fault-free
reference, an edge outage (the fleet fails the dead edge's viewers over
to live edges, cancels its in-flight transfers, restarts its cache
cold), a backhaul brownout (the edge's origin link at 20% capacity),
and a flash crowd piling onto one video.  Each faulty run is repeated
with the closed-loop control plane on — encode-pool autoscaling,
saturation re-steering — and the recovery metrics are printed: how deep
QoE-per-chunk dipped below the pre-fault baseline and how many virtual
seconds until it came back.  The run closes with the hot loop's
wall-clock phase breakdown; ``--trace-out FILE`` also records the
edge-outage controller-on run's structured event trace (Chrome
trace-event JSON for Perfetto, or a JSONL event log with a ``.jsonl``
suffix).

Run:  python examples/chaos_demo.py [--sessions 120] [--interval 5]
                                    [--trace-out trace.json]
"""

import argparse
import math
import time

from repro.experiments import make_cdn, make_population
from repro.experiments.common import SMOKE
from repro.obs import Telemetry, write_chrome_trace, write_jsonl
from repro.streaming import (
    BackhaulDegradation,
    ControlPlane,
    ControlPolicy,
    EdgeOutage,
    FaultSchedule,
    FlashCrowd,
    SRResultCache,
    simulate_fleet,
)


def show(label: str, rep) -> None:
    recover = (
        "never" if math.isinf(rep.time_to_recover_s)
        else f"{rep.time_to_recover_s:5.1f}s"
    )
    print(
        f"{label:<22} resteered {rep.sessions_resteered:3d}  "
        f"ticks {rep.control_ticks:3d}  resizes {rep.encode_pool_resizes}  "
        f"dip {rep.qoe_dip_depth:5.2f}  recover {recover}  "
        f"qoe {rep.mean_qoe:7.2f}  stall {100 * rep.stall_ratio:4.1f}%"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=120,
                        help="target number of viewer arrivals")
    parser.add_argument("--interval", type=float, default=5.0,
                        help="virtual seconds between control-plane ticks")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write the edge-outage ctrl=on event trace "
                        "(Chrome trace JSON; .jsonl for the event log)")
    args = parser.parse_args()
    telemetry = Telemetry(trace=args.trace_out is not None, metrics=False)

    window = float(SMOKE.stream_seconds)
    sessions = make_population(SMOKE, args.sessions)
    print(f"{len(sessions)} viewers over a 4-edge CDN, {window:.0f}s window\n")

    def run(fleet, faults=None, ctrl=False, traced=False):
        topo = make_cdn(
            SMOKE, len(fleet), n_edges=4, assignment="least-loaded"
        )
        controller = (
            ControlPlane(ControlPolicy(interval=args.interval))
            if ctrl else None
        )
        t0 = time.time()
        rep = simulate_fleet(
            fleet, topology=topo, sr_cache=SRResultCache(),
            faults=faults, controller=controller,
            telemetry=telemetry if traced else None,
        ).report
        return rep, time.time() - t0

    rep, dt = run(sessions)
    show("baseline", rep)

    outage = FaultSchedule(
        (EdgeOutage(edge=0, start=0.4 * window, duration=0.25 * window),)
    )
    for ctrl in (False, True):
        rep, dt = run(sessions, faults=outage, ctrl=ctrl, traced=ctrl)
        show(f"edge-outage ctrl={'on' if ctrl else 'off'}", rep)

    degr = FaultSchedule(
        (BackhaulDegradation(
            edge=0, start=0.3 * window, duration=window / 3.0, factor=0.2,
        ),)
    )
    rep, dt = run(sessions, faults=degr, ctrl=True)
    show("backhaul-degr ctrl=on", rep)

    crowd = FaultSchedule(
        (FlashCrowd(
            spec=sessions[0].spec, start=0.3 * window,
            n_viewers=max(1, len(sessions) // 4), ramp_seconds=5.0,
        ),)
    )
    rep, dt = run(crowd.expand_population(sessions), faults=crowd, ctrl=True)
    show("flash-crowd ctrl=on", rep)

    print("\nedge-outage ctrl=on phase breakdown (wall-clock self time):")
    print(telemetry.profiler.report())
    if args.trace_out:
        if args.trace_out.endswith(".jsonl"):
            n = write_jsonl(telemetry.tracer, args.trace_out)
        else:
            n = write_chrome_trace(telemetry.tracer, args.trace_out)
        print(f"trace: {n} events -> {args.trace_out}")

    print(
        "\nfaults are virtual-time events: reruns with the same schedule "
        "are bit-identical, and an empty schedule matches the plain "
        "simulator exactly."
    )


if __name__ == "__main__":
    main()
