#!/usr/bin/env python
"""A/B the ABR policy zoo on one CDN workload, priced in dollars.

Every registered policy — resolve any of them with
``get_policy(name)`` — drives the *same* seeded viewer population over
the same topology, so the rows differ only in the controller.  The run
is priced by the first-principles infrastructure cost model (origin
egress, encode core-hours, amortized edge cache storage, SR device
time), and the last column is the operator's actual objective:
delivered QoE per dollar spent.

Run:  python examples/policy_zoo_demo.py [--sessions 150] [--abr NAME]
"""

import argparse
import time

from repro.experiments import make_cdn, make_population
from repro.experiments.common import SMOKE
from repro.streaming import (
    CostModel,
    FleetSpec,
    SRResultCache,
    available_policies,
    simulate_fleet,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=150,
                        help="target number of viewer arrivals")
    parser.add_argument("--edges", type=int, default=4,
                        help="number of CDN edge sites")
    parser.add_argument("--abr", default=None, metavar="NAME",
                        help="run a single policy instead of the zoo")
    args = parser.parse_args()

    names = [args.abr] if args.abr else available_policies()
    print(f"policy zoo over {args.sessions} viewers, {args.edges} edges "
          f"(same seeded arrivals/catalog per row):\n")
    print(f"{'policy':<16} {'mean qoe':>9} {'stall':>7} {'total $':>9} "
          f"{'qoe/$':>10}  wall")

    for name in names:
        sessions = make_population(SMOKE, args.sessions, abr=name)
        topo = make_cdn(SMOKE, args.sessions, n_edges=args.edges)
        spec = FleetSpec(
            topology=topo, sr_cache=SRResultCache(),
            session_engine="columnar", cost_model=CostModel(),
        )
        t0 = time.time()
        result = simulate_fleet(sessions, spec=spec)
        rep = result.report
        print(f"{name:<16} {rep.mean_qoe:>9.2f} "
              f"{100 * rep.stall_ratio:>6.1f}% {rep.cost.total_usd:>9.4f} "
              f"{rep.cost.qoe_per_dollar(rep.mean_qoe, rep.n_sessions):>10.0f}"
              f"  [{time.time() - t0:.1f}s]")

    print("\ncost components price origin egress, encode core-hours, "
          "edge cache GB-months, and SR device-hours; see "
          "repro.streaming.cost.CostModel for the per-unit rates.")


if __name__ == "__main__":
    main()
