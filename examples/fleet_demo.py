#!/usr/bin/env python
"""Run a 100-session fleet over one shared bottleneck link.

Every client is a VoLUT session (continuous ABR + LUT SR) watching the
same video, joining a shared link at staggered times.  A shared LRU
SR-result cache lets co-watching clients reuse each other's
super-resolution output.  Prints the operator-facing aggregate report
(mean/p5/p95 QoE, stall ratio, cache hit rate) for a congested and an
overprovisioned link, plus a weighted-share comparison, and closes with
the hot loop's wall-clock phase breakdown (scheduler / advance /
planner self-time).  ``--trace-out FILE`` also records the congested
run's structured event trace — Chrome trace-event JSON you can open in
Perfetto, or a JSONL event log with a ``.jsonl`` suffix.

Run:  python examples/fleet_demo.py [--sessions 100] [--seconds 20]
                                    [--trace-out trace.json]
"""

import argparse
import time

from repro.net import stable_trace
from repro.obs import Telemetry, write_chrome_trace, write_jsonl
from repro.streaming import SRResultCache, VideoSpec, simulate_fleet
from repro.experiments import make_fleet


def show(label: str, report) -> None:
    print(
        f"{label:<28} qoe mean {report.mean_qoe:8.2f}  "
        f"p5 {report.p5_qoe:8.2f}  p95 {report.p95_qoe:8.2f}  "
        f"stall {100 * report.stall_ratio:5.1f}%  "
        f"cache hit {100 * report.cache_hit_rate:5.1f}%  "
        f"{report.total_bytes / 1e9:.2f} GB"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=100,
                        help="number of concurrent sessions")
    parser.add_argument("--seconds", type=int, default=20,
                        help="video length per session")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write the congested run's event trace "
                        "(Chrome trace JSON; .jsonl for the event log)")
    args = parser.parse_args()
    telemetry = Telemetry(trace=args.trace_out is not None, metrics=False)

    spec = VideoSpec(
        name="longdress",
        n_frames=args.seconds * 30,
        fps=30,
        points_per_frame=100_000,
    )

    print(f"fleet of {args.sessions} sessions, {args.seconds}s video each")
    for label, mbps in [
        ("congested (4 Mbps/client)", 4.0 * args.sessions),
        ("provisioned (40 Mbps/client)", 40.0 * args.sessions),
    ]:
        t0 = time.time()
        cache = SRResultCache()
        result = simulate_fleet(
            make_fleet(args.sessions, spec, join_spacing=0.25),
            stable_trace(mbps, duration=float(4 * args.seconds)),
            sr_cache=cache,
            telemetry=telemetry if label.startswith("congested") else None,
        )
        show(label, result.report)
        print(f"  [{time.time() - t0:.1f}s wall, makespan "
              f"{result.report.makespan:.0f} virtual s]")

    # Weighted sharing: first 10% of clients get 4x link weight.
    sessions = make_fleet(args.sessions, spec, join_spacing=0.25)
    for i, s in enumerate(sessions):
        s.weight = 4.0 if i < max(1, args.sessions // 10) else 1.0
    result = simulate_fleet(
        sessions,
        stable_trace(4.0 * args.sessions, duration=float(4 * args.seconds)),
        policy="weighted",
        sr_cache=SRResultCache(),
    )
    n_premium = max(1, args.sessions // 10)
    premium = result.sessions[:n_premium]
    standard = result.sessions[n_premium:]
    show("weighted (10% premium @4x)", result.report)
    line = f"  premium mean qoe {sum(r.qoe for r in premium) / len(premium):8.2f}"
    if standard:
        line += f"  standard {sum(r.qoe for r in standard) / len(standard):8.2f}"
    print(line)

    print("\ncongested-run phase breakdown (wall-clock self time):")
    print(telemetry.profiler.report())
    if args.trace_out:
        if args.trace_out.endswith(".jsonl"):
            n = write_jsonl(telemetry.tracer, args.trace_out)
        else:
            n = write_chrome_trace(telemetry.tracer, args.trace_out)
        print(f"trace: {n} events -> {args.trace_out}")


if __name__ == "__main__":
    main()
