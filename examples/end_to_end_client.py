#!/usr/bin/env python
"""Full-fidelity client loop: real codec, real SR, real quality metrics.

Unlike ``streaming_session.py`` (which simulates byte flows analytically at
paper scale), this example pushes actual geometry through the whole stack
for a short clip:

  server:  frame → random downsample at the MPC-chosen density
           → octree-codec encode            (repro.compression)
  network: trace-driven download time       (repro.net)
  client:  decode → dilated interpolation + LUT refinement
           (repro.sr) → render + PSNR/Chamfer vs ground truth

Every byte charged to the session corresponds to a payload that really
exists, and every displayed frame is a real reconstruction.

Run:  python examples/end_to_end_client.py [--frames 10]
"""

import argparse
import time

from repro.experiments import SMOKE, get_artifacts
from repro.metrics import QoEModel, ChunkRecord, chamfer_distance, image_psnr
from repro.net import Link, lte_trace
from repro.pointcloud import make_video
from repro.render import render, viewport_trace
from repro.sr import VolutUpsampler
from repro.streaming import (
    ContinuousMPC,
    SRQualityModel,
    VideoSpec,
    ZERO_LATENCY,
    decode_frame_compressed,
    encode_frame_compressed,
)
from repro.streaming.abr import AbrContext


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=10)
    args = parser.parse_args()

    art = get_artifacts(SMOKE)
    video = make_video("loot", n_points=SMOKE.points_per_frame, n_frames=args.frames)
    # A tight link relative to the clip's bitrate, so the ABR has to work.
    trace = lte_trace(1.0, 0.4, duration=120, seed=2)
    link = Link(trace)
    qm = SRQualityModel()
    mpc = ContinuousMPC(qm, QoEModel(), ZERO_LATENCY)
    upsampler = VolutUpsampler(lut=art.lut, k=4, dilation=2)
    spec = VideoSpec(
        name=video.name, n_frames=args.frames, fps=video.fps,
        points_per_frame=SMOKE.points_per_frame,
    )
    chunks = spec.chunks(1.0 / video.fps)  # one frame per chunk here

    cam = viewport_trace(
        "static", 1, center=tuple(video.frame(0).centroid()), radius=2.2,
        width=SMOKE.image_size, height=SMOKE.image_size,
    )[0]

    t_net = 0.0
    buffer = 0.2  # seconds of pre-rolled content
    records = []
    print(f"{'frame':>5s} {'density':>8s} {'KB':>7s} {'dl ms':>7s} {'sr ms':>7s} "
          f"{'chamfer':>9s} {'psnr':>6s}")
    for i in range(args.frames):
        gt = video.frame(i)
        ctx = AbrContext(
            throughput_bps=trace.bandwidth_at(t_net),
            buffer_level=buffer,
            prev_quality=records[-1].quality if records else None,
            next_chunks=chunks[i : i + 5],
        )
        decision = mpc.decide(ctx)

        payload = encode_frame_compressed(gt, decision.density, seed=i)
        dl = link.download_time(len(payload), t_net)
        t_net += dl
        # Buffer drains in real time while downloading, fills per frame.
        buffer = max(buffer - dl, 0.0) + 1.0 / video.fps

        received = decode_frame_compressed(payload)
        actual_ratio = max(1.0, len(gt) / max(len(received), 1))
        t0 = time.perf_counter()
        out = upsampler.upsample(received, min(actual_ratio, 8.0))
        sr_ms = (time.perf_counter() - t0) * 1e3

        cd = chamfer_distance(out.cloud, gt)
        psnr = image_psnr(render(out.cloud, cam), render(gt, cam))
        records.append(
            ChunkRecord(quality=qm.quality(decision.density),
                        bytes_downloaded=len(payload))
        )
        print(f"{i:5d} {decision.density:8.3f} {len(payload) / 1024:7.1f} "
              f"{dl * 1e3:7.1f} {sr_ms:7.1f} {cd:9.5f} {min(psnr, 99):6.2f}")

    total_kb = sum(r.bytes_downloaded for r in records) / 1024
    raw_kb = args.frames * SMOKE.points_per_frame * 15 / 1024
    print(f"\ntotal downloaded: {total_kb:.0f} KB "
          f"({100 * total_kb / raw_kb:.1f}% of raw {raw_kb:.0f} KB)")


if __name__ == "__main__":
    main()
