#!/usr/bin/env python
"""Render 6DoF viewports of ground truth vs VoLUT output (paper §7.2).

Replays an 'inspect' motion trace against a synthetic frame, renders the
ground-truth cloud and three reconstructions (naive interpolation, dilated
interpolation, VoLUT with LUT refinement), and reports per-method viewport
PSNR.  Optionally writes the rendered frames as PPM images.

Run:  python examples/render_viewports.py [--save-dir out/]
"""

import argparse
from pathlib import Path

import numpy as np

from repro.experiments import SMOKE, get_artifacts
from repro.metrics import mean_image_psnr
from repro.pointcloud import make_video, random_downsample_count
from repro.render import render, viewport_trace
from repro.sr import NaiveUpsampler, VolutUpsampler


def write_ppm(path: Path, img: np.ndarray) -> None:
    """Minimal dependency-free image writer (P6 binary PPM)."""
    h, w, _ = img.shape
    with open(path, "wb") as fh:
        fh.write(f"P6\n{w} {h}\n255\n".encode())
        fh.write(img.tobytes())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--save-dir", type=Path, default=None,
                        help="write rendered PPM frames here")
    parser.add_argument("--views", type=int, default=6)
    args = parser.parse_args()

    art = get_artifacts(SMOKE)
    gt = make_video("longdress", n_points=SMOKE.points_per_frame, n_frames=1).frame(0)
    low = random_downsample_count(gt, len(gt) // 2, seed=0)

    methods = {
        "naive-k4d1": NaiveUpsampler(k=4, dilation=1, seed=0).upsample(low, 2.0).cloud,
        "dilated-k4d2": VolutUpsampler(lut=None, k=4, dilation=2, seed=0).upsample(low, 2.0).cloud,
        "volut-lut": VolutUpsampler(lut=art.lut, k=4, dilation=2, seed=0).upsample(low, 2.0).cloud,
    }

    cams = viewport_trace(
        "inspect",
        n_frames=args.views,
        center=tuple(gt.centroid()),
        radius=2.2,
        width=192,
        height=192,
        seed=0,
    )
    gt_renders = [render(gt, cam) for cam in cams]

    print(f"{'method':14s} {'viewport PSNR (dB)':>20s}")
    print("-" * 36)
    for name, cloud in methods.items():
        pairs = [(render(cloud, cam), ref) for cam, ref in zip(cams, gt_renders)]
        print(f"{name:14s} {mean_image_psnr(pairs):20.2f}")
        if args.save_dir:
            args.save_dir.mkdir(parents=True, exist_ok=True)
            for i, (img, _) in enumerate(pairs):
                write_ppm(args.save_dir / f"{name}_{i:02d}.ppm", img)

    if args.save_dir:
        for i, img in enumerate(gt_renders):
            write_ppm(args.save_dir / f"groundtruth_{i:02d}.ppm", img)
        print(f"\nframes written to {args.save_dir}/")


if __name__ == "__main__":
    main()
