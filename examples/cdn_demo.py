#!/usr/bin/env python
"""Run a viewer population through a CDN edge topology.

Viewers arrive as a Poisson process, pick videos from a Zipf-skewed
catalog, and are assigned to CDN edges.  Each chunk request consults its
edge's LRU cache: a hit is served over the access link alone, a miss
pulls origin → edge → viewer over the backhaul (after the origin's
bounded encode workers have the variant) and fills the cache for the
next co-watching viewer.  Prints the CDN columns an operator watches —
per-edge hit rates, origin egress vs delivered bytes, encode-queue
waits — for the three viewer→edge assignment policies, then shows
encode-pool contention.

Run:  python examples/cdn_demo.py [--sessions 120] [--seconds 12]
"""

import argparse
import time

from repro.experiments import make_cdn, make_population
from repro.experiments.common import Scale, SMOKE
from repro.streaming import SRResultCache, simulate_fleet


def show(label: str, result) -> None:
    rep = result.report
    per_edge = "/".join(f"{100 * h:.0f}%" for h in rep.edge_hit_rates)
    print(
        f"{label:<24} edge hit {100 * rep.edge_hit_rate:5.1f}% [{per_edge}]  "
        f"origin {rep.origin_egress_bytes / 1e9:5.2f} GB of "
        f"{rep.total_bytes / 1e9:5.2f} GB delivered  "
        f"qoe {rep.mean_qoe:7.2f}  abandoned {100 * rep.abandon_rate:4.1f}%"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=120,
                        help="target number of viewer arrivals")
    parser.add_argument("--seconds", type=int, default=12,
                        help="video length per catalog entry")
    parser.add_argument("--edges", type=int, default=4,
                        help="number of CDN edge sites")
    parser.add_argument("--skew", type=float, default=1.4,
                        help="catalog popularity skew")
    args = parser.parse_args()

    scale = Scale(
        name="demo",
        points_per_frame=SMOKE.points_per_frame,
        quality_frames=SMOKE.quality_frames,
        image_size=SMOKE.image_size,
        train_epochs=SMOKE.train_epochs,
        stream_seconds=args.seconds,
    )
    sessions = make_population(scale, args.sessions, skew=args.skew)
    print(
        f"{len(sessions)} viewers over {args.edges} edges, "
        f"Zipf skew {args.skew:g}, {args.seconds}s videos"
    )

    print("\nassignment policy sweep (warm 4 GiB edge caches):")
    for assignment in ("static", "least-loaded", "popularity"):
        topo = make_cdn(
            scale, len(sessions), n_edges=args.edges,
            mbps_per_session=10.0, assignment=assignment,
        )
        t0 = time.time()
        result = simulate_fleet(sessions, topology=topo, sr_cache=SRResultCache())
        show(f"  {assignment}", result)
        print(f"    [{time.time() - t0:.1f}s wall, makespan "
              f"{result.report.makespan:.0f} virtual s]")

    print("\nencode contention (popularity assignment, cold origin):")
    for label, workers, secs in [("  provisioned (8 workers)", 8, 0.05),
                                 ("  starved (1 worker, 10x)", 1, 0.5)]:
        topo = make_cdn(
            scale, len(sessions), n_edges=args.edges,
            mbps_per_session=10.0, assignment="popularity",
            n_encode_workers=workers, encode_seconds=secs,
        )
        result = simulate_fleet(sessions, topology=topo, sr_cache=SRResultCache())
        rep = result.report
        print(f"{label:<26} encode waits p50 {rep.encode_wait_p50:6.2f}s  "
              f"p95 {rep.encode_wait_p95:6.2f}s  qoe {rep.mean_qoe:7.2f}  "
              f"stall {100 * rep.stall_ratio:5.1f}%")


if __name__ == "__main__":
    main()
