"""System configurations for end-to-end streaming evaluation."""

from __future__ import annotations

from dataclasses import dataclass

from ..devices import DESKTOP_GPU, DeviceProfile
from ..metrics.qoe import QoEModel, QoEWeights
from ..net.traces import NetworkTrace
from ..streaming.abr import (
    AbrController,
    ContinuousMPC,
    DiscreteMPC,
    SRQualityModel,
)
from ..streaming.chunks import VideoSpec
from ..streaming.latency import DeviceSRLatency, SRLatency, ZERO_LATENCY
from ..streaming.simulator import SessionConfig, SessionResult, simulate_session

__all__ = [
    "SystemSetup",
    "volut_system",
    "volut_discrete_system",
    "volut_viewport_system",
    "measure_vivo_parameters",
    "yuzu_sr_system",
    "vivo_system",
    "raw_system",
    "run_system",
]

#: Serialized size of one YuZu SR model.  Our stand-in MLP is ~0.6 MB per
#: ratio; YuZu's sparse-conv models are tens of MB — we charge 12 MB per
#: ratio so the data-usage accounting has the paper's proportions.
YUZU_MODEL_BYTES_PER_RATIO = 12 * 1024 * 1024
YUZU_N_MODELS = 5  # its discrete ratio options


@dataclass
class SystemSetup:
    """A runnable streaming-system configuration."""

    name: str
    controller: AbrController
    sr_latency: SRLatency
    quality_model: SRQualityModel
    config: SessionConfig
    qoe_weights: QoEWeights


def _default_weights() -> QoEWeights:
    return QoEWeights()


def volut_system(
    profile: DeviceProfile = DESKTOP_GPU,
    min_density: float = 1.0 / 8.0,
    chunk_seconds: float = 1.0,
    weights: QoEWeights | None = None,
) -> SystemSetup:
    """H1: VoLUT with continuous ABR and LUT-based SR."""
    w = weights or _default_weights()
    qm = SRQualityModel(max_ratio=1.0 / min_density)
    lat = DeviceSRLatency("volut", profile)
    ctrl = ContinuousMPC(qm, QoEModel(w), lat, min_density=min_density)
    return SystemSetup(
        name="volut",
        controller=ctrl,
        sr_latency=lat,
        quality_model=qm,
        config=SessionConfig(chunk_seconds=chunk_seconds),
        qoe_weights=w,
    )


def volut_discrete_system(
    profile: DeviceProfile = DESKTOP_GPU,
    chunk_seconds: float = 1.0,
    weights: QoEWeights | None = None,
) -> SystemSetup:
    """H2: VoLUT's SR speed but discrete quality levels (ratios ≤ 4)."""
    w = weights or _default_weights()
    qm = SRQualityModel(max_ratio=4.0)
    lat = DeviceSRLatency("volut", profile)
    ctrl = DiscreteMPC(qm, QoEModel(w), lat)
    return SystemSetup(
        name="volut-discrete",
        controller=ctrl,
        sr_latency=lat,
        quality_model=qm,
        config=SessionConfig(chunk_seconds=chunk_seconds),
        qoe_weights=w,
    )


def yuzu_sr_system(
    profile: DeviceProfile = DESKTOP_GPU,
    chunk_seconds: float = 1.0,
    weights: QoEWeights | None = None,
) -> SystemSetup:
    """H3 / YuZu-SR: discrete ABR + neural-SR latency + model downloads.

    Caching and delta coding are not modeled — the paper disables them for
    fairness.
    """
    w = weights or _default_weights()
    qm = SRQualityModel(max_ratio=4.0)
    lat = DeviceSRLatency("yuzu", profile)
    ctrl = DiscreteMPC(qm, QoEModel(w), lat)
    return SystemSetup(
        name="yuzu-sr",
        controller=ctrl,
        sr_latency=lat,
        quality_model=qm,
        config=SessionConfig(
            chunk_seconds=chunk_seconds,
            startup_bytes=YUZU_MODEL_BYTES_PER_RATIO * YUZU_N_MODELS,
        ),
        qoe_weights=w,
    )


def vivo_system(
    chunk_seconds: float = 1.0,
    visible_fraction: float = 0.55,
    prediction_accuracy: float = 0.75,
    weights: QoEWeights | None = None,
) -> SystemSetup:
    """ViVo: visibility-aware streaming, no SR.

    The client fetches full-density content but only for the predicted
    viewport (``visible_fraction`` of the bytes).  Mispredictions under
    motion surface as missing content in the actual viewport —
    ``prediction_accuracy`` multiplies delivered quality (paper §1: quality
    degrades 'under rapid viewer movement').
    """
    w = weights or _default_weights()
    qm = SRQualityModel(max_ratio=1.0)  # no SR: quality == density fetched
    # ViVo adapts density with its own optimizer (no SR to account for);
    # the planner prices downloads at the culled byte count.
    ctrl = ContinuousMPC(
        qm, QoEModel(w), ZERO_LATENCY, min_density=0.2,
        fetch_fraction=visible_fraction,
    )
    return SystemSetup(
        name="vivo",
        controller=ctrl,
        sr_latency=ZERO_LATENCY,
        quality_model=qm,
        config=SessionConfig(
            chunk_seconds=chunk_seconds,
            fetch_fraction=visible_fraction,
            quality_factor=prediction_accuracy,
        ),
        qoe_weights=w,
    )


def raw_system(
    chunk_seconds: float = 1.0, weights: QoEWeights | None = None
) -> SystemSetup:
    """Raw full-density streaming (the bandwidth-reduction reference)."""
    w = weights or _default_weights()
    qm = SRQualityModel(max_ratio=1.0)

    class _Full(AbrController):
        def decide(self, ctx):
            from ..streaming.abr import Decision

            return Decision(density=1.0, sr_ratio=1.0)

    return SystemSetup(
        name="raw",
        controller=_Full(),
        sr_latency=ZERO_LATENCY,
        quality_model=qm,
        config=SessionConfig(chunk_seconds=chunk_seconds),
        qoe_weights=w,
    )


def measure_vivo_parameters(
    n_points: int = 3000,
    trace_kind: str = "orbit",
    n_frames: int = 60,
    lookahead: int = 30,
    seed: int = 0,
) -> tuple[float, float]:
    """Measure (visible_fraction, prediction_accuracy) from real geometry.

    Renders a synthetic frame along a 6DoF trace and measures how much of
    the cloud is frustum-and-occlusion visible, and how well the current
    viewport predicts the viewport ``lookahead`` frames later.  The result
    feeds :func:`vivo_system` in place of its defaults.
    """
    from ..pointcloud.datasets import make_video
    from ..render.viewport import viewport_trace
    from ..render.visibility import prediction_accuracy, trace_visibility

    frame = make_video("longdress", n_points=n_points, n_frames=1, seed=seed).frame(0)
    cams = viewport_trace(
        trace_kind,
        n_frames=n_frames,
        center=tuple(frame.centroid()),
        radius=2.2,
        width=128,
        height=128,
        seed=seed,
    )
    stats = trace_visibility(frame, cams[:10])
    acc = prediction_accuracy(frame, cams, lookahead=lookahead)
    return stats["mean"], acc


def volut_viewport_system(
    profile: DeviceProfile = DESKTOP_GPU,
    min_density: float = 1.0 / 8.0,
    chunk_seconds: float = 1.0,
    visible_fraction: float = 0.55,
    prediction_accuracy: float = 0.9,
    weights: QoEWeights | None = None,
) -> SystemSetup:
    """Extension (paper §9 future work): VoLUT + viewport adaptation.

    Combines ViVo-style visibility culling with the SR pipeline: only the
    predicted-visible portion of each chunk is fetched (at the ABR-chosen
    density) and super-resolved on the client.  Misprediction costs less
    than for ViVo because VoLUT streams the *whole* object at reduced
    density when bandwidth allows, so off-viewport content is degraded
    rather than missing — modeled with a milder quality factor.
    """
    w = weights or _default_weights()
    qm = SRQualityModel(max_ratio=1.0 / min_density)
    lat = DeviceSRLatency("volut", profile)
    ctrl = ContinuousMPC(
        qm, QoEModel(w), lat, min_density=min_density,
        fetch_fraction=visible_fraction,
    )
    return SystemSetup(
        name="volut-viewport",
        controller=ctrl,
        sr_latency=lat,
        quality_model=qm,
        config=SessionConfig(
            chunk_seconds=chunk_seconds,
            fetch_fraction=visible_fraction,
            quality_factor=prediction_accuracy,
        ),
        qoe_weights=w,
    )


def run_system(
    setup: SystemSetup, spec: VideoSpec, trace: NetworkTrace
) -> SessionResult:
    """Simulate a session for a configured system."""
    return simulate_session(
        spec,
        trace,
        setup.controller,
        sr_latency=setup.sr_latency,
        quality_model=setup.quality_model,
        config=setup.config,
        qoe_weights=setup.qoe_weights,
    )
