"""Complete streaming systems under test (paper §7.4/§7.5).

Each factory wires a controller, an SR latency model, and session knobs
into a ready-to-run configuration:

* :func:`volut_system` — H1: continuous MPC + LUT SR;
* :func:`volut_discrete_system` — H2: discrete MPC + LUT SR;
* :func:`yuzu_sr_system` — H3 / YuZu-SR: discrete MPC + neural SR latency
  + SR-model downloads charged to data usage;
* :func:`vivo_system` — ViVo: visibility-culled raw streaming (no SR);
* :func:`raw_system` — full-density baseline.
"""

from .factory import (
    SystemSetup,
    measure_vivo_parameters,
    raw_system,
    run_system,
    vivo_system,
    volut_discrete_system,
    volut_system,
    volut_viewport_system,
    yuzu_sr_system,
)

__all__ = [
    "SystemSetup",
    "volut_system",
    "volut_discrete_system",
    "volut_viewport_system",
    "yuzu_sr_system",
    "vivo_system",
    "raw_system",
    "run_system",
    "measure_vivo_parameters",
]
