"""Geometric point-cloud metrics (paper §7.1).

* :func:`chamfer_distance` — symmetric point-to-point (P2P) Chamfer
  distance, the paper's geometric-accuracy metric (Figs. 8/10);
* :func:`p2p_distances` — the one-directional nearest distances, also used
  by the D1-style geometry PSNR;
* :func:`geometry_psnr` — MPEG D1-style PSNR over point-to-point MSE with a
  bounding-box-diagonal peak, the standard scalar quality figure for
  geometry.
"""

from __future__ import annotations

import numpy as np

from ..pointcloud.cloud import PointCloud
from ..spatial.knn import kdtree_knn

__all__ = ["p2p_distances", "chamfer_distance", "hausdorff_distance", "geometry_psnr"]


def _positions(c: PointCloud | np.ndarray) -> np.ndarray:
    if isinstance(c, PointCloud):
        return c.positions
    arr = np.asarray(c, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise ValueError(f"expected (n, 3) positions, got {arr.shape}")
    return arr


def p2p_distances(source: PointCloud | np.ndarray, target: PointCloud | np.ndarray) -> np.ndarray:
    """Distance from each source point to its nearest target point."""
    src, tgt = _positions(source), _positions(target)
    if len(tgt) == 0:
        raise ValueError("target cloud is empty")
    if len(src) == 0:
        return np.zeros(0)
    _, dist = kdtree_knn(tgt, src, 1)
    return dist[:, 0]


def chamfer_distance(
    a: PointCloud | np.ndarray, b: PointCloud | np.ndarray, squared: bool = False
) -> float:
    """Symmetric Chamfer distance: mean NN distance in both directions.

    ``squared=True`` averages squared distances (the common CD-L2 variant);
    the default averages Euclidean distances (CD-L1), which is what P2P
    Chamfer plots in the paper's units resemble.
    """
    d_ab = p2p_distances(a, b)
    d_ba = p2p_distances(b, a)
    if squared:
        return float(np.mean(d_ab ** 2) + np.mean(d_ba ** 2))
    return float(d_ab.mean() + d_ba.mean())


def hausdorff_distance(a: PointCloud | np.ndarray, b: PointCloud | np.ndarray) -> float:
    """Symmetric Hausdorff (worst-case) distance."""
    return float(max(p2p_distances(a, b).max(), p2p_distances(b, a).max()))


def geometry_psnr(
    test: PointCloud | np.ndarray,
    reference: PointCloud | np.ndarray,
    peak: float | None = None,
) -> float:
    """D1-style geometry PSNR in dB.

    ``peak`` defaults to the reference bounding-box diagonal (MPEG PCC
    convention).  Returns +inf for an exact match.
    """
    ref_pos = _positions(reference)
    if peak is None:
        lo, hi = ref_pos.min(axis=0), ref_pos.max(axis=0)
        peak = float(np.linalg.norm(hi - lo))
    if peak <= 0:
        raise ValueError("peak must be positive")
    d = p2p_distances(test, reference)
    mse = float(np.mean(d ** 2))
    if mse == 0.0:
        return float("inf")
    return float(10.0 * np.log10(peak ** 2 / mse))
