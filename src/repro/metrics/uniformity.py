"""Point-distribution uniformity (paper Figs. 4/5 qualitative claim).

Naive kNN interpolation "reinforces existing density patterns"; dilation
produces "more uniform point distribution while preserving geometric
details".  These statistics quantify that claim so Fig. 4 has a measurable
counterpart:

* :func:`nn_distance_cv` — coefficient of variation of nearest-neighbor
  distances (0 = perfectly even spacing; clumping inflates it);
* :func:`local_density_cv` — coefficient of variation of kNN-ball density;
* :func:`coverage_radius` — max distance from any reference-surface point
  to the cloud (how well the surface is covered — hole detection).
"""

from __future__ import annotations

import numpy as np

from ..pointcloud.cloud import PointCloud
from ..spatial.knn import kdtree_knn
from .chamfer import p2p_distances

__all__ = ["nn_distance_cv", "local_density_cv", "coverage_radius"]


def nn_distance_cv(cloud: PointCloud | np.ndarray) -> float:
    """Coefficient of variation (std/mean) of nearest-neighbor distances."""
    pos = cloud.positions if isinstance(cloud, PointCloud) else np.asarray(cloud)
    if len(pos) < 2:
        raise ValueError("need at least 2 points")
    _, dist = kdtree_knn(pos, pos, 2)
    d = dist[:, 1]
    mean = d.mean()
    if mean == 0:
        return 0.0
    return float(d.std() / mean)


def local_density_cv(cloud: PointCloud | np.ndarray, k: int = 8) -> float:
    """CV of local density, estimated as ``k / volume(kNN ball)``."""
    pos = cloud.positions if isinstance(cloud, PointCloud) else np.asarray(cloud)
    if len(pos) < k + 1:
        raise ValueError(f"need at least k+1={k + 1} points")
    _, dist = kdtree_knn(pos, pos, k + 1)
    r = np.maximum(dist[:, -1], 1e-12)
    density = k / ((4.0 / 3.0) * np.pi * r ** 3)
    mean = density.mean()
    if mean == 0:
        return 0.0
    return float(density.std() / mean)


def coverage_radius(
    cloud: PointCloud | np.ndarray, surface: PointCloud | np.ndarray
) -> float:
    """Max distance from any surface sample to the cloud (hole size)."""
    return float(p2p_distances(surface, cloud).max())
