"""QoE model (paper §5.1, Eq. 10 — borrowed from YuZu's formulation).

    QoE = Σ_i ( α·Q(r_i) − β·V(r_i, r_{i−1}) − γ·S(r_i) )

* ``Q`` — visual quality, the post-SR point density viewed by the user,
  normalized by the full-density point count so Q ∈ [0, 1] per chunk;
* ``V`` — quality-variation penalty between consecutive chunks, with a
  higher weight on quality *drops* (more noticeable to viewers);
* ``S`` — stall time in seconds attributed to the chunk.

The same model is used both inside the MPC controller (to plan) and by the
evaluation harness (to score finished sessions), exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "QoEWeights",
    "ChunkRecord",
    "QoEModel",
    "session_qoe",
    "aggregate_qoe",
    "bootstrap_ci",
]


@dataclass(frozen=True)
class QoEWeights:
    """Coefficients of Eq. 10.

    ``drop_multiplier`` scales the variation penalty when quality decreases
    ("higher weights for quality drops").
    """

    alpha: float = 1.0
    beta: float = 0.5
    gamma: float = 2.0
    drop_multiplier: float = 2.0


@dataclass
class ChunkRecord:
    """What the viewer experienced for one chunk."""

    #: displayed (post-SR) point density as a fraction of full density
    quality: float
    #: rebuffering time attributed to this chunk, seconds
    stall: float = 0.0
    #: bytes downloaded for this chunk (media + any models/metadata)
    bytes_downloaded: int = 0


class QoEModel:
    """Evaluates Eq. 10 over chunk sequences."""

    def __init__(self, weights: QoEWeights | None = None):
        self.weights = weights or QoEWeights()

    # ------------------------------------------------------------------
    def quality_term(self, quality: float) -> float:
        """α·Q for one chunk."""
        return self.weights.alpha * float(quality)

    def variation_term(self, quality: float, prev_quality: float | None) -> float:
        """β·V between consecutive chunks (0 for the first chunk)."""
        if prev_quality is None:
            return 0.0
        delta = quality - prev_quality
        mult = self.weights.drop_multiplier if delta < 0 else 1.0
        return self.weights.beta * mult * abs(delta)

    def stall_term(self, stall: float) -> float:
        """γ·S for one chunk."""
        if stall < 0:
            raise ValueError("stall must be non-negative")
        return self.weights.gamma * float(stall)

    # ------------------------------------------------------------------
    def chunk_qoe(self, rec: ChunkRecord, prev_quality: float | None) -> float:
        """Per-chunk contribution to the session QoE."""
        return (
            self.quality_term(rec.quality)
            - self.variation_term(rec.quality, prev_quality)
            - self.stall_term(rec.stall)
        )

    def session(self, records: list[ChunkRecord]) -> float:
        """Total QoE of a session."""
        total, prev = 0.0, None
        for rec in records:
            total += self.chunk_qoe(rec, prev)
            prev = rec.quality
        return total

    def plan_value(
        self,
        qualities: list[float],
        stalls: list[float],
        prev_quality: float | None,
    ) -> float:
        """Value of a candidate plan over the MPC horizon (used by the ABR)."""
        if len(qualities) != len(stalls):
            raise ValueError("qualities and stalls must align")
        total = 0.0
        prev = prev_quality
        for q, s in zip(qualities, stalls):
            total += (
                self.quality_term(q)
                - self.variation_term(q, prev)
                - self.stall_term(s)
            )
            prev = q
        return total

    def plan_values(
        self,
        qualities: np.ndarray,
        stalls: np.ndarray,
        prev_quality: np.ndarray | float | None = None,
    ) -> np.ndarray:
        """Vectorized :meth:`plan_value` over many independent plans.

        ``qualities`` and ``stalls`` broadcast against each other; axis 0 is
        the horizon (chunk index), every trailing axis an independent plan
        (candidate density, session, ...).  ``prev_quality`` may be ``None``
        (no previous chunk anywhere), a scalar, or an array broadcastable to
        the plan axes in which ``NaN`` marks "no previous chunk" for that
        plan.  The arithmetic mirrors the scalar loop term for term, so the
        two paths agree to the last ulp (the vectorized-MPC parity oracle).
        """
        q, s = np.broadcast_arrays(
            np.asarray(qualities, dtype=np.float64),
            np.asarray(stalls, dtype=np.float64),
        )
        if q.ndim < 1:
            raise ValueError("need a horizon axis")
        if np.any(s < 0):
            raise ValueError("stall must be non-negative")
        w = self.weights
        if prev_quality is None:
            prev = np.full(q.shape[1:], np.nan)
        else:
            prev = np.broadcast_to(
                np.asarray(prev_quality, dtype=np.float64), q.shape[1:]
            )
        total = np.zeros(q.shape[1:])
        for i in range(q.shape[0]):
            qi = q[i]
            delta = qi - prev
            mult = np.where(delta < 0, w.drop_multiplier, 1.0)
            variation = np.where(
                np.isnan(prev), 0.0, w.beta * mult * np.abs(delta)
            )
            total = total + (w.alpha * qi - variation - w.gamma * s[i])
            prev = qi
        return total


def session_qoe(
    records: list[ChunkRecord], weights: QoEWeights | None = None
) -> dict[str, float]:
    """Score a session; returns QoE plus the aggregates the paper reports."""
    model = QoEModel(weights)
    qoe = model.session(records)
    total_bytes = sum(r.bytes_downloaded for r in records)
    stall = sum(r.stall for r in records)
    mean_q = float(np.mean([r.quality for r in records])) if records else 0.0
    return {
        "qoe": qoe,
        "bytes": float(total_bytes),
        "stall_seconds": stall,
        "mean_quality": mean_q,
        "n_chunks": float(len(records)),
    }


def aggregate_qoe(
    qoes: list[float],
    stall_seconds: list[float],
    played_seconds: list[float],
) -> dict[str, float]:
    """Population-level QoE statistics over many sessions (fleet report).

    Returns the aggregates a service operator watches: mean and tail
    (p5/p95) per-session QoE, and the fleet stall ratio — total rebuffering
    time over total session time (playback + stalls), the fraction of
    viewer wall-clock spent frozen.
    """
    if not qoes:
        raise ValueError("need at least one session")
    if not len(qoes) == len(stall_seconds) == len(played_seconds):
        raise ValueError("per-session lists must align")
    if any(s < 0 for s in stall_seconds) or any(p <= 0 for p in played_seconds):
        raise ValueError("stalls must be non-negative, playback positive")
    q = np.asarray(qoes, dtype=np.float64)
    total_stall = float(np.sum(stall_seconds))
    total_play = float(np.sum(played_seconds))
    return {
        "mean_qoe": float(np.mean(q)),
        "p5_qoe": float(np.percentile(q, 5)),
        "p95_qoe": float(np.percentile(q, 95)),
        "stall_ratio": total_stall / (total_play + total_stall),
        "total_stall_seconds": total_stall,
        "n_sessions": float(len(qoes)),
    }


def bootstrap_ci(
    values: list[float] | np.ndarray,
    *,
    n_boot: int = 1000,
    confidence: float = 0.95,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean of ``values``.

    Resamples the per-session values with replacement ``n_boot`` times
    (seeded :func:`numpy.random.default_rng`, so reruns are identical)
    and returns the (lo, hi) percentile interval of the resampled means.
    This is how the policy-zoo A/B reports uncertainty on mean QoE:
    nonparametric, so the heavy left tail a stall-prone policy produces
    widens its interval instead of being assumed away.
    """
    v = np.asarray(values, dtype=np.float64)
    if v.ndim != 1 or v.size == 0:
        raise ValueError("need a non-empty 1-D sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if n_boot < 1:
        raise ValueError("n_boot must be positive")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, v.size, size=(n_boot, v.size))
    means = v[idx].mean(axis=1)
    tail = 100.0 * (1.0 - confidence) / 2.0
    lo, hi = np.percentile(means, [tail, 100.0 - tail])
    return float(lo), float(hi)
