"""Quality and experience metrics."""

from .chamfer import (
    chamfer_distance,
    geometry_psnr,
    hausdorff_distance,
    p2p_distances,
)
from .psnr import image_mse, image_psnr, mean_image_psnr
from .qoe import (
    ChunkRecord,
    QoEModel,
    QoEWeights,
    aggregate_qoe,
    bootstrap_ci,
    session_qoe,
)
from .temporal import flicker_index, temporal_chamfer
from .uniformity import coverage_radius, local_density_cv, nn_distance_cv

__all__ = [
    "chamfer_distance",
    "hausdorff_distance",
    "geometry_psnr",
    "p2p_distances",
    "image_psnr",
    "image_mse",
    "mean_image_psnr",
    "nn_distance_cv",
    "local_density_cv",
    "coverage_radius",
    "QoEModel",
    "QoEWeights",
    "ChunkRecord",
    "session_qoe",
    "aggregate_qoe",
    "bootstrap_ci",
    "temporal_chamfer",
    "flicker_index",
]
