"""Temporal-stability metrics for volumetric video.

Per-frame SR can be geometrically accurate yet *flicker*: if consecutive
frames' reconstructions place points differently, the rendered video
shimmers even when each still image looks fine.  These metrics quantify
that axis (not reported in the paper's figures, but a practical concern
for any per-frame SR system and a natural extension experiment):

* :func:`temporal_chamfer` — Chamfer distance between consecutive
  reconstructions, minus the ground-truth motion floor;
* :func:`flicker_index` — the same idea in image space: mean absolute
  difference between consecutive rendered frames, in excess of the
  ground-truth video's own frame difference.
"""

from __future__ import annotations

import numpy as np

from ..pointcloud.cloud import PointCloud
from .chamfer import chamfer_distance
from .psnr import image_mse

__all__ = ["temporal_chamfer", "flicker_index"]


def temporal_chamfer(
    reconstructed: list[PointCloud], ground_truth: list[PointCloud]
) -> float:
    """Excess frame-to-frame geometric churn of a reconstruction.

    Computes mean CD(recon_t, recon_{t+1}) − mean CD(gt_t, gt_{t+1}); the
    ground-truth term is the legitimate scene motion, so the difference
    isolates reconstruction-induced instability.  ≈ 0 means the SR output
    is as temporally coherent as the content itself.
    """
    if len(reconstructed) != len(ground_truth):
        raise ValueError("sequences must have equal length")
    if len(reconstructed) < 2:
        raise ValueError("need at least two frames")
    rec = np.mean([
        chamfer_distance(a, b)
        for a, b in zip(reconstructed, reconstructed[1:])
    ])
    gt = np.mean([
        chamfer_distance(a, b)
        for a, b in zip(ground_truth, ground_truth[1:])
    ])
    return float(rec - gt)


def flicker_index(
    reconstructed_frames: list[np.ndarray], ground_truth_frames: list[np.ndarray]
) -> float:
    """Image-space flicker in excess of the content's own motion.

    Inputs are rendered frame sequences (uint8 images from the same
    camera).  Returns mean RMS frame difference of the reconstruction minus
    that of the ground truth; ≥ 0 up to rendering noise, smaller is better.
    """
    if len(reconstructed_frames) != len(ground_truth_frames):
        raise ValueError("sequences must have equal length")
    if len(reconstructed_frames) < 2:
        raise ValueError("need at least two frames")

    def mean_rms(frames: list[np.ndarray]) -> float:
        return float(
            np.mean(
                [
                    np.sqrt(image_mse(a.astype(float), b.astype(float)))
                    for a, b in zip(frames, frames[1:])
                ]
            )
        )

    return mean_rms(reconstructed_frames) - mean_rms(ground_truth_frames)
