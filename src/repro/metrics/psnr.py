"""Image-space quality metrics.

The paper's visual-quality protocol (§7.2): render viewports of the
SR-enhanced cloud and of the ground-truth cloud along recorded 6DoF motion
traces, then compare the image pairs with PSNR.  These helpers operate on
images produced by :mod:`repro.render`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["image_psnr", "image_mse", "mean_image_psnr"]


def image_mse(a: np.ndarray, b: np.ndarray) -> float:
    """Mean squared error between two images (any matching shape)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"image shapes differ: {a.shape} vs {b.shape}")
    return float(np.mean((a - b) ** 2))


def image_psnr(a: np.ndarray, b: np.ndarray, peak: float = 255.0) -> float:
    """PSNR in dB between two images; +inf for identical inputs."""
    if peak <= 0:
        raise ValueError("peak must be positive")
    mse = image_mse(a, b)
    if mse == 0.0:
        return float("inf")
    return float(10.0 * np.log10(peak ** 2 / mse))


def mean_image_psnr(
    pairs: list[tuple[np.ndarray, np.ndarray]], peak: float = 255.0
) -> float:
    """Average PSNR over (test, reference) image pairs, per the paper's
    protocol of averaging per-frame viewport PSNR over a motion trace.

    Infinite per-pair values (identical frames) are clipped to 99 dB so the
    average stays finite, mirroring common practice in codec evaluation.
    """
    if not pairs:
        raise ValueError("no image pairs given")
    vals = []
    for a, b in pairs:
        v = image_psnr(a, b, peak)
        vals.append(min(v, 99.0))
    return float(np.mean(vals))
