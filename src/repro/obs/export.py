"""Exporters: JSONL event log, Chrome trace-event JSON, Prometheus text.

Three interchange formats for one run's telemetry:

* :func:`write_jsonl` — one JSON object per line per event, the
  grep/jq-friendly archival format (what the nightly chaos lane uploads
  as a workflow artifact);
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (load the file at ``ui.perfetto.dev`` or
  ``chrome://tracing``).  Sessions render as tracks: each shard is a
  process, each session a thread within it, and ``chunk.complete``
  events (which carry their transfer's ``elapsed``) become duration
  slices so a session's timeline reads as back-to-back chunk
  transfers with instant markers for everything else;
* :func:`prometheus_text` / :func:`write_prometheus` — the Prometheus
  text exposition format for a :class:`~repro.obs.metrics.MetricsRegistry`
  (counters, gauges, ``_bucket``/``_sum``/``_count`` histograms, and
  each time series' latest sample as a gauge).

Virtual seconds map to trace microseconds 1:1, so one simulated second
reads as one "microsecond-scale" tick in the viewer — timelines keep
their proportions and Perfetto's zoom math stays exact.
"""

from __future__ import annotations

import json
import re

from .events import EV_CHUNK_COMPLETE, TraceEvent
from .metrics import MetricsRegistry

__all__ = [
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus",
]

#: virtual seconds -> trace-event microseconds
_US = 1e6

#: thread id 0 is the fleet-level track; session ``s`` renders on ``s + 1``
_FLEET_TID = 0


def write_jsonl(events, path: str) -> int:
    """Write one JSON object per event to ``path``; returns event count."""
    n = 0
    with open(path, "w") as fh:
        for ev in events:
            fh.write(json.dumps(ev.to_dict(), separators=(",", ":")))
            fh.write("\n")
            n += 1
    return n


def _pid(ev: TraceEvent) -> int:
    return 0 if ev.shard is None else ev.shard


def chrome_trace(events) -> dict:
    """Chrome trace-event JSON (``traceEvents`` array form) for ``events``.

    ``chunk.complete`` events carry ``elapsed`` and become complete
    ("X") duration slices covering the transfer; every other event is an
    instant ("i") marker on its session's (or the fleet's) track.
    """
    trace_events: list[dict] = []
    pids: set[int] = set()
    for ev in events:
        pid = _pid(ev)
        pids.add(pid)
        tid = _FLEET_TID if ev.session is None else ev.session + 1
        args = dict(ev.data) if ev.data else {}
        if ev.kind == EV_CHUNK_COMPLETE and "elapsed" in args:
            elapsed = float(args["elapsed"])
            trace_events.append(
                {
                    "name": ev.kind,
                    "ph": "X",
                    "ts": (ev.t - elapsed) * _US,
                    "dur": elapsed * _US,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
            continue
        trace_events.append(
            {
                "name": ev.kind,
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "ts": ev.t * _US,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    for pid in sorted(pids):
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"shard-{pid}" if pid else "fleet"},
            }
        )
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": _FLEET_TID,
                "args": {"name": "fleet events"},
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(events, path: str) -> int:
    """Write :func:`chrome_trace` JSON to ``path``; returns event count."""
    doc = chrome_trace(events)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    # metadata records are not telemetry events
    return sum(1 for e in doc["traceEvents"] if e["ph"] != "M")


_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitize an instrument name into the Prometheus charset."""
    out = _NAME_RE.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus text exposition of every instrument in ``registry``."""
    lines: list[str] = []
    for name, counter in sorted(registry.counters.items()):
        pname = _prom_name(name)
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname} {counter.value:g}")
    for name, gauge in sorted(registry.gauges.items()):
        pname = _prom_name(name)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {gauge.value:g}")
    for name, hist in sorted(registry.histograms.items()):
        pname = _prom_name(name)
        lines.append(f"# TYPE {pname} histogram")
        for bound, count in zip(hist.bounds, hist.cumulative()):
            lines.append(f'{pname}_bucket{{le="{bound:g}"}} {count}')
        lines.append(f'{pname}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{pname}_sum {hist.sum:g}")
        lines.append(f"{pname}_count {hist.count}")
    for name, series in sorted(registry.series.items()):
        pname = _prom_name(name)
        last = series.last
        if last is None:
            continue
        t, v = last
        lines.append(f"# TYPE {pname} gauge")
        # timestamp in milliseconds of virtual time, Prometheus-style
        lines.append(f"{pname} {v:g} {int(t * 1000)}")
    return "\n".join(lines) + "\n"


def write_prometheus(registry: MetricsRegistry, path: str) -> None:
    """Write :func:`prometheus_text` to ``path``."""
    with open(path, "w") as fh:
        fh.write(prometheus_text(registry))
