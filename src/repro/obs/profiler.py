"""Wall-clock phase profiler for the fleet hot loop.

``with profiler.phase("scheduler"):`` spans attribute wall-clock time to
named phases.  Spans nest: a phase's total is its *self* time (elapsed
minus time spent in nested spans), so the breakdown always sums to the
instrumented wall clock with no double counting.  The fleet loop wraps
its four stages — ``scheduler`` (next-event computation + fluid
advance), ``advance`` (session transitions, SR, dispatch/fill
bookkeeping), ``planner`` (the batched ABR decision pass), ``control``
(outage surgery + monitor/tick block) — in both session engines, since
they share the driver loop.

:data:`NULL_PROFILER` is the disabled-mode stand-in: its spans are
shared no-op context managers, so hot-loop call sites keep one shape
(``prof.phase(...)`` once outside the loop, ``with span:`` inside) and
the disabled cost is two empty method calls per span entry.

Profilers merge (:meth:`PhaseProfiler.add`) so the sharded executor can
sum per-shard phase totals into the caller's profiler — the summed
breakdown is aggregate worker CPU-seconds, not elapsed wall clock,
which is the useful number for attributing cost across processes.
"""

from __future__ import annotations

from time import perf_counter

__all__ = ["PhaseProfiler", "NULL_PROFILER"]


class _Span:
    """Reusable context manager for one phase name (cached per profiler).

    Entry/exit run a few hundred thousand times per fleet run, so the
    frame stack is a pool of reusable ``[name, t0, child]`` lists
    indexed by depth — zero allocations per span after warm-up (a fresh
    list per entry is a GC-tracked allocation the collector then pays
    for across the whole run).
    """

    __slots__ = ("_profiler", "name")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self.name = name

    def __enter__(self) -> "_Span":
        prof = self._profiler
        depth = prof._depth
        frames = prof._frames
        if depth == len(frames):
            frames.append([None, 0.0, 0.0])
        frame = frames[depth]
        frame[0] = self.name
        frame[2] = 0.0
        prof._depth = depth + 1
        frame[1] = perf_counter()  # last: exclude entry bookkeeping
        return self

    def __exit__(self, *exc) -> None:
        elapsed = perf_counter()
        prof = self._profiler
        depth = prof._depth - 1
        prof._depth = depth
        frame = prof._frames[depth]
        name = frame[0]
        elapsed -= frame[1]
        totals = prof.totals
        totals[name] = totals.get(name, 0.0) + (elapsed - frame[2])
        counts = prof.counts
        counts[name] = counts.get(name, 0) + 1
        if depth:
            prof._frames[depth - 1][2] += elapsed


class _NullSpan:
    """No-op span: the disabled profiler's entire hot-loop cost."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _NullProfiler:
    """Disabled profiler: every phase is the shared no-op span."""

    __slots__ = ()

    def phase(self, name: str) -> _NullSpan:
        return _NULL_SPAN


NULL_PROFILER = _NullProfiler()


class PhaseProfiler:
    """Accumulates self-time (exclusive) seconds per named phase."""

    def __init__(self) -> None:
        #: phase -> exclusive wall-clock seconds
        self.totals: dict[str, float] = {}
        #: phase -> span entry count
        self.counts: dict[str, int] = {}
        self._spans: dict[str, _Span] = {}
        self._frames: list[list] = []
        self._depth = 0

    def phase(self, name: str) -> _Span:
        """The (cached, reusable) span for ``name``."""
        span = self._spans.get(name)
        if span is None:
            span = self._spans[name] = _Span(self, name)
        return span

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Fold externally measured time in (the shard-merge hook)."""
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + calls

    @property
    def total_seconds(self) -> float:
        return sum(self.totals.values())

    def breakdown(self) -> dict[str, dict[str, float]]:
        """Machine-readable block: per phase seconds / calls / percent.

        Phases are ordered by descending self time; ``pct`` is of the
        instrumented total (0 when nothing was recorded).
        """
        total = self.total_seconds
        return {
            name: {
                "seconds": secs,
                "calls": self.counts.get(name, 0),
                "pct": (100.0 * secs / total) if total > 0 else 0.0,
            }
            for name, secs in sorted(
                self.totals.items(), key=lambda kv: (-kv[1], kv[0])
            )
        }

    def report(self) -> str:
        """Human-readable breakdown table."""
        rows = self.breakdown()
        if not rows:
            return "phase breakdown: (no phases recorded)"
        name_w = max(len("phase"), *(len(n) for n in rows))
        lines = [
            f"{'phase':<{name_w}}  {'self_s':>9}  {'pct':>6}  {'calls':>9}"
        ]
        for name, row in rows.items():
            lines.append(
                f"{name:<{name_w}}  {row['seconds']:>9.4f}  "
                f"{row['pct']:>5.1f}%  {row['calls']:>9d}"
            )
        lines.append(
            f"{'total':<{name_w}}  {self.total_seconds:>9.4f}  "
            f"{'100.0%' if self.totals else '  0.0%':>6}"
        )
        return "\n".join(lines)
