"""Structured virtual-time event tracing for fleet runs.

A :class:`Tracer` collects typed :class:`TraceEvent` records as the
fleet simulator executes: session lifecycle (start / finish / abandon),
chunk progress (decision / fetch / complete / stall / retry), edge-cache
activity (hit / miss / coalesce / void), origin encode activity
(enqueue / resize), fault injection (outage / degradation / crowd,
plus the evacuation an outage triggers), and control-plane activity
(tick / resize / re-steer).  Emission sites live in the subsystems that
own the state — ``fleet.py`` (driver), ``columnar.py`` (columnar
engine), ``cdn.py`` (caches and encode queue), ``control.py``
(controller), ``faults.py`` (schedules) — each guarded by a single
``tracer is not None`` check, so a run without a tracer executes the
exact pre-telemetry instruction stream (the disabled-tracer parity
test pins this).

Events are *virtual-time* stamped: ``t`` is simulation seconds, not
wall clock.  Each tracer assigns a monotonically increasing ``seq`` so
merging several shard-tagged streams (:func:`merge_events`) is total
and deterministic: sort by ``(t, shard, seq)``.

:func:`ops_from_events` folds an event stream back into the
control-plane counters :class:`~repro.streaming.fleet.OpsStats`
carries — the conservation law the chaos trace test enforces
(``report counters == fold over the event stream``).
"""

from __future__ import annotations

from collections import Counter as _Counter

__all__ = [
    "TraceEvent",
    "Tracer",
    "merge_events",
    "ops_from_events",
    # event kinds
    "EV_SESSION_START",
    "EV_SESSION_FINISH",
    "EV_SESSION_ABANDON",
    "EV_SESSION_RESTEER",
    "EV_CHUNK_DECISION",
    "EV_CHUNK_FETCH",
    "EV_CHUNK_COMPLETE",
    "EV_CHUNK_STALL",
    "EV_CHUNK_RETRY",
    "EV_CACHE_HIT",
    "EV_CACHE_MISS",
    "EV_CACHE_COALESCE",
    "EV_CACHE_VOID",
    "EV_ENCODE_ENQUEUE",
    "EV_ENCODE_RESIZE",
    "EV_FAULT_OUTAGE",
    "EV_FAULT_REGION_OUTAGE",
    "EV_FAULT_GRAY",
    "EV_FAULT_DEGRADATION",
    "EV_FAULT_CROWD",
    "EV_OUTAGE_EVACUATE",
    "EV_RETRY_TIMEOUT",
    "EV_RETRY_HEDGE",
    "EV_CONTROL_TICK",
    "EV_CONTROL_RESIZE",
    "EV_CONTROL_RESTEER",
    "EV_CONTROL_DEGRADE",
]

# -- session lifecycle --------------------------------------------------
EV_SESSION_START = "session.start"
EV_SESSION_FINISH = "session.finish"
EV_SESSION_ABANDON = "session.abandon"
#: a viewer moved to another edge (``reason``: ``"outage"`` failover or
#: a ``"control"`` saturation re-steer the driver applied)
EV_SESSION_RESTEER = "session.resteer"

# -- chunk progress -----------------------------------------------------
EV_CHUNK_DECISION = "chunk.decision"
EV_CHUNK_FETCH = "chunk.fetch"
EV_CHUNK_COMPLETE = "chunk.complete"
EV_CHUNK_STALL = "chunk.stall"
#: a transfer an outage cancelled, re-issued from the outage instant
EV_CHUNK_RETRY = "chunk.retry"

# -- edge chunk cache ---------------------------------------------------
EV_CACHE_HIT = "cache.hit"
EV_CACHE_MISS = "cache.miss"
EV_CACHE_COALESCE = "cache.coalesce"
#: a counted hit/coalesce credited back (its transfer never completed)
EV_CACHE_VOID = "cache.void"

# -- origin encode pool -------------------------------------------------
EV_ENCODE_ENQUEUE = "encode.enqueue"
EV_ENCODE_RESIZE = "encode.resize"

# -- fault injection ----------------------------------------------------
EV_FAULT_OUTAGE = "fault.outage"
#: a named fault domain's member edges all went dark together
EV_FAULT_REGION_OUTAGE = "fault.region_outage"
#: a partial (gray) failure: capacity browns out, requests drop/delay
EV_FAULT_GRAY = "fault.gray"
EV_FAULT_DEGRADATION = "fault.degradation"
EV_FAULT_CROWD = "fault.crowd"
EV_OUTAGE_EVACUATE = "outage.evacuate"

# -- client resilience (RetryPolicy) ------------------------------------
#: an attempt the retry policy's virtual-time timeout cancelled
EV_RETRY_TIMEOUT = "retry.timeout"
#: a timed-out session hedged to another live edge for its retry
EV_RETRY_HEDGE = "retry.hedge"

# -- control plane ------------------------------------------------------
EV_CONTROL_TICK = "control.tick"
EV_CONTROL_RESIZE = "control.resize"
EV_CONTROL_RESTEER = "control.resteer"
#: a graceful-degradation lever pulled (or released) on a dark region
EV_CONTROL_DEGRADE = "control.degrade"

#: kinds that count as one injected fault each (mirrors
#: ``FleetReport.faults_injected`` = ``len(FaultSchedule)``)
FAULT_EVENT_KINDS = (
    EV_FAULT_OUTAGE,
    EV_FAULT_REGION_OUTAGE,
    EV_FAULT_GRAY,
    EV_FAULT_DEGRADATION,
    EV_FAULT_CROWD,
)


class TraceEvent:
    """One virtual-time event.  ``data`` holds kind-specific fields."""

    __slots__ = ("t", "kind", "session", "shard", "seq", "data")

    def __init__(
        self,
        t: float,
        kind: str,
        session: int | None,
        shard: int | None,
        seq: int,
        data: dict | None,
    ) -> None:
        self.t = t
        self.kind = kind
        self.session = session
        self.shard = shard
        self.seq = seq
        self.data = data

    def to_dict(self) -> dict:
        """JSON-ready flat dict (the JSONL exporter's row shape)."""
        out: dict = {"t": self.t, "kind": self.kind}
        if self.session is not None:
            out["session"] = self.session
        if self.shard is not None:
            out["shard"] = self.shard
        if self.data:
            out.update(self.data)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f" {self.data}" if self.data else ""
        sid = f" sid={self.session}" if self.session is not None else ""
        return f"<TraceEvent t={self.t:.3f} {self.kind}{sid}{extra}>"


def _sort_key(ev: TraceEvent) -> tuple:
    return (ev.t, -1 if ev.shard is None else ev.shard, ev.seq)


class Tracer:
    """Collects :class:`TraceEvent` records for one run (or one shard).

    ``emit`` is the only hot-path method and does no I/O — exporters
    (:mod:`repro.obs.export`) consume the finished stream.  ``shard``
    tags every event when the tracer runs inside a shard worker, so
    merged streams stay attributable.

    Storage is deliberately two-tier.  ``emit`` appends a plain tuple
    ``(t, kind, session, shard, seq, data)`` — tuples and small dicts
    of atoms are *untracked* by CPython's cyclic GC after they survive
    one collection, so a multi-hundred-thousand-event run does not make
    every gen-2 pass walk the whole trace (class instances are always
    tracked; storing :class:`TraceEvent` objects directly measurably
    slowed the 2k-viewer bench lane through GC alone).  The ``events``
    property materializes the tuples into :class:`TraceEvent` objects
    once, on first read, and caches them — exporters and tests see the
    same object API as before, paid for outside the simulation loop.
    """

    __slots__ = ("_records", "_events", "shard", "_seq")

    def __init__(self, shard: int | None = None) -> None:
        self._records: list[tuple] = []
        self._events: list[TraceEvent] = []
        self.shard = shard
        self._seq = 0

    def emit(
        self, t: float, kind: str, session: int | None = None, **data
    ) -> None:
        """Record one event at virtual time ``t``."""
        self._seq += 1
        self._records.append(
            (t, kind, session, self.shard, self._seq, data or None)
        )

    @property
    def events(self) -> list[TraceEvent]:
        """The recorded events, materialized and cached.

        Repeated reads return the same list (and the same objects —
        the sharded executor's id-globalization mutates them in place).
        """
        done = len(self._events)
        if done != len(self._records):
            self._events.extend(
                TraceEvent(*record) for record in self._records[done:]
            )
        return self._events

    def count(self, kind: str) -> int:
        """Number of recorded events of ``kind``."""
        return sum(1 for record in self._records if record[1] == kind)

    def counts(self) -> dict[str, int]:
        """Event count per kind."""
        return dict(_Counter(record[1] for record in self._records))

    def absorb(self, streams: list[list[TraceEvent]]) -> None:
        """Merge shard event streams into this tracer, virtual-time ordered.

        The sharded executor calls this with one list per shard; events
        keep their shard tags and per-shard sequence numbers, and the
        merged stream is totally ordered by ``(t, shard, seq)``.
        """
        # Extend the compact tier so counts stay consistent; the events
        # property re-materializes the suffix on next read.
        self._records.extend(
            (ev.t, ev.kind, ev.session, ev.shard, ev.seq, ev.data)
            for ev in merge_events(streams)
        )

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self.events)


def merge_events(streams: list[list[TraceEvent]]) -> list[TraceEvent]:
    """Flatten shard event streams into one virtual-time-ordered list.

    Total and deterministic: ties at the same instant break by shard
    index, then by each stream's own emission order (``seq``).
    """
    out: list[TraceEvent] = []
    for stream in streams:
        out.extend(stream)
    out.sort(key=_sort_key)
    return out


def ops_from_events(events) -> dict[str, int]:
    """Fold an event stream into the ``OpsStats`` counters it implies.

    The conservation law the chaos-trace test enforces: a run's report
    counters must equal this fold over its own event stream —
    ``sessions_resteered`` counts :data:`EV_SESSION_RESTEER` (outage
    failover plus applied controller re-steers), ``faults_injected``
    counts scheduled ``fault.*`` events, ``control_ticks`` counts
    :data:`EV_CONTROL_TICK`, ``encode_pool_resizes`` counts
    :data:`EV_CONTROL_RESIZE` (resize *actions*; the queue's own
    :data:`EV_ENCODE_RESIZE` records the applications), and
    ``requests_timed_out`` counts :data:`EV_RETRY_TIMEOUT` (attempts a
    :class:`~repro.streaming.faults.RetryPolicy` timeout cancelled).
    """
    counts = _Counter(ev.kind for ev in events)
    return {
        "sessions_resteered": counts[EV_SESSION_RESTEER],
        "faults_injected": sum(counts[k] for k in FAULT_EVENT_KINDS),
        "control_ticks": counts[EV_CONTROL_TICK],
        "encode_pool_resizes": counts[EV_CONTROL_RESIZE],
        "requests_timed_out": counts[EV_RETRY_TIMEOUT],
    }
