"""Time-series metrics instruments for fleet runs.

A :class:`MetricsRegistry` hands out named instruments:

* :class:`Counter` — a monotonically increasing total;
* :class:`Gauge` — a point-in-time value;
* :class:`Histogram` — fixed-bound bucket counts plus sum/count (the
  Prometheus histogram shape);
* :class:`TimeSeries` — a fixed-capacity ring buffer of ``(t, value)``
  samples, the shape the fleet's fixed-interval samplers record
  (health proxy, mean buffer occupancy, per-edge load, encode queue
  depth).  The ring bounds memory on arbitrarily long runs: once full,
  the oldest samples fall off.

Instruments are get-or-create by name, so emission sites never need to
coordinate registration.  :meth:`MetricsRegistry.snapshot` returns a
JSON-ready dict; the Prometheus text rendering lives in
:func:`repro.obs.export.prometheus_text`.
"""

from __future__ import annotations

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "MetricsRegistry",
]

#: default histogram bucket bounds (seconds-flavored, Prometheus style)
_DEFAULT_BOUNDS = (0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0)

#: default ring capacity — at the fleet's 1 s monitor cadence this holds
#: a little over 17 virtual minutes of samples per series
_DEFAULT_CAPACITY = 1024


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


class Gauge:
    """A point-in-time value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Cumulative-bucket histogram (Prometheus ``le`` semantics)."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "sum")

    def __init__(self, name: str, bounds: tuple[float, ...] = _DEFAULT_BOUNDS):
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be ascending")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * len(self.bounds)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1

    def cumulative(self) -> list[int]:
        """Cumulative count per bucket (what ``_bucket{le=...}`` exports)."""
        return list(self.bucket_counts)


class TimeSeries:
    """Fixed-capacity ring buffer of ``(t, value)`` samples."""

    __slots__ = ("name", "capacity", "_t", "_v", "_head", "_n")

    def __init__(self, name: str, capacity: int = _DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.name = name
        self.capacity = int(capacity)
        self._t: list[float] = [0.0] * self.capacity
        self._v: list[float] = [0.0] * self.capacity
        self._head = 0  # next write slot
        self._n = 0

    def record(self, t: float, value: float) -> None:
        self._t[self._head] = t
        self._v[self._head] = value
        self._head = (self._head + 1) % self.capacity
        if self._n < self.capacity:
            self._n += 1

    def items(self) -> list[tuple[float, float]]:
        """Retained samples, oldest first."""
        if self._n < self.capacity:
            return list(zip(self._t[: self._n], self._v[: self._n]))
        idx = list(range(self._head, self.capacity)) + list(range(self._head))
        return [(self._t[i], self._v[i]) for i in idx]

    @property
    def last(self) -> tuple[float, float] | None:
        """Most recent sample, or None when empty."""
        if self._n == 0:
            return None
        i = (self._head - 1) % self.capacity
        return (self._t[i], self._v[i])

    def __len__(self) -> int:
        return self._n


class MetricsRegistry:
    """Get-or-create home of every instrument in one run."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self.series: dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = Gauge(name)
        return inst

    def histogram(
        self, name: str, bounds: tuple[float, ...] = _DEFAULT_BOUNDS
    ) -> Histogram:
        inst = self.histograms.get(name)
        if inst is None:
            inst = self.histograms[name] = Histogram(name, bounds)
        return inst

    def timeseries(
        self, name: str, capacity: int = _DEFAULT_CAPACITY
    ) -> TimeSeries:
        inst = self.series.get(name)
        if inst is None:
            inst = self.series[name] = TimeSeries(name, capacity)
        return inst

    def snapshot(self) -> dict:
        """JSON-ready dump of every instrument's current state."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: {
                    "bounds": list(h.bounds),
                    "buckets": h.cumulative(),
                    "count": h.count,
                    "sum": h.sum,
                }
                for n, h in sorted(self.histograms.items())
            },
            "series": {
                n: [[t, v] for t, v in s.items()]
                for n, s in sorted(self.series.items())
            },
        }
