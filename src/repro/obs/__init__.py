"""``repro.obs`` — zero-overhead-when-disabled telemetry for fleet runs.

Three independent layers, bundled by :class:`Telemetry` and threaded
through :func:`~repro.streaming.fleet.simulate_fleet` /
:func:`~repro.streaming.shard.shard_fleet` via the ``telemetry=``
keyword:

* **event tracing** (:mod:`repro.obs.events`) — typed virtual-time
  events emitted by the fleet driver, both session engines, the CDN
  caches/encode queue, the control plane, and the fault machinery;
* **metrics** (:mod:`repro.obs.metrics`) — counter/gauge/histogram
  instruments plus ring-buffered time series the fleet's fixed-interval
  sampler records (health proxy, buffer occupancy, per-edge load,
  encode queue depth);
* **phase profiling** (:mod:`repro.obs.profiler`) — wall-clock spans
  around the hot-loop stages, reported as a breakdown table and a
  machine-readable block.

Exporters (:mod:`repro.obs.export`) serialize a finished run: JSONL
event log, Chrome trace-event JSON (Perfetto-loadable, sessions as
tracks), and a Prometheus-style text dump.

Passing ``telemetry=None`` (the default) executes the exact
pre-telemetry instruction stream — every emission site is a single
``is not None`` check — and the disabled configuration is bit-exact
with the untraced simulator (the seventh oracle-parity instance,
``tests/streaming/test_obs.py::TestTelemetryDisabledParity``).
"""

from __future__ import annotations

from .events import (
    EV_CACHE_COALESCE,
    EV_CACHE_HIT,
    EV_CACHE_MISS,
    EV_CACHE_VOID,
    EV_CHUNK_COMPLETE,
    EV_CHUNK_DECISION,
    EV_CHUNK_FETCH,
    EV_CHUNK_RETRY,
    EV_CHUNK_STALL,
    EV_CONTROL_RESIZE,
    EV_CONTROL_RESTEER,
    EV_CONTROL_TICK,
    EV_ENCODE_ENQUEUE,
    EV_ENCODE_RESIZE,
    EV_FAULT_CROWD,
    EV_FAULT_DEGRADATION,
    EV_FAULT_OUTAGE,
    EV_OUTAGE_EVACUATE,
    EV_SESSION_ABANDON,
    EV_SESSION_FINISH,
    EV_SESSION_RESTEER,
    EV_SESSION_START,
    TraceEvent,
    Tracer,
    merge_events,
    ops_from_events,
)
from .export import (
    chrome_trace,
    prometheus_text,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, TimeSeries
from .profiler import NULL_PROFILER, PhaseProfiler

__all__ = [
    "Telemetry",
    "TraceEvent",
    "Tracer",
    "merge_events",
    "ops_from_events",
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "MetricsRegistry",
    "PhaseProfiler",
    "NULL_PROFILER",
    "chrome_trace",
    "prometheus_text",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
    "EV_SESSION_START",
    "EV_SESSION_FINISH",
    "EV_SESSION_ABANDON",
    "EV_SESSION_RESTEER",
    "EV_CHUNK_DECISION",
    "EV_CHUNK_FETCH",
    "EV_CHUNK_COMPLETE",
    "EV_CHUNK_STALL",
    "EV_CHUNK_RETRY",
    "EV_CACHE_HIT",
    "EV_CACHE_MISS",
    "EV_CACHE_COALESCE",
    "EV_CACHE_VOID",
    "EV_ENCODE_ENQUEUE",
    "EV_ENCODE_RESIZE",
    "EV_FAULT_OUTAGE",
    "EV_FAULT_DEGRADATION",
    "EV_FAULT_CROWD",
    "EV_OUTAGE_EVACUATE",
    "EV_CONTROL_TICK",
    "EV_CONTROL_RESIZE",
    "EV_CONTROL_RESTEER",
]


class Telemetry:
    """One run's telemetry bundle: tracer + metrics + profiler.

    Each layer toggles independently; a disabled layer is ``None`` and
    its emission sites compile down to one ``is not None`` check.
    ``shard`` tags every traced event with the worker's shard index
    (the sharded executor sets it; single-process runs leave it None).
    """

    def __init__(
        self,
        *,
        trace: bool = True,
        metrics: bool = True,
        profile: bool = True,
        shard: int | None = None,
    ) -> None:
        self.tracer = Tracer(shard=shard) if trace else None
        self.metrics = MetricsRegistry() if metrics else None
        self.profiler = PhaseProfiler() if profile else None
