"""Colorization of interpolated points (paper §4.1).

New points take the color of the nearest *original* point.  VoLUT reuses
the spatial relationships already computed during geometric interpolation —
each midpoint's nearest original point is, except in degenerate cases, one
of its two parents — avoiding a second kNN pass.  A fresh-search variant is
kept as the vanilla cost model.
"""

from __future__ import annotations

import numpy as np

from ..pointcloud.cloud import PointCloud
from ..spatial.knn import get_backend
from .interpolation import InterpolationResult

__all__ = ["colorize_by_parent", "colorize_by_nearest"]


def colorize_by_parent(source: PointCloud, interp: InterpolationResult) -> PointCloud:
    """VoLUT path: color each new point from its nearer parent.

    Reuses ``parent_a``/``parent_b`` from interpolation — O(m) with no
    search.  Returns the upsampled cloud with full color attributes, or a
    geometry-only cloud when the source has no colors.
    """
    if not source.has_colors:
        return interp.upsampled.copy()
    new_pos = interp.new_positions
    pa, pb = interp.parent_a, interp.parent_b
    da = np.linalg.norm(new_pos - source.positions[pa], axis=1)
    db = np.linalg.norm(new_pos - source.positions[pb], axis=1)
    nearest = np.where(da <= db, pa, pb)
    colors = np.vstack([source.colors, source.colors[nearest]])
    return PointCloud(interp.upsampled.positions.copy(), colors)


def colorize_by_nearest(
    source: PointCloud,
    interp: InterpolationResult,
    backend: str = "brute",
) -> PointCloud:
    """Vanilla path: a fresh nearest-neighbor search per new point."""
    if not source.has_colors:
        return interp.upsampled.copy()
    index = get_backend(backend, source.positions)
    idx, _ = index.query(interp.new_positions, 1)
    colors = np.vstack([source.colors, source.colors[idx[:, 0]]])
    return PointCloud(interp.upsampled.positions.copy(), colors)
