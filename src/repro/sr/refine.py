"""Refinement stage: adjust interpolated points toward the true surface.

Two interchangeable refiners with the same contract:

* :class:`NNRefiner` — runs the trained refinement MLP on every
  neighborhood (what GradPU/YuZu-style systems do at inference time).
* :class:`LUTRefiner` — VoLUT's replacement: position-encode the
  neighborhood and look the offset up in a precomputed table (§4.2).

Offsets are predicted in the normalized neighborhood frame and scaled back
by the per-neighborhood radius ``R`` before application.
"""

from __future__ import annotations

import numpy as np

from ..nn.mlp import MLP
from ..spatial.reuse import merge_and_prune
from .encoding import PositionEncoder
from .interpolation import InterpolationResult
from .lut import BaseLUT

__all__ = ["gather_refinement_neighborhoods", "NNRefiner", "LUTRefiner"]


def gather_refinement_neighborhoods(
    source_positions: np.ndarray,
    interp: InterpolationResult,
    rf_size: int,
) -> np.ndarray:
    """Neighbor coordinates for every interpolated point, via reuse.

    Each interpolated point needs its ``rf_size - 1`` nearest source points.
    Instead of a fresh kNN search, VoLUT merges the parents' already-known
    neighbor lists (Eq. 2) — the lists were computed once during
    interpolation and ride along in ``interp.neighbor_idx``.

    Returns ``(m, rf_size - 1, 3)`` coordinates.
    """
    k = rf_size - 1
    idx, _ = merge_and_prune(
        interp.new_positions,
        source_positions,
        interp.parent_a,
        interp.parent_b,
        interp.neighbor_idx,
        k,
    )
    return source_positions[idx]


class NNRefiner:
    """Refine by running the network on every neighborhood (the slow path)."""

    def __init__(self, net: MLP, encoder: PositionEncoder):
        expected = encoder.rf_size * 3
        if net.in_dim != expected:
            raise ValueError(
                f"network input dim {net.in_dim} != rf_size*3 = {expected}"
            )
        if net.out_dim != 3:
            raise ValueError(f"refinement net must output 3 dims, got {net.out_dim}")
        self.net = net
        self.encoder = encoder

    def refine(self, targets: np.ndarray, neighbors: np.ndarray) -> np.ndarray:
        """Return refined positions for ``targets`` given their neighborhoods."""
        enc = self.encoder.encode(targets, neighbors)
        x = enc.normalized.reshape(len(targets), -1)
        offsets = self.net.forward(x)
        return targets + offsets * enc.radius[:, None]


class LUTRefiner:
    """Refine via table lookup (VoLUT's §4.2 path)."""

    def __init__(self, lut: BaseLUT):
        self.lut = lut
        self.encoder = lut.encoder

    def refine(self, targets: np.ndarray, neighbors: np.ndarray) -> np.ndarray:
        """Return refined positions for ``targets`` given their neighborhoods."""
        enc = self.encoder.encode(targets, neighbors)
        # Fused (multi-grid) tables consume normalized coordinates so each
        # member can quantize under its own phase; plain tables take bins.
        if hasattr(self.lut, "lookup_normalized"):
            offsets = self.lut.lookup_normalized(enc.normalized)
        else:
            offsets = self.lut.lookup(enc.bins)
        return targets + offsets * enc.radius[:, None]
