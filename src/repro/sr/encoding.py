"""Position encoding for 3-D LUT indexing (paper §4.2.1, Eqs. 3–4).

The encoding turns a continuous local neighborhood into a discrete LUT key
in three steps:

* **input** — the target (interpolated) point plus its ``n-1`` nearest
  neighbors, as raw XYZ;
* **normalize** (Eq. 3) — coordinates relative to the target point, scaled
  by the neighborhood radius ``R`` so everything lands in ``[-1, 1]^3``;
* **quantize** (Eq. 4) — ``q = floor((n + 1)/2 · (b - 1))`` into ``b`` bins
  per dimension.

The target point always normalizes to the origin and therefore quantizes to
a constant bin; it is kept in the key (the paper places the interpolated
point first in the index) but carries no entropy — the effective key space
is ``b^{(n-1)·3}``, which is what makes hashing practical.

Offsets predicted in normalized space are scaled back by ``R`` on apply.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PositionEncoder", "EncodedNeighborhood"]


@dataclass
class EncodedNeighborhood:
    """Quantized neighborhoods plus the state needed to undo normalization.

    Attributes
    ----------
    bins:
        ``(m, rf, 3)`` int16 quantized coordinates; row order is
        [target, neighbor_1, ..., neighbor_{rf-1}] as in the paper.
    radius:
        ``(m,)`` neighborhood radii ``R`` (Eq. 3 denominators).
    normalized:
        ``(m, rf, 3)`` float coordinates before quantization (kept because
        NN refinement consumes them and tests check the quantization error).
    """

    bins: np.ndarray
    radius: np.ndarray
    normalized: np.ndarray

    @property
    def n_neighborhoods(self) -> int:
        return len(self.bins)

    @property
    def rf_size(self) -> int:
        return self.bins.shape[1]


class PositionEncoder:
    """Encodes (target, neighbors) neighborhoods into LUT bins.

    Parameters
    ----------
    rf_size:
        Receptive-field size ``n`` — total points per neighborhood
        including the target (the paper uses 4).
    bins:
        Quantization bins ``b`` per dimension (the paper uses 128).
    """

    def __init__(self, rf_size: int = 4, bins: int = 128, phase: float = 0.0):
        if rf_size < 2:
            raise ValueError("rf_size must be >= 2 (target + >=1 neighbor)")
        if bins < 2:
            raise ValueError("bins must be >= 2")
        if not 0.0 <= phase < 1.0:
            raise ValueError("phase must be in [0, 1)")
        self.rf_size = int(rf_size)
        self.bins = int(bins)
        #: fractional shift of the quantization grid (in bins).  Ensembles
        #: of phase-shifted LUTs average out quantization error — the 3-D
        #: counterpart of SR-LUT's rotation ensembling (see EnsembleLUT).
        self.phase = float(phase)

    # ------------------------------------------------------------------
    def encode(self, targets: np.ndarray, neighbors: np.ndarray) -> EncodedNeighborhood:
        """Encode ``m`` neighborhoods.

        Parameters
        ----------
        targets:
            ``(m, 3)`` target (interpolated) points.
        neighbors:
            ``(m, rf_size - 1, 3)`` neighbor coordinates.
        """
        targets = np.asarray(targets, dtype=np.float64)
        neighbors = np.asarray(neighbors, dtype=np.float64)
        if targets.ndim != 2 or targets.shape[1] != 3:
            raise ValueError(f"targets must be (m, 3), got {targets.shape}")
        expected = (len(targets), self.rf_size - 1, 3)
        if neighbors.shape != expected:
            raise ValueError(f"neighbors must be {expected}, got {neighbors.shape}")

        rel = neighbors - targets[:, None, :]
        radius = np.linalg.norm(rel, axis=2).max(axis=1)
        # Degenerate neighborhoods (all neighbors coincide with the target)
        # get radius 1 so normalization is a no-op instead of a div-by-zero.
        safe_r = np.where(radius > 0, radius, 1.0)
        norm_nb = rel / safe_r[:, None, None]
        normalized = np.concatenate(
            [np.zeros((len(targets), 1, 3)), norm_nb], axis=1
        )
        q = np.floor(
            (normalized + 1.0) * 0.5 * (self.bins - 1) + self.phase
        ).astype(np.int16)
        np.clip(q, 0, self.bins - 1, out=q)
        return EncodedNeighborhood(bins=q, radius=radius, normalized=normalized)

    # ------------------------------------------------------------------
    def bin_centers(self, bins: np.ndarray) -> np.ndarray:
        """Normalized coordinates of bin centers (inverse of Eq. 4).

        Used when distilling the network into the LUT: each stored entry is
        the network's output at the *representative* (center) configuration
        of its quantization cell.  Accounts for the grid ``phase``.
        """
        q = np.asarray(bins, dtype=np.float64)
        return (q - self.phase + 0.5) * 2.0 / (self.bins - 1) - 1.0

    def quantization_error_bound(self) -> float:
        """Max per-axis distance between a coordinate and its bin center."""
        return 1.0 / (self.bins - 1)

    # ------------------------------------------------------------------
    # Key packing: bins -> integer keys for hashing / sorting.
    # ------------------------------------------------------------------
    @property
    def effective_dims(self) -> int:
        """Entropy-carrying dimensions (neighbors only; target is constant)."""
        return (self.rf_size - 1) * 3

    @property
    def packable(self) -> bool:
        """Whether keys fit a uint64 (b^dims <= 2^64)."""
        return self.effective_dims * np.log2(self.bins) <= 64

    def pack_keys(self, bins: np.ndarray) -> np.ndarray:
        """Pack ``(m, rf, 3)`` bin arrays into ``(m,)`` uint64 keys.

        Only the neighbor dimensions enter the key (the target's bins are a
        known constant).  Raises when the key space exceeds 64 bits — use
        :meth:`pack_keys_bytes` for such configurations.
        """
        if not self.packable:
            raise ValueError(
                f"key space b={self.bins}, dims={self.effective_dims} exceeds "
                "uint64; use pack_keys_bytes"
            )
        nb = np.asarray(bins)[:, 1:, :].reshape(len(bins), -1).astype(np.uint64)
        key = np.zeros(len(bins), dtype=np.uint64)
        b = np.uint64(self.bins)
        for d in range(nb.shape[1]):
            key = key * b + nb[:, d]
        return key

    def pack_keys_bytes(self, bins: np.ndarray) -> list[bytes]:
        """Byte-string keys for configurations too wide for uint64."""
        nb = np.ascontiguousarray(
            np.asarray(bins)[:, 1:, :].reshape(len(bins), -1).astype(np.int16)
        )
        return [row.tobytes() for row in nb]

    # ------------------------------------------------------------------
    # Coarse per-point codes (the paper's Table-1 indexing).
    # ------------------------------------------------------------------
    @property
    def point_grid(self) -> int:
        """Cells per axis of the coarse per-point code grid.

        The paper's Table 1 counts ``b^n`` entries — **one** code per
        receptive-field point, not one per coordinate.  A ``b``-way
        per-point code is a 3-D grid with ``g = floor(b^(1/3))`` cells per
        axis (g=5 for b=128, so 125 of the 128 code values are used).
        """
        return max(2, int(np.floor(self.bins ** (1.0 / 3.0))))

    def point_codes(self, normalized: np.ndarray) -> np.ndarray:
        """Coarse per-point codes ∈ [0, g³) for ``(m, rf, 3)`` coords."""
        g = self.point_grid
        q = np.floor((np.asarray(normalized) + 1.0) * 0.5 * g).astype(np.int64)
        np.clip(q, 0, g - 1, out=q)
        return (q[..., 0] * g + q[..., 1]) * g + q[..., 2]

    def pack_keys_coarse(self, normalized: np.ndarray) -> np.ndarray:
        """Pack neighbor point-codes into uint64 keys (space ``(g³)^(n-1)``).

        The target point's code is constant (it sits at the origin) and is
        excluded, exactly as in :meth:`pack_keys`.
        """
        codes = self.point_codes(normalized)[:, 1:].astype(np.uint64)
        base = np.uint64(self.point_grid ** 3)
        key = np.zeros(len(codes), dtype=np.uint64)
        for d in range(codes.shape[1]):
            key = key * base + codes[:, d]
        return key

    def coarse_cell_centers(self, keys: np.ndarray) -> np.ndarray:
        """Normalized neighbor coordinates at the center of each coarse cell.

        Returns ``(m, (rf-1)·3)`` coordinates — the representative inputs
        used to distill the network into a coarse LUT.
        """
        g = self.point_grid
        base = np.uint64(g ** 3)
        keys = np.asarray(keys, dtype=np.uint64)
        n_nb = self.rf_size - 1
        out = np.empty((len(keys), n_nb, 3))
        rem = keys.copy()
        for d in range(n_nb - 1, -1, -1):
            code = (rem % base).astype(np.int64)
            rem //= base
            qz = code % g
            qy = (code // g) % g
            qx = code // (g * g)
            grid = np.stack([qx, qy, qz], axis=1)
            out[:, d, :] = (grid + 0.5) * 2.0 / g - 1.0
        return out.reshape(len(keys), -1)
