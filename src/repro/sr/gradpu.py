"""GradPU baseline (He et al. 2023), as the paper uses it (§2.1, §7.1).

GradPU is the reference two-stage upsampler VoLUT distills: midpoint
interpolation followed by *iterative* refinement that walks each point
toward the surface by repeatedly querying a learned network.  The iteration
is what makes it accurate and also what makes it prohibitively slow on
client devices — the paper reports VoLUT is 46,400× faster at SR because
the LUT replaces per-step network inference.

This implementation reuses the same refinement network/encoder as VoLUT
(the paper derives its LUT *from* GradPU) and performs ``n_steps`` damped
refinement iterations, re-gathering neighborhoods each step — faithfully
reproducing the cost structure: ``n_steps × (kNN gather + NN inference)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..nn.mlp import MLP
from ..pointcloud.cloud import PointCloud
from ..spatial.knn import get_backend
from .colorize import colorize_by_nearest
from .encoding import PositionEncoder
from .interpolation import interpolate
from .pipeline import SRResult, StageTimes

__all__ = ["GradPUUpsampler"]


@dataclass
class GradPUUpsampler:
    """Interpolation + iterative network refinement.

    Parameters
    ----------
    net, encoder:
        The trained refinement network and its position encoder.
    n_steps:
        Refinement iterations (GradPU uses tens of gradient steps; the
        damped fixed-point iteration here has the same per-step cost).
    step_size:
        Damping factor applied to each predicted offset.
    """

    net: MLP
    encoder: PositionEncoder
    n_steps: int = 10
    step_size: float = 0.5
    k: int = 4
    dilation: int = 1
    #: kNN backend; defaults to the same two-layer octree the VoLUT client
    #: uses, so latency comparisons isolate the *architectural* difference
    #: (per-step re-searching + network inference vs. one search + lookup)
    #: rather than differences between search substrates.
    backend: str = "octree"
    seed: int = 0

    def upsample(self, cloud: PointCloud, ratio: float) -> SRResult:
        """Upsample ``cloud`` by ``ratio`` with iterative NN refinement."""
        rng = np.random.default_rng(self.seed)
        times = StageTimes()
        interp = interpolate(
            cloud, ratio, k=self.k, dilation=self.dilation,
            backend=self.backend, seed=rng,
        )
        times.knn = interp.knn_seconds
        times.interpolation = interp.assembly_seconds

        t1 = time.perf_counter()
        colored = colorize_by_nearest(cloud, interp, backend=self.backend)
        t2 = time.perf_counter()
        times.colorization = t2 - t1

        current = interp.new_positions.copy()
        if len(current):
            rf = self.encoder.rf_size
            index = get_backend(self.backend, cloud.positions)
            for _ in range(self.n_steps):
                # Fresh neighborhood gather every step: positions move, so
                # the neighbor sets must be re-queried (GradPU's cost model).
                idx, _ = index.query(current, rf - 1)
                neighbors = cloud.positions[idx]
                enc = self.encoder.encode(current, neighbors)
                x = enc.normalized.reshape(len(current), -1)
                offsets = self.net.forward(x)
                current = current + self.step_size * offsets * enc.radius[:, None]
        pos = colored.positions.copy()
        pos[interp.n_source :] = current
        result = PointCloud(pos, colored.colors)
        times.refinement = time.perf_counter() - t2
        return SRResult(cloud=result, times=times)
