"""Midpoint interpolation with optional dilation (paper §4.1, Eq. 1).

Given a low-resolution cloud and an upsampling ratio ``r`` (any real value
≥ 1 — continuous ratios are what enable VoLUT's continuous ABR), the
interpolator generates ``round((r - 1) · n)`` new points.  Each new point is
the midpoint of a *source* point and a *partner* drawn from the source's
dilated neighborhood::

    N_dk(p_i) = Top_{d·k}( ||p_j - p_i|| )          (Eq. 1)

With ``d = 1`` this degenerates to naive kNN interpolation, which reinforces
existing density patterns (dense regions have nearer neighbors, so new
points pile into already-dense areas).  Dilation ``d > 1`` widens the
receptive field to ``k·d`` candidates, spreading new points across the
surface (paper Figs. 4/5).

Two execution strategies with identical outputs:

* ``backend="brute"`` — the *vanilla* cost model: full brute-force kNN.
* ``backend="octree"`` — VoLUT's two-layer octree pruning (§4.1).

The returned :class:`InterpolationResult` carries the parent indices and
the source neighbor lists so downstream stages (colorization, refinement)
can **reuse** the spatial relationships instead of re-searching — the
paper's second interpolation optimization (Eq. 2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..pointcloud.cloud import PointCloud
from ..spatial.knn import get_backend

__all__ = ["InterpolationResult", "interpolate", "naive_knn_interpolate"]


@dataclass
class InterpolationResult:
    """Output of the interpolation stage plus reusable spatial state.

    Attributes
    ----------
    upsampled:
        Source cloud + new midpoints (geometry only until colorization).
    n_source:
        Points ``upsampled.positions[:n_source]`` are the original cloud;
        the rest are interpolated.
    parent_a, parent_b:
        ``(m,)`` indices into the source cloud: each new point is the
        midpoint of ``source[parent_a]`` and ``source[parent_b]``.
    neighbor_idx:
        ``(n_source, k·d)`` dilated neighbor lists of the source points
        (self excluded), reusable by colorization and refinement.
    knn_seconds, assembly_seconds:
        Wall-clock of the neighbor search vs. midpoint assembly — the
        runtime-breakdown experiment (paper Fig. 16) separates the two.
    """

    upsampled: PointCloud
    n_source: int
    parent_a: np.ndarray
    parent_b: np.ndarray
    neighbor_idx: np.ndarray
    knn_seconds: float = 0.0
    assembly_seconds: float = 0.0

    @property
    def new_positions(self) -> np.ndarray:
        """Positions of interpolated points only."""
        return self.upsampled.positions[self.n_source :]

    @property
    def n_new(self) -> int:
        return len(self.upsampled) - self.n_source


def _plan_new_points(
    n: int, ratio: float, rng: np.random.Generator
) -> np.ndarray:
    """Choose source indices for the new points.

    Cycles deterministically through all source points before repeating, so
    density added is as even as the partner choice allows; the remainder
    (for fractional ratios) is a uniform random subset.
    """
    if ratio < 1.0:
        raise ValueError(f"upsampling ratio must be >= 1, got {ratio}")
    m = int(round((ratio - 1.0) * n))
    full, rem = divmod(m, n)
    src = np.tile(np.arange(n), full)
    if rem:
        src = np.concatenate([src, rng.choice(n, size=rem, replace=False)])
    return src


def interpolate(
    cloud: PointCloud,
    ratio: float,
    k: int = 4,
    dilation: int = 2,
    backend: str = "octree",
    seed: int | np.random.Generator | None = 0,
) -> InterpolationResult:
    """Dilated midpoint interpolation to ``ratio`` times the input density.

    Parameters
    ----------
    cloud:
        Low-resolution input (colors, if any, are carried on source points;
        new points are colorized separately).
    ratio:
        Target density multiplier (continuous, ≥ 1).
    k:
        Neighbor count of the underlying kNN request.
    dilation:
        Dilation factor ``d``; the receptive field is ``k·d`` (Eq. 1).
    backend:
        ``"octree"`` (two-layer octree, the VoLUT path), ``"kdtree"``, or
        ``"brute"`` (the vanilla cost model).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if dilation < 1:
        raise ValueError("dilation must be >= 1")
    n = len(cloud)
    rf = k * dilation
    if n < rf + 1:
        raise ValueError(
            f"cloud has {n} points; needs > k*dilation = {rf} for interpolation"
        )
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    pos = cloud.positions
    t0 = time.perf_counter()
    index = get_backend(backend, pos)
    # Self-query: ask for rf+1 and drop the self column.  One search serves
    # partner selection *and* (via reuse) colorization and refinement.
    nb_idx, _ = index.query(pos, rf + 1)
    t_knn = time.perf_counter() - t0
    # The nearest hit of a self-query is the point itself except under exact
    # duplicates; enforce self-exclusion explicitly.
    self_col = nb_idx[:, 0] == np.arange(n)
    neighbor_idx = np.where(
        self_col[:, None], nb_idx[:, 1:], nb_idx[:, :-1]
    )

    t1 = time.perf_counter()
    src = _plan_new_points(n, ratio, rng)
    m = len(src)
    if m == 0:
        return InterpolationResult(
            upsampled=cloud.copy(),
            n_source=n,
            parent_a=np.zeros(0, dtype=np.int64),
            parent_b=np.zeros(0, dtype=np.int64),
            neighbor_idx=neighbor_idx,
            knn_seconds=t_knn,
            assembly_seconds=time.perf_counter() - t1,
        )
    # Partner: a uniform draw from the dilated neighborhood of the source.
    partner_slot = rng.integers(0, rf, size=m)
    partners = neighbor_idx[src, partner_slot]
    midpoints = 0.5 * (pos[src] + pos[partners])

    up_pos = np.vstack([pos, midpoints])
    # Colors for new points are assigned by the colorization stage; keep the
    # cloud geometry-only if the source has colors to avoid half-populated
    # attributes.
    up = PointCloud(up_pos, None)
    return InterpolationResult(
        upsampled=up,
        n_source=n,
        parent_a=src.astype(np.int64),
        parent_b=partners.astype(np.int64),
        neighbor_idx=neighbor_idx,
        knn_seconds=t_knn,
        assembly_seconds=time.perf_counter() - t1,
    )


def naive_knn_interpolate(
    cloud: PointCloud,
    ratio: float,
    k: int = 4,
    seed: int | np.random.Generator | None = 0,
) -> InterpolationResult:
    """The paper's naive baseline: kNN interpolation without dilation.

    Equivalent to :func:`interpolate` with ``dilation=1`` and brute-force
    search — the configuration labelled ``K4d1`` in Figs. 7–10.
    """
    return interpolate(cloud, ratio, k=k, dilation=1, backend="brute", seed=seed)
