"""YuZu-style direct neural SR baseline (Zhang et al.).

YuZu deploys a deep 3-D SR model that maps a low-resolution cloud directly
to a fixed-ratio high-resolution one (PU-Net lineage): per source point the
network emits ``ratio`` children in one inference pass.  Characteristics
the comparison depends on, all reproduced here:

* **fixed integer ratios** — one model per ratio (the paper lists YuZu's
  discrete options 1×2, 2×2, 1×3, …), unlike VoLUT's single continuous
  pipeline;
* **heavier inference** — a much wider trunk than the refinement MLP, run
  over every source point, so per-frame latency is dominated by the network
  (this is what the 8.4× SR speed-up is measured against);
* **model downloads** — streamed models count toward data usage (§7.4's
  'including SR models for yuzu SR').
"""

from __future__ import annotations

import time

import numpy as np

from ..nn.mlp import MLP
from ..nn.trainer import TrainConfig, Trainer
from ..pointcloud.cloud import PointCloud
from ..pointcloud.sampling import random_downsample_count
from ..spatial.knn import get_backend, kdtree_knn
from .encoding import PositionEncoder
from .pipeline import SRResult, StageTimes

__all__ = ["YuzuSRModel", "train_yuzu_model", "YUZU_RATIOS"]

#: YuZu's discrete SR options (paper §7.4 lists its factorized choices;
#: the achievable end-to-end ratios are these integers).
YUZU_RATIOS = (2, 3, 4, 6, 8)


class YuzuSRModel:
    """A fixed-ratio direct SR network.

    Input: the flattened normalized neighborhood of a source point
    (``rf·3`` dims).  Output: ``ratio`` offsets in the normalized frame;
    children are placed at ``point + offset · R``.
    """

    def __init__(
        self,
        ratio: int,
        encoder: PositionEncoder | None = None,
        hidden: tuple[int, ...] = (256, 256, 256),
        seed: int = 0,
    ):
        if ratio < 2:
            raise ValueError("YuZu model ratio must be an integer >= 2")
        self.ratio = int(ratio)
        self.encoder = encoder or PositionEncoder(rf_size=4, bins=128)
        # Same search substrate as the VoLUT client (see GradPUUpsampler).
        self.backend = "octree"
        dims = (self.encoder.rf_size * 3, *hidden, 3 * self.ratio)
        self.net = MLP(dims, activation="relu", output_activation="tanh", seed=seed)

    # ------------------------------------------------------------------
    def model_bytes(self, bytes_per_param: int = 4) -> int:
        """Serialized model size (counts toward streamed data usage)."""
        return self.net.n_parameters() * bytes_per_param

    # ------------------------------------------------------------------
    def _neighborhoods(self, cloud: PointCloud) -> tuple[np.ndarray, np.ndarray]:
        rf = self.encoder.rf_size
        index = get_backend(self.backend, cloud.positions)
        idx, _ = index.query(cloud.positions, rf)
        # drop self column
        self_col = idx[:, 0] == np.arange(len(cloud))
        nb = np.where(self_col[:, None], idx[:, 1:], idx[:, :-1])
        return cloud.positions, cloud.positions[nb]

    def upsample(self, cloud: PointCloud) -> SRResult:
        """Direct SR at this model's fixed ratio."""
        times = StageTimes()
        t0 = time.perf_counter()
        targets, neighbors = self._neighborhoods(cloud)
        t1 = time.perf_counter()
        times.knn = t1 - t0

        enc = self.encoder.encode(targets, neighbors)
        x = enc.normalized.reshape(len(cloud), -1)
        out = self.net.forward(x).reshape(len(cloud), self.ratio, 3)
        children = (
            cloud.positions[:, None, :] + out * enc.radius[:, None, None]
        ).reshape(-1, 3)
        t2 = time.perf_counter()
        times.refinement = t2 - t1  # network inference is the 'SR' stage

        colors = None
        if cloud.has_colors:
            colors = np.repeat(cloud.colors, self.ratio, axis=0)
        times.colorization = time.perf_counter() - t2
        return SRResult(cloud=PointCloud(children, colors), times=times)


def train_yuzu_model(
    frames: list[PointCloud],
    ratio: int,
    encoder: PositionEncoder | None = None,
    hidden: tuple[int, ...] = (256, 256, 256),
    epochs: int = 30,
    lr: float = 1e-3,
    seed: int = 0,
) -> YuzuSRModel:
    """Train a fixed-ratio direct SR model on ground-truth frames.

    Targets: for each low-res point, its ``ratio`` nearest ground-truth
    points, expressed as normalized offsets — the direct analogue of
    PU-Net's patch regression at this scale.
    """
    model = YuzuSRModel(ratio, encoder=encoder, hidden=hidden, seed=seed)
    enc = model.encoder
    rng = np.random.default_rng(seed)
    xs, ys = [], []
    for frame in frames:
        n_low = max(enc.rf_size + 1, int(len(frame) / ratio))
        low = random_downsample_count(frame, n_low, seed=rng)
        targets, neighbors = model._neighborhoods(low)
        e = enc.encode(targets, neighbors)
        gt_idx, _ = kdtree_knn(frame.positions, low.positions, ratio)
        gt = frame.positions[gt_idx]  # (n_low, ratio, 3)
        safe_r = np.where(e.radius > 0, e.radius, 1.0)
        off = (gt - low.positions[:, None, :]) / safe_r[:, None, None]
        np.clip(off, -1.0, 1.0, out=off)
        xs.append(e.normalized.reshape(len(low), -1))
        ys.append(off.reshape(len(low), -1))
    X, Y = np.vstack(xs), np.vstack(ys)
    cfg = TrainConfig(epochs=epochs, lr=lr, seed=seed, batch_size=256)
    Trainer(model.net, cfg).fit(X, Y)
    return model
