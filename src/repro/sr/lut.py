"""Refinement look-up tables (paper §4.2).

The LUT maps a quantized neighborhood configuration to a 3-D refinement
offset in normalized space (Eq. 6), storing float16 values (Eq. 7).  Two
storage strategies are provided:

* :class:`DenseLUT` — literally materializes every entry, exactly as the
  paper's memory model (Table 1) counts them.  Only feasible for small
  ``(rf, bins)``; used for the memory/quality trade-off ablation.
* :class:`HashedLUT` — a sparse sorted-key table over the configurations
  that actually occur.  Captured point clouds are surface samples, so the
  occupied fraction of the ``b^{(n-1)·3}`` key space is vanishingly small;
  the paper's 1.6 GB figure for (n=4, b=128) is itself far below the
  literal dense count, implying the authors' artifact also stores a reduced
  space (see DESIGN.md).  Lookups are ``O(log m)`` vectorized
  ``searchsorted`` — still orders of magnitude cheaper than MLP inference.

Both are distilled from a trained refinement network by evaluating it at
bin-center configurations (:func:`build_lut`).  Misses in the hashed table
fall back (configurable) to the nearest populated entry along the sorted
key axis, to zero offset, or to live network inference with memoization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.mlp import MLP
from .encoding import PositionEncoder

__all__ = [
    "lut_entries",
    "lut_memory_bytes",
    "lut_memory_table",
    "DenseLUT",
    "HashedLUT",
    "EnsembleLUT",
    "build_lut",
]


# ---------------------------------------------------------------------------
# Analytic memory model (paper Table 1, Eqs. 5 & 7).
# ---------------------------------------------------------------------------

def lut_entries(rf_size: int, bins: int) -> int:
    """Entry-slot count as the paper's **Table 1** computes it: ``b^n · 3``.

    The paper's Eq. 5 text says ``b^(n·3)``, but its Table 1 numbers (12 MB
    at n=3/b=128, 1.61 GB at n=4/b=128, 201 GB at n=5/b=128) follow
    ``b^n × 3`` float16 values — one quantized scalar code per
    receptive-field point indexing a table of 3-component offsets.  We
    reproduce the table; :func:`lut_entries_full` gives the Eq. 5 literal.
    """
    if rf_size < 1 or bins < 1:
        raise ValueError("rf_size and bins must be positive")
    return (bins ** rf_size) * 3


def lut_entries_full(rf_size: int, bins: int) -> int:
    """The Eq. 5 literal ``b^(n·3)``: full per-coordinate key space.

    Astronomically larger than Table 1's sizing — the gap is why any real
    implementation (the paper's included) must index a reduced space; see
    DESIGN.md and :class:`HashedLUT`.
    """
    if rf_size < 1 or bins < 1:
        raise ValueError("rf_size and bins must be positive")
    return bins ** (rf_size * 3)


def lut_memory_bytes(rf_size: int, bins: int, bytes_per_offset: int = 2) -> int:
    """Storage for all Table-1 entry slots at ``bytes_per_offset`` each (Eq. 7)."""
    return lut_entries(rf_size, bins) * bytes_per_offset


def lut_memory_table(
    rf_sizes: tuple[int, ...] = (3, 4, 5), bin_counts: tuple[int, ...] = (128, 64)
) -> list[dict]:
    """Reproduce paper Table 1 rows: (n, b, entries, bytes)."""
    rows = []
    for rf in rf_sizes:
        for b in bin_counts:
            rows.append(
                {
                    "rf_size": rf,
                    "bins": b,
                    "entries": lut_entries(rf, b),
                    "bytes": lut_memory_bytes(rf, b),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# LUT implementations.
# ---------------------------------------------------------------------------

class BaseLUT:
    """Common interface: vectorized offset lookup for encoded neighborhoods."""

    encoder: PositionEncoder

    def lookup(self, bins: np.ndarray) -> np.ndarray:
        """Return ``(m, 3)`` float offsets (normalized space) for bin arrays."""
        raise NotImplementedError

    def memory_bytes(self) -> int:
        """Actual bytes held by this table's storage arrays."""
        raise NotImplementedError


class DenseLUT(BaseLUT):
    """Fully materialized LUT over the effective (neighbor) key space.

    The target point's bins are constant (it normalizes to the origin), so
    the dense array covers ``b^{(n-1)·3}`` rows of 3 float16 offsets.  A
    guard refuses configurations above ``max_bytes`` — building the paper's
    literal (n=4, b=128) dense table is physically impossible, which is the
    point of Table 1.
    """

    def __init__(
        self,
        encoder: PositionEncoder,
        max_bytes: int = 512 * 1024 * 1024,
    ):
        self.encoder = encoder
        dims = encoder.effective_dims
        rows = encoder.bins ** dims
        nbytes = rows * 3 * 2
        if nbytes > max_bytes:
            raise MemoryError(
                f"dense LUT needs {nbytes} bytes "
                f"(b={encoder.bins}, dims={dims}); limit is {max_bytes}"
            )
        self._table = np.zeros((rows, 3), dtype=np.float16)
        self._filled = np.zeros(rows, dtype=bool)

    def _flat_index(self, bins: np.ndarray) -> np.ndarray:
        nb = np.asarray(bins)[:, 1:, :].reshape(len(bins), -1).astype(np.int64)
        idx = np.zeros(len(bins), dtype=np.int64)
        for d in range(nb.shape[1]):
            idx = idx * self.encoder.bins + nb[:, d]
        return idx

    def fill(self, net: MLP, batch: int = 8192) -> None:
        """Distill ``net`` into every entry (Eq. 6).

        Entry values are the network evaluated at the bin-center
        configuration of each cell.
        """
        dims = self.encoder.effective_dims
        b = self.encoder.bins
        rows = len(self._table)
        # Enumerate all neighbor-bin combinations in row-major order.
        for start in range(0, rows, batch):
            stop = min(start + batch, rows)
            flat = np.arange(start, stop, dtype=np.int64)
            digits = np.empty((len(flat), dims), dtype=np.int64)
            rem = flat.copy()
            for d in range(dims - 1, -1, -1):
                digits[:, d] = rem % b
                rem //= b
            centers = self.encoder.bin_centers(digits)
            target = np.zeros((len(flat), 3))
            x = np.concatenate([target, centers], axis=1)
            self._table[start:stop] = net.forward(x).astype(np.float16)
        self._filled[:] = True

    def set_entries(self, bins: np.ndarray, offsets: np.ndarray) -> None:
        """Write specific entries (used by tests and incremental builds)."""
        idx = self._flat_index(bins)
        self._table[idx] = np.asarray(offsets, dtype=np.float16)
        self._filled[idx] = True

    def lookup(self, bins: np.ndarray) -> np.ndarray:
        idx = self._flat_index(bins)
        return self._table[idx].astype(np.float64)

    def memory_bytes(self) -> int:
        return int(self._table.nbytes)


@dataclass
class LUTStats:
    """Hit/miss accounting for sparse lookups."""

    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0


class HashedLUT(BaseLUT):
    """Sparse LUT over occupied configurations (sorted-key + searchsorted).

    Parameters
    ----------
    encoder:
        The :class:`PositionEncoder` whose keys this table is built for.
    fallback:
        Miss policy: ``"nearest"`` (nearest populated key in sorted order —
        neighboring keys share their most-significant bins, i.e. similar
        coarse geometry), ``"zero"`` (no refinement), or ``"net"`` (live
        network inference, memoized into the table).
    net:
        Required for ``fallback="net"``.
    """

    def __init__(
        self,
        encoder: PositionEncoder,
        fallback: str = "nearest",
        net: MLP | None = None,
    ):
        if fallback not in ("nearest", "zero", "net"):
            raise ValueError(f"unknown fallback {fallback!r}")
        if fallback == "net" and net is None:
            raise ValueError("fallback='net' requires a network")
        if not encoder.packable:
            raise ValueError(
                "HashedLUT requires uint64-packable keys; "
                f"b={encoder.bins}, rf={encoder.rf_size} exceeds 64 bits"
            )
        self.encoder = encoder
        self.fallback = fallback
        self.net = net
        self._keys = np.zeros(0, dtype=np.uint64)
        self._values = np.zeros((0, 3), dtype=np.float16)
        self.stats = LUTStats()

    # ------------------------------------------------------------------
    @property
    def n_entries(self) -> int:
        return len(self._keys)

    def insert(self, keys: np.ndarray, offsets: np.ndarray) -> None:
        """Merge (key, offset) pairs; later duplicates win."""
        keys = np.asarray(keys, dtype=np.uint64)
        offsets = np.asarray(offsets, dtype=np.float16)
        if len(keys) != len(offsets):
            raise ValueError("keys and offsets must align")
        all_keys = np.concatenate([self._keys, keys])
        all_vals = np.vstack([self._values, offsets])
        # keep last occurrence per key
        order = np.argsort(all_keys, kind="stable")
        sk, sv = all_keys[order], all_vals[order]
        last = np.r_[sk[1:] != sk[:-1], True]
        self._keys = sk[last]
        self._values = sv[last]

    def populate_from_network(self, keys: np.ndarray, net: MLP, batch: int = 8192) -> None:
        """Distill ``net`` at the bin centers of the given packed keys."""
        keys = np.unique(np.asarray(keys, dtype=np.uint64))
        dims = self.encoder.effective_dims
        b = np.uint64(self.encoder.bins)
        for start in range(0, len(keys), batch):
            chunk = keys[start : start + batch]
            digits = np.empty((len(chunk), dims), dtype=np.int64)
            rem = chunk.copy()
            for d in range(dims - 1, -1, -1):
                digits[:, d] = (rem % b).astype(np.int64)
                rem //= b
            centers = self.encoder.bin_centers(digits)
            x = np.concatenate([np.zeros((len(chunk), 3)), centers], axis=1)
            self.insert(chunk, net.forward(x))

    # ------------------------------------------------------------------
    def lookup(self, bins: np.ndarray) -> np.ndarray:
        keys = self.encoder.pack_keys(bins)
        m = len(keys)
        out = np.zeros((m, 3), dtype=np.float64)
        if self.n_entries == 0:
            self.stats.misses += m
            if self.fallback == "net":
                out = self._net_eval(bins)
                self._memoize(keys, out)
            return out
        pos = np.searchsorted(self._keys, keys)
        pos_clip = np.minimum(pos, self.n_entries - 1)
        hit = self._keys[pos_clip] == keys
        self.stats.hits += int(hit.sum())
        self.stats.misses += int(m - hit.sum())
        out[hit] = self._values[pos_clip[hit]].astype(np.float64)
        miss = ~hit
        if not miss.any():
            return out
        if self.fallback == "zero":
            pass  # offsets stay zero
        elif self.fallback == "nearest":
            # Closest populated key in integer-key space; keys share
            # most-significant digits with spatially similar coarse shapes.
            lo = np.clip(pos[miss] - 1, 0, self.n_entries - 1)
            hi = np.clip(pos[miss], 0, self.n_entries - 1)
            klo, khi = self._keys[lo], self._keys[hi]
            kq = keys[miss]
            pick_hi = (khi - kq) < (kq - klo)
            nearest = np.where(pick_hi, hi, lo)
            out[miss] = self._values[nearest].astype(np.float64)
        else:  # net
            vals = self._net_eval(bins[miss])
            out[miss] = vals
            self._memoize(keys[miss], vals)
        return out

    def _net_eval(self, bins: np.ndarray) -> np.ndarray:
        centers = self.encoder.bin_centers(
            np.asarray(bins)[:, 1:, :].reshape(len(bins), -1)
        )
        x = np.concatenate([np.zeros((len(bins), 3)), centers], axis=1)
        return self.net.forward(x)

    def _memoize(self, keys: np.ndarray, vals: np.ndarray) -> None:
        self.insert(keys, vals)

    def memory_bytes(self) -> int:
        return int(self._keys.nbytes + self._values.nbytes)

    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist as npz — 'language- and platform-neutral', per the paper."""
        np.savez_compressed(
            path,
            keys=self._keys,
            values=self._values,
            rf_size=np.array(self.encoder.rf_size),
            bins=np.array(self.encoder.bins),
        )

    @classmethod
    def load(cls, path, fallback: str = "nearest", net: MLP | None = None) -> "HashedLUT":
        with np.load(path) as data:
            enc = PositionEncoder(int(data["rf_size"]), int(data["bins"]))
            lut = cls(enc, fallback=fallback, net=net)
            lut._keys = data["keys"].astype(np.uint64)
            lut._values = data["values"].astype(np.float16)
        return lut


class CoarseHashedLUT(BaseLUT):
    """Sparse LUT over the paper's **per-point** code space (Table 1).

    The fine :class:`HashedLUT` keys on every quantized coordinate —
    faithful to Eq. 4 but with a key space so large that unseen content
    almost always misses.  The paper's own Table 1 sizes the table at
    ``b^n`` entries: one scalar code per receptive-field point, i.e. each
    neighbor snaps to a coarse ``g×g×g`` cell (g=5 for b=128).  That space
    ((g³)^(n-1) ≈ 2M keys for RF=4) is small enough for real content to
    *cover*, which is what makes the LUT generalize across videos.

    Same storage/lookup machinery as :class:`HashedLUT`; keys come from
    :meth:`PositionEncoder.pack_keys_coarse` and lookups take normalized
    coordinates (exposed as :meth:`lookup_normalized`, which
    :class:`repro.sr.refine.LUTRefiner` prefers automatically).
    """

    def __init__(self, encoder: PositionEncoder, fallback: str = "nearest",
                 net: MLP | None = None):
        if fallback not in ("nearest", "zero", "net"):
            raise ValueError(f"unknown fallback {fallback!r}")
        if fallback == "net" and net is None:
            raise ValueError("fallback='net' requires a network")
        self.encoder = encoder
        self.fallback = fallback
        self.net = net
        self._keys = np.zeros(0, dtype=np.uint64)
        self._values = np.zeros((0, 3), dtype=np.float16)
        self.stats = LUTStats()

    @property
    def n_entries(self) -> int:
        return len(self._keys)

    # storage shared with HashedLUT
    insert = HashedLUT.insert
    memory_bytes = HashedLUT.memory_bytes

    def key_space(self) -> int:
        """Total possible keys ((g³)^(rf-1))."""
        return (self.encoder.point_grid ** 3) ** (self.encoder.rf_size - 1)

    def populate_from_network(self, keys: np.ndarray, net: MLP,
                              batch: int = 8192) -> None:
        """Distill ``net`` at coarse-cell centers of the given keys."""
        keys = np.unique(np.asarray(keys, dtype=np.uint64))
        for start in range(0, len(keys), batch):
            chunk = keys[start : start + batch]
            centers = self.encoder.coarse_cell_centers(chunk)
            x = np.concatenate([np.zeros((len(chunk), 3)), centers], axis=1)
            self.insert(chunk, net.forward(x))

    def lookup_normalized(self, normalized: np.ndarray) -> np.ndarray:
        """Offsets for ``(m, rf, 3)`` normalized neighborhoods."""
        keys = self.encoder.pack_keys_coarse(normalized)
        m = len(keys)
        out = np.zeros((m, 3), dtype=np.float64)
        if self.n_entries == 0:
            self.stats.misses += m
            if self.fallback == "net":
                out = self._net_eval(keys)
                self.insert(keys, out)
            return out
        pos = np.searchsorted(self._keys, keys)
        pos_clip = np.minimum(pos, self.n_entries - 1)
        hit = self._keys[pos_clip] == keys
        self.stats.hits += int(hit.sum())
        self.stats.misses += int(m - hit.sum())
        out[hit] = self._values[pos_clip[hit]].astype(np.float64)
        miss = ~hit
        if not miss.any():
            return out
        if self.fallback == "zero":
            pass
        elif self.fallback == "nearest":
            lo = np.clip(pos[miss] - 1, 0, self.n_entries - 1)
            hi = np.clip(pos[miss], 0, self.n_entries - 1)
            klo, khi = self._keys[lo], self._keys[hi]
            kq = keys[miss]
            pick_hi = (khi - kq) < (kq - klo)
            nearest = np.where(pick_hi, hi, lo)
            out[miss] = self._values[nearest].astype(np.float64)
        else:  # net
            vals = self._net_eval(keys[miss])
            out[miss] = vals
            self.insert(keys[miss], vals)
        return out

    def _net_eval(self, keys: np.ndarray) -> np.ndarray:
        centers = self.encoder.coarse_cell_centers(keys)
        x = np.concatenate([np.zeros((len(keys), 3)), centers], axis=1)
        return self.net.forward(x)

    def lookup(self, bins: np.ndarray) -> np.ndarray:
        """Bin-based lookup is not meaningful for coarse keys."""
        raise NotImplementedError(
            "CoarseHashedLUT consumes normalized coordinates; "
            "use lookup_normalized (LUTRefiner does this automatically)"
        )

    # ------------------------------------------------------------------
    def save(self, path) -> None:
        np.savez_compressed(
            path,
            keys=self._keys,
            values=self._values,
            rf_size=np.array(self.encoder.rf_size),
            bins=np.array(self.encoder.bins),
            coarse=np.array(1),
        )

    @classmethod
    def load(cls, path, fallback: str = "nearest", net: MLP | None = None) -> "CoarseHashedLUT":
        with np.load(path) as data:
            enc = PositionEncoder(int(data["rf_size"]), int(data["bins"]))
            lut = cls(enc, fallback=fallback, net=net)
            lut._keys = data["keys"].astype(np.uint64)
            lut._values = data["values"].astype(np.float16)
        return lut


class EnsembleLUT(BaseLUT):
    """Multi-LUT fusion (paper §6 mentions 'multi-LUT fusion techniques').

    SR-LUT ensembles rotated quantizations of the same patch; the clean
    3-D counterpart is **phase-shifted grids** (axis permutation is a no-op
    here because permutation commutes with a per-axis-symmetric quantizer).
    Each member LUT is built from the same network but indexes a
    quantization grid shifted by a different fraction of a bin, so their
    quantization errors are decorrelated and the averaged offset is closer
    to the network's output than any single member.

    Construct with :meth:`build`, which derives the phase-shifted encoders
    and distills the network into every member.
    """

    def __init__(self, members: list[HashedLUT]):
        if not members:
            raise ValueError("need at least one member LUT")
        base = members[0].encoder
        for m in members:
            if (m.encoder.rf_size, m.encoder.bins) != (base.rf_size, base.bins):
                raise ValueError("members must share rf_size and bins")
        self.members = members
        self.encoder = base

    @classmethod
    def build(
        cls,
        net: MLP,
        encoder: PositionEncoder,
        training_normalized: np.ndarray,
        n_members: int = 3,
        fallback: str = "nearest",
    ) -> "EnsembleLUT":
        """Distill ``net`` into ``n_members`` phase-shifted LUTs.

        ``training_normalized`` is the ``(m, rf, 3)`` normalized
        neighborhood array (e.g. re-encoded from the refinement dataset);
        each member quantizes it under its own grid phase.
        """
        if n_members < 1:
            raise ValueError("need at least one member")
        members = []
        for i in range(n_members):
            enc_i = PositionEncoder(
                rf_size=encoder.rf_size,
                bins=encoder.bins,
                phase=i / n_members,
            )
            q = np.floor(
                (training_normalized + 1.0) * 0.5 * (enc_i.bins - 1) + enc_i.phase
            ).astype(np.int16)
            np.clip(q, 0, enc_i.bins - 1, out=q)
            lut = HashedLUT(enc_i, fallback=fallback)
            lut.populate_from_network(enc_i.pack_keys(q), net)
            members.append(lut)
        return cls(members)

    def lookup(self, bins: np.ndarray) -> np.ndarray:
        """Single-grid lookup (uses the first member only).

        Prefer :meth:`lookup_normalized`, which is what fusion is for.
        """
        return self.members[0].lookup(bins)

    def lookup_normalized(self, normalized: np.ndarray) -> np.ndarray:
        """Fused lookup from ``(m, rf, 3)`` normalized coordinates."""
        normalized = np.asarray(normalized, dtype=np.float64)
        total = np.zeros((len(normalized), 3))
        for member in self.members:
            enc = member.encoder
            q = np.floor(
                (normalized + 1.0) * 0.5 * (enc.bins - 1) + enc.phase
            ).astype(np.int16)
            np.clip(q, 0, enc.bins - 1, out=q)
            total += member.lookup(q)
        return total / len(self.members)

    def memory_bytes(self) -> int:
        return sum(m.memory_bytes() for m in self.members)


def build_lut(
    net: MLP,
    encoder: PositionEncoder,
    training_bins: np.ndarray,
    kind: str = "hashed",
    fallback: str = "nearest",
) -> BaseLUT:
    """Offline LUT construction from a trained refinement network.

    ``training_bins`` are encoded neighborhoods observed on the training
    video; the hashed table stores exactly the configurations the content
    distribution produces (plus fallback behaviour for novel ones), while
    the dense table ignores them and enumerates everything.
    """
    if kind == "dense":
        lut = DenseLUT(encoder)
        lut.fill(net)
        return lut
    if kind == "hashed":
        lut = HashedLUT(encoder, fallback=fallback, net=net if fallback == "net" else None)
        keys = encoder.pack_keys(training_bins)
        lut.populate_from_network(keys, net)
        return lut
    raise ValueError(f"unknown LUT kind {kind!r}")


def build_coarse_lut(
    net: MLP,
    encoder: PositionEncoder,
    training_normalized: np.ndarray,
    fallback: str = "nearest",
) -> CoarseHashedLUT:
    """Offline construction of the paper's Table-1-style coarse LUT.

    ``training_normalized`` is the ``(m, rf, 3)`` normalized neighborhood
    array observed on the training video (``RefinementDataset.X`` reshaped,
    or ``EncodedNeighborhood.normalized``).
    """
    lut = CoarseHashedLUT(
        encoder, fallback=fallback, net=net if fallback == "net" else None
    )
    keys = encoder.pack_keys_coarse(training_normalized)
    lut.populate_from_network(keys, net)
    return lut
