"""VoLUT's core contribution: LUT-based point-cloud super-resolution."""

from .colorize import colorize_by_nearest, colorize_by_parent
from .encoding import EncodedNeighborhood, PositionEncoder
from .gradpu import GradPUUpsampler
from .interpolation import InterpolationResult, interpolate, naive_knn_interpolate
from .lut import (
    CoarseHashedLUT,
    DenseLUT,
    EnsembleLUT,
    HashedLUT,
    build_coarse_lut,
    build_lut,
    lut_entries,
    lut_entries_full,
    lut_memory_bytes,
    lut_memory_table,
)
from .pipeline import NaiveUpsampler, SRResult, StageTimes, VolutUpsampler
from .refine import LUTRefiner, NNRefiner, gather_refinement_neighborhoods
from .training import (
    RefinementDataset,
    build_refinement_dataset,
    train_refinement_net,
)
from .yuzu import YUZU_RATIOS, YuzuSRModel, train_yuzu_model

__all__ = [
    "interpolate",
    "naive_knn_interpolate",
    "InterpolationResult",
    "colorize_by_parent",
    "colorize_by_nearest",
    "PositionEncoder",
    "EncodedNeighborhood",
    "DenseLUT",
    "HashedLUT",
    "CoarseHashedLUT",
    "EnsembleLUT",
    "build_lut",
    "build_coarse_lut",
    "lut_entries",
    "lut_entries_full",
    "lut_memory_bytes",
    "lut_memory_table",
    "NNRefiner",
    "LUTRefiner",
    "gather_refinement_neighborhoods",
    "RefinementDataset",
    "build_refinement_dataset",
    "train_refinement_net",
    "VolutUpsampler",
    "NaiveUpsampler",
    "SRResult",
    "StageTimes",
    "GradPUUpsampler",
    "YuzuSRModel",
    "train_yuzu_model",
    "YUZU_RATIOS",
]
