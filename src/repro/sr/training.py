"""Offline training of the refinement network (paper §4.2.2, §7.1).

Training data is self-supervised from high-resolution frames, exactly as
the paper trains GradPU on the *Long Dress* video:

1. downsample a ground-truth frame to a low density;
2. interpolate back up with the dilated interpolator;
3. for each interpolated point, the regression target is the displacement
   to its nearest ground-truth point (Eq. 9), expressed in the normalized
   neighborhood frame so it matches the LUT's value range;
4. train the MLP with Gaussian-noise injection (σ = 0.02) for robustness
   to quantization (§4.2.2).

The same function also returns the encoded bins of the training
neighborhoods — the occupied configurations used to populate the hashed
LUT.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.mlp import MLP
from ..nn.trainer import TrainConfig, Trainer
from ..pointcloud.cloud import PointCloud
from ..pointcloud.sampling import random_downsample_count
from ..spatial.knn import kdtree_knn
from .encoding import PositionEncoder
from .interpolation import interpolate
from .refine import gather_refinement_neighborhoods

__all__ = ["RefinementDataset", "build_refinement_dataset", "train_refinement_net"]


@dataclass
class RefinementDataset:
    """Training tensors for the refinement network.

    ``X`` is ``(m, rf·3)`` flattened normalized neighborhoods, ``Y`` is
    ``(m, 3)`` normalized target offsets, and ``bins`` is the ``(m, rf, 3)``
    quantized form used to seed the hashed LUT.
    """

    X: np.ndarray
    Y: np.ndarray
    bins: np.ndarray

    def __len__(self) -> int:
        return len(self.X)


def build_refinement_dataset(
    frames: list[PointCloud],
    encoder: PositionEncoder,
    ratios: tuple[float, ...] = (2.0, 4.0),
    downsample_to: int | None = None,
    k: int = 4,
    dilation: int = 2,
    seed: int = 0,
) -> RefinementDataset:
    """Build (neighborhood → offset) pairs from ground-truth frames.

    Parameters
    ----------
    frames:
        High-resolution ground-truth frames (the training video).
    ratios:
        Upsampling ratios to synthesize low/high pairs for — the paper
        downsamples 'to different densities' so one net generalizes across
        ratios.
    downsample_to:
        Low-resolution point budget before interpolation; defaults to
        ``len(frame) / max(ratios)``.
    """
    rng = np.random.default_rng(seed)
    xs, ys, bs = [], [], []
    for frame in frames:
        for ratio in ratios:
            n_low = (
                int(len(frame) / ratio)
                if downsample_to is None
                else int(downsample_to)
            )
            low = random_downsample_count(frame, n_low, seed=rng)
            interp = interpolate(low, ratio, k=k, dilation=dilation, seed=rng)
            new_pts = interp.new_positions
            if len(new_pts) == 0:
                continue
            neighbors = gather_refinement_neighborhoods(
                low.positions, interp, encoder.rf_size
            )
            enc = encoder.encode(new_pts, neighbors)
            # Target: displacement to the nearest ground-truth point (Eq. 9),
            # normalized by the neighborhood radius to match the net output.
            gt_idx, _ = kdtree_knn(frame.positions, new_pts, 1)
            gt_nn = frame.positions[gt_idx[:, 0]]
            safe_r = np.where(enc.radius > 0, enc.radius, 1.0)
            target = (gt_nn - new_pts) / safe_r[:, None]
            np.clip(target, -1.0, 1.0, out=target)
            xs.append(enc.normalized.reshape(len(new_pts), -1))
            ys.append(target)
            bs.append(enc.bins)
    if not xs:
        raise ValueError("no training pairs were produced")
    return RefinementDataset(
        X=np.vstack(xs), Y=np.vstack(ys), bins=np.vstack(bs)
    )


def train_refinement_net(
    dataset: RefinementDataset,
    encoder: PositionEncoder,
    hidden: tuple[int, ...] = (64, 64),
    epochs: int = 40,
    lr: float = 2e-3,
    noise_sigma: float = 0.02,
    seed: int = 0,
) -> tuple[MLP, list[float]]:
    """Train the refinement MLP; returns (net, per-epoch losses).

    ``noise_sigma`` defaults to the paper's 0.02 Gaussian injection.
    """
    dims = (encoder.rf_size * 3, *hidden, 3)
    net = MLP(dims, activation="relu", output_activation="tanh", seed=seed)
    cfg = TrainConfig(
        epochs=epochs, lr=lr, noise_sigma=noise_sigma, seed=seed, batch_size=512
    )
    trainer = Trainer(net, cfg)
    result = trainer.fit(dataset.X, dataset.Y)
    return net, result.epoch_losses
