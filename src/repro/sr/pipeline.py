"""End-to-end VoLUT super-resolution pipeline (paper §3, Fig. 3).

``VolutUpsampler`` chains the three client stages:

1. dilated kNN interpolation on the two-layer octree (§4.1),
2. parent-reuse colorization (§4.1),
3. LUT refinement (§4.2),

and records per-stage wall-clock so the runtime-breakdown experiment
(Fig. 16) reads directly off the pipeline.  ``NaiveUpsampler`` is the
vanilla cost model: brute-force kNN everywhere, fresh searches per stage,
no dilation by default.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..pointcloud.cloud import PointCloud
from .colorize import colorize_by_nearest, colorize_by_parent
from .interpolation import interpolate
from .lut import BaseLUT
from .refine import LUTRefiner, NNRefiner, gather_refinement_neighborhoods

__all__ = ["StageTimes", "SRResult", "VolutUpsampler", "NaiveUpsampler"]


@dataclass
class StageTimes:
    """Seconds spent in each pipeline stage for one frame."""

    knn: float = 0.0
    interpolation: float = 0.0
    colorization: float = 0.0
    refinement: float = 0.0

    @property
    def total(self) -> float:
        return self.knn + self.interpolation + self.colorization + self.refinement

    def as_dict(self) -> dict[str, float]:
        return {
            "knn": self.knn,
            "interpolation": self.interpolation,
            "colorization": self.colorization,
            "refinement": self.refinement,
            "total": self.total,
        }


@dataclass
class SRResult:
    """Upsampled frame plus stage timing."""

    cloud: PointCloud
    times: StageTimes = field(default_factory=StageTimes)


class VolutUpsampler:
    """VoLUT's two-stage SR: dilated interpolation + LUT refinement.

    A single upsampler instance serves *any* continuous ratio — the
    property the continuous ABR depends on (§5).

    Parameters
    ----------
    lut:
        Refinement table (from :func:`repro.sr.lut.build_lut`); ``None``
        skips refinement (interpolation-only, the ``K4d2`` ablation).
    k, dilation:
        Interpolation receptive field parameters (Eq. 1).
    backend:
        kNN backend for the interpolation search; the two-layer octree by
        default.
    """

    def __init__(
        self,
        lut: BaseLUT | None = None,
        k: int = 4,
        dilation: int = 2,
        backend: str = "octree",
        seed: int = 0,
    ):
        self.lut = lut
        self.refiner = LUTRefiner(lut) if lut is not None else None
        self.k = int(k)
        self.dilation = int(dilation)
        self.backend = backend
        self._rng = np.random.default_rng(seed)

    def upsample(self, cloud: PointCloud, ratio: float) -> SRResult:
        """Upsample ``cloud`` by ``ratio`` (continuous, ≥ 1)."""
        times = StageTimes()
        interp = interpolate(
            cloud,
            ratio,
            k=self.k,
            dilation=self.dilation,
            backend=self.backend,
            seed=self._rng,
        )
        t1 = time.perf_counter()
        times.knn = interp.knn_seconds
        times.interpolation = interp.assembly_seconds

        colored = colorize_by_parent(cloud, interp)
        t2 = time.perf_counter()
        times.colorization = t2 - t1

        if self.refiner is not None and interp.n_new > 0:
            neighbors = gather_refinement_neighborhoods(
                cloud.positions, interp, self.refiner.encoder.rf_size
            )
            refined = self.refiner.refine(interp.new_positions, neighbors)
            pos = colored.positions.copy()
            pos[interp.n_source :] = refined
            colored = PointCloud(pos, colored.colors)
        t3 = time.perf_counter()
        times.refinement = t3 - t2
        return SRResult(cloud=colored, times=times)


class NaiveUpsampler:
    """Vanilla baseline: brute-force kNN, fresh searches, optional NN refine.

    With ``refiner=None`` and ``dilation=1`` this is the ``K4d1`` naive
    interpolation baseline; handing it an :class:`NNRefiner` turns it into
    the GradPU-style interpolate+network pipeline used for the latency
    comparisons.
    """

    def __init__(
        self,
        refiner: NNRefiner | None = None,
        k: int = 4,
        dilation: int = 1,
        seed: int = 0,
    ):
        self.refiner = refiner
        self.k = int(k)
        self.dilation = int(dilation)
        self._rng = np.random.default_rng(seed)

    def upsample(self, cloud: PointCloud, ratio: float) -> SRResult:
        times = StageTimes()
        interp = interpolate(
            cloud,
            ratio,
            k=self.k,
            dilation=self.dilation,
            backend="brute",
            seed=self._rng,
        )
        t1 = time.perf_counter()
        times.knn = interp.knn_seconds
        times.interpolation = interp.assembly_seconds

        # Fresh nearest search for colors — no relationship reuse.
        colored = colorize_by_nearest(cloud, interp, backend="brute")
        t2 = time.perf_counter()
        times.colorization = t2 - t1

        if self.refiner is not None and interp.n_new > 0:
            # Fresh kNN for refinement neighborhoods, again no reuse.
            from ..spatial.knn import brute_force_knn

            rf = self.refiner.encoder.rf_size
            idx, _ = brute_force_knn(cloud.positions, interp.new_positions, rf - 1)
            neighbors = cloud.positions[idx]
            refined = self.refiner.refine(interp.new_positions, neighbors)
            pos = colored.positions.copy()
            pos[interp.n_source :] = refined
            colored = PointCloud(pos, colored.colors)
        t3 = time.perf_counter()
        times.refinement = t3 - t2
        return SRResult(cloud=colored, times=times)
