"""Downsampling strategies.

VoLUT's server performs **random downsampling** (paper §5.2): each point is
kept independently, which is cheap enough for video-on-demand encoding and —
combined with the robust upsampling pipeline — gives sufficient quality.
Farthest-point sampling (FPS) is implemented as the quality-first baseline
the paper rejects for latency reasons (§4.1), and voxel-grid downsampling is
provided as the standard geometric alternative.
"""

from __future__ import annotations

import numpy as np

from .cloud import PointCloud

__all__ = [
    "random_downsample",
    "random_downsample_count",
    "voxel_downsample",
    "farthest_point_sample",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_downsample(
    cloud: PointCloud, ratio: float, seed: int | np.random.Generator | None = None
) -> PointCloud:
    """Keep each point independently with probability ``ratio``.

    This mirrors the paper's ``P_select(p_i) = r`` selection rule.  The
    returned size is binomially distributed around ``ratio * n``; use
    :func:`random_downsample_count` when an exact count is required (the
    streaming encoder does, so chunk sizes are deterministic).
    """
    if not 0.0 <= ratio <= 1.0:
        raise ValueError(f"ratio must be in [0, 1], got {ratio}")
    rng = _rng(seed)
    mask = rng.random(len(cloud)) < ratio
    return cloud.select(mask)


def random_downsample_count(
    cloud: PointCloud, n_target: int, seed: int | np.random.Generator | None = None
) -> PointCloud:
    """Uniformly sample exactly ``n_target`` points without replacement."""
    n = len(cloud)
    if n_target < 0:
        raise ValueError("n_target must be non-negative")
    if n_target >= n:
        return cloud.copy()
    rng = _rng(seed)
    idx = rng.choice(n, size=n_target, replace=False)
    idx.sort()
    return cloud.select(idx)


def voxel_downsample(cloud: PointCloud, voxel_size: float) -> PointCloud:
    """Keep one representative point (the centroid) per occupied voxel.

    Colors, when present, are averaged per voxel.
    """
    if voxel_size <= 0:
        raise ValueError("voxel_size must be positive")
    if len(cloud) == 0:
        return cloud.copy()
    lo, _ = cloud.bounds()
    keys = np.floor((cloud.positions - lo) / voxel_size).astype(np.int64)
    # Lexicographic voxel id: encode the 3 indices into one int64 key.
    spans = keys.max(axis=0) + 1
    flat = (keys[:, 0] * spans[1] + keys[:, 1]) * spans[2] + keys[:, 2]
    order = np.argsort(flat, kind="stable")
    flat_sorted = flat[order]
    # Segment boundaries of equal voxel ids.
    starts = np.flatnonzero(np.r_[True, flat_sorted[1:] != flat_sorted[:-1]])
    counts = np.diff(np.r_[starts, len(flat_sorted)])
    pos_sorted = cloud.positions[order]
    sums = np.add.reduceat(pos_sorted, starts, axis=0)
    centroids = sums / counts[:, None]
    colors = None
    if cloud.has_colors:
        col_sorted = cloud.colors[order].astype(np.float64)
        csums = np.add.reduceat(col_sorted, starts, axis=0)
        colors = np.clip(np.round(csums / counts[:, None]), 0, 255).astype(np.uint8)
    return PointCloud(centroids, colors)


def farthest_point_sample(
    cloud: PointCloud,
    n_target: int,
    seed: int | np.random.Generator | None = None,
) -> PointCloud:
    """Farthest-point sampling (FPS).

    Iteratively picks the point farthest from the already-selected set.
    O(n_target * n) — the paper measures ≥5 minutes for 200K→100K on a
    desktop, which is exactly why VoLUT uses random sampling instead; we
    keep FPS as the quality-oriented baseline and for the downsampling
    ablation.
    """
    n = len(cloud)
    if n_target < 0:
        raise ValueError("n_target must be non-negative")
    if n_target >= n:
        return cloud.copy()
    if n_target == 0:
        return cloud.select(np.zeros(0, dtype=np.int64))
    rng = _rng(seed)
    pos = cloud.positions
    chosen = np.empty(n_target, dtype=np.int64)
    chosen[0] = rng.integers(n)
    # Distance of every point to the nearest chosen point so far.
    dist = np.linalg.norm(pos - pos[chosen[0]], axis=1)
    for i in range(1, n_target):
        nxt = int(np.argmax(dist))
        chosen[i] = nxt
        np.minimum(dist, np.linalg.norm(pos - pos[nxt], axis=1), out=dist)
    chosen.sort()
    return cloud.select(chosen)
