"""Procedural point-cloud content generation.

The paper evaluates on four captured videos (8iVFB *Long Dress* and *Loot*,
CMU *Haggle*, and a *Lab* scan) that we cannot redistribute or download.
This module synthesizes stand-ins with the properties that matter to the
VoLUT pipeline:

* points sampled from 2-D surfaces embedded in 3-D (so kNN neighborhoods
  are locally planar, which is what the refinement network learns to
  exploit);
* **non-uniform sampling density** (captured clouds are denser on limbs and
  faces) — this is what makes naive kNN interpolation produce clumped
  artifacts that dilation fixes (paper Fig. 4/5);
* smooth temporal deformation between frames (articulated sway/walk), so
  video chunks are temporally coherent like real captures;
* per-point RGB from a deterministic texture function, so colorization is a
  meaningful stage.

All generators are deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

from .cloud import PointCloud

__all__ = [
    "sample_sphere",
    "sample_cylinder",
    "sample_torus",
    "sample_plane",
    "sample_box",
    "humanoid_frame",
    "room_frame",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


# ---------------------------------------------------------------------------
# Primitive surface samplers.  Each returns (n, 3) positions.
# ---------------------------------------------------------------------------

def sample_sphere(
    n: int,
    radius: float = 1.0,
    center: tuple[float, float, float] = (0.0, 0.0, 0.0),
    rng: np.random.Generator | int | None = None,
    squash: tuple[float, float, float] = (1.0, 1.0, 1.0),
) -> np.ndarray:
    """Uniform samples on an (optionally squashed) sphere surface."""
    g = _rng(rng)
    v = g.normal(size=(n, 3))
    v /= np.linalg.norm(v, axis=1, keepdims=True)
    return v * radius * np.asarray(squash) + np.asarray(center)


def sample_cylinder(
    n: int,
    radius: float,
    height: float,
    center: tuple[float, float, float] = (0.0, 0.0, 0.0),
    rng: np.random.Generator | int | None = None,
    taper: float = 1.0,
) -> np.ndarray:
    """Samples on a vertical (y-axis) cylinder side surface.

    ``taper`` scales the radius linearly from bottom (1.0) to top
    (``taper``), producing cones/limbs.
    """
    g = _rng(rng)
    theta = g.uniform(0.0, 2 * np.pi, n)
    y = g.uniform(-0.5, 0.5, n)
    r = radius * (1.0 + (taper - 1.0) * (y + 0.5))
    pts = np.stack([r * np.cos(theta), y * height, r * np.sin(theta)], axis=1)
    return pts + np.asarray(center)


def sample_torus(
    n: int,
    major: float,
    minor: float,
    center: tuple[float, float, float] = (0.0, 0.0, 0.0),
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Area-weighted samples on a torus (rejection on the minor angle)."""
    g = _rng(rng)
    out = np.empty((0, 3))
    while len(out) < n:
        m = max(n, 1024)
        u = g.uniform(0, 2 * np.pi, m)  # major angle
        v = g.uniform(0, 2 * np.pi, m)  # minor angle
        # Surface element ∝ (major + minor cos v); rejection keeps it uniform.
        keep = g.uniform(0, major + minor, m) < (major + minor * np.cos(v))
        u, v = u[keep], v[keep]
        x = (major + minor * np.cos(v)) * np.cos(u)
        z = (major + minor * np.cos(v)) * np.sin(u)
        y = minor * np.sin(v)
        out = np.vstack([out, np.stack([x, y, z], axis=1)])
    return out[:n] + np.asarray(center)


def sample_plane(
    n: int,
    size: tuple[float, float],
    center: tuple[float, float, float] = (0.0, 0.0, 0.0),
    normal_axis: int = 1,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Uniform samples on an axis-aligned rectangle."""
    g = _rng(rng)
    uv = g.uniform(-0.5, 0.5, (n, 2)) * np.asarray(size)
    pts = np.zeros((n, 3))
    axes = [a for a in range(3) if a != normal_axis]
    pts[:, axes[0]] = uv[:, 0]
    pts[:, axes[1]] = uv[:, 1]
    return pts + np.asarray(center)


def sample_box(
    n: int,
    size: tuple[float, float, float],
    center: tuple[float, float, float] = (0.0, 0.0, 0.0),
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Area-weighted samples on the six faces of a box."""
    g = _rng(rng)
    sx, sy, sz = size
    areas = np.array([sy * sz, sy * sz, sx * sz, sx * sz, sx * sy, sx * sy])
    face = g.choice(6, size=n, p=areas / areas.sum())
    uv = g.uniform(-0.5, 0.5, (n, 2))
    pts = np.zeros((n, 3))
    half = np.asarray(size) / 2.0
    for f in range(6):
        m = face == f
        axis = f // 2
        sign = 1.0 if f % 2 == 0 else -1.0
        other = [a for a in range(3) if a != axis]
        pts[m, axis] = sign * half[axis]
        pts[m, other[0]] = uv[m, 0] * size[other[0]]
        pts[m, other[1]] = uv[m, 1] * size[other[1]]
    return pts + np.asarray(center)


# ---------------------------------------------------------------------------
# Texture: deterministic RGB from position, per-video palette.
# ---------------------------------------------------------------------------

def _texture(pos: np.ndarray, palette_seed: int) -> np.ndarray:
    """Smooth procedural RGB texture.

    A few fixed-frequency sinusoids of position, mixed per-channel by a
    palette derived from ``palette_seed``.  Smoothness matters: nearest-
    neighbor colorization of interpolated points should be approximately
    correct, as it is for real captures.
    """
    g = np.random.default_rng(palette_seed)
    freqs = g.uniform(1.0, 4.0, (3, 3))
    phases = g.uniform(0.0, 2 * np.pi, 3)
    base = g.uniform(0.25, 0.75, 3)
    amp = g.uniform(0.2, 0.25, 3)
    rgb = np.empty((len(pos), 3))
    for c in range(3):
        rgb[:, c] = base[c] + amp[c] * np.sin(pos @ freqs[c] + phases[c])
    return np.clip(rgb, 0.0, 1.0)


# ---------------------------------------------------------------------------
# Frame generators.
# ---------------------------------------------------------------------------

def _density_split(n: int, weights: list[float]) -> list[int]:
    """Split ``n`` points across parts proportionally to ``weights``."""
    w = np.asarray(weights, dtype=np.float64)
    w /= w.sum()
    counts = np.floor(w * n).astype(int)
    counts[0] += n - counts.sum()
    return counts.tolist()


def humanoid_frame(
    n_points: int,
    t: float,
    seed: int = 0,
    sway: float = 0.15,
    palette_seed: int = 7,
    second_person_offset: float | None = None,
) -> PointCloud:
    """One frame of an articulated humanoid point-cloud 'capture'.

    The figure stands ~1.7 units tall at the origin and sways/walks as a
    smooth function of time ``t`` (seconds).  Density is deliberately
    non-uniform: head and arms are oversampled relative to the torso, as
    in real captures.

    When ``second_person_offset`` is given, a phase-shifted second figure
    is added at that x-offset (used by the *haggle* two-person video).
    """
    rng = _rng(seed)
    phase = 2 * np.pi * 0.5 * t  # 0.5 Hz sway
    lean = sway * np.sin(phase)
    arm_swing = 0.35 * np.sin(phase)

    # Per-part (weight, generator).  Weights encode density non-uniformity.
    parts: list[np.ndarray] = []
    weights = [3.0, 1.5, 4.0, 1.2, 1.2, 1.0, 1.0, 0.8]
    counts = _density_split(n_points, weights)

    # Head: dense small sphere.
    parts.append(sample_sphere(counts[0], 0.12, (lean * 0.3, 1.55, 0.0), rng))
    # Neck.
    parts.append(
        sample_cylinder(counts[1], 0.05, 0.12, (lean * 0.25, 1.42, 0.0), rng)
    )
    # Torso: tapered cylinder, lower density.
    parts.append(
        sample_cylinder(
            counts[2], 0.22, 0.62, (lean * 0.15, 1.05, 0.0), rng, taper=0.75
        )
    )
    # Arms: dense, swinging fore/back.
    for side, swing in ((-1.0, arm_swing), (1.0, -arm_swing)):
        idx = 3 if side < 0 else 4
        arm = sample_cylinder(counts[idx], 0.055, 0.6, (0.0, 0.0, 0.0), rng, taper=0.7)
        # Rotate about x-axis by the swing angle, then place at the shoulder.
        ca, sa = np.cos(swing), np.sin(swing)
        y, z = arm[:, 1].copy(), arm[:, 2].copy()
        arm[:, 1] = ca * y - sa * z
        arm[:, 2] = sa * y + ca * z
        arm += np.array([side * 0.30 + lean * 0.15, 1.05, 0.0])
        parts.append(arm)
    # Legs: stride opposite to arms.
    for side, swing in ((-1.0, -arm_swing * 0.6), (1.0, arm_swing * 0.6)):
        idx = 5 if side < 0 else 6
        leg = sample_cylinder(counts[idx], 0.08, 0.8, (0.0, 0.0, 0.0), rng, taper=0.8)
        ca, sa = np.cos(swing), np.sin(swing)
        y, z = leg[:, 1].copy(), leg[:, 2].copy()
        leg[:, 1] = ca * y - sa * z
        leg[:, 2] = sa * y + ca * z
        leg += np.array([side * 0.12, 0.40, 0.0])
        parts.append(leg)
    # Skirt/coat: torus band around the hips (gives the 'long dress' shape).
    parts.append(sample_torus(counts[7], 0.26, 0.10, (lean * 0.1, 0.72, 0.0), rng))

    pos = np.vstack(parts)
    if second_person_offset is not None:
        other = humanoid_frame(
            n_points,
            t + 1.1,  # phase shift so the two figures move independently
            seed=seed + 1,
            sway=sway,
            palette_seed=palette_seed + 1,
        )
        pos = np.vstack([pos, other.positions + np.array([second_person_offset, 0, 0])])
    colors = _texture(pos, palette_seed)
    return PointCloud(pos, colors)


def room_frame(
    n_points: int,
    t: float,
    seed: int = 0,
    palette_seed: int = 21,
) -> PointCloud:
    """One frame of a mostly-static 'lab scan' scene.

    Walls/floor (planes), a table (box), and equipment (torus + spheres),
    with a slowly orbiting small object providing the only motion — like a
    LiDAR scan of a lab with a person moving through it.
    """
    rng = _rng(seed)
    weights = [2.0, 2.0, 1.5, 2.5, 1.5, 1.5]
    counts = _density_split(n_points, weights)
    parts = [
        sample_plane(counts[0], (4.0, 4.0), (0.0, 0.0, 0.0), 1, rng),        # floor
        sample_plane(counts[1], (4.0, 2.5), (0.0, 1.25, -2.0), 2, rng),      # wall
        sample_box(counts[2], (1.2, 0.8, 0.7), (0.8, 0.4, -1.0), rng),       # table
        sample_sphere(counts[3], 0.3, (0.8, 1.1, -1.0), rng),                # gear
        sample_torus(counts[4], 0.5, 0.12, (-1.0, 0.8, -0.8), rng),          # rig
    ]
    # Moving object: small dense sphere orbiting the room center.
    angle = 2 * np.pi * 0.1 * t
    parts.append(
        sample_sphere(
            counts[5], 0.15, (1.2 * np.cos(angle), 0.9, 1.2 * np.sin(angle) - 0.5), rng
        )
    )
    pos = np.vstack(parts)
    colors = _texture(pos, palette_seed)
    return PointCloud(pos, colors)
