"""Rigid and stochastic point-cloud transforms.

Used by data augmentation during refinement-net training, by tests as
invariance probes (the position encoding must be translation/scale
invariant), and by the examples to pose content in scenes.
"""

from __future__ import annotations

import numpy as np

from .cloud import PointCloud

__all__ = [
    "rotation_matrix",
    "rotate",
    "jitter",
    "normalize_unit_sphere",
    "random_rigid_transform",
]


def rotation_matrix(axis: np.ndarray, angle: float) -> np.ndarray:
    """Rodrigues rotation matrix about ``axis`` by ``angle`` radians."""
    a = np.asarray(axis, dtype=np.float64).reshape(3)
    norm = np.linalg.norm(a)
    if norm == 0:
        raise ValueError("rotation axis must be non-zero")
    a = a / norm
    k = np.array(
        [[0, -a[2], a[1]], [a[2], 0, -a[0]], [-a[1], a[0], 0]]
    )
    return np.eye(3) + np.sin(angle) * k + (1 - np.cos(angle)) * (k @ k)


def rotate(
    cloud: PointCloud,
    axis: np.ndarray,
    angle: float,
    center: np.ndarray | None = None,
) -> PointCloud:
    """Rotate about ``axis`` through ``center`` (default: centroid)."""
    c = cloud.centroid() if center is None else np.asarray(center, dtype=np.float64)
    rot = rotation_matrix(axis, angle)
    pos = (cloud.positions - c) @ rot.T + c
    return PointCloud(pos, cloud.colors)


def jitter(
    cloud: PointCloud,
    sigma: float,
    seed: int | np.random.Generator | None = None,
    clip: float | None = None,
) -> PointCloud:
    """Add isotropic Gaussian position noise (σ in scene units).

    ``clip`` optionally bounds each displacement component, the common
    augmentation convention.
    """
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    noise = rng.normal(0.0, sigma, cloud.positions.shape)
    if clip is not None:
        if clip <= 0:
            raise ValueError("clip must be positive")
        np.clip(noise, -clip, clip, out=noise)
    return PointCloud(cloud.positions + noise, cloud.colors)


def normalize_unit_sphere(cloud: PointCloud) -> tuple[PointCloud, np.ndarray, float]:
    """Center at the origin and scale into the unit sphere.

    Returns ``(normalized, original_centroid, original_scale)`` so the
    transform can be undone.
    """
    if len(cloud) == 0:
        return cloud.copy(), np.zeros(3), 1.0
    c = cloud.centroid()
    centered = cloud.positions - c
    scale = float(np.linalg.norm(centered, axis=1).max())
    if scale == 0:
        scale = 1.0
    return PointCloud(centered / scale, cloud.colors), c, scale


def random_rigid_transform(
    cloud: PointCloud, seed: int | np.random.Generator | None = None,
    max_translation: float = 1.0,
) -> PointCloud:
    """A random rotation + translation (training augmentation)."""
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    axis = rng.normal(size=3)
    angle = rng.uniform(0, 2 * np.pi)
    offset = rng.uniform(-max_translation, max_translation, 3)
    return rotate(cloud, axis, angle).translate(offset)
