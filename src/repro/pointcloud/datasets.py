"""Volumetric-video datasets.

Exposes the four evaluation videos from the paper (§7.1) as lazily generated
:class:`VolumetricVideo` sequences:

* ``longdress`` and ``loot`` — 300 frames / 10 s, ~100K points per frame
  (looped ten times in streaming experiments, as the paper does);
* ``haggle`` — two interacting figures, 7,800 frames / 4.3 min;
* ``lab`` — a mostly static scene, 3,622 frames / 2 min.

Frame counts and per-frame point budgets match the paper; content is
procedural (see :mod:`repro.pointcloud.synthesis` and DESIGN.md).  Frames
are cached with a small LRU so streaming simulations that revisit frames do
not regenerate geometry.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

from .cloud import PointCloud
from .synthesis import humanoid_frame, room_frame

__all__ = ["VolumetricVideo", "make_video", "VIDEO_NAMES", "PAPER_VIDEOS"]

VIDEO_NAMES = ("longdress", "loot", "haggle", "lab")

#: Paper-reported shape of each evaluation video.
PAPER_VIDEOS: dict[str, dict] = {
    "longdress": {"frames": 300, "fps": 30, "points": 100_000, "loops": 10},
    "loot": {"frames": 300, "fps": 30, "points": 100_000, "loops": 10},
    "haggle": {"frames": 7_800, "fps": 30, "points": 100_000, "loops": 1},
    "lab": {"frames": 3_622, "fps": 30, "points": 100_000, "loops": 1},
}


@dataclass
class VolumetricVideo:
    """A frame-indexed volumetric video.

    Frames are produced on demand by ``frame_fn(index)`` and memoized in an
    LRU cache of ``cache_size`` entries.  ``n_frames`` counts unique frames;
    iteration honours ``loops`` (the paper loops the 10-second videos ten
    times during streaming evaluation).
    """

    name: str
    n_frames: int
    fps: int
    frame_fn: Callable[[int], PointCloud]
    loops: int = 1
    cache_size: int = 16
    _cache: OrderedDict = field(default_factory=OrderedDict, repr=False)

    def __post_init__(self) -> None:
        if self.n_frames <= 0:
            raise ValueError("n_frames must be positive")
        if self.fps <= 0:
            raise ValueError("fps must be positive")
        if self.loops <= 0:
            raise ValueError("loops must be positive")

    # ------------------------------------------------------------------
    @property
    def n_playback_frames(self) -> int:
        """Total frames played, counting loops."""
        return self.n_frames * self.loops

    @property
    def duration(self) -> float:
        """Playback duration in seconds, counting loops."""
        return self.n_playback_frames / self.fps

    def frame(self, index: int) -> PointCloud:
        """Return playback frame ``index`` (loop-aware, cached)."""
        if not 0 <= index < self.n_playback_frames:
            raise IndexError(
                f"frame {index} out of range [0, {self.n_playback_frames})"
            )
        base = index % self.n_frames
        if base in self._cache:
            self._cache.move_to_end(base)
            return self._cache[base]
        cloud = self.frame_fn(base)
        self._cache[base] = cloud
        if len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
        return cloud

    def __len__(self) -> int:
        return self.n_playback_frames

    def __iter__(self) -> Iterator[PointCloud]:
        for i in range(self.n_playback_frames):
            yield self.frame(i)

    def frame_time(self, index: int) -> float:
        """Presentation timestamp of playback frame ``index`` in seconds."""
        return index / self.fps


def make_video(
    name: str,
    n_points: int | None = None,
    n_frames: int | None = None,
    seed: int = 0,
) -> VolumetricVideo:
    """Construct one of the paper's four evaluation videos.

    ``n_points`` and ``n_frames`` default to the paper's values but can be
    shrunk for fast tests (e.g. 2K points, 30 frames).
    """
    if name not in PAPER_VIDEOS:
        raise ValueError(f"unknown video {name!r}; choose from {VIDEO_NAMES}")
    spec = PAPER_VIDEOS[name]
    pts = spec["points"] if n_points is None else int(n_points)
    frames = spec["frames"] if n_frames is None else int(n_frames)
    fps = spec["fps"]

    if name == "longdress":
        def frame_fn(i: int) -> PointCloud:
            return humanoid_frame(pts, i / fps, seed=seed, sway=0.18, palette_seed=7)
    elif name == "loot":
        def frame_fn(i: int) -> PointCloud:
            return humanoid_frame(pts, i / fps, seed=seed + 100, sway=0.10,
                                  palette_seed=13)
    elif name == "haggle":
        def frame_fn(i: int) -> PointCloud:
            # Two interacting figures; each gets half the point budget.
            return humanoid_frame(pts // 2, i / fps, seed=seed + 200, sway=0.22,
                                  palette_seed=17, second_person_offset=0.9)
    else:  # lab
        def frame_fn(i: int) -> PointCloud:
            return room_frame(pts, i / fps, seed=seed + 300, palette_seed=21)

    return VolumetricVideo(
        name=name,
        n_frames=frames,
        fps=fps,
        frame_fn=frame_fn,
        loops=spec["loops"],
    )
