"""Point-cloud file I/O.

Supports the two formats VoLUT's artifacts use:

* **PLY** — the interchange format of the 8iVFB dataset.  Both ASCII and
  binary-little-endian variants are implemented from scratch (no Open3D).
* **NPZ** — NumPy's zipped-array container; the paper stores its LUT as an
  ``npy`` file for the same language-neutrality reason.
"""

from __future__ import annotations

import io as _io
import os
from pathlib import Path

import numpy as np

from .cloud import PointCloud

__all__ = ["read_ply", "write_ply", "read_npz", "write_npz", "load", "save"]

_PLY_MAGIC = b"ply"


def write_ply(cloud: PointCloud, path: str | os.PathLike, binary: bool = True) -> None:
    """Write ``cloud`` to ``path`` as a PLY file.

    Positions are stored as float32 and colors as uchar, matching the
    8iVFB conventions.
    """
    path = Path(path)
    n = len(cloud)
    header = ["ply"]
    header.append(
        "format binary_little_endian 1.0" if binary else "format ascii 1.0"
    )
    header.append("comment produced by repro (VoLUT reproduction)")
    header.append(f"element vertex {n}")
    header += ["property float x", "property float y", "property float z"]
    if cloud.has_colors:
        header += [
            "property uchar red",
            "property uchar green",
            "property uchar blue",
        ]
    header.append("end_header")
    head = ("\n".join(header) + "\n").encode("ascii")

    pos = cloud.positions.astype("<f4")
    with open(path, "wb") as fh:
        fh.write(head)
        if binary:
            if cloud.has_colors:
                rec = np.dtype(
                    [("x", "<f4"), ("y", "<f4"), ("z", "<f4"),
                     ("r", "u1"), ("g", "u1"), ("b", "u1")]
                )
                buf = np.empty(n, dtype=rec)
                buf["x"], buf["y"], buf["z"] = pos[:, 0], pos[:, 1], pos[:, 2]
                buf["r"], buf["g"], buf["b"] = (
                    cloud.colors[:, 0],
                    cloud.colors[:, 1],
                    cloud.colors[:, 2],
                )
                fh.write(buf.tobytes())
            else:
                fh.write(pos.tobytes())
        else:
            lines = _io.StringIO()
            if cloud.has_colors:
                for p, c in zip(pos, cloud.colors):
                    lines.write(
                        f"{p[0]:.6f} {p[1]:.6f} {p[2]:.6f} {c[0]} {c[1]} {c[2]}\n"
                    )
            else:
                for p in pos:
                    lines.write(f"{p[0]:.6f} {p[1]:.6f} {p[2]:.6f}\n")
            fh.write(lines.getvalue().encode("ascii"))


def _parse_ply_header(fh) -> tuple[str, int, list[str]]:
    """Return (format, vertex_count, property names) from an open PLY file."""
    magic = fh.readline().strip()
    if magic != _PLY_MAGIC:
        raise ValueError("not a PLY file (missing 'ply' magic)")
    fmt = ""
    n_vertex = -1
    props: list[str] = []
    in_vertex = False
    while True:
        raw = fh.readline()
        if not raw:
            raise ValueError("unterminated PLY header")
        line = raw.decode("ascii", errors="replace").strip()
        if line.startswith("comment"):
            continue
        if line.startswith("format"):
            fmt = line.split()[1]
        elif line.startswith("element"):
            _, name, count = line.split()
            in_vertex = name == "vertex"
            if in_vertex:
                n_vertex = int(count)
        elif line.startswith("property") and in_vertex:
            parts = line.split()
            props.append(parts[-1])
        elif line == "end_header":
            break
    if n_vertex < 0:
        raise ValueError("PLY file has no vertex element")
    return fmt, n_vertex, props


_PROP_DTYPES = {
    "x": "<f4", "y": "<f4", "z": "<f4",
    "red": "u1", "green": "u1", "blue": "u1",
    "nx": "<f4", "ny": "<f4", "nz": "<f4",
    "alpha": "u1",
}


def read_ply(path: str | os.PathLike) -> PointCloud:
    """Read a PLY file written by :func:`write_ply` or 8iVFB-style tools.

    Recognizes x/y/z, red/green/blue and skips normals/alpha when present.
    """
    with open(path, "rb") as fh:
        fmt, n, props = _parse_ply_header(fh)
        unknown = [p for p in props if p not in _PROP_DTYPES]
        if unknown:
            raise ValueError(f"unsupported PLY vertex properties: {unknown}")
        rec = np.dtype([(p, _PROP_DTYPES[p]) for p in props])
        if fmt == "ascii":
            text = fh.read().decode("ascii")
            flat = np.array(text.split(), dtype=np.float64)
            ncols = len(props)
            if flat.size < n * ncols:
                raise ValueError("PLY ASCII body truncated")
            table = flat[: n * ncols].reshape(n, ncols)
            cols = {p: table[:, i] for i, p in enumerate(props)}
        elif fmt == "binary_little_endian":
            buf = fh.read(rec.itemsize * n)
            if len(buf) < rec.itemsize * n:
                raise ValueError("PLY binary body truncated")
            arr = np.frombuffer(buf, dtype=rec, count=n)
            cols = {p: arr[p] for p in props}
        else:
            raise ValueError(f"unsupported PLY format: {fmt}")

    pos = np.stack([cols["x"], cols["y"], cols["z"]], axis=1).astype(np.float64)
    colors = None
    if {"red", "green", "blue"} <= set(props):
        colors = np.stack(
            [cols["red"], cols["green"], cols["blue"]], axis=1
        ).astype(np.uint8)
    return PointCloud(pos, colors)


def write_npz(cloud: PointCloud, path: str | os.PathLike) -> None:
    """Write ``cloud`` to a compressed ``.npz`` file."""
    data = {"positions": cloud.positions.astype(np.float32)}
    if cloud.has_colors:
        data["colors"] = cloud.colors
    np.savez_compressed(path, **data)


def read_npz(path: str | os.PathLike) -> PointCloud:
    """Read a cloud written by :func:`write_npz`."""
    with np.load(path) as data:
        pos = data["positions"].astype(np.float64)
        col = data["colors"] if "colors" in data.files else None
        return PointCloud(pos, col)


def save(cloud: PointCloud, path: str | os.PathLike) -> None:
    """Save by extension: ``.ply`` or ``.npz``."""
    suffix = Path(path).suffix.lower()
    if suffix == ".ply":
        write_ply(cloud, path)
    elif suffix == ".npz":
        write_npz(cloud, path)
    else:
        raise ValueError(f"unsupported point-cloud extension: {suffix}")


def load(path: str | os.PathLike) -> PointCloud:
    """Load by extension: ``.ply`` or ``.npz``."""
    suffix = Path(path).suffix.lower()
    if suffix == ".ply":
        return read_ply(path)
    if suffix == ".npz":
        return read_npz(path)
    raise ValueError(f"unsupported point-cloud extension: {suffix}")
