"""Point-cloud containers, I/O, sampling, and procedural datasets."""

from .cloud import PointCloud
from .datasets import PAPER_VIDEOS, VIDEO_NAMES, VolumetricVideo, make_video
from .io import load, read_npz, read_ply, save, write_npz, write_ply
from .sampling import (
    farthest_point_sample,
    random_downsample,
    random_downsample_count,
    voxel_downsample,
)
from .synthesis import humanoid_frame, room_frame
from .transforms import (
    jitter,
    normalize_unit_sphere,
    random_rigid_transform,
    rotate,
    rotation_matrix,
)

__all__ = [
    "PointCloud",
    "VolumetricVideo",
    "make_video",
    "VIDEO_NAMES",
    "PAPER_VIDEOS",
    "load",
    "save",
    "read_ply",
    "write_ply",
    "read_npz",
    "write_npz",
    "random_downsample",
    "random_downsample_count",
    "voxel_downsample",
    "farthest_point_sample",
    "humanoid_frame",
    "room_frame",
    "rotation_matrix",
    "rotate",
    "jitter",
    "normalize_unit_sphere",
    "random_rigid_transform",
]
