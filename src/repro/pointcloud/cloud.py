"""Core point-cloud container.

A :class:`PointCloud` is an immutable-by-convention pair of arrays:
``positions`` with shape ``(n, 3)`` float64 and optional ``colors`` with
shape ``(n, 3)`` uint8.  All VoLUT stages (downsampling, interpolation,
colorization, LUT refinement, rendering, metrics) consume and produce this
type, so keeping it small and NumPy-native keeps every stage vectorizable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PointCloud"]


def _as_positions(positions: np.ndarray) -> np.ndarray:
    pos = np.asarray(positions, dtype=np.float64)
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ValueError(f"positions must have shape (n, 3), got {pos.shape}")
    if not np.all(np.isfinite(pos)):
        raise ValueError("positions must be finite")
    return pos


def _as_colors(colors: np.ndarray | None, n: int) -> np.ndarray | None:
    if colors is None:
        return None
    col = np.asarray(colors)
    if col.ndim != 2 or col.shape[1] != 3:
        raise ValueError(f"colors must have shape (n, 3), got {col.shape}")
    if col.shape[0] != n:
        raise ValueError(
            f"colors row count {col.shape[0]} does not match positions {n}"
        )
    if col.dtype != np.uint8:
        if np.issubdtype(col.dtype, np.floating):
            # Floating colors are interpreted in [0, 1].
            col = np.clip(np.round(col * 255.0), 0, 255).astype(np.uint8)
        else:
            col = np.clip(col, 0, 255).astype(np.uint8)
    return col


@dataclass
class PointCloud:
    """A 3-D point cloud with optional per-point RGB colors.

    Parameters
    ----------
    positions:
        ``(n, 3)`` float array of XYZ coordinates.
    colors:
        Optional ``(n, 3)`` uint8 RGB array.  Floating-point input is
        interpreted in ``[0, 1]`` and quantized.
    """

    positions: np.ndarray
    colors: np.ndarray | None = field(default=None)

    def __post_init__(self) -> None:
        self.positions = _as_positions(self.positions)
        self.colors = _as_colors(self.colors, len(self.positions))

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.positions.shape[0]

    @property
    def n_points(self) -> int:
        """Number of points in the cloud."""
        return len(self)

    @property
    def has_colors(self) -> bool:
        """Whether per-point RGB attributes are present."""
        return self.colors is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        col = "rgb" if self.has_colors else "no-color"
        return f"PointCloud(n={len(self)}, {col})"

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Axis-aligned bounding box as ``(min_xyz, max_xyz)``."""
        if len(self) == 0:
            zero = np.zeros(3)
            return zero, zero
        return self.positions.min(axis=0), self.positions.max(axis=0)

    def centroid(self) -> np.ndarray:
        """Mean position of all points."""
        if len(self) == 0:
            return np.zeros(3)
        return self.positions.mean(axis=0)

    def extent(self) -> float:
        """Length of the bounding-box diagonal."""
        lo, hi = self.bounds()
        return float(np.linalg.norm(hi - lo))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def select(self, index: np.ndarray) -> "PointCloud":
        """Return a new cloud containing only the points at ``index``.

        ``index`` may be an integer index array or a boolean mask.
        """
        idx = np.asarray(index)
        pos = self.positions[idx]
        col = self.colors[idx] if self.colors is not None else None
        return PointCloud(pos, col)

    def translate(self, offset: np.ndarray) -> "PointCloud":
        """Return a copy translated by ``offset`` (length-3 vector)."""
        off = np.asarray(offset, dtype=np.float64).reshape(3)
        return PointCloud(self.positions + off, self.colors)

    def scale(self, factor: float, center: np.ndarray | None = None) -> "PointCloud":
        """Return a copy scaled by ``factor`` about ``center`` (default centroid)."""
        c = self.centroid() if center is None else np.asarray(center, dtype=np.float64)
        return PointCloud((self.positions - c) * float(factor) + c, self.colors)

    def concat(self, other: "PointCloud") -> "PointCloud":
        """Concatenate two clouds.

        Colors are kept only when *both* clouds carry them; otherwise the
        result is geometry-only to avoid fabricating attributes.
        """
        pos = np.vstack([self.positions, other.positions])
        if self.has_colors and other.has_colors:
            col = np.vstack([self.colors, other.colors])
        else:
            col = None
        return PointCloud(pos, col)

    def copy(self) -> "PointCloud":
        """Deep copy."""
        col = None if self.colors is None else self.colors.copy()
        return PointCloud(self.positions.copy(), col)

    def with_positions(self, positions: np.ndarray) -> "PointCloud":
        """Return a cloud with new positions but the same colors.

        The replacement must preserve the point count so attributes remain
        aligned; VoLUT's refinement stage uses this to apply LUT offsets.
        """
        pos = _as_positions(positions)
        if pos.shape[0] != len(self):
            raise ValueError(
                f"replacement has {pos.shape[0]} points, expected {len(self)}"
            )
        return PointCloud(pos, self.colors)

    @staticmethod
    def empty(with_colors: bool = False) -> "PointCloud":
        """An empty cloud, optionally with an empty color table."""
        pos = np.zeros((0, 3))
        col = np.zeros((0, 3), dtype=np.uint8) if with_colors else None
        return PointCloud(pos, col)

    # ------------------------------------------------------------------
    # Size accounting (used by the streaming encoder)
    # ------------------------------------------------------------------
    def nbytes(self, position_bytes: int = 4, color_bytes: int = 1) -> int:
        """Serialized payload size in bytes.

        The paper streams float32 positions and uint8 colors; the defaults
        match that wire format (15 bytes per colored point).
        """
        per_point = 3 * position_bytes + (3 * color_bytes if self.has_colors else 0)
        return len(self) * per_point
