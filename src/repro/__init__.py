"""VoLUT reproduction — LUT-based point-cloud super-resolution for
volumetric video streaming (MLSys 2025).

Package layout:

* :mod:`repro.pointcloud` — containers, I/O, sampling, procedural datasets
* :mod:`repro.spatial` — kNN backends, two-layer octree, neighbor reuse
* :mod:`repro.nn` — NumPy MLP substrate (training the refinement network)
* :mod:`repro.sr` — the paper's contribution: dilated interpolation,
  position encoding, LUT construction/refinement, baselines
* :mod:`repro.metrics` — Chamfer, PSNR, uniformity, QoE
* :mod:`repro.render` — camera, rasterizer, 6DoF viewport traces
* :mod:`repro.net` — bandwidth traces, link model, throughput estimation
* :mod:`repro.streaming` — chunks, ABR (continuous MPC), session simulator
* :mod:`repro.systems` — VoLUT / YuZu-SR / ViVo / raw system configs
* :mod:`repro.devices` — device profiles and the op-count latency model
* :mod:`repro.experiments` — one module per paper table/figure
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
