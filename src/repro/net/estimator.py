"""Throughput estimation (paper §5.1).

The MPC controller consumes "network throughput estimates (computed via
harmonic mean over sliding windows)".  The harmonic mean is the standard
robust estimator in MPC-based ABR (Yin et al. 2015): it down-weights
transient spikes, which would otherwise cause over-fetching.
"""

from __future__ import annotations

from collections import deque

__all__ = ["HarmonicMeanEstimator"]


class HarmonicMeanEstimator:
    """Sliding-window harmonic-mean throughput estimator."""

    def __init__(self, window: int = 5, initial_bps: float = 10e6):
        if window <= 0:
            raise ValueError("window must be positive")
        if initial_bps <= 0:
            raise ValueError("initial estimate must be positive")
        self.window = int(window)
        self.initial_bps = float(initial_bps)
        self._samples: deque[float] = deque(maxlen=self.window)

    def observe(self, throughput_bps: float) -> None:
        """Record one completed-transfer throughput sample."""
        if throughput_bps <= 0:
            raise ValueError("throughput sample must be positive")
        self._samples.append(float(throughput_bps))

    def estimate(self) -> float:
        """Current harmonic-mean estimate (bps).

        Computed with plain-Python arithmetic: this runs once per ABR
        decision, and for windows under numpy's pairwise-summation block
        (8) the sequential sum is bit-identical to the ``np.mean`` it
        replaces.
        """
        if not self._samples:
            return self.initial_bps
        total = 0.0
        for s in self._samples:
            total += 1.0 / s
        return 1.0 / (total / len(self._samples))

    @property
    def n_samples(self) -> int:
        return len(self._samples)

    def reset(self) -> None:
        self._samples.clear()
