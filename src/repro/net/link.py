"""Trace-driven link model.

Deterministically computes how long a transfer of ``n`` bytes takes when it
starts at absolute time ``t``, by integrating the trace's piecewise-constant
rate and adding one RTT of request latency — the behaviour of the paper's
custom DASH-like protocol over TCP at this level of abstraction (slow-start
effects are negligible for multi-megabyte chunks on persistent
connections).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .traces import NetworkTrace

__all__ = ["Link", "SharedLink", "Completion", "SHARING_POLICIES"]


class Link:
    """Downloads bytes over a :class:`NetworkTrace`."""

    def __init__(self, trace: NetworkTrace):
        self.trace = trace

    def download_time(self, nbytes: int, start_time: float) -> float:
        """Seconds to fetch ``nbytes`` starting at ``start_time``.

        Integrates the piecewise-constant trace rate segment-exactly, so
        fluctuating traces are honoured mid-transfer.  Includes one RTT of
        request overhead.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if start_time < 0:
            raise ValueError("start_time must be non-negative")
        if nbytes == 0:
            return self.trace.rtt
        remaining = float(nbytes) * 8.0  # bits
        t = start_time + self.trace.rtt
        elapsed = self.trace.rtt
        # Hard cap prevents infinite loops on pathological inputs; at the
        # 1 Mbps trace floor even a 1 GB chunk finishes well inside this.
        max_iterations = 10_000_000
        for _ in range(max_iterations):
            rate = self.trace.bandwidth_at(t)
            seg = self.trace.time_to_next_change(t)
            if rate * seg >= remaining:
                dt = remaining / rate
                return elapsed + dt
            remaining -= rate * seg
            t += seg
            elapsed += seg
        raise RuntimeError("download did not converge")  # pragma: no cover

    def throughput_sample(self, nbytes: int, start_time: float) -> float:
        """Observed throughput (bps) of a transfer, as a client measures it."""
        dt = self.download_time(nbytes, start_time)
        return float(nbytes) * 8.0 / dt if dt > 0 else float("inf")


#: Supported bandwidth-sharing policies for :class:`SharedLink`.
SHARING_POLICIES = ("fair", "weighted")

#: Relative slack below which a flow's residual bits count as finished
#: (absorbs the float error of draining `share * dt` per event step).
_FINISH_RTOL = 1e-9

#: Absolute slack (bits).  The event time `now + remaining/share` is
#: rounded to `now`'s ulp, so one drain can leave a residue of order
#: `ulp(now) * share` — for a sub-hundred-byte flow that residue exceeds
#: the *relative* tolerance and the event loop would spin at `t == now`
#: forever.  A milli-bit floor absorbs it without affecting any transfer
#: of a whole byte or more.
_FINISH_ATOL = 1e-3


def _finish_threshold(total_bits: float) -> float:
    """Residual bits below which a transfer counts as complete."""
    return max(_FINISH_RTOL * total_bits, _FINISH_ATOL)


@dataclass(frozen=True)
class Completion:
    """One finished transfer on a :class:`SharedLink`."""

    flow_id: int
    finish_time: float
    elapsed: float  # seconds from request start, RTT included


@dataclass
class _Flow:
    flow_id: int
    nbytes: int
    start_time: float
    data_start: float  # start_time + RTT: when bits begin to move
    weight: float
    total_bits: float
    remaining_bits: float
    #: exact elapsed computed via Link.download_time when the flow had the
    #: link to itself for its whole lifetime (None = shared/progressive)
    solo_elapsed: float | None = field(default=None)


class SharedLink:
    """A bottleneck :class:`NetworkTrace` shared by concurrent transfers.

    Models weighted processor sharing (the fluid limit of per-flow fair
    queueing): at any instant, every flow whose data is moving receives

    * ``fair``      — ``capacity / n_active`` regardless of weights;
    * ``weighted``  — ``capacity * w_i / Σ_active w_j``.

    Both policies are work-conserving, so per-flow throughputs always sum
    to the trace capacity while any flow is active.  Each transfer pays one
    RTT of request latency before its bits start moving (matching
    :meth:`Link.download_time`), during which it consumes no bandwidth.

    The link is advanced event-to-event by a scheduler: ``next_event``
    returns the earliest instant the fluid allocation can change (a data
    arrival, a trace-rate boundary, or a projected completion), ``advance``
    drains all active flows to that instant and reports completions.

    A flow that occupies the link alone from request to completion resolves
    through :meth:`Link.download_time` itself, so a single-session fleet
    reproduces :func:`repro.streaming.simulate_session` bit-exactly.
    """

    def __init__(self, trace: NetworkTrace, policy: str = "fair"):
        if policy not in SHARING_POLICIES:
            raise ValueError(
                f"unknown sharing policy {policy!r}; pick from {SHARING_POLICIES}"
            )
        self.trace = trace
        self.policy = policy
        self._solo = Link(trace)
        self._flows: dict[int, _Flow] = {}
        #: bits actually delivered across all flows (conservation checks)
        self.delivered_bits = 0.0

    # ------------------------------------------------------------------
    def add_flow(
        self, flow_id: int, nbytes: int, start_time: float, weight: float = 1.0
    ) -> None:
        """Register a transfer of ``nbytes`` requested at ``start_time``."""
        if flow_id in self._flows:
            raise ValueError(f"flow {flow_id} already in flight")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if start_time < 0:
            raise ValueError("start_time must be non-negative")
        if weight <= 0:
            raise ValueError("weight must be positive")
        bits = float(nbytes) * 8.0
        self._flows[flow_id] = _Flow(
            flow_id=flow_id,
            nbytes=nbytes,
            start_time=float(start_time),
            data_start=float(start_time) + self.trace.rtt,
            weight=float(weight),
            total_bits=bits,
            remaining_bits=bits,
        )

    @property
    def n_flows(self) -> int:
        return len(self._flows)

    def busy(self) -> bool:
        """True while any transfer is unfinished."""
        return bool(self._flows)

    # ------------------------------------------------------------------
    def _share_denominator(self, active: list[_Flow]) -> float:
        """Precomputed once per event step (shares are O(1) per flow after)."""
        if self.policy == "weighted":
            return sum(f.weight for f in active)
        return float(len(active))

    def _share_of(self, flow: _Flow, capacity: float, denominator: float) -> float:
        if self.policy == "weighted":
            return capacity * flow.weight / denominator
        return capacity / denominator

    def _solo_flow(self) -> _Flow | None:
        """The lone untouched flow, if the link holds exactly one.

        New flows only arrive when an existing one completes (sessions are
        suspended on their pending transfer), so a flow that is alone *now*
        and has not yet drained any bits is guaranteed the whole link for
        its entire lifetime — its finish time can be resolved exactly with
        the single-client integrator.
        """
        if len(self._flows) != 1:
            return None
        flow = next(iter(self._flows.values()))
        if flow.remaining_bits != flow.total_bits:
            return None
        return flow

    def _active_waiting(self, now: float) -> tuple[list[_Flow], list[_Flow]]:
        active = [
            f
            for f in self._flows.values()
            if f.data_start <= now and f.remaining_bits > 0.0
        ]
        waiting = [f for f in self._flows.values() if f.data_start > now]
        return active, waiting

    def next_event(self, now: float) -> float:
        """Earliest future instant the bandwidth allocation can change."""
        if not self._flows:
            raise RuntimeError("no flows in flight")
        solo = self._solo_flow()
        if solo is not None:
            if solo.solo_elapsed is None:
                solo.solo_elapsed = self._solo.download_time(
                    solo.nbytes, solo.start_time
                )
            return solo.start_time + solo.solo_elapsed

        active, waiting = self._active_waiting(now)
        events = [f.data_start for f in waiting]
        # Zero-byte transfers complete as soon as their RTT elapses.
        events += [
            max(f.data_start, now)
            for f in self._flows.values()
            if f.remaining_bits <= 0.0
        ]
        if active:
            events.append(now + self.trace.time_to_next_change(now))
            capacity = self.trace.bandwidth_at(now)
            denom = self._share_denominator(active)
            for f in active:
                share = self._share_of(f, capacity, denom)
                events.append(now + f.remaining_bits / share)
        return min(events)

    def advance(self, now: float, to_time: float) -> list[Completion]:
        """Drain all flows from ``now`` to ``to_time``; report completions.

        ``to_time`` must not exceed the next event (allocations are assumed
        constant over the interval).  Completions are ordered by flow id for
        determinism when several flows finish simultaneously.
        """
        if to_time < now:
            raise ValueError("cannot advance backwards")
        done: list[Completion] = []
        solo = self._solo_flow()
        if solo is not None and solo.solo_elapsed is not None:
            finish = solo.start_time + solo.solo_elapsed
            if finish <= to_time:
                self.delivered_bits += solo.total_bits
                del self._flows[solo.flow_id]
                return [Completion(solo.flow_id, finish, solo.solo_elapsed)]
            return []

        active, _ = self._active_waiting(now)
        capacity = self.trace.bandwidth_at(now) if active else 0.0
        denom = self._share_denominator(active) if active else 1.0
        dt = to_time - now
        for f in active:
            share = self._share_of(f, capacity, denom)
            drained = min(share * dt, f.remaining_bits)
            f.remaining_bits -= drained
            self.delivered_bits += drained
            if f.remaining_bits <= _finish_threshold(f.total_bits):
                self.delivered_bits += f.remaining_bits
                f.remaining_bits = 0.0
        for f in sorted(self._flows.values(), key=lambda f: f.flow_id):
            if f.remaining_bits <= 0.0 and f.data_start <= to_time:
                finish = f.data_start if f.total_bits == 0.0 else to_time
                done.append(
                    Completion(f.flow_id, finish, finish - f.start_time)
                )
                del self._flows[f.flow_id]
        return done
