"""Trace-driven link model.

Deterministically computes how long a transfer of ``n`` bytes takes when it
starts at absolute time ``t``, by integrating the trace's piecewise-constant
rate and adding one RTT of request latency — the behaviour of the paper's
custom DASH-like protocol over TCP at this level of abstraction (slow-start
effects are negligible for multi-megabyte chunks on persistent
connections).
"""

from __future__ import annotations

from .traces import NetworkTrace

__all__ = ["Link"]


class Link:
    """Downloads bytes over a :class:`NetworkTrace`."""

    def __init__(self, trace: NetworkTrace):
        self.trace = trace

    def download_time(self, nbytes: int, start_time: float) -> float:
        """Seconds to fetch ``nbytes`` starting at ``start_time``.

        Integrates the piecewise-constant trace rate segment-exactly, so
        fluctuating traces are honoured mid-transfer.  Includes one RTT of
        request overhead.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if start_time < 0:
            raise ValueError("start_time must be non-negative")
        if nbytes == 0:
            return self.trace.rtt
        remaining = float(nbytes) * 8.0  # bits
        t = start_time + self.trace.rtt
        elapsed = self.trace.rtt
        # Hard cap prevents infinite loops on pathological inputs; at the
        # 1 Mbps trace floor even a 1 GB chunk finishes well inside this.
        max_iterations = 10_000_000
        for _ in range(max_iterations):
            rate = self.trace.bandwidth_at(t)
            seg = self.trace.time_to_next_change(t)
            if rate * seg >= remaining:
                dt = remaining / rate
                return elapsed + dt
            remaining -= rate * seg
            t += seg
            elapsed += seg
        raise RuntimeError("download did not converge")  # pragma: no cover

    def throughput_sample(self, nbytes: int, start_time: float) -> float:
        """Observed throughput (bps) of a transfer, as a client measures it."""
        dt = self.download_time(nbytes, start_time)
        return float(nbytes) * 8.0 / dt if dt > 0 else float("inf")
