"""Multi-link network topologies: paths over shared links.

The fleet simulator (PR 1–2) pushes every transfer through a single
:class:`~repro.net.link.SharedLink`.  A CDN serves viewers over *paths* —
origin → edge backhaul, then edge → viewer access — where several paths
share component links and the bottleneck moves with load.  This module
adds that layer while keeping the single-link case bit-exact:

* :class:`NetworkPath` — an ordered series of :class:`SharedLink` hops.
  A fluid transfer traverses all hops simultaneously (cut-through, not
  store-and-forward): its instantaneous rate is the **minimum over hops**
  of its processor-sharing allocation on each hop, and it pays the sum of
  per-hop RTTs once before bits move.
* :class:`PathScheduler` — the event engine.  It generalizes
  :class:`SharedLink`'s event loop to flows on different paths over a
  shared link pool: ``next_event`` returns the earliest instant any
  link's fluid allocation can change, ``advance`` drains every active
  flow at its path rate and reports completions.

The allocation is *per-link* processor sharing capped by the path
minimum — deterministic and monotone (adding a hop can never increase a
flow's rate), though not globally max-min (bandwidth a flow cannot use on
a non-bottleneck hop is not redistributed; the conservative model).

**Two engines, one contract.**  ``PathScheduler(engine="vector")`` (the
default) evaluates every event step as array math over flow-state
tensors: flow scalars live in slot-indexed NumPy arrays, each flow's hop
membership is a row of link indices in a dense ``(slot, hop)`` matrix,
per-link share denominators come from one ``bincount`` over the active
rows, per-flow rates from one ``min`` over the hop axis, and the next
completion horizon from one ``np.min`` over ``remaining / rate``.
``engine="scalar"`` keeps the original per-flow Python loops as the
reference oracle.  The two engines are **bit-exact** with each other:
every float expression is the same IEEE operation in the same order (the
one order-sensitive reduction — the ``weighted`` share denominator,
where NumPy's pairwise summation diverges from Python's sequential
``sum`` at 8+ flows — is computed by an insertion-order Python sum on
weighted links in both engines).  ``tests/net/test_topology.py`` pins
the parity on a hypothesis grid of mixed weights, staggered starts, and
multi-hop paths over shared links.

**One-hop bit-exactness.**  For flows that all traverse the same one-hop
path, every expression here mirrors :class:`SharedLink`'s arithmetic
operation for operation (shares, drain, finish tolerance, the solo-flow
fast path through segment-exact integration), so a fleet scheduled
through a one-hop :class:`PathScheduler` reproduces the bare
``SharedLink`` fleet — and therefore ``simulate_session`` — bit for bit.
The property tests in ``tests/net/test_topology.py`` enforce this.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

import numpy as np

from .link import (
    Completion,
    SharedLink,
    _FINISH_ATOL,
    _FINISH_RTOL,
    _finish_threshold,
)
from .traces import NetworkTrace

__all__ = ["NetworkPath", "PathScheduler", "SCHEDULER_ENGINES", "path_download_time"]


@dataclass(frozen=True)
class NetworkPath:
    """An ordered series of :class:`SharedLink` hops.

    Links are shared by identity: two paths holding the same
    ``SharedLink`` object contend for that link's capacity.  ``rtt`` is
    the request latency of the whole path — one round trip per hop,
    paid once before data moves (persistent connections per hop).
    """

    links: tuple[SharedLink, ...]
    name: str = "path"

    def __post_init__(self) -> None:
        if not self.links:
            raise ValueError("NetworkPath needs at least one link")
        if len({id(l) for l in self.links}) != len(self.links):
            raise ValueError("NetworkPath hops must be distinct links")

    @property
    def rtt(self) -> float:
        """Total request latency: one RTT per hop, in series."""
        total = 0.0
        for link in self.links:
            total += link.trace.rtt
        return total

    @property
    def n_hops(self) -> int:
        return len(self.links)


def path_download_time(path: NetworkPath, nbytes: int, start_time: float) -> float:
    """Seconds to fetch ``nbytes`` over an otherwise-idle path.

    The multi-hop generalization of :meth:`repro.net.link.Link.download_time`:
    the instantaneous rate is the minimum over hop traces, segments end at
    the nearest boundary of any hop, and the path RTT is paid up front.
    For a one-hop path this performs the identical float operations, so it
    is bit-exact with the single-link integrator.
    """
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    if start_time < 0:
        raise ValueError("start_time must be non-negative")
    traces = [link.trace for link in path.links]
    rtt = path.rtt
    if nbytes == 0:
        return rtt
    remaining = float(nbytes) * 8.0  # bits
    t = start_time + rtt
    elapsed = rtt
    max_iterations = 10_000_000
    for _ in range(max_iterations):
        rate = min(tr.bandwidth_at(t) for tr in traces)
        seg = min(tr.time_to_next_change(t) for tr in traces)
        if rate * seg >= remaining:
            dt = remaining / rate
            return elapsed + dt
        remaining -= rate * seg
        t += seg
        elapsed += seg
    raise RuntimeError("download did not converge")  # pragma: no cover


def _bits_over(traces, start: float, end: float) -> float:
    """Bits a lone flow moves over ``[start, end]`` at the min-hop rate."""
    bits = 0.0
    t = start
    max_iterations = 10_000_000
    for _ in range(max_iterations):
        if t >= end:
            return bits
        rate = min(tr.bandwidth_at(t) for tr in traces)
        seg = min(tr.time_to_next_change(t) for tr in traces)
        step = min(seg, end - t)
        bits += rate * step
        t += step
    raise RuntimeError("integration did not converge")  # pragma: no cover


@dataclass
class _PathFlow:
    flow_id: int
    nbytes: int
    path: NetworkPath
    start_time: float
    data_start: float  # start_time + path RTT + any gate delay
    weight: float
    total_bits: float
    remaining_bits: float
    #: exact elapsed via path_download_time when the flow had every hop to
    #: itself for its whole lifetime (None = shared/progressive)
    solo_elapsed: float | None = field(default=None)
    #: row index in the vector engine's state arrays (-1 = scalar engine)
    slot: int = -1


#: Supported :class:`PathScheduler` event engines.
SCHEDULER_ENGINES = ("vector", "scalar")


class PathScheduler:
    """Event engine for concurrent transfers over a pool of shared links.

    Flows are registered with :meth:`add_flow` on a :class:`NetworkPath`;
    each link allocates its capacity among the flows active *on that
    link* under its own sharing policy, and a flow drains at the minimum
    of its per-hop allocations.  The driver loop is the same contract as
    :class:`SharedLink`: ``next_event`` → ``advance`` until ``busy()``
    turns false.

    ``extra_delay`` on :meth:`add_flow` gates a flow's data start beyond
    the path RTT without changing the elapsed-time origin — the hook the
    CDN layer uses for server-side encode waits (the viewer's measured
    download time includes the wait, as it would on a real service).

    ``engine`` selects the event-step implementation: ``"vector"`` (the
    default) runs each step as array math over all flows at once,
    ``"scalar"`` keeps the per-flow Python loops as the reference oracle.
    Both produce bit-identical :class:`Completion` streams (see module
    docstring); ``delivered_bits`` totals may differ in the last ulps
    because the vector engine accumulates the pool total with ``np.sum``
    and charges per-link bits once per flow as it leaves the pool
    (completion or cancellation) instead of per event step.
    """

    def __init__(self, engine: str = "vector") -> None:
        if engine not in SCHEDULER_ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; pick from {SCHEDULER_ENGINES}"
            )
        self.engine = engine
        self._flows: dict[int, _PathFlow] = {}
        #: per-link flow registries, insertion-ordered like SharedLink's
        self._link_flows: dict[int, dict[int, _PathFlow]] = {}
        self._links: dict[int, SharedLink] = {}
        #: bits actually delivered to receivers (conservation checks)
        self.delivered_bits = 0.0
        if engine == "vector":
            self._vec = _VectorState()

    # ------------------------------------------------------------------
    def add_flow(
        self,
        flow_id: int,
        nbytes: int,
        start_time: float,
        path: NetworkPath,
        weight: float = 1.0,
        extra_delay: float = 0.0,
    ) -> None:
        """Register a transfer of ``nbytes`` requested at ``start_time``."""
        if flow_id in self._flows:
            raise ValueError(f"flow {flow_id} already in flight")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if start_time < 0:
            raise ValueError("start_time must be non-negative")
        if weight <= 0:
            raise ValueError("weight must be positive")
        if extra_delay < 0:
            raise ValueError("extra_delay must be non-negative")
        bits = float(nbytes) * 8.0
        flow = _PathFlow(
            flow_id=flow_id,
            nbytes=nbytes,
            path=path,
            start_time=float(start_time),
            data_start=float(start_time) + path.rtt + float(extra_delay),
            weight=float(weight),
            total_bits=bits,
            remaining_bits=bits,
        )
        if extra_delay > 0.0:
            # A gated flow is never "untouched solo" in the SharedLink
            # sense; forcing the progressive path keeps elapsed exact.
            flow.solo_elapsed = float("nan")
        self._flows[flow_id] = flow
        for link in path.links:
            self._links.setdefault(id(link), link)
            self._link_flows.setdefault(id(link), {})[flow_id] = flow
        if self.engine == "vector":
            self._vec.add(flow)

    @property
    def n_flows(self) -> int:
        return len(self._flows)

    def has_flow(self, flow_id: int) -> bool:
        """True iff ``flow_id`` is currently in flight."""
        return flow_id in self._flows

    def cancel(self, flow_id: int) -> None:
        """Withdraw an in-flight transfer without completing it.

        The fault-injection hook: an edge outage kills every transfer
        riding the dead edge's links mid-flight, and the fleet driver
        re-issues them on the failover path.  Bits already drained stay
        counted in ``delivered_bits`` (they did cross the links); the
        flow simply never reports a :class:`Completion`.  Cancelling at
        an arbitrary instant is safe for the remaining pool: the solo
        fast path only engages for a flow that has drained nothing,
        which after a cancellation can only be a flow still inside its
        RTT/encode gate — alone from here on, its closed form is exact.
        """
        flow = self._flows.get(flow_id)
        if flow is None:
            raise KeyError(f"flow {flow_id} is not in flight")
        self._remove(flow)

    def busy(self) -> bool:
        """True while any transfer is unfinished."""
        return bool(self._flows)

    def sync(self, now: float) -> None:
        """Materialize a solo flow's progress up to ``now``.

        The solo fast path resolves a lone untouched flow's finish in
        closed form and drains nothing until it completes — valid only
        while the pool stays unchanged, the pattern of completion-driven
        drivers.  A driver that injects a flow at any other instant (the
        fleet's deferred CDN requests) must call this first: the solo
        flow's bits moved so far are accounted and it continues
        progressively, instead of silently restarting from its full byte
        count when the newcomer lands.
        """
        solo = self._solo_flow()
        if solo is None or solo.total_bits == 0.0 or now <= solo.data_start:
            return
        traces = [link.trace for link in solo.path.links]
        drained = min(
            _bits_over(traces, solo.data_start, now), solo.remaining_bits
        )
        if drained <= 0.0:
            return
        solo.remaining_bits -= drained
        self.delivered_bits += drained
        solo.solo_elapsed = None
        if self.engine == "vector":
            # Per-link accounting is deferred to ``_remove`` (crossed =
            # total - remaining at removal), which covers this drain.
            self._vec.write_remaining(solo)
        else:
            self._account(solo, drained)

    # ------------------------------------------------------------------
    def _solo_flow(self) -> _PathFlow | None:
        """The lone untouched flow, if the whole pool holds exactly one.

        Mirrors :meth:`SharedLink._solo_flow`: a flow that is alone *now*
        and has drained nothing is guaranteed every hop to itself for its
        entire lifetime (drivers only add flows when one completes), so
        its finish resolves exactly through segment-exact integration.
        """
        if len(self._flows) != 1:
            return None
        flow = next(iter(self._flows.values()))
        if self.engine == "vector" and flow.slot >= 0:
            # The vector engine leaves object-side ``remaining_bits``
            # stale between events (see ``_advance_vector``); refresh the
            # one candidate before the untouched-solo check.
            flow.remaining_bits = float(self._vec.remaining[flow.slot])
        if flow.remaining_bits != flow.total_bits:
            return None
        if flow.solo_elapsed is not None and flow.solo_elapsed != flow.solo_elapsed:
            return None  # NaN sentinel: gated flow, use the fluid path
        return flow

    def _allocations(self, now: float) -> dict[int, tuple[float, float]]:
        """Per-link ``(capacity, share denominator)`` at ``now``.

        Computed once per event step (like :class:`SharedLink` does), so
        per-flow rates are O(hops) after this O(links + flows) pass.
        Links with no active flow are absent.  Share arithmetic delegates
        to the link's own ``_share_denominator``/``_share_of`` (they only
        read ``policy`` and per-flow ``weight``), so one-hop paths are
        float-identical to :class:`SharedLink` by construction.
        """
        alloc: dict[int, tuple[float, float]] = {}
        for link_id, link in self._links.items():
            active = [
                f
                for f in self._link_flows[link_id].values()
                if f.data_start <= now and f.remaining_bits > 0.0
            ]
            if active:
                alloc[link_id] = (
                    link.trace.bandwidth_at(now),
                    link._share_denominator(active),
                )
        return alloc

    def _rate_of(
        self, flow: _PathFlow, alloc: dict[int, tuple[float, float]]
    ) -> float:
        """Min-over-hops allocation for one active flow."""
        rate: float | None = None
        for link in flow.path.links:
            capacity, denom = alloc[id(link)]
            share = link._share_of(flow, capacity, denom)
            rate = share if rate is None else min(rate, share)
        assert rate is not None
        return rate

    def next_event(self, now: float) -> float:
        """Earliest future instant any link's allocation can change."""
        if not self._flows:
            raise RuntimeError("no flows in flight")
        solo = self._solo_flow()
        if solo is not None:
            if solo.solo_elapsed is None:
                solo.solo_elapsed = path_download_time(
                    solo.path, solo.nbytes, solo.start_time
                )
            return solo.start_time + solo.solo_elapsed
        if self.engine == "vector":
            return self._next_event_vector(now)

        events = [f.data_start for f in self._flows.values() if f.data_start > now]
        # Zero-byte transfers complete as soon as their RTT elapses.
        events += [
            max(f.data_start, now)
            for f in self._flows.values()
            if f.remaining_bits <= 0.0
        ]
        alloc = self._allocations(now)
        for link_id in alloc:
            events.append(
                now + self._links[link_id].trace.time_to_next_change(now)
            )
        if alloc:
            for f in self._flows.values():
                if f.data_start <= now and f.remaining_bits > 0.0:
                    events.append(now + f.remaining_bits / self._rate_of(f, alloc))
        return min(events)

    def advance(self, now: float, to_time: float) -> list[Completion]:
        """Drain all flows from ``now`` to ``to_time``; report completions.

        ``to_time`` must not exceed the next event (allocations are
        assumed constant over the interval).  Completions are ordered by
        flow id for determinism, matching :meth:`SharedLink.advance`.
        """
        if to_time < now:
            raise ValueError("cannot advance backwards")
        solo = self._solo_flow()
        if solo is not None and solo.solo_elapsed is not None:
            finish = solo.start_time + solo.solo_elapsed
            if finish <= to_time:
                self.delivered_bits += solo.total_bits
                self._account(solo, solo.total_bits)
                self._remove(solo)
                return [Completion(solo.flow_id, finish, solo.solo_elapsed)]
            return []
        if self.engine == "vector":
            return self._advance_vector(now, to_time)

        dt = to_time - now
        active = [
            f
            for f in self._flows.values()
            if f.data_start <= now and f.remaining_bits > 0.0
        ]
        # Allocations are fixed over [now, to_time]: snapshot every rate
        # before draining, or a flow emptied earlier in this loop would
        # hand its share to later flows mid-interval.
        alloc = self._allocations(now)
        rates = [self._rate_of(f, alloc) for f in active]
        for f, rate in zip(active, rates):
            drained = min(rate * dt, f.remaining_bits)
            f.remaining_bits -= drained
            self.delivered_bits += drained
            self._account(f, drained)
            if f.remaining_bits <= _finish_threshold(f.total_bits):
                self.delivered_bits += f.remaining_bits
                self._account(f, f.remaining_bits)
                f.remaining_bits = 0.0
        done: list[Completion] = []
        for f in sorted(self._flows.values(), key=lambda f: f.flow_id):
            if f.remaining_bits <= 0.0 and f.data_start <= to_time:
                finish = f.data_start if f.total_bits == 0.0 else to_time
                done.append(Completion(f.flow_id, finish, finish - f.start_time))
                self._remove(f)
        return done

    # ------------------------------------------------------------------
    # Vector engine: one array pass per event step.
    def _link_seg(self, li: int, now: float) -> tuple[float, float]:
        """``(bandwidth, time-to-next-change)`` for link ``li`` at ``now``.

        Plain :class:`NetworkTrace` lookups dominate the per-event cost at
        fleet scale (two bisect calls per active link per event), so the
        current segment is cached per link and revalidated with one
        ``fmod`` and two comparisons.  Every returned value reproduces the
        trace methods' float expressions exactly — ``bandwidth_at`` is a
        cached segment constant, ``time_to_next_change`` is the same
        ``nxt - local`` subtraction — so scalar/vector engine parity is
        untouched.  Wrapped traces (e.g. fault-injection
        ``DegradedTrace``) have time-varying composition and fall back to
        the trace methods.
        """
        trace = self._vec.link_list[li].trace
        if type(trace) is not NetworkTrace:
            return trace.bandwidth_at(now), trace.time_to_next_change(now)
        local = now % trace._duration
        seg = self._vec.seg_cache.get(li)
        if seg is None or seg[0] is not trace or not (seg[1] <= local < seg[2]):
            ts = trace._ts_list
            i = bisect_right(ts, local)
            hi = ts[i] if i < len(ts) else trace._duration
            seg = (trace, ts[i - 1], hi, trace._bw_list[i - 1])
            self._vec.seg_cache[li] = seg
        return seg[3], seg[2] - local

    def _vec_alloc(self, now: float):
        """Active slots, their rates, and the active links' event horizon.

        Returns ``(idx, rates, min_ttc)`` where ``min_ttc`` is the
        smallest time-to-next-change over links carrying active flows
        (``inf`` when none) — stashed here because the capacity lookup
        already touches each active link's trace segment, and
        ``min(now + ttc_i) == now + min(ttc_i)`` bit-exactly (adding the
        same ``now`` is monotone), so ``_next_event_vector`` never
        re-queries the traces.  Cached on ``(now, state version)`` so the
        ``next_event`` → ``advance`` pair of one event step computes the
        allocation once.  Every float expression mirrors the scalar
        engine operation for operation: fair denominators are integer
        counts (exact in any summation order), weighted denominators fall
        back to an insertion-order Python sum (NumPy's pairwise reduction
        diverges from ``sum`` at 8+ flows), shares are ``cap / denom`` or
        ``(cap * w) / denom``, and the per-flow rate is an
        order-insensitive min over the hop axis.
        """
        v = self._vec
        key = (now, v.version)
        cached = v.alloc_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        n = v.n_slots
        act = v.alive[:n] & (v.data_start[:n] <= now) & (v.remaining[:n] > 0.0)
        idx = act.nonzero()[0]
        if idx.size == 0:
            out = (idx, _EMPTY, np.inf)
        elif len(v.link_list) == 2:
            # One real link in the pool (the classic single-bottleneck
            # fleet): every active flow shares it, so the whole incidence
            # machinery collapses to one share computation.
            link = v.link_list[1]
            capacity, min_ttc = self._link_seg(1, now)
            if link.policy == "weighted":
                denom = 0.0
                for f in self._link_flows[id(link)].values():
                    if act[f.slot]:
                        denom += f.weight
                rates = capacity * v.weight[idx] / denom
            else:
                rates = np.full(idx.size, capacity / float(idx.size))
            out = (idx, rates, min_ttc)
        else:
            rows = v.hops[idx]
            counts = np.bincount(rows.ravel(), minlength=len(v.link_list))
            denom = counts.astype(np.float64)
            denom[0] = 1.0  # padding sentinel: never a real share
            active_links = (np.nonzero(counts[1:])[0] + 1).tolist()
            cap = np.empty(len(v.link_list))
            cap[0] = np.inf
            min_ttc = np.inf
            for li in active_links:
                cap[li], ttc = self._link_seg(li, now)
                if ttc < min_ttc:
                    min_ttc = ttc
            if v.weighted_links:
                for li in v.weighted_links:
                    if counts[li]:
                        total = 0.0
                        for f in self._link_flows[id(v.link_list[li])].values():
                            if act[f.slot]:
                                total += f.weight
                        denom[li] = total
                numer = np.where(
                    v.is_weighted[rows],
                    cap[rows] * v.weight[idx][:, None],
                    cap[rows],
                )
            else:
                numer = cap[rows]
            rates = (numer / denom[rows]).min(axis=1)
            out = (idx, rates, min_ttc)
        v.alloc_cache = (key, out)
        return out

    def _next_event_vector(self, now: float) -> float:
        v = self._vec
        n = v.n_slots
        ds = v.data_start[:n]
        alive = v.alive[:n]
        best = np.inf
        waiting = ds[alive & (ds > now)]
        if waiting.size:
            best = waiting.min()
        # Already-empty flows (zero-byte transfers, sync-drained solos)
        # complete as soon as their data start elapses.
        for f in v.finished:
            best = min(best, max(f.data_start, now))
        idx, rates, min_ttc = self._vec_alloc(now)
        if min_ttc < np.inf:
            best = min(best, now + min_ttc)
        if idx.size:
            best = min(best, (now + v.remaining[idx] / rates).min())
        return float(best)

    def _advance_vector(self, now: float, to_time: float) -> list[Completion]:
        v = self._vec
        idx, rates, _ = self._vec_alloc(now)
        finished: list[_PathFlow] = []
        if idx.size:
            dt = to_time - now
            cur = v.remaining[idx]
            drained = np.minimum(rates * dt, cur)
            after = cur - drained
            flush = after <= v.thresh[idx]
            total_bits = float(drained.sum())
            # Flow objects are NOT mirrored here: per-link delivered-bits
            # accounting and the object-side ``remaining_bits`` are
            # materialized lazily — per link when a flow leaves the pool
            # (``_remove``), per object in ``_solo_flow``/``sync``.  The
            # old per-event mirror loop was O(active flows) of Python per
            # event step and dominated large-fleet wall time.
            if flush.any():
                total_bits += float(after[flush].sum())
                after[flush] = 0.0
                flow_of = v.flow_of
                for s in idx[flush].tolist():
                    f = flow_of[s]
                    f.remaining_bits = 0.0
                    finished.append(f)
            self.delivered_bits += total_bits
            v.remaining[idx] = after
            v.version += 1
        # Flows can complete two ways: drained to zero above, or already
        # empty (zero-byte transfers, sync-drained solos) once their
        # data_start has elapsed.
        if v.finished:
            finished.extend(
                f for f in v.finished if f.data_start <= to_time
            )
        if not finished:
            return []
        finished.sort(key=lambda f: f.flow_id)
        done: list[Completion] = []
        for f in finished:
            finish = f.data_start if f.total_bits == 0.0 else to_time
            done.append(Completion(f.flow_id, finish, finish - f.start_time))
            self._remove(f)
        return done

    # ------------------------------------------------------------------
    def _account(self, flow: _PathFlow, bits: float) -> None:
        """Charge ``bits`` to every hop the flow traverses (series)."""
        if bits == 0.0:
            return
        for link in flow.path.links:
            link.delivered_bits += bits

    def _remove(self, flow: _PathFlow) -> None:
        if self.engine == "vector" and flow.slot >= 0:
            # Deferred per-link accounting: everything the flow drained
            # over its lifetime crosses each hop exactly once, charged as
            # it leaves the pool (completion or cancellation).  The solo
            # fast path accounts explicitly before removing, but such a
            # flow is untouched (remaining == total), so its crossed
            # bits here are zero — no double counting.
            rem = float(self._vec.remaining[flow.slot])
            flow.remaining_bits = rem
            crossed = flow.total_bits - rem
            if crossed > 0.0:
                for link in flow.path.links:
                    link.delivered_bits += crossed
        del self._flows[flow.flow_id]
        for link in flow.path.links:
            del self._link_flows[id(link)][flow.flow_id]
        if self.engine == "vector":
            self._vec.remove(flow)


_EMPTY = np.empty(0)


class _VectorState:
    """Slot-indexed array state behind the vector engine.

    Each in-flight flow owns one row across a set of parallel arrays plus
    one row of the ``hops`` matrix, whose entries are indices into
    ``link_list`` (index 0 is a padding sentinel for paths shorter than
    the matrix width).  Slots are recycled through a free list, so a
    steady-state fleet allocates nothing per event; arrays double when
    the high-water mark is hit.
    """

    _INITIAL_SLOTS = 64

    def __init__(self) -> None:
        cap = self._INITIAL_SLOTS
        self.n_slots = 0  # high-water mark
        self.free: list[int] = []
        self.flow_of: list[_PathFlow | None] = [None] * cap
        self.data_start = np.zeros(cap)
        self.remaining = np.zeros(cap)
        self.total = np.zeros(cap)
        self.weight = np.zeros(cap)
        #: per-flow finish threshold, precomputed at add time (the value
        #: ``max(_FINISH_RTOL * total, _FINISH_ATOL)`` the scalar engine
        #: derives per event)
        self.thresh = np.zeros(cap)
        self.alive = np.zeros(cap, dtype=bool)
        self.hops = np.zeros((cap, 2), dtype=np.intp)
        #: index 0 reserved as the padding sentinel
        self.link_list: list[SharedLink | None] = [None]
        self.link_index: dict[int, int] = {}
        self.weighted_links: list[int] = []
        self.is_weighted = np.zeros(1, dtype=bool)
        #: flows already at zero remaining bits that still await their
        #: completion report: zero-byte transfers (complete at their
        #: data_start) and solo flows fully drained by an out-of-band
        #: ``sync`` — neither shows up in the active-drain pass.
        self.finished: list[_PathFlow] = []
        #: bumped on any state change; keys the allocation cache
        self.version = 0
        self.alloc_cache: tuple | None = None
        #: per-link current trace segment, ``li -> (trace, lo, hi, bw)``
        #: in trace-local time; revalidated by ``_link_seg``
        self.seg_cache: dict[int, tuple] = {}

    def add(self, flow: _PathFlow) -> None:
        links = flow.path.links
        grew_links = False
        for link in links:
            if id(link) not in self.link_index:
                li = len(self.link_list)
                self.link_index[id(link)] = li
                self.link_list.append(link)
                if link.policy == "weighted":
                    self.weighted_links.append(li)
                grew_links = True
        if grew_links:
            self.is_weighted = np.array(
                [l is not None and l.policy == "weighted" for l in self.link_list]
            )
        if self.free:
            s = self.free.pop()
        else:
            if self.n_slots == len(self.alive):
                self._grow_rows()
            s = self.n_slots
            self.n_slots += 1
        if len(links) > self.hops.shape[1]:
            self._grow_cols(len(links))
        flow.slot = s
        self.flow_of[s] = flow
        self.data_start[s] = flow.data_start
        self.remaining[s] = flow.remaining_bits
        self.total[s] = flow.total_bits
        self.weight[s] = flow.weight
        self.thresh[s] = max(_FINISH_RTOL * flow.total_bits, _FINISH_ATOL)
        row = self.hops[s]
        row[:] = 0
        for j, link in enumerate(links):
            row[j] = self.link_index[id(link)]
        self.alive[s] = True
        if flow.total_bits == 0.0:
            self.finished.append(flow)
        self.version += 1

    def remove(self, flow: _PathFlow) -> None:
        s = flow.slot
        self.alive[s] = False
        self.flow_of[s] = None
        self.free.append(s)
        flow.slot = -1
        if flow in self.finished:
            self.finished.remove(flow)
        self.version += 1

    def write_remaining(self, flow: _PathFlow) -> None:
        """Mirror an out-of-band drain (``sync``) into the arrays.

        A sync that empties the flow entirely (a deferred request landing
        exactly on the solo finish) must also queue it for completion:
        with zero remaining bits it is invisible to the active-drain
        pass, and the scalar engine's full-pool scan has no vector
        equivalent.
        """
        self.remaining[flow.slot] = flow.remaining_bits
        if flow.remaining_bits <= 0.0 and flow not in self.finished:
            self.finished.append(flow)
        self.version += 1

    def _grow_rows(self) -> None:
        def doubled(a: np.ndarray) -> np.ndarray:
            out = np.zeros((len(a) * 2,) + a.shape[1:], dtype=a.dtype)
            out[: len(a)] = a
            return out

        self.data_start = doubled(self.data_start)
        self.remaining = doubled(self.remaining)
        self.total = doubled(self.total)
        self.weight = doubled(self.weight)
        self.thresh = doubled(self.thresh)
        self.alive = doubled(self.alive)
        self.hops = doubled(self.hops)
        self.flow_of.extend([None] * (len(self.alive) - len(self.flow_of)))

    def _grow_cols(self, n_hops: int) -> None:
        wide = np.zeros((len(self.hops), n_hops), dtype=self.hops.dtype)
        wide[:, : self.hops.shape[1]] = self.hops
        self.hops = wide
