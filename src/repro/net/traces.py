"""Bandwidth traces (paper §7.1 network conditions).

Two families:

* **stable** wired links at 50/75/100 Mbps with ~10 ms RTT;
* **synthetic LTE** traces matched to the paper's reported statistics —
  average bandwidth 32.5–176.5 Mbps with standard deviations 13.5–26.8
  Mbps — generated as a mean-reverting AR(1) process with occasional deep
  fades, which captures the burstiness MPC-style ABRs are sensitive to.

A trace is a step function of time: ``bandwidth_at(t)`` returns the link
rate in bits per second.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

__all__ = [
    "NetworkTrace",
    "stable_trace",
    "lte_trace",
    "read_trace_csv",
    "write_trace_csv",
    "PAPER_LTE_PROFILES",
]

MBPS = 1e6

#: (average Mbps, std-dev Mbps) pairs spanning the paper's LTE trace set.
PAPER_LTE_PROFILES: tuple[tuple[float, float], ...] = (
    (32.5, 13.5),
    (75.0, 20.0),
    (120.0, 24.0),
    (176.5, 26.8),
)


@dataclass
class NetworkTrace:
    """A piecewise-constant bandwidth schedule.

    ``timestamps`` are segment start times (seconds, strictly increasing,
    starting at 0); ``bandwidths_bps`` the link rate within each segment.
    Time past the last segment wraps around (traces loop, as in the
    paper's long-video experiments).
    """

    name: str
    timestamps: np.ndarray
    bandwidths_bps: np.ndarray
    rtt: float = 0.010

    def __post_init__(self) -> None:
        self.timestamps = np.asarray(self.timestamps, dtype=np.float64)
        self.bandwidths_bps = np.asarray(self.bandwidths_bps, dtype=np.float64)
        if len(self.timestamps) != len(self.bandwidths_bps):
            raise ValueError("timestamps and bandwidths must align")
        if len(self.timestamps) == 0:
            raise ValueError("trace must have at least one segment")
        if self.timestamps[0] != 0.0:
            raise ValueError("trace must start at t=0")
        if np.any(np.diff(self.timestamps) <= 0):
            raise ValueError("timestamps must be strictly increasing")
        if np.any(self.bandwidths_bps <= 0):
            raise ValueError("bandwidths must be positive")
        if self.rtt < 0:
            raise ValueError("rtt must be non-negative")
        # The event schedulers call bandwidth_at / time_to_next_change once
        # per link per event step — millions of times in a large fleet.
        # Traces are immutable after construction, so the duration and
        # plain-list views are computed once here and the lookups below run
        # on bisect instead of array machinery.  Values are bit-identical
        # (tolist() preserves float64 exactly).
        if len(self.timestamps) == 1:
            self._duration = float(self.timestamps[0] + 1.0)
        else:
            seg = float(np.median(np.diff(self.timestamps)))
            self._duration = float(self.timestamps[-1] + seg)
        self._ts_list: list[float] = self.timestamps.tolist()
        self._bw_list: list[float] = self.bandwidths_bps.tolist()

    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        """Nominal trace length: last segment start + median segment width."""
        return self._duration

    def bandwidth_at(self, t: float) -> float:
        """Link rate (bps) at absolute time ``t`` (loops past the end)."""
        if t < 0:
            raise ValueError("time must be non-negative")
        t = t % self._duration
        return self._bw_list[bisect_right(self._ts_list, t) - 1]

    def time_to_next_change(self, t: float) -> float:
        """Seconds from ``t`` to the next segment boundary (loop-aware)."""
        if t < 0:
            raise ValueError("time must be non-negative")
        local = t % self._duration
        i = bisect_right(self._ts_list, local)
        nxt = self._ts_list[i] if i < len(self._ts_list) else self._duration
        return nxt - local

    def mean_bandwidth(self) -> float:
        """Time-weighted mean rate over one loop (bps)."""
        widths = np.diff(np.r_[self.timestamps, self.duration])
        return float(np.average(self.bandwidths_bps, weights=widths))

    def std_bandwidth(self) -> float:
        """Time-weighted std-dev over one loop (bps)."""
        widths = np.diff(np.r_[self.timestamps, self.duration])
        mean = np.average(self.bandwidths_bps, weights=widths)
        var = np.average((self.bandwidths_bps - mean) ** 2, weights=widths)
        return float(np.sqrt(var))


def stable_trace(mbps: float, duration: float = 600.0, rtt: float = 0.010) -> NetworkTrace:
    """A constant-rate wired link (50/75/100 Mbps in the paper)."""
    if mbps <= 0:
        raise ValueError("rate must be positive")
    return NetworkTrace(
        name=f"stable-{mbps:g}mbps",
        timestamps=np.array([0.0, duration / 2]),
        bandwidths_bps=np.array([mbps * MBPS, mbps * MBPS]),
        rtt=rtt,
    )


def lte_trace(
    mean_mbps: float = 32.5,
    std_mbps: float = 13.5,
    duration: float = 600.0,
    step: float = 1.0,
    fade_prob: float = 0.02,
    rtt: float = 0.040,
    seed: int = 0,
) -> NetworkTrace:
    """Synthetic LTE trace with the paper's first/second moments.

    AR(1) mean reversion (φ=0.9) plus exponential deep fades at
    ``fade_prob`` per step, floored at 1 Mbps.  The realized sample mean
    and std land near the requested values; exact trace shapes do not
    matter — the ABR reacts to the statistics.
    """
    if mean_mbps <= 0 or std_mbps < 0:
        raise ValueError("mean must be positive, std non-negative")
    rng = np.random.default_rng(seed)
    n = max(2, int(duration / step))
    phi = 0.9
    innovation = std_mbps * np.sqrt(1 - phi ** 2)
    bw = np.empty(n)
    bw[0] = mean_mbps
    for i in range(1, n):
        bw[i] = mean_mbps + phi * (bw[i - 1] - mean_mbps) + rng.normal(0, innovation)
    fades = rng.random(n) < fade_prob
    bw[fades] *= rng.uniform(0.2, 0.5, fades.sum())
    np.maximum(bw, 1.0, out=bw)
    return NetworkTrace(
        name=f"lte-{mean_mbps:g}mbps",
        timestamps=np.arange(n) * step,
        bandwidths_bps=bw * MBPS,
        rtt=rtt,
    )


def write_trace_csv(trace: NetworkTrace, path) -> None:
    """Persist a trace as ``timestamp_s,bandwidth_mbps`` CSV rows.

    The format matches common public LTE trace releases so externally
    captured traces drop in without conversion.
    """
    with open(path, "w") as fh:
        fh.write("# timestamp_s,bandwidth_mbps\n")
        for t, bw in zip(trace.timestamps, trace.bandwidths_bps):
            fh.write(f"{t:.3f},{bw / MBPS:.6f}\n")


def read_trace_csv(path, name: str | None = None, rtt: float = 0.040) -> NetworkTrace:
    """Load a ``timestamp_s,bandwidth_mbps`` CSV trace.

    Lines starting with ``#`` are comments.  Timestamps must start at 0 and
    increase strictly; bandwidths are megabits per second.
    """
    times, bws = [], []
    with open(path) as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(",")
            if len(parts) != 2:
                raise ValueError(f"{path}:{lineno}: expected 'time,mbps', got {line!r}")
            times.append(float(parts[0]))
            bws.append(float(parts[1]) * MBPS)
    if not times:
        raise ValueError(f"{path}: no trace rows found")
    import os

    trace_name = name or os.path.splitext(os.path.basename(str(path)))[0]
    return NetworkTrace(
        name=trace_name,
        timestamps=np.asarray(times),
        bandwidths_bps=np.asarray(bws),
        rtt=rtt,
    )
