"""Network substrate: traces, links, multi-hop paths, throughput estimation."""

from .estimator import HarmonicMeanEstimator
from .link import SHARING_POLICIES, Completion, Link, SharedLink
from .topology import (
    SCHEDULER_ENGINES,
    NetworkPath,
    PathScheduler,
    path_download_time,
)
from .traces import (
    MBPS,
    PAPER_LTE_PROFILES,
    NetworkTrace,
    lte_trace,
    read_trace_csv,
    stable_trace,
    write_trace_csv,
)

__all__ = [
    "NetworkTrace",
    "stable_trace",
    "lte_trace",
    "read_trace_csv",
    "write_trace_csv",
    "PAPER_LTE_PROFILES",
    "MBPS",
    "Link",
    "SharedLink",
    "Completion",
    "SHARING_POLICIES",
    "NetworkPath",
    "PathScheduler",
    "SCHEDULER_ENGINES",
    "path_download_time",
    "HarmonicMeanEstimator",
]
