"""Device profiles and the operation-count latency model.

The paper reports absolute FPS on two clients — a desktop with an RTX
3080Ti and an Orange Pi 5 (RK3588S, comparable to a Meta Quest 3).  Neither
is available here, so absolute latencies are *modeled*: each pipeline
stage's cost is counted in abstract operations (a function of input size,
upsampling ratio, and algorithm — these counts are the honest part, derived
from the implementations in :mod:`repro.sr`), and a
:class:`DeviceProfile` converts operations to seconds via a calibrated
effective rate.

What this preserves from the paper:

* *who wins and why* — VoLUT does one pruned kNN pass and O(1) lookups;
  vanilla does a quadratic search; YuZu pays per-point network MACs;
  GradPU multiplies both by its iteration count.  Those structural ratios
  come from the op counts, not the calibration;
* *latency flat in the upsampling ratio* — VoLUT's cost is dominated by the
  kNN over *input* points (Fig. 18's observation), which the counts show;
* plausible absolute magnitudes per device (the calibrated part; see
  EXPERIMENTS.md for paper-vs-modeled numbers).

``candidate_fraction`` captures how aggressively the spatial index prunes
on each platform: the two-layer octree searches roughly the 27 cells around
the query out of 64 on CPU (ring-1 of a 4×4×4 grid), while the massively
parallel GPU client (cuKDTree) prunes deeper — matching the paper's
observation that the interpolation speed-up is larger on GPU (7.5–8.1×)
than on the Orange Pi (3.7–3.9×).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "DeviceProfile",
    "ORANGE_PI",
    "DESKTOP_GPU",
    "DESKTOP_CPU",
    "PROFILES",
    "CostModel",
]


@dataclass(frozen=True)
class DeviceProfile:
    """Converts abstract operation counts into seconds.

    Attributes
    ----------
    ops_per_second:
        Effective sustained rate for the vectorizable point/neighbor math.
    macs_per_second:
        Effective rate for dense network inference (GPUs run GEMMs far
        above their scattered-memory rate; embedded CPUs do not).
    candidate_fraction:
        Fraction of the cloud examined per pruned (octree) kNN query.
    """

    name: str
    ops_per_second: float
    macs_per_second: float
    candidate_fraction: float

    def __post_init__(self) -> None:
        if self.ops_per_second <= 0 or self.macs_per_second <= 0:
            raise ValueError("rates must be positive")
        if not 0.0 < self.candidate_fraction <= 1.0:
            raise ValueError("candidate_fraction must be in (0, 1]")

    def seconds(self, ops: float, macs: float = 0.0) -> float:
        """Wall-clock estimate for a workload of (ops, macs)."""
        if ops < 0 or macs < 0:
            raise ValueError("work amounts must be non-negative")
        return ops / self.ops_per_second + macs / self.macs_per_second


#: RK3588S-class embedded board (≈ Meta Quest 3 XR2 compute).
ORANGE_PI = DeviceProfile(
    name="orange-pi",
    ops_per_second=2.0e9,
    macs_per_second=8.0e9,
    candidate_fraction=0.26,
)

#: RTX 3080Ti-class desktop GPU client (CUDA kernels + cuKDTree).
DESKTOP_GPU = DeviceProfile(
    name="desktop-gpu",
    ops_per_second=1.8e11,
    macs_per_second=4.0e12,
    candidate_fraction=0.125,
)

#: i9-class desktop CPU (the C++ client without CUDA).
DESKTOP_CPU = DeviceProfile(
    name="desktop-cpu",
    ops_per_second=1.5e10,
    macs_per_second=6.0e10,
    candidate_fraction=0.26,
)

PROFILES = {p.name: p for p in (ORANGE_PI, DESKTOP_GPU, DESKTOP_CPU)}


class CostModel:
    """Operation counts for each SR pipeline variant.

    All counts are per frame.  ``n_in`` is the input (downsampled) point
    count; ``ratio`` the upsampling ratio; ``m = (ratio-1)·n_in`` the number
    of generated points.

    The constants (ops per candidate, per midpoint, per lookup) are small
    integers reflecting the actual arithmetic in :mod:`repro.sr`:
    a distance evaluation is ~8 flops, a midpoint ~6, a table probe ~64
    (key pack + binary search), etc.
    """

    OPS_PER_CANDIDATE = 1.6      # one SIMD-pipelined distance + compare
    OPS_PER_MIDPOINT = 6.0       # average + writeback
    OPS_PER_COLOR = 4.0          # parent compare + copy
    OPS_PER_LOOKUP = 40.0        # quantize, pack, binary search
    OPS_PER_REUSE = 40.0         # merge-and-prune over ~10 candidates
    OPS_PER_ENCODE = 20.0        # Eq.3/Eq.4 for one neighborhood

    # ------------------------------------------------------------------
    @staticmethod
    def new_points(n_in: int, ratio: float) -> int:
        return int(round(max(0.0, ratio - 1.0) * n_in))

    # ------------------------------------------------------------------
    @classmethod
    def knn_ops(cls, n_queries: int, n_points: int, candidate_fraction: float) -> float:
        """One kNN pass of ``n_queries`` against ``n_points``."""
        cand = max(1.0, candidate_fraction * n_points)
        return n_queries * cand * cls.OPS_PER_CANDIDATE

    # ------------------------------------------------------------------
    @classmethod
    def volut_frame(
        cls, n_in: int, ratio: float, profile: DeviceProfile
    ) -> dict[str, float]:
        """VoLUT client: one pruned kNN pass + reuse + LUT lookups.

        Returns per-stage seconds (keys match
        :class:`repro.sr.pipeline.StageTimes`).
        """
        m = cls.new_points(n_in, ratio)
        knn = cls.knn_ops(n_in, n_in, profile.candidate_fraction)
        interp = m * cls.OPS_PER_MIDPOINT
        color = m * cls.OPS_PER_COLOR
        refine = m * (cls.OPS_PER_REUSE + cls.OPS_PER_ENCODE + cls.OPS_PER_LOOKUP)
        return {
            "knn": profile.seconds(knn),
            "interpolation": profile.seconds(interp),
            "colorization": profile.seconds(color),
            "refinement": profile.seconds(refine),
        }

    @classmethod
    def vanilla_frame(
        cls, n_in: int, ratio: float, profile: DeviceProfile
    ) -> dict[str, float]:
        """Naive client: brute-force kNN, fresh searches per stage."""
        m = cls.new_points(n_in, ratio)
        knn = cls.knn_ops(n_in, n_in, 1.0)          # interpolation search
        knn += cls.knn_ops(m, n_in, 1.0)            # colorization search
        interp = m * cls.OPS_PER_MIDPOINT
        color = m * cls.OPS_PER_COLOR
        return {
            "knn": profile.seconds(knn),
            "interpolation": profile.seconds(interp),
            "colorization": profile.seconds(color),
            "refinement": 0.0,
        }

    @classmethod
    def yuzu_frame(
        cls,
        n_in: int,
        ratio: float,
        profile: DeviceProfile,
        macs_per_point: float = 1.1e6,
    ) -> dict[str, float]:
        """YuZu client: pruned kNN + heavy network inference.

        YuZu reaches large ratios by *factorizing* them into 2×/3× model
        stages (its options are 1x2, 2x2, 1x3, ...), so the points pushed
        through the network total ``n_in · 2(ratio−1)`` (a geometric
        cascade: 2n + 4n + ... = 2(r−1)n).  ``macs_per_point`` defaults to
        ~1.1e6, the order of YuZu's sparse 3-D conv models per processed
        point after its engine optimizations (our stand-in direct-SR MLP in
        :mod:`repro.sr.yuzu` is ~1.4e5 MACs/point — the real model family
        is heavier by about a decade).  Net effect, as the paper observes:
        lower fetch densities mean *more* SR workload, which is exactly
        when YuZu's inference throughput falls below line rate.
        """
        stages = {}
        knn = cls.knn_ops(n_in, n_in, profile.candidate_fraction)
        stages["knn"] = profile.seconds(knn)
        stages["interpolation"] = 0.0
        stages["colorization"] = profile.seconds(
            cls.new_points(n_in, ratio) * cls.OPS_PER_COLOR
        )
        processed = n_in * 2.0 * max(ratio - 1.0, 0.0)
        stages["refinement"] = profile.seconds(
            n_in * cls.OPS_PER_ENCODE, macs=processed * macs_per_point
        )
        return stages

    @classmethod
    def gradpu_frame(
        cls,
        n_in: int,
        ratio: float,
        profile: DeviceProfile,
        n_steps: int = 60,
        macs_per_point: float = 1.7e8,
    ) -> dict[str, float]:
        """GradPU: per-step neighborhood re-gather + network inference.

        GradPU runs tens of gradient-descent iterations against a learned
        distance field (``macs_per_point`` per evaluation is far above the
        distilled MLP's — the paper measures it 46,400× slower than VoLUT
        on GPU).
        """
        m = cls.new_points(n_in, ratio)
        knn = cls.knn_ops(n_in, n_in, profile.candidate_fraction)
        step_knn = cls.knn_ops(m, n_in, profile.candidate_fraction)
        stages = {
            "knn": profile.seconds(knn),
            "interpolation": profile.seconds(m * cls.OPS_PER_MIDPOINT),
            "colorization": profile.seconds(m * cls.OPS_PER_COLOR),
            "refinement": profile.seconds(
                n_steps * (step_knn + m * cls.OPS_PER_ENCODE),
                macs=n_steps * m * macs_per_point,
            ),
        }
        return stages

    # ------------------------------------------------------------------
    @classmethod
    def frame_seconds(
        cls, system: str, n_in: int, ratio: float, profile: DeviceProfile
    ) -> float:
        """Total per-frame SR latency for a named system."""
        fn = {
            "volut": cls.volut_frame,
            "vanilla": cls.vanilla_frame,
            "yuzu": cls.yuzu_frame,
            "gradpu": cls.gradpu_frame,
        }.get(system)
        if fn is None:
            raise ValueError(f"unknown system {system!r}")
        return sum(fn(n_in, ratio, profile).values())
