"""Loss functions (value + gradient pairs)."""

from __future__ import annotations

import numpy as np

__all__ = ["mse_loss", "l1_loss", "offset_loss"]


def mse_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error over all elements; returns (loss, dL/dpred)."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    diff = pred - target
    loss = float(np.mean(diff ** 2))
    grad = (2.0 / diff.size) * diff
    return loss, grad


def l1_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean absolute error; returns (loss, dL/dpred)."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    diff = pred - target
    loss = float(np.mean(np.abs(diff)))
    grad = np.sign(diff) / diff.size
    return loss, grad


def offset_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean Euclidean displacement (paper Eq. 9).

    The refinement objective is the mean L2 distance between refined points
    and their ground-truth counterparts; with ``pred`` being the predicted
    offset and ``target`` the true offset, this is ``mean ||pred - target||``
    per point (rows).
    """
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    diff = pred - target
    norms = np.linalg.norm(diff, axis=-1)
    loss = float(np.mean(norms))
    safe = np.maximum(norms, 1e-12)
    grad = diff / (safe[..., None] * norms.size)
    return loss, grad
