"""Mini-batch training loop for the NumPy MLP."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from .loss import mse_loss
from .mlp import MLP
from .optim import Adam

__all__ = ["TrainConfig", "TrainResult", "Trainer"]

LossFn = Callable[[np.ndarray, np.ndarray], tuple[float, np.ndarray]]


@dataclass
class TrainConfig:
    """Hyper-parameters for :class:`Trainer`.

    ``noise_sigma`` implements the paper's Gaussian-noise injection
    (σ = 0.02, §4.2.2): inputs are perturbed during training so the learned
    function is robust to LUT quantization error.
    """

    epochs: int = 50
    batch_size: int = 256
    lr: float = 1e-3
    noise_sigma: float = 0.0
    shuffle: bool = True
    seed: int = 0
    log_every: int = 0  # 0 = silent
    log_fn: Callable[[str], None] = print  # sink for log_every lines


@dataclass
class TrainResult:
    """Loss trajectory of one training run."""

    epoch_losses: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.epoch_losses:
            raise ValueError("no epochs were run")
        return self.epoch_losses[-1]


class Trainer:
    """Trains an :class:`MLP` on an in-memory (X, Y) dataset with Adam."""

    def __init__(self, model: MLP, config: TrainConfig | None = None,
                 loss_fn: LossFn = mse_loss):
        self.model = model
        self.config = config or TrainConfig()
        self.loss_fn = loss_fn
        self.optimizer = Adam(model.params(), model.grads(), lr=self.config.lr)

    def fit(self, X: np.ndarray, Y: np.ndarray) -> TrainResult:
        X = np.asarray(X, dtype=np.float64)
        Y = np.asarray(Y, dtype=np.float64)
        if len(X) != len(Y):
            raise ValueError("X and Y must have the same number of rows")
        if len(X) == 0:
            raise ValueError("empty training set")
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        result = TrainResult()
        n = len(X)
        for epoch in range(cfg.epochs):
            order = rng.permutation(n) if cfg.shuffle else np.arange(n)
            total, seen = 0.0, 0
            for start in range(0, n, cfg.batch_size):
                idx = order[start : start + cfg.batch_size]
                xb = X[idx]
                if cfg.noise_sigma > 0:
                    xb = xb + rng.normal(0.0, cfg.noise_sigma, xb.shape)
                yb = Y[idx]
                pred = self.model.forward(xb)
                loss, grad = self.loss_fn(pred, yb)
                self.model.zero_grad()
                self.model.backward(grad)
                self.optimizer.step()
                total += loss * len(idx)
                seen += len(idx)
            epoch_loss = total / seen
            result.epoch_losses.append(epoch_loss)
            if cfg.log_every and (epoch + 1) % cfg.log_every == 0:
                cfg.log_fn(f"epoch {epoch + 1:4d}  loss {epoch_loss:.6f}")
        return result
