"""Minimal neural-network layers with manual backprop.

The environment has no PyTorch, so the GradPU-style refinement network is
implemented directly in NumPy.  The scope is deliberately small: dense
layers and smooth activations are all the refinement MLP needs, and every
layer implements the same ``forward``/``backward`` contract so they compose
into :class:`repro.nn.mlp.MLP`.

Shapes follow the (batch, features) convention throughout.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Layer", "Linear", "ReLU", "Tanh", "LeakyReLU"]


class Layer:
    """Base class: a differentiable map with cached forward state."""

    #: list of (param, grad) array pairs, filled by subclasses
    def params(self) -> list[np.ndarray]:
        return []

    def grads(self) -> list[np.ndarray]:
        return []

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Given dL/d(output), accumulate parameter grads, return dL/d(input)."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        for g in self.grads():
            g[...] = 0.0


class Linear(Layer):
    """Affine layer ``y = x W + b`` with He/Xavier-style init."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator | None = None):
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError("layer dimensions must be positive")
        g = rng if rng is not None else np.random.default_rng()
        scale = np.sqrt(2.0 / (in_dim + out_dim))
        self.W = g.normal(0.0, scale, (in_dim, out_dim))
        self.b = np.zeros(out_dim)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._x: np.ndarray | None = None

    def params(self) -> list[np.ndarray]:
        return [self.W, self.b]

    def grads(self) -> list[np.ndarray]:
        return [self.dW, self.db]

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.W + self.b

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.dW += self._x.T @ grad_out
        self.db += grad_out.sum(axis=0)
        return grad_out @ self.W.T


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._mask


class LeakyReLU(Layer):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, alpha: float = 0.01) -> None:
        self.alpha = float(alpha)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.alpha * x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_out, self.alpha * grad_out)


class Tanh(Layer):
    """Hyperbolic-tangent activation.

    Used as the output squashing of the refinement net: offsets live in a
    normalized unit-cube frame, so bounding the prediction to (-1, 1) keeps
    the LUT's value range compatible with float16 storage.
    """

    def __init__(self) -> None:
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return grad_out * (1.0 - self._y ** 2)
