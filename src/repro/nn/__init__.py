"""From-scratch NumPy neural-network substrate (no PyTorch available)."""

from .layers import Layer, LeakyReLU, Linear, ReLU, Tanh
from .loss import l1_loss, mse_loss, offset_loss
from .mlp import MLP
from .optim import SGD, Adam, Optimizer
from .trainer import TrainConfig, Trainer, TrainResult

__all__ = [
    "Layer",
    "Linear",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "MLP",
    "mse_loss",
    "l1_loss",
    "offset_loss",
    "Optimizer",
    "SGD",
    "Adam",
    "Trainer",
    "TrainConfig",
    "TrainResult",
]
