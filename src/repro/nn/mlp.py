"""Multi-layer perceptron composed from :mod:`repro.nn.layers`."""

from __future__ import annotations

import numpy as np

from .layers import Layer, LeakyReLU, Linear, ReLU, Tanh

__all__ = ["MLP"]

_ACTIVATIONS = {"relu": ReLU, "leaky_relu": LeakyReLU, "tanh": Tanh}


class MLP:
    """A dense feed-forward network.

    Parameters
    ----------
    dims:
        Layer widths including input and output, e.g. ``(12, 64, 64, 3)``.
    activation:
        Hidden activation name: ``relu``, ``leaky_relu``, or ``tanh``.
    output_activation:
        Optional activation after the last linear layer (the refinement
        net uses ``tanh`` to bound offsets).
    seed:
        Seed for weight initialization (reproducible training).
    """

    def __init__(
        self,
        dims: tuple[int, ...],
        activation: str = "relu",
        output_activation: str | None = "tanh",
        seed: int | None = 0,
    ):
        if len(dims) < 2:
            raise ValueError("dims needs at least an input and output width")
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        if output_activation is not None and output_activation not in _ACTIVATIONS:
            raise ValueError(f"unknown output activation {output_activation!r}")
        rng = np.random.default_rng(seed)
        self.dims = tuple(int(d) for d in dims)
        self.layers: list[Layer] = []
        for i in range(len(dims) - 1):
            self.layers.append(Linear(dims[i], dims[i + 1], rng))
            if i < len(dims) - 2:
                self.layers.append(_ACTIVATIONS[activation]())
        if output_activation is not None:
            self.layers.append(_ACTIVATIONS[output_activation]())

    # ------------------------------------------------------------------
    @property
    def in_dim(self) -> int:
        return self.dims[0]

    @property
    def out_dim(self) -> int:
        return self.dims[-1]

    def params(self) -> list[np.ndarray]:
        out: list[np.ndarray] = []
        for layer in self.layers:
            out.extend(layer.params())
        return out

    def grads(self) -> list[np.ndarray]:
        out: list[np.ndarray] = []
        for layer in self.layers:
            out.extend(layer.grads())
        return out

    def n_parameters(self) -> int:
        """Total scalar parameter count (used by the memory accounting)."""
        return int(sum(p.size for p in self.params()))

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[None, :]
        if x.shape[1] != self.in_dim:
            raise ValueError(f"expected input dim {self.in_dim}, got {x.shape[1]}")
        for layer in self.layers:
            x = layer.forward(x)
        return x[0] if squeeze else x

    __call__ = forward

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        g = np.asarray(grad_out, dtype=np.float64)
        for layer in reversed(self.layers):
            g = layer.backward(g)
        return g

    # ------------------------------------------------------------------
    # Serialization (LUTs are built offline; nets must round-trip to disk).
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {f"p{i}": p.copy() for i, p in enumerate(self.params())}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = self.params()
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} arrays, model has {len(params)}"
            )
        for i, p in enumerate(params):
            src = state[f"p{i}"]
            if src.shape != p.shape:
                raise ValueError(f"shape mismatch at p{i}: {src.shape} vs {p.shape}")
            p[...] = src

    def save(self, path) -> None:
        np.savez_compressed(path, dims=np.array(self.dims), **self.state_dict())

    @classmethod
    def load(cls, path, activation: str = "relu", output_activation: str | None = "tanh") -> "MLP":
        with np.load(path) as data:
            dims = tuple(int(d) for d in data["dims"])
            model = cls(dims, activation=activation, output_activation=output_activation)
            model.load_state_dict({k: data[k] for k in data.files if k != "dims"})
        return model
