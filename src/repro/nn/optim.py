"""Optimizers for the NumPy network substrate."""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Updates a flat list of (param, grad) array pairs in place."""

    def __init__(self, params: list[np.ndarray], grads: list[np.ndarray], lr: float):
        if len(params) != len(grads):
            raise ValueError("params and grads must pair up")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = params
        self.grads = grads
        self.lr = float(lr)

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for g in self.grads:
            g[...] = 0.0


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        params: list[np.ndarray],
        grads: list[np.ndarray],
        lr: float = 1e-2,
        momentum: float = 0.0,
    ):
        super().__init__(params, grads, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self._vel = [np.zeros_like(p) for p in params]

    def step(self) -> None:
        for p, g, v in zip(self.params, self.grads, self._vel):
            if self.momentum:
                v *= self.momentum
                v -= self.lr * g
                p += v
            else:
                p -= self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        params: list[np.ndarray],
        grads: list[np.ndarray],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(params, grads, lr)
        self.beta1, self.beta2, self.eps = float(beta1), float(beta2), float(eps)
        self._m = [np.zeros_like(p) for p in params]
        self._v = [np.zeros_like(p) for p in params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1t = 1.0 - self.beta1 ** self._t
        b2t = 1.0 - self.beta2 ** self._t
        for p, g, m, v in zip(self.params, self.grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.eps)
