"""Adaptive bitrate controllers (paper §5).

VoLUT's contribution here is **continuous** adaptation: because the
two-stage SR supports arbitrary ratios at stable latency, the MPC can pick
any fetch density in ``(0, 1]`` rather than a handful of encoded levels.
Three controllers share the MPC machinery:

* :class:`ContinuousMPC` — VoLUT (H1): fine-grained density grid,
  effectively continuous;
* :class:`DiscreteMPC` — H2 / YuZu-style: densities restricted to the
  reciprocals of the discrete SR options;
* :class:`BufferBased` — the classic threshold controller, used as a
  sanity baseline.

The SR-quality model maps a {density, SR-ratio} decision to the perceived
quality ``Q`` of Eq. 10: the post-SR density discounted by a per-doubling
SR efficiency (SR'd points are almost, not exactly, as good as native
ones — the discount is calibrated from the SR-quality experiments).

The non-MPC controllers of the policy zoo (BOLA, throughput rule,
hybrid) live in :mod:`repro.streaming.policies` along with the
string-keyed registry — ``get_policy("bola")`` — that the experiment
CLIs resolve ``--abr`` names against; every controller here is
registered there too.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..metrics.qoe import QoEModel
from .chunks import ChunkSpec, batched_chunk_bytes, batched_points_at_density
from .latency import SRLatency, latency_batch

__all__ = [
    "SRQualityModel",
    "AbrContext",
    "Decision",
    "AbrController",
    "ContinuousMPC",
    "DiscreteMPC",
    "BufferBased",
    "YUZU_DENSITY_LEVELS",
    "COARSE_DEDUP_QUANTA",
]

#: Fetch densities reachable with YuZu's discrete SR options.  The paper
#: lists them as factor pairs (1x2, 2x2, 1x3, 1x4, 4x1, 2x1), i.e. end-to-end
#: ratios {2, 3, 4} — so a discrete client can never fetch below 1/4 density.
YUZU_DENSITY_LEVELS = (1.0, 1.0 / 2.0, 1.0 / 3.0, 1.0 / 4.0)

#: Coarse decision-dedup quanta preset for ``dedup_quanta=``: 10 kbps on
#: throughput, 0.1 s on buffer level, 0.01 on prev quality.  Merges many
#: more steady-state rows per tensor pass than the conservative default;
#: the resulting QoE perturbation is bounded (test-pinned at <5% relative
#: mean-QoE drift on a 600-viewer CDN fleet, see
#: ``tests/streaming/test_columnar.py``).  Use when decision-pass wall
#: time matters more than exact-default fidelity.
COARSE_DEDUP_QUANTA = (-4, 1, 2)


class SRQualityModel:
    """Maps a {density, SR-ratio} pair to perceived quality Q ∈ [0, 1].

    ``Q = min(1, density · sr_ratio) · efficiency^log2(sr_ratio)`` — the
    post-SR point density, discounted per upsampling doubling.  The default
    efficiency (0.93) reproduces the PSNR gap between SR'd and native
    content measured in §7.2 (×4 SR sits a few dB below ×2).
    """

    def __init__(self, max_ratio: float = 8.0, efficiency: float = 0.93):
        if max_ratio < 1.0:
            raise ValueError("max_ratio must be >= 1")
        if not 0.0 < efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        self.max_ratio = float(max_ratio)
        self.efficiency = float(efficiency)

    def sr_ratio_for(self, density: float) -> float:
        """SR ratio the client will apply for a fetch density."""
        if not 0.0 < density <= 1.0:
            raise ValueError(f"density must be in (0, 1], got {density}")
        return float(min(self.max_ratio, 1.0 / density))

    def quality(self, density: float, sr_ratio: float | None = None) -> float:
        """Perceived quality of Eq. 10's Q term."""
        s = self.sr_ratio_for(density) if sr_ratio is None else float(sr_ratio)
        if s < 1.0:
            raise ValueError("sr_ratio must be >= 1")
        restored = min(1.0, density * s)
        discount = self.efficiency ** np.log2(max(s, 1.0))
        return float(restored * discount)

    # -- batched forms (one candidate-density axis) --------------------
    def sr_ratios_for(self, densities: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`sr_ratio_for` (identical arithmetic)."""
        d = np.asarray(densities, dtype=np.float64)
        if np.any((d <= 0.0) | (d > 1.0)):
            raise ValueError("densities must be in (0, 1]")
        return np.minimum(self.max_ratio, 1.0 / d)

    def qualities(
        self, densities: np.ndarray, sr_ratios: np.ndarray | None = None
    ) -> np.ndarray:
        """Vectorized :meth:`quality` (identical arithmetic)."""
        d = np.asarray(densities, dtype=np.float64)
        s = (
            self.sr_ratios_for(d)
            if sr_ratios is None
            else np.asarray(sr_ratios, dtype=np.float64)
        )
        if np.any(s < 1.0):
            raise ValueError("sr_ratio must be >= 1")
        restored = np.minimum(1.0, d * s)
        discount = self.efficiency ** np.log2(np.maximum(s, 1.0))
        return restored * discount


@dataclass
class AbrContext:
    """Client state available to the controller at decision time."""

    throughput_bps: float
    buffer_level: float
    prev_quality: float | None
    next_chunks: list[ChunkSpec]

    def __post_init__(self) -> None:
        if self.throughput_bps <= 0:
            raise ValueError(
                "AbrContext.throughput_bps must be positive, got "
                f"{self.throughput_bps!r}"
            )
        if self.buffer_level < 0:
            raise ValueError(
                "AbrContext.buffer_level must be non-negative, got "
                f"{self.buffer_level!r}"
            )
        if not self.next_chunks:
            raise ValueError(
                "AbrContext.next_chunks must contain at least the next chunk, "
                f"got {self.next_chunks!r}"
            )


@dataclass(frozen=True)
class Decision:
    """{to-be-fetched point density, SR ratio} (paper §5.1)."""

    density: float
    sr_ratio: float

    def __post_init__(self) -> None:
        if not 0.0 < self.density <= 1.0:
            raise ValueError(
                f"Decision.density must be in (0, 1], got {self.density!r}"
            )
        if self.sr_ratio < 1.0:
            raise ValueError(
                f"Decision.sr_ratio must be >= 1, got {self.sr_ratio!r}"
            )


class AbrController:
    """Interface: pick a decision for the next chunk."""

    def decide(self, ctx: AbrContext) -> Decision:
        raise NotImplementedError

    def decide_batch(self, ctxs: list[AbrContext]) -> list[Decision]:
        """Decide for many independent contexts at once.

        The default loops over :meth:`decide`; MPC controllers override it
        with a single array pass so a fleet driver can resolve every
        session waiting on a decision in one call.  Must be equivalent to
        ``[self.decide(c) for c in ctxs]`` — the fleet parity tests rely
        on it.
        """
        return [self.decide(ctx) for ctx in ctxs]

    def decide_columns(self, batch) -> list[Decision]:
        """Decide for a columnar batch (``DecisionColumns``).

        The columnar fleet engine hands decision state over as parallel
        columns instead of context objects.  The default materializes
        every row and defers to :meth:`decide_batch`; MPC controllers
        override it to build dedup keys straight from the columns so
        memo-hit and duplicate rows never allocate a context at all.
        Must be equivalent to deciding each row's
        :meth:`~repro.streaming.columnar.DecisionColumns.context` — the
        columnar oracle-parity grid relies on it.
        """
        return self.decide_batch(
            [batch.context(i) for i in range(len(batch))]
        )


class _MPCBase(AbrController):
    """Shared horizon-planning logic (Eq. 10 maximization)."""

    def __init__(
        self,
        candidates: np.ndarray,
        quality_model: SRQualityModel,
        qoe_model: QoEModel,
        sr_latency: SRLatency,
        horizon: int = 5,
        safety: float = 0.9,
        fetch_fraction: float = 1.0,
        dedup_quanta: tuple[int, int, int] | None = None,
    ):
        cand = np.asarray(candidates, dtype=np.float64)
        if cand.ndim != 1 or len(cand) == 0:
            raise ValueError("need a non-empty 1-D candidate density array")
        if np.any((cand <= 0) | (cand > 1)):
            raise ValueError("candidate densities must be in (0, 1]")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        if not 0 < safety <= 1:
            raise ValueError("safety must be in (0, 1]")
        self.candidates = np.sort(cand)
        self.quality_model = quality_model
        self.qoe_model = qoe_model
        self.sr_latency = sr_latency
        self.horizon = int(horizon)
        self.safety = float(safety)
        if not 0.0 < fetch_fraction <= 1.0:
            raise ValueError("fetch_fraction must be in (0, 1]")
        #: lazily cached (sr_ratios, qualities) of the candidate grid
        self._candidate_stats: tuple[np.ndarray, np.ndarray] | None = None
        #: horizon-window tensors keyed by the chunk tuple (see
        #: :meth:`_horizon_tensors`)
        self._horizon_cache: dict[tuple, tuple] = {}
        #: dedupe identical decision rows in :meth:`decide_batch` (and
        #: memoize them across calls).  Decisions are pure functions of
        #: their context, so two rows with the same quantized state and
        #: chunk window get the same answer — computed once.  Flip off to
        #: recover the one-tensor-row-per-context reference path (the
        #: dedup parity test pins the two against each other).
        self.dedup = True
        if dedup_quanta is not None:
            if len(dedup_quanta) != 3:
                raise ValueError(
                    "dedup_quanta must be (tput, buffer, prev) decimal "
                    f"counts, got {dedup_quanta!r}"
                )
            # Instance overrides of the conservative class-level quanta
            # (see the block comment above _dedup_key).  Coarser quanta
            # merge more rows per tensor pass at the price of a bounded
            # QoE perturbation — COARSE_DEDUP_QUANTA documents the
            # measured bound.
            self._TPUT_DECIMALS = int(dedup_quanta[0])
            self._BUFFER_DECIMALS = int(dedup_quanta[1])
            self._PREV_DECIMALS = int(dedup_quanta[2])
        #: decision memo: quantized state -> Decision, bounded LRU
        self._decision_memo: OrderedDict[tuple, Decision] = OrderedDict()
        self._memo_capacity = 1 << 16
        #: lifetime counters: rows seen by decide_batch, rows that needed
        #: a fresh tensor evaluation, rows answered from the cross-call memo
        self.decide_rows = 0
        self.decide_unique = 0
        self.decide_memo_hits = 0
        # Fraction of each chunk's bytes actually fetched (ViVo's
        # visibility culling); must match the session's fetch_fraction so
        # the plan prices downloads correctly.
        self.fetch_fraction = float(fetch_fraction)

    # ------------------------------------------------------------------
    def _plan_value(self, density: float, ctx: AbrContext) -> float:
        """QoE of fetching the next ``horizon`` chunks at ``density``.

        Uses the robust-MPC simplification of a constant decision over the
        horizon with a safety-discounted throughput estimate.

        This is the scalar **reference oracle**: ``decide`` runs the
        vectorized :meth:`plan_values` instead, and the parity test grid
        pins the two paths against each other (the analogue of the kNN
        three-backend parity oracle).
        """
        tput = ctx.throughput_bps * self.safety
        s = self.quality_model.sr_ratio_for(density)
        q = self.quality_model.quality(density, s)
        horizon_chunks = ctx.next_chunks[: self.horizon]
        buffer = ctx.buffer_level
        qualities, stalls = [], []
        for chunk in horizon_chunks:
            dl = chunk.bytes_at_density(density) * self.fetch_fraction * 8.0 / tput
            sr = chunk.n_frames * self.sr_latency(
                chunk.points_at_density(density), s
            )
            # Download and SR overlap across chunks (pipelined client), so
            # the steady-state readiness interval is the slower stage.
            ready = max(dl, sr)
            stall = max(0.0, ready - buffer)
            buffer = max(buffer - ready, 0.0) + chunk.duration
            qualities.append(q)
            stalls.append(stall)
        return self.qoe_model.plan_value(qualities, stalls, ctx.prev_quality)

    def _horizon_tensors(
        self, chunks: tuple
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Throughput-independent tensors of one horizon window.

        ``(fetched bits, SR seconds, chunk durations)`` over the
        ``(chunk, candidate)`` grid depend only on the chunk specs, the
        fixed candidate densities, and the (fixed) SR latency model — so
        they are computed once per distinct window and replayed.  Fleet
        drivers call the planner with batches of one per completion
        event, which makes this cache the difference between re-deriving
        the whole tensor per chunk and a dictionary hit.
        """
        cached = self._horizon_cache.get(chunks)
        if cached is None:
            d = self.candidates
            s, _ = self._candidate_stats  # type: ignore[misc]
            ppf = np.array([c.points_per_frame for c in chunks])
            nf = np.array([c.n_frames for c in chunks], dtype=np.int64)
            bpp = np.array([c.bytes_per_point for c in chunks])
            dur = np.array([c.duration for c in chunks])
            pts = batched_points_at_density(ppf[:, None], d)   # (H, C)
            nbytes = batched_chunk_bytes(nf[:, None], pts, bpp[:, None])
            bits = nbytes * self.fetch_fraction * 8.0
            sr = nf[:, None] * latency_batch(self.sr_latency, pts, s)
            cached = (bits, sr, dur)
            self._horizon_cache[chunks] = cached
        return cached

    def _batch_plan_values(self, ctxs: list[AbrContext]) -> np.ndarray:
        """Plan values for every (context, candidate) pair in one pass.

        All contexts must share the same effective horizon length (the
        public entry points group by it).  Returns ``(n_ctx, n_candidates)``.
        The arithmetic replicates :meth:`_plan_value` operation for
        operation with a candidate axis appended — rounding modes included —
        so both paths produce bit-identical values.
        """
        # The candidate grid is fixed at construction, so its SR ratios
        # and qualities are too.
        if self._candidate_stats is None:
            d = self.candidates
            qm = self.quality_model
            srr = qm.sr_ratios_for(d)                          # (C,)
            self._candidate_stats = (srr, qm.qualities(d, srr))
        s, q = self._candidate_stats
        per_ctx = [
            self._horizon_tensors(tuple(ctx.next_chunks[: self.horizon]))
            for ctx in ctxs
        ]
        n_ctx, h_len = len(ctxs), len(per_ctx[0][2])
        if n_ctx == 1:
            bits, sr, dur = (t[None] for t in per_ctx[0])      # (1, H, ...)
        else:
            bits = np.stack([t[0] for t in per_ctx])           # (N, H, C)
            sr = np.stack([t[1] for t in per_ctx])
            dur = np.stack([t[2] for t in per_ctx])            # (N, H)

        tput = (
            np.array([ctx.throughput_bps for ctx in ctxs]) * self.safety
        )                                                      # (N,)
        dl = bits / tput[:, None, None]
        ready = np.maximum(dl, sr)                             # (N, H, C)

        buffer = np.array([ctx.buffer_level for ctx in ctxs])[:, None]
        stalls = np.empty((h_len, n_ctx, len(self.candidates)))
        for h in range(h_len):
            r = ready[:, h, :]
            stalls[h] = np.maximum(0.0, r - buffer)
            buffer = np.maximum(buffer - r, 0.0) + dur[:, h, None]

        prev = np.array(
            [
                np.nan if ctx.prev_quality is None else ctx.prev_quality
                for ctx in ctxs
            ]
        )[:, None]                                             # (N, 1)
        return self.qoe_model.plan_values(q, stalls, prev)

    def plan_values(self, ctx: AbrContext) -> np.ndarray:
        """Vectorized plan values over all candidate densities, ``(C,)``."""
        return self._batch_plan_values([ctx])[0]

    def _decision_for(self, density: float) -> Decision:
        return Decision(
            density=density, sr_ratio=self.quality_model.sr_ratio_for(density)
        )

    def decide(self, ctx: AbrContext) -> Decision:
        best = self.candidates[int(np.argmax(self.plan_values(ctx)))]
        return self._decision_for(float(best))

    #: decision-row quantization: states closer than these quanta are the
    #: same decision problem.  Deliberately conservative — well below any
    #: difference the planner's argmax can see in practice — so dedup
    #: collapses genuinely-identical steady states (co-watching viewers,
    #: every first decision per video) without materially perturbing
    #: near-boundary ones.
    _TPUT_DECIMALS = 3     # 0.001 bps quantum on throughput (bps-valued)
    _BUFFER_DECIMALS = 6   # 1 µs quantum on buffer level (seconds-valued)
    _PREV_DECIMALS = 9     # quality is in [0, 1]

    def _dedup_key(self, ctx: AbrContext) -> tuple:
        """Quantized decision-row identity of one context.

        The chunk window (value-hashed frozen specs) pins the video,
        position, and effective horizon; the quantized scalars pin the
        client state.  Equal keys ⇒ the same decision.
        """
        prev = ctx.prev_quality
        return (
            round(ctx.throughput_bps, self._TPUT_DECIMALS),
            round(ctx.buffer_level, self._BUFFER_DECIMALS),
            None if prev is None else round(prev, self._PREV_DECIMALS),
            tuple(ctx.next_chunks[: self.horizon]),
        )

    def _memo_store(self, key: tuple, decision: Decision) -> None:
        self._decision_memo[key] = decision
        if len(self._decision_memo) > self._memo_capacity:
            self._decision_memo.popitem(last=False)

    def decide_batch(self, ctxs: list[AbrContext]) -> list[Decision]:
        """One array pass per horizon length over the *unique* rows.

        At fleet steady state many sessions face the same decision — same
        chunk window, same quantized buffer/throughput state (the widest
        case is the first decision of every co-watching viewer) — so the
        batch is first deduped by :meth:`_dedup_key` and checked against
        the bounded cross-call memo; only the surviving representative
        rows enter the tensor evaluation, and their decisions are
        scattered back to every duplicate.  The tensor pass therefore
        costs O(unique states), not O(sessions).  Contexts near the end
        of their video have shorter horizons, so unique rows are still
        grouped by effective horizon length.  ``self.dedup = False``
        restores the evaluate-every-row reference path.
        """
        decisions: list[Decision | None] = [None] * len(ctxs)
        if not self.dedup:
            groups: dict[int, list[int]] = {}
            for i, ctx in enumerate(ctxs):
                groups.setdefault(
                    len(ctx.next_chunks[: self.horizon]), []
                ).append(i)
            for idxs in groups.values():
                values = self._batch_plan_values([ctxs[i] for i in idxs])
                best = self.candidates[np.argmax(values, axis=1)]
                for j, i in enumerate(idxs):
                    decisions[i] = self._decision_for(float(best[j]))
            return decisions  # type: ignore[return-value]

        return self._decide_keyed(
            [self._dedup_key(ctx) for ctx in ctxs], lambda i: ctxs[i]
        )

    def _decide_keyed(self, keys: list[tuple], ctx_of) -> list[Decision]:
        """Dedup/memo decision core, shared by both row representations.

        ``keys`` are :meth:`_dedup_key`-shaped tuples, one per row;
        ``ctx_of(i)`` lazily materializes row ``i`` as an
        :class:`AbrContext` — it is called only for the representative
        row of each fresh key, which is what lets the columnar engine
        skip context construction for memo hits and duplicates entirely.
        """
        decisions: list[Decision | None] = [None] * len(keys)
        self.decide_rows += len(keys)
        memo = self._decision_memo
        fresh_order: list[tuple] = []        # unique unseen keys, first-seen order
        fresh_idxs: dict[tuple, list[int]] = {}
        for i, key in enumerate(keys):
            hit = memo.get(key)
            if hit is not None:
                memo.move_to_end(key)
                self.decide_memo_hits += 1
                decisions[i] = hit
                continue
            idxs = fresh_idxs.get(key)
            if idxs is None:
                fresh_order.append(key)
                fresh_idxs[key] = [i]
            else:
                idxs.append(i)
        self.decide_unique += len(fresh_order)
        by_horizon: dict[int, list[tuple]] = {}
        for key in fresh_order:
            by_horizon.setdefault(len(key[3]), []).append(key)
        for group in by_horizon.values():
            # The representative row is the first context that produced
            # the key; duplicates inherit its decision verbatim.
            reps = [ctx_of(fresh_idxs[key][0]) for key in group]
            values = self._batch_plan_values(reps)
            best = self.candidates[np.argmax(values, axis=1)]
            for key, b in zip(group, best):
                decision = self._decision_for(float(b))
                self._memo_store(key, decision)
                for i in fresh_idxs[key]:
                    decisions[i] = decision
        return decisions  # type: ignore[return-value]

    def decide_columns(self, batch) -> list[Decision]:
        """Columnar decide: dedup keys built straight from the columns.

        Bit-identical to :meth:`decide_batch` over the batch's
        materialized contexts — the key tuples are value-identical (same
        ``round`` calls, chunk windows from the fleet-wide tuple cache
        compare equal to freshly sliced ones), so memo state is even
        interchangeable between engines — but memo-hit and duplicate
        rows never allocate an :class:`AbrContext` at all.
        """
        if not self.dedup:
            return self.decide_batch(
                [batch.context(i) for i in range(len(batch))]
            )
        td = self._TPUT_DECIMALS
        bd = self._BUFFER_DECIMALS
        pd = self._PREV_DECIMALS
        h = self.horizon
        keys = []
        for i in range(len(batch)):
            prev = batch.prev[i]
            keys.append(
                (
                    round(batch.tput[i], td),
                    round(batch.buffer[i], bd),
                    None if prev is None else round(prev, pd),
                    batch.window(i, h),
                )
            )
        return self._decide_keyed(keys, batch.context)


class ContinuousMPC(_MPCBase):
    """VoLUT's continuous ABR: a fine density grid (§5.1).

    A 64-point geometric grid over ``[min_density, 1]`` is dense enough
    that adjacent candidates differ by <5% in byte size — adaptation is
    effectively continuous while the argmax stays a 'simple constrained
    optimization' as in the paper.
    """

    def __init__(
        self,
        quality_model: SRQualityModel,
        qoe_model: QoEModel,
        sr_latency: SRLatency,
        min_density: float = 1.0 / 8.0,
        n_grid: int = 64,
        horizon: int = 5,
        safety: float = 0.9,
        fetch_fraction: float = 1.0,
        dedup_quanta: tuple[int, int, int] | None = None,
    ):
        if not 0 < min_density < 1:
            raise ValueError("min_density must be in (0, 1)")
        grid = np.geomspace(min_density, 1.0, n_grid)
        super().__init__(
            grid, quality_model, qoe_model, sr_latency, horizon, safety,
            fetch_fraction, dedup_quanta,
        )


class DiscreteMPC(_MPCBase):
    """Discrete-level MPC (H2 / YuZu-style): density ∈ 1/ratio levels."""

    def __init__(
        self,
        quality_model: SRQualityModel,
        qoe_model: QoEModel,
        sr_latency: SRLatency,
        levels: tuple[float, ...] = YUZU_DENSITY_LEVELS,
        horizon: int = 5,
        safety: float = 0.9,
        dedup_quanta: tuple[int, int, int] | None = None,
    ):
        super().__init__(
            np.asarray(levels), quality_model, qoe_model, sr_latency,
            horizon, safety, dedup_quanta=dedup_quanta,
        )


class BufferBased(AbrController):
    """Classic threshold rule: density grows linearly with buffer level."""

    def __init__(
        self,
        quality_model: SRQualityModel,
        min_density: float = 1.0 / 8.0,
        low_buffer: float = 1.0,
        high_buffer: float = 6.0,
    ):
        if not 0 < min_density <= 1:
            raise ValueError("min_density must be in (0, 1]")
        if low_buffer >= high_buffer:
            raise ValueError("low_buffer must be below high_buffer")
        self.quality_model = quality_model
        self.min_density = float(min_density)
        self.low_buffer = float(low_buffer)
        self.high_buffer = float(high_buffer)

    def decide(self, ctx: AbrContext) -> Decision:
        lvl = ctx.buffer_level
        if lvl <= self.low_buffer:
            d = self.min_density
        elif lvl >= self.high_buffer:
            d = 1.0
        else:
            frac = (lvl - self.low_buffer) / (self.high_buffer - self.low_buffer)
            d = self.min_density + frac * (1.0 - self.min_density)
        return Decision(density=d, sr_ratio=self.quality_model.sr_ratio_for(d))
