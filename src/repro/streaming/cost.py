"""First-principles infrastructure cost model: dollars per fleet run.

A fleet run consumes four billable resources, each read straight off
the simulator's own accounting rather than estimated:

* **origin egress** — bytes that crossed an origin → edge backhaul
  (``FleetReport.origin_egress_bytes``; on a bare link every delivered
  byte leaves the origin), priced $/GB;
* **encode compute** — transcode core-seconds actually occupied at the
  origin (``FleetReport.encode_core_seconds``, summed from
  :class:`~repro.streaming.cdn.EncodeQueue` busy time), priced
  $/core-hour;
* **edge cache storage** — provisioned edge chunk-cache capacity,
  amortized over the run's virtual window at a $/GB-month rate (a 600 s
  run of a 4 GB cache bills 4 GB × 600/2 592 000 months);
* **SR compute** — client-assist device time, one device busy per
  session for its watched seconds, priced $/device-hour.

``CostModel.price`` folds a :class:`~repro.streaming.fleet.FleetResult`
into a :class:`CostReport` carrying both the physical quantities and
their dollar components, so every figure is hand-checkable;
:func:`attach_cost` pins the report onto ``FleetResult.report.cost``
(what ``FleetSpec.cost_model`` triggers at the end of a run).  The
defaults approximate public-cloud list prices; they are knobs, not
claims — QoE-per-dollar *comparisons* between policies on the same
workload are the intended reading, in the MLSYSIM spirit of grounding
systems experiments in infrastructure economics.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from .fleet import FleetResult

__all__ = ["CostModel", "CostReport", "attach_cost"]

#: decimal gigabyte — cloud egress/storage is billed base-10
_GB = 1e9

#: amortization month (30 days), the usual cloud storage billing quantum
_SECONDS_PER_MONTH = 30 * 86400


@dataclass(frozen=True)
class CostReport:
    """Dollarized resource bill of one fleet run.

    Quantities and dollar components are both carried so tests (and
    readers) can verify every line: ``<quantity> × <unit price> ==
    <component>`` and ``total_usd == sum(components)``.
    """

    egress_gb: float
    encode_core_hours: float
    storage_gb_months: float
    sr_device_hours: float
    egress_usd: float
    encode_usd: float
    storage_usd: float
    sr_usd: float
    total_usd: float

    def qoe_per_dollar(self, mean_qoe: float, n_sessions: int) -> float:
        """Delivered QoE (summed over viewers) per dollar spent.

        ``inf`` when the run cost nothing (e.g. a zero-priced model) —
        a free run dominates any paid one.
        """
        total_qoe = mean_qoe * n_sessions
        if self.total_usd <= 0.0:
            return float("inf")
        return total_qoe / self.total_usd


@dataclass(frozen=True)
class CostModel:
    """Per-unit prices; ``price`` turns a fleet result into dollars.

    Defaults are public-cloud ballpark list prices (egress $0.05/GB,
    compute $0.08/core-hour, storage $0.02/GB-month, client device time
    $0.01/device-hour — client compute is cheap but not free: it is the
    battery/goodwill budget client-assist SR spends).
    """

    egress_usd_per_gb: float = 0.05
    encode_usd_per_core_hour: float = 0.08
    storage_usd_per_gb_month: float = 0.02
    sr_usd_per_device_hour: float = 0.01

    def __post_init__(self) -> None:
        for name in (
            "egress_usd_per_gb",
            "encode_usd_per_core_hour",
            "storage_usd_per_gb_month",
            "sr_usd_per_device_hour",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def price(self, result: "FleetResult") -> CostReport:
        """Bill one :class:`~repro.streaming.fleet.FleetResult`."""
        report = result.report
        # On a bare link build_fleet_report already set origin egress to
        # the delivered total (no edge tier ⇒ every byte is origin
        # egress), so one field serves both serving modes.
        egress_gb = report.origin_egress_bytes / _GB
        encode_core_hours = report.encode_core_seconds / 3600.0
        storage_bytes = (
            sum(e.cache.capacity_bytes for e in result.topology.edges)
            if result.topology is not None
            else 0
        )
        storage_gb_months = (storage_bytes / _GB) * (
            report.makespan / _SECONDS_PER_MONTH
        )
        sr_device_hours = (
            sum(s.watched_seconds for s in result.sessions) / 3600.0
        )
        egress_usd = egress_gb * self.egress_usd_per_gb
        encode_usd = encode_core_hours * self.encode_usd_per_core_hour
        storage_usd = storage_gb_months * self.storage_usd_per_gb_month
        sr_usd = sr_device_hours * self.sr_usd_per_device_hour
        return CostReport(
            egress_gb=egress_gb,
            encode_core_hours=encode_core_hours,
            storage_gb_months=storage_gb_months,
            sr_device_hours=sr_device_hours,
            egress_usd=egress_usd,
            encode_usd=encode_usd,
            storage_usd=storage_usd,
            sr_usd=sr_usd,
            total_usd=egress_usd + encode_usd + storage_usd + sr_usd,
        )


def attach_cost(result: "FleetResult", model: CostModel) -> "FleetResult":
    """Price ``result`` and pin the bill onto ``result.report.cost``.

    Returns the same result object (the report, being frozen, is
    rebuilt with the cost attached).  Attaching is the only mutation —
    every other report field is untouched, which keeps cost-annotated
    runs comparable with plain ones field by field.
    """
    result.report = dc_replace(result.report, cost=model.price(result))
    return result
