"""Volumetric video server (paper §3, §6).

The paper's server "segments videos into fixed-length chunks and encodes
them at requested point densities" behind a custom DASH-like protocol.
:class:`VideoServer` is that component as a library object:

* a **manifest** describing the video and its chunk grid (what a client
  fetches first);
* ``get_chunk(index, density)`` returning real encoded bytes — octree-codec
  compressed by default — with an LRU payload cache, since VoD servers
  re-serve popular (chunk, density) pairs;
* deterministic encoding, so tests and repeated sessions see identical
  payloads.

Continuous ABR means clients may request *any* density; the server encodes
on demand (the paper's server does the same — downsampling is cheap random
selection, §5.2).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..pointcloud.datasets import VolumetricVideo
from .chunks import ChunkSpec, VideoSpec
from .encoder import encode_chunk, encode_frame_compressed

__all__ = ["Manifest", "VideoServer"]


@dataclass(frozen=True)
class Manifest:
    """What the client learns about a video before streaming it."""

    name: str
    n_chunks: int
    chunk_seconds: float
    fps: int
    points_per_frame: int
    min_density: float
    max_density: float = 1.0

    def __post_init__(self) -> None:
        if self.n_chunks <= 0:
            raise ValueError("manifest must describe at least one chunk")
        if not 0.0 < self.min_density <= self.max_density <= 1.0:
            raise ValueError("density bounds must satisfy 0 < min <= max <= 1")


class VideoServer:
    """Serves encoded chunks of one volumetric video.

    Parameters
    ----------
    video:
        The content to serve.
    chunk_seconds:
        Segment length (the paper uses ~1 s chunks).
    compressed:
        Octree-codec transport (default) vs raw float32 frames.
    depth:
        Codec depth for the compressed transport.
    cache_size:
        Number of encoded (chunk, density) payloads kept in memory.
    """

    def __init__(
        self,
        video: VolumetricVideo,
        chunk_seconds: float = 1.0,
        min_density: float = 1.0 / 8.0,
        compressed: bool = True,
        depth: int = 10,
        cache_size: int = 32,
    ):
        if chunk_seconds <= 0:
            raise ValueError("chunk_seconds must be positive")
        if not 0.0 < min_density <= 1.0:
            raise ValueError("min_density must be in (0, 1]")
        self.video = video
        self.compressed = compressed
        self.depth = depth
        self._spec = VideoSpec.from_video(video)
        self._chunks = self._spec.chunks(chunk_seconds)
        self.manifest = Manifest(
            name=video.name,
            n_chunks=len(self._chunks),
            chunk_seconds=chunk_seconds,
            fps=video.fps,
            points_per_frame=self._spec.points_per_frame,
            min_density=min_density,
        )
        self._cache: OrderedDict[tuple[int, float], bytes] = OrderedDict()
        self._cache_size = int(cache_size)

    # ------------------------------------------------------------------
    def chunk_spec(self, index: int) -> ChunkSpec:
        """Chunk geometry/size metadata (what the ABR plans against)."""
        self._check_index(index)
        return self._chunks[index]

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self._chunks):
            raise IndexError(
                f"chunk {index} out of range [0, {len(self._chunks)})"
            )

    def _frames_of(self, index: int):
        spec = self._chunks[index]
        start = sum(c.n_frames for c in self._chunks[:index])
        return [self.video.frame(start + i) for i in range(spec.n_frames)]

    # ------------------------------------------------------------------
    def get_chunk(self, index: int, density: float) -> bytes:
        """Encode (or serve from cache) chunk ``index`` at ``density``.

        Densities are quantized to 1e-3 for cache keying — well below the
        granularity at which byte sizes change.
        """
        self._check_index(index)
        if not self.manifest.min_density <= density <= self.manifest.max_density:
            raise ValueError(
                f"density {density} outside manifest bounds "
                f"[{self.manifest.min_density}, {self.manifest.max_density}]"
            )
        key = (index, round(density, 3))
        if key in self._cache:
            self._cache.move_to_end(key)
            return self._cache[key]
        frames = self._frames_of(index)
        if self.compressed:
            import numpy as np

            parts = [np.array([len(frames)], "<u4").tobytes()]
            for i, f in enumerate(frames):
                payload = encode_frame_compressed(
                    f, density, depth=self.depth, seed=index * 1000 + i
                )
                parts.append(np.array([len(payload)], "<u4").tobytes())
                parts.append(payload)
            blob = b"".join(parts)
        else:
            blob = encode_chunk(frames, density, seed=index)
        self._cache[key] = blob
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return blob

    @staticmethod
    def decode_chunk_payload(blob: bytes, compressed: bool = True):
        """Decode a chunk payload into frames (client side)."""
        import numpy as np

        from .encoder import decode_chunk, decode_frame_compressed

        if not compressed:
            return decode_chunk(blob)
        if len(blob) < 4:
            raise ValueError("chunk payload too short")
        n = int(np.frombuffer(blob[:4], "<u4")[0])
        frames = []
        off = 4
        for _ in range(n):
            if len(blob) < off + 4:
                raise ValueError("chunk payload truncated at frame header")
            flen = int(np.frombuffer(blob[off : off + 4], "<u4")[0])
            off += 4
            frames.append(decode_frame_compressed(blob[off : off + flen]))
            off += flen
        return frames
