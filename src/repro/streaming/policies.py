"""ABR policy zoo: a registry of controllers behind one explicit protocol.

:mod:`repro.streaming.abr` grew the controller *interface* implicitly —
``decide`` / ``decide_batch`` / ``decide_columns`` — with only the MPC
family implementing all three entry points.  This module makes the
contract explicit (:class:`AbrPolicy`), adds a string-keyed registry so
experiments and CLIs resolve controllers by name
(``get_policy("bola")``), and fills out the zoo with the classic
non-MPC control families:

* :class:`BolaController` — BOLA-style Lyapunov utility over buffer
  occupancy (Spiteri et al.): pick the candidate maximizing
  ``(V·(u_c + γp) − buffer) / size_c``;
* :class:`ThroughputRuleController` — the rate rule: largest candidate
  whose chunk downloads within one chunk duration at the (safety-
  discounted) harmonic-mean throughput estimate.  The estimate arrives
  as ``ctx.throughput_bps``, produced by the session pipeline's
  :class:`~repro.net.estimator.HarmonicMeanEstimator` (machine engine)
  or ``ColumnarFleet._estimate`` (columnar engine) — the controller
  itself stays stateless so batch order cannot perturb decisions;
* :class:`HybridController` — throughput-gated BOLA: BOLA steady-state,
  clamped by the throughput rule while the buffer is below a gate.

Every policy implements a pure-Python scalar ``decide`` as its
**reference oracle** plus vectorized ``decide_batch`` / columnar
``decide_columns`` paths, with all candidate-grid constants (densities,
SR ratios, utilities, per-chunk bit sizes) precomputed once at
construction and indexed by both paths — so the per-row arithmetic is
elementwise identical and the scalar/batch parity grids in
``tests/streaming/test_abr_parity.py`` pin them at 1e-9 (the eighth
instance of the oracle-parity convention; cross-engine fleet parity
rides ``tests/streaming/test_columnar.py``).
"""

from __future__ import annotations

import inspect
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from ..metrics.qoe import QoEModel
from .abr import (
    AbrContext,
    AbrController,
    BufferBased,
    ContinuousMPC,
    Decision,
    DiscreteMPC,
    SRQualityModel,
)
from .latency import ZERO_LATENCY

__all__ = [
    "AbrPolicy",
    "BolaController",
    "ThroughputRuleController",
    "HybridController",
    "register_policy",
    "get_policy",
    "available_policies",
    "supports_dedup",
]


@runtime_checkable
class AbrPolicy(Protocol):
    """The controller contract both fleet engines program against.

    Capabilities, in order of obligation:

    * ``decide(ctx)`` — the scalar reference path.  Every policy's
      single source of truth; the parity grids pin the other entry
      points against it.
    * ``decide_batch(ctxs)`` — one call resolving every session parked
      on a decision at an event step (the machine engine's path).  Must
      equal ``[decide(c) for c in ctxs]`` to 1e-9.
    * ``decide_columns(batch)`` — the columnar engine's path, fed a
      :class:`~repro.streaming.columnar.DecisionColumns` view.  Must
      equal deciding each row's materialized context.
    * ``quality_model`` — the :class:`~repro.streaming.abr.SRQualityModel`
      the policy prices decisions with (fleet drivers and experiments
      read it to keep session quality accounting consistent).
    * dedup/memo participation is *optional* and advertised by a
      truthy ``dedup`` attribute (see :func:`supports_dedup`); only the
      MPC family opts in today.
    """

    quality_model: SRQualityModel

    def decide(self, ctx: AbrContext) -> Decision: ...

    def decide_batch(self, ctxs: list[AbrContext]) -> list[Decision]: ...

    def decide_columns(self, batch) -> list[Decision]: ...


def supports_dedup(policy) -> bool:
    """Whether ``policy`` participates in decision-row dedup/memoization.

    MPC planners quantize rows and memoize decisions across calls
    (``_MPCBase.dedup``); the rule-based zoo recomputes — its per-row
    arithmetic is two flops, cheaper than a dict probe.
    """
    return bool(getattr(policy, "dedup", False))


# ----------------------------------------------------------------------
# the rule-based zoo
# ----------------------------------------------------------------------


class _GridPolicy(AbrController):
    """Shared candidate-grid machinery for the rule-based controllers.

    Everything throughput-independent is precomputed here once: the
    density grid (geometric, like :class:`ContinuousMPC`), its SR
    ratios and qualities, and — lazily, per distinct chunk — the fetched
    bit size of every candidate.  The scalar and vectorized decision
    paths both index these arrays, so their per-row arithmetic is
    elementwise identical (what makes 1e-9 parity structural rather
    than approximate).
    """

    def __init__(
        self,
        quality_model: SRQualityModel,
        min_density: float = 1.0 / 8.0,
        n_grid: int = 16,
        fetch_fraction: float = 1.0,
    ):
        if not 0 < min_density < 1:
            raise ValueError("min_density must be in (0, 1)")
        if n_grid < 2:
            raise ValueError("n_grid must be >= 2")
        if not 0.0 < fetch_fraction <= 1.0:
            raise ValueError("fetch_fraction must be in (0, 1]")
        self.quality_model = quality_model
        self.candidates = np.geomspace(min_density, 1.0, n_grid)
        self._sr_ratios = quality_model.sr_ratios_for(self.candidates)
        self._qualities = quality_model.qualities(
            self.candidates, self._sr_ratios
        )
        self.fetch_fraction = float(fetch_fraction)
        #: chunk -> fetched bits per candidate, cached per distinct chunk
        self._bits_cache: dict[int, np.ndarray] = {}

    def _chunk_bits(self, chunk) -> np.ndarray:
        key = id(chunk)
        bits = self._bits_cache.get(key)
        if bits is None:
            bits = (
                chunk.bytes_at_densities(self.candidates)
                * self.fetch_fraction
                * 8.0
            )
            self._bits_cache[key] = bits
        return bits

    def _decision_for(self, i: int) -> Decision:
        return Decision(
            density=float(self.candidates[i]),
            sr_ratio=float(self._sr_ratios[i]),
        )

    # -- per-row index rules, implemented by each policy ---------------
    def _index(self, tput: float, buf: float, chunk) -> int:
        """Scalar reference: candidate index for one decision row."""
        raise NotImplementedError

    def _indices(
        self, tput: np.ndarray, buf: np.ndarray, chunk
    ) -> np.ndarray:
        """Vectorized :meth:`_index` over same-chunk rows."""
        raise NotImplementedError

    # -- the three protocol entry points -------------------------------
    def decide(self, ctx: AbrContext) -> Decision:
        return self._decision_for(
            self._index(ctx.throughput_bps, ctx.buffer_level, ctx.next_chunks[0])
        )

    def decide_batch(self, ctxs: list[AbrContext]) -> list[Decision]:
        return self._decide_rows(
            [c.throughput_bps for c in ctxs],
            [c.buffer_level for c in ctxs],
            [c.next_chunks[0] for c in ctxs],
        )

    def decide_columns(self, batch) -> list[Decision]:
        chunks = [batch.window(i, 1)[0] for i in range(len(batch))]
        return self._decide_rows(batch.tput, batch.buffer, chunks)

    def _decide_rows(self, tputs, bufs, chunks) -> list[Decision]:
        """Group rows by next chunk, one vectorized pass per group.

        Grouping only batches the arithmetic — every row's score math is
        elementwise, so group membership cannot change any decision.
        """
        groups: dict[int, list[int]] = {}
        for i, chunk in enumerate(chunks):
            groups.setdefault(id(chunk), []).append(i)
        decisions: list[Decision | None] = [None] * len(chunks)
        for idxs in groups.values():
            chunk = chunks[idxs[0]]
            t = np.array([tputs[i] for i in idxs], dtype=np.float64)
            b = np.array([bufs[i] for i in idxs], dtype=np.float64)
            best = self._indices(t, b, chunk)
            for j, i in enumerate(idxs):
                decisions[i] = self._decision_for(int(best[j]))
        return decisions  # type: ignore[return-value]


def _bola_scores(vu: np.ndarray, buf, bits: np.ndarray):
    """BOLA objective ``(V·(u_c + γp) − buffer) / size_c`` per candidate.

    ``buf`` is a scalar (scalar path) or an ``(N, 1)`` column (vector
    path); either way the per-element operations are one subtract and
    one divide — identical IEEE arithmetic in both shapes.
    """
    return (vu - buf) / bits


def _tput_count(bits: np.ndarray, limit):
    """How many candidates download within ``limit`` bits.

    ``bits`` is non-decreasing (byte size is monotone in density), so
    the feasible set is a prefix and the count minus one is the largest
    feasible index.
    """
    return (bits <= limit).sum(axis=-1)


class BolaController(_GridPolicy):
    """BOLA-style buffer controller: Lyapunov utility over occupancy.

    Candidate ``c`` scores ``(V·(u_c + γp) − buffer) / size_c`` with
    utilities ``u_c = ln(q_c / q_min)`` from the SR-quality model and
    ``V`` derived so the scores cross zero — and the argmax reaches the
    densest candidate — as the buffer approaches ``buffer_target``
    (``V = buffer_target / (u_max + γp)``).  Below target the rule
    favors small chunks (build buffer); at/above target the least
    negative score divided by the largest size wins (spend buffer on
    quality).  Purely buffer-driven: the throughput estimate is ignored.
    """

    def __init__(
        self,
        quality_model: SRQualityModel,
        min_density: float = 1.0 / 8.0,
        n_grid: int = 16,
        buffer_target: float = 6.0,
        gamma_p: float = 5.0,
        fetch_fraction: float = 1.0,
    ):
        super().__init__(quality_model, min_density, n_grid, fetch_fraction)
        if buffer_target <= 0:
            raise ValueError("buffer_target must be positive")
        if gamma_p <= 0:
            raise ValueError("gamma_p must be positive")
        self.buffer_target = float(buffer_target)
        self.gamma_p = float(gamma_p)
        u = np.log(self._qualities) - np.log(self._qualities[0])
        self.lyapunov_v = self.buffer_target / (float(u[-1]) + self.gamma_p)
        #: ``V·(u_c + γp)`` — the only per-candidate constant the score needs
        self._vu = self.lyapunov_v * (u + self.gamma_p)

    def _index(self, tput: float, buf: float, chunk) -> int:
        bits = self._chunk_bits(chunk)
        vu = self._vu
        best, best_score = 0, None
        for i in range(len(vu)):
            score = (float(vu[i]) - buf) / float(bits[i])
            # strict > mirrors np.argmax's first-max tie-break
            if best_score is None or score > best_score:
                best, best_score = i, score
        return best

    def _indices(self, tput, buf, chunk) -> np.ndarray:
        bits = self._chunk_bits(chunk)
        return np.argmax(
            _bola_scores(self._vu[None, :], buf[:, None], bits[None, :]),
            axis=1,
        )


class ThroughputRuleController(_GridPolicy):
    """Rate rule: densest candidate sustainable at the estimated rate.

    Feasibility is ``size_bits ≤ throughput · safety · chunk_duration``
    — the chunk must download within its own playback duration at the
    safety-discounted estimate.  The estimate is the harmonic mean the
    session pipeline maintains (:class:`~repro.net.estimator.
    HarmonicMeanEstimator`; the columnar engine reproduces its
    sequential-sum arithmetic), delivered as ``ctx.throughput_bps`` /
    the ``tput`` column — keeping the controller stateless, so decisions
    are independent of batch composition and order.  When nothing is
    feasible the sparsest candidate is fetched (the session must make
    progress to re-estimate).
    """

    def __init__(
        self,
        quality_model: SRQualityModel,
        min_density: float = 1.0 / 8.0,
        n_grid: int = 16,
        safety: float = 0.9,
        fetch_fraction: float = 1.0,
    ):
        super().__init__(quality_model, min_density, n_grid, fetch_fraction)
        if not 0 < safety <= 1:
            raise ValueError("safety must be in (0, 1]")
        self.safety = float(safety)

    def _index(self, tput: float, buf: float, chunk) -> int:
        bits = self._chunk_bits(chunk)
        limit = tput * self.safety * chunk.duration
        count = 0
        for i in range(len(bits)):
            if float(bits[i]) <= limit:
                count += 1
        return count - 1 if count > 0 else 0

    def _indices(self, tput, buf, chunk) -> np.ndarray:
        bits = self._chunk_bits(chunk)
        limit = tput * self.safety * chunk.duration
        count = _tput_count(bits[None, :], limit[:, None])
        return np.where(count > 0, count - 1, 0)


class HybridController(BolaController):
    """Throughput-gated BOLA: rate-capped while the buffer is thin.

    Runs BOLA's score argmax, but while ``buffer < gate_buffer`` clamps
    the pick to the throughput rule's largest-feasible candidate
    (``min`` of the two indices on the shared ascending grid).  Once
    the buffer clears the gate, pure BOLA steady-state takes over —
    the standard cure for BOLA's slow cold-start ramp without giving up
    its buffer-driven stability.
    """

    def __init__(
        self,
        quality_model: SRQualityModel,
        min_density: float = 1.0 / 8.0,
        n_grid: int = 16,
        buffer_target: float = 6.0,
        gamma_p: float = 5.0,
        safety: float = 0.9,
        gate_buffer: float = 2.0,
        fetch_fraction: float = 1.0,
    ):
        super().__init__(
            quality_model, min_density, n_grid, buffer_target, gamma_p,
            fetch_fraction,
        )
        if not 0 < safety <= 1:
            raise ValueError("safety must be in (0, 1]")
        if gate_buffer < 0:
            raise ValueError("gate_buffer must be non-negative")
        self.safety = float(safety)
        self.gate_buffer = float(gate_buffer)

    def _index(self, tput: float, buf: float, chunk) -> int:
        bidx = super()._index(tput, buf, chunk)
        if buf >= self.gate_buffer:
            return bidx
        bits = self._chunk_bits(chunk)
        limit = tput * self.safety * chunk.duration
        count = 0
        for i in range(len(bits)):
            if float(bits[i]) <= limit:
                count += 1
        tidx = count - 1 if count > 0 else 0
        return min(bidx, tidx)

    def _indices(self, tput, buf, chunk) -> np.ndarray:
        bits = self._chunk_bits(chunk)
        bidx = np.argmax(
            _bola_scores(self._vu[None, :], buf[:, None], bits[None, :]),
            axis=1,
        )
        limit = tput * self.safety * chunk.duration
        count = _tput_count(bits[None, :], limit[:, None])
        tidx = np.where(count > 0, count - 1, 0)
        return np.where(buf >= self.gate_buffer, bidx, np.minimum(bidx, tidx))


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------

_REGISTRY: dict[str, Callable] = {}


def register_policy(name: str, factory: Callable, *, replace: bool = False):
    """Register ``factory`` (usually a controller class) under ``name``.

    ``get_policy(name, ...)`` will call it with whichever of the base
    models (``quality_model`` / ``qoe_model`` / ``sr_latency``) and
    extra kwargs its signature accepts.  Re-registering an existing
    name requires ``replace=True`` — silent shadowing hides typos.
    """
    if not name:
        raise ValueError("policy name must be non-empty")
    if not replace and name in _REGISTRY:
        raise ValueError(
            f"policy {name!r} is already registered (pass replace=True "
            "to override)"
        )
    _REGISTRY[name] = factory


def available_policies() -> list[str]:
    """Registered policy names, sorted."""
    return sorted(_REGISTRY)


def get_policy(
    name: str,
    *,
    quality_model: SRQualityModel | None = None,
    qoe_model: QoEModel | None = None,
    sr_latency=None,
    **kwargs,
):
    """Build the policy registered as ``name``.

    The base models default to ``SRQualityModel()`` / ``QoEModel()`` /
    ``ZERO_LATENCY`` and — like the extra ``kwargs`` — are forwarded
    only when the factory's signature accepts them (the experiments-CLI
    flag-forwarding convention: ``n_grid`` reaches grid-based policies
    and is dropped for :class:`DiscreteMPC`).  Unknown names raise a
    ``ValueError`` listing the registry.
    """
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"unknown policy {name!r}; available: "
            f"{', '.join(available_policies())}"
        )
    params = inspect.signature(factory).parameters
    accepts_any = any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )
    call: dict = {}
    base = {
        "quality_model": quality_model
        if quality_model is not None
        else SRQualityModel(),
        "qoe_model": qoe_model if qoe_model is not None else QoEModel(),
        "sr_latency": sr_latency if sr_latency is not None else ZERO_LATENCY,
    }
    for key, value in base.items():
        if accepts_any or key in params:
            call[key] = value
    for key, value in kwargs.items():
        if accepts_any or key in params:
            call[key] = value
    return factory(**call)


register_policy("continuous-mpc", ContinuousMPC)
register_policy("discrete-mpc", DiscreteMPC)
register_policy("bola", BolaController)
register_policy("throughput", ThroughputRuleController)
register_policy("hybrid", HybridController)
register_policy("buffer-linear", BufferBased)
