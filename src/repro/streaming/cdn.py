"""CDN serving topology: edge chunk caches, encode contention, assignment.

The fleet simulator models the last mile; a service the paper's size is
fronted by a CDN, and at scale it is the *edge*, not the access link,
that decides aggregate QoE and serving cost.  This module provides the
pieces :func:`~repro.streaming.fleet.simulate_fleet` wires together when
given a topology:

* :class:`EdgeChunkCache` — a byte-capacity LRU of encoded chunk
  variants held at one edge.  A hit serves the chunk over the access
  link alone; a miss pulls origin → edge → viewer over the two-hop
  path and fills the cache when the transfer completes.  The cache also
  tracks *in-flight* fills for request coalescing: a concurrent miss
  for a chunk some other viewer is already pulling attaches to that one
  backhaul transfer (its data starts flowing, over the access link
  alone, when the fill lands) instead of opening a second origin pull —
  the request-collapsing every production CDN does, and a flow-count
  lever for the fleet scheduler.
* :class:`EncodeQueue` / :class:`OriginServer` — bounded server-side
  transcode contention.  The origin encodes each (video, chunk,
  density) variant once, on first request, on a fixed pool of encode
  workers; cold requests wait for a worker and for the encode itself
  before their backhaul transfer starts, and the queue records every
  wait for the report's percentiles.
* :class:`EdgeNode` — one edge site: a backhaul :class:`SharedLink`
  from the origin, an access :class:`SharedLink` to its viewers, and
  the edge cache; exposes its hit (one-hop) and miss (two-hop)
  :class:`~repro.net.topology.NetworkPath`s.
* :class:`CDNTopology` + :func:`assign_sessions` — the full serving
  graph plus the viewer → edge assignment policies: ``static``
  (geo-hash of the viewer id, load- and content-blind), ``least-loaded``
  (greedy min-occupancy in join order), and ``popularity`` (content
  affinity: all viewers of a video share an edge, maximizing cache
  locality at the price of skew-following load imbalance).

Everything is deterministic given (topology, sessions): hashes are
``zlib.crc32`` (Python's builtin ``hash`` is salted per process), ties
break by edge index, and cache/queue state advances only at scheduler
events, in flow-id order.
"""

from __future__ import annotations

import math
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..net.link import SharedLink
from ..net.topology import NetworkPath
from ..net.traces import stable_trace
from ..obs.events import (
    EV_CACHE_COALESCE,
    EV_CACHE_HIT,
    EV_CACHE_MISS,
    EV_CACHE_VOID,
    EV_ENCODE_ENQUEUE,
    EV_ENCODE_RESIZE,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle (fleet imports cdn)
    from .fleet import SRResultCache

__all__ = [
    "ASSIGNMENT_POLICIES",
    "EdgeChunkCache",
    "EncodeQueue",
    "OriginServer",
    "EdgeNode",
    "CDNTopology",
    "assign_sessions",
    "uniform_cdn",
    "wait_percentile",
]

#: Supported viewer → edge assignment policies.
ASSIGNMENT_POLICIES = ("static", "least-loaded", "popularity")


@dataclass
class _CacheEntry:
    nbytes: int
    ready: float  # virtual time the fill transfer completes


class EdgeChunkCache:
    """Byte-capacity LRU of encoded chunk variants at one edge.

    Keyed by (video, chunk index, density) — the tuple that determines an
    encoded variant.  An entry carries the virtual time its fill transfer
    completed: a request hits only if the variant is fully resident *at
    the moment the request goes out*.  A variant still being pulled by
    another viewer is a miss, but a *coalesced* one: the fleet driver
    checks :meth:`fill_in_flight` and attaches the request to the
    existing backhaul transfer (see :meth:`attach`) instead of opening a
    second origin pull.  ``capacity_bytes=0`` disables caching — and
    with it coalescing — so every request misses and pulls its own copy,
    which is what the degenerate-topology parity test uses.
    """

    def __init__(self, capacity_bytes: int = 1 << 30):
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")
        self.capacity_bytes = int(capacity_bytes)
        self._entries: OrderedDict[tuple, _CacheEntry] = OrderedDict()
        self._pending: set[tuple] = set()
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.hit_bytes = 0
        self.miss_bytes = 0
        self.evictions = 0
        #: backhaul fills actually opened (cold misses that pulled bytes)
        self.fills = 0
        #: fills cancelled mid-flight (edge outages) — never landed
        self.aborted_fills = 0
        #: misses that attached to an in-flight fill instead of pulling
        self.coalesced = 0
        self.coalesced_bytes = 0
        #: wired (with this cache's edge index) by the fleet driver when
        #: tracing; unwired in its ``finally``
        self.tracer = None
        self.edge: int | None = None

    def lookup(self, key: tuple, nbytes: int, at_time: float) -> bool:
        """True (and bump LRU/stats) iff ``key`` is resident at ``at_time``."""
        entry = self._entries.get(key)
        if entry is not None and entry.ready <= at_time:
            self._entries.move_to_end(key)
            self.hits += 1
            self.hit_bytes += nbytes
            if self.tracer is not None:
                self.tracer.emit(
                    at_time, EV_CACHE_HIT, edge=self.edge, nbytes=nbytes
                )
            return True
        self.misses += 1
        self.miss_bytes += nbytes
        if self.tracer is not None:
            self.tracer.emit(
                at_time, EV_CACHE_MISS, edge=self.edge, nbytes=nbytes
            )
        return False

    # -- in-flight fill tracking (request coalescing) ------------------
    def fill_in_flight(self, key: tuple) -> bool:
        """True iff a backhaul fill for ``key`` is currently in flight."""
        return key in self._pending

    def begin_fill(self, key: tuple) -> None:
        """Record that a cold miss opened a backhaul fill for ``key``."""
        self._pending.add(key)
        self.fills += 1

    def attach(self, key: tuple, nbytes: int, at_time: float = 0.0) -> None:
        """Record a miss that coalesced onto the in-flight fill of ``key``."""
        if key not in self._pending:
            raise ValueError(f"no fill in flight for {key!r}")
        self.coalesced += 1
        self.coalesced_bytes += nbytes
        if self.tracer is not None:
            self.tracer.emit(
                at_time, EV_CACHE_COALESCE, edge=self.edge, nbytes=nbytes
            )

    def void_hit(self, nbytes: int, at_time: float = 0.0) -> None:
        """Retract a counted hit whose access transfer never completed.

        An edge outage cancels the serve mid-flight: the viewer never got
        the bytes, and the retry is counted on its own lookup.  Leaving
        the phantom charge would double-bill the chunk against delivered
        totals (byte conservation) and inflate :attr:`hit_rate`.
        """
        self.hits -= 1
        self.hit_bytes -= nbytes
        if self.tracer is not None:
            self.tracer.emit(
                at_time, EV_CACHE_VOID, edge=self.edge, what="hit",
                nbytes=nbytes,
            )

    def void_coalesced(self, nbytes: int, at_time: float = 0.0) -> None:
        """Retract a counted coalesced attach whose fill was cancelled.

        Same credit-back contract as :meth:`void_hit`, for requests that
        rode (or were parked behind) a backhaul fill an outage killed.
        """
        self.coalesced -= 1
        self.coalesced_bytes -= nbytes
        if self.tracer is not None:
            self.tracer.emit(
                at_time, EV_CACHE_VOID, edge=self.edge, what="coalesced",
                nbytes=nbytes,
            )

    def abort_fill(self, key: tuple) -> None:
        """Drop the in-flight marker for a fill that will never land.

        The fault-injection hook: an edge outage cancels the backhaul
        transfer mid-flight, so the next request for ``key`` must open a
        fresh fill instead of coalescing onto a ghost.  ``fills`` keeps
        counting the aborted pull (bytes did start moving);
        ``aborted_fills`` tallies how many never completed.
        """
        if key in self._pending:
            self._pending.discard(key)
            self.aborted_fills += 1

    def drop_all(self) -> None:
        """Forget every resident variant and in-flight fill (counters kept).

        What an edge node restarting after an outage looks like: the
        cache comes back empty and cold, but the run's hit/miss history
        still happened.
        """
        self.aborted_fills += len(self._pending)
        self._entries.clear()
        self._pending.clear()
        self.used_bytes = 0

    def reset(self) -> None:
        """Restore as-constructed state: empty cache, zeroed counters."""
        self._entries.clear()
        self._pending.clear()
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.hit_bytes = 0
        self.miss_bytes = 0
        self.evictions = 0
        self.fills = 0
        self.aborted_fills = 0
        self.coalesced = 0
        self.coalesced_bytes = 0

    def insert(self, key: tuple, nbytes: int, ready: float) -> None:
        """Record a completed fill: ``key`` resident from ``ready`` on.

        Clears the in-flight marker for ``key``; concurrent fills (only
        possible with coalescing disabled) keep whichever copy lands
        first, mirroring :meth:`SRResultCache.acquire`.  Variants larger
        than the whole cache are not admitted.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self._pending.discard(key)
        if nbytes > self.capacity_bytes:
            return
        existing = self._entries.get(key)
        if existing is not None:
            existing.ready = min(existing.ready, ready)
            self._entries.move_to_end(key)
            return
        self._entries[key] = _CacheEntry(nbytes=nbytes, ready=ready)
        self.used_bytes += nbytes
        while self.used_bytes > self.capacity_bytes:
            _, evicted = self._entries.popitem(last=False)
            self.used_bytes -= evicted.nbytes
            self.evictions += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)


class EncodeQueue:
    """Bounded transcode worker pool at the origin (FIFO, deterministic).

    ``submit`` places one encode job of ``cost`` seconds at the earliest
    free worker and returns the instant the encoded variant is ready.
    The wait (worker start − submit time) is recorded for the report's
    encode-wait percentiles.  Zero-cost jobs bypass the pool entirely —
    that is the "encoding disabled" configuration.
    """

    def __init__(self, n_workers: int = 4):
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self.n_workers = int(n_workers)
        self._initial_workers = self.n_workers
        self._free_at = [0.0] * self.n_workers
        self.waits: list[float] = []
        #: core-seconds of transcode work accepted (Σ job cost) — what the
        #: infrastructure cost model bills as encode compute
        self.busy_seconds = 0.0
        #: wired by the fleet driver when tracing; unwired in its finally
        self.tracer = None

    def resize(self, n_workers: int, at_time: float = 0.0) -> None:
        """Grow or shrink the worker pool mid-run (the control-plane hook).

        New workers come free at ``at_time``; shrinking retires the
        *idlest* workers first (earliest free time — a busy worker
        finishes its in-flight encode before leaving).  Recorded waits
        are untouched: the report's percentiles cover the whole run.
        """
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        n_workers = int(n_workers)
        if self.tracer is not None:
            self.tracer.emit(
                float(at_time), EV_ENCODE_RESIZE,
                workers_from=self.n_workers, workers_to=n_workers,
            )
        if n_workers > self.n_workers:
            self._free_at.extend(
                [float(at_time)] * (n_workers - self.n_workers)
            )
        elif n_workers < self.n_workers:
            self._free_at = sorted(self._free_at)[self.n_workers - n_workers:]
        self.n_workers = n_workers

    def reset(self) -> None:
        """Restore as-constructed state: original pool size, all idle."""
        self.n_workers = self._initial_workers
        self._free_at = [0.0] * self.n_workers
        self.waits.clear()
        self.busy_seconds = 0.0

    def submit(self, at_time: float, cost: float) -> float:
        """Ready time of an encode job submitted at ``at_time``."""
        if cost < 0:
            raise ValueError("cost must be non-negative")
        if cost == 0.0:
            return at_time
        worker = min(range(self.n_workers), key=lambda i: (self._free_at[i], i))
        start = max(at_time, self._free_at[worker])
        ready = start + cost
        self._free_at[worker] = ready
        self.waits.append(start - at_time)
        self.busy_seconds += cost
        if self.tracer is not None:
            self.tracer.emit(
                at_time, EV_ENCODE_ENQUEUE, wait=start - at_time,
                workers=self.n_workers,
            )
        return ready

    def busy_at(self, t: float) -> int:
        """Workers still busy with an in-flight encode at virtual ``t``
        (the queue-depth gauge the metrics sampler records)."""
        return sum(1 for free in self._free_at if free > t)

    @property
    def n_jobs(self) -> int:
        return len(self.waits)

    def wait_percentile(self, pct: float) -> float:
        """Nearest-rank percentile of recorded queue waits (0 if no jobs)."""
        return wait_percentile(self.waits, pct)


def wait_percentile(waits: list[float], pct: float) -> float:
    """Nearest-rank percentile of a wait sample (0 if empty).

    The one percentile rule every report path shares — the sharded fleet
    merges per-shard encode waits and must reproduce the single-process
    numbers exactly, so the formula lives here rather than on the queue.
    Half ranks round *up* explicitly (``floor(x + 0.5)``): Python's
    ``round`` is half-to-even, which made p50 over an even sample pick
    the lower or upper neighbor depending on the sample size's parity —
    inconsistent with the documented nearest-rank convention.
    """
    if not 0.0 <= pct <= 100.0:
        raise ValueError("pct must be in [0, 100]")
    if not waits:
        return 0.0
    ordered = sorted(waits)
    rank = int(math.floor(pct / 100.0 * (len(ordered) - 1) + 0.5))
    return ordered[max(0, min(len(ordered) - 1, rank))]


class OriginServer:
    """The origin: encode workers plus the set of variants already encoded.

    Each (video, chunk, density) variant is transcoded once, on first
    request; later cold misses for the same variant reuse it (waiting for
    an in-flight encode to land if need be).  ``encode_seconds`` is the
    service time per chunk variant; 0 disables encode contention.
    """

    def __init__(self, n_encode_workers: int = 4, encode_seconds: float = 0.0):
        if encode_seconds < 0:
            raise ValueError("encode_seconds must be non-negative")
        self.queue = EncodeQueue(n_encode_workers)
        self.encode_seconds = float(encode_seconds)
        self._variants: dict[tuple, float] = {}  # key -> ready time

    def variant_ready(self, key: tuple, at_time: float) -> float:
        """Instant the encoded variant for ``key`` exists (>= ``at_time``).

        Encodes on first request; an already-encoded (or in-flight)
        variant returns its recorded ready time.  With encoding disabled
        (``encode_seconds == 0``) every variant is always available and
        *nothing is recorded* — the function is pure, which is what lets
        the fleet driver dispatch requests out of virtual-time order in
        that configuration (its degenerate-parity mode) without a
        future-dated request planting a phantom ready time that would
        gate an earlier co-watcher.
        """
        if self.encode_seconds == 0.0:
            return at_time
        ready = self._variants.get(key)
        if ready is None:
            ready = self.queue.submit(at_time, self.encode_seconds)
            self._variants[key] = ready
        return max(ready, at_time)

    @property
    def n_encoded(self) -> int:
        return len(self._variants)

    def reset(self) -> None:
        """Restore as-constructed state: no variants, a fresh queue."""
        self.queue.reset()
        self._variants.clear()


@dataclass
class EdgeNode:
    """One edge site: backhaul from origin, access to viewers, chunk cache.

    ``sr_cache`` is the edge's private SR-result cache, populated by
    ``simulate_fleet(..., sr_cache="per-edge")`` (created on demand if
    left ``None``): co-watching viewers of the *same edge* share SR
    results without any cross-edge — and, under the sharded executor,
    cross-process — traffic.
    """

    name: str
    backhaul: SharedLink
    access: SharedLink
    cache: EdgeChunkCache = field(default_factory=EdgeChunkCache)
    sr_cache: "SRResultCache | None" = None

    def __post_init__(self) -> None:
        if self.backhaul is self.access:
            raise ValueError("backhaul and access must be distinct links")
        self.hit_path = NetworkPath((self.access,), name=f"{self.name}:hit")
        self.miss_path = NetworkPath(
            (self.backhaul, self.access), name=f"{self.name}:miss"
        )


@dataclass
class CDNTopology:
    """The serving graph ``simulate_fleet`` schedules flows over.

    ``assignment`` picks the viewer → edge policy (see
    :func:`assign_sessions`).  The origin's encode queue gates cold
    chunk misses; per-edge caches decide hit vs miss paths.

    ``regions`` optionally groups edges into named fault domains —
    ``{"us-east": (0, 1), "us-west": (2, 3)}`` — the blast-radius unit
    :class:`~repro.streaming.faults.RegionOutage` and the
    :class:`~repro.streaming.faults.CorrelatedFaultGenerator` target.
    Each edge belongs to at most one region; edges left out of every
    region simply cannot be hit by a regional fault.  Regions do not
    affect serving or assignment — they exist purely as fault domains
    (and as the granularity of the report's per-region recovery
    metrics).
    """

    edges: tuple[EdgeNode, ...]
    origin: OriginServer = field(default_factory=OriginServer)
    assignment: str = "static"
    regions: dict[str, tuple[int, ...]] | None = None

    def __post_init__(self) -> None:
        if not self.edges:
            raise ValueError("CDNTopology needs at least one edge")
        if self.assignment not in ASSIGNMENT_POLICIES:
            raise ValueError(
                f"unknown assignment policy {self.assignment!r}; "
                f"pick from {ASSIGNMENT_POLICIES}"
            )
        names = [e.name for e in self.edges]
        if len(set(names)) != len(names):
            raise ValueError("edge names must be unique")
        if self.regions is not None:
            self.regions = {
                name: tuple(members)
                for name, members in self.regions.items()
            }
            seen: dict[int, str] = {}
            for name, members in self.regions.items():
                if not name:
                    raise ValueError("region names must be non-empty")
                if not members:
                    raise ValueError(f"region {name!r} has no member edges")
                for edge in members:
                    if not 0 <= edge < len(self.edges):
                        raise ValueError(
                            f"region {name!r} names edge {edge}; topology "
                            f"has {len(self.edges)} edges"
                        )
                    if edge in seen:
                        raise ValueError(
                            f"edge {edge} is in both region {seen[edge]!r} "
                            f"and {name!r}; fault domains must not overlap"
                        )
                    seen[edge] = name

    def region_of(self, edge: int) -> str | None:
        """Name of the fault domain ``edge`` belongs to (None if none)."""
        for name, members in (self.regions or {}).items():
            if edge in members:
                return name
        return None

    def assign(self, sessions) -> list[int]:
        """Edge index for each session under this topology's policy."""
        return assign_sessions(sessions, len(self.edges), self.assignment)

    def reset(self) -> None:
        """Restore as-constructed serving state for a fresh run.

        ``simulate_fleet`` mutates the live topology (warm chunk caches,
        hit/miss/fill counters, encoded variants, recorded encode waits,
        per-link ``delivered_bits``, per-edge SR caches), so a second
        run over the same object would silently report merged stats.
        The fleet driver calls this at start; callers who *want* to
        inspect a run's state must read it before the next run.  Edge
        objects keep their identity — only their mutable serving state
        is cleared; installed per-edge SR caches stay installed, reset.
        """
        for edge in self.edges:
            edge.cache.reset()
            if edge.sr_cache is not None:
                edge.sr_cache.reset()
            edge.backhaul.delivered_bits = 0.0
            edge.access.delivered_bits = 0.0
        self.origin.reset()


def _stable_hash(text: str) -> int:
    """Deterministic string hash (builtin ``hash`` is salted per process)."""
    return zlib.crc32(text.encode("utf-8"))


def assign_sessions(sessions, n_edges: int, policy: str) -> list[int]:
    """Viewer → edge assignment under one of :data:`ASSIGNMENT_POLICIES`.

    * ``static`` — geo-hash of the viewer index: stable and load/content
      blind, the classic DNS-style mapping;
    * ``least-loaded`` — greedy minimum occupancy, viewers considered in
      join order (ties: earlier session index, then lower edge index);
    * ``popularity`` — content affinity: every viewer of a video lands on
      the same edge, so one fill serves the whole co-watching audience.
    """
    if n_edges <= 0:
        raise ValueError("n_edges must be positive")
    if policy not in ASSIGNMENT_POLICIES:
        raise ValueError(
            f"unknown assignment policy {policy!r}; pick from {ASSIGNMENT_POLICIES}"
        )
    if policy == "static":
        return [_stable_hash(f"viewer-{i}") % n_edges for i in range(len(sessions))]
    if policy == "popularity":
        return [_stable_hash(s.spec.name) % n_edges for s in sessions]
    # least-loaded: greedy in join order.
    load = [0] * n_edges
    out = [0] * len(sessions)
    order = sorted(range(len(sessions)), key=lambda i: (sessions[i].join_time, i))
    for i in order:
        edge = min(range(n_edges), key=lambda e: (load[e], e))
        out[i] = edge
        load[edge] += 1
    return out


def uniform_cdn(
    n_edges: int,
    *,
    access_mbps: float,
    backhaul_mbps: float,
    duration: float = 600.0,
    access_rtt: float = 0.010,
    backhaul_rtt: float = 0.020,
    cache_bytes: int = 1 << 30,
    policy: str = "fair",
    assignment: str = "static",
    n_encode_workers: int = 4,
    encode_seconds: float = 0.0,
    n_regions: int | None = None,
) -> CDNTopology:
    """A symmetric CDN: ``n_edges`` identical edges on stable links.

    Each edge gets its own backhaul and access :class:`SharedLink` (no
    cross-edge contention — the origin uplink is assumed provisioned);
    the interesting contention is per-edge fan-in plus the shared encode
    worker pool.

    ``n_regions`` optionally splits the edges into that many contiguous
    fault domains named ``region-0`` … ``region-{n-1}`` (as even as the
    division allows, earlier regions taking the remainder) — the handy
    way to get a regional topology for chaos scenarios.
    """
    if n_edges <= 0:
        raise ValueError("n_edges must be positive")
    regions = None
    if n_regions is not None:
        if not 0 < n_regions <= n_edges:
            raise ValueError(
                f"n_regions must be in [1, n_edges], got {n_regions}"
            )
        base, extra = divmod(n_edges, n_regions)
        regions, lo = {}, 0
        for r in range(n_regions):
            hi = lo + base + (1 if r < extra else 0)
            regions[f"region-{r}"] = tuple(range(lo, hi))
            lo = hi
    edges = tuple(
        EdgeNode(
            name=f"edge-{i}",
            backhaul=SharedLink(
                stable_trace(backhaul_mbps, duration=duration, rtt=backhaul_rtt),
                policy=policy,
            ),
            access=SharedLink(
                stable_trace(access_mbps, duration=duration, rtt=access_rtt),
                policy=policy,
            ),
            cache=EdgeChunkCache(capacity_bytes=cache_bytes),
        )
        for i in range(n_edges)
    )
    origin = OriginServer(
        n_encode_workers=n_encode_workers, encode_seconds=encode_seconds
    )
    return CDNTopology(
        edges=edges, origin=origin, assignment=assignment, regions=regions
    )
