"""Multi-session fleet simulator: N clients on one bottleneck link.

The paper's evaluation (§7.4–§7.5) is single-client.  Serving heavy
traffic means many concurrent sessions contending for shared bandwidth, so
this module runs a *fleet* of :class:`~repro.streaming.simulator.SessionMachine`
state machines against one :class:`~repro.net.link.SharedLink` in virtual
time:

* each session joins at its own ``join_time`` and runs its own ABR
  controller and SR latency model;
* the link splits capacity among in-flight downloads with a configurable
  policy (``fair`` processor sharing or ``weighted`` by session weight);
* an optional :class:`SRResultCache` shares super-resolution results
  across co-watching sessions of the same video, so the Nth viewer of a
  popular chunk pays nothing for SR — the amortization lever that makes
  client-assist serving scale;
* the result is every per-session :class:`SessionResult` plus a
  :class:`FleetReport` of the aggregates an operator watches (mean/p5/p95
  QoE, stall ratio, cache hit rate, delivered bytes).

Everything is deterministic given (session specs, trace, policy): the
scheduler resolves simultaneous events by session id.  A fleet of one
session reproduces :func:`~repro.streaming.simulator.simulate_session`
bit-exactly (enforced by the parity test).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..metrics.qoe import QoEWeights, aggregate_qoe
from ..net.link import SharedLink
from ..net.traces import NetworkTrace
from .abr import AbrController, SRQualityModel
from .chunks import VideoSpec
from .latency import SRLatency, ZERO_LATENCY
from .simulator import (
    AbandonPolicy,
    DecisionRequest,
    DownloadRequest,
    SessionConfig,
    SessionMachine,
    SessionResult,
)

__all__ = [
    "FleetSession",
    "SRResultCache",
    "FleetReport",
    "FleetResult",
    "simulate_fleet",
]


@dataclass
class FleetSession:
    """One client in a fleet: content, controller, join time, link weight.

    Controllers may be shared across sessions (the ABR classes are
    stateless between ``decide`` calls) or instantiated per session.
    ``weight`` only matters under the ``weighted`` sharing policy — e.g.
    premium tiers or operator-prioritized flows.
    """

    spec: VideoSpec
    controller: AbrController
    sr_latency: SRLatency = ZERO_LATENCY
    quality_model: SRQualityModel | None = None
    config: SessionConfig | None = None
    qoe_weights: QoEWeights | None = None
    join_time: float = 0.0
    weight: float = 1.0
    #: viewer stall patience; None = never abandons
    churn: AbandonPolicy | None = None

    def __post_init__(self) -> None:
        if self.join_time < 0:
            raise ValueError("join_time must be non-negative")
        if self.weight <= 0:
            raise ValueError("weight must be positive")


class SRResultCache:
    """LRU cache of finished SR computations, shared across sessions.

    Keyed by (video, chunk index, fetch density, SR ratio) — the tuple that
    fully determines an SR output in the simulator.  An entry carries the
    virtual time its computation finished: a session hits only if the
    result already exists *at the moment its SR would start* (a result
    still being computed by another session is not shared — the simpler,
    deterministic model; hits then cost zero SR time).
    """

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._entries: OrderedDict[tuple, float] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def acquire(self, key: tuple, at_time: float, cost: float) -> float:
        """SR cost actually paid by a session needing ``key`` at ``at_time``.

        Returns 0.0 on a hit; on a miss, records the result as ready at
        ``at_time + cost`` and returns ``cost``.
        """
        ready = self._entries.get(key)
        if ready is not None and ready <= at_time:
            self._entries.move_to_end(key)
            self.hits += 1
            return 0.0
        self.misses += 1
        # Keep whichever computation finishes first: a slower recompute must
        # not push back a result another session already has in flight.
        done = at_time + cost
        if ready is None or done < ready:
            self._entries[key] = done
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return cost

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(frozen=True)
class FleetReport:
    """Aggregate service health over one fleet run."""

    n_sessions: int
    mean_qoe: float
    p5_qoe: float
    p95_qoe: float
    stall_ratio: float
    total_stall_seconds: float
    total_bytes: int
    mean_quality: float
    cache_hit_rate: float
    makespan: float  # virtual seconds, first join → last download completion
    n_abandoned: int = 0
    abandon_rate: float = 0.0


@dataclass
class FleetResult:
    """Per-session outcomes plus the fleet-level report."""

    sessions: list[SessionResult]
    report: FleetReport
    sr_cache: SRResultCache | None = None
    session_specs: list[FleetSession] = field(default_factory=list)


def _batched_decisions(
    machines: list[SessionMachine], session_ids: list[int]
) -> list[tuple[int, DownloadRequest]]:
    """Resolve every machine parked on a :class:`DecisionRequest`.

    Machines sharing a controller object are decided in one vectorized
    ``decide_batch`` array pass (the MPC classes evaluate the whole
    (session, candidate, horizon) tensor at once); per-session controllers
    degrade to batches of one.  Decisions are pure functions of their
    context, so batching cannot change any session's outcome.  Returns the
    download request each decision unblocked.
    """
    by_controller: dict[int, list[int]] = {}
    for sid in session_ids:
        by_controller.setdefault(id(machines[sid].controller), []).append(sid)
    out: list[tuple[int, DownloadRequest]] = []
    for ids in by_controller.values():
        controller = machines[ids[0]].controller
        ctxs = []
        for sid in ids:
            pending = machines[sid].pending
            assert isinstance(pending, DecisionRequest)
            ctxs.append(pending.ctx)
        for sid, decision in zip(ids, controller.decide_batch(ctxs)):
            req = machines[sid].advance(decision)
            # A decision is always followed by the chunk's transfer.
            assert isinstance(req, DownloadRequest)
            out.append((sid, req))
    return out


def simulate_fleet(
    sessions: list[FleetSession],
    trace: NetworkTrace,
    policy: str = "fair",
    sr_cache: SRResultCache | None = None,
) -> FleetResult:
    """Run a fleet of sessions over one shared bottleneck link.

    The scheduler advances virtual time event to event: it asks the link
    for the next instant its fluid bandwidth allocation can change,
    advances every in-flight download to that instant, and resumes each
    session whose transfer finished — which runs that session's ABR/buffer
    logic forward until it suspends on its next request.  Sessions that
    suspend on an ABR decision are parked for the rest of the event step
    and resolved together in one vectorized ``decide_batch`` call per
    shared controller.
    """
    if not sessions:
        raise ValueError("fleet needs at least one session")
    machines = [
        SessionMachine(
            s.spec,
            s.controller,
            sr_latency=s.sr_latency,
            quality_model=s.quality_model,
            config=s.config,
            qoe_weights=s.qoe_weights,
            start_time=s.join_time,
            sr_cache=sr_cache,
            churn=s.churn,
        )
        for s in sessions
    ]
    link = SharedLink(trace, policy=policy)

    def queue(sid: int, req: DownloadRequest) -> None:
        link.add_flow(sid, req.nbytes, req.start_time, weight=sessions[sid].weight)

    # Every session needs its first ABR decision at join time — the widest
    # batch of the run (startup-bytes sessions enter via a transfer first).
    first_decisions = []
    for sid, machine in enumerate(machines):
        if isinstance(machine.pending, DownloadRequest):
            queue(sid, machine.pending)
        elif isinstance(machine.pending, DecisionRequest):
            first_decisions.append(sid)
    for sid, req in _batched_decisions(machines, first_decisions):
        queue(sid, req)

    now = 0.0
    end_times = [0.0] * len(machines)
    while link.busy():
        t = link.next_event(now)
        needs_decision: list[int] = []
        for done in link.advance(now, t):
            req = machines[done.flow_id].advance(done.elapsed)
            if isinstance(req, DecisionRequest):
                needs_decision.append(done.flow_id)
            elif req is not None:
                queue(done.flow_id, req)
            else:
                end_times[done.flow_id] = done.finish_time
        for sid, req in _batched_decisions(machines, needs_decision):
            queue(sid, req)
        now = t

    results = [m.result for m in machines]
    assert all(r is not None for r in results), "fleet left unfinished sessions"
    agg = aggregate_qoe(
        [r.qoe for r in results],
        [r.stall_seconds for r in results],
        [r.watched_seconds for r in results],
    )
    first_join = min(s.join_time for s in sessions)
    n_abandoned = sum(1 for r in results if r.abandoned)
    report = FleetReport(
        n_sessions=len(results),
        mean_qoe=agg["mean_qoe"],
        p5_qoe=agg["p5_qoe"],
        p95_qoe=agg["p95_qoe"],
        stall_ratio=agg["stall_ratio"],
        total_stall_seconds=agg["total_stall_seconds"],
        total_bytes=sum(r.total_bytes for r in results),
        mean_quality=sum(r.mean_quality for r in results) / len(results),
        cache_hit_rate=sr_cache.hit_rate if sr_cache is not None else 0.0,
        makespan=max(end_times) - first_join,
        n_abandoned=n_abandoned,
        abandon_rate=n_abandoned / len(results),
    )
    return FleetResult(
        sessions=results,
        report=report,
        sr_cache=sr_cache,
        session_specs=list(sessions),
    )
