"""Multi-session fleet simulator: N clients on a shared serving topology.

The paper's evaluation (§7.4–§7.5) is single-client.  Serving heavy
traffic means many concurrent sessions contending for shared bandwidth, so
this module runs a *fleet* of :class:`~repro.streaming.simulator.SessionMachine`
state machines against a shared network in virtual time:

* each session joins at its own ``join_time`` and runs its own ABR
  controller and SR latency model;
* every transfer is scheduled per hop through a
  :class:`~repro.net.topology.PathScheduler` — the classic single
  bottleneck is the degenerate one-hop path, and a
  :class:`~repro.streaming.cdn.CDNTopology` routes each viewer over its
  edge's access link (cache hit) or the origin → edge → viewer two-hop
  path (miss), gated by the origin's bounded encode queue;
* each link splits capacity among in-flight downloads with a configurable
  policy (``fair`` processor sharing or ``weighted`` by session weight);
* an optional :class:`SRResultCache` shares super-resolution results
  across co-watching sessions of the same video, so the Nth viewer of a
  popular chunk pays nothing for SR — the amortization lever that makes
  client-assist serving scale;
* the result is every per-session :class:`SessionResult` plus a
  :class:`FleetReport` of the aggregates an operator watches (mean/p5/p95
  QoE, stall ratio, cache hit rates, origin egress, encode-queue waits,
  delivered bytes).

Everything is deterministic given (session specs, trace/topology, policy):
the scheduler resolves simultaneous events by session id.  A fleet of one
session reproduces :func:`~repro.streaming.simulator.simulate_session`
bit-exactly, and a degenerate one-edge topology on an unconstrained
backhaul reproduces the bare single-link fleet bit-exactly (both enforced
by parity tests).
"""

from __future__ import annotations

import heapq
import math
from collections import OrderedDict
from dataclasses import dataclass, field, replace as dc_replace
from typing import TYPE_CHECKING

from ..metrics.qoe import QoEWeights, aggregate_qoe
from ..obs.events import (
    EV_CHUNK_COMPLETE,
    EV_CHUNK_DECISION,
    EV_CHUNK_FETCH,
    EV_CHUNK_RETRY,
    EV_CHUNK_STALL,
    EV_OUTAGE_EVACUATE,
    EV_RETRY_HEDGE,
    EV_RETRY_TIMEOUT,
    EV_SESSION_ABANDON,
    EV_SESSION_FINISH,
    EV_SESSION_RESTEER,
    EV_SESSION_START,
)
from ..obs.profiler import NULL_PROFILER
from ..net.link import SharedLink
from ..net.topology import NetworkPath, PathScheduler
from ..net.traces import NetworkTrace
from .cdn import CDNTopology, wait_percentile
from .abr import AbrController, SRQualityModel
from .chunks import VideoSpec
from .columnar import NEEDS_DECISION, ColumnarFleet
from .control import ControlPlane, FleetView, RecoveryTracker
from .faults import DegradedTrace, FaultSchedule, RetryPolicy
from .latency import SRLatency, ZERO_LATENCY
from .simulator import (
    AbandonPolicy,
    DecisionRequest,
    DownloadRequest,
    SessionConfig,
    SessionMachine,
    SessionResult,
)
from .spec import FleetSpec

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from ..obs import Telemetry
    from .cost import CostModel, CostReport

__all__ = [
    "FleetSession",
    "SRResultCache",
    "FleetReport",
    "FleetResult",
    "OpsStats",
    "simulate_fleet",
]

#: Stall weight in the control plane's health signal — matches the default
#: :class:`~repro.metrics.qoe.QoEWeights` gamma, so "health" tracks the
#: same trade-off the QoE report scores.
_HEALTH_STALL_WEIGHT = 2.0

#: Monitor cadence (virtual seconds) when faults are injected without a
#: controller — the recovery tracker still needs samples.
_DEFAULT_SAMPLE_INTERVAL = 1.0

#: How an in-flight download's bytes were charged at dispatch — the class
#: of counter an outage cancellation must credit back (see ``live_req``).
_CHARGE_HIT = 0
_CHARGE_ORIGIN = 1
_CHARGE_COALESCED = 2


@dataclass
class FleetSession:
    """One client in a fleet: content, controller, join time, link weight.

    Controllers may be shared across sessions (the ABR classes are
    stateless between ``decide`` calls) or instantiated per session.
    ``weight`` only matters under the ``weighted`` sharing policy — e.g.
    premium tiers or operator-prioritized flows.
    """

    spec: VideoSpec
    controller: AbrController
    sr_latency: SRLatency = ZERO_LATENCY
    quality_model: SRQualityModel | None = None
    config: SessionConfig | None = None
    qoe_weights: QoEWeights | None = None
    join_time: float = 0.0
    weight: float = 1.0
    #: viewer stall patience; None = never abandons
    churn: AbandonPolicy | None = None

    def __post_init__(self) -> None:
        if self.join_time < 0:
            raise ValueError("join_time must be non-negative")
        if self.weight <= 0:
            raise ValueError("weight must be positive")


class SRResultCache:
    """LRU cache of finished SR computations, shared across sessions.

    Keyed by (video, chunk index, fetch density, SR ratio) — the tuple that
    fully determines an SR output in the simulator.  An entry carries the
    virtual time its computation finished: a session hits only if the
    result already exists *at the moment its SR would start* (a result
    still being computed by another session is not shared — the simpler,
    deterministic model; hits then cost zero SR time).
    """

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._entries: OrderedDict[tuple, float] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def acquire(self, key: tuple, at_time: float, cost: float) -> float:
        """SR cost actually paid by a session needing ``key`` at ``at_time``.

        Returns 0.0 on a hit; on a miss, records the result as ready at
        ``at_time + cost`` and returns ``cost``.
        """
        ready = self._entries.get(key)
        if ready is not None and ready <= at_time:
            self._entries.move_to_end(key)
            self.hits += 1
            return 0.0
        self.misses += 1
        # Keep whichever computation finishes first: a slower recompute must
        # not push back a result another session already has in flight.
        done = at_time + cost
        if ready is None or done < ready:
            self._entries[key] = done
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return cost

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        """Return to the as-constructed state (entries and counters)."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(frozen=True)
class FleetReport:
    """Aggregate service health over one fleet run.

    The CDN fields are populated when the fleet ran over a
    :class:`~repro.streaming.cdn.CDNTopology`; on a bare link every byte
    comes from the origin, so ``origin_egress_bytes == total_bytes`` and
    the edge/encode fields stay at their defaults.
    """

    n_sessions: int
    mean_qoe: float
    p5_qoe: float
    p95_qoe: float
    stall_ratio: float
    total_stall_seconds: float
    total_bytes: int
    mean_quality: float
    cache_hit_rate: float
    makespan: float  # virtual seconds, first join → last download completion
    n_abandoned: int = 0
    abandon_rate: float = 0.0
    #: per-edge SR-result hit rates (``sr_cache="per-edge"`` only),
    #: topology edge order; ``cache_hit_rate`` is then request-weighted
    #: across the edges
    sr_edge_hit_rates: tuple[float, ...] = ()
    #: bytes that crossed an origin → edge backhaul (cold misses + startup)
    origin_egress_bytes: int = 0
    #: chunk misses that attached to an in-flight fill (request coalescing)
    coalesced_fills: int = 0
    #: bytes those coalesced requests delivered without touching the origin
    coalesced_bytes: int = 0
    #: request-weighted hit rate across all edge chunk caches
    edge_hit_rate: float = 0.0
    #: per-edge chunk-cache hit rates, topology edge order
    edge_hit_rates: tuple[float, ...] = ()
    #: encode-queue wait percentiles over cold chunk variants (seconds)
    encode_wait_p50: float = 0.0
    encode_wait_p95: float = 0.0
    # -- control plane / fault injection (defaults = no faults, no controller)
    #: viewers moved to another edge (outage failover + controller re-steers)
    sessions_resteered: int = 0
    #: fault events the run was configured with
    faults_injected: int = 0
    #: control-plane intervals that actually fired
    control_ticks: int = 0
    #: encode-pool resize actions the controller issued
    encode_pool_resizes: int = 0
    #: health drop below the pre-fault baseline (QoE-per-chunk units)
    qoe_dip_depth: float = 0.0
    #: virtual seconds from first fault to health back within tolerance of
    #: baseline; 0.0 = no measurable dip, ``inf`` = never recovered in-run
    time_to_recover_s: float = 0.0
    # -- client resilience (RetryPolicy / gray failures) -------------------
    #: transfer attempts re-issued after an outage evacuation, a retry
    #: timeout, or a gray-failure drop
    chunk_retries: int = 0
    #: attempts a :class:`~repro.streaming.faults.RetryPolicy` virtual-time
    #: timeout cancelled
    requests_timed_out: int = 0
    #: timed-out requests whose retry hedged to a second live edge
    requests_hedged: int = 0
    #: bytes dispatched through a :class:`~repro.streaming.faults.GrayFailure`
    #: capacity window (served degraded, not lost)
    gray_degraded_bytes: int = 0
    #: completions by failed-attempt count: element ``k-1`` = chunks
    #: delivered after exactly ``k`` failed attempts (drops, timeouts,
    #: evacuations); chunks delivered first try are not listed
    retry_attempts: tuple[int, ...] = ()
    #: per fault domain ``(region, qoe_dip_depth, time_to_recover_s)``,
    #: sorted by region name — populated when the topology declares
    #: regions and faults were injected
    region_recovery: tuple[tuple[str, float, float], ...] = ()
    #: origin transcode core-seconds actually occupied (encode-queue busy
    #: time summed over jobs) — what the cost model prices as compute
    encode_core_seconds: float = 0.0
    #: infrastructure bill (attached when the run carried a
    #: :class:`~repro.streaming.cost.CostModel`; None otherwise, so
    #: uncosted runs stay field-for-field comparable across engines)
    cost: "CostReport | None" = None


@dataclass(frozen=True)
class OpsStats:
    """Control-plane and fault-recovery aggregates for one fleet run.

    Carried separately from the plain serving aggregates so the sharded
    executor can merge them explicitly; :func:`build_fleet_report` folds
    them into the :class:`FleetReport` fields of the same names.
    """

    sessions_resteered: int = 0
    faults_injected: int = 0
    control_ticks: int = 0
    encode_pool_resizes: int = 0
    qoe_dip_depth: float = 0.0
    time_to_recover_s: float = 0.0
    chunk_retries: int = 0
    requests_timed_out: int = 0
    requests_hedged: int = 0
    gray_degraded_bytes: int = 0
    retry_attempts: tuple[int, ...] = ()
    region_recovery: tuple[tuple[str, float, float], ...] = ()


@dataclass
class FleetResult:
    """Per-session outcomes plus the fleet-level report."""

    sessions: list[SessionResult]
    report: FleetReport
    sr_cache: SRResultCache | None = None
    session_specs: list[FleetSession] = field(default_factory=list)
    #: the serving topology the fleet ran over (None = bare single link)
    topology: CDNTopology | None = None
    #: viewer → edge index per session (empty without a topology)
    assignment: list[int] = field(default_factory=list)
    #: per-session virtual completion instants (last download finish),
    #: session order — what the sharded executor merges makespans from
    end_times: list[float] = field(default_factory=list)


def _batched_decisions(
    machines: list[SessionMachine], session_ids: list[int], clamp=None
) -> list[tuple[int, DownloadRequest]]:
    """Resolve every machine parked on a :class:`DecisionRequest`.

    Machines sharing a controller object are decided in one vectorized
    ``decide_batch`` array pass (the MPC classes evaluate the whole
    (session, candidate, horizon) tensor at once); per-session controllers
    degrade to batches of one.  Decisions are pure functions of their
    context, so batching cannot change any session's outcome.  Returns the
    download request each decision unblocked.  ``clamp``, when given,
    rewrites each decision before the machine advances on it — the
    control plane's graceful-degradation levers (quality cap, SR off);
    the columnar engine applies the identical callable at the same point.
    """
    by_controller: dict[int, list[int]] = {}
    for sid in session_ids:
        by_controller.setdefault(id(machines[sid].controller), []).append(sid)
    out: list[tuple[int, DownloadRequest]] = []
    for ids in by_controller.values():
        controller = machines[ids[0]].controller
        ctxs = []
        for sid in ids:
            pending = machines[sid].pending
            assert isinstance(pending, DecisionRequest)
            ctxs.append(pending.ctx)
        for sid, decision in zip(ids, controller.decide_batch(ctxs)):
            if clamp is not None:
                decision = clamp(decision)
            req = machines[sid].advance(decision)
            # A decision is always followed by the chunk's transfer.
            assert isinstance(req, DownloadRequest)
            out.append((sid, req))
    return out


def build_fleet_report(
    results: list[SessionResult],
    sessions: list[FleetSession],
    end_times: list[float],
    *,
    origin_egress: int | None,
    edge_stats: list[tuple[int, int, int, int]],
    edge_hit_rates: tuple[float, ...],
    encode_waits: list[float],
    sr_hits: int,
    sr_misses: int,
    sr_edge_hit_rates: tuple[float, ...],
    ops: OpsStats | None = None,
    encode_core_seconds: float = 0.0,
) -> FleetReport:
    """One :class:`FleetReport` from plain per-run aggregates.

    The single aggregation rulebook: :func:`simulate_fleet` feeds it the
    statistics read off its live topology objects, the sharded executor
    (:mod:`repro.streaming.shard`) feeds it the merged per-shard sums —
    both paths share every formula, which is what the ``workers=1``
    bit-exact parity rests on.  ``edge_stats`` rows are ``(hits, misses,
    coalesced, coalesced_bytes)`` in topology edge order;
    ``origin_egress=None`` means "no edges — every byte left the origin"
    (the single-link mode).  ``ops`` carries the control-plane / fault
    aggregates when the run injected faults or ran a controller.
    """
    if ops is None:
        ops = OpsStats()
    agg = aggregate_qoe(
        [r.qoe for r in results],
        [r.stall_seconds for r in results],
        [r.watched_seconds for r in results],
    )
    first_join = min(s.join_time for s in sessions)
    n_abandoned = sum(1 for r in results if r.abandoned)
    total_bytes = sum(r.total_bytes for r in results)
    lookups = sum(h + m for h, m, _, _ in edge_stats)
    edge_hits = sum(h for h, _, _, _ in edge_stats)
    sr_total = sr_hits + sr_misses
    return FleetReport(
        n_sessions=len(results),
        mean_qoe=agg["mean_qoe"],
        p5_qoe=agg["p5_qoe"],
        p95_qoe=agg["p95_qoe"],
        stall_ratio=agg["stall_ratio"],
        total_stall_seconds=agg["total_stall_seconds"],
        total_bytes=total_bytes,
        mean_quality=sum(r.mean_quality for r in results) / len(results),
        cache_hit_rate=sr_hits / sr_total if sr_total else 0.0,
        makespan=max(end_times) - first_join,
        n_abandoned=n_abandoned,
        abandon_rate=n_abandoned / len(results),
        sr_edge_hit_rates=sr_edge_hit_rates,
        origin_egress_bytes=(
            total_bytes if origin_egress is None else origin_egress
        ),
        coalesced_fills=sum(c for _, _, c, _ in edge_stats),
        coalesced_bytes=sum(b for _, _, _, b in edge_stats),
        edge_hit_rate=edge_hits / lookups if lookups else 0.0,
        edge_hit_rates=edge_hit_rates,
        encode_wait_p50=wait_percentile(encode_waits, 50.0),
        encode_wait_p95=wait_percentile(encode_waits, 95.0),
        sessions_resteered=ops.sessions_resteered,
        faults_injected=ops.faults_injected,
        control_ticks=ops.control_ticks,
        encode_pool_resizes=ops.encode_pool_resizes,
        qoe_dip_depth=ops.qoe_dip_depth,
        time_to_recover_s=ops.time_to_recover_s,
        chunk_retries=ops.chunk_retries,
        requests_timed_out=ops.requests_timed_out,
        requests_hedged=ops.requests_hedged,
        gray_degraded_bytes=ops.gray_degraded_bytes,
        retry_attempts=ops.retry_attempts,
        region_recovery=ops.region_recovery,
        encode_core_seconds=encode_core_seconds,
    )


def _chunk_key(req: DownloadRequest) -> tuple | None:
    """Edge-cache / encode-queue key of a cacheable chunk request.

    Density is rounded like the SR-result cache key so float planner
    jitter cannot split one encoded variant into many.
    """
    if req.chunk_index is None:
        return None
    assert req.density is not None
    return (req.video, req.chunk_index, round(req.density, 3))


class _FleetSampler:
    """Interval health sampler, optionally recording into a registry.

    Health is QoE-per-chunk over the chunks completed since the previous
    sample, with the default stall weight — sequential float arithmetic
    identical to the pre-telemetry ``_health_sample`` closure, so running
    with a metrics registry attached (or none) cannot perturb the value
    the control plane's :class:`~repro.streaming.control.FleetView` and
    the :class:`~repro.streaming.control.RecoveryTracker` read.  When a
    registry is present every sample also lands in its ``fleet.health``
    time series — the single source downstream consumers read.
    """

    __slots__ = ("_prev", "_series")

    def __init__(self, registry) -> None:
        self._prev = (0, 0.0, 0.0)
        self._series = (
            registry.timeseries("fleet.health")
            if registry is not None
            else None
        )

    def health_sample(
        self, t: float, chunks: int, qsum: float, stall: float
    ) -> float | None:
        """Health over the interval ending at ``t``; None when no chunk
        landed in it (nothing to score)."""
        d_chunks = chunks - self._prev[0]
        d_qsum = qsum - self._prev[1]
        d_stall = stall - self._prev[2]
        self._prev = (chunks, qsum, stall)
        if d_chunks == 0:
            return None
        health = (d_qsum - _HEALTH_STALL_WEIGHT * d_stall) / d_chunks
        if self._series is not None:
            self._series.record(t, health)
        return health


class _RetryState:
    """Client-resilience bookkeeping for one fleet run.

    Folds the old standalone ``retry_offset`` dict (sunk virtual seconds
    on attempts an outage killed) together with the attempt counters the
    :class:`~repro.streaming.faults.RetryPolicy` machinery needs, so
    every failure path — evacuation, timeout, gray drop — shares one
    accounting contract:

    * ``offset[sid]`` — virtual seconds session ``sid`` already spent on
      failed attempts of its *current* request (including backoff
      waits); added to the elapsed time of the attempt that finally
      completes, so the session's buffer math sees the true wall span.
      **Audit note (chained outages / abandonment):** an entry is
      created only when a live attempt is killed and consumed exactly
      once, at the next completion of that session — chained outages
      accumulate into one entry whose sum telescopes to
      ``final_finish - first_issue``; a session that abandons *at* the
      completing attempt has already consumed its entry (abandonment is
      decided inside ``advance`` after elapsed is applied); and since
      every re-issued request either completes or is re-killed into the
      same entry, no entry can outlive the run
      (``test_faults.py::TestRetryOffsetAccounting`` pins all three).
    * ``attempts[sid]`` — failed attempts on the current request; popped
      into ``histogram`` (attempt count → completions) when the request
      finally lands.  Feeds the ``max_attempts`` budget and the
      report's ``retry_attempts`` tuple.
    * counters — ``retries`` (every re-issued attempt), ``timed_out``,
      ``hedged``, and ``gray_bytes`` (bytes dispatched through a gray
      capacity window; cancelled attempts credit theirs back).
    """

    __slots__ = (
        "offset", "attempts", "histogram", "retries", "timed_out",
        "hedged", "gray_bytes",
    )

    def __init__(self) -> None:
        self.offset: dict[int, float] = {}
        self.attempts: dict[int, int] = {}
        self.histogram: dict[int, int] = {}
        self.retries = 0
        self.timed_out = 0
        self.hedged = 0
        self.gray_bytes = 0

    def add_attempt(self, sid: int) -> int:
        """Count one failed attempt for ``sid``; returns the new count."""
        n = self.attempts.get(sid, 0) + 1
        self.attempts[sid] = n
        self.retries += 1
        return n

    def complete(self, sid: int) -> float:
        """Close ``sid``'s current request: fold its failed-attempt count
        into the histogram and return (consuming) its sunk time."""
        n = self.attempts.pop(sid, 0)
        if n:
            self.histogram[n] = self.histogram.get(n, 0) + 1
        return self.offset.pop(sid, 0.0)

    def attempt_counts(self) -> tuple[int, ...]:
        """Dense histogram tuple: element ``k-1`` = completions that took
        exactly ``k`` failed attempts."""
        if not self.histogram:
            return ()
        top = max(self.histogram)
        return tuple(self.histogram.get(k, 0) for k in range(1, top + 1))


def simulate_fleet(
    sessions: list[FleetSession],
    trace: NetworkTrace | None = None,
    policy: str = "fair",
    sr_cache: SRResultCache | str | None = None,
    topology: CDNTopology | None = None,
    engine: str | None = None,
    assignment: list[int] | None = None,
    faults: FaultSchedule | None = None,
    controller: ControlPlane | None = None,
    fleet_engine: str | None = None,
    telemetry: "Telemetry | None" = None,
    *,
    retry_policy: RetryPolicy | None = None,
    scheduler_engine: str | None = None,
    session_engine: str | None = None,
    cost_model: "CostModel | None" = None,
    spec: FleetSpec | None = None,
) -> FleetResult:
    """Run a fleet of sessions over a shared serving topology.

    Configuration lives in a :class:`~repro.streaming.spec.FleetSpec` —
    pass one as ``spec=`` — or in the historical loose keywords, which a
    thin shim folds into the identical spec (the two call forms are
    bit-exact by construction; mixing them is rejected).  All
    cross-field validation happens once, in
    :meth:`~repro.streaming.spec.FleetSpec.validate`.

    Exactly one of ``trace`` (the classic single bottleneck link, run as
    a one-hop path) and ``topology`` (a CDN: per-edge caches, backhaul +
    access hops, origin encode contention) must be given.  ``policy``
    configures the single link; a topology's links carry their own
    sharing policies, so combining it with a non-default ``policy`` is
    rejected rather than silently ignored.  ``scheduler_engine`` selects
    the :class:`~repro.net.topology.PathScheduler` implementation
    (``"vector"`` array math by default, ``"scalar"`` the bit-exact
    reference oracle); its deprecated alias ``engine=`` still works and
    warns.

    ``session_engine`` (deprecated alias ``fleet_engine=``) selects the
    *session* layer independently of the network scheduler:
    ``"machine"`` (default) advances one
    :class:`~repro.streaming.simulator.SessionMachine` generator per
    viewer and is the bit-exact oracle; ``"columnar"`` runs the same
    transitions over the struct-of-arrays
    :class:`~repro.streaming.columnar.ColumnarFleet` state — no
    per-session generators, contexts, or record objects on the hot loop —
    and must reproduce the machine engine result for result (the sixth
    oracle-parity instance, ``tests/streaming/test_columnar.py``).
    Every serving mode runs on both engines, faults included: outage
    evacuation, retry timeouts, and hedging read finished flags and swap
    SR caches through engine-agnostic accessors, and the machine engine
    stays the bit-exact oracle for the fault paths (the ninth parity
    instance, ``tests/streaming/test_faults.py``).

    ``cost_model`` attaches a :class:`~repro.streaming.cost.CostModel`'s
    dollarization of the run to ``report.cost`` (see
    :func:`~repro.streaming.cost.attach_cost`); pricing happens after
    the run from the report's own counters, so it cannot perturb the
    simulation.

    ``sr_cache`` may be a shared :class:`SRResultCache`, ``None`` (no SR
    sharing), or the string ``"per-edge"`` (topology mode only): each
    :class:`~repro.streaming.cdn.EdgeNode` then carries its own SR-result
    cache, sessions share SR work only with co-watchers on their edge,
    and the report gains per-edge SR hit rates — the configuration the
    process-parallel shard executor runs, since it needs no cross-shard
    cache traffic.

    ``assignment`` overrides the topology's viewer → edge policy with a
    precomputed per-session edge index.  The shard executor uses this to
    pin a sub-fleet to the assignment computed over the *full* session
    list (the ``static`` policy hashes the session's position, so
    re-deriving it on a re-indexed subset would disagree).

    The scheduler advances virtual time event to event: it asks the path
    scheduler for the next instant any link's fluid allocation can
    change, advances every in-flight download to that instant, and
    resumes each session whose transfer finished — which runs that
    session's ABR/buffer logic forward until it suspends on its next
    request.  Sessions that suspend on an ABR decision are parked for the
    rest of the event step and resolved together in one vectorized
    ``decide_batch`` call per shared controller.

    Under a topology, each chunk request consults its edge's cache at
    request time: a hit travels the one-hop access path; a miss waits for
    the origin to have the encoded variant (bounded encode workers),
    travels backhaul + access, and fills the edge cache when the transfer
    completes.

    ``faults`` injects chaos events (topology mode only): edge outages
    cancel the dead edge's in-flight transfers, fail its viewers over to
    the least-loaded live edge and restart the edge cold; region outages
    resolve through the topology's fault domains and take every member
    edge down together (and the report gains per-region recovery
    metrics, attributed by each session's home edge); gray failures
    brown out an edge's access capacity through the same
    :class:`~repro.streaming.faults.DegradedTrace` window machinery and
    deterministically drop a fraction of its dispatches, each drop
    retrying after ``drop_delay_s``; backhaul degradations scale an
    edge's backhaul trace; flash-crowd entries only inform the recovery
    metrics (materialize their sessions first via
    :meth:`~repro.streaming.faults.FaultSchedule.expand_population`).

    ``retry_policy`` attaches the client resilience layer
    (:class:`~repro.streaming.faults.RetryPolicy`, topology mode only).
    A finite ``timeout_s`` arms a virtual-time timer per transfer
    attempt: at the deadline the attempt is cancelled (its charged bytes
    credited back), counted in ``requests_timed_out``, and re-issued
    after capped exponential backoff — or immediately against the
    least-loaded other live edge when ``hedge`` is set.  The last
    attempt of the ``max_attempts`` budget runs untimed, so every chunk
    eventually delivers and the report records how hard the client
    fought (``retry_attempts``).  Evacuation retries pay the same
    backoff when a policy is attached.  The default
    ``RetryPolicy()`` (infinite timeout) arms nothing, and a policy on a
    fault-free run is bit-exact with no policy at all (the disabled-mode
    parity suite pins both).
    ``controller`` runs a :class:`~repro.streaming.control.ControlPlane`
    every control interval on a sampled :class:`FleetView` — encode-pool
    resizing, saturation re-steering, QoE-driven arrival autoscale
    feedback.  Both default to off, and the disabled configuration is
    bit-exact with the plain simulator: control ticks piggyback on
    instants the event loop already wakes at, so monitoring alone never
    perturbs the fluid-flow arithmetic (a parity test enforces this).

    ``telemetry`` attaches a :class:`~repro.obs.Telemetry` bundle: its
    tracer collects typed virtual-time events from every subsystem (the
    driver wires it into the edge caches, the origin encode queue, the
    columnar engine, and the controller for the duration of the run, and
    unwires it on exit), its metrics registry receives the interval
    samples (health proxy, buffer occupancy, per-edge load, encode
    busy/workers), and its profiler wraps the hot loop's four stages
    (``scheduler`` / ``advance`` / ``planner`` / ``control``) in
    wall-clock spans.  Each layer toggles independently; ``None`` (the
    default) executes the exact pre-telemetry instruction stream, and
    the enabled tracer is bit-exact with the disabled one (the seventh
    oracle-parity instance).

    A topology handed to ``simulate_fleet`` is reset to its
    as-constructed state first (caches cold, counters zeroed, encode pool
    at its configured size), so reusing one topology object across runs
    measures each run from cold rather than silently warm-starting.
    """
    if not sessions:
        raise ValueError("fleet needs at least one session")
    if spec is not None:
        if (
            trace is not None
            or policy != "fair"
            or sr_cache is not None
            or topology is not None
            or engine is not None
            or assignment is not None
            or faults is not None
            or controller is not None
            or fleet_engine is not None
            or telemetry is not None
            or retry_policy is not None
            or scheduler_engine is not None
            or session_engine is not None
            or cost_model is not None
        ):
            raise ValueError(
                "pass the configuration either as spec= or as loose "
                "keyword arguments, not both"
            )
    else:
        if engine is not None and scheduler_engine is not None:
            raise ValueError(
                "pass scheduler_engine= or its deprecated alias engine=, "
                "not both"
            )
        if fleet_engine is not None and session_engine is not None:
            raise ValueError(
                "pass session_engine= or its deprecated alias "
                "fleet_engine=, not both"
            )
        spec = FleetSpec(
            trace=trace,
            topology=topology,
            policy=policy,
            sr_cache=sr_cache,
            scheduler_engine=(
                scheduler_engine if scheduler_engine is not None else "vector"
            ),
            session_engine=(
                session_engine if session_engine is not None else "machine"
            ),
            assignment=assignment,
            faults=faults,
            retry_policy=retry_policy,
            controller=controller,
            telemetry=telemetry,
            cost_model=cost_model,
            engine=engine,
            fleet_engine=fleet_engine,
        )
    spec.validate()
    trace = spec.trace
    topology = spec.topology
    policy = spec.policy
    sr_cache = spec.sr_cache
    assignment = spec.assignment
    faults = spec.faults
    retry_policy = spec.retry_policy
    controller = spec.controller
    telemetry = spec.telemetry
    tracer = telemetry.tracer if telemetry is not None else None
    metrics = telemetry.metrics if telemetry is not None else None
    prof = (
        telemetry.profiler
        if telemetry is not None and telemetry.profiler is not None
        else NULL_PROFILER
    )
    if topology is None:
        assert trace is not None
        base_path: NetworkPath | None = NetworkPath(
            (SharedLink(trace, policy=policy),), name="bottleneck"
        )
        assignment = []
    else:
        base_path = None
        topology.reset()
        if faults is not None:
            faults.validate_topology(len(topology.edges), topology.regions)
        if assignment is None:
            assignment = topology.assign(sessions)
        else:
            assignment = list(assignment)
            if len(assignment) != len(sessions):
                raise ValueError(
                    f"assignment names {len(assignment)} sessions, "
                    f"fleet has {len(sessions)}"
                )
            if any(not 0 <= e < len(topology.edges) for e in assignment):
                raise ValueError(
                    f"assignment edge indices must be in [0, "
                    f"{len(topology.edges)})"
                )
    per_edge_sr = isinstance(sr_cache, str)
    if per_edge_sr:
        # Mode string already validated by spec.validate().
        for edge in topology.edges:
            if edge.sr_cache is None:
                edge.sr_cache = SRResultCache()
        session_sr_caches = [topology.edges[e].sr_cache for e in assignment]
    else:
        session_sr_caches = [sr_cache] * len(sessions)
    if spec.session_engine == "columnar":
        cols: ColumnarFleet | None = ColumnarFleet(
            sessions, session_sr_caches
        )
        cols.tracer = tracer
        machines: list[SessionMachine] = []
    else:
        cols = None
        machines = [
            SessionMachine(
                s.spec,
                s.controller,
                sr_latency=s.sr_latency,
                quality_model=s.quality_model,
                config=s.config,
                qoe_weights=s.qoe_weights,
                start_time=s.join_time,
                sr_cache=session_sr_caches[sid],
                churn=s.churn,
            )
            for sid, s in enumerate(sessions)
        ]
    if tracer is not None:
        # Wire the tracer into the stateful subsystems for this run only
        # (the finally below unwires it, so a reused topology or
        # controller never keeps emitting into a finished run's stream).
        if topology is not None:
            for e_idx, edge in enumerate(topology.edges):
                edge.cache.tracer = tracer
                edge.cache.edge = e_idx
            topology.origin.queue.tracer = tracer
        if controller is not None:
            controller.tracer = tracer
        for sid, s in enumerate(sessions):
            if topology is not None:
                tracer.emit(
                    s.join_time, EV_SESSION_START, session=sid,
                    edge=assignment[sid],
                )
            else:
                tracer.emit(s.join_time, EV_SESSION_START, session=sid)
        if faults is not None:
            faults.emit_scheduled(tracer)
    sched = PathScheduler(engine=spec.scheduler_engine)
    #: flows that must fill an edge cache on completion: sid -> (edge idx, key, bytes)
    pending_fill: dict[int, tuple] = {}
    #: requests coalesced onto an in-flight fill: (edge idx, key) -> [(sid, req)]
    fill_waiters: dict[tuple, list[tuple[int, DownloadRequest]]] = {}
    origin_egress = 0

    # -- fault / control runtime -------------------------------------------
    n_edges = len(topology.edges) if topology is not None else 0
    regions = topology.regions if topology is not None else None
    outage_bounds = faults.boundary_times() if faults is not None else []
    #: every (edge, start, end) total-outage window — EdgeOutage events
    #: plus RegionOutage events resolved through the topology's regions;
    #: evacuation and edge_down recomputation read spans, never events
    outage_spans = (
        faults.edge_outage_spans(regions) if faults is not None else []
    )
    next_bound = 0
    edge_down = [False] * n_edges
    #: gray failures by edge (drop draws and byte accounting at dispatch)
    gray_by_edge: dict[int, list] = {}
    if faults is not None:
        for g in faults.gray_failures:
            gray_by_edge.setdefault(g.edge, []).append(g)
    #: timeouts are armed only when they can ever fire — the default
    #: RetryPolicy(timeout_s=inf) keeps the no-timeout path untouched
    arm_timeouts = (
        retry_policy is not None
        and math.isfinite(retry_policy.timeout_s)
        and topology is not None
    )
    #: outage/timeout handling needs to know which flows ride which edge;
    #: the bookkeeping is gated so fault-free runs skip every extra dict op
    track_live = bool(outage_spans) or arm_timeouts
    #: any failure path live this run (gates the per-completion retry
    #: accounting; gray drops count attempts without tracking flows)
    resilience = track_live or bool(gray_by_edge)
    #: in-flight downloads: sid -> (request, edge the flow was routed via,
    #: how the bytes were charged at dispatch — origin egress, cache hit,
    #: or coalesced attach.  A cancellation (outage or timeout) credits the
    #: matching counter back, so the re-issued attempt does not count its
    #: bytes against delivered totals twice.
    live_req: dict[int, tuple[DownloadRequest, int, int]] = {}
    rstate = _RetryState()
    #: armed per-request timeouts: (deadline, sid, token) heap entries; a
    #: token mismatch marks an entry stale (the attempt already resolved)
    timeout_heap: list[tuple[float, int, int]] = []
    flow_token: dict[int, int] = {}
    resteered_total = 0
    monitor = faults is not None or controller is not None
    #: a metrics registry alone also wants the interval samples — the
    #: sample block is pure observation, so widening the gate cannot
    #: perturb the run (same argument as monitoring without a controller)
    sampling = monitor or metrics is not None
    ticks0 = resizes0 = 0
    if controller is not None:
        sample_interval = controller.policy.interval
        ticks0 = controller.ticks
        resizes0 = controller.encode_resizes
    else:
        sample_interval = _DEFAULT_SAMPLE_INTERVAL
    tracker = (
        RecoveryTracker(min(ev.start for ev in faults.events))
        if faults is not None
        else None
    )
    #: per fault domain recovery metrics: region -> (sampler, tracker);
    #: sessions are attributed to the region of their *home* (initial)
    #: edge, so an evacuated region's viewers keep reporting into it —
    #: the dip measures what the region's audience experienced, not
    #: where their bytes happened to come from afterwards
    region_track: dict[str, tuple[_FleetSampler, RecoveryTracker]] = {}
    region_home: list[str | None] = []
    if faults is not None and regions:
        fault_start = min(ev.start for ev in faults.events)
        region_track = {
            name: (_FleetSampler(None), RecoveryTracker(fault_start))
            for name in sorted(regions)
        }
        region_of_edge: list[str | None] = [None] * n_edges
        for name, members in regions.items():
            for e in members:
                region_of_edge[e] = name
        region_home = [region_of_edge[e] for e in assignment]
    next_sample = sample_interval
    sampler = _FleetSampler(metrics)
    encode_waits_seen = 0
    # Degradations act purely through the trace wrapper: the scheduler's
    # piecewise integration segments at the window boundaries on its own,
    # so no loop events are injected.  Restored in the finally below so a
    # reused topology is never left wearing a fault.
    wrapped_links: list[tuple[SharedLink, NetworkTrace]] = []
    if faults is not None and faults.degradations:
        deg_windows: dict[int, list[tuple[float, float, float]]] = {}
        for d in faults.degradations:
            deg_windows.setdefault(d.edge, []).append((d.start, d.end, d.factor))
        for e, wins in sorted(deg_windows.items()):
            link = topology.edges[e].backhaul
            wrapped_links.append((link, link.trace))
            link.trace = DegradedTrace(link.trace, wins)
    # A gray failure's capacity brownout rides the same window machinery,
    # on the edge's *access* link (the edge keeps serving, slower) — so
    # gray windows compose with backhaul degradations exactly like any
    # other DegradedTrace windows.
    if gray_by_edge:
        for e, grays in sorted(gray_by_edge.items()):
            wins = [
                (g.start, g.end, g.capacity_factor)
                for g in grays
                if g.capacity_factor != 1.0
            ]
            if not wins:
                continue
            link = topology.edges[e].access
            wrapped_links.append((link, link.trace))
            link.trace = DegradedTrace(link.trace, wins)
    #: topology requests dated beyond the current event, ordered by
    #: (start_time, session id).  Cache lookups and encode reservations
    #: are *stateful and time-stamped*, so a future-dated request (a
    #: session's join, a buffer-headroom wait) must not consult them
    #: until virtual time reaches its start — a viewer joining at t=60
    #: sees every fill and encode that completed before t=60.
    deferred: list[tuple[float, int, DownloadRequest]] = []
    clock = 0.0

    def _gray_dispatch(edge_idx: int, sid: int, req: DownloadRequest):
        """(drop retransmit delay, gray-window bytes) for one dispatch.

        Bytes count once however many gray windows overlap the instant;
        the deterministic drop draw is per window, and a dropped request
        is modeled as its own retransmit — the transfer starts
        ``drop_delay_s`` late and the attempt counts as failed.
        """
        delay = 0.0
        gbytes = 0
        for g in gray_by_edge.get(edge_idx, ()):
            if g.covers(req.start_time):
                gbytes = req.nbytes
                if g.drops(sid, req.start_time):
                    delay += g.drop_delay_s
        return delay, gbytes

    def _gray_bytes_at(edge_idx: int, req: DownloadRequest) -> int:
        """Gray-window bytes a cancelled dispatch must credit back."""
        for g in gray_by_edge.get(edge_idx, ()):
            if g.covers(req.start_time):
                return req.nbytes
        return 0

    def _gray_drop(edge_idx: int, sid: int, req: DownloadRequest) -> float:
        """Gray bookkeeping for one dispatch; returns the drop delay."""
        gdelay, gbytes = _gray_dispatch(edge_idx, sid, req)
        rstate.gray_bytes += gbytes
        if gdelay > 0.0:
            rstate.add_attempt(sid)
            if tracer is not None:
                tracer.emit(
                    req.start_time, EV_CHUNK_RETRY, session=sid,
                    nbytes=req.nbytes, reason="gray-drop",
                )
        return gdelay

    def _arm_timeout(sid: int, req: DownloadRequest) -> None:
        """Arm the retry policy's virtual-time timeout for one attempt.

        Skipped once the attempt budget is spent — the final attempt
        runs to completion untimed (a simulated chunk must eventually
        deliver; the report records how hard the client fought).
        """
        if not arm_timeouts:
            return
        if rstate.attempts.get(sid, 0) + 1 >= retry_policy.max_attempts:
            return
        token = flow_token.get(sid, 0) + 1
        flow_token[sid] = token
        heapq.heappush(
            timeout_heap,
            (req.start_time + retry_policy.timeout_s, sid, token),
        )

    def _disarm(sid: int) -> None:
        """Invalidate any armed timeout for ``sid`` (attempt resolved)."""
        if arm_timeouts:
            flow_token[sid] = flow_token.get(sid, 0) + 1

    def dispatch(sid: int, req: DownloadRequest) -> None:
        nonlocal origin_egress
        if base_path is not None:
            if tracer is not None:
                tracer.emit(
                    req.start_time, EV_CHUNK_FETCH, session=sid,
                    route="link", nbytes=req.nbytes,
                )
            sched.add_flow(
                sid, req.nbytes, req.start_time, base_path,
                weight=sessions[sid].weight,
            )
            return
        assert topology is not None
        edge_idx = assignment[sid]
        edge = topology.edges[edge_idx]
        key = _chunk_key(req)
        if key is not None and edge.cache.lookup(key, req.nbytes, req.start_time):
            gdelay = _gray_drop(edge_idx, sid, req) if gray_by_edge else 0.0
            if track_live:
                live_req[sid] = (req, edge_idx, _CHARGE_HIT)
            _arm_timeout(sid, req)
            if tracer is not None:
                tracer.emit(
                    req.start_time, EV_CHUNK_FETCH, session=sid,
                    route="hit", edge=edge_idx, nbytes=req.nbytes,
                )
            sched.add_flow(
                sid, req.nbytes, req.start_time, edge.hit_path,
                weight=sessions[sid].weight, extra_delay=gdelay,
            )
            return
        delay = 0.0
        if key is not None:
            if edge.cache.fill_in_flight(key):
                # Another viewer is already pulling this chunk: coalesce.
                # The request parks until that one backhaul transfer
                # lands, then streams from the edge over the access link.
                edge.cache.attach(key, req.nbytes, at_time=req.start_time)
                fill_waiters.setdefault((edge_idx, key), []).append((sid, req))
                if tracer is not None:
                    tracer.emit(
                        req.start_time, EV_CHUNK_FETCH, session=sid,
                        route="coalesce", edge=edge_idx, nbytes=req.nbytes,
                    )
                return
            # Cold chunk: the origin must hold the encoded variant before
            # the backhaul transfer starts (bounded transcode workers).
            ready = topology.origin.variant_ready(key, req.start_time)
            delay = ready - req.start_time
            if edge.cache.capacity_bytes > 0:
                edge.cache.begin_fill(key)
            pending_fill[sid] = (edge_idx, key, req.nbytes)
        if gray_by_edge:
            delay += _gray_drop(edge_idx, sid, req)
        origin_egress += req.nbytes
        if track_live:
            live_req[sid] = (req, edge_idx, _CHARGE_ORIGIN)
        _arm_timeout(sid, req)
        if tracer is not None:
            tracer.emit(
                req.start_time, EV_CHUNK_FETCH, session=sid,
                route="origin", edge=edge_idx, nbytes=req.nbytes,
                delay=delay,
            )
        sched.add_flow(
            sid, req.nbytes, req.start_time, edge.miss_path,
            weight=sessions[sid].weight, extra_delay=delay,
        )

    def needs_clock(sid: int, req: DownloadRequest) -> bool:
        """Does resolving this request read time-stamped mutable state?

        Only cacheable chunks on a topology with a live edge cache or a
        non-zero encode cost do.  Everything else (single-link mode,
        startup payloads, caching and encoding disabled) resolves the
        same way at any instant, and registering the flow immediately
        keeps the degenerate topology bit-exact with the single-link
        scheduler — a waiting flow in the pool is what disables the
        solo-flow fast path, exactly as in :class:`SharedLink`.
        """
        if base_path is not None or req.chunk_index is None:
            return False
        assert topology is not None
        edge = topology.edges[assignment[sid]]
        return (
            edge.cache.capacity_bytes > 0
            or topology.origin.encode_seconds > 0.0
        )

    def queue(sid: int, req: DownloadRequest) -> None:
        if req.start_time > clock and needs_clock(sid, req):
            heapq.heappush(deferred, (req.start_time, sid, req))
        else:
            dispatch(sid, req)

    def queue_decided(pairs: list[tuple[int, DownloadRequest]]) -> None:
        """Queue freshly decided requests, tracing each decision."""
        for sid, req in pairs:
            if tracer is not None:
                tracer.emit(
                    req.start_time, EV_CHUNK_DECISION, session=sid,
                    chunk=req.chunk_index, nbytes=req.nbytes,
                )
            queue(sid, req)

    def _live_totals() -> tuple[int, float, float]:
        """Fleet-wide live counters, summed in session order (the exact
        sequential float order both engines pin)."""
        if cols is not None:
            return cols.live_totals()
        chunks = 0
        qsum = 0.0
        stall = 0.0
        for m in machines:
            chunks += m.live_chunks
            qsum += m.live_quality_sum
            stall += m.live_stall
        return chunks, qsum, stall

    def _region_live_totals() -> dict[str, tuple[int, float, float]]:
        """Per fault domain live counters, summed in ascending session id
        order over each session's *home* region — the same scalars in the
        same sequential float order on both engines, so the per-region
        recovery metrics are engine-exact like the fleet-wide ones."""
        totals = {name: (0, 0.0, 0.0) for name in region_track}
        if cols is not None:
            lc, lq, ls = cols.live_chunks, cols.live_qsum, cols.live_stall
            for sid, name in enumerate(region_home):
                if name is None:
                    continue
                c, q, s = totals[name]
                totals[name] = (
                    c + int(lc[sid]), q + float(lq[sid]), s + float(ls[sid])
                )
        else:
            for sid, name in enumerate(region_home):
                if name is None:
                    continue
                m = machines[sid]
                c, q, s = totals[name]
                totals[name] = (
                    c + m.live_chunks,
                    q + m.live_quality_sum,
                    s + m.live_stall,
                )
        return totals

    # -- graceful degradation (control-plane levers) -----------------------
    # The clamp rewrites ABR decisions while a lever is pulled; while no
    # lever is active the decision call sites receive clamp=None, so the
    # no-op configuration executes the exact pre-lever instruction stream.
    decision_cap = math.inf
    sr_disabled = False
    clamp_active = False

    def _clamp(d):
        """One ABR decision under the active degradation levers."""
        if decision_cap < math.inf and d.density > decision_cap:
            d = dc_replace(d, density=decision_cap)
        if sr_disabled and d.sr_ratio != 1.0:
            d = dc_replace(d, sr_ratio=1.0)
        return d

    def _decide(ids: list[int]) -> list[tuple[int, DownloadRequest]]:
        """Resolve parked decisions on the active session engine, routed
        through the degradation clamp only while a lever is pulled."""
        clamp = _clamp if clamp_active else None
        if cols is not None:
            return cols.decide(ids, clamp=clamp)
        return _batched_decisions(machines, ids, clamp=clamp)

    def _evacuate(edge_idx: int, t: float) -> None:
        """Fail edge ``edge_idx`` over at instant ``t``: re-steer its
        viewers to the least-loaded live edges, cancel its in-flight
        transfers and re-issue them from ``t`` (time already spent counts
        against the session via the retry state's sunk-time offset, plus
        any :class:`~repro.streaming.faults.RetryPolicy` backoff),
        restart its cache cold.  Engine-agnostic: both the machine and
        columnar session layers expose the finished flags and SR-cache
        slots this needs.
        """
        nonlocal resteered_total, origin_egress
        assert topology is not None and faults is not None
        edge = topology.edges[edge_idx]
        # Outstanding work riding the dead edge, captured before any
        # re-assignment: in-flight transfers and parked coalesced waiters.
        # Each cancelled transfer hands back whatever it was charged at
        # dispatch — origin egress, cache hit bytes, or a coalesced attach
        # — so the re-issued attempt, billed on its own dispatch, never
        # counts one delivered chunk's bytes twice.  Gray-window bytes are
        # credited back the same way (coalesced attaches never paid any).
        riding = sorted(
            sid for sid, (_, e, _) in live_req.items() if e == edge_idx
        )
        retries = []
        for sid in riding:
            req, _, kind = live_req.pop(sid)
            if kind == _CHARGE_ORIGIN:
                origin_egress -= req.nbytes
            elif kind == _CHARGE_HIT:
                edge.cache.void_hit(req.nbytes, at_time=t)
            else:
                edge.cache.void_coalesced(req.nbytes, at_time=t)
            if gray_by_edge and kind != _CHARGE_COALESCED:
                rstate.gray_bytes -= _gray_bytes_at(edge_idx, req)
            _disarm(sid)
            retries.append((sid, req))
        for k in [k for k in fill_waiters if k[0] == edge_idx]:
            for wsid, wreq in fill_waiters.pop(k):
                edge.cache.void_coalesced(wreq.nbytes, at_time=t)
                retries.append((wsid, wreq))
        if tracer is not None:
            tracer.emit(
                t, EV_OUTAGE_EVACUATE, edge=edge_idx,
                cancelled=len(retries),
            )
        # Viewers whose join still lies beyond the end of this outage
        # (chained across back-to-back outage spans on the edge) will
        # find it healthy again — failing them over now would permanently
        # strand them on another edge for no reason.  Spans already fold
        # RegionOutage events through the topology's fault domains.
        until = t
        for e2, start, end in outage_spans:
            if e2 == edge_idx and start <= until:
                until = max(until, end)
        live = [e for e in range(n_edges) if not edge_down[e]]
        finished = (
            cols.finished_flags()
            if cols is not None
            else [m.finished for m in machines]
        )
        load = [0] * n_edges
        for sid, fin in enumerate(finished):
            if not fin:
                load[assignment[sid]] += 1
        for sid, fin in enumerate(finished):
            if fin or assignment[sid] != edge_idx:
                continue
            if sessions[sid].join_time >= until:
                continue
            target = min(live, key=lambda e: (load[e], e))
            load[edge_idx] -= 1
            load[target] += 1
            assignment[sid] = target
            if per_edge_sr:
                new_cache = topology.edges[target].sr_cache
                if cols is not None:
                    cols.sr_caches[sid] = new_cache
                else:
                    machines[sid].sr_cache = new_cache
            resteered_total += 1
            if tracer is not None:
                tracer.emit(
                    t, EV_SESSION_RESTEER, session=sid, reason="outage",
                    from_edge=edge_idx, to_edge=target,
                )
        for sid in riding:
            sched.cancel(sid)
            pending_fill.pop(sid, None)
        # A restarted edge comes back cold: drop contents and in-flight
        # fill markers (their backhaul transfers were just cancelled).
        edge.cache.drop_all()
        # Re-issue the orphaned requests against each session's new edge.
        # Requests dated at/after the outage re-run unchanged; requests
        # already in flight restart here, carrying their sunk time plus
        # the retry policy's capped exponential backoff (no policy =
        # immediate restart, the historical behavior bit-exactly).
        for sid, req in sorted(retries):
            if tracer is not None:
                tracer.emit(t, EV_CHUNK_RETRY, session=sid, nbytes=req.nbytes)
            if req.start_time >= t:
                queue(sid, req)
            else:
                n = rstate.add_attempt(sid)
                delay = (
                    retry_policy.backoff(n)
                    if retry_policy is not None
                    else 0.0
                )
                rstate.offset[sid] = rstate.offset.get(sid, 0.0) + (
                    t + delay - req.start_time
                )
                queue(sid, dc_replace(req, start_time=t + delay))

    # Every session needs its first ABR decision at join time — the widest
    # batch of the run (startup-bytes sessions enter via a transfer first).
    # Decisions are pure functions of their context, so resolving them all
    # up front is safe; the *requests* they unblock go through queue(),
    # which holds future-dated ones until virtual time catches up.
    if cols is not None:
        startup_reqs, first_decisions = cols.initial_requests()
        for sid, req in startup_reqs:
            queue(sid, req)
        queue_decided(_decide(first_decisions))
    else:
        first_decisions = []
        for sid, machine in enumerate(machines):
            if isinstance(machine.pending, DownloadRequest):
                queue(sid, machine.pending)
            elif isinstance(machine.pending, DecisionRequest):
                first_decisions.append(sid)
        queue_decided(_decide(first_decisions))

    now = 0.0
    end_times = [0.0] * len(sessions)
    # Pre-bound phase spans: with profiling disabled each is the shared
    # no-op context manager, so the loop keeps one shape either way.
    ph_sched = prof.phase("scheduler")
    ph_advance = prof.phase("advance")
    ph_planner = prof.phase("planner")
    ph_control = prof.phase("control")
    try:
      while sched.busy() or deferred:
        with ph_sched:
            events = []
            if sched.busy():
                events.append(sched.next_event(now))
            if deferred:
                events.append(max(deferred[0][0], now))
            if next_bound < len(outage_bounds):
                # Outage boundaries mutate scheduler state, so the loop
                # must wake exactly at them (degradations and crowds need
                # no event).
                events.append(max(outage_bounds[next_bound], now))
            if timeout_heap:
                # Armed retry deadlines wake the loop too.  A stale entry
                # (its attempt already resolved) may wake it spuriously;
                # both engines share this driver loop, so the wakeups —
                # and therefore the fluid integration segments — stay
                # identical across engines.
                events.append(max(timeout_heap[0][0], now))
            t = min(events)
            clock = t
            # advance() returns a materialized completion list, so the
            # fluid advance (scheduler phase) profiles separately from
            # the session transitions it unblocks (advance phase).
            completions = sched.advance(now, t) if sched.busy() else ()
        needs_decision: list[int] = []
        with ph_advance:
            for done in completions:
                if track_live:
                    live_req.pop(done.flow_id, None)
                if arm_timeouts:
                    # A completion that lands exactly at its deadline wins:
                    # completions are processed before the timeout block,
                    # and the token bump marks the heap entry stale.
                    _disarm(done.flow_id)
                fill = pending_fill.pop(done.flow_id, None)
                if fill is not None:
                    edge_idx, key, nbytes = fill
                    edge = topology.edges[edge_idx]
                    edge.cache.insert(key, nbytes, ready=done.finish_time)
                    # Release every request that coalesced onto this fill:
                    # the chunk now sits at the edge, so each waiter
                    # streams it over the one-hop access path, its data
                    # gated to the fill's landing instant (the elapsed
                    # time still counts from its own request).
                    for wsid, wreq in fill_waiters.pop((edge_idx, key), ()):
                        if track_live:
                            live_req[wsid] = (wreq, edge_idx, _CHARGE_COALESCED)
                        gate = done.finish_time - (
                            wreq.start_time + edge.hit_path.rtt
                        )
                        sched.add_flow(
                            wsid, wreq.nbytes, wreq.start_time, edge.hit_path,
                            weight=sessions[wsid].weight,
                            extra_delay=max(gate, 0.0),
                        )
                elapsed = done.elapsed
                if resilience:
                    elapsed += rstate.complete(done.flow_id)
                if cols is not None:
                    nxt = cols.advance_download(done.flow_id, elapsed)
                    if nxt is NEEDS_DECISION:
                        needs_decision.append(done.flow_id)
                    else:
                        end_times[done.flow_id] = done.finish_time
                    continue
                m = machines[done.flow_id]
                if tracer is None:
                    req = m.advance(elapsed)
                else:
                    # Live counters are pure telemetry, so diffing them
                    # across the transition recovers the chunk record
                    # without touching the generator's arithmetic.
                    lc0 = m.live_chunks
                    lq0 = m.live_quality_sum
                    ls0 = m.live_stall
                    req = m.advance(elapsed)
                    if m.live_chunks > lc0:
                        d_stall = m.live_stall - ls0
                        tracer.emit(
                            done.finish_time, EV_CHUNK_COMPLETE,
                            session=done.flow_id,
                            quality=m.live_quality_sum - lq0,
                            stall=d_stall, elapsed=elapsed,
                        )
                        if d_stall > 0.0:
                            tracer.emit(
                                done.finish_time, EV_CHUNK_STALL,
                                session=done.flow_id, seconds=d_stall,
                            )
                    if m.finished:
                        assert m.result is not None
                        tracer.emit(
                            done.finish_time,
                            EV_SESSION_ABANDON
                            if m.result.abandoned
                            else EV_SESSION_FINISH,
                            session=done.flow_id,
                        )
                if isinstance(req, DecisionRequest):
                    needs_decision.append(done.flow_id)
                elif req is not None:
                    queue(done.flow_id, req)
                else:
                    end_times[done.flow_id] = done.finish_time
        with ph_planner:
            queue_decided(_decide(needs_decision))
        if next_bound < len(outage_bounds) and outage_bounds[next_bound] <= t:
          with ph_control:
            # Bank any solo flow's progress before surgery on the flow set
            # (same contract as the deferred release below).
            sched.sync(t)
            while (
                next_bound < len(outage_bounds)
                and outage_bounds[next_bound] <= t
            ):
                tb = outage_bounds[next_bound]
                next_bound += 1
                newly_down = []
                for e in range(n_edges):
                    down = any(
                        e2 == e and s <= tb < end
                        for e2, s, end in outage_spans
                    )
                    if down and not edge_down[e]:
                        newly_down.append(e)
                    edge_down[e] = down
                for e in newly_down:
                    _evacuate(e, t)
        if timeout_heap and timeout_heap[0][0] <= t:
          with ph_control:
            # Collect every armed deadline due by t whose attempt is still
            # in flight.  Completions at the same instant were processed
            # above and bumped their tokens (completion-at-deadline wins);
            # an evacuation at a coincident outage boundary likewise
            # already popped its sids from live_req.
            fired: list[int] = []
            while timeout_heap and timeout_heap[0][0] <= t:
                _, sid, token = heapq.heappop(timeout_heap)
                if flow_token.get(sid, 0) != token or sid not in live_req:
                    continue
                flow_token[sid] = token + 1
                fired.append(sid)
            if fired:
                # Cancelling flows outside the completion-driven pattern —
                # bank any solo flow's progress first (same contract as
                # the deferred release below).
                sched.sync(t)
            for sid in fired:
                req, edge_idx, kind = live_req.pop(sid)
                edge = topology.edges[edge_idx]
                # Hand back whatever the attempt was charged at dispatch
                # (see _evacuate — identical credit-back contract).
                if kind == _CHARGE_ORIGIN:
                    origin_egress -= req.nbytes
                elif kind == _CHARGE_HIT:
                    edge.cache.void_hit(req.nbytes, at_time=t)
                else:
                    edge.cache.void_coalesced(req.nbytes, at_time=t)
                if gray_by_edge and kind != _CHARGE_COALESCED:
                    rstate.gray_bytes -= _gray_bytes_at(edge_idx, req)
                sched.cancel(sid)
                fill = pending_fill.pop(sid, None)
                if fill is not None:
                    f_edge, key, _ = fill
                    topology.edges[f_edge].cache.abort_fill(key)
                    # Requests coalesced onto the aborted fill retry on
                    # their own, each paying its own backoff.
                    for wsid, wreq in fill_waiters.pop((f_edge, key), ()):
                        topology.edges[f_edge].cache.void_coalesced(
                            wreq.nbytes, at_time=t
                        )
                        if tracer is not None:
                            tracer.emit(
                                t, EV_CHUNK_RETRY, session=wsid,
                                nbytes=wreq.nbytes, reason="fill-aborted",
                            )
                        if wreq.start_time >= t:
                            queue(wsid, wreq)
                            continue
                        wn = rstate.add_attempt(wsid)
                        wdelay = retry_policy.backoff(wn)
                        rstate.offset[wsid] = rstate.offset.get(
                            wsid, 0.0
                        ) + (t + wdelay - wreq.start_time)
                        queue(
                            wsid,
                            dc_replace(wreq, start_time=t + wdelay),
                        )
                rstate.timed_out += 1
                if tracer is not None:
                    tracer.emit(
                        t, EV_RETRY_TIMEOUT, session=sid, edge=edge_idx,
                        nbytes=req.nbytes,
                    )
                # Hedging re-steers the retry to the least-loaded other
                # live edge and skips the backoff wait (the point of a
                # hedge is to race a fresh path, not to sit out).
                hedged_now = False
                if retry_policy.hedge:
                    finished = (
                        cols.finished_flags()
                        if cols is not None
                        else [m.finished for m in machines]
                    )
                    load = [0] * n_edges
                    for s2, fin in enumerate(finished):
                        if not fin:
                            load[assignment[s2]] += 1
                    candidates = [
                        e for e in range(n_edges)
                        if e != edge_idx and not edge_down[e]
                    ]
                    if candidates:
                        target = min(candidates, key=lambda e: (load[e], e))
                        assignment[sid] = target
                        if per_edge_sr:
                            new_cache = topology.edges[target].sr_cache
                            if cols is not None:
                                cols.sr_caches[sid] = new_cache
                            else:
                                machines[sid].sr_cache = new_cache
                        rstate.hedged += 1
                        resteered_total += 1
                        hedged_now = True
                        if tracer is not None:
                            tracer.emit(
                                t, EV_SESSION_RESTEER, session=sid,
                                reason="hedge", from_edge=edge_idx,
                                to_edge=target,
                            )
                            tracer.emit(
                                t, EV_RETRY_HEDGE, session=sid,
                                edge=target,
                            )
                n = rstate.add_attempt(sid)
                delay = 0.0 if hedged_now else retry_policy.backoff(n)
                rstate.offset[sid] = rstate.offset.get(sid, 0.0) + (
                    t + delay - req.start_time
                )
                if tracer is not None:
                    tracer.emit(
                        t, EV_CHUNK_RETRY, session=sid, nbytes=req.nbytes,
                        reason="timeout",
                    )
                queue(sid, dc_replace(req, start_time=t + delay))
        if sampling and t >= next_sample:
          with ph_control:
            # Control ticks piggyback on instants the loop already wakes
            # at — never injected — so pure monitoring cannot split a
            # fluid advance interval (the bit-exactness of the disabled /
            # no-op configurations rests on this).
            health = sampler.health_sample(t, *_live_totals())
            if tracker is not None and health is not None:
                tracker.sample(t, health)
            if region_track:
                region_totals = _region_live_totals()
                for name, (rsampler, rtracker) in region_track.items():
                    rh = rsampler.health_sample(t, *region_totals[name])
                    if rh is not None:
                        rtracker.sample(t, rh)
            finished_flags: list[bool] = []
            if metrics is not None or controller is not None:
                finished_flags = (
                    cols.finished_flags()
                    if cols is not None
                    else [m.finished for m in machines]
                )
            if metrics is not None:
                active = 0
                buf_sum = 0.0
                if cols is not None:
                    levels = cols.level
                    for sid, fin in enumerate(finished_flags):
                        if not fin:
                            active += 1
                            buf_sum += float(levels[sid])
                else:
                    for sid, fin in enumerate(finished_flags):
                        if not fin:
                            active += 1
                            buf_sum += machines[sid].live_buffer_level
                metrics.timeseries("fleet.active_sessions").record(t, active)
                metrics.timeseries("fleet.buffer_level").record(
                    t, buf_sum / active if active else 0.0
                )
                if topology is not None:
                    mloads = [0] * n_edges
                    for sid, fin in enumerate(finished_flags):
                        if not fin:
                            mloads[assignment[sid]] += 1
                    for e in range(n_edges):
                        metrics.timeseries(f"edge.load.{e}").record(
                            t, mloads[e]
                        )
                    oqueue = topology.origin.queue
                    metrics.timeseries("origin.encode_busy").record(
                        t, oqueue.busy_at(t)
                    )
                    metrics.gauge("origin.encode_workers").set(
                        oqueue.n_workers
                    )
            if controller is not None:
                assert topology is not None
                loads = [0] * n_edges
                by_edge: dict[int, list[int]] = {
                    e: [] for e in range(n_edges)
                }
                for sid, fin in enumerate(finished_flags):
                    if not fin:
                        by_edge[assignment[sid]].append(sid)
                        loads[assignment[sid]] += 1
                waits = topology.origin.queue.waits
                new_waits = tuple(waits[encode_waits_seen:])
                encode_waits_seen = len(waits)
                regions_dark = (
                    tuple(
                        name
                        for name in sorted(regions)
                        if all(edge_down[e] for e in regions[name])
                    )
                    if regions
                    else ()
                )
                actions = controller.tick(
                    FleetView(
                        now=t,
                        edge_load=tuple(loads),
                        edge_down=tuple(edge_down),
                        sessions_by_edge={
                            e: tuple(ids) for e, ids in by_edge.items()
                        },
                        encode_waits=new_waits,
                        encode_workers=topology.origin.queue.n_workers,
                        health=health,
                        regions_dark=regions_dark,
                    )
                )
                if actions.encode_workers is not None:
                    topology.origin.queue.resize(
                        actions.encode_workers, at_time=t
                    )
                for sid, target in actions.resteer:
                    if finished_flags[sid] or edge_down[target]:
                        continue
                    if tracer is not None:
                        tracer.emit(
                            t, EV_SESSION_RESTEER, session=sid,
                            reason="control", from_edge=assignment[sid],
                            to_edge=target,
                        )
                    assignment[sid] = target
                    if per_edge_sr:
                        new_cache = topology.edges[target].sr_cache
                        if cols is not None:
                            cols.sr_caches[sid] = new_cache
                        else:
                            machines[sid].sr_cache = new_cache
                    resteered_total += 1
                if actions.quality_cap is not None:
                    decision_cap = actions.quality_cap
                if actions.sr_enabled is not None:
                    sr_disabled = not actions.sr_enabled
                clamp_active = decision_cap < math.inf or sr_disabled
            next_sample = (
                math.floor(t / sample_interval) + 1
            ) * sample_interval
        # Release deferred requests due by t only after the fills that
        # completed *at* t are inserted: a chunk resident at the instant
        # a request goes out counts as a hit (ready <= at_time).
        if deferred and deferred[0][0] <= t:
          with ph_advance:
            # A release injects flows outside the completion-driven
            # pattern the solo fast path assumes — bank any solo flow's
            # progress up to t first, or it would restart from scratch.
            sched.sync(t)
            while deferred and deferred[0][0] <= t:
                _, sid, req = heapq.heappop(deferred)
                dispatch(sid, req)
        now = t
    finally:
        for link, orig in wrapped_links:
            link.trace = orig
        if tracer is not None:
            # Unwire the tracer so a reused topology/controller never
            # emits into a finished run's stream.
            if topology is not None:
                for edge in topology.edges:
                    edge.cache.tracer = None
                    edge.cache.edge = None
                topology.origin.queue.tracer = None
            if controller is not None:
                controller.tracer = None
    if sampling:
        # Close the monitoring stream so a recovery that completes after
        # the last sample instant is still observed.
        health = sampler.health_sample(now, *_live_totals())
        if tracker is not None and health is not None:
            tracker.sample(now, health)
        if region_track:
            region_totals = _region_live_totals()
            for name, (rsampler, rtracker) in region_track.items():
                rh = rsampler.health_sample(now, *region_totals[name])
                if rh is not None:
                    rtracker.sample(now, rh)

    if cols is not None:
        assert cols.all_finished(), "fleet left unfinished sessions"
        results = cols.finalize()
    else:
        results = [m.result for m in machines]
        assert all(
            r is not None for r in results
        ), "fleet left unfinished sessions"
    assert not fill_waiters, "fleet left coalesced requests waiting"
    ops = None
    if monitor or resilience:
        # A retry policy without faults still needs its counters surfaced
        # (monitor alone would drop a retry-only run's timeout totals).
        if controller is not None and controller.autoscaler is not None:
            controller.autoscaler.finish()
        dip, recover = (
            tracker.metrics() if tracker is not None else (0.0, 0.0)
        )
        ops = OpsStats(
            sessions_resteered=resteered_total,
            faults_injected=len(faults) if faults is not None else 0,
            control_ticks=(
                controller.ticks - ticks0 if controller is not None else 0
            ),
            encode_pool_resizes=(
                controller.encode_resizes - resizes0
                if controller is not None
                else 0
            ),
            qoe_dip_depth=dip,
            time_to_recover_s=recover,
            chunk_retries=rstate.retries,
            requests_timed_out=rstate.timed_out,
            requests_hedged=rstate.hedged,
            gray_degraded_bytes=rstate.gray_bytes,
            retry_attempts=rstate.attempt_counts(),
            region_recovery=tuple(
                (name, *region_track[name][1].metrics())
                for name in sorted(region_track)
            ),
        )
    if topology is not None:
        edge_stats = [
            (e.cache.hits, e.cache.misses, e.cache.coalesced,
             e.cache.coalesced_bytes)
            for e in topology.edges
        ]
        edge_hit_rates = tuple(e.cache.hit_rate for e in topology.edges)
        encode_waits = list(topology.origin.queue.waits)
        encode_core_seconds = topology.origin.queue.busy_seconds
        egress: int | None = origin_egress
    else:
        # No edges: every byte leaves the origin (egress=None sentinel).
        edge_stats = []
        edge_hit_rates = ()
        encode_waits = []
        encode_core_seconds = 0.0
        egress = None
    if per_edge_sr:
        assert topology is not None
        sr_hits = sum(e.sr_cache.hits for e in topology.edges)
        sr_misses = sum(e.sr_cache.misses for e in topology.edges)
        sr_edge_hit_rates = tuple(e.sr_cache.hit_rate for e in topology.edges)
    else:
        sr_hits = sr_cache.hits if sr_cache is not None else 0
        sr_misses = sr_cache.misses if sr_cache is not None else 0
        sr_edge_hit_rates = ()
    report = build_fleet_report(
        results,
        sessions,
        end_times,
        origin_egress=egress,
        edge_stats=edge_stats,
        edge_hit_rates=edge_hit_rates,
        encode_waits=encode_waits,
        sr_hits=sr_hits,
        sr_misses=sr_misses,
        sr_edge_hit_rates=sr_edge_hit_rates,
        ops=ops,
        encode_core_seconds=encode_core_seconds,
    )
    result = FleetResult(
        sessions=results,
        report=report,
        sr_cache=None if per_edge_sr else sr_cache,
        session_specs=list(sessions),
        topology=topology,
        assignment=assignment,
        end_times=end_times,
    )
    if spec.cost_model is not None:
        from .cost import attach_cost

        result = attach_cost(result, spec.cost_model)
    return result
