"""Server-side encoding: random downsampling to a requested density.

This is the concrete (geometry-materializing) counterpart of the analytic
:class:`repro.streaming.chunks.ChunkSpec` path — used by the end-to-end
examples and the full-fidelity tests.  Per the paper (§5.2), the server
downsamples with independent random selection; the encoder additionally
serializes to the 15-byte/point wire format so measured chunk sizes agree
with the analytic model.
"""

from __future__ import annotations

import numpy as np

from ..pointcloud.cloud import PointCloud
from ..pointcloud.sampling import random_downsample_count

__all__ = [
    "encode_frame",
    "decode_frame",
    "encode_chunk",
    "decode_chunk",
    "encode_frame_compressed",
    "decode_frame_compressed",
]

_HEADER_DTYPE = np.dtype("<u4")


def encode_frame(frame: PointCloud, density: float, seed: int | None = 0) -> bytes:
    """Downsample ``frame`` to ``density`` and serialize.

    Wire format: uint32 point count, then float32 XYZ triples, then uint8
    RGB triples (omitted for colorless clouds, signalled by the high bit of
    the count).
    """
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    n_keep = max(1, int(round(len(frame) * density)))
    low = random_downsample_count(frame, n_keep, seed=seed)
    n = len(low)
    has_color = low.has_colors
    header = np.array([n | (0x80000000 if has_color else 0)], dtype=_HEADER_DTYPE)
    parts = [header.tobytes(), low.positions.astype("<f4").tobytes()]
    if has_color:
        parts.append(low.colors.tobytes())
    return b"".join(parts)


def decode_frame(payload: bytes) -> PointCloud:
    """Inverse of :func:`encode_frame`."""
    if len(payload) < 4:
        raise ValueError("payload too short for header")
    raw = np.frombuffer(payload[:4], dtype=_HEADER_DTYPE)[0]
    has_color = bool(raw & 0x80000000)
    n = int(raw & 0x7FFFFFFF)
    pos_bytes = n * 12
    expected = 4 + pos_bytes + (n * 3 if has_color else 0)
    if len(payload) < expected:
        raise ValueError(f"payload truncated: {len(payload)} < {expected}")
    pos = np.frombuffer(payload[4 : 4 + pos_bytes], dtype="<f4").reshape(n, 3)
    colors = None
    if has_color:
        colors = np.frombuffer(
            payload[4 + pos_bytes : expected], dtype=np.uint8
        ).reshape(n, 3)
    return PointCloud(pos.astype(np.float64), colors.copy() if colors is not None else None)


def encode_chunk(
    frames: list[PointCloud], density: float, seed: int | None = 0
) -> bytes:
    """Serialize a chunk: uint32 frame count then length-prefixed frames."""
    rng = np.random.default_rng(seed)
    encoded = [
        encode_frame(f, density, seed=int(rng.integers(2 ** 31))) for f in frames
    ]
    parts = [np.array([len(encoded)], dtype=_HEADER_DTYPE).tobytes()]
    for e in encoded:
        parts.append(np.array([len(e)], dtype=_HEADER_DTYPE).tobytes())
        parts.append(e)
    return b"".join(parts)


def decode_chunk(payload: bytes) -> list[PointCloud]:
    """Inverse of :func:`encode_chunk`."""
    if len(payload) < 4:
        raise ValueError("payload too short for chunk header")
    n_frames = int(np.frombuffer(payload[:4], dtype=_HEADER_DTYPE)[0])
    frames = []
    off = 4
    for _ in range(n_frames):
        if len(payload) < off + 4:
            raise ValueError("chunk truncated at frame header")
        flen = int(np.frombuffer(payload[off : off + 4], dtype=_HEADER_DTYPE)[0])
        off += 4
        frames.append(decode_frame(payload[off : off + flen]))
        off += flen
    return frames


def encode_frame_compressed(
    frame: PointCloud, density: float, depth: int = 10, seed: int | None = 0
) -> bytes:
    """Downsample and serialize with the octree codec (the real transport).

    This is what the paper's server actually ships (GROOT-class compressed
    chunks); :func:`encode_frame` is the uncompressed reference format.
    """
    from ..compression.octree_codec import octree_encode

    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    n_keep = max(1, int(round(len(frame) * density)))
    low = random_downsample_count(frame, n_keep, seed=seed)
    return octree_encode(low, depth=depth).payload


def decode_frame_compressed(payload: bytes) -> PointCloud:
    """Inverse of :func:`encode_frame_compressed`."""
    from ..compression.octree_codec import octree_decode

    return octree_decode(payload)
