"""Trace-driven viewer populations for fleet simulation.

The fleet simulator takes a fixed list of sessions with hand-picked join
times.  Real services see *populations*: viewers arrive according to a
stochastic or measured arrival process, pick content with a heavily
skewed popularity distribution, and churn out when rebuffering exhausts
their patience.  This module turns those three levers into
:class:`~repro.streaming.fleet.FleetSession` lists that
:func:`~repro.streaming.fleet.simulate_fleet` can run unchanged:

* **arrival processes** — :class:`PoissonArrivals` (memoryless synthetic
  load), :class:`DiurnalArrivals` (nonhomogeneous Poisson over a 24-hour
  rate curve — the prime-time peak every service provisions for), and
  :class:`TraceArrivals` (replay measured join timestamps, optionally
  loaded from a CSV);
* **content catalogs** — :class:`ContentCatalog`, a ranked video set with
  Zipf-like popularity ``weight(rank) ∝ 1/rank^skew``; the skew is the
  knob that drives SR-cache co-watching studies;
* **churn** — :class:`~repro.streaming.simulator.AbandonPolicy` attached
  to every generated session.

Everything is deterministic given (process seed, catalog, population
seed): building the same population twice and simulating it yields
identical fleet reports, which the replay test enforces.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..metrics.qoe import QoEWeights
from .abr import AbrController, SRQualityModel
from .chunks import VideoSpec
from .fleet import FleetSession
from .latency import SRLatency, ZERO_LATENCY
from .simulator import AbandonPolicy, SessionConfig

__all__ = [
    "PoissonArrivals",
    "DiurnalArrivals",
    "TraceArrivals",
    "ContentCatalog",
    "synthetic_catalog",
    "build_population",
]


@dataclass(frozen=True)
class PoissonArrivals:
    """Homogeneous Poisson arrival process (exponential inter-arrivals).

    ``rate_hz`` is the expected number of viewer joins per second.
    ``times`` is a pure function of ``(seed, window)`` — calling it twice
    returns the same arrivals, so populations replay deterministically.
    """

    rate_hz: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise ValueError(
                f"PoissonArrivals.rate_hz must be positive, got {self.rate_hz!r}"
            )

    def times(self, window: float) -> np.ndarray:
        """Arrival timestamps in ``[0, window]``, strictly increasing."""
        if window <= 0:
            raise ValueError(f"window must be positive, got {window!r}")
        rng = np.random.default_rng(self.seed)
        out: list[float] = []
        t = 0.0
        while True:
            t += rng.exponential(1.0 / self.rate_hz)
            if t > window:
                return np.asarray(out)
            out.append(t)


#: A typical service's 24-hour load shape: overnight trough, daytime ramp,
#: prime-time evening peak.  :class:`DiurnalArrivals` normalizes the curve
#: to mean 1.0, so only the *shape* matters here.
DEFAULT_DIURNAL_CURVE: tuple[float, ...] = (
    0.35, 0.25, 0.20, 0.18, 0.18, 0.22,  # 00–06: overnight trough
    0.35, 0.55, 0.75, 0.90, 1.00, 1.10,  # 06–12: morning ramp
    1.15, 1.10, 1.05, 1.05, 1.10, 1.25,  # 12–18: daytime plateau
    1.60, 2.05, 2.30, 2.10, 1.50, 0.82,  # 18–24: prime-time peak
)


@dataclass(frozen=True)
class DiurnalArrivals:
    """Nonhomogeneous Poisson arrivals over a 24-hour rate curve.

    The instantaneous rate follows ``curve[hour(t)]``, a piecewise-
    constant daily load shape (wrapping past 24 h), normalized to mean
    1.0 and scaled by ``mean_rate_hz`` — so ``mean_rate_hz`` is the true
    daily mean arrival rate whatever the factors' absolute scale, and a
    diurnal run offers the same expected load as a
    :class:`PoissonArrivals` run at the same rate.  Samples are drawn by
    **thinning** (Lewis & Shedler): candidates arrive as a homogeneous
    Poisson process at the curve's peak rate and are kept with
    probability ``rate(t) / peak_rate`` — exact for any bounded rate
    function, and deterministic given the seed.

    ``day_seconds`` rescales the curve's period so short simulation
    windows can sweep a whole virtual day: with ``day_seconds=240`` the
    prime-time peak lands 200 s into a 240 s window.  ``phase_hours``
    sets the hour of virtual midnight at ``t=0``.

    ``days`` extends the process over several virtual days: it is the
    default :meth:`times` window (``days * day_seconds``), the span
    multi-day fleet runs simulate.  ``autoscale`` is the arrival-rate
    autoscale hook — a deterministic callable mapping the 0-based
    simulated day number to a non-negative rate multiplier, so a run can
    model day-over-day growth (``lambda day: 1.1 ** day``) or a weekend
    dip without touching the intra-day curve.  With a hook set,
    :meth:`times` thins day by day against an envelope tightened to that
    day's multiplier (see its docstring) — still exact, without the mass
    rejection a single whole-window envelope would cost under growth.
    """

    mean_rate_hz: float
    curve: tuple[float, ...] = DEFAULT_DIURNAL_CURVE
    day_seconds: float = 86_400.0
    phase_hours: float = 0.0
    seed: int = 0
    days: float = 1.0
    autoscale: "Callable[[int], float] | None" = None

    def __post_init__(self) -> None:
        if self.mean_rate_hz <= 0:
            raise ValueError(
                f"DiurnalArrivals.mean_rate_hz must be positive, got "
                f"{self.mean_rate_hz!r}"
            )
        if len(self.curve) != 24:
            raise ValueError(
                f"DiurnalArrivals.curve needs 24 hourly factors, got "
                f"{len(self.curve)}"
            )
        if min(self.curve) < 0 or max(self.curve) <= 0:
            raise ValueError(
                "DiurnalArrivals.curve factors must be non-negative with at "
                "least one positive hour"
            )
        if self.day_seconds <= 0:
            raise ValueError(
                f"DiurnalArrivals.day_seconds must be positive, got "
                f"{self.day_seconds!r}"
            )
        if self.days <= 0:
            raise ValueError(
                f"DiurnalArrivals.days must be positive, got {self.days!r}"
            )

    @cached_property
    def _curve_mean(self) -> float:
        return sum(self.curve) / len(self.curve)

    @property
    def span_seconds(self) -> float:
        """The process's full extent: ``days`` virtual days."""
        return self.days * self.day_seconds

    def _day_scale(self, day: int) -> float:
        if self.autoscale is None:
            return 1.0
        scale = float(self.autoscale(day))
        if scale < 0.0:
            raise ValueError(
                f"autoscale must return a non-negative multiplier, got "
                f"{scale!r} for day {day}"
            )
        return scale

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate (joins/s) at virtual time ``t``."""
        if t < 0:
            raise ValueError("time must be non-negative")
        hours = (t / self.day_seconds * 24.0 + self.phase_hours) % 24.0
        # Float modulo can return exactly 24.0 for tiny negative
        # dividends ((-1e-18) % 24.0 == 24.0); wrap the index too.
        return (
            self.mean_rate_hz
            * self.curve[int(hours) % 24]
            / self._curve_mean
            * self._day_scale(int(t // self.day_seconds))
        )

    def _rate_in_day(self, t: float, day: int) -> float:
        """:meth:`rate_at` with the day index pinned (day-sliced thinning).

        A candidate landing exactly on ``day_end`` belongs to the day
        whose envelope proposed it, but ``int(t // day_seconds)`` rolls
        over to the next day there — thinning the boundary candidate
        against the wrong day's autoscale.  Mirrors :meth:`rate_at`'s
        expression order exactly, so interior candidates are thinned
        bit-identically.
        """
        hours = (t / self.day_seconds * 24.0 + self.phase_hours) % 24.0
        return (
            self.mean_rate_hz
            * self.curve[int(hours) % 24]
            / self._curve_mean
            * self._day_scale(day)
        )

    def times(self, window: float | None = None) -> np.ndarray:
        """Arrival timestamps in ``[0, window]`` via thinning.

        ``window`` defaults to the process's full ``days``-day span.
        Without an autoscale hook one global envelope covers the whole
        window (the original, replay-stable stream).  With a hook the
        envelope is tightened day by day — restricting a Poisson process
        to disjoint intervals keeps the draw exact, and a growth-shaped
        hook (say ``1.2**day`` over 30 days) would otherwise reject all
        but ~1/200 of the candidates drawn for the early days.
        """
        if window is None:
            window = self.span_seconds
        if window <= 0:
            raise ValueError(f"window must be positive, got {window!r}")
        rng = np.random.default_rng(self.seed)
        base_peak = self.mean_rate_hz * max(self.curve) / self._curve_mean
        out: list[float] = []
        if self.autoscale is None:
            t = 0.0
            while True:
                t += rng.exponential(1.0 / base_peak)
                if t > window:
                    return np.asarray(out)
                if rng.random() * base_peak < self.rate_at(t):
                    out.append(t)
        day = 0
        while day * self.day_seconds < window:
            day_end = min((day + 1) * self.day_seconds, window)
            peak = base_peak * self._day_scale(day)
            t = day * self.day_seconds
            while peak > 0.0:
                t += rng.exponential(1.0 / peak)
                if t > day_end:
                    break
                if rng.random() * peak < self._rate_in_day(t, day):
                    out.append(t)
            day += 1
        return np.asarray(out)


@dataclass(frozen=True)
class TraceArrivals:
    """Replay of measured viewer-join timestamps (seconds, sorted)."""

    arrival_times: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.arrival_times:
            raise ValueError("TraceArrivals needs at least one arrival")
        ts = np.asarray(self.arrival_times, dtype=np.float64)
        if np.any(ts < 0):
            raise ValueError("arrival times must be non-negative")
        if np.any(np.diff(ts) < 0):
            raise ValueError("arrival times must be sorted")

    @classmethod
    def from_csv(cls, path) -> "TraceArrivals":
        """Load ``timestamp_s`` rows (one per line, ``#`` comments).

        Extra comma-separated columns (user id, region, ...) are ignored,
        so raw service join logs drop in without conversion.
        """
        times: list[float] = []
        with open(path) as fh:
            for lineno, raw in enumerate(fh, 1):
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    times.append(float(line.split(",")[0]))
                except ValueError as exc:
                    raise ValueError(
                        f"{path}:{lineno}: expected a timestamp, got {line!r}"
                    ) from exc
        if not times:
            raise ValueError(f"{path}: no arrival rows found")
        return cls(arrival_times=tuple(times))

    def times(self, window: float) -> np.ndarray:
        """Arrivals that fall inside ``[0, window]``."""
        if window <= 0:
            raise ValueError(f"window must be positive, got {window!r}")
        ts = np.asarray(self.arrival_times, dtype=np.float64)
        return ts[ts <= window]


@dataclass(frozen=True)
class ContentCatalog:
    """A ranked video set with Zipf-like popularity.

    The video at popularity rank ``r`` (1-based, catalog order) is chosen
    with probability proportional to ``1 / r**skew``: ``skew=0`` is a
    uniform catalog, larger skews concentrate viewing on the head — the
    regime where the shared SR-result cache pays off.
    """

    videos: tuple[VideoSpec, ...]
    skew: float = 1.0

    def __post_init__(self) -> None:
        if not self.videos:
            raise ValueError("ContentCatalog needs at least one video")
        if self.skew < 0:
            raise ValueError(
                f"ContentCatalog.skew must be non-negative, got {self.skew!r}"
            )

    @cached_property
    def popularity(self) -> np.ndarray:
        """Normalized choice probabilities, catalog order = rank order."""
        w = 1.0 / np.arange(1, len(self.videos) + 1, dtype=np.float64) ** self.skew
        return w / w.sum()

    @cached_property
    def _cdf(self) -> np.ndarray:
        return np.cumsum(self.popularity)

    def video_for(self, u: float) -> VideoSpec:
        """Inverse-CDF popularity draw from a uniform ``u`` ∈ [0, 1).

        Sampling through a common uniform stream (rather than consuming
        an RNG per catalog) keeps draws comparable across skews: the same
        ``u`` maps to the same-or-more-popular rank as skew grows, which
        makes cache-hit-vs-skew monotonicity testable.
        """
        if not 0.0 <= u < 1.0:
            raise ValueError(f"u must be in [0, 1), got {u!r}")
        # The float cumsum can land a few ulps under 1.0, so a draw in
        # [cdf[-1], 1) must clamp to the last rank instead of overflowing.
        idx = int(np.searchsorted(self._cdf, u, side="right"))
        return self.videos[min(idx, len(self.videos) - 1)]


def synthetic_catalog(
    n_videos: int,
    *,
    seconds: int = 10,
    fps: int = 30,
    points_per_frame: int = 100_000,
    skew: float = 1.0,
    name_prefix: str = "video",
) -> ContentCatalog:
    """A catalog of ``n_videos`` identical-shape videos with Zipf ``skew``."""
    if n_videos <= 0:
        raise ValueError(f"n_videos must be positive, got {n_videos!r}")
    videos = tuple(
        VideoSpec(
            name=f"{name_prefix}-{i:03d}",
            n_frames=seconds * fps,
            fps=fps,
            points_per_frame=points_per_frame,
        )
        for i in range(n_videos)
    )
    return ContentCatalog(videos=videos, skew=skew)


def build_population(
    catalog: ContentCatalog,
    arrivals: PoissonArrivals | DiurnalArrivals | TraceArrivals,
    window: float,
    controller: AbrController,
    *,
    sr_latency: SRLatency = ZERO_LATENCY,
    quality_model: SRQualityModel | None = None,
    config: SessionConfig | None = None,
    qoe_weights: QoEWeights | None = None,
    churn: AbandonPolicy | None = None,
    weight: float = 1.0,
    seed: int = 0,
    max_sessions: int | None = None,
) -> list[FleetSession]:
    """Materialize a viewer population as fleet sessions.

    One session per arrival in ``[0, window]``; each picks its video from
    ``catalog`` by popularity (seeded, deterministic).  All sessions share
    ``controller`` — the ABR classes are stateless between decisions, and
    a shared controller is what lets the fleet scheduler resolve
    simultaneous decisions in one vectorized ``decide_batch`` pass.
    """
    if max_sessions is not None and max_sessions < 1:
        # Validate before slicing: truncating to zero sessions used to
        # surface as "arrival process produced no arrivals", blaming the
        # process for a bad cap.
        raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
    join_times = np.asarray(arrivals.times(window), dtype=np.float64)
    if max_sessions is not None:
        join_times = join_times[:max_sessions]
    if len(join_times) == 0:
        raise ValueError(
            f"arrival process produced no arrivals in [0, {window}]"
        )
    rng = np.random.default_rng(seed)
    picks = rng.random(len(join_times))
    return [
        FleetSession(
            spec=catalog.video_for(float(u)),
            controller=controller,
            sr_latency=sr_latency,
            quality_model=quality_model,
            config=config,
            qoe_weights=qoe_weights,
            join_time=float(t),
            weight=weight,
            churn=churn,
        )
        for t, u in zip(join_times, picks)
    ]
