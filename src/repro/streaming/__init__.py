"""Volumetric streaming: chunks, encoding, buffer, ABR, session simulation."""

from .abr import (
    YUZU_DENSITY_LEVELS,
    AbrContext,
    AbrController,
    BufferBased,
    ContinuousMPC,
    Decision,
    DiscreteMPC,
    SRQualityModel,
)
from .buffer import PlaybackBuffer
from .client import ClientSession, PlayedChunk, StreamingClient
from .chunks import BYTES_PER_POINT, ChunkSpec, VideoSpec
from .encoder import (
    decode_chunk,
    decode_frame,
    decode_frame_compressed,
    encode_chunk,
    encode_frame,
    encode_frame_compressed,
)
from .fleet import (
    FleetReport,
    FleetResult,
    FleetSession,
    SRResultCache,
    simulate_fleet,
)
from .latency import (
    DeviceSRLatency,
    MeasuredSRLatency,
    SRLatency,
    ZERO_LATENCY,
    latency_batch,
)
from .population import (
    ContentCatalog,
    PoissonArrivals,
    TraceArrivals,
    build_population,
)
from .server import Manifest, VideoServer
from .simulator import (
    AbandonPolicy,
    DecisionRequest,
    DownloadRequest,
    SessionConfig,
    SessionMachine,
    SessionResult,
    simulate_session,
)

__all__ = [
    "ChunkSpec",
    "VideoSpec",
    "BYTES_PER_POINT",
    "encode_frame",
    "decode_frame",
    "encode_frame_compressed",
    "decode_frame_compressed",
    "encode_chunk",
    "decode_chunk",
    "PlaybackBuffer",
    "VideoServer",
    "Manifest",
    "StreamingClient",
    "ClientSession",
    "PlayedChunk",
    "SRQualityModel",
    "AbrContext",
    "AbrController",
    "Decision",
    "ContinuousMPC",
    "DiscreteMPC",
    "BufferBased",
    "YUZU_DENSITY_LEVELS",
    "DeviceSRLatency",
    "MeasuredSRLatency",
    "SRLatency",
    "ZERO_LATENCY",
    "latency_batch",
    "SessionConfig",
    "SessionResult",
    "SessionMachine",
    "DownloadRequest",
    "DecisionRequest",
    "AbandonPolicy",
    "simulate_session",
    "FleetSession",
    "FleetReport",
    "FleetResult",
    "SRResultCache",
    "simulate_fleet",
    "PoissonArrivals",
    "TraceArrivals",
    "ContentCatalog",
    "build_population",
]
